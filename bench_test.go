package photoloop_test

// One benchmark per figure of the paper's evaluation section — running a
// benchmark regenerates the corresponding experiment — plus microbenchmarks
// of the analytical engine and mapper underneath them. Benchmark budgets
// are reduced relative to the CLI defaults so `go test -bench=.` completes
// quickly; the claims bands still hold at these budgets (see
// internal/exp tests).

import (
	"testing"

	"photoloop"
)

var benchCfg = photoloop.ExperimentConfig{Budget: 200, Seed: 1}

// BenchmarkFig2EnergyBreakdown regenerates the Fig. 2 energy validation:
// modeled vs reported best-case pJ/MAC across three scaling projections.
func BenchmarkFig2EnergyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := photoloop.Fig2(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 6 {
			b.Fatalf("rows = %d", len(r.Rows))
		}
	}
}

// BenchmarkFig3Throughput regenerates the Fig. 3 throughput comparison for
// VGG16 and AlexNet (24 layer searches).
func BenchmarkFig3Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := photoloop.Fig3(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 2 {
			b.Fatalf("rows = %d", len(r.Rows))
		}
	}
}

// BenchmarkFig4MemoryExploration regenerates the Fig. 4 full-system study:
// ResNet18 x {conservative, aggressive} x {batching, fusion}.
func BenchmarkFig4MemoryExploration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := photoloop.Fig4(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 8 {
			b.Fatalf("rows = %d", len(r.Rows))
		}
	}
}

// BenchmarkFig5ArchExploration regenerates the Fig. 5 reuse exploration:
// ResNet18 on 18 architecture variants.
func BenchmarkFig5ArchExploration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := photoloop.Fig5(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 18 {
			b.Fatalf("rows = %d", len(r.Rows))
		}
	}
}

// BenchmarkEvaluate measures one analytical evaluation of the mapper's
// inner loop: Albireo, one ResNet18 layer, canonical mapping, on the
// compiled allocation-free fast path (aggregate energy, no itemized
// ledger) — the configuration mapper search actually runs in.
func BenchmarkEvaluate(b *testing.B) {
	a, err := photoloop.Albireo(photoloop.Aggressive).Build()
	if err != nil {
		b.Fatal(err)
	}
	layer := photoloop.NewConv("l", 1, 128, 128, 28, 28, 3, 3, 1, 1)
	seeds := photoloop.AlbireoCanonicalMappings(a, &layer)
	if len(seeds) == 0 {
		b.Fatal("no canonical mapping")
	}
	m := seeds[0]
	c, err := photoloop.Compile(a, &layer)
	if err != nil {
		b.Fatal(err)
	}
	scratch := c.Engine().NewScratch()
	res := &photoloop.Result{}
	opts := photoloop.EvalOptions{SkipValidate: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EvaluateInto(scratch, m, res, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateFullLedger measures the compiled path with the
// itemized energy ledger (the debug/reporting mode).
func BenchmarkEvaluateFullLedger(b *testing.B) {
	a, err := photoloop.Albireo(photoloop.Aggressive).Build()
	if err != nil {
		b.Fatal(err)
	}
	layer := photoloop.NewConv("l", 1, 128, 128, 28, 28, 3, 3, 1, 1)
	seeds := photoloop.AlbireoCanonicalMappings(a, &layer)
	if len(seeds) == 0 {
		b.Fatal("no canonical mapping")
	}
	m := seeds[0]
	c, err := photoloop.Compile(a, &layer)
	if err != nil {
		b.Fatal(err)
	}
	scratch := c.Engine().NewScratch()
	res := &photoloop.Result{}
	opts := photoloop.EvalOptions{SkipValidate: true, FullLedger: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EvaluateInto(scratch, m, res, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateOneShot measures the uncompiled convenience entry
// point, which recompiles the (arch, layer) pair on every call.
func BenchmarkEvaluateOneShot(b *testing.B) {
	a, err := photoloop.Albireo(photoloop.Aggressive).Build()
	if err != nil {
		b.Fatal(err)
	}
	layer := photoloop.NewConv("l", 1, 128, 128, 28, 28, 3, 3, 1, 1)
	seeds := photoloop.AlbireoCanonicalMappings(a, &layer)
	if len(seeds) == 0 {
		b.Fatal("no canonical mapping")
	}
	m := seeds[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := photoloop.Evaluate(a, &layer, m, photoloop.EvalOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLowerBound measures the admissible lower bound the search
// prunes with — the cost of rejecting a candidate without evaluating it.
func BenchmarkLowerBound(b *testing.B) {
	a, err := photoloop.Albireo(photoloop.Aggressive).Build()
	if err != nil {
		b.Fatal(err)
	}
	layer := photoloop.NewConv("l", 1, 128, 128, 28, 28, 3, 3, 1, 1)
	seeds := photoloop.AlbireoCanonicalMappings(a, &layer)
	if len(seeds) == 0 {
		b.Fatal("no canonical mapping")
	}
	m := seeds[0]
	c, err := photoloop.Compile(a, &layer)
	if err != nil {
		b.Fatal(err)
	}
	scratch := c.Engine().NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bd := c.LowerBound(scratch, m, photoloop.EvalOptions{}); bd.EnergyPJ <= 0 {
			b.Fatal("degenerate bound")
		}
	}
}

// BenchmarkMapperSearch measures a full mapping search for one layer.
func BenchmarkMapperSearch(b *testing.B) {
	a, err := photoloop.Albireo(photoloop.Aggressive).Build()
	if err != nil {
		b.Fatal(err)
	}
	layer := photoloop.NewConv("l", 1, 128, 128, 28, 28, 3, 3, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := photoloop.Search(a, &layer, photoloop.SearchOptions{Budget: 500, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapperSearchSeeded measures the search in its production
// configuration — canonical schedules as seeds, the setup every figure
// harness runs — and reports the fraction of candidates the admissible
// lower bound pruned.
func BenchmarkMapperSearchSeeded(b *testing.B) {
	a, err := photoloop.Albireo(photoloop.Aggressive).Build()
	if err != nil {
		b.Fatal(err)
	}
	layer := photoloop.NewConv("l", 1, 128, 128, 28, 28, 3, 3, 1, 1)
	seeds := photoloop.AlbireoCanonicalMappings(a, &layer)
	var stats photoloop.SearchStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, err := photoloop.Search(a, &layer, photoloop.SearchOptions{Budget: 500, Seed: 1, Seeds: seeds})
		if err != nil {
			b.Fatal(err)
		}
		stats = best.Stats
	}
	b.ReportMetric(stats.PrunedFraction(), "pruned-frac")
}

// BenchmarkCanonicalMappings measures generation of the architect-intended
// schedule variants.
func BenchmarkCanonicalMappings(b *testing.B) {
	a, err := photoloop.Albireo(photoloop.Conservative).Build()
	if err != nil {
		b.Fatal(err)
	}
	layer := photoloop.NewConv("l", 8, 512, 256, 14, 14, 3, 3, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := photoloop.AlbireoCanonicalMappings(a, &layer); len(got) == 0 {
			b.Fatal("no mappings")
		}
	}
}

// BenchmarkNetworkEval measures a whole-network evaluation (ResNet18,
// batched and fused — the heaviest Fig. 4 configuration).
func BenchmarkNetworkEval(b *testing.B) {
	net := photoloop.ResNet18(1)
	for i := 0; i < b.N; i++ {
		_, err := photoloop.EvalAlbireoNetwork(
			photoloop.Albireo(photoloop.Aggressive), net,
			photoloop.AlbireoNetOptions{
				Batch: 8, Fused: true,
				Mapper: photoloop.SearchOptions{Budget: 200, Seed: 1},
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlbireoBuild measures architecture construction + validation.
func BenchmarkAlbireoBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := photoloop.Albireo(photoloop.Moderate).Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations regenerates the modeling-mechanism ablation study.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := photoloop.Ablations(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 4 {
			b.Fatalf("rows = %d", len(r.Rows))
		}
	}
}
