package photoloop_test

import (
	"fmt"
	"log"
	"strings"

	"photoloop"
)

// ExampleAlbireo instantiates the paper's Albireo accelerator at a scaling
// point and reads its mapping-independent properties.
func ExampleAlbireo() {
	cfg := photoloop.Albireo(photoloop.Aggressive)
	a, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}
	area, err := a.Area()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IR=%d OR=%d\n", cfg.IR(), cfg.OR())
	fmt.Printf("peak %d MACs/cycle, %.1f mm^2\n", a.PeakMACsPerCycle(), area/1e6)
	// Output:
	// IR=9 OR=3
	// peak 6912 MACs/cycle, 8.2 mm^2
}

// ExampleEvaluate runs the analytical model for one layer on a fixed
// schedule — no search, fully deterministic.
func ExampleEvaluate() {
	a, err := photoloop.Albireo(photoloop.Conservative).Build()
	if err != nil {
		log.Fatal(err)
	}
	// The paper's best-case layer: fully utilizes the default Albireo.
	layer := photoloop.NewConv("conv3x3", 1, 96, 64, 32, 32, 3, 3, 1, 1)
	// Evaluate the architect-intended canonical schedule.
	m := photoloop.AlbireoCanonicalMappings(a, &layer)[0]
	res, err := photoloop.Evaluate(a, &layer, m, photoloop.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("utilization %.0f%%\n", 100*res.Utilization)
	fmt.Printf("%.1f pJ/MAC\n", res.PJPerMAC())
	// Output:
	// utilization 100%
	// 4.5 pJ/MAC
}

// ExampleSearch lets the mapper find the best schedule for a layer.
// Results are deterministic for a fixed (Seed, Workers) pair.
func ExampleSearch() {
	a, err := photoloop.Albireo(photoloop.Conservative).Build()
	if err != nil {
		log.Fatal(err)
	}
	layer := photoloop.NewConv("conv3x3", 1, 96, 64, 32, 32, 3, 3, 1, 1)
	best, err := photoloop.Search(a, &layer, photoloop.SearchOptions{
		Budget: 400, Seed: 1, Workers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("utilization %.0f%%, %.0f MACs/cycle\n",
		100*best.Result.Utilization, best.Result.MACsPerCycle)
	// Output:
	// utilization 100%, 6912 MACs/cycle
}

// ExampleSweep declares a two-variant design-space sweep and evaluates it
// concurrently — the same engine behind `photoloop sweep` and the
// `POST /v1/sweep` endpoint of `photoloop serve`.
func ExampleSweep() {
	spec := photoloop.SweepSpec{
		Base: photoloop.SweepBase{Albireo: &photoloop.SweepAlbireoBase{Scaling: "aggressive"}},
		Axes: []photoloop.SweepAxis{
			{Param: "output_lanes", Values: []any{3, 9}},
		},
		Workloads:     []photoloop.SweepWorkload{{Network: "alexnet", Batch: 1}},
		Objectives:    []string{"energy"},
		Budget:        200,
		Seed:          1,
		SearchWorkers: 2,
	}
	res, err := photoloop.Sweep(spec, photoloop.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Points {
		fmt.Printf("%s: IR=%d, %.1f pJ/MAC\n",
			p.Variant, 3*p.Params["output_lanes"].(int), p.PJPerMAC)
	}
	// Output:
	// output_lanes=3: IR=9, 16.8 pJ/MAC
	// output_lanes=9: IR=27, 16.9 pJ/MAC
}

// ExampleParseArchSpec round-trips the built-in template document and
// builds it — the JSON path `photoloop eval -arch` and the HTTP endpoints
// consume.
func ExampleParseArchSpec() {
	as, err := photoloop.ParseArchSpec(strings.NewReader(photoloop.ArchTemplate()))
	if err != nil {
		log.Fatal(err)
	}
	a, err := as.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d levels, peak %d MACs/cycle\n", a.Name, a.NumLevels(), a.PeakMACsPerCycle())
	// Output:
	// mini-photonic: 5 levels, peak 864 MACs/cycle
}

// ExampleStudy compares architecture presets on one workload and prints
// each objective's winner — the engine behind `photoloop study` and
// `POST /v1/study`. Rows arrive ranked per (workload, objective) group,
// bit-identical to evaluating each (preset, workload) pair individually.
func ExampleStudy() {
	res, err := photoloop.Study(photoloop.StudySpec{
		Presets:       []string{"albireo", "electrical-baseline"},
		Workloads:     []string{"alexnet"},
		Objectives:    []string{"energy", "delay"},
		Budget:        60,
		Seed:          1,
		SearchWorkers: 1,
	}, photoloop.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Rank == 1 {
			fmt.Printf("%s/%s winner: %s\n", row.Network, row.Objective, row.Preset)
		}
	}
	// Output:
	// alexnet/energy winner: electrical-baseline
	// alexnet/delay winner: albireo
}

func ExampleExplore() {
	f, err := photoloop.Explore(photoloop.ExploreSpec{
		Base: photoloop.SweepBase{Preset: "albireo"},
		Axes: []photoloop.ExploreAxis{
			{Param: "or_lanes", Values: []any{1, 3, 5}},
			{Param: "output_lanes", Values: []any{3, 9, 15}},
			{Param: "weight_reuse", Values: []any{false, true}},
		},
		Workload:      photoloop.SweepWorkload{Network: "alexnet"},
		Objectives:    []string{"energy", "area"},
		MapperBudget:  60,
		Seed:          1,
		SearchWorkers: 1,
	}, photoloop.ExploreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s strategy: %d Pareto-optimal of %d points\n", f.Strategy, len(f.Points), f.Evals)
	best := f.Points[0] // lowest energy on the frontier
	fmt.Printf("lowest-energy design: %s\n", best.Variant)
	// Output:
	// grid strategy: 6 Pareto-optimal of 18 points
	// lowest-energy design: or_lanes=3 output_lanes=15 weight_reuse=true
}
