package photoloop_test

import (
	"testing"

	"photoloop"
)

// The facade tests exercise the public API end to end the way a downstream
// user would, without touching internal packages.

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := photoloop.Albireo(photoloop.Conservative)
	a, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.PeakMACsPerCycle() != 6912 {
		t.Errorf("peak = %d", a.PeakMACsPerCycle())
	}
	layer := photoloop.NewConv("conv", 1, 96, 64, 32, 32, 3, 3, 1, 1)
	best, err := photoloop.Search(a, &layer, photoloop.SearchOptions{
		Budget: 300, Seed: 1,
		Seeds: photoloop.AlbireoCanonicalMappings(a, &layer),
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Result.PJPerMAC() <= 0 || best.Result.Utilization <= 0 {
		t.Errorf("bad result: %v", best.Result)
	}
}

func TestPublicManualMapping(t *testing.T) {
	a, err := photoloop.Albireo(photoloop.Aggressive).Build()
	if err != nil {
		t.Fatal(err)
	}
	layer := photoloop.NewFC("fc", 1, 1000, 512)
	seeds := photoloop.AlbireoCanonicalMappings(a, &layer)
	if len(seeds) == 0 {
		t.Fatal("no canonical mapping for FC")
	}
	res, err := photoloop.Evaluate(a, &layer, seeds[0], photoloop.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MACs != layer.MACs() {
		t.Errorf("MACs = %d, want %d", res.MACs, layer.MACs())
	}
}

func TestPublicWorkloadZoo(t *testing.T) {
	for _, name := range []string{"vgg16", "alexnet", "resnet18"} {
		net, err := photoloop.NetworkByName(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := photoloop.NetworkByName("mobilenet", 1); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestPublicComponentRegistry(t *testing.T) {
	classes := photoloop.ComponentClasses()
	if len(classes) < 10 {
		t.Errorf("only %d component classes", len(classes))
	}
	c, err := photoloop.BuildComponent("mzm", "mod", photoloop.ComponentParams{"modulate_pj": 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if c.Class() != "mzm" {
		t.Errorf("class = %s", c.Class())
	}
	lib := photoloop.NewComponentLibrary()
	if err := lib.Add(c); err != nil {
		t.Fatal(err)
	}
}

func TestPublicNetworkEval(t *testing.T) {
	net := photoloop.Network{Name: "tiny", Layers: []photoloop.Layer{
		photoloop.NewConv("c1", 1, 64, 64, 28, 28, 3, 3, 1, 1),
	}}
	res, err := photoloop.EvalAlbireoNetwork(photoloop.Albireo(photoloop.Moderate), net,
		photoloop.AlbireoNetOptions{Mapper: photoloop.SearchOptions{Budget: 200, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PJPerMAC() <= 0 {
		t.Error("bad energy")
	}
}

func TestPublicFigureHarnesses(t *testing.T) {
	cfg := photoloop.ExperimentConfig{Budget: 200, Seed: 1}
	f2, err := photoloop.Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f2.AvgAbsErrPct > 5 {
		t.Errorf("fig2 error %.2f%%", f2.AvgAbsErrPct)
	}
	abl, err := photoloop.Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Rows) != 4 {
		t.Errorf("ablations rows = %d", len(abl.Rows))
	}
}

func TestPublicElectricalBaseline(t *testing.T) {
	a, err := photoloop.ElectricalBaseline().Build()
	if err != nil {
		t.Fatal(err)
	}
	layer := photoloop.NewConv("c", 1, 64, 64, 14, 14, 3, 3, 1, 1)
	best, err := photoloop.Search(a, &layer, photoloop.SearchOptions{Budget: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if photoloop.AlbireoConverterPJ(best.Result) != 0 {
		t.Error("an all-digital design has no cross-domain conversions")
	}
	if photoloop.AlbireoAcceleratorPJ(best.Result) <= 0 {
		t.Error("accelerator energy should be positive")
	}
}
