// Package photoloop is an architecture-level modeling framework for
// photonic deep-neural-network accelerators, reproducing "Architecture-
// Level Modeling of Photonic Deep Neural Network Accelerators" (Andrulis,
// Chaudhry, Suriyakumar, Emer, Sze — ISPASS 2024).
//
// The framework follows the Timeloop / Accelergy / CiMLoop methodology the
// paper builds on: a workload is a 7-dimensional convolution problem, an
// architecture is a hierarchy of storage levels over a compute array, and
// a mapping schedules the workload onto the architecture. The paper's
// extension — and this package's focus — is multi-domain modeling: levels
// live in digital-electrical (DE), analog-electrical (AE), analog-optical
// (AO) or digital-optical (DO) domains, and data crossing between domains
// is charged to explicit converter components (DACs, ADCs, Mach-Zehnder
// modulators, microring programming, photodiodes). Mappings that exploit
// reuse inside a domain amortize those conversions; the analytical engine
// counts them exactly (validated against a brute-force simulator) and
// rolls them up into energy, throughput and area.
//
// Quick start:
//
//	a, _ := photoloop.Albireo(photoloop.Conservative).Build()
//	layer := photoloop.NewConv("conv3x3", 1, 96, 64, 32, 32, 3, 3, 1, 1)
//	best, _ := photoloop.Search(a, &layer, photoloop.SearchOptions{})
//	fmt.Println(best.Result) // pJ/MAC, MACs/cycle, utilization
//
// See examples/ for runnable programs and cmd/albireo-repro for the
// regeneration of every figure in the paper.
package photoloop

import (
	"io"

	"photoloop/internal/albireo"
	"photoloop/internal/arch"
	"photoloop/internal/baseline"
	"photoloop/internal/components"
	"photoloop/internal/exp"
	"photoloop/internal/explore"
	"photoloop/internal/jobs"
	"photoloop/internal/mapper"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/presets"
	"photoloop/internal/spec"
	"photoloop/internal/store"
	"photoloop/internal/sweep"
	"photoloop/internal/workload"
)

// Workload types and constructors.
type (
	// Layer is one DNN layer as a 7-dimensional loop-nest problem.
	Layer = workload.Layer
	// Network is an ordered list of layers.
	Network = workload.Network
	// Dim identifies a problem dimension (N, K, C, P, Q, R, S).
	Dim = workload.Dim
	// Tensor identifies an operand (Weights, Inputs, Outputs).
	Tensor = workload.Tensor
	// TensorSet is a set of operands.
	TensorSet = workload.TensorSet
	// Point is a per-dimension integer vector.
	Point = workload.Point
)

// Problem dimensions.
const (
	DimN = workload.DimN
	DimK = workload.DimK
	DimC = workload.DimC
	DimP = workload.DimP
	DimQ = workload.DimQ
	DimR = workload.DimR
	DimS = workload.DimS
)

// Operand tensors.
const (
	Weights = workload.Weights
	Inputs  = workload.Inputs
	Outputs = workload.Outputs
)

// NewConv builds a square-filter convolution layer.
func NewConv(name string, n, k, c, p, q, r, s, stride, pad int) Layer {
	return workload.NewConv(name, n, k, c, p, q, r, s, stride, pad)
}

// NewFC builds a fully-connected layer.
func NewFC(name string, n, k, c int) Layer { return workload.NewFC(name, n, k, c) }

// NewMatmul builds a general matrix multiplication (the transformer
// attention/projection primitive) as an FC layer.
func NewMatmul(name string, rows, cols, inner int) Layer {
	return workload.NewMatmul(name, rows, cols, inner)
}

// NewDepthwise builds a depthwise convolution in the batch-folded dense
// projection (see workload.NewDepthwise for the accuracy contract).
func NewDepthwise(name string, n, ch, p, q, r, s, stride, pad int) Layer {
	return workload.NewDepthwise(name, n, ch, p, q, r, s, stride, pad)
}

// VGG16 builds the paper's VGG16 evaluation workload.
func VGG16(batch int) Network { return workload.VGG16(batch) }

// AlexNet builds the paper's AlexNet evaluation workload.
func AlexNet(batch int) Network { return workload.AlexNet(batch) }

// ResNet18 builds the paper's ResNet-18 evaluation workload.
func ResNet18(batch int) Network { return workload.ResNet18(batch) }

// ResNet34 builds the deeper basic-block ResNet-34 workload.
func ResNet34(batch int) Network { return workload.ResNet34(batch) }

// ResNet50 builds the bottleneck ResNet-50 workload (pointwise-1x1
// dominated).
func ResNet50(batch int) Network { return workload.ResNet50(batch) }

// MobileNetV2 builds the MobileNetV2 workload (inverted residuals with
// depthwise convolutions in the batch-folded projection).
func MobileNetV2(batch int) Network { return workload.MobileNetV2(batch) }

// BERTBase builds the BERT-base encoder stack at sequence 128 as batched
// matmul layers.
func BERTBase(batch int) Network { return workload.BERTBase(batch) }

// GPT2Small builds the GPT-2-small decoder stack at its 1024-token
// context as batched matmul layers.
func GPT2Small(batch int) Network { return workload.GPT2Small(batch) }

// ZooEntry describes one built-in workload: name, family, description and
// builder.
type ZooEntry = workload.ZooEntry

// WorkloadZoo returns the built-in workloads in curated order — the one
// registry behind NetworkByName, `photoloop networks`, GET /v1/networks
// and study workload selection.
func WorkloadZoo() []ZooEntry { return workload.ZooEntries() }

// NetworkByName builds a zoo network by name (WorkloadZoo lists them).
func NetworkByName(name string, batch int) (Network, error) {
	return workload.ByName(name, batch)
}

// Architecture types.
type (
	// Arch is an accelerator: a storage hierarchy over a compute array.
	Arch = arch.Arch
	// Level is one storage level.
	Level = arch.Level
	// Compute is the compute array description.
	Compute = arch.Compute
	// SpatialFactor is a rigid fan-out factor with assignable dimensions.
	SpatialFactor = arch.SpatialFactor
	// ActionRef names a component action charged per word.
	ActionRef = arch.ActionRef
	// Domain is a signaling domain (DE, AE, AO, DO).
	Domain = arch.Domain
	// Component is an energy/area estimator.
	Component = components.Component
	// ComponentLibrary holds named component instances.
	ComponentLibrary = components.Library
	// ComponentParams parameterizes registry-built components.
	ComponentParams = components.Params
)

// Signaling domains.
const (
	DE = arch.DE
	AE = arch.AE
	AO = arch.AO
	DO = arch.DO
)

// NewComponentLibrary builds an empty component library.
func NewComponentLibrary() *ComponentLibrary { return components.NewLibrary() }

// BuildComponent constructs a component from the class registry ("sram",
// "dram", "adc", "dac", "mzm", "mrr", "photodiode", "laser",
// "star_coupler", "waveguide", "digital_mac", "wire", "regfile").
func BuildComponent(class, name string, p ComponentParams) (Component, error) {
	return components.Build(class, name, p)
}

// ComponentClasses lists the registered component classes.
func ComponentClasses() []string { return components.Classes() }

// JSON interchange documents (the CiMLoop-like spec-driven interface).
type (
	// ArchSpec is an architecture document: components, a level
	// hierarchy with domains and converter chains, and a compute array.
	ArchSpec = spec.ArchSpec
	// MappingSpec is a mapping document (levels outermost first).
	MappingSpec = spec.MappingSpec
)

// ParseArchSpec decodes an architecture document (without building it);
// call ArchSpec.Build for the architecture.
func ParseArchSpec(r io.Reader) (*ArchSpec, error) { return spec.ParseArchSpec(r) }

// ParseMappingSpec decodes a mapping document; call MappingSpec.Build
// against an architecture for the mapping.
func ParseMappingSpec(r io.Reader) (*MappingSpec, error) { return spec.ParseMappingSpec(r) }

// ArchTemplate returns a complete, buildable example architecture document
// (what `photoloop template` prints).
func ArchTemplate() string { return spec.Template }

// Mapping and evaluation types.
type (
	// Mapping is a schedule of a layer onto an architecture.
	Mapping = mapping.Mapping
	// Result is a full evaluation: counts, energy ledger, throughput.
	Result = model.Result
	// EnergyItem is one energy-ledger line.
	EnergyItem = model.EnergyItem
	// Usage is per-level per-tensor traffic.
	Usage = model.Usage
	// EvalOptions tunes an evaluation.
	EvalOptions = model.Options
	// Engine is a compiled per-architecture evaluation engine: resolved
	// per-action energy tables, cached area and keep chains. Build once
	// per architecture, share across layers and goroutines.
	Engine = model.Engine
	// Compiled is an engine specialized to one (architecture, layer)
	// pair; its EvaluateInto fast path is the mapper's inner loop, its
	// LowerBound method the admissible bound the search prunes with, and
	// its EvaluatePartial method the shared-prefix delta evaluator.
	Compiled = model.Compiled
	// EvalScratch is the reusable per-goroutine working memory of the
	// compiled fast path; it also carries the delta-evaluation state
	// between consecutive EvaluatePartial calls.
	EvalScratch = model.Scratch
	// EvalBound is an admissible lower bound on a mapping's evaluation:
	// Compiled.LowerBound guarantees EnergyPJ <= TotalPJ and Cycles <=
	// Cycles of any successful full evaluation of the same mapping.
	EvalBound = model.Bound
)

// NewMapping returns an inert mapping for the architecture.
func NewMapping(a *Arch) *Mapping { return mapping.New(a) }

// Evaluate runs the analytical model for one layer and mapping, producing
// the full itemized result. It recompiles the architecture on every call;
// callers evaluating many mappings should use NewEngine/Compile and the
// Compiled fast path.
func Evaluate(a *Arch, l *Layer, m *Mapping, opts EvalOptions) (*Result, error) {
	return model.Evaluate(a, l, m, opts)
}

// NewEngine builds the compiled evaluation engine for an architecture.
func NewEngine(a *Arch) (*Engine, error) { return model.NewEngine(a) }

// Compile builds a compiled engine for one architecture and layer in one
// step (use Engine.Compile to share the engine across layers).
func Compile(a *Arch, l *Layer) (*Compiled, error) { return model.Compile(a, l) }

// Mapper types.
type (
	// SearchOptions configures the mapping search.
	SearchOptions = mapper.Options
	// SearchBest is a search outcome; its Stats field breaks down how the
	// candidate stream was spent (pruned / delta / full evaluations).
	SearchBest = mapper.Best
	// SearchStats counts how a search dispatched its candidates:
	// lower-bound pruned, delta evaluations, full evaluations,
	// duplicates, invalid draws and warm-start evaluations.
	SearchStats = mapper.SearchStats
	// Objective selects what the search minimizes.
	Objective = mapper.Objective
	// MapperSession caches an architecture's search invariants (compiled
	// engine, spatial assignments) across per-layer searches.
	MapperSession = mapper.Session
)

// NewMapperSession prepares an architecture for repeated layer searches.
func NewMapperSession(a *Arch) (*MapperSession, error) { return mapper.NewSession(a) }

// Search objectives.
const (
	MinEnergy = mapper.MinEnergy
	MinDelay  = mapper.MinDelay
	MinEDP    = mapper.MinEDP
)

// ParseObjective converts an objective name ("energy", "delay", "edp").
func ParseObjective(name string) (Objective, error) { return mapper.ParseObjective(name) }

// SearchCache deduplicates identical (architecture, layer shape, options)
// searches across calls (see SearchOptions.Cache); results are
// bit-identical with or without one. Sweeps and services share a cache.
type SearchCache = mapper.Cache

// NewSearchCache returns an empty search-result cache.
func NewSearchCache() *SearchCache { return mapper.NewCache() }

// Search finds the best mapping for a layer.
func Search(a *Arch, l *Layer, opts SearchOptions) (*SearchBest, error) {
	return mapper.Search(a, l, opts)
}

// SearchNetwork maps every layer of a network.
func SearchNetwork(a *Arch, net *Network, opts SearchOptions) ([]*SearchBest, error) {
	return mapper.SearchNetwork(a, net, opts)
}

// Albireo instantiation.
type (
	// AlbireoConfig parameterizes an Albireo instance.
	AlbireoConfig = albireo.Config
	// AlbireoScaling is a technology projection.
	AlbireoScaling = albireo.Scaling
	// AlbireoNetOptions configures whole-network evaluation.
	AlbireoNetOptions = albireo.NetOptions
	// AlbireoNetResult is a whole-network evaluation.
	AlbireoNetResult = albireo.NetResult
)

// Albireo scaling projections.
const (
	Conservative = albireo.Conservative
	Moderate     = albireo.Moderate
	Aggressive   = albireo.Aggressive
)

// Albireo returns the original Albireo configuration at a scaling point.
func Albireo(s AlbireoScaling) AlbireoConfig { return albireo.Default(s) }

// AlbireoCanonicalMappings returns the architect-intended schedules for a
// layer (useful as mapper seeds).
func AlbireoCanonicalMappings(a *Arch, l *Layer) []*Mapping {
	return albireo.CanonicalMappings(a, l)
}

// EvalAlbireoNetwork maps and evaluates a network on an Albireo instance
// with optional batching and layer fusion.
func EvalAlbireoNetwork(cfg AlbireoConfig, net Network, opts AlbireoNetOptions) (*AlbireoNetResult, error) {
	return albireo.EvalNetwork(cfg, net, opts)
}

// ElectricalBaselineConfig parameterizes the conventional digital
// accelerator built from the same component library, for photonic-vs-
// electrical comparisons.
type ElectricalBaselineConfig = baseline.Config

// ElectricalBaseline returns a weight-stationary digital array matched to
// Albireo's peak throughput.
func ElectricalBaseline() ElectricalBaselineConfig { return baseline.Default() }

// AlbireoAcceleratorPJ sums a result's energy excluding DRAM.
func AlbireoAcceleratorPJ(r *Result) float64 { return albireo.AcceleratorPJ(r) }

// AlbireoConverterPJ sums all cross-domain conversion energy in a result.
func AlbireoConverterPJ(r *Result) float64 { return albireo.ConverterPJ(r) }

// Design-space sweep types: a declarative grid of architecture variants ×
// workloads × objectives, evaluated concurrently with cross-point search
// deduplication. `photoloop sweep` and `photoloop serve` run the same
// engine from JSON and HTTP.
type (
	// SweepSpec declares a sweep: base × axes × workloads × objectives.
	SweepSpec = sweep.Spec
	// SweepBase selects the starting architecture (Albireo or raw spec).
	SweepBase = sweep.Base
	// SweepAlbireoBase parameterizes an Albireo starting point.
	SweepAlbireoBase = sweep.AlbireoBase
	// SweepAxis is one grid dimension: a parameter and its values.
	SweepAxis = sweep.Axis
	// SweepWorkload is one network evaluated per variant.
	SweepWorkload = sweep.Workload
	// SweepOptions tunes a sweep run (pool size, cache, progress).
	SweepOptions = sweep.Options
	// SweepResult is a completed sweep in deterministic point order.
	SweepResult = sweep.Result
	// SweepPoint is one evaluated (variant, workload, objective) point.
	SweepPoint = sweep.Point
	// SweepLayerOutcome is one layer's evaluation within a point.
	SweepLayerOutcome = sweep.LayerOutcome
	// SweepServer serves sweeps and evaluations over HTTP (photoloop
	// serve); it implements http.Handler.
	SweepServer = sweep.Server
	// EvalRequest is one architecture × network evaluation request (the
	// body of POST /v1/eval and the engine behind photoloop eval).
	EvalRequest = sweep.EvalRequest
	// EvalResponse is the evaluation result of an EvalRequest.
	EvalResponse = sweep.EvalResponse
)

// Sweep expands and concurrently evaluates a design-space sweep.
func Sweep(spec SweepSpec, opts SweepOptions) (*SweepResult, error) {
	return sweep.Run(spec, opts)
}

// ArchPreset is one named architecture of the preset library: a validated
// photonic organization (or the electrical baseline) referenceable by
// name from sweeps, studies, `photoloop eval -preset` and the HTTP API.
type ArchPreset = presets.Preset

// Presets returns the architecture preset library in curated order.
func Presets() []*ArchPreset { return presets.All() }

// PresetNames returns the preset names in library order.
func PresetNames() []string { return presets.Names() }

// PresetByName looks an architecture preset up by name.
func PresetByName(name string) (*ArchPreset, error) { return presets.ByName(name) }

// Comparative study types: the cross product of architecture presets ×
// zoo workloads × objectives, evaluated through the cached sweep engine
// and ranked per (workload, objective) group. `photoloop study` and
// `POST /v1/study` run the same engine.
type (
	// StudySpec declares a study (presets × workloads × objectives).
	StudySpec = sweep.StudySpec
	// StudyResult is a completed study: ranked rows in group order.
	StudyResult = sweep.StudyResult
	// StudyRow is one evaluated (preset, workload, objective) row.
	StudyRow = sweep.StudyRow
)

// Study runs a comparative preset study; every row is bit-identical to
// evaluating the same (preset, workload, objective) individually through
// EvalSpec with the same budget, seed and search workers.
func Study(spec StudySpec, opts SweepOptions) (*StudyResult, error) {
	return sweep.RunStudy(spec, opts)
}

// EvalSpec runs one spec-driven evaluation request; a non-nil cache
// deduplicates searches across requests.
func EvalSpec(req *EvalRequest, cache *SearchCache) (*EvalResponse, error) {
	return sweep.Eval(req, cache)
}

// NewSweepServer builds the HTTP front end with a fresh shared search
// cache; the explore endpoint (POST /v1/explore) comes attached.
func NewSweepServer() *SweepServer {
	s := sweep.NewServer()
	explore.Attach(s)
	return s
}

// Durable job types: sweeps and explorations run as resumable jobs over
// a persistent, content-addressed result store. Every completed layer
// search is checkpointed to disk as it finishes, so an interrupted job
// resumes to a byte-identical result and re-running a finished job
// recomputes nothing. `photoloop jobs` and POST /v1/jobs run the same
// engine (see docs/SERVICE.md).
type (
	// JobSpec is a job document: exactly one of Sweep or Explore.
	JobSpec = jobs.Spec
	// JobStatus is a job's current state, progress and per-tier search
	// traffic.
	JobStatus = jobs.Status
	// JobManager owns a store directory: the shared result store plus
	// the job records under it.
	JobManager = jobs.Manager
	// ResultStore is the content-addressed, append-only on-disk search
	// result store (the durable tier behind a SearchCache).
	ResultStore = store.Store
	// SearchTierStats breaks a SearchCache's traffic down by tier
	// (memory hits, disk hits, computed misses).
	SearchTierStats = mapper.TierStats
)

// OpenJobManager opens (creating if needed) a store directory for
// submitting and running durable jobs.
func OpenJobManager(dir string) (*JobManager, error) { return jobs.Open(dir) }

// OpenResultStore opens (creating if needed) a result store, for wiring
// persistence directly into a SearchCache via SetPersister.
func OpenResultStore(dir string) (*ResultStore, error) { return store.Open(dir) }

// AttachJobs mounts the async job API (POST /v1/jobs and friends) on a
// sweep server, backed by the manager's store directory.
func AttachJobs(s *SweepServer, m *JobManager) { jobs.Attach(s, m) }

// Design-space explorer types: a multi-objective Pareto-frontier search
// over the sweep axes plus ranges, behind two strategies (exhaustive grid
// and budgeted adaptive search). `photoloop explore` and `POST
// /v1/explore` run the same engine.
type (
	// ExploreSpec declares an exploration: base × axes (values or
	// ranges) × one workload, frontier objectives, strategy and budget.
	ExploreSpec = explore.Spec
	// ExploreAxis is one search dimension: an explicit value grid or an
	// inclusive min/max/step range.
	ExploreAxis = explore.Axis
	// ExploreOptions tunes an exploration run (pool size, cache,
	// context, progress); it never changes the frontier found.
	ExploreOptions = explore.Options
	// Frontier is a completed exploration: the Pareto-optimal points
	// plus coverage and cache accounting.
	Frontier = explore.Frontier
	// FrontierPoint is one non-dominated design with its axis-value
	// provenance, objective vector and dominated count.
	FrontierPoint = explore.FrontierPoint
)

// Exploration strategies.
const (
	// ExploreAuto picks grid when the space fits the budget, adaptive
	// otherwise.
	ExploreAuto = explore.StrategyAuto
	// ExploreGrid exhausts the space, bit-identical to Sweep plus a
	// dominance filter.
	ExploreGrid = explore.StrategyGrid
	// ExploreAdaptive runs the budgeted evolutionary search.
	ExploreAdaptive = explore.StrategyAdaptive
)

// Explore searches a declared parameter space for its Pareto frontier
// over the spec's objectives. Results are deterministic for a fixed
// (Spec, Seed, SearchWorkers) triple, independent of Workers and Cache.
func Explore(spec ExploreSpec, opts ExploreOptions) (*Frontier, error) {
	return explore.Run(spec, opts)
}

// DefaultAlbireoExploreAxes returns the stock Albireo-lever search space
// `photoloop explore` uses when no axes are given.
func DefaultAlbireoExploreAxes() []ExploreAxis { return explore.DefaultAlbireoAxes() }

// Experiment harnesses (the paper's figures).
type (
	// ExperimentConfig tunes the figure harnesses.
	ExperimentConfig = exp.Config
	// Fig2Result is the energy-breakdown validation.
	Fig2Result = exp.Fig2Result
	// Fig3Result is the throughput comparison.
	Fig3Result = exp.Fig3Result
	// Fig4Result is the full-system memory exploration.
	Fig4Result = exp.Fig4Result
	// Fig5Result is the reuse-scaling architecture exploration.
	Fig5Result = exp.Fig5Result
	// AblationResult quantifies the model's mechanisms.
	AblationResult = exp.AblationResult
)

// Fig2 regenerates the paper's energy-breakdown validation.
func Fig2(cfg ExperimentConfig) (*Fig2Result, error) { return exp.Fig2(cfg) }

// Fig3 regenerates the paper's throughput comparison.
func Fig3(cfg ExperimentConfig) (*Fig3Result, error) { return exp.Fig3(cfg) }

// Fig4 regenerates the paper's full-system memory exploration.
func Fig4(cfg ExperimentConfig) (*Fig4Result, error) { return exp.Fig4(cfg) }

// Fig5 regenerates the paper's reuse-scaling architecture exploration; the
// grid runs through the sweep subsystem (see Fig5SweepSpec via
// `photoloop sweep -preset fig5`).
func Fig5(cfg ExperimentConfig) (*Fig5Result, error) { return exp.Fig5(cfg) }

// Ablations quantifies the modeling mechanisms (loop permutations,
// window-overlap sharing, streaming, mapper seeding) on the Albireo system.
func Ablations(cfg ExperimentConfig) (*AblationResult, error) { return exp.Ablations(cfg) }
