package photoloop_test

// Benchmark-guard tests for the compiled evaluation engine: the fast path
// must produce results identical to the one-shot Evaluate across every
// canonical Albireo mapping and every scaling projection, and must not
// allocate.

import (
	"math"
	"reflect"
	"testing"

	"photoloop"
)

// equivalenceLayers spans the shapes the figures evaluate: an unstrided
// convolution that fits the array, a strided early layer, a deep
// small-feature layer, and a fully-connected layer.
func equivalenceLayers() []photoloop.Layer {
	return []photoloop.Layer{
		photoloop.NewConv("bestcase", 1, 96, 64, 32, 32, 3, 3, 1, 1),
		photoloop.NewConv("strided", 1, 64, 3, 112, 112, 7, 7, 2, 3),
		photoloop.NewConv("deep", 1, 256, 256, 14, 14, 3, 3, 1, 1),
		photoloop.NewFC("fc", 1, 1000, 512),
	}
}

// TestCompiledMatchesEvaluate checks that EvaluateInto — with and without
// the full ledger — reproduces Evaluate exactly on every canonical Albireo
// mapping across all three scaling projections.
func TestCompiledMatchesEvaluate(t *testing.T) {
	for _, scaling := range []photoloop.AlbireoScaling{
		photoloop.Conservative, photoloop.Moderate, photoloop.Aggressive,
	} {
		a, err := photoloop.Albireo(scaling).Build()
		if err != nil {
			t.Fatal(err)
		}
		eng, err := photoloop.NewEngine(a)
		if err != nil {
			t.Fatal(err)
		}
		scratch := eng.NewScratch()
		for _, layer := range equivalenceLayers() {
			layer := layer
			c, err := eng.Compile(&layer)
			if err != nil {
				t.Fatal(err)
			}
			mappings := photoloop.AlbireoCanonicalMappings(a, &layer)
			if len(mappings) == 0 {
				t.Fatalf("%v/%s: no canonical mappings", scaling, layer.Name)
			}
			for mi, m := range mappings {
				for _, chargeStatic := range []bool{false, true} {
					ref, err := photoloop.Evaluate(a, &layer, m, photoloop.EvalOptions{ChargeStatic: chargeStatic})
					if err != nil {
						t.Fatalf("%v/%s[%d]: Evaluate: %v", scaling, layer.Name, mi, err)
					}

					// Fast path: everything but the itemized ledger.
					fast := &photoloop.Result{}
					err = c.EvaluateInto(scratch, m, fast, photoloop.EvalOptions{SkipValidate: true, ChargeStatic: chargeStatic})
					if err != nil {
						t.Fatalf("%v/%s[%d]: EvaluateInto: %v", scaling, layer.Name, mi, err)
					}
					compareResults(t, ref, fast, false)

					// Full-ledger path: ledger included, still identical.
					full := &photoloop.Result{}
					err = c.EvaluateInto(scratch, m, full, photoloop.EvalOptions{SkipValidate: true, ChargeStatic: chargeStatic, FullLedger: true})
					if err != nil {
						t.Fatalf("%v/%s[%d]: EvaluateInto full: %v", scaling, layer.Name, mi, err)
					}
					compareResults(t, ref, full, true)
				}
			}
		}
	}
}

// compareResults requires got to be bit-identical to want in every scalar
// field and the usage table; withLedger additionally requires the itemized
// energy ledger to match.
func compareResults(t *testing.T, want, got *photoloop.Result, withLedger bool) {
	t.Helper()
	scalar := func(name string, w, g float64) {
		t.Helper()
		if w != g && !(math.IsNaN(w) && math.IsNaN(g)) {
			t.Errorf("%s: %s = %v, want %v", want.Layer, name, g, w)
		}
	}
	if got.Layer != want.Layer {
		t.Errorf("Layer = %q, want %q", got.Layer, want.Layer)
	}
	if got.MACs != want.MACs || got.PaddedMACs != want.PaddedMACs || got.ComputeCycles != want.ComputeCycles {
		t.Errorf("%s: counters (%d %d %d), want (%d %d %d)", want.Layer,
			got.MACs, got.PaddedMACs, got.ComputeCycles,
			want.MACs, want.PaddedMACs, want.ComputeCycles)
	}
	scalar("Cycles", want.Cycles, got.Cycles)
	scalar("Utilization", want.Utilization, got.Utilization)
	scalar("MACsPerCycle", want.MACsPerCycle, got.MACsPerCycle)
	scalar("TotalPJ", want.TotalPJ, got.TotalPJ)
	scalar("AreaUM2", want.AreaUM2, got.AreaUM2)
	if got.BottleneckLevel != want.BottleneckLevel {
		t.Errorf("%s: BottleneckLevel = %q, want %q", want.Layer, got.BottleneckLevel, want.BottleneckLevel)
	}
	if !reflect.DeepEqual(got.Usage, want.Usage) {
		t.Errorf("%s: usage tables differ", want.Layer)
	}
	if withLedger {
		if !reflect.DeepEqual(got.Energy, want.Energy) {
			t.Errorf("%s: energy ledgers differ (%d vs %d items)", want.Layer, len(got.Energy), len(want.Energy))
		}
	} else if len(got.Energy) != 0 {
		t.Errorf("%s: fast path produced %d ledger items, want none", want.Layer, len(got.Energy))
	}
}

// TestLedgerTensorAttribution pins the ledger contract both evaluation
// tiers share: storage-access and converter charges carry the operand they
// arose for; only per-MAC compute (and static) charges have no tensor.
// The equivalence test cannot catch a shared regression here because both
// tiers run on the same compiled tables.
func TestLedgerTensorAttribution(t *testing.T) {
	a, err := photoloop.Albireo(photoloop.Conservative).Build()
	if err != nil {
		t.Fatal(err)
	}
	layer := photoloop.NewConv("l", 1, 96, 64, 32, 32, 3, 3, 1, 1)
	mappings := photoloop.AlbireoCanonicalMappings(a, &layer)
	if len(mappings) == 0 {
		t.Fatal("no canonical mappings")
	}
	res, err := photoloop.Evaluate(a, &layer, mappings[0], photoloop.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Energy {
		e := &res.Energy[i]
		if e.Level == "compute" || e.Level == "static" {
			if e.Tensor != "" {
				t.Errorf("%s/%s: compute/static charge has tensor %q", e.Level, e.Component, e.Tensor)
			}
			continue
		}
		if e.Tensor == "" {
			t.Errorf("%s/%s/%s: storage charge lost its tensor attribution", e.Level, e.Component, e.Action)
		}
	}
	if pj := res.EnergyOf("dram", photoloop.Weights.String()); pj <= 0 {
		t.Errorf("EnergyOf(dram, Weights) = %g, want > 0", pj)
	}
}

// TestEvaluateIntoZeroAllocs guards the fast path's allocation-free
// contract: after warmup, repeated evaluations into reused scratch and
// result buffers must not allocate at all.
func TestEvaluateIntoZeroAllocs(t *testing.T) {
	a, err := photoloop.Albireo(photoloop.Aggressive).Build()
	if err != nil {
		t.Fatal(err)
	}
	layer := photoloop.NewConv("l", 1, 128, 128, 28, 28, 3, 3, 1, 1)
	mappings := photoloop.AlbireoCanonicalMappings(a, &layer)
	if len(mappings) == 0 {
		t.Fatal("no canonical mappings")
	}
	c, err := photoloop.Compile(a, &layer)
	if err != nil {
		t.Fatal(err)
	}
	scratch := &photoloop.EvalScratch{} // zero value must self-size
	res := &photoloop.Result{}
	for _, opts := range []photoloop.EvalOptions{
		{SkipValidate: true},
		{SkipValidate: true, ChargeStatic: true},
	} {
		opts := opts
		allocs := testing.AllocsPerRun(200, func() {
			for _, m := range mappings {
				if err := c.EvaluateInto(scratch, m, res, opts); err != nil {
					t.Fatal(err)
				}
			}
		})
		if allocs != 0 {
			t.Errorf("EvaluateInto(opts=%+v) allocated %.1f times per run, want 0", opts, allocs)
		}
	}
}

// TestSessionSearchMatchesOneShot checks that a shared mapper session
// returns the same search outcome as the one-shot Search entry point.
func TestSessionSearchMatchesOneShot(t *testing.T) {
	a, err := photoloop.Albireo(photoloop.Moderate).Build()
	if err != nil {
		t.Fatal(err)
	}
	layer := photoloop.NewConv("l", 1, 64, 64, 14, 14, 3, 3, 1, 1)
	opts := photoloop.SearchOptions{Budget: 300, Seed: 7, Workers: 2}
	one, err := photoloop.Search(a, &layer, opts)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := photoloop.NewMapperSession(a)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := sess.Search(&layer, opts)
	if err != nil {
		t.Fatal(err)
	}
	if one.Result.TotalPJ != shared.Result.TotalPJ || one.Mapping.String() != shared.Mapping.String() {
		t.Errorf("session search diverged: %g pJ vs %g pJ", shared.Result.TotalPJ, one.Result.TotalPJ)
	}
}

// TestLowerBoundAndPartialZeroAllocs extends the allocation-free contract
// to the search accelerators: the admissible lower bound and the
// shared-prefix delta evaluation must not allocate on a NewScratch.
func TestLowerBoundAndPartialZeroAllocs(t *testing.T) {
	a, err := photoloop.Albireo(photoloop.Aggressive).Build()
	if err != nil {
		t.Fatal(err)
	}
	layer := photoloop.NewConv("l", 1, 128, 128, 28, 28, 3, 3, 1, 1)
	mappings := photoloop.AlbireoCanonicalMappings(a, &layer)
	if len(mappings) < 2 {
		t.Fatal("need at least two canonical mappings")
	}
	c, err := photoloop.Compile(a, &layer)
	if err != nil {
		t.Fatal(err)
	}
	scratch := c.Engine().NewScratch()
	res := &photoloop.Result{}
	opts := photoloop.EvalOptions{SkipValidate: true}
	if allocs := testing.AllocsPerRun(200, func() {
		for _, m := range mappings {
			if b := c.LowerBound(scratch, m, opts); b.EnergyPJ <= 0 || b.Cycles <= 0 {
				t.Fatal("degenerate bound")
			}
		}
	}); allocs != 0 {
		t.Errorf("LowerBound allocated %.1f times per run, want 0", allocs)
	}
	// Delta evaluation: consecutive canonical mappings share outer levels.
	if allocs := testing.AllocsPerRun(200, func() {
		for i, m := range mappings {
			shared := 0
			if i > 0 {
				shared = 1
			}
			if err := c.EvaluatePartial(scratch, m, res, opts, shared); err != nil {
				t.Fatal(err)
			}
		}
	}); allocs != 0 {
		t.Errorf("EvaluatePartial allocated %.1f times per run, want 0", allocs)
	}
}

// TestLowerBoundAdmissibleOnAlbireo pins the admissibility property on the
// real paper architecture across scalings: the bound never exceeds the
// full evaluation for any canonical mapping.
func TestLowerBoundAdmissibleOnAlbireo(t *testing.T) {
	for _, scaling := range []photoloop.AlbireoScaling{
		photoloop.Conservative, photoloop.Moderate, photoloop.Aggressive,
	} {
		a, err := photoloop.Albireo(scaling).Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, layer := range equivalenceLayers() {
			layer := layer
			c, err := photoloop.Compile(a, &layer)
			if err != nil {
				t.Fatal(err)
			}
			scratch := c.Engine().NewScratch()
			res := &photoloop.Result{}
			for _, m := range photoloop.AlbireoCanonicalMappings(a, &layer) {
				for _, opts := range []photoloop.EvalOptions{
					{SkipValidate: true},
					{SkipValidate: true, ChargeStatic: true},
				} {
					if err := c.EvaluateInto(scratch, m, res, opts); err != nil {
						t.Fatal(err)
					}
					b := c.LowerBound(scratch, m, opts)
					if b.EnergyPJ > res.TotalPJ {
						t.Errorf("%v/%s: bound %.9g > evaluation %.9g pJ", scaling, layer.Name, b.EnergyPJ, res.TotalPJ)
					}
					if b.Cycles > res.Cycles {
						t.Errorf("%v/%s: bound %g > evaluation %g cycles", scaling, layer.Name, b.Cycles, res.Cycles)
					}
				}
			}
		}
	}
}
