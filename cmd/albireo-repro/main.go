// Command albireo-repro regenerates the paper's figures: the Fig. 2 energy
// validation, Fig. 3 throughput comparison, Fig. 4 full-system memory
// exploration, and Fig. 5 reuse-scaling architecture exploration, printing
// textual equivalents of each and checking the paper's headline claims.
//
// Usage:
//
//	albireo-repro [-fig all|2|3|4|5|claims] [-budget N] [-seed N] [-csv dir]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"photoloop/internal/albireo"
	"photoloop/internal/exp"
	"photoloop/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: all, 2, 3, 4, 5, ablation, or claims")
	budget := flag.Int("budget", 800, "mapper evaluation budget per layer")
	seed := flag.Int64("seed", 1, "mapper random seed")
	csvDir := flag.String("csv", "", "also write each figure's table as CSV into this directory")
	flag.Parse()

	cfg := exp.Config{Budget: *budget, Seed: *seed}
	w := os.Stdout

	runOne := func(name string, run func() (renderer, error)) {
		t0 := time.Now()
		r, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if err := r.Render(w); err != nil {
			fmt.Fprintf(os.Stderr, "%s: render: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "[%s regenerated in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
			if err := r.Table().CSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: csv: %v\n", name, err)
			}
			f.Close()
		}
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }

	if want("2") {
		runOne("fig2", func() (renderer, error) { return exp.Fig2(cfg) })
	}
	if want("3") {
		runOne("fig3", func() (renderer, error) { return exp.Fig3(cfg) })
	}
	if want("4") {
		runOne("fig4", func() (renderer, error) { return exp.Fig4(cfg) })
	}
	if want("5") {
		runOne("fig5", func() (renderer, error) { return exp.Fig5(cfg) })
	}
	if want("ablation") {
		runOne("ablation", func() (renderer, error) { return exp.Ablations(cfg) })
	}
	if *fig == "all" || *fig == "claims" {
		if err := checkClaims(w, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "claims: %v\n", err)
			os.Exit(1)
		}
	}
}

// renderer is the common surface of the figure results.
type renderer interface {
	Render(io.Writer) error
	Table() *report.Table
}

// checkClaims re-runs the figures and scores the paper's quantitative
// claims against the tolerance bands in internal/albireo.
func checkClaims(w io.Writer, cfg exp.Config) error {
	claims := albireo.Claims()
	fmt.Fprintln(w, "Paper claims check")
	fmt.Fprintln(w, "------------------")

	f2, err := exp.Fig2(cfg)
	if err != nil {
		return err
	}
	pass := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "FAIL"
	}
	fmt.Fprintf(w, "%s  Fig2 avg energy error %.2f%% (paper 0.4%%, band <= %.0f%%)\n",
		pass(f2.AvgAbsErrPct <= 100*claims.Fig2MaxAvgError), f2.AvgAbsErrPct, 100*claims.Fig2MaxAvgError)

	f3, err := exp.Fig3(cfg)
	if err != nil {
		return err
	}
	for _, row := range f3.Rows {
		frac := row.Modeled / row.Ideal
		switch row.Network {
		case "vgg16":
			fmt.Fprintf(w, "%s  Fig3 VGG16 modeled/ideal %.2f (band >= %.2f: near ideal)\n",
				pass(frac >= claims.Fig3VGGMinUtil), frac, claims.Fig3VGGMinUtil)
		case "alexnet":
			fmt.Fprintf(w, "%s  Fig3 AlexNet modeled/ideal %.2f (band <= %.2f: significantly degraded)\n",
				pass(frac <= claims.Fig3AlexMaxUtil), frac, claims.Fig3AlexMaxUtil)
		}
	}

	f4, err := exp.Fig4(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s  Fig4 aggressive DRAM share %.2f (paper 0.75, band %.2f..%.2f)\n",
		pass(f4.AggressiveBaselineDRAMShare >= claims.Fig4AggressiveDRAMShareLo &&
			f4.AggressiveBaselineDRAMShare <= claims.Fig4AggressiveDRAMShareHi),
		f4.AggressiveBaselineDRAMShare, claims.Fig4AggressiveDRAMShareLo, claims.Fig4AggressiveDRAMShareHi)
	fmt.Fprintf(w, "%s  Fig4 conservative DRAM share %.2f (paper: small, band <= %.2f)\n",
		pass(f4.ConservativeBaselineDRAMShare <= claims.Fig4ConservativeDRAMShareHi),
		f4.ConservativeBaselineDRAMShare, claims.Fig4ConservativeDRAMShareHi)
	fmt.Fprintf(w, "%s  Fig4 batching+fusion reduction %.2f (paper 0.67, band >= %.2f)\n",
		pass(f4.AggressiveCombinedReduction >= claims.Fig4CombinedReductionLo),
		f4.AggressiveCombinedReduction, claims.Fig4CombinedReductionLo)

	f5, err := exp.Fig5(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s  Fig5 converter reduction %.2f (paper 0.42, band >= %.2f)\n",
		pass(f5.BestConverterReduction >= claims.Fig5ConverterReductionLo),
		f5.BestConverterReduction, claims.Fig5ConverterReductionLo)
	fmt.Fprintf(w, "%s  Fig5 accelerator reduction %.2f (paper 0.31, band >= %.2f)\n",
		pass(f5.BestAcceleratorReduction >= claims.Fig5AcceleratorReductionLo),
		f5.BestAcceleratorReduction, claims.Fig5AcceleratorReductionLo)
	return nil
}
