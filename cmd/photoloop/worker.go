package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"photoloop/internal/shard"
	"photoloop/internal/store"
)

// cmdWorker joins a serve process's shard coordinator as one worker: it
// leases task ranges over HTTP, evaluates them, and reports completion.
// Two topologies share the one loop:
//
//   - shared directory (-store DIR): results append to the worker's own
//     segment of the store directory the serve process also opened —
//     same-machine workers, zero result traffic on the wire;
//   - shared nothing (-remote): the worker holds no store at all and
//     POSTs completed searches back to the coordinator, which appends
//     them into its own segment — workers anywhere the coordinator URL
//     reaches.
//
// Interrupting the worker (SIGINT/SIGTERM) is always safe — its finished
// searches are durable (in the segment, or flushed per lease) and its
// leased range is reassigned after the lease TTL.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	coord := fs.String("coordinator", "", "coordinator base URL — the serve -shard process (required)")
	storeDir := fs.String("store", "", "shared result store directory; the same DIR the serve process opened")
	remote := fs.Bool("remote", false, "shared-nothing mode: no local store, results upload to the coordinator")
	jobID := fs.String("job", "", "work only this job ID (default: any published job)")
	searchWorkers := fs.Int("search-workers", 0, "per-search parallelism for specs that leave it unset")
	poll := fs.Duration("poll", 200*time.Millisecond, "idle wait between lease attempts")
	maxLeases := fs.Int("max-leases", 0, "exit after this many completed leases (0 = run until interrupted)")
	quiet := fs.Bool("quiet", false, "suppress per-lease output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" {
		return fmt.Errorf("worker requires -coordinator")
	}
	if *remote == (*storeDir != "") {
		return fmt.Errorf("worker requires exactly one of -store DIR (shared directory) or -remote (shared nothing)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := shard.WorkerOptions{
		Job:           *jobID,
		SearchWorkers: *searchWorkers,
		Poll:          *poll,
		MaxLeases:     *maxLeases,
	}
	if !*quiet {
		opts.OnLease = func(l *shard.Lease) {
			fmt.Fprintf(os.Stderr, "worker: leased %s: job %s gen %d (%d tasks)\n",
				l.ID, l.Job, l.Gen, len(l.Tasks))
		}
	}

	var ws shard.WorkerStore
	if *remote {
		rp := store.NewRemotePersister(*coord, nil)
		if !*quiet {
			rp.OnFlush = func(n int) {
				fmt.Fprintf(os.Stderr, "worker: uploading %d results\n", n)
			}
			fmt.Fprintf(os.Stderr, "worker: remote (no local store), coordinator %s\n", *coord)
		}
		ws = rp
	} else {
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		defer st.Close()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "worker: store %s (%s), coordinator %s\n",
				*storeDir, st.SegmentName(), *coord)
		}
		ws = shard.SharedDir{S: st}
	}
	return shard.Work(ctx, &shard.Client{Base: *coord}, ws, opts)
}
