package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"photoloop/internal/shard"
	"photoloop/internal/store"
)

// cmdWorker joins a serve process's shard coordinator as one worker: it
// leases task ranges over HTTP, evaluates them into its own segment of
// the shared store directory, and reports completion. Interrupting the
// worker (SIGINT/SIGTERM) is always safe — its finished searches are in
// the store and its leased range is reassigned after the lease TTL.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	coord := fs.String("coordinator", "", "coordinator base URL — the serve -shard process (required)")
	storeDir := fs.String("store", "", "shared result store directory; the same DIR the serve process opened (required)")
	jobID := fs.String("job", "", "work only this job ID (default: any published job)")
	searchWorkers := fs.Int("search-workers", 0, "per-search parallelism for specs that leave it unset")
	poll := fs.Duration("poll", 200*time.Millisecond, "idle wait between lease attempts")
	maxLeases := fs.Int("max-leases", 0, "exit after this many completed leases (0 = run until interrupted)")
	quiet := fs.Bool("quiet", false, "suppress per-lease output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" || *storeDir == "" {
		return fmt.Errorf("worker requires -coordinator and -store")
	}
	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	defer st.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := shard.WorkerOptions{
		Job:           *jobID,
		SearchWorkers: *searchWorkers,
		Poll:          *poll,
		MaxLeases:     *maxLeases,
	}
	if !*quiet {
		opts.OnLease = func(l *shard.Lease) {
			fmt.Fprintf(os.Stderr, "worker: leased %s: job %s gen %d (%d tasks)\n",
				l.ID, l.Job, l.Gen, len(l.Tasks))
		}
		fmt.Fprintf(os.Stderr, "worker: store %s (%s), coordinator %s\n",
			*storeDir, st.SegmentName(), *coord)
	}
	return shard.Work(ctx, &shard.Client{Base: *coord}, st, opts)
}
