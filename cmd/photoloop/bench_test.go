package main

import (
	"strings"
	"testing"
)

// gateDoc builds a compared bench document where MapperSearch runs at
// ratio × the baseline's ns/op and everything else is flat.
func gateDoc(ratio float64) *BenchDoc {
	base := &BenchDoc{Benchmarks: map[string]BenchMeasurement{
		"Evaluate":     {NsPerOp: 1000},
		"MapperSearch": {NsPerOp: 500000},
	}}
	doc := &BenchDoc{
		Benchmarks: map[string]BenchMeasurement{
			"Evaluate":     {NsPerOp: 1000},
			"MapperSearch": {NsPerOp: 500000 * ratio},
		},
		Baseline: base,
		Speedup:  map[string]float64{},
	}
	for name, m := range doc.Benchmarks {
		doc.Speedup[name] = base.Benchmarks[name].NsPerOp / m.NsPerOp
	}
	return doc
}

// TestCheckRegressions pins the -max-regress gate's pass/fail boundary
// and its disabled modes.
func TestCheckRegressions(t *testing.T) {
	if err := checkRegressions(gateDoc(1.3), 50); err != nil {
		t.Errorf("30%% slowdown under a 50%% gate failed: %v", err)
	}
	err := checkRegressions(gateDoc(1.8), 50)
	if err == nil {
		t.Fatal("80% slowdown under a 50% gate passed")
	}
	if !strings.Contains(err.Error(), "MapperSearch") || strings.Contains(err.Error(), "Evaluate") {
		t.Errorf("gate error should name only the regressed benchmark: %v", err)
	}
	if err := checkRegressions(gateDoc(10), -1); err != nil {
		t.Errorf("negative threshold must disable the gate: %v", err)
	}
	if err := checkRegressions(&BenchDoc{}, 50); err != nil {
		t.Errorf("no baseline must disable the gate: %v", err)
	}
	if err := checkRegressions(gateDoc(0.5), 0); err != nil {
		t.Errorf("a speedup under a 0%% gate failed: %v", err)
	}
}
