package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"photoloop/internal/jobs"
	"photoloop/internal/shard"
	"photoloop/internal/store"
	"photoloop/internal/sweep"
)

// BenchScaling is the sharded-worker scaling measurement: the same sweep
// job run to completion on a cold store with 1, 2 and 4 worker loops
// (coordinator evaluates nothing itself). Searches counts the unique
// layer searches the job needs; every worker count computes exactly that
// many — the leases partition the grid, so adding workers never
// duplicates work — which is the scaling property this machine can
// verify regardless of how many cores it has to parallelize onto.
type BenchScaling struct {
	Cores    int    `json:"cores"`
	Points   int    `json:"points"`
	Searches int    `json:"searches"`
	Note     string `json:"note,omitempty"`
	// Workers maps worker count ("1", "2", "4") to its run.
	Workers map[string]BenchScalingRun `json:"workers"`
}

// BenchScalingRun is one worker count's cold-store job run.
type BenchScalingRun struct {
	WallMS float64 `json:"wall_ms"`
	// Segments is how many store segments the run produced (one per
	// writer: the workers, plus the coordinator's own).
	Segments int `json:"segments"`
	// StoreLen is the store's unique-search count after the run — equal
	// across worker counts when no work is duplicated.
	StoreLen int `json:"store_len"`
	// Speedup is the 1-worker wall time over this run's.
	Speedup float64 `json:"speedup,omitempty"`
}

// scalingSpec is the benchmark workload: a small grid over a zoo network,
// seeded and single-threaded per search so every run does identical work.
func scalingSpec() jobs.Spec {
	return jobs.Spec{Sweep: &sweep.Spec{
		Name: "bench-scaling",
		Base: sweep.Base{Albireo: &sweep.AlbireoBase{}},
		Axes: []sweep.Axis{
			{Param: "output_lanes", Values: []any{3, 5, 7, 9}},
			{Param: "pixel_lanes", Values: []any{6, 12}},
		},
		Workloads:     []sweep.Workload{{Network: "vgg16"}},
		Budget:        400,
		Seed:          1,
		SearchWorkers: 1,
	}}
}

// benchScaling runs the scaling suite for the given worker counts.
func benchScaling(counts []int) (*BenchScaling, error) {
	sc := &BenchScaling{Cores: runtime.NumCPU(), Workers: map[string]BenchScalingRun{}}
	var base float64
	for _, n := range counts {
		fmt.Fprintf(os.Stderr, "bench: scaling %d worker(s)...\n", n)
		run, points, err := benchScalingRun(n)
		if err != nil {
			return nil, err
		}
		sc.Points = points
		if sc.Searches == 0 {
			sc.Searches = run.StoreLen
		} else if run.StoreLen != sc.Searches {
			return nil, fmt.Errorf("bench: scaling run with %d workers computed %d searches, want %d (duplicated or lost work)",
				n, run.StoreLen, sc.Searches)
		}
		if base == 0 {
			base = run.WallMS
		} else if run.WallMS > 0 {
			run.Speedup = base / run.WallMS
		}
		sc.Workers[strconv.Itoa(n)] = run
	}
	if max := counts[len(counts)-1]; sc.Cores < max {
		sc.Note = fmt.Sprintf("wall-clock scaling is bounded by %d available core(s); work conservation (equal store_len) is the machine-independent signal — see docs/PERFORMANCE.md", sc.Cores)
	}
	return sc, nil
}

// benchScalingRun executes the benchmark job once on a cold store with n
// dedicated worker loops, each holding its own store handle (its own
// segment — the real multi-writer layout).
func benchScalingRun(n int) (BenchScalingRun, int, error) {
	var zero BenchScalingRun
	dir, err := os.MkdirTemp("", "photoloop-bench-scaling-*")
	if err != nil {
		return zero, 0, err
	}
	defer os.RemoveAll(dir)

	m, err := jobs.Open(dir)
	if err != nil {
		return zero, 0, err
	}
	defer m.Close()
	m.Shard = shard.NewCoordinator()
	m.ShardLocal = false
	m.Workers = 1

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		wst, err := store.Open(dir)
		if err != nil {
			return zero, 0, err
		}
		defer wst.Close()
		go func() {
			done <- shard.Work(ctx, shard.Local{C: m.Shard}, shard.SharedDir{S: wst}, shard.WorkerOptions{Poll: 5 * time.Millisecond})
		}()
	}

	sp := scalingSpec()
	st, err := m.Submit(sp)
	if err != nil {
		return zero, 0, err
	}
	start := time.Now()
	st, err = m.Run(ctx, st.ID)
	wall := time.Since(start)
	if err != nil {
		return zero, 0, err
	}
	cancel()
	for i := 0; i < n; i++ {
		if werr := <-done; werr != nil {
			return zero, 0, fmt.Errorf("bench: worker: %w", werr)
		}
	}
	return BenchScalingRun{
		WallMS:   float64(wall.Microseconds()) / 1e3,
		Segments: m.Store().Segments(),
		StoreLen: m.Store().Len(),
	}, st.Total, nil
}
