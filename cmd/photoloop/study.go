package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"photoloop/internal/sweep"
)

// cmdStudy runs the comparative preset study: presets x workloads x
// objectives through the cached sweep engine, ranked per (workload,
// objective) group. See sweep.StudySpec for the semantics.
func cmdStudy(args []string) error {
	fs := flag.NewFlagSet("study", flag.ExitOnError)
	presetsFlag := fs.String("presets", "all", "comma-separated preset names, or all")
	workloads := fs.String("workloads", "all", "comma-separated zoo network names, or all")
	objectives := fs.String("objectives", "energy", "comma-separated mapper objectives (energy, delay, edp)")
	batch := fs.Int("batch", 1, "batch size for every workload")
	budget := fs.Int("budget", 0, "mapper budget per layer (0 = mapper default)")
	seed := fs.Int64("seed", 0, "mapper seed (0 = mapper default)")
	searchWorkers := fs.Int("search-workers", 0, "per-layer search parallelism; pin it for machine-independent results (0 = mapper default)")
	workers := fs.Int("workers", 0, "point-level worker pool size (default GOMAXPROCS)")
	format := fs.String("format", "table", "output format: table, markdown, json or csv")
	outPath := fs.String("out", "", "write results to this file (default stdout)")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "table", "markdown", "json", "csv":
	default:
		return fmt.Errorf("unknown format %q (want table, markdown, json or csv)", *format)
	}

	spec := sweep.StudySpec{
		Presets:       splitList(*presetsFlag),
		Workloads:     splitList(*workloads),
		Objectives:    splitList(*objectives),
		Batch:         *batch,
		Budget:        *budget,
		Seed:          *seed,
		SearchWorkers: *searchWorkers,
	}

	out, closeOut, err := openOut(*outPath)
	if err != nil {
		return err
	}

	opts := sweep.Options{Workers: *workers}
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rstudy: %d/%d points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res, err := sweep.RunStudy(spec, opts)
	if err != nil {
		return closeOut(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "study: %d layer searches, %d deduplicated\n",
			res.CacheHits+res.CacheMisses, res.CacheHits)
	}

	switch *format {
	case "markdown":
		return closeOut(res.WriteMarkdown(out))
	case "json":
		return closeOut(res.WriteJSON(out))
	case "csv":
		return closeOut(res.WriteCSV(out))
	}
	return closeOut(renderStudyTable(out, res))
}

// renderStudyTable prints the ranked comparison as an aligned text table,
// one section per (workload, objective) group.
func renderStudyTable(out io.Writer, res *sweep.StudyResult) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "network\tobjective\trank\tpreset\tpJ/MAC\tMACs/cycle\tutil\tarea mm^2\ttotal pJ\tcycles")
	for i := range res.Rows {
		r := &res.Rows[i]
		if i > 0 && (r.Network != res.Rows[i-1].Network || r.Objective != res.Rows[i-1].Objective) {
			fmt.Fprintln(w, "\t\t\t\t\t\t\t\t\t")
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%.4f\t%.1f\t%.1f%%\t%.2f\t%.4g\t%.4g\n",
			r.Network, r.Objective, r.Rank, r.Preset, r.PJPerMAC, r.MACsPerCycle,
			100*r.Utilization, r.AreaUM2/1e6, r.TotalPJ, r.Cycles)
	}
	return w.Flush()
}
