package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"text/tabwriter"
	"time"

	"photoloop"
)

// BenchDoc is the JSON document `photoloop bench` emits: the repo's
// performance trajectory artifact (BENCH_PR3.json and successors). With
// -compare, the prior document's measurements are embedded as the baseline
// and per-benchmark speedups are computed.
type BenchDoc struct {
	Schema    string `json:"schema"`
	Label     string `json:"label,omitempty"`
	Generated string `json:"generated_at,omitempty"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	// Benchmarks maps benchmark name to its measurement.
	Benchmarks map[string]BenchMeasurement `json:"benchmarks"`
	// Search reports the mapper's candidate-stream statistics on a
	// representative seeded search (Albireo aggressive, ResNet18-style
	// layer, canonical seeds, budget 500).
	Search *BenchSearchStats `json:"search,omitempty"`
	// Scaling reports the sharded-worker scaling runs (-scaling).
	Scaling *BenchScaling `json:"scaling,omitempty"`
	// Baseline holds the compared prior document's measurements.
	Baseline *BenchDoc `json:"baseline,omitempty"`
	// Speedup maps benchmark name to baseline ns/op divided by this
	// document's ns/op.
	Speedup map[string]float64 `json:"speedup,omitempty"`
}

// BenchMeasurement is one benchmark result.
type BenchMeasurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// BenchSearchStats summarizes one search's candidate dispatch.
type BenchSearchStats struct {
	Budget         int     `json:"budget"`
	Evaluations    int     `json:"evaluations"`
	Pruned         int     `json:"pruned"`
	DeltaEvals     int     `json:"delta_evals"`
	FullEvals      int     `json:"full_evals"`
	Duplicates     int     `json:"duplicates"`
	Invalid        int     `json:"invalid"`
	PrunedFraction float64 `json:"pruned_fraction"`
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the bench JSON document instead of a table")
	outPath := fs.String("out", "", "write the document to this file (implies -json)")
	label := fs.String("label", "", "label recorded in the document")
	comparePath := fs.String("compare", "", "prior bench JSON to embed as baseline and compute speedups against")
	maxRegress := fs.Float64("max-regress", -1, "with -compare: exit non-zero if any benchmark runs more than this percentage slower than the baseline (e.g. 50 tolerates up to 1.5x the baseline ns/op); negative disables the gate")
	only := fs.String("only", "", "run only this benchmark (Evaluate, EvaluateFullLedger, LowerBound, MapperSearch, Fig4, Fig5)")
	reps := fs.Int("reps", 1, "run each benchmark this many times and record the fastest — min-of-N rejects scheduler noise on shared machines")
	scaling := fs.Bool("scaling", false, "also run the sharded-worker scaling benchmark (the same sweep job with 1, 2 and 4 workers on a cold store)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxRegress >= 0 && *comparePath == "" {
		return fmt.Errorf("bench: -max-regress requires -compare")
	}

	doc := &BenchDoc{
		Schema:     "photoloop-bench/1",
		Label:      *label,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]BenchMeasurement{},
	}

	benches, err := benchSuite()
	if err != nil {
		return err
	}
	if *only != "" {
		known := false
		for _, b := range benches {
			known = known || b.name == *only
		}
		if !known {
			names := make([]string, 0, len(benches))
			for _, b := range benches {
				names = append(names, b.name)
			}
			return fmt.Errorf("bench: unknown benchmark %q (want one of %v)", *only, names)
		}
	}
	for _, b := range benches {
		if *only != "" && b.name != *only {
			continue
		}
		fmt.Fprintf(os.Stderr, "bench: %s...\n", b.name)
		var best BenchMeasurement
		for rep := 0; rep < *reps || rep == 0; rep++ {
			r := testing.Benchmark(b.fn)
			m := BenchMeasurement{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				N:           r.N,
			}
			if rep == 0 || m.NsPerOp < best.NsPerOp {
				best = m
			}
		}
		doc.Benchmarks[b.name] = best
	}
	if *only == "" {
		st, err := benchSearchStats()
		if err != nil {
			return err
		}
		doc.Search = st
	}
	if *scaling {
		sc, err := benchScaling([]int{1, 2, 4})
		if err != nil {
			return err
		}
		doc.Scaling = sc
	}

	if *comparePath != "" {
		f, err := os.Open(*comparePath)
		if err != nil {
			return err
		}
		base := &BenchDoc{}
		err = json.NewDecoder(f).Decode(base)
		f.Close()
		if err != nil {
			return fmt.Errorf("bench: parsing %s: %w", *comparePath, err)
		}
		base.Baseline, base.Speedup = nil, nil // one level of history
		doc.Baseline = base
		doc.Speedup = map[string]float64{}
		for name, m := range doc.Benchmarks {
			if bm, ok := base.Benchmarks[name]; ok && m.NsPerOp > 0 {
				doc.Speedup[name] = bm.NsPerOp / m.NsPerOp
			}
		}
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
		*asJSON = true
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
	} else if err := renderBench(out, doc); err != nil {
		return err
	}
	// The regression gate runs after the document is written, so CI keeps
	// the artifact even when the gate trips.
	return checkRegressions(doc, *maxRegress)
}

// checkRegressions applies the -max-regress gate: any benchmark whose
// ns/op exceeds its baseline's by more than maxRegress percent fails the
// run. Benchmarks absent from the baseline pass (nothing to compare).
func checkRegressions(doc *BenchDoc, maxRegress float64) error {
	if maxRegress < 0 || doc.Baseline == nil {
		return nil
	}
	var failed []string
	for _, name := range benchOrder {
		s, ok := doc.Speedup[name]
		if !ok || s <= 0 {
			continue
		}
		if slowdown := (1/s - 1) * 100; slowdown > maxRegress {
			failed = append(failed, fmt.Sprintf("%s %.0f%% slower (%.0f → %.0f ns/op)",
				name, slowdown, doc.Baseline.Benchmarks[name].NsPerOp, doc.Benchmarks[name].NsPerOp))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("bench: regression beyond %.0f%%: %s", maxRegress, strings.Join(failed, "; "))
	}
	return nil
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// benchSuite mirrors the repo's go-test microbenchmarks (bench_test.go) so
// `photoloop bench` numbers are directly comparable with `go test -bench`.
func benchSuite() ([]namedBench, error) {
	a, err := photoloop.Albireo(photoloop.Aggressive).Build()
	if err != nil {
		return nil, err
	}
	layer := photoloop.NewConv("l", 1, 128, 128, 28, 28, 3, 3, 1, 1)
	seeds := photoloop.AlbireoCanonicalMappings(a, &layer)
	if len(seeds) == 0 {
		return nil, fmt.Errorf("bench: no canonical mapping")
	}
	m := seeds[0]
	c, err := photoloop.Compile(a, &layer)
	if err != nil {
		return nil, err
	}
	benchCfg := photoloop.ExperimentConfig{Budget: 200, Seed: 1}
	evalBench := func(opts photoloop.EvalOptions) func(b *testing.B) {
		return func(b *testing.B) {
			scratch := c.Engine().NewScratch()
			res := &photoloop.Result{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.EvaluateInto(scratch, m, res, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return []namedBench{
		{"Evaluate", evalBench(photoloop.EvalOptions{SkipValidate: true})},
		{"EvaluateFullLedger", evalBench(photoloop.EvalOptions{SkipValidate: true, FullLedger: true})},
		{"LowerBound", func(b *testing.B) {
			scratch := c.Engine().NewScratch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if bd := c.LowerBound(scratch, m, photoloop.EvalOptions{}); bd.EnergyPJ <= 0 {
					b.Fatal("degenerate bound")
				}
			}
		}},
		{"MapperSearch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := photoloop.Search(a, &layer, photoloop.SearchOptions{Budget: 500, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Fig4", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := photoloop.Fig4(benchCfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Fig5", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := photoloop.Fig5(benchCfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}, nil
}

// benchSearchStats runs one representative seeded search (canonical
// schedules as seeds, the configuration every figure harness uses) and
// reports the mapper's candidate-stream statistics.
func benchSearchStats() (*BenchSearchStats, error) {
	a, err := photoloop.Albireo(photoloop.Aggressive).Build()
	if err != nil {
		return nil, err
	}
	layer := photoloop.NewConv("l", 1, 128, 128, 28, 28, 3, 3, 1, 1)
	best, err := photoloop.Search(a, &layer, photoloop.SearchOptions{
		Budget: 500, Seed: 1,
		Seeds: photoloop.AlbireoCanonicalMappings(a, &layer),
	})
	if err != nil {
		return nil, err
	}
	st := best.Stats
	return &BenchSearchStats{
		Budget:         500,
		Evaluations:    best.Evaluations,
		Pruned:         st.Pruned,
		DeltaEvals:     st.DeltaEvals,
		FullEvals:      st.FullEvals,
		Duplicates:     st.Duplicates,
		Invalid:        st.Invalid,
		PrunedFraction: st.PrunedFraction(),
	}, nil
}

// benchOrder is the suite's canonical display and gating order.
var benchOrder = []string{"Evaluate", "EvaluateFullLedger", "LowerBound", "MapperSearch", "Fig4", "Fig5"}

func renderBench(out io.Writer, doc *BenchDoc) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tns/op\tallocs/op\tB/op\tspeedup")
	for _, name := range benchOrder {
		m, ok := doc.Benchmarks[name]
		if !ok {
			continue
		}
		sp := ""
		if s, ok := doc.Speedup[name]; ok {
			sp = fmt.Sprintf("%.2fx", s)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%d\t%d\t%s\n", name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, sp)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if doc.Search != nil {
		s := doc.Search
		fmt.Fprintf(out, "seeded search (budget %d): %d evals — %d pruned (%.0f%%), %d delta, %d full, %d dup, %d invalid\n",
			s.Budget, s.Evaluations, s.Pruned, 100*s.PrunedFraction, s.DeltaEvals, s.FullEvals, s.Duplicates, s.Invalid)
	}
	if doc.Scaling != nil {
		sc := doc.Scaling
		fmt.Fprintf(out, "sharded scaling (%d points, %d searches, %d cores):\n", sc.Points, sc.Searches, sc.Cores)
		for _, n := range []string{"1", "2", "4"} {
			r, ok := sc.Workers[n]
			if !ok {
				continue
			}
			sp := ""
			if r.Speedup > 0 {
				sp = fmt.Sprintf("  %.2fx", r.Speedup)
			}
			fmt.Fprintf(out, "  %s worker(s): %.0f ms, %d segments, %d searches%s\n", n, r.WallMS, r.Segments, r.StoreLen, sp)
		}
		if sc.Note != "" {
			fmt.Fprintf(out, "  note: %s\n", sc.Note)
		}
	}
	return nil
}
