// Command photoloop is the generic specification-driven front end of the
// modeling framework: evaluate or map JSON-specified architectures against
// built-in or JSON-specified DNN workloads.
//
// Subcommands:
//
//	photoloop eval -arch a.json -network vgg16 [-layer name] [-mapping m.json] [-budget N] [-objective energy|delay|edp]
//	photoloop template          # print an example architecture spec
//	photoloop networks          # list built-in workloads
//	photoloop classes           # list component classes
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"photoloop/internal/components"
	"photoloop/internal/mapper"
	"photoloop/internal/model"
	"photoloop/internal/spec"
	"photoloop/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "eval":
		err = cmdEval(os.Args[2:])
	case "template":
		fmt.Print(spec.Template)
	case "networks":
		err = cmdNetworks()
	case "classes":
		for _, c := range components.Classes() {
			fmt.Println(c)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "photoloop: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "photoloop:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  photoloop eval -arch a.json (-network name|file.json) [-layer name] [-mapping m.json] [-batch N] [-budget N] [-objective energy|delay|edp] [-seed N]
  photoloop template
  photoloop networks
  photoloop classes`)
}

func cmdNetworks() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "network\tlayers\tMACs\tweights")
	names := make([]string, 0)
	for name := range workload.Zoo() {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n, err := workload.ByName(name, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\n", name, len(n.Layers), n.MACs(), n.WeightElems())
	}
	return w.Flush()
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	archPath := fs.String("arch", "", "architecture spec JSON (required)")
	network := fs.String("network", "", "built-in network name or network JSON file (required)")
	layerName := fs.String("layer", "", "evaluate only this layer")
	mappingPath := fs.String("mapping", "", "mapping spec JSON (default: search)")
	batch := fs.Int("batch", 1, "batch size")
	budget := fs.Int("budget", 2000, "mapper budget per layer")
	objective := fs.String("objective", "energy", "energy, delay or edp")
	seed := fs.Int64("seed", 1, "mapper seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *archPath == "" || *network == "" {
		return fmt.Errorf("eval requires -arch and -network")
	}

	af, err := os.Open(*archPath)
	if err != nil {
		return err
	}
	defer af.Close()
	a, err := spec.DecodeArch(af)
	if err != nil {
		return err
	}

	net, err := loadNetwork(*network, *batch)
	if err != nil {
		return err
	}

	var obj mapper.Objective
	switch *objective {
	case "energy":
		obj = mapper.MinEnergy
	case "delay":
		obj = mapper.MinDelay
	case "edp":
		obj = mapper.MinEDP
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}

	layers := net.Layers
	if *layerName != "" {
		layers = nil
		for i := range net.Layers {
			if net.Layers[i].Name == *layerName {
				layers = append(layers, net.Layers[i])
			}
		}
		if len(layers) == 0 {
			return fmt.Errorf("network %s has no layer %q", net.Name, *layerName)
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "layer\tMACs\tpJ/MAC\tMACs/cycle\tutil\tevals")
	var totPJ float64
	var totMACs int64
	var totCycles float64
	for i := range layers {
		l := &layers[i]
		var res *model.Result
		evals := 0
		if *mappingPath != "" {
			mf, err := os.Open(*mappingPath)
			if err != nil {
				return err
			}
			m, err := spec.DecodeMapping(mf, a)
			mf.Close()
			if err != nil {
				return err
			}
			res, err = model.Evaluate(a, l, m, model.Options{})
			if err != nil {
				return fmt.Errorf("layer %s: %w", l.Name, err)
			}
		} else {
			best, err := mapper.Search(a, l, mapper.Options{Objective: obj, Budget: *budget, Seed: *seed})
			if err != nil {
				return fmt.Errorf("layer %s: %w", l.Name, err)
			}
			res, evals = best.Result, best.Evaluations
		}
		fmt.Fprintf(w, "%s\t%d\t%.4f\t%.1f\t%.1f%%\t%d\n",
			l.Name, res.MACs, res.PJPerMAC(), res.MACsPerCycle, 100*res.Utilization, evals)
		totPJ += res.TotalPJ
		totMACs += res.MACs
		totCycles += res.Cycles
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if len(layers) > 1 && totMACs > 0 && totCycles > 0 {
		fmt.Printf("total: %.4f pJ/MAC, %.1f MACs/cycle\n",
			totPJ/float64(totMACs), float64(totMACs)/totCycles)
	}
	area, err := a.Area()
	if err == nil {
		fmt.Printf("area: %.3f mm^2, peak %d MACs/cycle\n", area/1e6, a.PeakMACsPerCycle())
	}
	return nil
}

func loadNetwork(nameOrPath string, batch int) (*workload.Network, error) {
	if _, ok := workload.Zoo()[nameOrPath]; ok {
		n, err := workload.ByName(nameOrPath, batch)
		if err != nil {
			return nil, err
		}
		return &n, nil
	}
	f, err := os.Open(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("network %q is not built in and not a readable file: %w", nameOrPath, err)
	}
	defer f.Close()
	n, err := workload.DecodeNetworkJSON(f)
	if err != nil {
		return nil, err
	}
	b := n.WithBatch(batch)
	return &b, nil
}
