// Command photoloop is the generic specification-driven front end of the
// modeling framework: evaluate or map JSON-specified architectures against
// built-in or JSON-specified DNN workloads, run declarative design-space
// sweeps and comparative preset studies, benchmark the engine, or serve
// the model over HTTP.
//
// Subcommands:
//
//	photoloop eval (-arch a.json | -preset name) -network vgg16 [-layer name] [-mapping m.json] [-json] ...
//	photoloop sweep (-spec sweep.json | -preset fig4|fig5) [-format json|csv] [-out file] ...
//	photoloop explore (-spec explore.json | -preset name [-axis p=...]) [-budget N] [-strategy auto|grid|adaptive] ...
//	photoloop study [-presets all] [-workloads all] [-objectives energy] [-format table|markdown|json|csv] ...
//	photoloop jobs submit -store DIR (-sweep s.json | -explore e.json) ...
//	photoloop jobs (resume|status|result) -store DIR [-id ID] ...
//	photoloop serve [-addr :8080] [-workers N] [-store DIR] [-shard]
//	photoloop worker -coordinator URL {-store DIR | -remote} [-job ID]
//	photoloop bench [-json] [-out BENCH.json] [-compare prior.json]
//	photoloop template          # print an example architecture spec
//	photoloop networks          # list built-in workloads
//	photoloop presets           # list the architecture preset library
//	photoloop classes           # list component classes
//	photoloop version           # print the build version
//	photoloop help              # print this usage
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/debug"
	"text/tabwriter"
	"time"

	"photoloop/internal/components"
	"photoloop/internal/exp"
	"photoloop/internal/explore"
	"photoloop/internal/fidelity"
	"photoloop/internal/jobs"
	"photoloop/internal/presets"
	"photoloop/internal/shard"
	"photoloop/internal/spec"
	"photoloop/internal/sweep"
	"photoloop/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches a subcommand and returns the process exit code: 0 on
// success (including an explicit help request), 1 on runtime errors, 2 on
// usage errors.
func run(args []string) int {
	if len(args) == 0 {
		usage(os.Stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "eval":
		err = cmdEval(args[1:])
	case "sweep":
		err = cmdSweep(args[1:])
	case "explore":
		err = cmdExplore(args[1:])
	case "study":
		err = cmdStudy(args[1:])
	case "jobs":
		err = cmdJobs(args[1:])
	case "serve":
		err = cmdServe(args[1:])
	case "worker":
		err = cmdWorker(args[1:])
	case "bench":
		err = cmdBench(args[1:])
	case "template":
		fmt.Print(spec.Template)
	case "networks":
		err = cmdNetworks()
	case "presets":
		err = cmdPresets()
	case "classes":
		for _, c := range components.Classes() {
			fmt.Println(c)
		}
	case "version":
		fmt.Println(version())
	case "-h", "--help", "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "photoloop: unknown subcommand %q (run 'photoloop help')\n", args[0])
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "photoloop:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  photoloop eval (-arch a.json | -preset name) (-network name|file.json)
                 [-layer name] [-mapping m.json] [-batch N] [-budget N]
                 [-objective energy|delay|edp] [-seed N] [-search-workers N]
                 [-fidelity] [-json]
      Evaluate (or mapper-search) an architecture against a workload: a
      JSON architecture spec, or a named preset from the library
      ('photoloop presets' lists them). With -mapping, the fixed schedule
      in m.json is evaluated instead of searching. -fidelity additionally
      runs the analog fidelity rollup (SNR, effective bits, estimated
      accuracy loss — see docs/MODELING.md) over each schedule; energy,
      delay and area are bit-identical either way. With -json, the result
      is the same document POST /v1/eval answers.
  photoloop sweep (-spec sweep.json | -preset fig4|fig5) [-format json|csv]
                  [-out file] [-workers N] [-budget N] [-seed N]
                  [-warm-start] [-quiet]
      Run a declarative design-space sweep (variants x workloads x
      objectives) on a concurrent worker pool with search deduplication.
      -warm-start chains same-workload points across the variant axis,
      seeding each search with its neighbor's best mappings so the
      mapper's lower bound prunes from the first candidate.
  photoloop explore (-spec explore.json | -preset name [-axis param=...])
                    [-network vgg16] [-objectives energy,area] [-budget N]
                    [-strategy auto|grid|adaptive] [-mapper-budget N] [-seed N]
                    [-search-workers N] [-format markdown|json|csv] [-out file]
      Search a declared parameter space for its Pareto frontier over the
      given objectives (all minimized; "accuracy" trades pJ/MAC against
      analog effective bits via the fidelity rollup). -axis is repeatable
      and accepts
      explicit grids (param=1,3,5) or ranges (param=2..16:2); with no
      axes, the stock Albireo lever space is searched. The grid strategy
      exhausts small spaces bit-identically to 'photoloop sweep'; the
      adaptive strategy evaluates at most -budget points of spaces too
      large to enumerate. See docs/EXPLORATION.md.
  photoloop study [-presets all|a,b,...] [-workloads all|a,b,...]
                  [-objectives energy,delay,edp] [-batch N] [-budget N]
                  [-seed N] [-search-workers N] [-workers N]
                  [-format table|markdown|json|csv] [-out file] [-quiet]
      Run a comparative study: the cross product of architecture presets x
      zoo workloads x objectives through the cached sweep engine, ranked
      per (workload, objective) group. Rows are bit-identical to
      evaluating each (preset, workload) pair with 'photoloop eval
      -preset' at the same budget/seed/search-workers.
  photoloop jobs submit -store DIR (-sweep s.json | -explore e.json)
                 [-workers N] [-quiet]
  photoloop jobs resume -store DIR -id ID [-workers N] [-quiet]
  photoloop jobs status -store DIR [-id ID]
  photoloop jobs result -store DIR -id ID [-out file]
      Run sweeps and explorations as durable jobs over a persistent
      result store: every completed layer search is checkpointed to DIR
      as it finishes, so a killed job resumes from where it stopped and
      re-running a finished job recomputes nothing. submit is idempotent
      (equal specs are one job, named by a content address) and runs the
      job to completion; resume re-runs an interrupted or failed job to a
      byte-identical result. See docs/SERVICE.md.
  photoloop serve [-addr :8080] [-workers N] [-store DIR] [-debug]
                  [-shard] [-shard-local=true] [-shard-ttl 10s]
      Serve the model over HTTP: POST /v1/eval, POST /v1/sweep,
      POST /v1/explore, POST /v1/study, GET /v1/networks,
      GET /v1/presets. With -store, searches persist to the DIR result
      store across restarts and the async job API is mounted:
      POST /v1/jobs, GET /v1/jobs[/{id}[/result|/stream]]. -debug
      additionally mounts net/http/pprof under /debug/pprof/ for live
      profiling. With -shard (requires -store), submitted jobs are fanned
      out across attached 'photoloop worker' processes through range
      leases; -shard-local=false leaves all evaluation to workers, and
      GET /v1/jobs/{id}/shards reports lease progress.
  photoloop worker -coordinator URL {-store DIR | -remote} [-job ID]
                   [-poll D] [-search-workers N] [-max-leases N] [-quiet]
      Join a serve -shard process as one worker: lease task ranges,
      evaluate them, report completion. With -store DIR the worker
      appends results to its own segment of the shared store directory
      (which must be the same directory the serve process opened); with
      -remote it holds no store at all and uploads results back to the
      coordinator over HTTP — shared-nothing workers on any machine that
      can reach the URL. Killing a worker is always safe: finished
      searches are durable and its range is reassigned after the lease
      TTL. See docs/SERVICE.md.
  photoloop bench [-json] [-out BENCH.json] [-compare prior.json] [-label name]
                  [-scaling]
      Run the performance microbenchmarks (Evaluate, LowerBound,
      MapperSearch, Fig4, Fig5) plus mapper pruning statistics, and emit
      them as a table or a bench JSON document. -compare embeds a prior
      document as the baseline and reports speedups — the repo's committed
      BENCH_*.json trajectory artifacts are produced this way. -scaling
      additionally runs the same sweep job with 1, 2 and 4 sharded workers
      on a cold store and records wall time plus work conservation.
  photoloop template    print an example architecture spec
  photoloop networks    list built-in workloads
  photoloop presets     list the architecture preset library
  photoloop classes     list component classes
  photoloop version     print the build version
  photoloop help        print this usage

-objective selects what the mapper minimizes: "energy" (total pJ), "delay"
(cycles) or "edp" (energy-delay product).`)
}

// version reports the module version when built from a tagged module, or
// the VCS revision, falling back to "devel".
func version() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return "devel"
}

func cmdNetworks() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "network\tfamily\tlayers\tMACs\tweights\tdescription")
	for _, e := range workload.ZooEntries() {
		n := e.Build(1)
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%s\n",
			e.Name, e.Family, len(n.Layers), n.MACs(), n.WeightElems(), e.Description)
	}
	return w.Flush()
}

func cmdPresets() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "preset\tkind\tpeak MACs/cycle\tarea mm^2\tdescription")
	for _, p := range presets.All() {
		a, err := p.Build()
		if err != nil {
			return err
		}
		area, err := a.Area()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%.2f\t%s\n",
			p.Name, p.Kind(), a.PeakMACsPerCycle(), area/1e6, p.Description)
	}
	return w.Flush()
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	archPath := fs.String("arch", "", "architecture spec JSON (this or -preset is required)")
	presetName := fs.String("preset", "", "named architecture preset ('photoloop presets' lists them)")
	network := fs.String("network", "", "built-in network name or network JSON file (required)")
	layerName := fs.String("layer", "", "evaluate only this layer")
	mappingPath := fs.String("mapping", "", "mapping spec JSON (default: search)")
	batch := fs.Int("batch", 1, "batch size")
	budget := fs.Int("budget", 1000, "mapper budget per layer")
	objective := fs.String("objective", "energy", "energy, delay or edp")
	seed := fs.Int64("seed", 1, "mapper seed")
	searchWorkers := fs.Int("search-workers", 0, "per-layer search parallelism; match a study's -search-workers for bit-identical rows (0 = mapper default)")
	withFidelity := fs.Bool("fidelity", false, "run the analog fidelity rollup (SNR, effective bits, accuracy loss) over each schedule")
	asJSON := fs.Bool("json", false, "emit the /v1/eval JSON document instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*archPath == "") == (*presetName == "") {
		return fmt.Errorf("eval requires exactly one of -arch or -preset")
	}
	if *network == "" {
		return fmt.Errorf("eval requires -network")
	}

	req := &sweep.EvalRequest{
		Preset: *presetName,
		Layer:  *layerName, Batch: *batch, Objective: *objective,
		Budget: *budget, Seed: *seed, Workers: *searchWorkers,
	}
	if *withFidelity {
		req.Fidelity = &fidelity.Spec{}
	}
	if *archPath != "" {
		af, err := os.Open(*archPath)
		if err != nil {
			return err
		}
		req.Arch, err = spec.ParseArchSpec(af)
		af.Close()
		if err != nil {
			return err
		}
	}
	if _, ok := workload.Zoo()[*network]; ok {
		req.Network = *network
	} else {
		nf, err := os.Open(*network)
		if err != nil {
			return fmt.Errorf("network %q is not built in and not a readable file: %w", *network, err)
		}
		req.Inline, err = workload.DecodeNetworkJSON(nf)
		nf.Close()
		if err != nil {
			return err
		}
	}
	if *mappingPath != "" {
		mf, err := os.Open(*mappingPath)
		if err != nil {
			return err
		}
		req.Mapping, err = spec.ParseMappingSpec(mf)
		mf.Close()
		if err != nil {
			return err
		}
	}

	resp, err := sweep.Eval(req, nil)
	if err != nil {
		return err
	}
	if *asJSON {
		return writeEvalJSON(os.Stdout, resp)
	}
	return renderEval(os.Stdout, resp)
}

func writeEvalJSON(w io.Writer, resp *sweep.EvalResponse) error {
	// Match the server's encoding exactly (same document, same bytes).
	return sweep.EncodeResponseJSON(w, resp)
}

// renderEval prints the human-readable evaluation table.
func renderEval(out io.Writer, resp *sweep.EvalResponse) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "layer\tMACs\tpJ/MAC\tMACs/cycle\tutil\tevals\tpruned")
	for _, l := range resp.Layers {
		fmt.Fprintf(w, "%s\t%d\t%.4f\t%.1f\t%.1f%%\t%d\t%d\n",
			l.Layer, l.MACs, l.PJPerMAC, l.MACsPerCycle, 100*l.Utilization, l.Evaluations, l.Pruned)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if len(resp.Layers) > 1 && resp.MACs > 0 && resp.Cycles > 0 {
		fmt.Fprintf(out, "total: %.4f pJ/MAC, %.1f MACs/cycle\n", resp.PJPerMAC, resp.MACsPerCycle)
	}
	if resp.Evaluations > 0 {
		fmt.Fprintf(out, "search: %d evaluations — %d pruned by lower bound, %d delta, %d full\n",
			resp.Evaluations, resp.Pruned, resp.DeltaEvals, resp.FullEvals)
	}
	if resp.EffectiveBits != 0 || resp.SNRDB != 0 || resp.AccuracyLossPct != 0 {
		fmt.Fprintf(out, "fidelity: %.2f effective bits (%.1f dB SNR), est. accuracy loss %.2f%%\n",
			resp.EffectiveBits, resp.SNRDB, resp.AccuracyLossPct)
	}
	fmt.Fprintf(out, "area: %.3f mm^2, peak %d MACs/cycle\n", resp.AreaUM2/1e6, resp.PeakMACsPerCycle)
	return nil
}

// openOut opens the results destination before any compute is spent (a
// bad path must fail in milliseconds, not after the run). The returned
// closeOut wraps a command's final error: buffered writes can surface
// only at Close, and a dropped close error would mean a silently
// truncated results file.
func openOut(path string) (io.Writer, func(error) error, error) {
	if path == "" {
		return os.Stdout, func(err error) error { return err }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	closeOut := func(err error) error {
		if cerr := f.Close(); err == nil {
			return cerr
		}
		return err
	}
	return f, closeOut, nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	specPath := fs.String("spec", "", "sweep spec JSON file (or - for stdin)")
	preset := fs.String("preset", "", "built-in sweep: fig4 or fig5 (the paper's explorations)")
	format := fs.String("format", "json", "output format: json or csv")
	outPath := fs.String("out", "", "write results to this file (default stdout)")
	workers := fs.Int("workers", 0, "point-level worker pool size (default GOMAXPROCS)")
	budget := fs.Int("budget", 0, "override the spec's mapper budget per layer")
	seed := fs.Int64("seed", 0, "override the spec's mapper seed")
	warmStart := fs.Bool("warm-start", false, "thread incumbent mappings across neighboring grid points (chains same-workload points; see the spec's warm_start field)")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*specPath == "") == (*preset == "") {
		return fmt.Errorf("sweep requires exactly one of -spec or -preset")
	}
	if *format != "json" && *format != "csv" {
		return fmt.Errorf("unknown format %q (want json or csv)", *format)
	}
	var sp sweep.Spec
	switch {
	case *preset == "fig4":
		sp = exp.Fig4SweepSpec(exp.Config{Budget: *budget, Seed: *seed})
	case *preset == "fig5":
		sp = exp.Fig5SweepSpec(exp.Config{Budget: *budget, Seed: *seed})
	case *preset != "":
		return fmt.Errorf("unknown preset %q (want fig4 or fig5)", *preset)
	default:
		var r io.Reader = os.Stdin
		if *specPath != "-" {
			f, err := os.Open(*specPath)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		parsed, err := sweep.DecodeSpec(r)
		if err != nil {
			return err
		}
		sp = parsed
		if *budget > 0 {
			sp.Budget = *budget
		}
		if *seed != 0 {
			sp.Seed = *seed
		}
	}

	if *warmStart {
		sp.WarmStart = true
	}

	out, closeOut, err := openOut(*outPath)
	if err != nil {
		return err
	}

	opts := sweep.Options{Workers: *workers}
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res, err := sweep.Run(sp, opts)
	if err != nil {
		return closeOut(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep: %d layer searches, %d deduplicated\n",
			res.CacheHits+res.CacheMisses, res.CacheHits)
		if scored := res.Pruned + res.DeltaEvals + res.FullEvals; scored > 0 {
			fmt.Fprintf(os.Stderr, "sweep: mapper scored %d candidates — %.0f%% pruned by lower bound, %d delta, %d full\n",
				scored, 100*res.PrunedFraction(), res.DeltaEvals, res.FullEvals)
		}
	}

	if *format == "csv" {
		return closeOut(res.WriteCSV(out))
	}
	return closeOut(res.WriteJSON(out))
}

// cmdJobs drives the durable job engine: submit/resume run synchronously
// in this process (the HTTP server's POST /v1/jobs runs the same engine
// asynchronously); status and result only read the store directory.
func cmdJobs(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("jobs requires a verb: submit, resume, status or result")
	}
	verb, args := args[0], args[1:]
	fs := flag.NewFlagSet("jobs "+verb, flag.ExitOnError)
	storeDir := fs.String("store", "", "store directory (required)")
	id := fs.String("id", "", "job ID")
	workers := fs.Int("workers", 0, "point-level worker pool size (default engine default)")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	var sweepPath, explorePath, outPath *string
	switch verb {
	case "submit":
		sweepPath = fs.String("sweep", "", "sweep spec JSON file")
		explorePath = fs.String("explore", "", "explore spec JSON file")
	case "result":
		outPath = fs.String("out", "", "write the artifact to this file (default stdout)")
	case "resume", "status":
	default:
		return fmt.Errorf("unknown jobs verb %q (want submit, resume, status or result)", verb)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("jobs %s requires -store", verb)
	}
	m, err := jobs.Open(*storeDir)
	if err != nil {
		return err
	}
	defer m.Close()
	m.Workers = *workers

	runJob := func(jobID string) error {
		if !*quiet {
			m.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\rjob %s: %d/%d points", jobID, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		st, err := m.Run(context.Background(), jobID)
		if err != nil {
			return err
		}
		if !*quiet && st.Store != nil {
			fmt.Fprintf(os.Stderr, "job %s: done — %d searches from store, %d from memory, %d computed\n",
				jobID, st.Store.DiskHits, st.Store.Hits, st.Store.Misses)
		}
		return nil
	}

	switch verb {
	case "submit":
		if (*sweepPath == "") == (*explorePath == "") {
			return fmt.Errorf("jobs submit requires exactly one of -sweep or -explore")
		}
		var sp jobs.Spec
		if *sweepPath != "" {
			parsed, err := decodeSweepFile(*sweepPath)
			if err != nil {
				return err
			}
			sp.Sweep = &parsed
		} else {
			f, err := os.Open(*explorePath)
			if err != nil {
				return err
			}
			parsed, err := explore.DecodeSpec(f)
			f.Close()
			if err != nil {
				return err
			}
			sp.Explore = &parsed
		}
		st, err := m.Submit(sp)
		if err != nil {
			return err
		}
		fmt.Printf("job %s\n", st.ID)
		return runJob(st.ID)
	case "resume":
		if *id == "" {
			return fmt.Errorf("jobs resume requires -id")
		}
		return runJob(*id)
	case "status":
		if *id != "" {
			st, err := m.Status(*id)
			if err != nil {
				return err
			}
			return sweep.EncodeResponseJSON(os.Stdout, st)
		}
		list, err := m.List()
		if err != nil {
			return err
		}
		return sweep.EncodeResponseJSON(os.Stdout, list)
	default: // result
		if *id == "" {
			return fmt.Errorf("jobs result requires -id")
		}
		buf, err := m.Result(*id)
		if err != nil {
			return err
		}
		out, closeOut, err := openOut(*outPath)
		if err != nil {
			return err
		}
		_, err = out.Write(buf)
		return closeOut(err)
	}
}

// decodeSweepFile strictly parses a sweep spec file (or stdin with "-").
func decodeSweepFile(path string) (sweep.Spec, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return sweep.Spec{}, err
		}
		defer f.Close()
		r = f
	}
	return sweep.DecodeSpec(r)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "per-sweep point pool size (default GOMAXPROCS)")
	storeDir := fs.String("store", "", "persist searches to this result store directory and mount the async job API")
	debugFlag := fs.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
	shardFlag := fs.Bool("shard", false, "with -store: fan jobs out across attached 'photoloop worker' processes")
	shardLocal := fs.Bool("shard-local", true, "with -shard: this process also works leases (false leaves all evaluation to workers)")
	shardTTL := fs.Duration("shard-ttl", shard.DefaultLeaseTTL, "with -shard: lease heartbeat deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shardFlag && *storeDir == "" {
		return fmt.Errorf("serve: -shard requires -store (workers share the store directory)")
	}
	srv := sweep.NewServer()
	srv.Workers = *workers
	explore.Attach(srv)
	endpoints := "POST /v1/eval, POST /v1/sweep, POST /v1/explore, POST /v1/study, GET /v1/networks, GET /v1/presets"
	if *storeDir != "" {
		m, err := jobs.Open(*storeDir)
		if err != nil {
			return err
		}
		defer m.Close()
		m.Workers = *workers
		if *shardFlag {
			c := shard.NewCoordinator()
			c.LeaseTTL = *shardTTL
			m.Shard = c
			m.ShardLocal = *shardLocal
			fmt.Fprintf(os.Stderr, "photoloop: shard coordinator on (lease ttl %s, local worker %v)\n",
				c.LeaseTTL, *shardLocal)
		}
		// Synchronous requests share the persistence: their searches are
		// written through to the same store the jobs resume from.
		srv.SearchCache().SetPersister(m.Store())
		jobs.Attach(srv, m)
		endpoints += ", POST /v1/jobs, GET /v1/jobs"
		fmt.Fprintf(os.Stderr, "photoloop: result store at %s (%d searches on disk)\n", *storeDir, m.Store().Len())
	}
	handler := http.Handler(srv)
	if *debugFlag {
		// pprof endpoints on the same listener: profile the mapper hot
		// loop in production with
		//   go tool pprof http://host:8080/debug/pprof/profile
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
		fmt.Fprintln(os.Stderr, "photoloop: pprof enabled at /debug/pprof/")
	}
	fmt.Fprintf(os.Stderr, "photoloop: serving on %s (%s)\n", *addr, endpoints)
	hs := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Sweeps run long, so no WriteTimeout; header and idle timeouts
		// keep slow-header and abandoned connections from accumulating.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return hs.ListenAndServe()
}
