package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"photoloop/internal/explore"
	"photoloop/internal/sweep"
)

// axisFlags collects repeated -axis flags: "param=v1,v2,..." for explicit
// value grids or "param=min..max[:step]" for ranges.
type axisFlags []explore.Axis

// String renders the accumulated axes (flag.Value).
func (a *axisFlags) String() string {
	var parts []string
	for _, ax := range *a {
		parts = append(parts, ax.Param)
	}
	return strings.Join(parts, ",")
}

// Set parses one -axis occurrence (flag.Value).
func (a *axisFlags) Set(s string) error {
	param, spec, ok := strings.Cut(s, "=")
	if !ok || param == "" || spec == "" {
		return fmt.Errorf("want param=v1,v2,... or param=min..max[:step], got %q", s)
	}
	if lo, hi, ok := strings.Cut(spec, ".."); ok {
		hi, stepStr, hasStep := strings.Cut(hi, ":")
		min, err1 := strconv.ParseFloat(lo, 64)
		max, err2 := strconv.ParseFloat(hi, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("range %q: bounds must be numbers", spec)
		}
		ax := explore.Axis{Param: param, Min: &min, Max: &max}
		if hasStep {
			step, err := strconv.ParseFloat(stepStr, 64)
			if err != nil {
				return fmt.Errorf("range %q: step must be a number", spec)
			}
			ax.Step = step
		}
		*a = append(*a, ax)
		return nil
	}
	var values []any
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		values = append(values, parseAxisValue(f))
	}
	if len(values) == 0 {
		return fmt.Errorf("axis %q has no values", param)
	}
	*a = append(*a, explore.Axis{Param: param, Values: values})
	return nil
}

// parseAxisValue coerces a flag token into the natural JSON-ish type the
// sweep axis appliers accept: bool, int, float, else string.
func parseAxisValue(s string) any {
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	if n, err := strconv.Atoi(s); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// cmdExplore runs the Pareto-frontier design-space explorer. See
// explore.Spec for the semantics.
func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	specPath := fs.String("spec", "", "exploration spec JSON file (or - for stdin); overrides the flag-built spec")
	preset := fs.String("preset", "", "base architecture preset ('photoloop presets' lists them)")
	network := fs.String("network", "vgg16", "zoo network to evaluate every candidate on")
	batch := fs.Int("batch", 1, "batch size")
	var axes axisFlags
	fs.Var(&axes, "axis", "search axis, repeatable: param=v1,v2,... or param=min..max[:step] (default: the Albireo lever space)")
	objectives := fs.String("objectives", "energy,area", "comma-separated frontier objectives (energy, pj_per_mac, delay, area, edp, accuracy), all minimized")
	strategy := fs.String("strategy", "auto", "search strategy: auto, grid or adaptive")
	budget := fs.Int("budget", 0, "max design points the adaptive strategy evaluates (default 128)")
	mapperObjective := fs.String("mapper-objective", "energy", "what the mapper minimizes per candidate schedule")
	mapperBudget := fs.Int("mapper-budget", 500, "mapper evaluation budget per layer")
	seed := fs.Int64("seed", 1, "explorer + mapper seed")
	searchWorkers := fs.Int("search-workers", 0, "per-layer search parallelism; pin it for machine-independent frontiers (0 = mapper default)")
	workers := fs.Int("workers", 0, "candidate-evaluation pool size (default GOMAXPROCS/search-workers)")
	format := fs.String("format", "markdown", "output format: markdown, json or csv")
	outPath := fs.String("out", "", "write the frontier to this file (default stdout)")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "markdown", "json", "csv":
	default:
		return fmt.Errorf("unknown format %q (want markdown, json or csv)", *format)
	}

	var sp explore.Spec
	if *specPath != "" {
		var r io.Reader = os.Stdin
		if *specPath != "-" {
			f, err := os.Open(*specPath)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		parsed, err := explore.DecodeSpec(r)
		if err != nil {
			return err
		}
		sp = parsed
		if *budget > 0 {
			sp.Budget = *budget
		}
	} else {
		if *preset == "" {
			return fmt.Errorf("explore requires -spec or -preset")
		}
		sp = explore.Spec{
			Name:            *preset + "/" + *network,
			Base:            sweep.Base{Preset: *preset},
			Axes:            axes,
			Workload:        sweep.Workload{Network: *network, Batch: *batch},
			Objectives:      splitList(*objectives),
			Strategy:        *strategy,
			Budget:          *budget,
			MapperObjective: *mapperObjective,
			MapperBudget:    *mapperBudget,
			Seed:            *seed,
			SearchWorkers:   *searchWorkers,
		}
		if len(sp.Axes) == 0 {
			sp.Axes = explore.DefaultAlbireoAxes()
		}
	}

	out, closeOut, err := openOut(*outPath)
	if err != nil {
		return err
	}

	opts := explore.Options{Workers: *workers}
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rexplore: %d/%d points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	f, err := explore.Run(sp, opts)
	if err != nil {
		return closeOut(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "explore: %s strategy, %d of %d points evaluated, %d Pareto-optimal, %d dominated",
			f.Strategy, f.Evals, f.SpaceSize, len(f.Points), f.Dominated)
		if f.Infeasible > 0 {
			fmt.Fprintf(os.Stderr, ", %d infeasible", f.Infeasible)
		}
		fmt.Fprintf(os.Stderr, "; %d layer searches, %d deduplicated\n",
			f.CacheHits+f.CacheMisses, f.CacheHits)
		if scored := f.Pruned + f.DeltaEvals + f.FullEvals; scored > 0 {
			fmt.Fprintf(os.Stderr, "explore: mapper scored %d candidates — %.0f%% pruned by lower bound, %d delta, %d full\n",
				scored, 100*float64(f.Pruned)/float64(scored), f.DeltaEvals, f.FullEvals)
		}
		if f.SurrogateRanked > 0 {
			fmt.Fprintf(os.Stderr, "explore: surrogate ranked %d proposals, kept %d for evaluation\n",
				f.SurrogateRanked, f.SurrogateKept)
		}
	}

	switch *format {
	case "json":
		return closeOut(f.WriteJSON(out))
	case "csv":
		return closeOut(f.WriteCSV(out))
	}
	return closeOut(f.WriteMarkdown(out))
}

// splitList splits a comma-separated flag into trimmed non-empty fields.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
