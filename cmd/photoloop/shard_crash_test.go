package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"photoloop/internal/jobs"
)

// freePort reserves an ephemeral localhost port for a serve subprocess.
// The tiny close-to-bind race is acceptable in tests.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitHTTP polls until the serve subprocess accepts connections.
func waitHTTP(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs")
		if err == nil {
			resp.Body.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never came up at %s: %v", base, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShardWorkerKilledMidLease is the sharded-durability acceptance
// test, with real processes: a serve coordinator that evaluates nothing
// itself, a worker SIGKILLed while it holds a lease, and a second worker
// that picks up the expired range. The job must complete with an
// artifact byte-identical to an unsharded single-process run, and the
// job status must record the reassignment.
func TestShardWorkerKilledMidLease(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	specDir := t.TempDir()
	sweepSpec := writeSpecFile(t, specDir, "sweep.json", crashSweepSpec())

	// Reference: the same job, unsharded, in its own store.
	refDir := t.TempDir()
	out, err := cli(t, "jobs", "submit", "-store", refDir, "-sweep", sweepSpec, "-quiet").Output()
	if err != nil {
		t.Fatalf("reference run: %v (%s)", err, out)
	}
	id := strings.TrimPrefix(strings.TrimSpace(string(out)), "job ")
	ref, err := os.ReadFile(filepath.Join(refDir, "jobs", id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator: short lease TTL so the killed worker's range comes
	// back quickly; -shard-local=false so only attached workers evaluate.
	storeDir := t.TempDir()
	addr := freePort(t)
	base := "http://" + addr
	serve := cli(t, "serve", "-addr", addr, "-store", storeDir,
		"-shard", "-shard-local=false", "-shard-ttl", "2s")
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		serve.Process.Kill()
		serve.Wait()
	}()
	waitHTTP(t, base)

	// Submit over HTTP; the run blocks until workers chew the grid.
	spec, err := os.ReadFile(sweepSpec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"sweep":`+string(spec)+`}`)))
	if err != nil {
		t.Fatal(err)
	}
	var sub jobs.Status
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || sub.ID != id {
		t.Fatalf("submit -> %+v, %v (want job %s)", sub, err, id)
	}

	// Worker A: slowed so the SIGKILL lands inside a lease. Its stderr
	// tells us when it holds one.
	workerA := cli(t, "worker", "-coordinator", base, "-store", storeDir)
	workerA.Env = append(workerA.Env, "PHOTOLOOP_JOB_POINT_DELAY=1s")
	workerA.Stderr = nil // cli() wired os.Stderr; use a pipe instead
	aErr, err := workerA.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := workerA.Start(); err != nil {
		t.Fatal(err)
	}
	leased := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(aErr)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "leased") {
				close(leased)
				return
			}
		}
	}()
	select {
	case <-leased:
	case <-time.After(60 * time.Second):
		workerA.Process.Kill()
		workerA.Wait()
		t.Fatal("worker A never acquired a lease")
	}
	if err := workerA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	workerA.Wait()

	// Worker B finishes the job, including the dead worker's range once
	// its lease expires.
	workerB := cli(t, "worker", "-coordinator", base, "-store", storeDir, "-quiet")
	if err := workerB.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		workerB.Process.Kill()
		workerB.Wait()
	}()

	deadline := time.Now().Add(120 * time.Second)
	var st jobs.Status
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == jobs.StateDone || st.State == jobs.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sharded job never finished: %+v", st)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if st.State != jobs.StateDone {
		t.Fatalf("sharded job failed: %s", st.Error)
	}
	if st.Shards == nil || st.Shards.Reassigned == 0 {
		t.Errorf("status does not record the killed worker's reassignment: %+v", st.Shards)
	}
	if st.Store == nil || st.Store.Misses != 0 {
		t.Errorf("coordinator recomputed searches itself: %+v", st.Store)
	}

	resp, err = http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(storeDir, "jobs", id, "result.json"))
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("sharded artifact differs from unsharded run (%d vs %d bytes)", len(got), len(ref))
	}

	// Kill the serve process (another hard death: its segment lock goes
	// stale) and warm-repeat the job offline: the merged worker segments
	// serve every search, zero recomputed, identical bytes.
	serve.Process.Kill()
	serve.Wait()
	if out, err := cli(t, "jobs", "resume", "-store", storeDir, "-id", id, "-quiet").Output(); err != nil {
		t.Fatalf("offline warm repeat: %v (%s)", err, out)
	}
	after := readStatus(t, storeDir, id)
	if after.Store == nil || after.Store.Misses != 0 {
		t.Errorf("warm repeat computed searches: %+v", after.Store)
	}
	repeat, err := os.ReadFile(filepath.Join(storeDir, "jobs", id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repeat, ref) {
		t.Error("warm repeat artifact differs")
	}
}

// referenceArtifact runs the spec unsharded in its own store and returns
// the job ID and result bytes every sharded variant must reproduce.
func referenceArtifact(t *testing.T, sweepSpec string) (string, []byte) {
	t.Helper()
	refDir := t.TempDir()
	out, err := cli(t, "jobs", "submit", "-store", refDir, "-sweep", sweepSpec, "-quiet").Output()
	if err != nil {
		t.Fatalf("reference run: %v (%s)", err, out)
	}
	id := strings.TrimPrefix(strings.TrimSpace(string(out)), "job ")
	ref, err := os.ReadFile(filepath.Join(refDir, "jobs", id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	return id, ref
}

// startShardServe boots a serve coordinator that evaluates nothing itself
// and waits until it answers HTTP. Cleanup kills and reaps it.
func startShardServe(t *testing.T, storeDir, ttl string) (string, *exec.Cmd) {
	t.Helper()
	addr := freePort(t)
	base := "http://" + addr
	serve := cli(t, "serve", "-addr", addr, "-store", storeDir,
		"-shard", "-shard-local=false", "-shard-ttl", ttl)
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		serve.Process.Kill()
		serve.Wait()
	})
	waitHTTP(t, base)
	return base, serve
}

// submitSweepHTTP posts the sweep spec file to a serve process and
// returns the job ID it assigned.
func submitSweepHTTP(t *testing.T, base, sweepSpec string) string {
	t.Helper()
	spec, err := os.ReadFile(sweepSpec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"sweep":`+string(spec)+`}`)))
	if err != nil {
		t.Fatal(err)
	}
	var sub jobs.Status
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || sub.ID == "" {
		t.Fatalf("submit -> %+v, %v", sub, err)
	}
	return sub.ID
}

// waitJobDone polls the job over HTTP until it finishes.
func waitJobDone(t *testing.T, base, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	var st jobs.Status
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == jobs.StateDone || st.State == jobs.StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sharded job never finished: %+v", st)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// assertSingleSegment is the on-disk shared-nothing proof: after a run
// fed entirely by remote workers, the coordinator's store directory must
// hold exactly one segment file — its own.
func assertSingleSegment(t *testing.T, storeDir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(storeDir, "photoloop-store*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Errorf("store has %d segments %v; remote workers must never write the directory", len(segs), segs)
	}
}

// startRemoteWorkerUntil starts a shared-nothing worker subprocess and
// returns once its stderr contains marker — the moment to SIGKILL it.
// env entries are appended to the worker's environment.
func startRemoteWorkerUntil(t *testing.T, base, marker string, env ...string) *exec.Cmd {
	t.Helper()
	w := cli(t, "worker", "-coordinator", base, "-remote")
	w.Env = append(w.Env, env...)
	w.Stderr = nil // cli() wired os.Stderr; use a pipe instead
	pipe, err := w.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	hit := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			if strings.Contains(sc.Text(), marker) {
				close(hit)
				return
			}
		}
	}()
	select {
	case <-hit:
	case <-time.After(60 * time.Second):
		w.Process.Kill()
		w.Wait()
		t.Fatalf("worker never reached %q", marker)
	}
	return w
}

// TestRemoteShardWorkersByteIdentical is the shared-nothing acceptance
// test with real processes: a serve coordinator and 1, 2 and 4 `worker
// -remote` subprocesses that hold no store directory at all. Every result
// crosses the wire, the coordinator's directory stays single-segment, and
// the artifact is byte-identical to the unsharded reference.
func TestRemoteShardWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess shard test")
	}
	sweepSpec := writeSpecFile(t, t.TempDir(), "sweep.json", crashSweepSpec())
	refID, ref := referenceArtifact(t, sweepSpec)

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			storeDir := t.TempDir()
			base, _ := startShardServe(t, storeDir, "10s")
			for i := 0; i < workers; i++ {
				w := cli(t, "worker", "-coordinator", base, "-remote", "-quiet")
				if err := w.Start(); err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() {
					w.Process.Kill()
					w.Wait()
				})
			}
			id := submitSweepHTTP(t, base, sweepSpec)
			if id != refID {
				t.Fatalf("job ID %s does not match reference %s", id, refID)
			}
			st := waitJobDone(t, base, id)
			if st.State != jobs.StateDone {
				t.Fatalf("sharded job failed: %s", st.Error)
			}
			if st.Store == nil || st.Store.Misses != 0 {
				t.Errorf("coordinator recomputed searches itself: %+v", st.Store)
			}
			got, err := os.ReadFile(filepath.Join(storeDir, "jobs", id, "result.json"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, ref) {
				t.Errorf("shared-nothing artifact differs from unsharded run (%d vs %d bytes)", len(got), len(ref))
			}
			assertSingleSegment(t, storeDir)
		})
	}
}

// TestRemoteWorkerKilledMidLease SIGKILLs a shared-nothing worker while
// it holds a lease (slowed by the point delay, so nothing has been
// uploaded yet). The lease expires, a second remote worker recomputes the
// range, and the artifact is still byte-identical — then a warm offline
// repeat proves every search landed in the coordinator's segment.
func TestRemoteWorkerKilledMidLease(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	sweepSpec := writeSpecFile(t, t.TempDir(), "sweep.json", crashSweepSpec())
	refID, ref := referenceArtifact(t, sweepSpec)

	storeDir := t.TempDir()
	base, serve := startShardServe(t, storeDir, "2s")
	id := submitSweepHTTP(t, base, sweepSpec)
	if id != refID {
		t.Fatalf("job ID %s does not match reference %s", id, refID)
	}

	// Worker A: slowed mid-evaluation; killed holding the lease with its
	// batched results still local — they die with the process.
	workerA := startRemoteWorkerUntil(t, base, "leased", "PHOTOLOOP_JOB_POINT_DELAY=1s")
	if err := workerA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	workerA.Wait()

	workerB := cli(t, "worker", "-coordinator", base, "-remote", "-quiet")
	if err := workerB.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		workerB.Process.Kill()
		workerB.Wait()
	}()

	st := waitJobDone(t, base, id)
	if st.State != jobs.StateDone {
		t.Fatalf("sharded job failed: %s", st.Error)
	}
	if st.Shards == nil || st.Shards.Reassigned == 0 {
		t.Errorf("status does not record the killed worker's reassignment: %+v", st.Shards)
	}
	if st.Store == nil || st.Store.Misses != 0 {
		t.Errorf("coordinator recomputed searches itself: %+v", st.Store)
	}
	got, err := os.ReadFile(filepath.Join(storeDir, "jobs", id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("artifact differs from unsharded run after mid-lease kill (%d vs %d bytes)", len(got), len(ref))
	}
	assertSingleSegment(t, storeDir)

	// Offline warm repeat against the coordinator's directory: the
	// uploaded results are a complete checkpoint, zero searches recomputed.
	serve.Process.Kill()
	serve.Wait()
	if out, err := cli(t, "jobs", "resume", "-store", storeDir, "-id", id, "-quiet").Output(); err != nil {
		t.Fatalf("offline warm repeat: %v (%s)", err, out)
	}
	after := readStatus(t, storeDir, id)
	if after.Store == nil || after.Store.Misses != 0 {
		t.Errorf("warm repeat computed searches: %+v", after.Store)
	}
	repeat, err := os.ReadFile(filepath.Join(storeDir, "jobs", id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repeat, ref) {
		t.Error("warm repeat artifact differs")
	}
}

// TestRemoteWorkerKilledMidUpload SIGKILLs a shared-nothing worker in the
// upload window: its lease's searches are fully computed and announced,
// but the POST never happens (PHOTOLOOP_UPLOAD_DELAY holds the flush
// open). The coordinator must treat the silence like any other dead
// worker — lease expiry, reassignment, recompute — and the torn-away
// upload must cost nothing: byte-identical artifact, single segment.
func TestRemoteWorkerKilledMidUpload(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	sweepSpec := writeSpecFile(t, t.TempDir(), "sweep.json", crashSweepSpec())
	refID, ref := referenceArtifact(t, sweepSpec)

	storeDir := t.TempDir()
	base, _ := startShardServe(t, storeDir, "2s")
	id := submitSweepHTTP(t, base, sweepSpec)
	if id != refID {
		t.Fatalf("job ID %s does not match reference %s", id, refID)
	}

	// Worker A: computes its lease at full speed, then stalls between
	// announcing the upload and POSTing it — the kill lands there.
	workerA := startRemoteWorkerUntil(t, base, "uploading", "PHOTOLOOP_UPLOAD_DELAY=30s")
	if err := workerA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	workerA.Wait()

	workerB := cli(t, "worker", "-coordinator", base, "-remote", "-quiet")
	if err := workerB.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		workerB.Process.Kill()
		workerB.Wait()
	}()

	st := waitJobDone(t, base, id)
	if st.State != jobs.StateDone {
		t.Fatalf("sharded job failed: %s", st.Error)
	}
	if st.Shards == nil || st.Shards.Reassigned == 0 {
		t.Errorf("status does not record the killed worker's reassignment: %+v", st.Shards)
	}
	if st.Store == nil || st.Store.Misses != 0 {
		t.Errorf("coordinator recomputed searches itself: %+v", st.Store)
	}
	got, err := os.ReadFile(filepath.Join(storeDir, "jobs", id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("artifact differs from unsharded run after mid-upload kill (%d vs %d bytes)", len(got), len(ref))
	}
	assertSingleSegment(t, storeDir)
}
