package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"photoloop/internal/jobs"
)

// freePort reserves an ephemeral localhost port for a serve subprocess.
// The tiny close-to-bind race is acceptable in tests.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitHTTP polls until the serve subprocess accepts connections.
func waitHTTP(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs")
		if err == nil {
			resp.Body.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never came up at %s: %v", base, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShardWorkerKilledMidLease is the sharded-durability acceptance
// test, with real processes: a serve coordinator that evaluates nothing
// itself, a worker SIGKILLed while it holds a lease, and a second worker
// that picks up the expired range. The job must complete with an
// artifact byte-identical to an unsharded single-process run, and the
// job status must record the reassignment.
func TestShardWorkerKilledMidLease(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	specDir := t.TempDir()
	sweepSpec := writeSpecFile(t, specDir, "sweep.json", crashSweepSpec())

	// Reference: the same job, unsharded, in its own store.
	refDir := t.TempDir()
	out, err := cli(t, "jobs", "submit", "-store", refDir, "-sweep", sweepSpec, "-quiet").Output()
	if err != nil {
		t.Fatalf("reference run: %v (%s)", err, out)
	}
	id := strings.TrimPrefix(strings.TrimSpace(string(out)), "job ")
	ref, err := os.ReadFile(filepath.Join(refDir, "jobs", id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator: short lease TTL so the killed worker's range comes
	// back quickly; -shard-local=false so only attached workers evaluate.
	storeDir := t.TempDir()
	addr := freePort(t)
	base := "http://" + addr
	serve := cli(t, "serve", "-addr", addr, "-store", storeDir,
		"-shard", "-shard-local=false", "-shard-ttl", "2s")
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		serve.Process.Kill()
		serve.Wait()
	}()
	waitHTTP(t, base)

	// Submit over HTTP; the run blocks until workers chew the grid.
	spec, err := os.ReadFile(sweepSpec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"sweep":`+string(spec)+`}`)))
	if err != nil {
		t.Fatal(err)
	}
	var sub jobs.Status
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || sub.ID != id {
		t.Fatalf("submit -> %+v, %v (want job %s)", sub, err, id)
	}

	// Worker A: slowed so the SIGKILL lands inside a lease. Its stderr
	// tells us when it holds one.
	workerA := cli(t, "worker", "-coordinator", base, "-store", storeDir)
	workerA.Env = append(workerA.Env, "PHOTOLOOP_JOB_POINT_DELAY=1s")
	workerA.Stderr = nil // cli() wired os.Stderr; use a pipe instead
	aErr, err := workerA.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := workerA.Start(); err != nil {
		t.Fatal(err)
	}
	leased := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(aErr)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "leased") {
				close(leased)
				return
			}
		}
	}()
	select {
	case <-leased:
	case <-time.After(60 * time.Second):
		workerA.Process.Kill()
		workerA.Wait()
		t.Fatal("worker A never acquired a lease")
	}
	if err := workerA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	workerA.Wait()

	// Worker B finishes the job, including the dead worker's range once
	// its lease expires.
	workerB := cli(t, "worker", "-coordinator", base, "-store", storeDir, "-quiet")
	if err := workerB.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		workerB.Process.Kill()
		workerB.Wait()
	}()

	deadline := time.Now().Add(120 * time.Second)
	var st jobs.Status
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == jobs.StateDone || st.State == jobs.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sharded job never finished: %+v", st)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if st.State != jobs.StateDone {
		t.Fatalf("sharded job failed: %s", st.Error)
	}
	if st.Shards == nil || st.Shards.Reassigned == 0 {
		t.Errorf("status does not record the killed worker's reassignment: %+v", st.Shards)
	}
	if st.Store == nil || st.Store.Misses != 0 {
		t.Errorf("coordinator recomputed searches itself: %+v", st.Store)
	}

	resp, err = http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(storeDir, "jobs", id, "result.json"))
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("sharded artifact differs from unsharded run (%d vs %d bytes)", len(got), len(ref))
	}

	// Kill the serve process (another hard death: its segment lock goes
	// stale) and warm-repeat the job offline: the merged worker segments
	// serve every search, zero recomputed, identical bytes.
	serve.Process.Kill()
	serve.Wait()
	if out, err := cli(t, "jobs", "resume", "-store", storeDir, "-id", id, "-quiet").Output(); err != nil {
		t.Fatalf("offline warm repeat: %v (%s)", err, out)
	}
	after := readStatus(t, storeDir, id)
	if after.Store == nil || after.Store.Misses != 0 {
		t.Errorf("warm repeat computed searches: %+v", after.Store)
	}
	repeat, err := os.ReadFile(filepath.Join(storeDir, "jobs", id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repeat, ref) {
		t.Error("warm repeat artifact differs")
	}
}
