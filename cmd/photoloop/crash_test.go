package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"photoloop/internal/explore"
	"photoloop/internal/jobs"
	"photoloop/internal/sweep"
	"photoloop/internal/workload"
)

// reexecEnv makes the test binary act as the photoloop CLI: the crash
// tests spawn it as a subprocess so they can SIGKILL a real process
// mid-job without building the command separately.
const reexecEnv = "PHOTOLOOP_TEST_CLI"

func TestMain(m *testing.M) {
	if os.Getenv(reexecEnv) == "1" {
		os.Exit(run(os.Args[1:]))
	}
	os.Exit(m.Run())
}

// crashNet is the crash tests' workload: small enough that one search is
// sub-second, big enough that searches dominate the per-point delay.
func crashNet() *workload.Network {
	return &workload.Network{
		Name: "crash-tiny",
		Layers: []workload.Layer{
			workload.NewConv("conv1", 1, 6, 8, 8, 8, 3, 3, 1, 1),
			workload.NewFC("fc", 1, 12, 32),
		},
	}
}

// crashSweepSpec pins Seed and SearchWorkers so every attempt — whatever
// its point-pool size — computes bit-identical points: 4 variants × 2
// objectives = 8 points.
func crashSweepSpec() sweep.Spec {
	return sweep.Spec{
		Name:          "crash-sweep",
		Base:          sweep.Base{Albireo: &sweep.AlbireoBase{}},
		Axes:          []sweep.Axis{{Param: "output_lanes", Values: []any{3, 5, 7, 9}}},
		Workloads:     []sweep.Workload{{Inline: crashNet()}},
		Objectives:    []string{"energy", "delay"},
		Budget:        60,
		Seed:          1,
		SearchWorkers: 2,
	}
}

func crashExploreSpec() explore.Spec {
	return explore.Spec{
		Name:          "crash-explore",
		Base:          sweep.Base{Albireo: &sweep.AlbireoBase{}},
		Axes:          []explore.Axis{{Param: "output_lanes", Values: []any{3, 5, 7, 9}}},
		Workload:      sweep.Workload{Inline: crashNet()},
		Strategy:      explore.StrategyGrid,
		MapperBudget:  60,
		Seed:          1,
		SearchWorkers: 2,
	}
}

// writeSpecFile marshals a spec document into dir.
func writeSpecFile(t *testing.T, dir, name string, v any) string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// cli builds a re-exec command for the photoloop CLI.
func cli(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), reexecEnv+"=1")
	cmd.Stderr = os.Stderr
	return cmd
}

// startAndKillMidRun launches `jobs submit`, waits for the first streamed
// point, then SIGKILLs the process — a real crash, no deferred cleanup.
// It returns the job ID the subprocess printed.
func startAndKillMidRun(t *testing.T, storeDir string, args ...string) string {
	t.Helper()
	cmd := cli(t, args...)
	// Slow the run down so the kill lands mid-job deterministically.
	cmd.Env = append(cmd.Env, "PHOTOLOOP_JOB_POINT_DELAY=300ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("reading job id: %v", err)
	}
	id := strings.TrimPrefix(strings.TrimSpace(line), "job ")
	if id == "" || strings.Contains(id, " ") {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected submit output %q", line)
	}

	// Wait for the first point to land in the stream log, then kill.
	points := filepath.Join(storeDir, "jobs", id, "points.ndjson")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if fi, err := os.Stat(points); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("job never streamed a point")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; the error is the kill, expected

	if _, err := os.Stat(filepath.Join(storeDir, "jobs", id, "result.json")); err == nil {
		t.Fatal("job finished before the kill; the crash window closed")
	}
	return id
}

// readStatus parses a job's state file straight off disk.
func readStatus(t *testing.T, storeDir, id string) *jobs.Status {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join(storeDir, "jobs", id, "state.json"))
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	if err := json.Unmarshal(buf, &st); err != nil {
		t.Fatal(err)
	}
	return &st
}

// TestCrashResumeByteIdentical is the durability acceptance test: a job
// SIGKILLed mid-run and resumed in a fresh process must produce a final
// artifact byte-identical to an uninterrupted run's, at every worker
// count — the store checkpoint makes the crash invisible in the output.
func TestCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	specDir := t.TempDir()
	sweepSpec := writeSpecFile(t, specDir, "sweep.json", crashSweepSpec())

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			w := fmt.Sprint(workers)

			// Reference: the same job run uninterrupted in its own store.
			refDir := t.TempDir()
			if out, err := cli(t, "jobs", "submit", "-store", refDir, "-sweep", sweepSpec,
				"-workers", w, "-quiet").Output(); err != nil {
				t.Fatalf("reference run: %v (%s)", err, out)
			}

			// Crash run: kill mid-job, then resume in a fresh process.
			crashDir := t.TempDir()
			id := startAndKillMidRun(t, crashDir, "jobs", "submit", "-store", crashDir,
				"-sweep", sweepSpec, "-workers", w, "-quiet")
			if out, err := cli(t, "jobs", "resume", "-store", crashDir, "-id", id,
				"-workers", w, "-quiet").Output(); err != nil {
				t.Fatalf("resume: %v (%s)", err, out)
			}

			st := readStatus(t, crashDir, id)
			if st.State != jobs.StateDone {
				t.Fatalf("resumed state = %s (%s)", st.State, st.Error)
			}
			if st.Store == nil || st.Store.DiskHits == 0 {
				t.Errorf("resume served nothing from the checkpoint store: %+v", st.Store)
			}

			ref, err := os.ReadFile(filepath.Join(refDir, "jobs", id, "result.json"))
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(crashDir, "jobs", id, "result.json"))
			if err != nil {
				t.Fatal(err)
			}
			if string(ref) != string(got) {
				t.Errorf("resumed artifact differs from uninterrupted run (%d vs %d bytes)", len(got), len(ref))
			}
		})
	}
}

// TestCrashResumeExplore runs the same kill-and-resume cycle through the
// explore engine: the frontier artifact must come out byte-identical.
func TestCrashResumeExplore(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	specDir := t.TempDir()
	exploreSpec := writeSpecFile(t, specDir, "explore.json", crashExploreSpec())

	refDir := t.TempDir()
	if out, err := cli(t, "jobs", "submit", "-store", refDir, "-explore", exploreSpec,
		"-workers", "2", "-quiet").Output(); err != nil {
		t.Fatalf("reference run: %v (%s)", err, out)
	}

	crashDir := t.TempDir()
	id := startAndKillMidRun(t, crashDir, "jobs", "submit", "-store", crashDir,
		"-explore", exploreSpec, "-workers", "2", "-quiet")
	if out, err := cli(t, "jobs", "resume", "-store", crashDir, "-id", id,
		"-workers", "2", "-quiet").Output(); err != nil {
		t.Fatalf("resume: %v (%s)", err, out)
	}

	ref, err := os.ReadFile(filepath.Join(refDir, "jobs", id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(crashDir, "jobs", id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(ref) != string(got) {
		t.Errorf("resumed frontier differs from uninterrupted run (%d vs %d bytes)", len(got), len(ref))
	}
}

// TestCLIWarmRepeatZeroSearches re-runs a finished job through the CLI
// against its warm store and asserts the status reports zero computed
// searches — the store served everything.
func TestCLIWarmRepeatZeroSearches(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	specDir := t.TempDir()
	sweepSpec := writeSpecFile(t, specDir, "sweep.json", crashSweepSpec())
	storeDir := t.TempDir()
	out, err := cli(t, "jobs", "submit", "-store", storeDir, "-sweep", sweepSpec, "-quiet").Output()
	if err != nil {
		t.Fatalf("first run: %v (%s)", err, out)
	}
	id := strings.TrimPrefix(strings.TrimSpace(string(out)), "job ")
	first, err := os.ReadFile(filepath.Join(storeDir, "jobs", id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if out, err := cli(t, "jobs", "resume", "-store", storeDir, "-id", id, "-quiet").Output(); err != nil {
		t.Fatalf("warm repeat: %v (%s)", err, out)
	}
	st := readStatus(t, storeDir, id)
	if st.Store == nil || st.Store.Misses != 0 {
		t.Errorf("warm repeat computed searches: %+v", st.Store)
	}
	second, err := os.ReadFile(filepath.Join(storeDir, "jobs", id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("warm repeat artifact differs")
	}
}
