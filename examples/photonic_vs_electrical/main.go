// photonic_vs_electrical compares the Albireo photonic accelerator (at all
// three scaling projections) against a conventional digital systolic array
// with the same peak throughput, the same global buffer, and the same DRAM
// — the comparison the paper's introduction motivates and that only a
// common full-system model makes fair.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"photoloop"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	layer := photoloop.NewConv("conv3x3", 1, 96, 64, 32, 32, 3, 3, 1, 1)

	type row struct {
		name                       string
		macPJ, accelPJ, systemPJ   float64
		convSharePct, dramSharePct float64
	}
	var rows []row

	// Electrical baseline.
	elec, err := photoloop.ElectricalBaseline().Build()
	if err != nil {
		return err
	}
	eb, err := photoloop.Search(elec, &layer, photoloop.SearchOptions{Budget: 2000, Seed: 1})
	if err != nil {
		return err
	}
	er := eb.Result
	macs := float64(er.MACs)
	rows = append(rows, row{
		name:         "electrical 8-bit systolic",
		macPJ:        er.EnergyOf("digital_mac", "") / macs,
		accelPJ:      photoloop.AlbireoAcceleratorPJ(er) / macs,
		systemPJ:     er.PJPerMAC(),
		dramSharePct: 100 * (er.PJPerMAC() - photoloop.AlbireoAcceleratorPJ(er)/macs) / er.PJPerMAC(),
	})

	// Photonic Albireo at each scaling.
	for _, s := range []photoloop.AlbireoScaling{photoloop.Conservative, photoloop.Moderate, photoloop.Aggressive} {
		a, err := photoloop.Albireo(s).Build()
		if err != nil {
			return err
		}
		pb, err := photoloop.Search(a, &layer, photoloop.SearchOptions{
			Budget: 2000, Seed: 1,
			Seeds: photoloop.AlbireoCanonicalMappings(a, &layer),
		})
		if err != nil {
			return err
		}
		pr := pb.Result
		pm := float64(pr.MACs)
		rows = append(rows, row{
			name:         fmt.Sprintf("photonic Albireo (%v)", s),
			macPJ:        (pr.EnergyOf("laser", "") + pr.EnergyOf("mrr", "")) / pm,
			accelPJ:      photoloop.AlbireoAcceleratorPJ(pr) / pm,
			systemPJ:     pr.PJPerMAC(),
			convSharePct: 100 * photoloop.AlbireoConverterPJ(pr) / pr.TotalPJ,
			dramSharePct: 100 * (pr.PJPerMAC() - photoloop.AlbireoAcceleratorPJ(pr)/pm) / pr.PJPerMAC(),
		})
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "design\tMAC pJ\taccel pJ/MAC\tsystem pJ/MAC\tconverters\tDRAM")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.1f%%\t%.1f%%\n",
			r.name, r.macPJ, r.accelPJ, r.systemPJ, r.convSharePct, r.dramSharePct)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out, `
reading the table:
 - the optical MAC itself gets very cheap under scaling (MAC pJ column),
 - but conservative photonics lose to electronics at the accelerator level
   because every operand crosses DE/AE/AO domains (converters column),
 - and at the full-system level both technologies converge on the same
   DRAM bill — the paper's case for modeling accelerator + DRAM together.`)
	return nil
}
