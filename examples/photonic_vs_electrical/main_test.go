package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestPhotonicVsElectricalRuns smoke-runs the comparison table twice and
// asserts every design row appears and the output is reproducible.
func TestPhotonicVsElectricalRuns(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a); err != nil {
		t.Fatal(err)
	}
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := a.String()
	if out == "" {
		t.Fatal("example produced no output")
	}
	for _, want := range []string{
		"electrical 8-bit systolic",
		"photonic Albireo (conservative)",
		"photonic Albireo (moderate)",
		"photonic Albireo (aggressive)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if out != b.String() {
		t.Error("two runs differ; the example lost determinism")
	}
}
