// comparative_study runs the architecture-level comparison the source
// paper's methodology exists to answer: which accelerator ORGANIZATION
// wins on which workload class? It crosses the photonic preset library
// (stock Albireo, the WDM-scaled wide variant, the ADC-lean
// shared-converter variant) and the electrical baseline against a
// conv-era CNN, a depthwise-dominated modern CNN and a transformer
// encoder, then prints each workload's ranked energy table.
//
// The same cross product runs from the command line as
//
//	photoloop study -presets all -workloads alexnet,mobilenet_v2,bert_base
//
// and over HTTP as POST /v1/study; all three share the cached sweep
// engine, so rows here are bit-identical to `photoloop eval -preset` at
// the same budget and seed.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"photoloop"
)

func main() {
	res, err := photoloop.Study(photoloop.StudySpec{
		Name:      "organization-vs-workload",
		Presets:   []string{"all"},
		Workloads: []string{"alexnet", "mobilenet_v2", "bert_base"},
		// Small pinned budget and single-threaded searches keep the run
		// fast and machine-independent; raise Budget for tighter mappings.
		Budget:        150,
		Seed:          1,
		SearchWorkers: 1,
	}, photoloop.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\trank\tpreset\tpJ/MAC\tMACs/cycle\tutil\tarea mm^2")
	for i, row := range res.Rows {
		if i > 0 && row.Network != res.Rows[i-1].Network {
			fmt.Fprintln(w, "\t\t\t\t\t\t")
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%.3f\t%.0f\t%.0f%%\t%.1f\n",
			row.Network, row.Rank, row.Preset, row.PJPerMAC, row.MACsPerCycle,
			100*row.Utilization, row.AreaUM2/1e6)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d layer searches, %d served from the shared cache\n",
		res.CacheHits+res.CacheMisses, res.CacheHits)
}
