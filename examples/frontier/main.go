// frontier discovers the Pareto-optimal corner of a photonic design
// space instead of enumerating it: which Albireo reuse/scale
// configurations are simultaneously energy- and area-optimal for a
// convolutional workload? It first exhausts the paper's Fig. 5 lever
// grid (18 designs) to get the exact frontier, then turns the cluster
// count and pixel-lane width into range axes — inflating the space to
// 4608 designs — and lets the budgeted adaptive strategy find the
// trade-off curve with 60 evaluations.
//
// The same searches run from the command line as
//
//	photoloop explore -preset albireo -network alexnet -budget 60
//
// and over HTTP as POST /v1/explore; all three share the cached sweep
// engine underneath. See docs/EXPLORATION.md for the guide.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"photoloop"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// The paper's Fig. 5 reuse levers: analog output-lane merging,
	// WDM input fan-out, shared ring banks.
	levers := []photoloop.ExploreAxis{
		{Param: "or_lanes", Values: []any{1, 3, 5}},
		{Param: "output_lanes", Values: []any{3, 9, 15}},
		{Param: "weight_reuse", Values: []any{false, true}},
	}
	base := photoloop.ExploreSpec{
		Base:     photoloop.SweepBase{Preset: "albireo"},
		Axes:     levers,
		Workload: photoloop.SweepWorkload{Network: "alexnet"},
		// Total energy against silicon area, both minimized.
		Objectives: []string{"energy", "area"},
		// Small pinned mapper budget and single-threaded searches keep
		// the run fast and machine-independent.
		MapperBudget:  60,
		Seed:          1,
		SearchWorkers: 1,
	}

	// Exhaustive: 18 designs, every one evaluated, exact frontier.
	exact, err := photoloop.Explore(base, photoloop.ExploreOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Lever grid (%s strategy, %d of %d designs)\n\n", exact.Strategy, exact.Evals, exact.SpaceSize)
	if err := exact.WriteMarkdown(w); err != nil {
		return err
	}

	// Adaptive: widen two levers into ranges and the space explodes —
	// the explorer now has to search, not enumerate.
	wide := base
	min, max := 1.0, 16.0
	pmin, pmax := 4.0, 64.0
	wide.Axes = append(append([]photoloop.ExploreAxis{}, levers...),
		photoloop.ExploreAxis{Param: "clusters", Min: &min, Max: &max},
		photoloop.ExploreAxis{Param: "pixel_lanes", Min: &pmin, Max: &pmax, Step: 4},
	)
	wide.Budget = 60
	approx, err := photoloop.Explore(wide, photoloop.ExploreOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n## Widened space (%s strategy, %d of %d designs)\n\n", approx.Strategy, approx.Evals, approx.SpaceSize)
	if err := approx.WriteMarkdown(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nsearch dedupe: %d layer searches served from cache, %d computed\n",
		approx.CacheHits, approx.CacheMisses)
	return nil
}
