package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFrontierRuns smoke-runs both explore strategies twice: the pinned
// seed and single-threaded searches make the frontiers — and therefore
// the whole printed report — bit-reproducible.
func TestFrontierRuns(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a); err != nil {
		t.Fatal(err)
	}
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := a.String()
	if out == "" {
		t.Fatal("example produced no output")
	}
	for _, want := range []string{"## Lever grid", "## Widened space", "search dedupe:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if out != b.String() {
		t.Error("two runs differ; the example lost determinism")
	}
}
