// design_space sweeps Albireo's reuse parameters (the paper's Fig. 5
// levers: IR, OR, weight-reuse topology) plus global-buffer size on
// ResNet18, and prints the energy/area Pareto frontier — the kind of rapid
// co-design exploration the paper argues a full-system model enables.
//
// The grid is declared as a photoloop.SweepSpec and evaluated by the
// concurrent sweep engine — the same code path behind `photoloop sweep`
// and `photoloop serve` — with per-shape search deduplication across the
// twelve variants.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"photoloop"
)

type point struct {
	label    string
	pjPerMAC float64
	areaMM2  float64
	pareto   bool
}

func main() {
	spec := photoloop.SweepSpec{
		Name: "design-space",
		Base: photoloop.SweepBase{Albireo: &photoloop.SweepAlbireoBase{Scaling: "aggressive"}},
		Axes: []photoloop.SweepAxis{
			{Param: "weight_reuse", Values: []any{false, true}},
			{Param: "output_lanes", Values: []any{3, 9, 15}},
			{Param: "glb_mib", Values: []any{1, 2}},
		},
		Workloads:  []photoloop.SweepWorkload{{Network: "resnet18", Batch: 1}},
		Objectives: []string{"energy"},
		Budget:     500,
		Seed:       1,
	}
	res, err := photoloop.Sweep(spec, photoloop.SweepOptions{
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	points := make([]point, 0, len(res.Points))
	for i := range res.Points {
		p := &res.Points[i]
		// Recover IR through the config so the lane-to-reuse coupling
		// stays defined in one place.
		cfg := photoloop.Albireo(photoloop.Aggressive)
		cfg.OutputLanes = p.Params["output_lanes"].(int)
		points = append(points, point{
			label: fmt.Sprintf("wr=%v IR=%d GLB=%dMiB",
				p.Params["weight_reuse"], cfg.IR(), p.Params["glb_mib"]),
			pjPerMAC: p.PJPerMAC,
			areaMM2:  p.AreaUM2 / 1e6,
		})
	}

	// Mark the Pareto-optimal points (minimize both energy and area).
	for i := range points {
		points[i].pareto = true
		for j := range points {
			if j != i &&
				points[j].pjPerMAC <= points[i].pjPerMAC &&
				points[j].areaMM2 <= points[i].areaMM2 &&
				(points[j].pjPerMAC < points[i].pjPerMAC || points[j].areaMM2 < points[i].areaMM2) {
				points[i].pareto = false
				break
			}
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].pjPerMAC < points[j].pjPerMAC })

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tpJ/MAC\tarea mm^2\tPareto")
	for _, p := range points {
		mark := ""
		if p.pareto {
			mark = "*"
		}
		fmt.Fprintf(w, "%s\t%.4f\t%.2f\t%s\n", p.label, p.pjPerMAC, p.areaMM2, mark)
	}
	w.Flush()
	fmt.Printf("\n* = Pareto optimal; %d/%d layer searches deduplicated\n",
		res.CacheHits, res.CacheHits+res.CacheMisses)
}
