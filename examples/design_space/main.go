// design_space sweeps Albireo's reuse parameters (the paper's Fig. 5
// levers: IR, OR, weight-reuse topology) plus global-buffer size on
// ResNet18, and prints the energy/area Pareto frontier — the kind of rapid
// co-design exploration the paper argues a full-system model enables.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"photoloop"
)

type point struct {
	label    string
	pjPerMAC float64
	areaMM2  float64
	pareto   bool
}

func main() {
	net := photoloop.ResNet18(1)
	var points []point
	for _, wr := range []bool{false, true} {
		for _, outputLanes := range []int{3, 9, 15} {
			for _, glbMiB := range []int{1, 2} {
				cfg := photoloop.Albireo(photoloop.Aggressive)
				cfg.OutputLanes = outputLanes
				cfg.WeightReuse = wr
				cfg.GLBMiB = glbMiB
				a, err := cfg.Build()
				if err != nil {
					log.Fatal(err)
				}
				area, err := a.Area()
				if err != nil {
					log.Fatal(err)
				}
				res, err := photoloop.EvalAlbireoNetwork(cfg, net, photoloop.AlbireoNetOptions{
					Batch:  1,
					Mapper: photoloop.SearchOptions{Budget: 500, Seed: 1},
				})
				if err != nil {
					log.Fatal(err)
				}
				points = append(points, point{
					label: fmt.Sprintf("wr=%v IR=%d GLB=%dMiB",
						wr, cfg.IR(), glbMiB),
					pjPerMAC: res.PJPerMAC(),
					areaMM2:  area / 1e6,
				})
			}
		}
	}

	// Mark the Pareto-optimal points (minimize both energy and area).
	for i := range points {
		points[i].pareto = true
		for j := range points {
			if j != i &&
				points[j].pjPerMAC <= points[i].pjPerMAC &&
				points[j].areaMM2 <= points[i].areaMM2 &&
				(points[j].pjPerMAC < points[i].pjPerMAC || points[j].areaMM2 < points[i].areaMM2) {
				points[i].pareto = false
				break
			}
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].pjPerMAC < points[j].pjPerMAC })

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tpJ/MAC\tarea mm^2\tPareto")
	for _, p := range points {
		mark := ""
		if p.pareto {
			mark = "*"
		}
		fmt.Fprintf(w, "%s\t%.4f\t%.2f\t%s\n", p.label, p.pjPerMAC, p.areaMM2, mark)
	}
	w.Flush()
	fmt.Println("\n* = Pareto optimal (no configuration is better on both axes)")
}
