package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFusedPipelineRuns smoke-runs the Fig. 4 scenario twice and asserts
// the fixed mapper seed keeps the printed study reproducible.
func TestFusedPipelineRuns(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a); err != nil {
		t.Fatal(err)
	}
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := a.String()
	if out == "" {
		t.Fatal("example produced no output")
	}
	for _, want := range []string{"baseline", "batched + fused", "DRAM share"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if out != b.String() {
		t.Error("two runs differ; the example lost determinism")
	}
}
