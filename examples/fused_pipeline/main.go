// fused_pipeline reproduces the paper's Fig. 4 scenario interactively:
// ResNet18 on the aggressively-scaled Albireo, with and without input
// batching and layer fusion. It shows the paper's headline full-system
// result — the aggressively-scaled accelerator is so efficient that DRAM
// dominates, and only DRAM-traffic optimizations realize the scaling's
// benefit.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"photoloop"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	net := photoloop.ResNet18(1)
	type cfg struct {
		name  string
		batch int
		fused bool
	}
	cases := []cfg{
		{"baseline (batch 1, activations via DRAM)", 1, false},
		{"batched (batch 8)", 8, false},
		{"fused (activations stay on chip)", 1, true},
		{"batched + fused", 8, true},
	}
	var base float64
	for _, c := range cases {
		res, err := photoloop.EvalAlbireoNetwork(
			photoloop.Albireo(photoloop.Aggressive), net,
			photoloop.AlbireoNetOptions{
				Batch:  c.batch,
				Fused:  c.fused,
				Mapper: photoloop.SearchOptions{Budget: 600, Seed: 1},
			})
		if err != nil {
			return err
		}
		pj := res.PJPerMAC()
		if base == 0 {
			base = pj
		}
		bars := int(pj / base * 40)
		fmt.Fprintf(w, "%-45s %.4f pJ/MAC  %s\n", c.name, pj, strings.Repeat("#", bars))
		fmt.Fprintf(w, "%-45s DRAM share %.1f%%, throughput %.0f MACs/cycle\n",
			"", 100*res.DRAMShare(), res.ThroughputMACsPerCycle())
	}
	fmt.Fprintln(w, "\nthe paper's finding: batching + fusion recover ~3x on the aggressive system,")
	fmt.Fprintln(w, "because DRAM — not the photonics — dominates once devices are cheap enough.")
	return nil
}
