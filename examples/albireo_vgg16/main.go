// albireo_vgg16 runs VGG16 layer by layer on the Albireo model and prints
// per-layer energy and throughput — the workload-level view behind the
// paper's Fig. 3: unstrided 3x3 convolutions fill the photonic array,
// while odd shapes (the 14x14 tail, the huge FC layers) underutilize it or
// run into the DRAM bandwidth wall.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"photoloop"
)

func main() {
	a, err := photoloop.Albireo(photoloop.Conservative).Build()
	if err != nil {
		log.Fatal(err)
	}
	net := photoloop.VGG16(1)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "layer\tMACs\tpJ/MAC\tMACs/cycle\tutil\tbottleneck")
	var macs int64
	var pj, cycles float64
	for i := range net.Layers {
		l := &net.Layers[i]
		best, err := photoloop.Search(a, l, photoloop.SearchOptions{
			Objective: photoloop.MinEnergy,
			Budget:    800,
			Seed:      1,
			Seeds:     photoloop.AlbireoCanonicalMappings(a, l),
		})
		if err != nil {
			log.Fatalf("%s: %v", l.Name, err)
		}
		r := best.Result
		bn := r.BottleneckLevel
		if bn == "" {
			bn = "compute"
		}
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.0f\t%.1f%%\t%s\n",
			l.Name, r.MACs, r.PJPerMAC(), r.MACsPerCycle, 100*r.Utilization, bn)
		macs += r.MACs
		pj += r.TotalPJ
		cycles += r.Cycles
	}
	w.Flush()
	fmt.Printf("\nnetwork total: %.3f pJ/MAC, %.0f MACs/cycle end to end, %.3f ms/inference at 5 GHz\n",
		pj/float64(macs), float64(macs)/cycles, cycles/5e9*1e3)
}
