package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickstartRuns smoke-runs the example and pins its determinism:
// the mapper seed is fixed, so two runs must print identical output.
func TestQuickstartRuns(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a); err != nil {
		t.Fatal(err)
	}
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := a.String()
	if out == "" {
		t.Fatal("example produced no output")
	}
	for _, want := range []string{"architecture:", "best mapping", "energy by component:", "cross-domain conversions:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if out != b.String() {
		t.Error("two runs differ; the example lost determinism")
	}
}
