// Quickstart: build the Albireo photonic accelerator model, map one
// convolution layer onto it, and inspect where the energy goes — including
// the cross-domain conversion costs (DE/AE, AE/AO, AO/AE, AE/DE) that the
// paper shows can dominate photonic systems.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"photoloop"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// 1. Build the conservatively-scaled Albireo (8 clusters x 32 pixel
	//    lanes x 3 output lanes x 9 wavelength window slots).
	cfg := photoloop.Albireo(photoloop.Conservative)
	a, err := cfg.Build()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "architecture: %s, peak %d MACs/cycle\n", a.Name, a.PeakMACsPerCycle())
	area, err := a.Area()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "area: %.2f mm^2\n", area/1e6)

	// 2. Describe a workload layer: a 3x3 convolution.
	layer := photoloop.NewConv("conv3x3", 1, 96, 64, 32, 32, 3, 3, 1, 1)
	fmt.Fprintf(w, "layer: %s (%d MACs)\n\n", layer.String(), layer.MACs())

	// 3. Let the mapper find an energy-optimal schedule, seeded with the
	//    architect-intended canonical mappings.
	best, err := photoloop.Search(a, &layer, photoloop.SearchOptions{
		Objective: photoloop.MinEnergy,
		Budget:    2000,
		Seed:      1,
		Seeds:     photoloop.AlbireoCanonicalMappings(a, &layer),
	})
	if err != nil {
		return err
	}
	res := best.Result
	fmt.Fprintf(w, "best mapping (%d evaluations):\n%s\n", best.Evaluations, best.Mapping.String())
	fmt.Fprintf(w, "energy:     %.3f pJ/MAC\n", res.PJPerMAC())
	fmt.Fprintf(w, "throughput: %.0f MACs/cycle (utilization %.1f%%)\n",
		res.MACsPerCycle, 100*res.Utilization)

	// 4. Where does the energy go? Group the ledger by component.
	byComp := res.EnergyByComponent()
	names := make([]string, 0, len(byComp))
	for n := range byComp {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return byComp[names[i]] > byComp[names[j]] })
	fmt.Fprintln(w, "\nenergy by component:")
	for _, n := range names {
		fmt.Fprintf(w, "  %-14s %6.3f pJ/MAC (%5.1f%%)\n",
			n, byComp[n]/float64(res.MACs), 100*byComp[n]/res.TotalPJ)
	}

	// 5. The same question per domain crossing: how much do conversions
	//    cost versus computation and storage?
	conv := 0.0
	for i := range res.Energy {
		switch res.Energy[i].Class {
		case "dac", "adc", "mzm", "photodiode":
			conv += res.Energy[i].TotalPJ
		case "mrr":
			if res.Energy[i].Action == "program" {
				conv += res.Energy[i].TotalPJ
			}
		}
	}
	fmt.Fprintf(w, "\ncross-domain conversions: %.1f%% of total energy — the paper's central cost\n",
		100*conv/res.TotalPJ)
	return nil
}
