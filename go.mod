module photoloop

go 1.24
