package photoloop_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestFacadeDocComments enforces the documentation contract of the public
// facade: every exported identifier declared in photoloop.go must carry a
// doc comment (on its own declaration, its spec, or — for grouped
// constants — the group). CI runs this as part of the docs job.
func TestFacadeDocComments(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "photoloop.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	report := func(name string, pos token.Pos) {
		t.Errorf("%s: exported identifier %q has no doc comment", fset.Position(pos), name)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Name.Name, d.Pos())
			}
		case *ast.GenDecl:
			for _, s := range d.Specs {
				switch sp := s.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && sp.Doc == nil && d.Doc == nil {
						report(sp.Name.Name, sp.Pos())
					}
				case *ast.ValueSpec:
					// Grouped constants (e.g. the Dim values) may share
					// the group's doc; line comments also count.
					documented := sp.Doc != nil || sp.Comment != nil || d.Doc != nil
					for _, name := range sp.Names {
						if name.IsExported() && !documented {
							report(name.Name, name.Pos())
						}
					}
				}
			}
		}
	}
}
