package photoloop_test

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"photoloop"
	"photoloop/internal/md"
)

// docLintPackages are the directories whose exported identifiers must all
// carry doc comments: the public facade plus the packages the scenario
// subsystem added (presets, the workload zoo, the sweep/study engine).
// CI runs this lint as part of the docs job.
var docLintPackages = []string{
	".", // the photoloop facade
	"internal/presets",
	"internal/workload",
	"internal/sweep",
	"internal/explore",
	"internal/md",
	"internal/store",
	"internal/jobs",
	"internal/fidelity",
}

// TestFacadeDocComments enforces the documentation contract: every
// exported identifier declared in the linted packages must carry a doc
// comment (on its own declaration, its spec, or — for grouped constants —
// the group).
func TestFacadeDocComments(t *testing.T) {
	for _, dir := range docLintPackages {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			lintFileDocComments(t, filepath.Join(dir, name))
		}
	}
}

func lintFileDocComments(t *testing.T, path string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	report := func(name string, pos token.Pos) {
		t.Errorf("%s: exported identifier %q has no doc comment", fset.Position(pos), name)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			// Methods inherit discoverability from their receiver type's
			// godoc page but still must be documented.
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Name.Name, d.Pos())
			}
		case *ast.GenDecl:
			for _, s := range d.Specs {
				switch sp := s.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && sp.Doc == nil && d.Doc == nil {
						report(sp.Name.Name, sp.Pos())
					}
				case *ast.ValueSpec:
					// Grouped constants (e.g. the Dim values) may share
					// the group's doc; line comments also count.
					documented := sp.Doc != nil || sp.Comment != nil || d.Doc != nil
					for _, name := range sp.Names {
						if name.IsExported() && !documented {
							report(name.Name, name.Pos())
						}
					}
				}
			}
		}
	}
}

// repoMarkdownFiles returns the markdown documents the docs checks cover.
func repoMarkdownFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, docs...)
}

// TestMarkdownLinks checks that intra-repo links in README.md and
// docs/*.md resolve to existing files — no dangling references. External
// (http/https/mailto) and pure-anchor links are skipped.
func TestMarkdownLinks(t *testing.T) {
	linkRe := regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	for _, path := range repoMarkdownFiles(t) {
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(buf), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dangling link %q (%v)", path, m[1], err)
			}
		}
	}
}

// docRefPackages maps the package qualifiers docs/MODELING.md may use to
// the directories that declare them.
var docRefPackages = map[string]string{
	"photoloop":  ".",
	"workload":   "internal/workload",
	"components": "internal/components",
	"arch":       "internal/arch",
	"mapping":    "internal/mapping",
	"model":      "internal/model",
	"mapper":     "internal/mapper",
	"albireo":    "internal/albireo",
	"baseline":   "internal/baseline",
	"spec":       "internal/spec",
	"sweep":      "internal/sweep",
	"presets":    "internal/presets",
	"explore":    "internal/explore",
	"md":         "internal/md",
	"exp":        "internal/exp",
	"refsim":     "internal/refsim",
	"report":     "internal/report",
	"store":      "internal/store",
	"jobs":       "internal/jobs",
	"shard":      "internal/shard",
	"retry":      "internal/retry",
	"fidelity":   "internal/fidelity",
}

// exportedNames parses every non-test file of a package directory and
// returns its exported top-level identifiers (types, funcs, consts,
// vars).
func exportedNames(t *testing.T, dir string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() {
					out[d.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, s := range d.Specs {
					switch sp := s.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() {
							out[sp.Name.Name] = true
						}
					case *ast.ValueSpec:
						for _, n := range sp.Names {
							if n.IsExported() {
								out[n.Name] = true
							}
						}
					}
				}
			}
		}
	}
	return out
}

// TestModelingDocReferences guards the reference-heavy guides
// (docs/MODELING.md and docs/EXPLORATION.md) against rot: every
// backticked `pkg.Symbol` reference whose qualifier names one of this
// module's packages must resolve to an exported identifier that still
// compiles there.
func TestModelingDocReferences(t *testing.T) {
	refRe := regexp.MustCompile("`([a-z][a-zA-Z0-9]*)\\.([A-Z][A-Za-z0-9]*)")
	names := map[string]map[string]bool{}
	for doc, minRefs := range map[string]int{
		"MODELING.md":    30,
		"EXPLORATION.md": 8,
		"SERVICE.md":     8,
	} {
		buf, err := os.ReadFile(filepath.Join("docs", doc))
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		for _, m := range refRe.FindAllStringSubmatch(string(buf), -1) {
			pkg, sym := m[1], m[2]
			dir, ok := docRefPackages[pkg]
			if !ok {
				continue
			}
			if names[pkg] == nil {
				names[pkg] = exportedNames(t, dir)
			}
			checked++
			if !names[pkg][sym] {
				t.Errorf("docs/%s references %s.%s, which %s does not export", doc, pkg, sym, dir)
			}
		}
		if checked < minRefs {
			t.Errorf("docs/%s: only %d package references found — the extraction regex may have rotted", doc, checked)
		}
	}
}

// generatedWorkloadTable renders the README's workload table from the
// zoo registry — the single source of truth. Rendering goes through the
// shared md helper so a `|` in a description cannot break the table.
func generatedWorkloadTable() string {
	var rows [][]string
	for _, e := range photoloop.WorkloadZoo() {
		n := e.Build(1)
		rows = append(rows, []string{
			e.Name, e.Family, fmt.Sprint(len(n.Layers)),
			fmt.Sprintf("%.2f", float64(n.MACs())/1e9),
			fmt.Sprintf("%.2f", float64(n.WeightElems())/1e6),
			e.Description,
		})
	}
	var b strings.Builder
	if err := md.Table(&b, []string{"network", "family", "layers", "GMACs", "params (M)", "description"}, "llrrrl", rows); err != nil {
		panic(err)
	}
	return b.String()
}

// generatedPresetTable renders the README's preset table from the
// preset library, through the same escaping md helper.
func generatedPresetTable() string {
	var rows [][]string
	for _, p := range photoloop.Presets() {
		a, err := p.Build()
		if err != nil {
			panic(err)
		}
		area, err := a.Area()
		if err != nil {
			panic(err)
		}
		rows = append(rows, []string{
			p.Name, p.Kind(), fmt.Sprint(a.PeakMACsPerCycle()),
			fmt.Sprintf("%.2f", area/1e6), p.Description,
		})
	}
	var b strings.Builder
	if err := md.Table(&b, []string{"preset", "kind", "peak MACs/cycle", "area (mm²)", "description"}, "llrrl", rows); err != nil {
		panic(err)
	}
	return b.String()
}

// TestREADMEGeneratedTables keeps the README's workload and preset
// tables generated from the live registries: the committed text between
// the marker comments must match what the code produces. Run with
// UPDATE_DOCS=1 to rewrite the README in place after adding a zoo entry
// or preset.
func TestREADMEGeneratedTables(t *testing.T) {
	blocks := map[string]string{
		"workloads": generatedWorkloadTable(),
		"presets":   generatedPresetTable(),
	}
	buf, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(buf)
	update := os.Getenv("UPDATE_DOCS") != ""
	for name, want := range blocks {
		begin := fmt.Sprintf("<!-- generated:%s:begin -->\n", name)
		end := fmt.Sprintf("<!-- generated:%s:end -->", name)
		bi := strings.Index(text, begin)
		ei := strings.Index(text, end)
		if bi < 0 || ei < 0 || ei < bi {
			t.Errorf("README.md: markers for generated block %q missing or out of order", name)
			continue
		}
		got := text[bi+len(begin) : ei]
		if got == want {
			continue
		}
		if update {
			text = text[:bi+len(begin)] + want + text[ei:]
			continue
		}
		t.Errorf("README.md generated %s table is stale (run UPDATE_DOCS=1 go test -run TestREADMEGeneratedTables .):\n--- committed ---\n%s\n--- generated ---\n%s", name, got, want)
	}
	if update && text != string(buf) {
		if err := os.WriteFile("README.md", []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("README.md updated")
	}
}

// explorationDocSpec is the worked example docs/EXPLORATION.md walks
// through — the same fixture the explore package's markdown golden pins.
func explorationDocSpec() photoloop.ExploreSpec {
	return photoloop.ExploreSpec{
		Base: photoloop.SweepBase{Preset: "albireo"},
		Axes: []photoloop.ExploreAxis{
			{Param: "or_lanes", Values: []any{1, 3, 5}},
			{Param: "output_lanes", Values: []any{3, 9, 15}},
			{Param: "weight_reuse", Values: []any{false, true}},
		},
		Workload:      photoloop.SweepWorkload{Network: "alexnet"},
		Objectives:    []string{"energy", "area"},
		MapperBudget:  60,
		Seed:          1,
		SearchWorkers: 1,
	}
}

// TestExplorationDocExample reproduces docs/EXPLORATION.md's worked
// frontier: the committed table between the marker comments must match
// what the explorer computes today. Run with UPDATE_DOCS=1 to rewrite
// the document in place after a model or mapper change.
func TestExplorationDocExample(t *testing.T) {
	f, err := photoloop.Explore(explorationDocSpec(), photoloop.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var rendered strings.Builder
	if err := f.WriteMarkdown(&rendered); err != nil {
		t.Fatal(err)
	}
	want := strings.TrimRight(rendered.String(), "\n") + "\n"

	path := filepath.Join("docs", "EXPLORATION.md")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(buf)
	const begin = "<!-- generated:frontier-example:begin -->\n"
	const end = "<!-- generated:frontier-example:end -->"
	bi := strings.Index(text, begin)
	ei := strings.Index(text, end)
	if bi < 0 || ei < 0 || ei < bi {
		t.Fatalf("%s: frontier-example markers missing or out of order", path)
	}
	got := text[bi+len(begin) : ei]
	if got == want {
		return
	}
	if os.Getenv("UPDATE_DOCS") != "" {
		text = text[:bi+len(begin)] + want + text[ei:]
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("docs/EXPLORATION.md updated")
		return
	}
	t.Errorf("%s worked example is stale (run UPDATE_DOCS=1 go test -run TestExplorationDocExample .):\n--- committed ---\n%s\n--- computed ---\n%s", path, got, want)
}

// TestREADMESubcommandsDocumented keeps the README and `photoloop help`
// honest: every CLI subcommand must appear in the README's command-line
// session (bench was once missing; study must not regress the same way).
func TestREADMESubcommandsDocumented(t *testing.T) {
	buf, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(buf)
	for _, sub := range []string{
		"eval", "sweep", "explore", "study", "jobs", "serve", "bench",
		"template", "networks", "presets", "classes",
	} {
		if !strings.Contains(text, "photoloop "+sub) {
			t.Errorf("README.md does not document the %q subcommand", sub)
		}
	}
	// And the usage text in cmd/photoloop must list them all too.
	main, err := os.ReadFile(filepath.Join("cmd", "photoloop", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{
		"photoloop eval", "photoloop sweep", "photoloop explore",
		"photoloop study", "photoloop jobs", "photoloop serve",
		"photoloop bench", "photoloop template", "photoloop networks",
		"photoloop presets", "photoloop classes", "photoloop version",
		"photoloop help",
	} {
		if !bytes.Contains(main, []byte(sub)) {
			t.Errorf("cmd/photoloop usage does not mention %q", sub)
		}
	}
}
