package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"

	"photoloop/internal/mapper"
	"photoloop/internal/presets"
	"photoloop/internal/workload"
)

// EncodeResponseJSON writes a value exactly as the HTTP server encodes its
// responses (two-space indented JSON) — `photoloop eval -json` matches
// `POST /v1/eval` byte for byte because both go through it.
func EncodeResponseJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// DecodeSpec parses a sweep spec document strictly (unknown fields are
// errors), as `photoloop sweep -spec` and `POST /v1/sweep` do.
func DecodeSpec(r io.Reader) (Spec, error) {
	var sp Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("sweep: decoding spec: %w", err)
	}
	return sp, nil
}

// maxRequestBytes bounds request bodies: sweep specs and inline networks
// are small documents.
const maxRequestBytes = 8 << 20

// Server exposes the evaluation and sweep engines over HTTP, letting the
// model run as a long-lived service:
//
//	POST /v1/eval     — one EvalRequest  -> EvalResponse
//	POST /v1/sweep    — one Spec         -> Result (JSON, or CSV with ?format=csv)
//	POST /v1/study    — one StudySpec    -> StudyResult (JSON, or CSV with ?format=csv)
//	GET  /v1/networks — the built-in workload zoo
//	GET  /v1/presets  — the architecture preset library
//
// All requests share one fingerprint-keyed search cache, so repeated
// evaluations of the same (architecture, layer shape) — across requests
// and across sweep points — are served without re-searching.
//
// Sibling front ends register further endpoints through Mount; the
// explore package adds POST /v1/explore (see explore.Attach), sharing the
// same cache and heavy-run admission.
type Server struct {
	mux   *http.ServeMux
	cache *mapper.Cache
	// sweepSem caps concurrently running sweeps: each sweep spins up a
	// full point pool, so unbounded admission would melt the machine
	// under a handful of large concurrent requests. Waiters honor the
	// request context.
	sweepSem chan struct{}
	// Workers caps per-sweep point parallelism (0 = GOMAXPROCS).
	Workers int
}

// cacheEntryLimit bounds the server's process-wide search cache: past the
// limit the cache epoch-flushes and rebuilds (clients iterating distinct
// architectures must not grow memory without bound).
const cacheEntryLimit = 1 << 16

// maxConcurrentSweeps bounds in-flight POST /v1/sweep requests; further
// requests queue on their context (evals stay unqueued — they are one
// network each).
const maxConcurrentSweeps = 2

// NewServer builds the HTTP front end with a fresh shared cache.
func NewServer() *Server {
	s := &Server{
		mux:      http.NewServeMux(),
		cache:    mapper.NewCacheLimit(cacheEntryLimit),
		sweepSem: make(chan struct{}, maxConcurrentSweeps),
	}
	s.mux.HandleFunc("POST /v1/eval", s.handleEval)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/study", s.handleStudy)
	s.mux.HandleFunc("GET /v1/networks", s.handleNetworks)
	s.mux.HandleFunc("GET /v1/presets", s.handlePresets)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// CacheStats returns the shared cache's hit/miss counters.
func (s *Server) CacheStats() (hits, misses int64) { return s.cache.Stats() }

// Mount registers an additional handler on the server's mux. Sibling
// front ends that would otherwise create an import cycle register their
// endpoints this way — the explore package mounts POST /v1/explore.
func (s *Server) Mount(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// SearchCache returns the server's process-wide search cache, so mounted
// endpoints share the same deduplication the built-in ones use.
func (s *Server) SearchCache() *mapper.Cache { return s.cache }

// AdmitHeavy reserves one of the server's heavy-run slots (the admission
// semaphore sweeps and studies queue on), blocking until a slot frees or
// ctx is done. On success the caller must invoke the returned release.
// Mounted endpoints that spin up a full point pool (explore) use it so
// the server's total concurrency stays bounded.
func (s *Server) AdmitHeavy(ctx context.Context) (release func(), err error) {
	select {
	case s.sweepSem <- struct{}{}:
		return func() { <-s.sweepSem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	var req EvalRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := Eval(&req, s.cache)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	if !decodeBody(w, r, &sp) {
		return
	}
	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	case <-r.Context().Done():
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("sweep queue: %w", r.Context().Err()))
		return
	}
	res, err := Run(sp, Options{Workers: s.Workers, Cache: s.cache, Context: r.Context()})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		if err := res.WriteCSV(w); err != nil {
			// Status is already committed; the truncated body is all we
			// can signal with.
			log.Printf("sweep: writing CSV response: %v", err)
		}
		return
	}
	writeJSON(w, res)
}

// handleStudy runs a comparative preset study; like sweeps, studies spin
// up a full point pool, so they share the sweep admission semaphore.
func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	var sp StudySpec
	if !decodeBody(w, r, &sp) {
		return
	}
	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	case <-r.Context().Done():
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("study queue: %w", r.Context().Err()))
		return
	}
	res, err := RunStudy(sp, Options{Workers: s.Workers, Cache: s.cache, Context: r.Context()})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		if err := res.WriteCSV(w); err != nil {
			log.Printf("study: writing CSV response: %v", err)
		}
		return
	}
	writeJSON(w, res)
}

// networkInfo is one zoo entry of GET /v1/networks.
type networkInfo struct {
	Name        string `json:"name"`
	Family      string `json:"family"`
	Description string `json:"description"`
	Layers      int    `json:"layers"`
	MACs        int64  `json:"macs"`
	Weights     int64  `json:"weights"`
}

func (s *Server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	entries := workload.ZooEntries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	out := make([]networkInfo, 0, len(entries))
	for _, e := range entries {
		n := e.Build(1)
		out = append(out, networkInfo{
			Name: e.Name, Family: e.Family, Description: e.Description,
			Layers: len(n.Layers), MACs: n.MACs(), Weights: n.WeightElems(),
		})
	}
	writeJSON(w, out)
}

// presetInfo is one library entry of GET /v1/presets.
type presetInfo struct {
	Name             string  `json:"name"`
	Kind             string  `json:"kind"`
	Description      string  `json:"description"`
	PeakMACsPerCycle int64   `json:"peak_macs_per_cycle"`
	AreaUM2          float64 `json:"area_um2"`
}

func (s *Server) handlePresets(w http.ResponseWriter, r *http.Request) {
	all := presets.All()
	out := make([]presetInfo, 0, len(all))
	for _, p := range all {
		a, err := p.Build()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		area, err := a.Area()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		out = append(out, presetInfo{
			Name: p.Name, Kind: p.Kind(), Description: p.Description,
			PeakMACsPerCycle: a.PeakMACsPerCycle(), AreaUM2: area,
		})
	}
	writeJSON(w, out)
}

// decodeBody parses a JSON request body strictly; on failure it writes a
// 400 and returns false.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// errorBody is the JSON error envelope every failure returns.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// WriteHTTPError writes the server's JSON error envelope — mounted
// endpoints (explore) use it so every /v1 route fails with the same
// document.
func WriteHTTPError(w http.ResponseWriter, status int, err error) {
	httpError(w, status, err)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	EncodeResponseJSON(w, v)
}
