package sweep

import (
	"fmt"

	"photoloop/internal/arch"
	"photoloop/internal/mapper"
	"photoloop/internal/model"
	"photoloop/internal/spec"
	"photoloop/internal/workload"
)

// EvalRequest is one architecture × network evaluation: the request body
// of `POST /v1/eval` and the engine behind `photoloop eval`. Exactly one
// of Arch/Albireo selects the architecture, and exactly one of
// Network/Inline selects the workload. With no Mapping, every layer is
// mapper-searched; with one, the fixed schedule is evaluated as-is.
type EvalRequest struct {
	// Arch is a raw architecture spec document.
	Arch *spec.ArchSpec `json:"arch,omitempty"`
	// Albireo selects the paper's Albireo instantiation instead.
	Albireo *AlbireoBase `json:"albireo,omitempty"`
	// Network names a zoo network; Inline embeds one.
	Network string            `json:"network,omitempty"`
	Inline  *workload.Network `json:"inline,omitempty"`
	// Layer restricts the evaluation to one named layer.
	Layer string `json:"layer,omitempty"`
	// Batch is the batch size (default 1).
	Batch int `json:"batch,omitempty"`
	// Objective is the mapper objective (default "energy").
	Objective string `json:"objective,omitempty"`
	// Budget, Seed and Workers tune the per-layer search (0 = mapper
	// defaults).
	Budget  int   `json:"budget,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	Workers int   `json:"workers,omitempty"`
	// Mapping evaluates this fixed schedule on every selected layer
	// instead of searching.
	Mapping *spec.MappingSpec `json:"mapping,omitempty"`
}

// EvalResponse is the evaluation result: per-layer outcomes plus the
// network totals, and the architecture's mapping-independent properties.
type EvalResponse struct {
	Arch             string         `json:"arch"`
	Network          string         `json:"network"`
	AreaUM2          float64        `json:"area_um2"`
	PeakMACsPerCycle int64          `json:"peak_macs_per_cycle"`
	Layers           []LayerOutcome `json:"layers"`
	// Totals across the evaluated layers.
	MACs         int64   `json:"macs"`
	Cycles       float64 `json:"cycles"`
	TotalPJ      float64 `json:"total_pj"`
	PJPerMAC     float64 `json:"pj_per_mac"`
	MACsPerCycle float64 `json:"macs_per_cycle"`
	Utilization  float64 `json:"utilization"`
	Evaluations  int     `json:"evaluations"`
	// Pruned, DeltaEvals and FullEvals sum the mapper's search statistics
	// across the evaluated layers (zero for fixed-mapping requests).
	Pruned     int `json:"pruned,omitempty"`
	DeltaEvals int `json:"delta_evals,omitempty"`
	FullEvals  int `json:"full_evals,omitempty"`
}

// buildArch constructs the request's architecture.
func (req *EvalRequest) buildArch() (*arch.Arch, error) {
	switch {
	case req.Arch != nil && req.Albireo != nil:
		return nil, fmt.Errorf("sweep: eval request sets both arch and albireo")
	case req.Arch != nil:
		return req.Arch.Build()
	case req.Albireo != nil:
		cfg, err := req.Albireo.config()
		if err != nil {
			return nil, err
		}
		return cfg.Build()
	default:
		return nil, fmt.Errorf("sweep: eval request needs an arch or albireo base")
	}
}

// Eval runs one evaluation request. An optional shared cache deduplicates
// searches across requests (the HTTP server passes its process-wide
// cache; pass nil for a one-shot evaluation).
func Eval(req *EvalRequest, cache *mapper.Cache) (*EvalResponse, error) {
	a, err := req.buildArch()
	if err != nil {
		return nil, err
	}
	wl := Workload{Network: req.Network, Inline: req.Inline, Batch: req.Batch}
	net, netName, err := wl.resolve()
	if err != nil {
		return nil, err
	}
	layers := net.Layers
	if req.Layer != "" {
		layers = nil
		for i := range net.Layers {
			if net.Layers[i].Name == req.Layer {
				layers = append(layers, net.Layers[i])
			}
		}
		if len(layers) == 0 {
			return nil, fmt.Errorf("sweep: network %s has no layer %q", netName, req.Layer)
		}
	}
	objName := req.Objective
	if objName == "" {
		objName = "energy"
	}
	obj, err := mapper.ParseObjective(objName)
	if err != nil {
		return nil, err
	}

	resp := &EvalResponse{Arch: a.Name, Network: netName, PeakMACsPerCycle: a.PeakMACsPerCycle()}
	if area, err := a.Area(); err == nil {
		resp.AreaUM2 = area
	}

	var fixed func(l *workload.Layer) (*model.Result, error)
	var sess *mapper.Session
	if req.Mapping != nil {
		m, err := req.Mapping.Build(a)
		if err != nil {
			return nil, err
		}
		fixed = func(l *workload.Layer) (*model.Result, error) {
			return model.Evaluate(a, l, m, model.Options{})
		}
	} else {
		if sess, err = mapper.NewSession(a); err != nil {
			return nil, err
		}
	}

	total := model.Result{Layer: netName}
	for i := range layers {
		l := &layers[i]
		var res *model.Result
		evals := 0
		var stats mapper.SearchStats
		if fixed != nil {
			if res, err = fixed(l); err != nil {
				return nil, fmt.Errorf("sweep: layer %s: %w", l.Name, err)
			}
		} else {
			best, err := sess.Search(l, mapper.Options{
				Objective: obj, Budget: req.Budget, Seed: req.Seed,
				Workers: req.Workers, Cache: cache,
			})
			if err != nil {
				return nil, fmt.Errorf("sweep: layer %s: %w", l.Name, err)
			}
			res, evals, stats = best.Result, best.Evaluations, best.Stats
		}
		resp.Layers = append(resp.Layers, layerOutcomeFrom(res, evals, stats))
		resp.Evaluations += evals
		resp.Pruned += stats.Pruned
		resp.DeltaEvals += stats.DeltaEvals
		resp.FullEvals += stats.FullEvals
		total.Accumulate(res)
	}
	resp.MACs = total.MACs
	resp.Cycles = total.Cycles
	resp.TotalPJ = total.TotalPJ
	resp.PJPerMAC = total.PJPerMAC()
	resp.MACsPerCycle = total.MACsPerCycle
	resp.Utilization = total.Utilization
	return resp, nil
}
