package sweep

import (
	"fmt"

	"photoloop/internal/albireo"
	"photoloop/internal/arch"
	"photoloop/internal/fidelity"
	"photoloop/internal/mapper"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/presets"
	"photoloop/internal/spec"
	"photoloop/internal/workload"
)

// EvalRequest is one architecture × network evaluation: the request body
// of `POST /v1/eval` and the engine behind `photoloop eval`. Exactly one
// of Arch/Albireo/Preset selects the architecture, and exactly one of
// Network/Inline selects the workload. With no Mapping, every layer is
// mapper-searched; with one, the fixed schedule is evaluated as-is.
//
// Searched evaluations of Albireo-backed architectures (an Albireo base
// or an albireo-backed preset) run through albireo.EvalNetwork — the
// canonical schedules seed each search and repeated layer shapes share
// one search — exactly as sweep and study points do, so a study row and
// the corresponding `photoloop eval` answer are bit-identical.
type EvalRequest struct {
	// Arch is a raw architecture spec document.
	Arch *spec.ArchSpec `json:"arch,omitempty"`
	// Albireo selects the paper's Albireo instantiation instead.
	Albireo *AlbireoBase `json:"albireo,omitempty"`
	// Preset selects a named architecture from the preset library
	// (presets.ByName) instead.
	Preset string `json:"preset,omitempty"`
	// Network names a zoo network; Inline embeds one.
	Network string            `json:"network,omitempty"`
	Inline  *workload.Network `json:"inline,omitempty"`
	// Layer restricts the evaluation to one named layer.
	Layer string `json:"layer,omitempty"`
	// Batch is the batch size (default 1).
	Batch int `json:"batch,omitempty"`
	// Objective is the mapper objective (default "energy").
	Objective string `json:"objective,omitempty"`
	// Budget, Seed and Workers tune the per-layer search (0 = mapper
	// defaults).
	Budget  int   `json:"budget,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	Workers int   `json:"workers,omitempty"`
	// Mapping evaluates this fixed schedule on every selected layer
	// instead of searching.
	Mapping *spec.MappingSpec `json:"mapping,omitempty"`
	// Fidelity, when set, additionally runs the analog fidelity rollup
	// (package fidelity) over each evaluated mapping. `{}` uses the
	// physics defaults; energy/delay/area are bit-identical either way.
	Fidelity *fidelity.Spec `json:"fidelity,omitempty"`
}

// EvalResponse is the evaluation result: per-layer outcomes plus the
// network totals, and the architecture's mapping-independent properties.
type EvalResponse struct {
	Arch             string         `json:"arch"`
	Network          string         `json:"network"`
	AreaUM2          float64        `json:"area_um2"`
	PeakMACsPerCycle int64          `json:"peak_macs_per_cycle"`
	Layers           []LayerOutcome `json:"layers"`
	// Totals across the evaluated layers.
	MACs         int64   `json:"macs"`
	Cycles       float64 `json:"cycles"`
	TotalPJ      float64 `json:"total_pj"`
	PJPerMAC     float64 `json:"pj_per_mac"`
	MACsPerCycle float64 `json:"macs_per_cycle"`
	Utilization  float64 `json:"utilization"`
	Evaluations  int     `json:"evaluations"`
	// EffectiveBits, SNRDB and AccuracyLossPct carry the MAC-weighted
	// analog fidelity rollup when the request set Fidelity.
	EffectiveBits   float64 `json:"effective_bits,omitempty"`
	SNRDB           float64 `json:"snr_db,omitempty"`
	AccuracyLossPct float64 `json:"accuracy_loss_pct,omitempty"`
	// Pruned, DeltaEvals and FullEvals sum the mapper's search statistics
	// across the evaluated layers (zero for fixed-mapping requests).
	Pruned     int `json:"pruned,omitempty"`
	DeltaEvals int `json:"delta_evals,omitempty"`
	FullEvals  int `json:"full_evals,omitempty"`
}

// resolveBase resolves the request's architecture. For Albireo-backed
// requests (an Albireo base or an albireo-backed preset) the returned
// config is non-nil, letting searched evaluations run the same
// albireo.EvalNetwork path the sweep engine uses.
func (req *EvalRequest) resolveBase() (*albireo.Config, *arch.Arch, error) {
	selectors := 0
	for _, set := range []bool{req.Arch != nil, req.Albireo != nil, req.Preset != ""} {
		if set {
			selectors++
		}
	}
	if selectors != 1 {
		return nil, nil, fmt.Errorf("sweep: eval request must set exactly one of arch, albireo or preset")
	}
	var cfg *albireo.Config
	switch {
	case req.Arch != nil:
		a, err := req.Arch.Build()
		return nil, a, err
	case req.Albireo != nil:
		c, err := req.Albireo.config()
		if err != nil {
			return nil, nil, err
		}
		cfg = &c
	default:
		p, err := presets.ByName(req.Preset)
		if err != nil {
			return nil, nil, fmt.Errorf("sweep: eval request: %w", err)
		}
		if c, ok := p.Albireo(); ok {
			cfg = &c
		} else {
			a, err := p.Build()
			return nil, a, err
		}
	}
	a, err := cfg.Build()
	return cfg, a, err
}

// Eval runs one evaluation request. An optional shared cache deduplicates
// searches across requests (the HTTP server passes its process-wide
// cache; pass nil for a one-shot evaluation).
func Eval(req *EvalRequest, cache *mapper.Cache) (*EvalResponse, error) {
	cfg, a, err := req.resolveBase()
	if err != nil {
		return nil, err
	}
	wl := Workload{Network: req.Network, Inline: req.Inline, Batch: req.Batch}
	net, netName, err := wl.resolve()
	if err != nil {
		return nil, err
	}
	layers := net.Layers
	if req.Layer != "" {
		layers = nil
		for i := range net.Layers {
			if net.Layers[i].Name == req.Layer {
				layers = append(layers, net.Layers[i])
			}
		}
		if len(layers) == 0 {
			return nil, fmt.Errorf("sweep: network %s has no layer %q", netName, req.Layer)
		}
	}
	objName := req.Objective
	if objName == "" {
		objName = "energy"
	}
	obj, err := mapper.ParseObjective(objName)
	if err != nil {
		return nil, err
	}

	resp := &EvalResponse{Arch: a.Name, Network: netName, PeakMACsPerCycle: a.PeakMACsPerCycle()}
	if area, err := a.Area(); err == nil {
		resp.AreaUM2 = area
	}

	// The fidelity rollup is a closed-form post-pass over each finished
	// mapping: it annotates the response's layer outcomes and MAC-weighted
	// totals without touching (possibly cached) evaluator results.
	var chain *fidelity.Chain
	if req.Fidelity != nil {
		if chain, err = fidelity.Compile(a, req.Fidelity); err != nil {
			return nil, err
		}
	}
	var fidMACs, fidBits, fidSNR, fidLoss float64
	annotate := func(lo *LayerOutcome, m *mapping.Mapping) {
		if chain == nil {
			return
		}
		rep := chain.Evaluate(m)
		lo.EffectiveBits = rep.EffectiveBits
		lo.SNRDB = rep.SNRDB
		lo.AccuracyLossPct = rep.AccuracyLossPct
		w := float64(lo.MACs)
		fidMACs += w
		fidBits += rep.EffectiveBits * w
		fidSNR += rep.SNRDB * w
		fidLoss += rep.AccuracyLossPct * w
	}
	finishFidelity := func() {
		if chain != nil && fidMACs > 0 {
			resp.EffectiveBits = fidBits / fidMACs
			resp.SNRDB = fidSNR / fidMACs
			resp.AccuracyLossPct = fidLoss / fidMACs
		}
	}

	if cfg != nil && req.Mapping == nil {
		// Albireo-backed search: run the exact network-evaluator path the
		// sweep engine uses (canonical seeds, shape-deduplicated
		// searches), so eval answers match sweep and study points
		// bit-for-bit.
		sub := workload.Network{Name: netName, Layers: layers}
		nres, err := albireo.EvalNetwork(*cfg, sub, albireo.NetOptions{
			Batch: req.Batch,
			Mapper: mapper.Options{
				Objective: obj, Budget: req.Budget, Seed: req.Seed,
				Workers: req.Workers, Cache: cache,
			},
		})
		if err != nil {
			return nil, err
		}
		total := model.Result{Layer: netName}
		for i := range nres.Layers {
			best := nres.Layers[i].Best
			resp.Layers = append(resp.Layers, layerOutcome(best))
			annotate(&resp.Layers[len(resp.Layers)-1], best.Mapping)
			resp.Evaluations += best.Evaluations
			resp.Pruned += best.Stats.Pruned
			resp.DeltaEvals += best.Stats.DeltaEvals
			resp.FullEvals += best.Stats.FullEvals
			total.Accumulate(best.Result)
		}
		resp.fillTotals(&total)
		finishFidelity()
		return resp, nil
	}

	var fixedMapping *mapping.Mapping
	var sess *mapper.Session
	if req.Mapping != nil {
		if fixedMapping, err = req.Mapping.Build(a); err != nil {
			return nil, err
		}
	} else {
		if sess, err = mapper.NewSession(a); err != nil {
			return nil, err
		}
	}

	total := model.Result{Layer: netName}
	for i := range layers {
		l := &layers[i]
		var res *model.Result
		var m *mapping.Mapping
		evals := 0
		var stats mapper.SearchStats
		if fixedMapping != nil {
			if res, err = model.Evaluate(a, l, fixedMapping, model.Options{}); err != nil {
				return nil, fmt.Errorf("sweep: layer %s: %w", l.Name, err)
			}
			m = fixedMapping
		} else {
			best, err := sess.Search(l, mapper.Options{
				Objective: obj, Budget: req.Budget, Seed: req.Seed,
				Workers: req.Workers, Cache: cache,
			})
			if err != nil {
				return nil, fmt.Errorf("sweep: layer %s: %w", l.Name, err)
			}
			res, evals, stats = best.Result, best.Evaluations, best.Stats
			m = best.Mapping
		}
		resp.Layers = append(resp.Layers, layerOutcomeFrom(res, evals, stats))
		annotate(&resp.Layers[len(resp.Layers)-1], m)
		resp.Evaluations += evals
		resp.Pruned += stats.Pruned
		resp.DeltaEvals += stats.DeltaEvals
		resp.FullEvals += stats.FullEvals
		total.Accumulate(res)
	}
	resp.fillTotals(&total)
	finishFidelity()
	return resp, nil
}

// fillTotals copies the accumulated whole-network metrics into the
// response.
func (resp *EvalResponse) fillTotals(total *model.Result) {
	resp.MACs = total.MACs
	resp.Cycles = total.Cycles
	resp.TotalPJ = total.TotalPJ
	resp.PJPerMAC = total.PJPerMAC()
	resp.MACsPerCycle = total.MACsPerCycle
	resp.Utilization = total.Utilization
}
