package sweep

import (
	"fmt"

	"photoloop/internal/mapper"
	"photoloop/internal/presets"
	"photoloop/internal/workload"
)

// Evaluator evaluates individual variant points of a Spec on demand,
// without expanding the axis grid: the caller supplies one value per
// declared axis and gets back the same Point a full Run of an equivalent
// grid would produce for that combination (same variant construction,
// same evaluation path, same shared mapper.Cache — bit-identical, which
// the explore package's equivalence tests pin).
//
// This is the hook adaptive design-space explorers build on. The declared
// Axes contribute only their Param names (and ordering); the supplied
// values need not appear in any Values list, so an explorer can walk
// ranges the declarative grid never enumerates. An Evaluator is safe for
// concurrent use.
type Evaluator struct {
	spec     Spec
	r        *runner
	networks []workload.Network
	netNames []string
	objs     []mapper.Objective
	objNames []string
}

// NewEvaluator validates the spec's base, workloads and objectives (its
// axes' Values lists may be empty — only the Param names matter) and
// prepares the shared evaluation state. Options.Workers and
// Options.Progress are ignored: the caller drives its own concurrency and
// accounting, point by point.
func NewEvaluator(sp Spec, opts Options) (*Evaluator, error) {
	if sp.Base.set() != 1 {
		return nil, fmt.Errorf("sweep: base must set exactly one of albireo, arch or preset")
	}
	for _, ax := range sp.Axes {
		if ax.Param == "" {
			return nil, fmt.Errorf("sweep: axis has no param")
		}
	}
	if len(sp.Workloads) == 0 {
		return nil, fmt.Errorf("sweep: spec has no workloads")
	}
	objectives := sp.Objectives
	if len(objectives) == 0 {
		objectives = []string{"energy"}
	}
	e := &Evaluator{
		spec:     sp,
		networks: make([]workload.Network, len(sp.Workloads)),
		netNames: make([]string, len(sp.Workloads)),
		objs:     make([]mapper.Objective, len(objectives)),
		objNames: objectives,
	}
	// The base kind gates fused workloads exactly as Run does (fusion
	// needs an albireo-backed variant evaluator).
	albireoBase := sp.Base.Albireo != nil
	if sp.Base.Preset != "" {
		p, err := presets.ByName(sp.Base.Preset)
		if err != nil {
			return nil, fmt.Errorf("sweep: base: %w", err)
		}
		_, albireoBase = p.Albireo()
	}
	var err error
	for i := range sp.Workloads {
		w := &sp.Workloads[i]
		if w.Fused && !albireoBase {
			return nil, fmt.Errorf("sweep: workload %d: fused evaluation needs an albireo-backed base", i)
		}
		e.networks[i], e.netNames[i], err = w.resolve()
		if err != nil {
			return nil, fmt.Errorf("sweep: workload %d: %w", i, err)
		}
	}
	for i, name := range objectives {
		if e.objs[i], err = mapper.ParseObjective(name); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	cache := opts.Cache
	if cache == nil {
		cache = mapper.NewCache()
	}
	e.r = &runner{
		spec: &e.spec, opts: &Options{}, cache: cache,
		states: map[*variant]*variantState{},
	}
	return e, nil
}

// Workloads returns the resolved workload names, in spec order.
func (e *Evaluator) Workloads() []string { return append([]string(nil), e.netNames...) }

// Objectives returns the resolved mapper objective names, in spec order
// (the default "energy" when the spec named none).
func (e *Evaluator) Objectives() []string { return append([]string(nil), e.objNames...) }

// Validate builds (and discards) the variant for one set of axis values —
// base resolution, axis application and architecture construction — so
// explorers can reject an invalid point or a mistyped axis param before
// spending any evaluation.
func (e *Evaluator) Validate(values []any) error {
	v, err := e.spec.variantWith(values)
	if err != nil {
		return err
	}
	_, err = v.build()
	return err
}

// Eval evaluates one point: the variant with the given axis values,
// against workload wi and objective oi (spec indices). index labels the
// returned Point (Point.Index); failures land in Point.Err, exactly as in
// a Run.
func (e *Evaluator) Eval(index int, values []any, wi, oi int) (*Point, error) {
	if wi < 0 || wi >= len(e.networks) {
		return nil, fmt.Errorf("sweep: workload index %d out of range", wi)
	}
	if oi < 0 || oi >= len(e.objs) {
		return nil, fmt.Errorf("sweep: objective index %d out of range", oi)
	}
	v, err := e.spec.variantWith(values)
	if err != nil {
		return nil, err
	}
	// Each call gets its own variant, so the state is caller-owned rather
	// than memoized in the runner's map (which would grow by one dead
	// entry per evaluation for the Evaluator's lifetime).
	st := &variantState{}
	st.init(v, e.spec.Fidelity)
	job := pointJob{
		index:    index,
		variant:  v,
		workload: &e.spec.Workloads[wi],
		network:  e.networks[wi],
		netName:  e.netNames[wi],
		objName:  e.objNames[oi],
		obj:      e.objs[oi],
		state:    st,
	}
	p, _ := e.r.evaluate(&job, nil, false)
	return &p, nil
}

// CacheStats reports the hit/miss counters of the evaluator's search
// cache (the one passed in Options.Cache, or its private one).
func (e *Evaluator) CacheStats() (hits, misses int64) { return e.r.cache.Stats() }
