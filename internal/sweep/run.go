package sweep

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"photoloop/internal/albireo"
	"photoloop/internal/arch"
	"photoloop/internal/fidelity"
	"photoloop/internal/mapper"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/workload"
)

// Options tunes a Run without changing what it computes.
type Options struct {
	// Workers is the point-level pool size (default GOMAXPROCS). Points
	// are independent, so the pool size never changes results.
	Workers int
	// Context cancels the run between points (in-flight points finish);
	// undispatched points carry the cancellation as their Err and Run
	// returns the context's error. Nil means never canceled. The HTTP
	// server passes the request context so abandoned sweeps stop burning
	// the pool.
	Context context.Context
	// Cache deduplicates identical (architecture, layer shape) searches
	// across points; nil gets a fresh per-run cache. Long-lived callers
	// (the HTTP server) share one cache across runs.
	Cache *mapper.Cache
	// Progress, when set, is called after each point completes with the
	// number done and the total. Calls are serialized.
	Progress func(done, total int)
	// OnPoint, when set, streams each point as it completes (completion
	// order, not index order). Calls are serialized; the final Result
	// still holds every point in index order.
	OnPoint func(*Point)
}

// Result is a completed sweep: every point of the cross product, in
// deterministic index order (variants × workloads × objectives, variant
// most significant).
type Result struct {
	Name   string  `json:"name,omitempty"`
	Points []Point `json:"points"`
	// CacheHits and CacheMisses count deduplicated versus computed layer
	// searches (see mapper.Cache).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Pruned, DeltaEvals and FullEvals roll the per-point search funnel up
	// across the whole sweep: candidates discarded by the admissible lower
	// bound, evaluations that reused shared-prefix state, and evaluations
	// computed from scratch.
	Pruned     int `json:"pruned,omitempty"`
	DeltaEvals int `json:"delta_evals,omitempty"`
	FullEvals  int `json:"full_evals,omitempty"`
}

// PrunedFraction is the sweep-wide fraction of drawn candidates the
// admissible lower bound discarded before a full evaluation (0 when the
// sweep scored nothing, e.g. fixed-mapping evaluations).
func (r *Result) PrunedFraction() float64 {
	scored := r.Pruned + r.DeltaEvals + r.FullEvals
	if scored == 0 {
		return 0
	}
	return float64(r.Pruned) / float64(scored)
}

// Point is one evaluated (variant, workload, objective) combination.
type Point struct {
	// Index is the point's position in cross-product order.
	Index int `json:"index"`
	// Variant is the human-readable axis assignment ("" with no axes).
	Variant string `json:"variant,omitempty"`
	// Params maps each axis param to this point's value.
	Params map[string]any `json:"params,omitempty"`
	// Network, Batch, Fused and Objective identify the evaluation.
	Network   string `json:"network"`
	Batch     int    `json:"batch"`
	Fused     bool   `json:"fused,omitempty"`
	Objective string `json:"objective"`
	// Arch is the variant architecture's name.
	Arch string `json:"arch,omitempty"`
	// AreaUM2 and PeakMACsPerCycle are mapping-independent variant
	// properties.
	AreaUM2          float64 `json:"area_um2,omitempty"`
	PeakMACsPerCycle int64   `json:"peak_macs_per_cycle,omitempty"`
	// Whole-network metrics (sums and derived rates across layers).
	MACs         int64   `json:"macs,omitempty"`
	Cycles       float64 `json:"cycles,omitempty"`
	TotalPJ      float64 `json:"total_pj,omitempty"`
	PJPerMAC     float64 `json:"pj_per_mac,omitempty"`
	MACsPerCycle float64 `json:"macs_per_cycle,omitempty"`
	Utilization  float64 `json:"utilization,omitempty"`
	// EffectiveBits, SNRDB and AccuracyLossPct carry the MAC-weighted
	// analog fidelity rollup of the point's best mappings (Spec.Fidelity);
	// all zero when fidelity modeling is off.
	EffectiveBits   float64 `json:"effective_bits,omitempty"`
	SNRDB           float64 `json:"snr_db,omitempty"`
	AccuracyLossPct float64 `json:"accuracy_loss_pct,omitempty"`
	// Evaluations sums the mapper's model evaluations across layers.
	Evaluations int `json:"evaluations,omitempty"`
	// Pruned, DeltaEvals and FullEvals sum the mapper's search statistics
	// across layers: candidates discarded by the admissible lower bound
	// without a full evaluation, full evaluations that reused
	// shared-prefix state, and evaluations computed from scratch.
	Pruned     int `json:"pruned,omitempty"`
	DeltaEvals int `json:"delta_evals,omitempty"`
	FullEvals  int `json:"full_evals,omitempty"`
	// Err records a failed point (the Run error names the first).
	Err string `json:"error,omitempty"`

	// Total is the accumulated whole-network result with the full energy
	// ledger — for programmatic consumers (the figure harnesses); omitted
	// from JSON.
	Total *model.Result `json:"-"`
	// Layers holds per-layer outcomes when Spec.IncludeLayers is set.
	Layers []LayerOutcome `json:"layers,omitempty"`
}

// LayerOutcome is one layer's best-mapping evaluation within a point.
type LayerOutcome struct {
	Layer        string  `json:"layer"`
	MACs         int64   `json:"macs"`
	TotalPJ      float64 `json:"total_pj"`
	PJPerMAC     float64 `json:"pj_per_mac"`
	Cycles       float64 `json:"cycles"`
	MACsPerCycle float64 `json:"macs_per_cycle"`
	Utilization  float64 `json:"utilization"`
	Evaluations  int     `json:"evaluations"`
	// EffectiveBits, SNRDB and AccuracyLossPct carry the layer's analog
	// fidelity rollup when the spec enables it.
	EffectiveBits   float64 `json:"effective_bits,omitempty"`
	SNRDB           float64 `json:"snr_db,omitempty"`
	AccuracyLossPct float64 `json:"accuracy_loss_pct,omitempty"`
	// Pruned, DeltaEvals and FullEvals break down how the search spent
	// its candidates (see mapper.SearchStats); all zero for fixed-mapping
	// evaluations.
	Pruned     int `json:"pruned,omitempty"`
	DeltaEvals int `json:"delta_evals,omitempty"`
	FullEvals  int `json:"full_evals,omitempty"`
}

// pointJob pairs a pending point with the state needed to evaluate it.
type pointJob struct {
	index    int
	variant  *variant
	workload *Workload
	network  workload.Network
	netName  string
	objName  string
	obj      mapper.Objective
	// state, when set, carries a caller-owned variant state and bypasses
	// the runner's per-variant memo map (Evaluator jobs build one variant
	// per call, so memoizing them would only leak entries).
	state *variantState
}

// Run expands and evaluates the sweep. The returned Result always holds
// one point per cross-product combination in index order; if any point
// failed, the first failure is returned as the error (its point, and any
// other failed points, carry Err).
func Run(sp Spec, opts Options) (*Result, error) {
	variants, err := sp.expand()
	if err != nil {
		return nil, err
	}
	if len(sp.Workloads) == 0 {
		return nil, fmt.Errorf("sweep: spec has no workloads")
	}
	objectives := sp.Objectives
	if len(objectives) == 0 {
		objectives = []string{"energy"}
	}

	// Resolve workloads and objectives once up front: spec errors should
	// fail the run before any evaluation starts.
	networks := make([]workload.Network, len(sp.Workloads))
	netNames := make([]string, len(sp.Workloads))
	for i := range sp.Workloads {
		w := &sp.Workloads[i]
		if w.Fused && variants[0].albireo == nil {
			return nil, fmt.Errorf("sweep: workload %d: fused evaluation needs an albireo-backed base", i)
		}
		networks[i], netNames[i], err = w.resolve()
		if err != nil {
			return nil, fmt.Errorf("sweep: workload %d: %w", i, err)
		}
	}
	objs := make([]mapper.Objective, len(objectives))
	for i, name := range objectives {
		if objs[i], err = mapper.ParseObjective(name); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}

	jobs := make([]pointJob, 0, len(variants)*len(sp.Workloads)*len(objectives))
	for _, v := range variants {
		for wi := range sp.Workloads {
			for oi, objName := range objectives {
				jobs = append(jobs, pointJob{
					index:    len(jobs),
					variant:  v,
					workload: &sp.Workloads[wi],
					network:  networks[wi],
					netName:  netNames[wi],
					objName:  objName,
					obj:      objs[oi],
				})
			}
		}
	}

	// The pool consumes chains of jobs. Without warm starts every job is
	// its own chain (full point-level parallelism, unchanged semantics);
	// with warm starts the points of one (workload, objective) across the
	// variant axis form a chain, processed in variant order so each point
	// inherits its neighbor's best mappings deterministically.
	var chains [][]int
	if sp.WarmStart {
		perWO := len(sp.Workloads) * len(objectives)
		chains = make([][]int, perWO)
		for i := range jobs {
			wo := i % perWO
			chains[wo] = append(chains[wo], i)
		}
	} else {
		chains = make([][]int, len(jobs))
		for i := range jobs {
			chains[i] = []int{i}
		}
	}

	cache := opts.Cache
	if cache == nil {
		cache = mapper.NewCache()
	}
	// Snapshot the counters so the result reports THIS run's dedupe, not
	// a shared cache's lifetime totals. (Concurrent runs on one cache
	// still see each other's traffic in the deltas — the numbers are
	// per-run, not per-key-set.)
	hits0, misses0 := cache.Stats()
	r := &runner{
		spec: &sp, opts: &opts, cache: cache, total: len(jobs),
		states: make(map[*variant]*variantState, len(variants)),
	}
	res := &Result{Name: sp.Name, Points: make([]Point, len(jobs))}

	workers := opts.Workers
	if workers <= 0 {
		// Each point's layer searches run their own worker pool; divide
		// the default point pool by it so a default-flag sweep keeps
		// total parallelism near GOMAXPROCS instead of multiplying the
		// two pools. (Pool sizes never change results.)
		perSearch := sp.SearchWorkers
		if perSearch <= 0 {
			perSearch = mapper.DefaultSearchWorkers()
		}
		workers = max(1, runtime.GOMAXPROCS(0)/perSearch)
	}
	if workers > len(chains) {
		workers = len(chains)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	chainCh := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chain := range chainCh {
				var warm warmTable
				for _, ji := range chain {
					job := &jobs[ji]
					if len(chain) > 1 && ctx.Err() != nil {
						// Mid-chain cancellation: successors of a chain
						// carry the cancellation like undispatched points.
						res.Points[job.index] = canceledPoint(job, ctx.Err())
						continue
					}
					res.Points[job.index], warm = r.evaluate(job, warm, sp.WarmStart)
					r.report(&res.Points[job.index])
				}
			}
		}()
	}
	canceled := false
dispatch:
	for i := range chains {
		select {
		case chainCh <- chains[i]:
		case <-ctx.Done():
			canceled = true
			break dispatch
		}
	}
	close(chainCh)
	wg.Wait()

	hits1, misses1 := cache.Stats()
	res.CacheHits, res.CacheMisses = hits1-hits0, misses1-misses0
	for i := range res.Points {
		res.Pruned += res.Points[i].Pruned
		res.DeltaEvals += res.Points[i].DeltaEvals
		res.FullEvals += res.Points[i].FullEvals
	}
	if canceled {
		for i := range jobs {
			if res.Points[jobs[i].index].Network == "" { // never dispatched
				res.Points[jobs[i].index] = canceledPoint(&jobs[i], ctx.Err())
			}
		}
		return res, fmt.Errorf("sweep: %w", ctx.Err())
	}
	for i := range res.Points {
		if res.Points[i].Err != "" {
			return res, fmt.Errorf("sweep: point %d (%s %s %s): %s",
				i, res.Points[i].Variant, res.Points[i].Network, res.Points[i].Objective, res.Points[i].Err)
		}
	}
	return res, nil
}

// canceledPoint fills a point that never ran because the run's context was
// canceled first.
func canceledPoint(job *pointJob, err error) Point {
	return Point{
		Index: job.index, Variant: job.variant.label,
		Params: job.variant.params, Network: job.netName,
		Batch: max(1, job.workload.Batch), Fused: job.workload.Fused,
		Objective: job.objName, Err: err.Error(),
	}
}

// runner carries the shared state of one Run.
type runner struct {
	spec  *Spec
	opts  *Options
	cache *mapper.Cache

	mu    sync.Mutex
	done  int
	total int

	// Per-variant built architecture and (for raw-spec bases) the shared
	// mapper session. Albireo bases build sessions inside the network
	// evaluator; the cache dedupes across them by architecture
	// fingerprint.
	stateMu sync.Mutex
	states  map[*variant]*variantState
}

// variantState memoizes what every point of one variant shares.
type variantState struct {
	once sync.Once
	a    *arch.Arch
	sess *mapper.Session // raw-spec bases only
	fid  *fidelity.Chain // nil unless Spec.Fidelity is set
	err  error
}

// init builds (once) the variant's architecture and, for raw-spec bases,
// its mapper session. A non-nil fspec additionally compiles the variant's
// analog fidelity chain.
func (st *variantState) init(v *variant, fspec *fidelity.Spec) {
	st.once.Do(func() {
		st.a, st.err = v.build()
		if st.err == nil && v.albireo == nil {
			st.sess, st.err = mapper.NewSession(st.a)
		}
		if st.err == nil && fspec != nil {
			st.fid, st.err = fidelity.Compile(st.a, fspec)
		}
	})
}

// state builds (once) the variant's shared evaluation state.
func (r *runner) state(v *variant) *variantState {
	r.stateMu.Lock()
	st, ok := r.states[v]
	if !ok {
		st = &variantState{}
		r.states[v] = st
	}
	r.stateMu.Unlock()
	st.init(v, r.spec.Fidelity)
	return st
}

// report serializes the progress and streaming callbacks.
func (r *runner) report(p *Point) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done++
	if r.opts.OnPoint != nil {
		r.opts.OnPoint(p)
	}
	if r.opts.Progress != nil {
		r.opts.Progress(r.done, r.total)
	}
}

// warmTable carries one point's best mappings, keyed by layer shape
// fingerprint, to the next point of a warm-start chain.
type warmTable map[uint64][]*mapping.Mapping

// mapperOptions assembles the per-layer search options for one objective.
func (r *runner) mapperOptions(obj mapper.Objective) mapper.Options {
	return mapper.Options{
		Objective: obj,
		Budget:    r.spec.Budget,
		Seed:      r.spec.Seed,
		Workers:   r.spec.SearchWorkers,
		Cache:     r.cache,
	}
}

// evaluate computes one point; failures land in Point.Err. warm supplies
// the previous chained point's best mappings; when collect is set the
// point's own bests are returned for its successor.
func (r *runner) evaluate(job *pointJob, warm warmTable, collect bool) (Point, warmTable) {
	p := Point{
		Index:     job.index,
		Variant:   job.variant.label,
		Params:    job.variant.params,
		Network:   job.netName,
		Batch:     max(1, job.workload.Batch),
		Fused:     job.workload.Fused,
		Objective: job.objName,
	}
	st := job.state
	if st == nil {
		st = r.state(job.variant)
	}
	if st.err != nil {
		p.Err = st.err.Error()
		return p, nil
	}
	a := st.a
	p.Arch = a.Name
	p.PeakMACsPerCycle = a.PeakMACsPerCycle()
	if area, err := a.Area(); err == nil {
		p.AreaUM2 = area
	}

	var next warmTable
	if collect {
		next = make(warmTable)
	}
	addStats := func(st mapper.SearchStats) {
		p.Pruned += st.Pruned
		p.DeltaEvals += st.DeltaEvals
		p.FullEvals += st.FullEvals
	}
	// annotate attaches the analog fidelity rollup to a layer outcome and
	// feeds the MAC-weighted point aggregate. Cached mapper results are
	// shared across points, so fidelity lands on the point-owned outcome
	// and total — never on best.Result.
	var fidMACs, fidBits, fidSNR, fidLoss float64
	annotate := func(lo *LayerOutcome, m *mapping.Mapping) {
		if st.fid == nil {
			return
		}
		rep := st.fid.Evaluate(m)
		lo.EffectiveBits = rep.EffectiveBits
		lo.SNRDB = rep.SNRDB
		lo.AccuracyLossPct = rep.AccuracyLossPct
		w := float64(lo.MACs)
		fidMACs += w
		fidBits += rep.EffectiveBits * w
		fidSNR += rep.SNRDB * w
		fidLoss += rep.AccuracyLossPct * w
	}
	var total *model.Result
	var layers []LayerOutcome
	if job.variant.albireo != nil {
		nres, err := albireo.EvalNetwork(*job.variant.albireo, job.network, albireo.NetOptions{
			Batch:      job.workload.Batch,
			Fused:      job.workload.Fused,
			Mapper:     r.mapperOptions(job.obj),
			WarmStarts: warm,
		})
		if err != nil {
			p.Err = err.Error()
			return p, nil
		}
		total = &nres.Total
		for i := range nres.Layers {
			le := &nres.Layers[i]
			layers = append(layers, layerOutcome(le.Best))
			annotate(&layers[len(layers)-1], le.Best.Mapping)
			p.Evaluations += le.Best.Evaluations
			addStats(le.Best.Stats)
			if collect {
				fp := le.Layer.ShapeFingerprint()
				if next[fp] == nil {
					next[fp] = []*mapping.Mapping{le.Best.Mapping}
				}
			}
		}
	} else {
		sess := st.sess
		total = &model.Result{Layer: job.netName}
		for i := range job.network.Layers {
			layer := &job.network.Layers[i]
			mopts := r.mapperOptions(job.obj)
			mopts.WarmStarts = warm[layer.ShapeFingerprint()]
			best, err := sess.Search(layer, mopts)
			if err != nil {
				p.Err = fmt.Sprintf("layer %s: %v", layer.Name, err)
				return p, nil
			}
			total.Accumulate(best.Result)
			layers = append(layers, layerOutcome(best))
			annotate(&layers[len(layers)-1], best.Mapping)
			p.Evaluations += best.Evaluations
			addStats(best.Stats)
			if collect {
				fp := layer.ShapeFingerprint()
				if next[fp] == nil {
					next[fp] = []*mapping.Mapping{best.Mapping}
				}
			}
		}
	}

	if st.fid != nil && fidMACs > 0 {
		total.EffectiveBits = fidBits / fidMACs
		total.SNRDB = fidSNR / fidMACs
		total.AccuracyLossPct = fidLoss / fidMACs
	}
	p.Total = total
	p.MACs = total.MACs
	p.Cycles = total.Cycles
	p.TotalPJ = total.TotalPJ
	p.PJPerMAC = total.PJPerMAC()
	p.MACsPerCycle = total.MACsPerCycle
	p.Utilization = total.Utilization
	p.EffectiveBits = total.EffectiveBits
	p.SNRDB = total.SNRDB
	p.AccuracyLossPct = total.AccuracyLossPct
	if r.spec.IncludeLayers {
		p.Layers = layers
	}
	return p, next
}

func layerOutcome(best *mapper.Best) LayerOutcome {
	return layerOutcomeFrom(best.Result, best.Evaluations, best.Stats)
}

func layerOutcomeFrom(res *model.Result, evals int, stats mapper.SearchStats) LayerOutcome {
	return LayerOutcome{
		Layer:        res.Layer,
		MACs:         res.MACs,
		TotalPJ:      res.TotalPJ,
		PJPerMAC:     res.PJPerMAC(),
		Cycles:       res.Cycles,
		MACsPerCycle: res.MACsPerCycle,
		Utilization:  res.Utilization,
		Evaluations:  evals,
		Pruned:       stats.Pruned,
		DeltaEvals:   stats.DeltaEvals,
		FullEvals:    stats.FullEvals,
	}
}

// WriteJSON writes the result as an indented JSON document.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CSVHeader returns the column names WriteCSV emits: fixed identity and
// metric columns, with one column per axis param (sorted) in between.
func (r *Result) CSVHeader() []string {
	cols := []string{"index", "variant"}
	cols = append(cols, r.paramColumns()...)
	return append(cols,
		"network", "batch", "fused", "objective", "arch",
		"area_mm2", "peak_macs_per_cycle", "macs", "cycles",
		"total_pj", "pj_per_mac", "macs_per_cycle", "utilization",
		"effective_bits", "snr_db", "accuracy_loss_pct",
		"evaluations", "error")
}

func (r *Result) paramColumns() []string {
	seen := map[string]bool{}
	var cols []string
	for i := range r.Points {
		for k := range r.Points[i].Params {
			if !seen[k] {
				seen[k] = true
				cols = append(cols, k)
			}
		}
	}
	sort.Strings(cols)
	return cols
}

// fidelityCells formats the three fidelity columns, empty when fidelity
// modeling was off (all-zero metrics never occur on a real rollup — a
// perfect chain still reports its reference SNR).
func fidelityCells(bits, snr, loss float64) []string {
	if bits == 0 && snr == 0 && loss == 0 {
		return []string{"", "", ""}
	}
	return []string{
		fmt.Sprintf("%.4f", bits),
		fmt.Sprintf("%.4f", snr),
		fmt.Sprintf("%.4f", loss),
	}
}

// WriteCSV writes the result as CSV, one row per point.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.CSVHeader()); err != nil {
		return err
	}
	params := r.paramColumns()
	for i := range r.Points {
		p := &r.Points[i]
		row := []string{strconv.Itoa(p.Index), p.Variant}
		for _, k := range params {
			if v, ok := p.Params[k]; ok {
				row = append(row, fmt.Sprint(v))
			} else {
				row = append(row, "")
			}
		}
		row = append(row,
			p.Network, strconv.Itoa(p.Batch), strconv.FormatBool(p.Fused),
			p.Objective, p.Arch,
			fmt.Sprintf("%.4f", p.AreaUM2/1e6), strconv.FormatInt(p.PeakMACsPerCycle, 10),
			strconv.FormatInt(p.MACs, 10), fmt.Sprintf("%.1f", p.Cycles),
			fmt.Sprintf("%.4f", p.TotalPJ), fmt.Sprintf("%.6f", p.PJPerMAC),
			fmt.Sprintf("%.3f", p.MACsPerCycle), fmt.Sprintf("%.4f", p.Utilization))
		row = append(row, fidelityCells(p.EffectiveBits, p.SNRDB, p.AccuracyLossPct)...)
		row = append(row, strconv.Itoa(p.Evaluations), p.Err)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
