package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"photoloop/internal/presets"
	"photoloop/internal/workload"
)

// studySpecSmall is the deterministic fixture the study tests share:
// pinned seed and search workers, tiny budget, two presets spanning both
// preset kinds, one workload, two objectives.
func studySpecSmall() StudySpec {
	return StudySpec{
		Name:          "test-study",
		Presets:       []string{"albireo", "electrical-baseline"},
		Workloads:     []string{"alexnet"},
		Objectives:    []string{"energy", "delay"},
		Budget:        60,
		Seed:          1,
		SearchWorkers: 1,
	}
}

// TestStudyMatchesEval is the study's equivalence anchor: every study row
// must be bit-identical to evaluating the same (preset, workload,
// objective) individually through Eval — the engine behind
// `photoloop eval -preset`.
func TestStudyMatchesEval(t *testing.T) {
	sp := studySpecSmall()
	res, err := RunStudy(sp, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 presets x 1 workload x 2 objectives)", len(res.Rows))
	}
	for i := range res.Rows {
		row := &res.Rows[i]
		resp, err := Eval(&EvalRequest{
			Preset: row.Preset, Network: row.Network, Batch: row.Batch,
			Objective: row.Objective, Budget: sp.Budget, Seed: sp.Seed,
			Workers: sp.SearchWorkers,
		}, nil)
		if err != nil {
			t.Fatalf("eval %s/%s/%s: %v", row.Preset, row.Network, row.Objective, err)
		}
		if row.TotalPJ != resp.TotalPJ || row.Cycles != resp.Cycles ||
			row.MACs != resp.MACs || row.Utilization != resp.Utilization ||
			row.PJPerMAC != resp.PJPerMAC || row.MACsPerCycle != resp.MACsPerCycle {
			t.Errorf("%s/%s/%s: study row (%.9g pJ, %.9g cyc) != eval (%.9g pJ, %.9g cyc)",
				row.Preset, row.Network, row.Objective,
				row.TotalPJ, row.Cycles, resp.TotalPJ, resp.Cycles)
		}
		if row.Arch != resp.Arch || row.AreaUM2 != resp.AreaUM2 ||
			row.PeakMACsPerCycle != resp.PeakMACsPerCycle {
			t.Errorf("%s: architecture metadata differs: %q/%q", row.Preset, row.Arch, resp.Arch)
		}
	}
}

// TestStudyRanking pins the grouping and rank invariants: rows arrive in
// (workload, objective) group order, ranks are 1..n per group, and scores
// never decrease within a group.
func TestStudyRanking(t *testing.T) {
	res, err := RunStudy(studySpecSmall(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantGroups := []string{"alexnet/energy", "alexnet/delay"}
	gi, rank := 0, 0
	for i := range res.Rows {
		row := &res.Rows[i]
		key := row.Network + "/" + row.Objective
		if key != wantGroups[gi] {
			gi++
			rank = 0
			if gi >= len(wantGroups) || key != wantGroups[gi] {
				t.Fatalf("row %d: unexpected group %s", i, key)
			}
		}
		rank++
		if row.Rank != rank {
			t.Errorf("row %d (%s): rank = %d, want %d", i, row.Preset, row.Rank, rank)
		}
		if rank > 1 && res.Rows[i-1].Score > row.Score {
			t.Errorf("row %d: scores not ascending within group: %.9g > %.9g",
				i, res.Rows[i-1].Score, row.Score)
		}
		switch row.Objective {
		case "energy":
			if row.Score != row.TotalPJ {
				t.Errorf("energy score %.9g != total pJ %.9g", row.Score, row.TotalPJ)
			}
		case "delay":
			if row.Score != row.Cycles {
				t.Errorf("delay score %.9g != cycles %.9g", row.Score, row.Cycles)
			}
		}
	}
}

// TestStudyAllExpansion checks that "all" (and empty) selections expand
// to the full preset library and zoo.
func TestStudyAllExpansion(t *testing.T) {
	sp := StudySpec{Presets: []string{"all"}}
	names, err := sp.resolvePresets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(presets.Names()) {
		t.Errorf("presets all -> %d, want %d", len(names), len(presets.Names()))
	}
	wls, err := sp.resolveWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(wls) != len(workload.ZooEntries()) {
		t.Errorf("workloads empty -> %d, want %d", len(wls), len(workload.ZooEntries()))
	}
	if _, err := (&StudySpec{Presets: []string{"nope"}}).resolvePresets(); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := (&StudySpec{Workloads: []string{"nope"}}).resolveWorkloads(); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestStudyGoldenMarkdown pins the rendered markdown byte-for-byte: the
// study is deterministic for a fixed (Seed, SearchWorkers) pair, and this
// is the regression anchor for both the numbers and the format. Run with
// UPDATE_STUDY_GOLDEN=1 to regenerate after an intentional change.
func TestStudyGoldenMarkdown(t *testing.T) {
	res, err := RunStudy(studySpecSmall(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "study_golden.md")
	if os.Getenv("UPDATE_STUDY_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_STUDY_GOLDEN=1 to create it)", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("study markdown drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestPresetBaseSweep covers preset bases in plain sweeps: an
// albireo-backed preset accepts Albireo axes, the electrical preset
// evaluates but rejects axes.
func TestPresetBaseSweep(t *testing.T) {
	res, err := Run(Spec{
		Base:          Base{Preset: "albireo-wdm-wide"},
		Axes:          []Axis{{Param: "clusters", Values: []any{4, 8}}},
		Workloads:     []Workload{{Inline: tinyNet()}},
		Budget:        40,
		Seed:          1,
		SearchWorkers: 1,
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].TotalPJ <= 0 {
		t.Fatalf("wdm-wide sweep: %d points, first %.4g pJ", len(res.Points), res.Points[0].TotalPJ)
	}

	res, err = Run(Spec{
		Base:          Base{Preset: "electrical-baseline"},
		Workloads:     []Workload{{Inline: tinyNet()}},
		Budget:        40,
		Seed:          1,
		SearchWorkers: 1,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].TotalPJ <= 0 {
		t.Fatalf("electrical sweep: %+v", res.Points)
	}

	_, err = Run(Spec{
		Base:      Base{Preset: "electrical-baseline"},
		Axes:      []Axis{{Param: "clusters", Values: []any{4}}},
		Workloads: []Workload{{Inline: tinyNet()}},
	}, Options{})
	if err == nil || !strings.Contains(err.Error(), "accepts no axes") {
		t.Errorf("axes on the electrical preset: err = %v, want 'accepts no axes'", err)
	}

	_, err = Run(Spec{
		Base:      Base{Preset: "albireo", Albireo: &AlbireoBase{}},
		Workloads: []Workload{{Inline: tinyNet()}},
	}, Options{})
	if err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Errorf("double base: err = %v, want 'exactly one'", err)
	}
}
