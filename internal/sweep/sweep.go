// Package sweep is the batched design-space-exploration front end of the
// modeling framework: a declarative Spec names a base architecture (an
// Albireo configuration or a raw architecture spec), a grid of axes
// mutating it, a set of workloads, and mapper objectives; Run expands the
// cross product into points and evaluates them on a worker pool of mapper
// sessions, deduplicating identical (architecture, layer shape) searches
// through a fingerprint-keyed result cache (mapper.Cache).
//
// The paper's figures 4 and 5 are sweeps (internal/exp builds its grids
// with this package), `photoloop sweep` runs a Spec from JSON, and
// `photoloop serve` exposes the same engine over HTTP — one code path from
// figure reproduction to serving.
package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"photoloop/internal/albireo"
	"photoloop/internal/arch"
	"photoloop/internal/fidelity"
	"photoloop/internal/presets"
	"photoloop/internal/spec"
	"photoloop/internal/workload"
)

// Spec declares a sweep: base × axes × workloads × objectives.
type Spec struct {
	// Name labels the sweep in outputs.
	Name string `json:"name,omitempty"`
	// Base is the architecture every variant starts from.
	Base Base `json:"base"`
	// Axes is the variant grid; the cross product of all axis values is
	// swept, first axis most significant (slowest varying).
	Axes []Axis `json:"axes,omitempty"`
	// Workloads are evaluated for every variant.
	Workloads []Workload `json:"workloads"`
	// Objectives are mapper objectives ("energy", "delay", "edp");
	// default is energy only.
	Objectives []string `json:"objectives,omitempty"`
	// Budget is the mapper evaluation budget per layer (0 = mapper
	// default).
	Budget int `json:"budget,omitempty"`
	// Seed fixes the mapper's randomness (0 = mapper default).
	Seed int64 `json:"seed,omitempty"`
	// SearchWorkers caps the per-layer search parallelism (0 = mapper
	// default). Results are deterministic for a fixed (Seed,
	// SearchWorkers) pair.
	SearchWorkers int `json:"search_workers,omitempty"`
	// Fidelity enables the analog error model: every point's best
	// mappings are rolled up through the compiled fidelity chain
	// (fidelity.Compile) and the point carries MAC-weighted effective
	// bits, SNR and estimated accuracy degradation. A closed-form
	// post-pass — energy/delay/area results are bit-identical with it on
	// or off.
	Fidelity *fidelity.Spec `json:"fidelity,omitempty"`
	// IncludeLayers adds per-layer outcomes to every point (larger
	// output).
	IncludeLayers bool `json:"include_layers,omitempty"`
	// WarmStart threads incumbent mappings across the grid: points
	// sharing a (workload, objective) run as a chain in variant order,
	// each seeding its layer searches with the previous point's best
	// mappings for the same layer shape (see mapper.Options.WarmStarts).
	// With a good neighbor the admissible lower bound prunes most
	// candidates from the first draw. Results remain fully deterministic
	// but differ from (usually match or improve on) the cold sweep's,
	// and chained points serialize — best for grids whose axes change the
	// architecture gradually, counterproductive for grids dominated by
	// repeated identical searches (those dedupe through the cache
	// instead). Off by default; the fig4/fig5 presets leave it off to
	// stay bit-identical to the paper harness.
	WarmStart bool `json:"warm_start,omitempty"`
}

// Base selects the architecture a sweep starts from: exactly one of
// Albireo, Arch or Preset must be set.
type Base struct {
	// Albireo starts from the paper's Albireo instantiation.
	Albireo *AlbireoBase `json:"albireo,omitempty"`
	// Arch starts from a raw architecture spec document.
	Arch *spec.ArchSpec `json:"arch,omitempty"`
	// Preset starts from a named architecture of the preset library
	// (presets.ByName). Albireo-backed presets behave like Albireo bases
	// (Albireo axes, fused workloads); the electrical preset accepts no
	// axes.
	Preset string `json:"preset,omitempty"`
}

// set counts how many base selectors are populated.
func (b *Base) set() int {
	n := 0
	if b.Albireo != nil {
		n++
	}
	if b.Arch != nil {
		n++
	}
	if b.Preset != "" {
		n++
	}
	return n
}

// AlbireoBase parameterizes the Albireo starting point.
type AlbireoBase struct {
	// Scaling is the technology projection ("conservative", "moderate",
	// "aggressive"); default conservative.
	Scaling string `json:"scaling,omitempty"`
}

// config resolves the base into an Albireo configuration — the one
// construction both eval requests and sweep variants share.
func (b *AlbireoBase) config() (albireo.Config, error) {
	cfg := albireo.Default(albireo.Conservative)
	if b.Scaling != "" {
		sc, err := albireo.ParseScaling(b.Scaling)
		if err != nil {
			return albireo.Config{}, fmt.Errorf("sweep: base: %w", err)
		}
		cfg.Scaling = sc
	}
	return cfg, nil
}

// Axis is one sweep dimension: a parameter name and the values it takes.
//
// Albireo bases accept "scaling" (string), "weight_reuse" and
// "laser_from_budget" (bool), "clusters", "pixel_lanes", "output_lanes",
// "or_lanes", "glb_mib", "word_bits" (int), and
// "dram_bw_words_per_cycle", "weight_reuse_laser_factor" (float).
//
// Raw-spec bases accept "clock_ghz" (float) and component parameter
// overrides spelled "component.<name>.<param>" (float), e.g.
// "component.ADC.walden_fj_per_step".
type Axis struct {
	Param  string `json:"param"`
	Values []any  `json:"values"`
}

// Workload is one network evaluated per variant.
type Workload struct {
	// Network names a zoo network ("vgg16", "alexnet", "resnet18").
	Network string `json:"network,omitempty"`
	// Inline embeds a network document instead of naming one.
	Inline *workload.Network `json:"inline,omitempty"`
	// Batch is the batch size (default 1).
	Batch int `json:"batch,omitempty"`
	// Fused keeps activations on chip between layers (Albireo bases
	// only).
	Fused bool `json:"fused,omitempty"`
}

// resolve returns the workload's network at its batch size and a label.
func (w *Workload) resolve() (workload.Network, string, error) {
	switch {
	case w.Network != "" && w.Inline != nil:
		return workload.Network{}, "", fmt.Errorf("sweep: workload sets both network %q and an inline network", w.Network)
	case w.Network != "":
		n, err := workload.ByName(w.Network, max(1, w.Batch))
		if err != nil {
			return workload.Network{}, "", fmt.Errorf("sweep: %w", err)
		}
		return n, w.Network, nil
	case w.Inline != nil:
		n := w.Inline.WithBatch(max(1, w.Batch))
		if err := n.Validate(); err != nil {
			return workload.Network{}, "", fmt.Errorf("sweep: inline network: %w", err)
		}
		return n, n.Name, nil
	default:
		return workload.Network{}, "", fmt.Errorf("sweep: workload names no network")
	}
}

// variant is one expanded grid point of the axes: a fully-applied base
// plus the axis assignments that produced it.
type variant struct {
	label   string
	params  map[string]any
	albireo *albireo.Config // Albireo bases and albireo-backed presets
	arch    *spec.ArchSpec  // raw-spec bases (deep copy with overrides)
	preset  *presets.Preset // non-albireo presets (the electrical baseline)
}

// build constructs the variant's architecture (the unfused one, for
// Albireo bases — fusion variants are built inside the network evaluator).
func (v *variant) build() (*arch.Arch, error) {
	if v.albireo != nil {
		return v.albireo.Build()
	}
	if v.preset != nil {
		return v.preset.Build()
	}
	return v.arch.Build()
}

// expand walks the axes' cross product, first axis most significant, and
// returns one variant per combination (a single variant when Axes is
// empty).
func (s *Spec) expand() ([]*variant, error) {
	if s.Base.set() != 1 {
		return nil, fmt.Errorf("sweep: base must set exactly one of albireo, arch or preset")
	}
	total := 1
	for _, ax := range s.Axes {
		if ax.Param == "" {
			return nil, fmt.Errorf("sweep: axis has no param")
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", ax.Param)
		}
		if total > maxVariants/len(ax.Values) {
			return nil, fmt.Errorf("sweep: axis grid exceeds %d variants", maxVariants)
		}
		total *= len(ax.Values)
	}
	choice := make([]int, len(s.Axes))
	out := make([]*variant, 0, total)
	for {
		v, err := s.variantAt(choice)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		i := len(choice) - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < len(s.Axes[i].Values) {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			return out, nil
		}
	}
}

// maxVariants bounds a sweep's grid (a typo guard, not a capability
// limit — fig-5-scale explorations are tens of variants).
const maxVariants = 100000

// variantAt materializes the variant for one choice vector into the
// axes' value grids.
func (s *Spec) variantAt(choice []int) (*variant, error) {
	values := make([]any, len(choice))
	for i := range choice {
		values[i] = s.Axes[i].Values[choice[i]]
	}
	return s.variantWith(values)
}

// variantWith materializes the variant for one explicit value per axis.
// The values need not appear in the axes' Values lists — on-demand
// evaluators (sweep.Evaluator, the explore package) synthesize points the
// declared grid never enumerates.
func (s *Spec) variantWith(values []any) (*variant, error) {
	if len(values) != len(s.Axes) {
		return nil, fmt.Errorf("sweep: got %d axis values for %d axes", len(values), len(s.Axes))
	}
	v := &variant{params: make(map[string]any, len(s.Axes))}
	var labels []string
	switch {
	case s.Base.Albireo != nil:
		cfg, err := s.Base.Albireo.config()
		if err != nil {
			return nil, err
		}
		v.albireo = &cfg
	case s.Base.Preset != "":
		p, err := presets.ByName(s.Base.Preset)
		if err != nil {
			return nil, fmt.Errorf("sweep: base: %w", err)
		}
		if cfg, ok := p.Albireo(); ok {
			v.albireo = &cfg
		} else {
			v.preset = p
		}
	default:
		cp, err := copyArchSpec(s.Base.Arch)
		if err != nil {
			return nil, err
		}
		v.arch = cp
	}
	for i, ax := range s.Axes {
		val, err := v.apply(ax.Param, values[i])
		if err != nil {
			return nil, err
		}
		v.params[ax.Param] = val
		labels = append(labels, fmt.Sprintf("%s=%v", ax.Param, val))
	}
	v.label = strings.Join(labels, " ")
	return v, nil
}

// apply sets one axis parameter on the variant and returns the canonical
// (coerced) value.
func (v *variant) apply(param string, raw any) (any, error) {
	if v.albireo != nil {
		return v.applyAlbireo(param, raw)
	}
	if v.preset != nil {
		return nil, fmt.Errorf("sweep: axis %q: preset %q is not albireo-backed and accepts no axes", param, v.preset.Name)
	}
	return v.applyArch(param, raw)
}

func (v *variant) applyAlbireo(param string, raw any) (any, error) {
	c := v.albireo
	switch param {
	case "scaling":
		name, ok := raw.(string)
		if !ok {
			return nil, axisTypeErr(param, raw, "string")
		}
		sc, err := albireo.ParseScaling(name)
		if err != nil {
			return nil, fmt.Errorf("sweep: axis %q: %w", param, err)
		}
		c.Scaling = sc
		return name, nil
	case "weight_reuse", "laser_from_budget":
		b, ok := raw.(bool)
		if !ok {
			return nil, axisTypeErr(param, raw, "bool")
		}
		if param == "weight_reuse" {
			c.WeightReuse = b
		} else {
			c.LaserFromBudget = b
		}
		return b, nil
	case "clusters", "pixel_lanes", "output_lanes", "or_lanes", "glb_mib", "word_bits":
		n, ok := asInt(raw)
		if !ok {
			return nil, axisTypeErr(param, raw, "int")
		}
		switch param {
		case "clusters":
			c.Clusters = n
		case "pixel_lanes":
			c.PixelLanes = n
		case "output_lanes":
			c.OutputLanes = n
		case "or_lanes":
			c.ORLanes = n
		case "glb_mib":
			c.GLBMiB = n
		case "word_bits":
			c.WordBits = n
		}
		return n, nil
	case "dram_bw_words_per_cycle", "weight_reuse_laser_factor":
		f, ok := asFloat(raw)
		if !ok {
			return nil, axisTypeErr(param, raw, "number")
		}
		if param == "dram_bw_words_per_cycle" {
			c.DRAMBWWordsPerCycle = f
		} else {
			c.WeightReuseLaserFactor = f
		}
		return f, nil
	}
	return nil, fmt.Errorf("sweep: unknown albireo axis param %q", param)
}

func (v *variant) applyArch(param string, raw any) (any, error) {
	if param == "clock_ghz" {
		f, ok := asFloat(raw)
		if !ok {
			return nil, axisTypeErr(param, raw, "number")
		}
		v.arch.ClockGHz = f
		return f, nil
	}
	if rest, ok := strings.CutPrefix(param, "component."); ok {
		name, key, ok := strings.Cut(rest, ".")
		if !ok {
			return nil, fmt.Errorf("sweep: axis param %q: want component.<name>.<param>", param)
		}
		f, okF := asFloat(raw)
		if !okF {
			return nil, axisTypeErr(param, raw, "number")
		}
		for i := range v.arch.Components {
			if v.arch.Components[i].Name != name {
				continue
			}
			// v.arch is this variant's own deep copy (copyArchSpec), so
			// writing in place cannot alias the base document.
			if v.arch.Components[i].Params == nil {
				v.arch.Components[i].Params = map[string]float64{}
			}
			v.arch.Components[i].Params[key] = f
			return f, nil
		}
		return nil, fmt.Errorf("sweep: axis %q: spec has no component %q", param, name)
	}
	return nil, fmt.Errorf("sweep: unknown arch axis param %q", param)
}

func axisTypeErr(param string, raw any, want string) error {
	return fmt.Errorf("sweep: axis %q: value %v (%T) is not a %s", param, raw, raw, want)
}

// asInt accepts Go ints and the float64s JSON decoding produces, rejecting
// non-integral floats.
func asInt(raw any) (int, bool) {
	switch n := raw.(type) {
	case int:
		return n, true
	case int64:
		return int(n), true
	case float64:
		if n != math.Trunc(n) || math.IsInf(n, 0) {
			return 0, false
		}
		return int(n), true
	case json.Number:
		i, err := n.Int64()
		if err != nil {
			return 0, false
		}
		return int(i), true
	}
	return 0, false
}

func asFloat(raw any) (float64, bool) {
	switch n := raw.(type) {
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case float64:
		return n, true
	case json.Number:
		f, err := n.Float64()
		if err != nil {
			return 0, false
		}
		return f, true
	}
	return 0, false
}

// copyArchSpec deep-copies a raw architecture spec through its JSON form,
// so per-variant overrides never alias the caller's document.
func copyArchSpec(s *spec.ArchSpec) (*spec.ArchSpec, error) {
	buf, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("sweep: copying arch spec: %w", err)
	}
	var out spec.ArchSpec
	if err := json.Unmarshal(buf, &out); err != nil {
		return nil, fmt.Errorf("sweep: copying arch spec: %w", err)
	}
	return &out, nil
}
