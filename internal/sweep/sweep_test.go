package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"photoloop/internal/albireo"
	"photoloop/internal/mapper"
	"photoloop/internal/spec"
	"photoloop/internal/workload"
)

// tinyNet is a small two-layer network that keeps searches fast while
// still exercising convolution and FC shapes.
func tinyNet() *workload.Network {
	return &workload.Network{
		Name: "tiny",
		Layers: []workload.Layer{
			workload.NewConv("conv1", 1, 6, 8, 8, 8, 3, 3, 1, 1),
			workload.NewFC("fc", 1, 12, 32),
		},
	}
}

// templateBase parses the spec template into a raw-spec sweep base.
func templateBase(t *testing.T) Base {
	t.Helper()
	var as spec.ArchSpec
	if err := json.Unmarshal([]byte(spec.Template), &as); err != nil {
		t.Fatal(err)
	}
	return Base{Arch: &as}
}

func TestExpandCrossProductOrder(t *testing.T) {
	sp := Spec{
		Base: Base{Albireo: &AlbireoBase{Scaling: "aggressive"}},
		Axes: []Axis{
			{Param: "weight_reuse", Values: []any{false, true}},
			{Param: "or_lanes", Values: []any{1, 5}},
			{Param: "output_lanes", Values: []any{3.0, 9.0}}, // JSON-style floats coerce
		},
	}
	variants, err := sp.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 8 {
		t.Fatalf("got %d variants, want 8", len(variants))
	}
	// First axis most significant: wr=false for the first four.
	for i, want := range []string{
		"weight_reuse=false or_lanes=1 output_lanes=3",
		"weight_reuse=false or_lanes=1 output_lanes=9",
		"weight_reuse=false or_lanes=5 output_lanes=3",
		"weight_reuse=false or_lanes=5 output_lanes=9",
		"weight_reuse=true or_lanes=1 output_lanes=3",
	} {
		if variants[i].label != want {
			t.Errorf("variant %d label %q, want %q", i, variants[i].label, want)
		}
	}
	last := variants[7]
	if !last.albireo.WeightReuse || last.albireo.ORLanes != 5 || last.albireo.OutputLanes != 9 {
		t.Errorf("last variant config %+v wrong", last.albireo)
	}
	if last.albireo.Scaling != albireo.Aggressive {
		t.Errorf("base scaling not applied: %v", last.albireo.Scaling)
	}
	if v, ok := last.params["output_lanes"].(int); !ok || v != 9 {
		t.Errorf("float axis value not coerced to int: %#v", last.params["output_lanes"])
	}
}

func TestExpandErrors(t *testing.T) {
	cases := []struct {
		name string
		sp   Spec
		want string
	}{
		{"no base", Spec{}, "exactly one"},
		{"two bases", Spec{Base: Base{Albireo: &AlbireoBase{}, Arch: &spec.ArchSpec{}}}, "exactly one"},
		{"empty axis", Spec{Base: Base{Albireo: &AlbireoBase{}}, Axes: []Axis{{Param: "or_lanes"}}}, "no values"},
		{"unknown albireo param", Spec{Base: Base{Albireo: &AlbireoBase{}},
			Axes: []Axis{{Param: "bogus", Values: []any{1}}}}, "unknown albireo axis"},
		{"bad type", Spec{Base: Base{Albireo: &AlbireoBase{}},
			Axes: []Axis{{Param: "or_lanes", Values: []any{"three"}}}}, "not a int"},
		{"bad scaling", Spec{Base: Base{Albireo: &AlbireoBase{Scaling: "warp"}}}, "unknown scaling"},
	}
	for _, c := range cases {
		if _, err := c.sp.expand(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestRunValidationErrors(t *testing.T) {
	base := Base{Albireo: &AlbireoBase{}}
	cases := []struct {
		name string
		sp   Spec
		want string
	}{
		{"no workloads", Spec{Base: base}, "no workloads"},
		{"no network", Spec{Base: base, Workloads: []Workload{{}}}, "names no network"},
		{"unknown network", Spec{Base: base, Workloads: []Workload{{Network: "lenet99"}}}, "lenet99"},
		{"bad objective", Spec{Base: base, Workloads: []Workload{{Network: "vgg16"}},
			Objectives: []string{"speed"}}, "unknown objective"},
		{"fused needs albireo", Spec{Base: templateBase(t),
			Workloads: []Workload{{Inline: tinyNet(), Fused: true}}}, "albireo-backed base"},
	}
	for _, c := range cases {
		if _, err := Run(c.sp, Options{}); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

// TestRunMatchesDirectEvalNetwork is the dedupe-safety anchor: a concurrent
// sweep over Albireo variants, with the shared fingerprint cache engaged,
// must be bit-identical to evaluating each variant directly through
// albireo.EvalNetwork with no cache.
func TestRunMatchesDirectEvalNetwork(t *testing.T) {
	net := tinyNet()
	sp := Spec{
		Base: Base{Albireo: &AlbireoBase{Scaling: "aggressive"}},
		Axes: []Axis{
			{Param: "weight_reuse", Values: []any{false, true}},
			{Param: "output_lanes", Values: []any{3, 9}},
		},
		Workloads:     []Workload{{Inline: net}},
		Objectives:    []string{"energy"},
		Budget:        120,
		Seed:          1,
		SearchWorkers: 2,
	}
	res, err := Run(sp, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(res.Points))
	}
	// The result-level funnel rollup must equal the per-point sums, and a
	// seeded search of this size always fully evaluates something.
	var pruned, delta, full int
	for i := range res.Points {
		pruned += res.Points[i].Pruned
		delta += res.Points[i].DeltaEvals
		full += res.Points[i].FullEvals
	}
	if res.Pruned != pruned || res.DeltaEvals != delta || res.FullEvals != full {
		t.Errorf("rollup %d/%d/%d != per-point sums %d/%d/%d",
			res.Pruned, res.DeltaEvals, res.FullEvals, pruned, delta, full)
	}
	if res.FullEvals == 0 {
		t.Error("rollup reports no full evaluations")
	}
	if got := res.PrunedFraction(); got != float64(pruned)/float64(pruned+delta+full) {
		t.Errorf("PrunedFraction() = %v", got)
	}
	i := 0
	for _, wr := range []bool{false, true} {
		for _, lanes := range []int{3, 9} {
			cfg := albireo.Default(albireo.Aggressive)
			cfg.WeightReuse = wr
			cfg.OutputLanes = lanes
			direct, err := albireo.EvalNetwork(cfg, *net, albireo.NetOptions{
				Mapper: mapper.Options{Objective: mapper.MinEnergy, Budget: 120, Seed: 1, Workers: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			p := &res.Points[i]
			if p.TotalPJ != direct.Total.TotalPJ || p.Cycles != direct.Total.Cycles ||
				p.MACs != direct.Total.MACs || p.Utilization != direct.Total.Utilization {
				t.Errorf("point %d (%s): sweep %.9g pJ %.9g cyc, direct %.9g pJ %.9g cyc",
					i, p.Variant, p.TotalPJ, p.Cycles, direct.Total.TotalPJ, direct.Total.Cycles)
			}
			if p.Total == nil || len(p.Total.Energy) == 0 {
				t.Errorf("point %d missing full ledger", i)
			}
			a, err := cfg.Build()
			if err != nil {
				t.Fatal(err)
			}
			area, err := a.Area()
			if err != nil {
				t.Fatal(err)
			}
			if p.AreaUM2 != area || p.PeakMACsPerCycle != a.PeakMACsPerCycle() {
				t.Errorf("point %d area/peak mismatch", i)
			}
			i++
		}
	}
}

// TestRunDedupesRepeatedShapes checks the fingerprint cache across points:
// the same workload listed twice must not re-run a single search, and the
// duplicated points must be identical.
func TestRunDedupesRepeatedShapes(t *testing.T) {
	net := tinyNet()
	sp := Spec{
		Base:      Base{Albireo: &AlbireoBase{}},
		Workloads: []Workload{{Inline: net}, {Inline: net}},
		Budget:    80,
	}
	res, err := Run(sp, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points", len(res.Points))
	}
	if res.CacheMisses != int64(len(net.Layers)) {
		t.Errorf("misses = %d, want %d (one per distinct layer shape)", res.CacheMisses, len(net.Layers))
	}
	if res.CacheHits != int64(len(net.Layers)) {
		t.Errorf("hits = %d, want %d (second workload fully deduped)", res.CacheHits, len(net.Layers))
	}
	a, b := &res.Points[0], &res.Points[1]
	if a.TotalPJ != b.TotalPJ || a.Cycles != b.Cycles || a.Evaluations != b.Evaluations {
		t.Errorf("deduped points differ: %+v vs %+v", a, b)
	}
}

// TestRunArchSpecBase sweeps component overrides on a raw-spec base: ADC
// energy scaling must change total energy monotonically and nothing else.
func TestRunArchSpecBase(t *testing.T) {
	sp := Spec{
		Base: templateBase(t),
		Axes: []Axis{
			{Param: "component.ADC.walden_fj_per_step", Values: []any{21.0, 2100.0}},
		},
		Workloads:     []Workload{{Inline: tinyNet()}},
		Budget:        100,
		IncludeLayers: true,
	}
	res, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points", len(res.Points))
	}
	lo, hi := &res.Points[0], &res.Points[1]
	if lo.TotalPJ <= 0 || hi.TotalPJ <= lo.TotalPJ {
		t.Errorf("ADC override did not raise energy: %.4f vs %.4f", lo.TotalPJ, hi.TotalPJ)
	}
	if len(lo.Layers) != 2 {
		t.Errorf("IncludeLayers gave %d layer outcomes", len(lo.Layers))
	}
	if lo.Arch != "mini-photonic" {
		t.Errorf("arch name %q", lo.Arch)
	}
}

func TestRunUnknownComponentOverride(t *testing.T) {
	sp := Spec{
		Base:      templateBase(t),
		Axes:      []Axis{{Param: "component.Nope.x", Values: []any{1.0}}},
		Workloads: []Workload{{Inline: tinyNet()}},
	}
	if _, err := Run(sp, Options{}); err == nil || !strings.Contains(err.Error(), "no component") {
		t.Errorf("err = %v", err)
	}
}

// TestRunConcurrencyAndCallbacks drives a wider grid through a small pool
// under the race detector: progress must be monotone, every point must be
// streamed exactly once, and indexes must cover the cross product.
func TestRunConcurrencyAndCallbacks(t *testing.T) {
	sp := Spec{
		Base: Base{Albireo: &AlbireoBase{}},
		Axes: []Axis{
			{Param: "output_lanes", Values: []any{3, 9, 15}},
			{Param: "or_lanes", Values: []any{1, 3}},
		},
		Workloads:  []Workload{{Inline: tinyNet()}},
		Objectives: []string{"energy", "edp"},
		Budget:     60,
	}
	var streamed atomic.Int64
	seen := make(map[int]bool)
	lastDone := 0
	res, err := Run(sp, Options{
		Workers: 4,
		OnPoint: func(p *Point) {
			streamed.Add(1)
			if seen[p.Index] {
				t.Errorf("point %d streamed twice", p.Index)
			}
			seen[p.Index] = true
		},
		Progress: func(done, total int) {
			if total != 12 {
				t.Errorf("total = %d, want 12", total)
			}
			if done != lastDone+1 {
				t.Errorf("progress not monotone: %d after %d", done, lastDone)
			}
			lastDone = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Load() != 12 || len(res.Points) != 12 {
		t.Fatalf("streamed %d, points %d, want 12", streamed.Load(), len(res.Points))
	}
	for i := range res.Points {
		if res.Points[i].Index != i {
			t.Errorf("point %d has index %d", i, res.Points[i].Index)
		}
		if res.Points[i].Objective != [2]string{"energy", "edp"}[i%2] {
			t.Errorf("point %d objective %s", i, res.Points[i].Objective)
		}
	}
	// Identical layer shapes across all 6 variants' nets differ by arch,
	// so dedupe only collapses the repeated shapes within each
	// (variant, objective): expect exactly one miss per distinct search.
	if res.CacheMisses == 0 || res.CacheHits != 0 {
		t.Errorf("unexpected cache stats: hits %d misses %d", res.CacheHits, res.CacheMisses)
	}
}

// TestRunContextCanceled: a pre-canceled context must stop the run before
// dispatching, mark every undispatched point, and surface the context
// error (how the server sheds abandoned requests).
func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sp := Spec{
		Base:      Base{Albireo: &AlbireoBase{}},
		Axes:      []Axis{{Param: "output_lanes", Values: []any{3, 9, 15}}},
		Workloads: []Workload{{Inline: tinyNet()}},
		Budget:    60,
	}
	res, err := Run(sp, Options{Workers: 1, Context: ctx})
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("err = %v, want context canceled", err)
	}
	if res == nil || len(res.Points) != 3 {
		t.Fatalf("expected all points present, got %+v", res)
	}
	canceled := 0
	for i := range res.Points {
		if strings.Contains(res.Points[i].Err, "context canceled") {
			canceled++
			if res.Points[i].Network != "tiny" || res.Points[i].Objective != "energy" {
				t.Errorf("canceled point %d missing identity: %+v", i, res.Points[i])
			}
		}
	}
	if canceled == 0 {
		t.Error("no point carries the cancellation")
	}
}

func TestWriteCSVAndJSON(t *testing.T) {
	sp := Spec{
		Name:      "csv-test",
		Base:      Base{Albireo: &AlbireoBase{}},
		Axes:      []Axis{{Param: "output_lanes", Values: []any{3, 9}}},
		Workloads: []Workload{{Inline: tinyNet()}},
		Budget:    60,
	}
	res, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want header + 2", len(lines))
	}
	if !strings.Contains(lines[0], "output_lanes") || !strings.Contains(lines[0], "pj_per_mac") {
		t.Errorf("csv header missing columns: %s", lines[0])
	}

	var jsonBuf bytes.Buffer
	if err := res.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "csv-test" || len(back.Points) != 2 {
		t.Errorf("json round trip lost data: %+v", back)
	}
	if back.Points[1].PJPerMAC != res.Points[1].PJPerMAC {
		t.Errorf("json round trip changed metrics")
	}
}

// TestSpecJSONRoundTrip parses a sweep spec document the way the CLI and
// server do.
func TestSpecJSONRoundTrip(t *testing.T) {
	doc := `{
		"name": "fig5-style",
		"base": {"albireo": {"scaling": "aggressive"}},
		"axes": [
			{"param": "weight_reuse", "values": [false, true]},
			{"param": "or_lanes", "values": [1, 3, 5]}
		],
		"workloads": [{"network": "resnet18", "batch": 1}],
		"objectives": ["energy"],
		"budget": 400,
		"seed": 1
	}`
	var sp Spec
	dec := json.NewDecoder(strings.NewReader(doc))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		t.Fatal(err)
	}
	variants, err := sp.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 6 {
		t.Fatalf("got %d variants", len(variants))
	}
	if variants[5].albireo.ORLanes != 5 || !variants[5].albireo.WeightReuse {
		t.Errorf("last variant wrong: %+v", variants[5].albireo)
	}
}
