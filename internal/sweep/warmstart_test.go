package sweep

import (
	"testing"

	"photoloop/internal/workload"
)

func warmStartSpec(warm bool) Spec {
	return Spec{
		Name: "warm",
		Base: Base{Albireo: &AlbireoBase{Scaling: "aggressive"}},
		Axes: []Axis{
			{Param: "output_lanes", Values: []any{3, 9, 15}},
		},
		Workloads: []Workload{{Inline: &workload.Network{Name: "tiny", Layers: []workload.Layer{
			workload.NewConv("c1", 1, 64, 32, 14, 14, 3, 3, 1, 1),
			workload.NewConv("c2", 1, 32, 64, 7, 7, 3, 3, 1, 1),
		}}}},
		Budget:        120,
		Seed:          1,
		SearchWorkers: 1,
		WarmStart:     warm,
	}
}

// TestWarmStartSweep covers Spec.WarmStart: the chained sweep completes,
// is exactly reproducible, threads incumbents (visible as warm-start
// evaluations beyond the budget on successor points), and does not degrade
// the search outcome relative to the cold sweep.
func TestWarmStartSweep(t *testing.T) {
	cold, err := Run(warmStartSpec(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(warmStartSpec(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(warmStartSpec(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Points) != len(cold.Points) {
		t.Fatalf("point count mismatch: %d vs %d", len(warm.Points), len(cold.Points))
	}
	for i := range warm.Points {
		w, a, c := &warm.Points[i], &again.Points[i], &cold.Points[i]
		if w.TotalPJ != a.TotalPJ || w.Evaluations != a.Evaluations {
			t.Fatalf("point %d not reproducible: %g/%d vs %g/%d",
				i, w.TotalPJ, w.Evaluations, a.TotalPJ, a.Evaluations)
		}
		if w.MACs != c.MACs {
			t.Fatalf("point %d MACs diverged", i)
		}
		// Warm starts add candidates; they must never leave a point
		// dramatically worse than the cold search (the usual outcome is
		// equal or better — the incumbent joins the pool).
		if w.TotalPJ > c.TotalPJ*1.001 {
			t.Errorf("point %d: warm %g pJ worse than cold %g pJ", i, w.TotalPJ, c.TotalPJ)
		}
	}
	// Successor points actually received incumbents: their evaluation
	// counts include uncharged warm-start evaluations.
	threading := false
	for i := 1; i < len(warm.Points); i++ {
		if warm.Points[i].Evaluations > cold.Points[i].Evaluations {
			threading = true
		}
	}
	if !threading {
		t.Error("no point shows warm-start evaluations; incumbent threading inert")
	}
}
