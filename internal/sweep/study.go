package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"photoloop/internal/mapper"
	"photoloop/internal/md"
	"photoloop/internal/presets"
	"photoloop/internal/workload"
)

// StudySpec declares a comparative study: the cross product of named
// architecture presets × zoo workloads × mapper objectives, evaluated
// through the cached sweep engine and ranked per (workload, objective)
// group. It is the declarative form behind `photoloop study` and
// `POST /v1/study`.
type StudySpec struct {
	// Name labels the study in outputs.
	Name string `json:"name,omitempty"`
	// Presets names the architecture presets to compare (presets.Names).
	// Empty, or any entry equal to "all", selects the whole library.
	Presets []string `json:"presets,omitempty"`
	// Workloads names the zoo networks to evaluate. Empty, or any entry
	// equal to "all", selects the whole zoo.
	Workloads []string `json:"workloads,omitempty"`
	// Objectives are mapper objectives ("energy", "delay", "edp");
	// default is energy only. Rows are ranked within each (workload,
	// objective) group by the objective's own metric.
	Objectives []string `json:"objectives,omitempty"`
	// Batch is the batch size applied to every workload (default 1).
	Batch int `json:"batch,omitempty"`
	// Budget is the mapper evaluation budget per layer (0 = mapper
	// default).
	Budget int `json:"budget,omitempty"`
	// Seed fixes the mapper's randomness (0 = mapper default).
	Seed int64 `json:"seed,omitempty"`
	// SearchWorkers caps per-layer search parallelism (0 = mapper
	// default). Results are deterministic for a fixed (Seed,
	// SearchWorkers) pair.
	SearchWorkers int `json:"search_workers,omitempty"`
	// Fidelity additionally runs each preset's default analog fidelity
	// rollup (presets.Preset.DefaultFidelity) over every row's best
	// mappings. Energy/delay/area columns are bit-identical either way;
	// presets without an analog datapath keep empty fidelity columns.
	Fidelity bool `json:"fidelity,omitempty"`
}

// resolvePresets expands the preset selection, treating empty and "all"
// as the whole library.
func (sp *StudySpec) resolvePresets() ([]string, error) {
	names := sp.Presets
	if len(names) == 0 {
		return presets.Names(), nil
	}
	for _, n := range names {
		if n == "all" {
			return presets.Names(), nil
		}
	}
	for _, n := range names {
		if _, err := presets.ByName(n); err != nil {
			return nil, fmt.Errorf("sweep: study: %w", err)
		}
	}
	return names, nil
}

// resolveWorkloads expands the workload selection, treating empty and
// "all" as the whole zoo (in curated zoo order).
func (sp *StudySpec) resolveWorkloads() ([]string, error) {
	names := sp.Workloads
	all := false
	if len(names) == 0 {
		all = true
	}
	for _, n := range names {
		if n == "all" {
			all = true
		}
	}
	if all {
		var out []string
		for _, e := range workload.ZooEntries() {
			out = append(out, e.Name)
		}
		return out, nil
	}
	zoo := workload.Zoo()
	for _, n := range names {
		if _, ok := zoo[n]; !ok {
			return nil, fmt.Errorf("sweep: study: unknown network %q", n)
		}
	}
	return names, nil
}

// StudyRow is one evaluated (preset, workload, objective) combination
// with its rank inside the (workload, objective) group (1 = best).
type StudyRow struct {
	// Rank orders presets within the row's (network, objective) group by
	// Score, ascending; 1 is the winner.
	Rank int `json:"rank"`
	// Preset, Network, Batch and Objective identify the evaluation.
	Preset    string `json:"preset"`
	Network   string `json:"network"`
	Batch     int    `json:"batch"`
	Objective string `json:"objective"`
	// Arch is the built architecture's name.
	Arch string `json:"arch"`
	// AreaUM2 and PeakMACsPerCycle are mapping-independent properties.
	AreaUM2          float64 `json:"area_um2"`
	PeakMACsPerCycle int64   `json:"peak_macs_per_cycle"`
	// Whole-network metrics (identical to the underlying sweep Point's).
	MACs         int64   `json:"macs"`
	Cycles       float64 `json:"cycles"`
	TotalPJ      float64 `json:"total_pj"`
	PJPerMAC     float64 `json:"pj_per_mac"`
	MACsPerCycle float64 `json:"macs_per_cycle"`
	Utilization  float64 `json:"utilization"`
	// EffectiveBits, SNRDB and AccuracyLossPct carry the MAC-weighted
	// analog fidelity rollup when the study set Fidelity.
	EffectiveBits   float64 `json:"effective_bits,omitempty"`
	SNRDB           float64 `json:"snr_db,omitempty"`
	AccuracyLossPct float64 `json:"accuracy_loss_pct,omitempty"`
	// Score is the ranked metric: total pJ for "energy", cycles for
	// "delay", their product for "edp".
	Score float64 `json:"score"`
}

// StudyResult is a completed study: rows grouped by (network, objective)
// in selection order, ranked best-first inside each group.
type StudyResult struct {
	Name string     `json:"name,omitempty"`
	Rows []StudyRow `json:"rows"`
	// CacheHits and CacheMisses count deduplicated versus computed layer
	// searches across the whole study (one shared cache spans all
	// presets).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

// StudyObjectives returns the objective names a study accepts
// (mapper.ParseObjective's vocabulary), in canonical order.
func StudyObjectives() []string { return []string{"energy", "delay", "edp"} }

// score derives the ranked metric from a point.
func score(objective string, p *Point) float64 {
	switch objective {
	case "delay":
		return p.Cycles
	case "edp":
		return p.TotalPJ * p.Cycles
	default: // energy
		return p.TotalPJ
	}
}

// RunStudy evaluates the study: one sweep per preset through the shared
// cached engine, then a rank pass. Every (preset, workload, objective)
// row is bit-identical to evaluating the same pair individually (Eval
// with the same budget/seed/workers), because both run the identical
// evaluation path — test-guarded.
func RunStudy(sp StudySpec, opts Options) (*StudyResult, error) {
	presetNames, err := sp.resolvePresets()
	if err != nil {
		return nil, err
	}
	workloadNames, err := sp.resolveWorkloads()
	if err != nil {
		return nil, err
	}
	objectives := sp.Objectives
	if len(objectives) == 0 {
		objectives = []string{"energy"}
	}

	wls := make([]Workload, len(workloadNames))
	for i, n := range workloadNames {
		wls[i] = Workload{Network: n, Batch: sp.Batch}
	}

	// One cache across every preset's sweep: identical layer shapes on
	// identical architectures (e.g. two presets sharing a sub-hierarchy)
	// dedupe study-wide, and callers can share further.
	runOpts := opts
	if runOpts.Cache == nil {
		runOpts.Cache = mapper.NewCache()
	}
	total := len(presetNames) * len(workloadNames) * len(objectives)
	done := 0

	res := &StudyResult{Name: sp.Name}
	for _, preset := range presetNames {
		sub := Spec{
			Name:          preset,
			Base:          Base{Preset: preset},
			Workloads:     wls,
			Objectives:    objectives,
			Budget:        sp.Budget,
			Seed:          sp.Seed,
			SearchWorkers: sp.SearchWorkers,
		}
		if sp.Fidelity {
			p, _ := presets.ByName(preset) // validated by resolvePresets
			sub.Fidelity = p.DefaultFidelity()
		}
		presetOpts := runOpts
		if opts.Progress != nil {
			base := done
			presetOpts.Progress = func(d, _ int) { opts.Progress(base+d, total) }
		}
		sres, err := Run(sub, presetOpts)
		if err != nil {
			return nil, fmt.Errorf("sweep: study preset %q: %w", preset, err)
		}
		done += len(sres.Points)
		res.CacheHits += sres.CacheHits
		res.CacheMisses += sres.CacheMisses
		for i := range sres.Points {
			p := &sres.Points[i]
			res.Rows = append(res.Rows, StudyRow{
				Preset:           preset,
				Network:          p.Network,
				Batch:            p.Batch,
				Objective:        p.Objective,
				Arch:             p.Arch,
				AreaUM2:          p.AreaUM2,
				PeakMACsPerCycle: p.PeakMACsPerCycle,
				MACs:             p.MACs,
				Cycles:           p.Cycles,
				TotalPJ:          p.TotalPJ,
				PJPerMAC:         p.PJPerMAC,
				MACsPerCycle:     p.MACsPerCycle,
				Utilization:      p.Utilization,
				EffectiveBits:    p.EffectiveBits,
				SNRDB:            p.SNRDB,
				AccuracyLossPct:  p.AccuracyLossPct,
				Score:            score(p.Objective, p),
			})
		}
	}

	rankRows(res.Rows, workloadNames, objectives, presetNames)
	return res, nil
}

// rankRows sorts rows into (workload, objective) groups in selection
// order and assigns ranks by ascending score, breaking ties by preset
// order so the result is fully deterministic.
func rankRows(rows []StudyRow, workloads, objectives, presetNames []string) {
	pos := func(list []string, v string) int {
		for i, s := range list {
			if s == v {
				return i
			}
		}
		return len(list)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := &rows[i], &rows[j]
		if wa, wb := pos(workloads, a.Network), pos(workloads, b.Network); wa != wb {
			return wa < wb
		}
		if oa, ob := pos(objectives, a.Objective), pos(objectives, b.Objective); oa != ob {
			return oa < ob
		}
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return pos(presetNames, a.Preset) < pos(presetNames, b.Preset)
	})
	rank := 0
	for i := range rows {
		if i == 0 || rows[i].Network != rows[i-1].Network || rows[i].Objective != rows[i-1].Objective {
			rank = 0
		}
		rank++
		rows[i].Rank = rank
	}
}

// WriteJSON writes the study as an indented JSON document.
func (r *StudyResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// studyColumns are the CSV/markdown/table columns, in order.
var studyColumns = []string{
	"network", "objective", "rank", "preset", "arch",
	"area_mm2", "peak_macs_per_cycle",
	"total_pj", "pj_per_mac", "cycles", "macs_per_cycle", "utilization",
	"effective_bits", "snr_db", "accuracy_loss_pct",
}

// fields renders the row's column values.
func (row *StudyRow) fields() []string {
	cells := []string{
		row.Network, row.Objective, strconv.Itoa(row.Rank), row.Preset, row.Arch,
		fmt.Sprintf("%.4f", row.AreaUM2/1e6), strconv.FormatInt(row.PeakMACsPerCycle, 10),
		fmt.Sprintf("%.4f", row.TotalPJ), fmt.Sprintf("%.6f", row.PJPerMAC),
		fmt.Sprintf("%.1f", row.Cycles), fmt.Sprintf("%.3f", row.MACsPerCycle),
		fmt.Sprintf("%.4f", row.Utilization),
	}
	return append(cells, fidelityCells(row.EffectiveBits, row.SNRDB, row.AccuracyLossPct)...)
}

// WriteCSV writes the study as CSV, one row per (preset, workload,
// objective), in ranked group order.
func (r *StudyResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(studyColumns); err != nil {
		return err
	}
	for i := range r.Rows {
		if err := cw.Write(r.Rows[i].fields()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// studyMarkdownHeaders and studyMarkdownAlign describe the per-group
// markdown table (one byte per column, 'l' left / 'r' right).
var studyMarkdownHeaders = []string{"rank", "preset", "total pJ", "pJ/MAC", "cycles", "MACs/cycle", "util", "area mm²"}

const studyMarkdownAlign = "rlrrrrrr"

// WriteMarkdown writes the study as one ranked markdown table per
// (workload, objective) group — directly pasteable into docs. Tables are
// rendered through the shared md helper, so a `|` in a preset name or
// description cannot break a row.
func (r *StudyResult) WriteMarkdown(w io.Writer) error {
	for i := 0; i < len(r.Rows); {
		group := &r.Rows[i]
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "### %s · batch %d · objective %s\n\n",
			md.Escape(group.Network), group.Batch, md.Escape(group.Objective)); err != nil {
			return err
		}
		var rows [][]string
		for ; i < len(r.Rows); i++ {
			row := &r.Rows[i]
			if row.Network != group.Network || row.Objective != group.Objective {
				break
			}
			rows = append(rows, []string{
				strconv.Itoa(row.Rank), row.Preset,
				fmt.Sprintf("%.4g", row.TotalPJ), fmt.Sprintf("%.4f", row.PJPerMAC),
				fmt.Sprintf("%.4g", row.Cycles), fmt.Sprintf("%.1f", row.MACsPerCycle),
				fmt.Sprintf("%.1f%%", 100*row.Utilization), fmt.Sprintf("%.2f", row.AreaUM2/1e6),
			})
		}
		if err := md.Table(w, studyMarkdownHeaders, studyMarkdownAlign, rows); err != nil {
			return err
		}
	}
	return nil
}
