package sweep

import (
	"bytes"
	"strings"
	"testing"

	"photoloop/internal/fidelity"
)

// fidelitySweepSpec is the shared fixture: a two-variant albireo sweep,
// pinned seed/workers, per-layer outcomes on.
func fidelitySweepSpec(fid *fidelity.Spec) Spec {
	return Spec{
		Name: "fidelity-test",
		Base: Base{Albireo: &AlbireoBase{}},
		Axes: []Axis{
			{Param: "output_lanes", Values: []any{3, 9}},
		},
		Workloads:     []Workload{{Inline: tinyNet()}},
		Budget:        40,
		Seed:          1,
		SearchWorkers: 1,
		IncludeLayers: true,
		Fidelity:      fid,
	}
}

// stripFidelity zeroes every fidelity field of a result, so a
// fidelity-enabled run can be compared bit-for-bit against a disabled one.
func stripFidelity(res *Result) {
	for i := range res.Points {
		p := &res.Points[i]
		p.EffectiveBits, p.SNRDB, p.AccuracyLossPct = 0, 0, 0
		if p.Total != nil {
			p.Total.EffectiveBits, p.Total.SNRDB, p.Total.AccuracyLossPct = 0, 0, 0
		}
		for j := range p.Layers {
			l := &p.Layers[j]
			l.EffectiveBits, l.SNRDB, l.AccuracyLossPct = 0, 0, 0
		}
	}
}

// TestFidelityOffBitIdentical is the tentpole's safety contract: the
// fidelity rollup is a pure post-pass, so enabling it must not move a
// single bit of the energy/delay/area results — and disabling it must
// leave no fidelity keys in the JSON at all.
func TestFidelityOffBitIdentical(t *testing.T) {
	off, err := Run(fidelitySweepSpec(nil), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(fidelitySweepSpec(&fidelity.Spec{}), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	for i := range on.Points {
		p := &on.Points[i]
		if p.EffectiveBits <= 0 || p.SNRDB <= 0 || p.AccuracyLossPct < 0 {
			t.Fatalf("point %d: fidelity rollup missing or nonsensical: bits=%v snr=%v loss=%v",
				i, p.EffectiveBits, p.SNRDB, p.AccuracyLossPct)
		}
		for j := range p.Layers {
			if p.Layers[j].EffectiveBits <= 0 {
				t.Fatalf("point %d layer %d: no per-layer fidelity annotation", i, j)
			}
		}
	}

	var offJSON bytes.Buffer
	if err := off.WriteJSON(&offJSON); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"effective_bits", "snr_db", "accuracy_loss_pct"} {
		if strings.Contains(offJSON.String(), key) {
			t.Errorf("fidelity-off JSON leaks %q", key)
		}
	}

	// Totals are compared before stripping (Total is omitted from JSON).
	for i := range on.Points {
		a, b := off.Points[i].Total, on.Points[i].Total
		if a.TotalPJ != b.TotalPJ || a.Cycles != b.Cycles || a.MACs != b.MACs ||
			a.Utilization != b.Utilization || a.MACsPerCycle != b.MACsPerCycle {
			t.Fatalf("point %d: accumulated totals differ with fidelity on: %+v vs %+v", i, a, b)
		}
	}
	stripFidelity(on)
	var onJSON bytes.Buffer
	if err := on.WriteJSON(&onJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offJSON.Bytes(), onJSON.Bytes()) {
		t.Fatalf("results differ beyond the fidelity fields:\noff: %s\non:  %s", offJSON.Bytes(), onJSON.Bytes())
	}
}

// TestFidelityCSVColumns: the sweep CSV always carries the three fidelity
// columns; they are empty with the rollup off and populated with it on.
func TestFidelityCSVColumns(t *testing.T) {
	on, err := Run(fidelitySweepSpec(&fidelity.Spec{}), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	header := strings.Join(on.CSVHeader(), ",")
	if !strings.Contains(header, "effective_bits,snr_db,accuracy_loss_pct") {
		t.Fatalf("CSV header missing fidelity columns: %s", header)
	}
	var buf bytes.Buffer
	if err := on.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(on.Points) {
		t.Fatalf("got %d CSV lines, want %d", len(lines), 1+len(on.Points))
	}
	if !strings.Contains(lines[1], on.Points[0].Objective) || strings.Contains(lines[1], ",,,") {
		t.Fatalf("fidelity-on CSV row has empty fidelity cells: %s", lines[1])
	}

	off, err := Run(fidelitySweepSpec(nil), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := off.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	offLines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(offLines[1], ",,,") {
		t.Fatalf("fidelity-off CSV row should leave the three fidelity cells empty: %s", offLines[1])
	}
}

// TestEvalFidelity covers the /v1/eval surface: the rollup annotates
// layers and MAC-weighted totals when requested, is absent otherwise, and
// never perturbs the energy metrics.
func TestEvalFidelity(t *testing.T) {
	base := EvalRequest{
		Preset: "albireo", Inline: tinyNet(),
		Budget: 40, Seed: 1, Workers: 1,
	}
	off := base
	offResp, err := Eval(&off, nil)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.Fidelity = &fidelity.Spec{}
	onResp, err := Eval(&on, nil)
	if err != nil {
		t.Fatal(err)
	}

	if offResp.EffectiveBits != 0 || offResp.SNRDB != 0 || offResp.AccuracyLossPct != 0 {
		t.Fatalf("fidelity fields set without a fidelity request: %+v", offResp)
	}
	if onResp.EffectiveBits <= 0 || onResp.SNRDB <= 0 {
		t.Fatalf("fidelity request produced no rollup: bits=%v snr=%v", onResp.EffectiveBits, onResp.SNRDB)
	}
	if onResp.EffectiveBits >= 8 {
		t.Fatalf("analog chain reports %v effective bits, expected below the 8-bit reference", onResp.EffectiveBits)
	}
	for i := range onResp.Layers {
		if onResp.Layers[i].EffectiveBits <= 0 {
			t.Fatalf("layer %d missing fidelity annotation", i)
		}
	}
	if offResp.TotalPJ != onResp.TotalPJ || offResp.Cycles != onResp.Cycles ||
		offResp.MACs != onResp.MACs || offResp.Utilization != onResp.Utilization ||
		offResp.Evaluations != onResp.Evaluations {
		t.Fatalf("fidelity request changed the evaluation itself:\noff %+v\non  %+v", offResp, onResp)
	}

	// The electrical baseline has no analog chain: a fidelity request
	// reports the full reference precision with zero loss.
	digital := EvalRequest{
		Preset: "electrical-baseline", Inline: tinyNet(),
		Budget: 40, Seed: 1, Workers: 1,
		Fidelity: &fidelity.Spec{},
	}
	digResp, err := Eval(&digital, nil)
	if err != nil {
		t.Fatal(err)
	}
	if digResp.EffectiveBits != 8 || digResp.AccuracyLossPct != 0 {
		t.Fatalf("digital chain: bits=%v loss=%v, want exactly 8 and 0", digResp.EffectiveBits, digResp.AccuracyLossPct)
	}
}

// TestStudyFidelity: a fidelity-enabled study annotates albireo-backed
// rows, leaves the electrical baseline's columns empty (nil default spec),
// and keeps every ranked metric bit-identical to a plain study.
func TestStudyFidelity(t *testing.T) {
	plain := studySpecSmall()
	fid := studySpecSmall()
	fid.Fidelity = true

	plainRes, err := RunStudy(plain, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fidRes, err := RunStudy(fid, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(plainRes.Rows) != len(fidRes.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(plainRes.Rows), len(fidRes.Rows))
	}
	for i := range fidRes.Rows {
		p, f := &plainRes.Rows[i], &fidRes.Rows[i]
		if p.Preset != f.Preset || p.Objective != f.Objective || p.Rank != f.Rank ||
			p.TotalPJ != f.TotalPJ || p.Cycles != f.Cycles || p.Score != f.Score {
			t.Fatalf("row %d changed under fidelity: %+v vs %+v", i, p, f)
		}
		switch f.Preset {
		case "electrical-baseline":
			if f.EffectiveBits != 0 {
				t.Errorf("row %d: electrical baseline should keep empty fidelity columns, got %v bits", i, f.EffectiveBits)
			}
		default:
			if f.EffectiveBits <= 0 || f.EffectiveBits >= 8 {
				t.Errorf("row %d (%s): effective bits %v, want in (0, 8)", i, f.Preset, f.EffectiveBits)
			}
		}
	}

	var buf bytes.Buffer
	if err := fidRes.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "effective_bits") {
		t.Fatalf("study CSV header missing effective_bits: %s", buf.String())
	}
}
