package sweep

import (
	"reflect"
	"testing"
)

// TestEvaluatorMatchesRunPoints is the on-demand evaluator's equivalence
// anchor: for every grid point of a spec, Evaluator.Eval with that
// point's axis values must reproduce the corresponding Run point bit for
// bit — same variant construction, same evaluation path.
func TestEvaluatorMatchesRunPoints(t *testing.T) {
	sp := Spec{
		Name: "evaluator-equiv",
		Base: Base{Albireo: &AlbireoBase{}},
		Axes: []Axis{
			{Param: "or_lanes", Values: []any{1, 3}},
			{Param: "weight_reuse", Values: []any{false, true}},
		},
		Workloads:     []Workload{{Network: "alexnet"}},
		Objectives:    []string{"energy", "delay"},
		Budget:        60,
		Seed:          1,
		SearchWorkers: 1,
	}
	res, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ev.Workloads(); !reflect.DeepEqual(got, []string{"alexnet"}) {
		t.Errorf("workloads = %v", got)
	}
	if got := ev.Objectives(); !reflect.DeepEqual(got, []string{"energy", "delay"}) {
		t.Errorf("objectives = %v", got)
	}
	for i := range res.Points {
		p := &res.Points[i]
		values := []any{p.Params["or_lanes"], p.Params["weight_reuse"]}
		oi := 0
		if p.Objective == "delay" {
			oi = 1
		}
		got, err := ev.Eval(p.Index, values, 0, oi)
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		// Total carries a pointer; compare the exported value fields.
		want := *p
		want.Total, got.Total = nil, nil
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("point %d differs:\n got %+v\nwant %+v", i, *got, want)
		}
	}
}

// TestEvaluatorValidate checks spec- and value-level failures surface
// without evaluation.
func TestEvaluatorValidate(t *testing.T) {
	sp := Spec{
		Base:      Base{Albireo: &AlbireoBase{}},
		Axes:      []Axis{{Param: "or_lanes"}},
		Workloads: []Workload{{Network: "alexnet"}},
	}
	ev, err := NewEvaluator(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Validate([]any{3}); err != nil {
		t.Errorf("valid point rejected: %v", err)
	}
	if err := ev.Validate([]any{"three"}); err == nil {
		t.Error("mistyped axis value accepted")
	}
	if err := ev.Validate([]any{1, 2}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := ev.Eval(0, []any{3}, 1, 0); err == nil {
		t.Error("workload index out of range accepted")
	}
	if _, err := ev.Eval(0, []any{3}, 0, 5); err == nil {
		t.Error("objective index out of range accepted")
	}

	bad := sp
	bad.Base = Base{}
	if _, err := NewEvaluator(bad, Options{}); err == nil {
		t.Error("empty base accepted")
	}
	fused := sp
	fused.Base = Base{Preset: "electrical-baseline"}
	fused.Workloads = []Workload{{Network: "alexnet", Fused: true}}
	if _, err := NewEvaluator(fused, Options{}); err == nil {
		t.Error("fused workload on electrical base accepted")
	}
}
