package sweep

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"photoloop/internal/presets"
	"photoloop/internal/spec"
)

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(buf))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestServeEvalMatchesLocalEval is the serving-equivalence anchor: POST
// /v1/eval for the template architecture + vgg16 must answer exactly the
// JSON that the local evaluation path (photoloop eval -json) produces.
func TestServeEvalMatchesLocalEval(t *testing.T) {
	var as spec.ArchSpec
	if err := json.Unmarshal([]byte(spec.Template), &as); err != nil {
		t.Fatal(err)
	}
	req := &EvalRequest{
		Arch: &as, Network: "vgg16",
		Budget: 60, Seed: 1, Workers: 2,
	}

	srv := NewServer()
	w := postJSON(t, srv, "/v1/eval", req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}

	local, err := Eval(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	if err := enc.Encode(local); err != nil {
		t.Fatal(err)
	}
	if got := w.Body.String(); got != want.String() {
		t.Errorf("server response differs from local eval:\nserver: %s\nlocal:  %s", got, want.String())
	}

	var resp EvalResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Arch != "mini-photonic" || resp.Network != "vgg16" || len(resp.Layers) != 16 {
		t.Errorf("response shape wrong: arch %s net %s layers %d", resp.Arch, resp.Network, len(resp.Layers))
	}
	if resp.TotalPJ <= 0 || resp.PJPerMAC <= 0 {
		t.Errorf("bad totals: %+v", resp)
	}
}

func TestServeEvalSingleLayerAndErrors(t *testing.T) {
	srv := NewServer()

	w := postJSON(t, srv, "/v1/eval", &EvalRequest{
		Albireo: &AlbireoBase{Scaling: "conservative"},
		Network: "alexnet", Layer: "conv3", Budget: 60, Seed: 1, Workers: 2,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp EvalResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Layers) != 1 || resp.Layers[0].Layer != "conv3" {
		t.Errorf("layer filter broken: %+v", resp.Layers)
	}

	// Unprocessable request: no base.
	w = postJSON(t, srv, "/v1/eval", &EvalRequest{Network: "vgg16"})
	if w.Code != http.StatusUnprocessableEntity {
		t.Errorf("no-base status %d", w.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error == "" {
		t.Errorf("error body not JSON: %s", w.Body.String())
	}

	// Malformed JSON and unknown fields are 400s.
	req := httptest.NewRequest("POST", "/v1/eval", strings.NewReader("{nope"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad json status %d", rec.Code)
	}
	req = httptest.NewRequest("POST", "/v1/eval", strings.NewReader(`{"bogus_field": 1}`))
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown field status %d", rec.Code)
	}

	// Wrong method.
	req = httptest.NewRequest("GET", "/v1/eval", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/eval status %d", rec.Code)
	}
}

func TestServeSweepJSONAndCSV(t *testing.T) {
	srv := NewServer()
	sp := Spec{
		Name:      "serve-sweep",
		Base:      Base{Albireo: &AlbireoBase{}},
		Axes:      []Axis{{Param: "output_lanes", Values: []any{3, 9}}},
		Workloads: []Workload{{Inline: tinyNet()}},
		Budget:    60,
	}
	w := postJSON(t, srv, "/v1/sweep", sp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var res Result
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].PJPerMAC <= 0 {
		t.Errorf("sweep response wrong: %+v", res)
	}

	w = postJSON(t, srv, "/v1/sweep?format=csv", sp)
	if w.Code != http.StatusOK {
		t.Fatalf("csv status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/csv" {
		t.Errorf("csv content type %q", ct)
	}
	if lines := strings.Count(strings.TrimSpace(w.Body.String()), "\n"); lines != 2 {
		t.Errorf("csv has %d newlines, want 2 (header + 2 rows)", lines)
	}

	// A second identical sweep should be served largely from the shared
	// cache.
	if _, misses0 := srv.CacheStats(); misses0 == 0 {
		t.Fatal("first sweep recorded no misses")
	}
	_, missesBefore := srv.CacheStats()
	w = postJSON(t, srv, "/v1/sweep", sp)
	if w.Code != http.StatusOK {
		t.Fatalf("second sweep status %d", w.Code)
	}
	hits, missesAfter := srv.CacheStats()
	if missesAfter != missesBefore {
		t.Errorf("second identical sweep recomputed searches: misses %d -> %d", missesBefore, missesAfter)
	}
	if hits == 0 {
		t.Error("second identical sweep recorded no cache hits")
	}

	// Invalid spec is a 422.
	w = postJSON(t, srv, "/v1/sweep", Spec{})
	if w.Code != http.StatusUnprocessableEntity {
		t.Errorf("empty spec status %d", w.Code)
	}
}

func TestServeNetworks(t *testing.T) {
	srv := NewServer()
	req := httptest.NewRequest("GET", "/v1/networks", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var nets []networkInfo
	if err := json.Unmarshal(w.Body.Bytes(), &nets); err != nil {
		t.Fatal(err)
	}
	if len(nets) < 3 {
		t.Fatalf("got %d networks", len(nets))
	}
	byName := map[string]networkInfo{}
	for _, n := range nets {
		byName[n.Name] = n
	}
	vgg := byName["vgg16"]
	if vgg.Layers != 16 || vgg.MACs <= 0 || vgg.Weights <= 0 {
		t.Errorf("vgg16 info wrong: %+v", vgg)
	}
	bert := byName["bert_base"]
	if bert.Family != "transformer" || bert.Description == "" || bert.Layers != 96 {
		t.Errorf("bert_base info wrong: %+v", bert)
	}
}

func TestServePresets(t *testing.T) {
	srv := NewServer()
	req := httptest.NewRequest("GET", "/v1/presets", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var infos []presetInfo
	if err := json.Unmarshal(w.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(presets.Names()) {
		t.Fatalf("got %d presets, want %d", len(infos), len(presets.Names()))
	}
	for _, info := range infos {
		if info.Name == "" || info.Kind == "" || info.Description == "" ||
			info.PeakMACsPerCycle <= 0 || info.AreaUM2 <= 0 {
			t.Errorf("incomplete preset info: %+v", info)
		}
	}
}

// TestServeStudyMatchesLocal pins POST /v1/study to the local RunStudy
// path (the CLI's engine), CSV negotiation included.
func TestServeStudyMatchesLocal(t *testing.T) {
	srv := NewServer()
	sp := StudySpec{
		Presets:       []string{"albireo"},
		Workloads:     []string{"alexnet"},
		Budget:        60,
		Seed:          1,
		SearchWorkers: 1,
	}
	w := postJSON(t, srv, "/v1/study", sp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var got StudyResult
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	local, err := RunStudy(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(local.Rows) {
		t.Fatalf("server %d rows, local %d", len(got.Rows), len(local.Rows))
	}
	for i := range got.Rows {
		if got.Rows[i].TotalPJ != local.Rows[i].TotalPJ || got.Rows[i].Rank != local.Rows[i].Rank {
			t.Errorf("row %d differs: server %+v local %+v", i, got.Rows[i], local.Rows[i])
		}
	}

	w = postJSON(t, srv, "/v1/study?format=csv", sp)
	if w.Code != http.StatusOK || w.Header().Get("Content-Type") != "text/csv" {
		t.Fatalf("csv status %d, type %q", w.Code, w.Header().Get("Content-Type"))
	}

	// Unknown preset is a 422.
	w = postJSON(t, srv, "/v1/study", StudySpec{Presets: []string{"nope"}})
	if w.Code != http.StatusUnprocessableEntity {
		t.Errorf("bad study status %d", w.Code)
	}
}
