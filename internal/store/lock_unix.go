//go:build unix

package store

import (
	"errors"
	"syscall"
)

// pidAlive reports whether a process with the pid might still be
// running. Signal 0 probes without signalling: ESRCH proves the pid is
// gone; EPERM proves it exists under another uid; anything else we treat
// as alive — breaking a live writer's lock corrupts a segment, so only
// a definitive "no such process" counts as dead.
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	if err == nil {
		return true
	}
	return !errors.Is(err, syscall.ESRCH)
}
