package store

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"photoloop/internal/mapper"
)

// This file is the wire format of results-over-the-wire sharding: the
// frame batch a remote worker POSTs to the coordinator, and the bloom key
// digest the coordinator serves so remote workers skip already-solved
// searches. Both reuse the store's own invariants — records are the same
// CRC-framed (key, EncodeBest payload) tuples the segment files hold, so
// a frame the coordinator accepts appends through the ordinary Store path
// and the merged view stays byte-for-byte what a shared-directory run
// would have produced.

// frameMagic opens every result-upload frame batch. Versioned like the
// segment header: a future format bumps the digit and old coordinators
// reject it whole instead of misparsing it.
var frameMagic = []byte("PHLFRAME1\n")

// maxFrameRecords bounds one batch — far above the persister's batching
// threshold, low enough that a corrupted count cannot drive a huge
// allocation.
const maxFrameRecords = 1 << 16

// Record is one search result on the wire: a content-address key and its
// decoded best. Equal keys always carry bit-identical payloads (the store
// invariant), which is what makes duplicate uploads harmless no-ops.
type Record struct {
	// Key is the search's content address.
	Key mapper.Key
	// Best is the search result the payload encodes.
	Best *mapper.Best
}

// EncodeFrames serializes a batch of records into one upload body:
// magic, record count, then per record the same key/length/CRC framing
// the segment files use around an EncodeBest payload.
func EncodeFrames(recs []Record) []byte {
	buf := frameHeader(len(recs), len(recs)*512)
	for i := range recs {
		buf = appendFrame(buf, recs[i].Key, EncodeBest(recs[i].Best))
	}
	return buf
}

// frameHeader starts an upload body: magic plus record count, with room
// reserved for sizeHint payload bytes.
func frameHeader(count, sizeHint int) []byte {
	buf := make([]byte, 0, len(frameMagic)+4+count*recordHeaderLen+sizeHint)
	buf = append(buf, frameMagic...)
	return binary.LittleEndian.AppendUint32(buf, uint32(count))
}

// appendFrame appends one framed record (key, length, CRC, payload) to an
// upload body under construction.
func appendFrame(buf []byte, k mapper.Key, payload []byte) []byte {
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[0:], k.Arch)
	binary.LittleEndian.PutUint64(hdr[8:], k.Layer)
	binary.LittleEndian.PutUint64(hdr[16:], k.Opts)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[28:], recordCRC(hdr[:28], payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeFrames parses an upload body. It is all-or-nothing: a bad magic,
// a torn record, a CRC mismatch, a payload DecodeBest rejects, or
// trailing bytes fail the whole batch with nothing accepted — a truncated
// POST body must never append a partial batch. It never panics on
// malformed input (fuzz-tested), and every accepted payload is canonical:
// re-encoding the decoded best reproduces the payload bytes exactly.
func DecodeFrames(body []byte) ([]Record, error) {
	if len(body) < len(frameMagic)+4 || string(body[:len(frameMagic)]) != string(frameMagic) {
		return nil, fmt.Errorf("store: result frame batch missing magic")
	}
	off := len(frameMagic)
	count := binary.LittleEndian.Uint32(body[off:])
	off += 4
	if count > maxFrameRecords {
		return nil, fmt.Errorf("store: frame batch claims %d records (cap %d)", count, maxFrameRecords)
	}
	recs := make([]Record, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(body)-off < recordHeaderLen {
			return nil, fmt.Errorf("store: frame batch truncated in record %d header", i)
		}
		hdr := body[off : off+recordHeaderLen]
		key := mapper.Key{
			Arch:  binary.LittleEndian.Uint64(hdr[0:]),
			Layer: binary.LittleEndian.Uint64(hdr[8:]),
			Opts:  binary.LittleEndian.Uint64(hdr[16:]),
		}
		plen := binary.LittleEndian.Uint32(hdr[24:])
		want := binary.LittleEndian.Uint32(hdr[28:])
		if plen > maxPayloadLen || int64(plen) > int64(len(body)-off-recordHeaderLen) {
			return nil, fmt.Errorf("store: frame batch truncated in record %d payload", i)
		}
		payload := body[off+recordHeaderLen : off+recordHeaderLen+int(plen)]
		if recordCRC(hdr[:28], payload) != want {
			return nil, fmt.Errorf("store: frame batch record %d failed CRC", i)
		}
		best, err := DecodeBest(payload)
		if err != nil {
			return nil, fmt.Errorf("store: frame batch record %d payload: %w", i, err)
		}
		recs = append(recs, Record{Key: key, Best: best})
		off += recordHeaderLen + int(plen)
	}
	if off != len(body) {
		return nil, fmt.Errorf("store: %d trailing bytes after frame batch", len(body)-off)
	}
	return recs, nil
}

// digestMagic opens an encoded key digest.
var digestMagic = []byte("PHLDIGEST1\n")

// digestProbes is the bloom filter's hash-probe count. With the sizing
// rule below (≥16 bits per key) six probes keep the false-positive rate
// under ~1% — and a false positive only costs one 404'd fetch before the
// worker recomputes, never a wrong answer.
const digestProbes = 6

// maxDigestBits bounds a decoded digest's bitset (64 MiB of bits covers
// tens of millions of keys — far past any real store).
const maxDigestBits = 1 << 29

// KeyDigest is a bloom filter over a store's key set: the compact
// warm-key summary a coordinator serves to remote workers. Has never
// reports a present key absent; it may rarely report an absent key
// present, which the worker resolves with a single-key fetch (404 =
// recompute). Construction is order-independent, so digests built from
// any enumeration of the same key set are byte-identical.
type KeyDigest struct {
	bits []uint64
	mask uint64 // bit-count minus one (bit count is a power of two)
	n    int    // keys added (advisory, carried on the wire)
}

// NewKeyDigest sizes a digest for n keys: the bit count is the next power
// of two at or above max(1024, 16n), giving ≤1/16 load before probing.
func NewKeyDigest(n int) *KeyDigest {
	want := uint64(1024)
	if n > 0 && uint64(n) > want/16 {
		want = uint64(n) * 16
	}
	mbits := uint64(1) << bits.Len64(want-1)
	if mbits > maxDigestBits {
		mbits = maxDigestBits
	}
	return &KeyDigest{bits: make([]uint64, mbits/64), mask: mbits - 1}
}

// digestHashes derives the double-hashing pair from a key's three
// fingerprints. The fingerprints are already avalanched FNV-64 values;
// mixing them with distinct rotations and forcing h2 odd makes the probe
// stride coprime with the power-of-two bit count.
func digestHashes(k mapper.Key) (h1, h2 uint64) {
	h1 = k.Arch ^ bits.RotateLeft64(k.Layer, 21) ^ bits.RotateLeft64(k.Opts, 43)
	h2 = k.Layer ^ bits.RotateLeft64(k.Opts, 17) ^ bits.RotateLeft64(k.Arch, 51)
	return h1, h2 | 1
}

// Add inserts a key.
func (d *KeyDigest) Add(k mapper.Key) {
	h1, h2 := digestHashes(k)
	for i := uint64(0); i < digestProbes; i++ {
		bit := (h1 + i*h2) & d.mask
		d.bits[bit/64] |= 1 << (bit % 64)
	}
	d.n++
}

// Has reports whether the key may be present (definitely-absent keys
// report false; present keys always report true).
func (d *KeyDigest) Has(k mapper.Key) bool {
	h1, h2 := digestHashes(k)
	for i := uint64(0); i < digestProbes; i++ {
		bit := (h1 + i*h2) & d.mask
		if d.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Count returns how many keys were added (as carried on the wire — a
// worker's hint of how warm the coordinator store is, not a set size).
func (d *KeyDigest) Count() int { return d.n }

// Encode serializes the digest: magic, key count, bit count, bitset
// words, all little-endian.
func (d *KeyDigest) Encode() []byte {
	buf := make([]byte, 0, len(digestMagic)+8+8+len(d.bits)*8)
	buf = append(buf, digestMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.n))
	buf = binary.LittleEndian.AppendUint64(buf, d.mask+1) // bit count
	for _, w := range d.bits {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// DecodeKeyDigest parses an encoded digest, rejecting malformed input
// (bad magic, non-power-of-two or oversized bit count, truncated or
// oversized bitset) without panicking.
func DecodeKeyDigest(b []byte) (*KeyDigest, error) {
	if len(b) < len(digestMagic)+16 || string(b[:len(digestMagic)]) != string(digestMagic) {
		return nil, fmt.Errorf("store: key digest missing magic")
	}
	off := len(digestMagic)
	n := binary.LittleEndian.Uint64(b[off:])
	mbits := binary.LittleEndian.Uint64(b[off+8:])
	off += 16
	if mbits == 0 || mbits&(mbits-1) != 0 || mbits > maxDigestBits || mbits%64 != 0 {
		return nil, fmt.Errorf("store: key digest bit count %d invalid", mbits)
	}
	if uint64(len(b)-off) != mbits/8 {
		return nil, fmt.Errorf("store: key digest bitset is %d bytes, want %d", len(b)-off, mbits/8)
	}
	d := &KeyDigest{bits: make([]uint64, mbits/64), mask: mbits - 1, n: int(n)}
	for i := range d.bits {
		d.bits[i] = binary.LittleEndian.Uint64(b[off+i*8:])
	}
	return d, nil
}
