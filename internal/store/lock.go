package store

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// acquireLock claims an advisory pid lock file, the store's one-writer-
// per-segment guarantee. The claim is an O_EXCL create — atomic on every
// filesystem we care about — with this process's pid as the contents. A
// lock that already exists is probed: if its owner is provably dead the
// lock is stale (a crashed writer never unlinks) and is broken and
// re-claimed; if the owner may be alive the claim fails with a
// diagnostic naming the pid, and the caller moves on to the next
// segment.
func acquireLock(path string) error {
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
		if err == nil {
			_, werr := fmt.Fprintf(f, "%d\n", os.Getpid())
			cerr := f.Close()
			if werr != nil || cerr != nil {
				os.Remove(path)
				return fmt.Errorf("store: writing lock %s: %w", path, werr)
			}
			return nil
		}
		if !os.IsExist(err) {
			return fmt.Errorf("store: %w", err)
		}
		buf, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // holder released between our create and read; retry
			}
			return fmt.Errorf("store: %w", rerr)
		}
		pid, perr := strconv.Atoi(strings.TrimSpace(string(buf)))
		if perr == nil && pid > 0 && !pidAlive(pid) {
			// Stale: the recorded owner is gone. Break the lock and race
			// for it again — the O_EXCL create arbitrates if several
			// processes break it at once.
			os.Remove(path)
			continue
		}
		holder := strings.TrimSpace(string(buf))
		if holder == "" {
			holder = "unknown pid" // lock mid-write by another process
		} else {
			holder = "pid " + holder
		}
		return fmt.Errorf("store: segment is locked by %s (%s)", holder, path)
	}
	return fmt.Errorf("store: lock %s contested; giving up", path)
}

// releaseLock drops an advisory lock taken by acquireLock. Best-effort:
// a lock that can't be removed is eventually broken as stale once this
// process exits.
func releaseLock(path string) {
	os.Remove(path)
}
