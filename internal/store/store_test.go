package store

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/mapper"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/workload"
)

func testArch(t *testing.T) *arch.Arch {
	t.Helper()
	lib := components.NewLibrary()
	mk := func(class, name string, p components.Params) {
		c, err := components.Build(class, name, p)
		if err != nil {
			t.Fatal(err)
		}
		lib.MustAdd(c)
	}
	mk("dram", "DRAM", components.Params{"pj_per_bit": 8})
	mk("sram", "Buf", components.Params{"capacity_bits": float64(1 << 20), "access_bits": 8})
	mk("regfile", "Reg", components.Params{"access_bits": 8})
	a := &arch.Arch{
		Name: "storable", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Buf", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
				CapacityBits: 1 << 20,
				Spatial:      []arch.SpatialFactor{arch.Choice(4, workload.DimK, workload.DimC)},
			},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg", CapacityBits: 2048},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestDiskHitBitIdentical is the store's core equivalence property
// (the TestRunMatchesDirectEvalNetwork pattern, one tier down): a search
// served from a cold store — a fresh process's cache whose memory tier
// has never seen the key — is bit-identical to the direct computation.
func TestDiskHitBitIdentical(t *testing.T) {
	a := testArch(t)
	l := workload.NewConv("conv", 1, 16, 8, 8, 8, 3, 3, 1, 1)
	opts := mapper.Options{Budget: 200, Seed: 1, Workers: 2}

	s, err := mapper.NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s.Search(&l, opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := mapper.NewCache()
	cache.SetPersister(st)
	opts.Cache = cache
	warm, err := s.Search(&l, opts) // computed, written through
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": new store handle, new cache, new session.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Recovered() != 0 {
		t.Fatalf("clean log reported %d recovered bytes", st2.Recovered())
	}
	cache2 := mapper.NewCache()
	cache2.SetPersister(st2)
	s2, err := mapper.NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = cache2
	fromDisk, err := s2.Search(&l, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := cache2.TierStats()
	if ts.DiskHits != 1 || ts.Misses != 0 {
		t.Fatalf("tier stats = %+v, want 1 disk hit and 0 misses", ts)
	}

	for _, got := range []*mapper.Best{warm, fromDisk} {
		if !reflect.DeepEqual(got.Result, direct.Result) {
			t.Errorf("result diverged from direct computation:\n got %+v\nwant %+v", got.Result, direct.Result)
		}
		if !reflect.DeepEqual(got.Mapping, direct.Mapping) {
			t.Errorf("mapping diverged:\n got %+v\nwant %+v", got.Mapping, direct.Mapping)
		}
		if got.Evaluations != direct.Evaluations || got.Stats != direct.Stats {
			t.Errorf("accounting diverged: %d/%+v vs %d/%+v",
				got.Evaluations, got.Stats, direct.Evaluations, direct.Stats)
		}
	}
}

// randomBest builds a structurally arbitrary Best exercising every codec
// field, including floats whose round-trip would fail under any decimal
// formatting (the codec carries IEEE bits).
func randomBest(rng *rand.Rand) *mapper.Best {
	rs := func() string {
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return string(b)
	}
	rf := func() float64 {
		switch rng.Intn(8) {
		case 0:
			return 0
		case 1:
			return math.Inf(1)
		case 2:
			return math.SmallestNonzeroFloat64
		case 3:
			return -1.0 / 3.0
		default:
			return math.Float64frombits(rng.Uint64() &^ (0x7FF << 52)) // finite
		}
	}
	rp := func() workload.Point {
		var p workload.Point
		for i := range p {
			p[i] = rng.Intn(1 << 16)
		}
		return p
	}
	m := &mapping.Mapping{Levels: make([]mapping.LevelMapping, rng.Intn(5))}
	for i := range m.Levels {
		lm := &m.Levels[i]
		lm.Temporal = rp()
		lm.FreeSpatial = rp()
		if rng.Intn(4) > 0 {
			lm.Perm = make([]workload.Dim, rng.Intn(int(workload.NumDims)+1))
			for j := range lm.Perm {
				lm.Perm[j] = workload.Dim(rng.Intn(int(workload.NumDims)))
			}
		}
		if rng.Intn(2) > 0 {
			lm.SpatialChoice = make([]workload.Dim, rng.Intn(3))
			for j := range lm.SpatialChoice {
				lm.SpatialChoice[j] = workload.Dim(rng.Intn(int(workload.NumDims)))
			}
		}
	}
	r := &model.Result{
		Layer: rs(), MACs: rng.Int63(), PaddedMACs: rng.Int63(),
		ComputeCycles: rng.Int63(), Cycles: rf(), BottleneckLevel: rs(),
		Utilization: rf(), MACsPerCycle: rf(), TotalPJ: rf(), AreaUM2: rf(),
	}
	for i := rng.Intn(4); i > 0; i-- {
		r.Usage = append(r.Usage, model.Usage{
			Level: rs(), LevelIndex: rng.Intn(8), Tensor: workload.Tensor(rng.Intn(3)),
			TileElems: rng.Int63(), Instances: rng.Int63(),
			Fills: rf(), FillsDistinct: rf(), Reads: rf(), Writes: rf(),
			Updates: rf(), Arrivals: rf(), Drains: rf(), DrainsMerged: rf(),
		})
	}
	for i := rng.Intn(4); i > 0; i-- {
		r.Energy = append(r.Energy, model.EnergyItem{
			Level: rs(), Component: rs(), Class: rs(), Action: rs(), Tensor: rs(),
			Count: rf(), TotalPJ: rf(),
		})
	}
	return &mapper.Best{
		Mapping: m, Result: r, Evaluations: rng.Intn(1 << 20),
		Stats: mapper.SearchStats{
			Pruned: rng.Intn(1 << 16), DeltaEvals: rng.Intn(1 << 16),
			FullEvals: rng.Intn(1 << 16), Duplicates: rng.Intn(1 << 16),
			Invalid: rng.Intn(1 << 16), WarmStartEvals: rng.Intn(1 << 16),
		},
	}
}

// TestCodecRoundTripProperty: decode(encode(x)) deep-equals x, and the
// re-encoding is byte-stable, over randomized structures.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		want := randomBest(rng)
		buf := EncodeBest(want)
		got, err := DecodeBest(buf)
		if err != nil {
			t.Fatalf("iter %d: decode failed: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: round trip diverged:\n got %#v\nwant %#v", i, got, want)
		}
		if again := EncodeBest(got); !bytes.Equal(again, buf) {
			t.Fatalf("iter %d: re-encoding not byte-stable", i)
		}
	}
}

// TestDecodeRejectsGarbage: truncations and bit flips of a valid payload
// must decode to an error or to an equally valid structure — never panic
// (the fuzz target extends this; this is the deterministic floor).
func TestDecodeRejectsGarbage(t *testing.T) {
	buf := EncodeBest(randomBest(rand.New(rand.NewSource(3))))
	for cut := 0; cut < len(buf); cut += 3 {
		if _, err := DecodeBest(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := DecodeBest(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	bad := append([]byte(nil), buf...)
	bad[0] = 99 // unknown codec version
	if _, err := DecodeBest(bad); err == nil {
		t.Fatal("unknown version decoded without error")
	}
}

// storeBest persists n synthetic records and returns their keys.
func storeBests(t *testing.T, st *Store, n int, seed int64) []mapper.Key {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]mapper.Key, n)
	for i := range keys {
		keys[i] = mapper.Key{Arch: rng.Uint64(), Layer: rng.Uint64(), Opts: rng.Uint64()}
		if err := st.Store(keys[i], randomBest(rng)); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// TestCorruptedRecordDetectedAndDropped: a bit flip inside the log makes
// the affected suffix a miss (recompute), never a wrong answer, and the
// store keeps accepting writes afterward.
func TestCorruptedRecordDetectedAndDropped(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := storeBests(t, st, 4, 11)
	wantFirst, ok := st.Load(keys[0])
	if !ok {
		t.Fatal("stored key missing")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, logName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40 // flip a bit past the first record
	if err := os.WriteFile(path, buf, 0o666); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Recovered() == 0 {
		t.Fatal("corruption not detected")
	}
	if st2.Len() >= 4 {
		t.Fatalf("store kept %d records across a corrupted tail", st2.Len())
	}
	if got, ok := st2.Load(keys[0]); !ok {
		t.Fatal("first (intact) record lost")
	} else if !reflect.DeepEqual(got, wantFirst) {
		t.Fatal("first record changed across recovery")
	}
	if _, ok := st2.Load(keys[3]); ok {
		t.Fatal("record past the corruption served — must miss and recompute")
	}
	// Recompute path: the dropped key can be stored and served again.
	b := randomBest(rand.New(rand.NewSource(5)))
	if err := st2.Store(keys[3], b); err != nil {
		t.Fatal(err)
	}
	if got, ok := st2.Load(keys[3]); !ok || !reflect.DeepEqual(got, b) {
		t.Fatal("re-stored record not served intact")
	}
}

// TestTruncatedTailRecovered: a torn final record (crash mid-append) is
// dropped on open; everything before it survives.
func TestTruncatedTailRecovered(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := storeBests(t, st, 3, 21)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, logName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("store has %d records after torn tail, want 2", st2.Len())
	}
	for _, k := range keys[:2] {
		if _, ok := st2.Load(k); !ok {
			t.Fatalf("intact record %v lost", k)
		}
	}
	if _, ok := st2.Load(keys[2]); ok {
		t.Fatal("torn record served")
	}
}

// TestForeignFileRefused: Open must not reinitialize a file that is not a
// photoloop store.
func TestForeignFileRefused(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, logName)
	if err := os.WriteFile(path, []byte("precious user data"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("foreign file accepted")
	}
	buf, err := os.ReadFile(path)
	if err != nil || string(buf) != "precious user data" {
		t.Fatalf("foreign file modified: %q, %v", buf, err)
	}
}

// TestStoreDedupesKeys: storing an existing key is a no-op (content
// addressing — equal keys mean equal results).
func TestStoreDedupesKeys(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	k := mapper.Key{Arch: 1, Layer: 2, Opts: 3}
	first := randomBest(rand.New(rand.NewSource(1)))
	if err := st.Store(k, first); err != nil {
		t.Fatal(err)
	}
	if err := st.Store(k, randomBest(rand.New(rand.NewSource(2)))); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("len = %d, want 1", st.Len())
	}
	if got, ok := st.Load(k); !ok || !reflect.DeepEqual(got, first) {
		t.Fatal("first write must win")
	}
}
