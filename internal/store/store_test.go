package store

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/mapper"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/workload"
)

func testArch(t *testing.T) *arch.Arch {
	t.Helper()
	lib := components.NewLibrary()
	mk := func(class, name string, p components.Params) {
		c, err := components.Build(class, name, p)
		if err != nil {
			t.Fatal(err)
		}
		lib.MustAdd(c)
	}
	mk("dram", "DRAM", components.Params{"pj_per_bit": 8})
	mk("sram", "Buf", components.Params{"capacity_bits": float64(1 << 20), "access_bits": 8})
	mk("regfile", "Reg", components.Params{"access_bits": 8})
	a := &arch.Arch{
		Name: "storable", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Buf", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
				CapacityBits: 1 << 20,
				Spatial:      []arch.SpatialFactor{arch.Choice(4, workload.DimK, workload.DimC)},
			},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg", CapacityBits: 2048},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestDiskHitBitIdentical is the store's core equivalence property
// (the TestRunMatchesDirectEvalNetwork pattern, one tier down): a search
// served from a cold store — a fresh process's cache whose memory tier
// has never seen the key — is bit-identical to the direct computation.
func TestDiskHitBitIdentical(t *testing.T) {
	a := testArch(t)
	l := workload.NewConv("conv", 1, 16, 8, 8, 8, 3, 3, 1, 1)
	opts := mapper.Options{Budget: 200, Seed: 1, Workers: 2}

	s, err := mapper.NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s.Search(&l, opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := mapper.NewCache()
	cache.SetPersister(st)
	opts.Cache = cache
	warm, err := s.Search(&l, opts) // computed, written through
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": new store handle, new cache, new session.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Recovered() != 0 {
		t.Fatalf("clean log reported %d recovered bytes", st2.Recovered())
	}
	cache2 := mapper.NewCache()
	cache2.SetPersister(st2)
	s2, err := mapper.NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = cache2
	fromDisk, err := s2.Search(&l, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := cache2.TierStats()
	if ts.DiskHits != 1 || ts.Misses != 0 {
		t.Fatalf("tier stats = %+v, want 1 disk hit and 0 misses", ts)
	}

	for _, got := range []*mapper.Best{warm, fromDisk} {
		if !reflect.DeepEqual(got.Result, direct.Result) {
			t.Errorf("result diverged from direct computation:\n got %+v\nwant %+v", got.Result, direct.Result)
		}
		if !reflect.DeepEqual(got.Mapping, direct.Mapping) {
			t.Errorf("mapping diverged:\n got %+v\nwant %+v", got.Mapping, direct.Mapping)
		}
		if got.Evaluations != direct.Evaluations || got.Stats != direct.Stats {
			t.Errorf("accounting diverged: %d/%+v vs %d/%+v",
				got.Evaluations, got.Stats, direct.Evaluations, direct.Stats)
		}
	}
}

// randomBest builds a structurally arbitrary Best exercising every codec
// field, including floats whose round-trip would fail under any decimal
// formatting (the codec carries IEEE bits).
func randomBest(rng *rand.Rand) *mapper.Best {
	rs := func() string {
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return string(b)
	}
	rf := func() float64 {
		switch rng.Intn(8) {
		case 0:
			return 0
		case 1:
			return math.Inf(1)
		case 2:
			return math.SmallestNonzeroFloat64
		case 3:
			return -1.0 / 3.0
		default:
			return math.Float64frombits(rng.Uint64() &^ (0x7FF << 52)) // finite
		}
	}
	rp := func() workload.Point {
		var p workload.Point
		for i := range p {
			p[i] = rng.Intn(1 << 16)
		}
		return p
	}
	m := &mapping.Mapping{Levels: make([]mapping.LevelMapping, rng.Intn(5))}
	for i := range m.Levels {
		lm := &m.Levels[i]
		lm.Temporal = rp()
		lm.FreeSpatial = rp()
		if rng.Intn(4) > 0 {
			lm.Perm = make([]workload.Dim, rng.Intn(int(workload.NumDims)+1))
			for j := range lm.Perm {
				lm.Perm[j] = workload.Dim(rng.Intn(int(workload.NumDims)))
			}
		}
		if rng.Intn(2) > 0 {
			lm.SpatialChoice = make([]workload.Dim, rng.Intn(3))
			for j := range lm.SpatialChoice {
				lm.SpatialChoice[j] = workload.Dim(rng.Intn(int(workload.NumDims)))
			}
		}
	}
	r := &model.Result{
		Layer: rs(), MACs: rng.Int63(), PaddedMACs: rng.Int63(),
		ComputeCycles: rng.Int63(), Cycles: rf(), BottleneckLevel: rs(),
		Utilization: rf(), MACsPerCycle: rf(), TotalPJ: rf(), AreaUM2: rf(),
	}
	for i := rng.Intn(4); i > 0; i-- {
		r.Usage = append(r.Usage, model.Usage{
			Level: rs(), LevelIndex: rng.Intn(8), Tensor: workload.Tensor(rng.Intn(3)),
			TileElems: rng.Int63(), Instances: rng.Int63(),
			Fills: rf(), FillsDistinct: rf(), Reads: rf(), Writes: rf(),
			Updates: rf(), Arrivals: rf(), Drains: rf(), DrainsMerged: rf(),
		})
	}
	for i := rng.Intn(4); i > 0; i-- {
		r.Energy = append(r.Energy, model.EnergyItem{
			Level: rs(), Component: rs(), Class: rs(), Action: rs(), Tensor: rs(),
			Count: rf(), TotalPJ: rf(),
		})
	}
	return &mapper.Best{
		Mapping: m, Result: r, Evaluations: rng.Intn(1 << 20),
		Stats: mapper.SearchStats{
			Pruned: rng.Intn(1 << 16), DeltaEvals: rng.Intn(1 << 16),
			FullEvals: rng.Intn(1 << 16), Duplicates: rng.Intn(1 << 16),
			Invalid: rng.Intn(1 << 16), WarmStartEvals: rng.Intn(1 << 16),
		},
	}
}

// TestCodecRoundTripProperty: decode(encode(x)) deep-equals x, and the
// re-encoding is byte-stable, over randomized structures.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		want := randomBest(rng)
		buf := EncodeBest(want)
		got, err := DecodeBest(buf)
		if err != nil {
			t.Fatalf("iter %d: decode failed: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: round trip diverged:\n got %#v\nwant %#v", i, got, want)
		}
		if again := EncodeBest(got); !bytes.Equal(again, buf) {
			t.Fatalf("iter %d: re-encoding not byte-stable", i)
		}
	}
}

// TestDecodeRejectsGarbage: truncations and bit flips of a valid payload
// must decode to an error or to an equally valid structure — never panic
// (the fuzz target extends this; this is the deterministic floor).
func TestDecodeRejectsGarbage(t *testing.T) {
	buf := EncodeBest(randomBest(rand.New(rand.NewSource(3))))
	for cut := 0; cut < len(buf); cut += 3 {
		if _, err := DecodeBest(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := DecodeBest(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	bad := append([]byte(nil), buf...)
	bad[0] = 99 // unknown codec version
	if _, err := DecodeBest(bad); err == nil {
		t.Fatal("unknown version decoded without error")
	}
}

// storeBest persists n synthetic records and returns their keys.
func storeBests(t *testing.T, st *Store, n int, seed int64) []mapper.Key {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]mapper.Key, n)
	for i := range keys {
		keys[i] = mapper.Key{Arch: rng.Uint64(), Layer: rng.Uint64(), Opts: rng.Uint64()}
		if err := st.Store(keys[i], randomBest(rng)); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// TestCorruptedRecordDetectedAndDropped: a bit flip inside the log makes
// the affected suffix a miss (recompute), never a wrong answer, and the
// store keeps accepting writes afterward.
func TestCorruptedRecordDetectedAndDropped(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := storeBests(t, st, 4, 11)
	wantFirst, ok := st.Load(keys[0])
	if !ok {
		t.Fatal("stored key missing")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, primaryName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40 // flip a bit past the first record
	if err := os.WriteFile(path, buf, 0o666); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Recovered() == 0 {
		t.Fatal("corruption not detected")
	}
	if st2.Len() >= 4 {
		t.Fatalf("store kept %d records across a corrupted tail", st2.Len())
	}
	if got, ok := st2.Load(keys[0]); !ok {
		t.Fatal("first (intact) record lost")
	} else if !reflect.DeepEqual(got, wantFirst) {
		t.Fatal("first record changed across recovery")
	}
	if _, ok := st2.Load(keys[3]); ok {
		t.Fatal("record past the corruption served — must miss and recompute")
	}
	// Recompute path: the dropped key can be stored and served again.
	b := randomBest(rand.New(rand.NewSource(5)))
	if err := st2.Store(keys[3], b); err != nil {
		t.Fatal(err)
	}
	if got, ok := st2.Load(keys[3]); !ok || !reflect.DeepEqual(got, b) {
		t.Fatal("re-stored record not served intact")
	}
}

// TestTruncatedTailRecovered: a torn final record (crash mid-append) is
// dropped on open; everything before it survives.
func TestTruncatedTailRecovered(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := storeBests(t, st, 3, 21)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, primaryName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("store has %d records after torn tail, want 2", st2.Len())
	}
	for _, k := range keys[:2] {
		if _, ok := st2.Load(k); !ok {
			t.Fatalf("intact record %v lost", k)
		}
	}
	if _, ok := st2.Load(keys[2]); ok {
		t.Fatal("torn record served")
	}
}

// TestForeignFileRefused: Open must not reinitialize a file that is not a
// photoloop store.
func TestForeignFileRefused(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, primaryName)
	if err := os.WriteFile(path, []byte("precious user data"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("foreign file accepted")
	}
	buf, err := os.ReadFile(path)
	if err != nil || string(buf) != "precious user data" {
		t.Fatalf("foreign file modified: %q, %v", buf, err)
	}
}

// TestStoreDedupesKeys: storing an existing key is a no-op (content
// addressing — equal keys mean equal results).
func TestStoreDedupesKeys(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	k := mapper.Key{Arch: 1, Layer: 2, Opts: 3}
	first := randomBest(rand.New(rand.NewSource(1)))
	if err := st.Store(k, first); err != nil {
		t.Fatal(err)
	}
	if err := st.Store(k, randomBest(rand.New(rand.NewSource(2)))); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("len = %d, want 1", st.Len())
	}
	if got, ok := st.Load(k); !ok || !reflect.DeepEqual(got, first) {
		t.Fatal("first write must win")
	}
}

// TestMultiWriterSegments: two handles on one directory claim distinct
// segments, write disjoint keys, and a fresh Open merges both.
func TestMultiWriterSegments(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.SegmentName() == b.SegmentName() {
		t.Fatalf("both writers claimed %s", a.SegmentName())
	}
	keysA := storeBests(t, a, 3, 101)
	keysB := storeBests(t, b, 3, 202)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	merged, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if merged.Len() != 6 {
		t.Fatalf("merged store has %d keys, want 6", merged.Len())
	}
	if merged.Segments() < 2 {
		t.Fatalf("merged store spans %d segments, want >= 2", merged.Segments())
	}
	for _, k := range append(keysA, keysB...) {
		if _, ok := merged.Load(k); !ok {
			t.Fatalf("key %v lost in merge", k)
		}
	}
}

// TestRefreshSeesOtherWriters: records appended by a concurrent writer
// become visible after Refresh without reopening — the coordinator's view
// of worker progress.
func TestRefreshSeesOtherWriters(t *testing.T) {
	dir := t.TempDir()
	coord, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	worker, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := storeBests(t, worker, 4, 303)
	if _, ok := coord.Load(keys[0]); ok {
		t.Fatal("unrefreshed handle served a record appended after its scan")
	}
	if err := coord.Refresh(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, ok := coord.Load(k); !ok {
			t.Fatalf("refreshed handle misses %v", k)
		}
	}
	// More appends to the already-known segment: Refresh resumes at the
	// previous frontier, not from scratch.
	more := storeBests(t, worker, 2, 404)
	if err := coord.Refresh(); err != nil {
		t.Fatal(err)
	}
	for _, k := range more {
		if _, ok := coord.Load(k); !ok {
			t.Fatalf("incremental refresh misses %v", k)
		}
	}
	if err := worker.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFirstWriteWinsAcrossSegments: the same key written by two writers
// resolves to the earlier segment's record deterministically.
func TestFirstWriteWinsAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := mapper.Key{Arch: 9, Layer: 9, Opts: 9}
	inPrimary := randomBest(rand.New(rand.NewSource(1)))
	inSecond := randomBest(rand.New(rand.NewSource(2)))
	// Each handle believes the key absent (neither refreshed), so both
	// append — the racing-writers case.
	if err := a.Store(k, inPrimary); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(k, inSecond); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b.Close()

	merged, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if merged.Len() != 1 {
		t.Fatalf("duplicate key not deduped: len = %d", merged.Len())
	}
	got, ok := merged.Load(k)
	if !ok {
		t.Fatal("key lost")
	}
	if !reflect.DeepEqual(got, inPrimary) {
		t.Fatal("merge did not prefer the first segment's record")
	}
}

// TestStaleLockReclaimed: a lock file whose pid is dead (simulated with
// an impossible pid) must not block Open from claiming the primary.
func TestStaleLockReclaimed(t *testing.T) {
	dir := t.TempDir()
	lock := filepath.Join(dir, primaryName+lockSuffix)
	if err := os.WriteFile(lock, []byte("999999999\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.SegmentName() != primaryName {
		t.Fatalf("stale lock pushed writer to %s, want %s", st.SegmentName(), primaryName)
	}
	buf, err := os.ReadFile(lock)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(buf)) != strconv.Itoa(os.Getpid()) {
		t.Fatalf("reclaimed lock holds %q, want our pid", buf)
	}
}

// TestLiveLockSkipped: a lock held by a live pid (our own) diverts a new
// writer to the next segment, and the skip diagnostic names the pid.
func TestLiveLockSkipped(t *testing.T) {
	dir := t.TempDir()
	lock := filepath.Join(dir, primaryName+lockSuffix)
	if err := acquireLock(lock); err != nil {
		t.Fatal(err)
	}
	defer releaseLock(lock)
	if err := acquireLock(lock); err == nil {
		t.Fatal("second acquire of a live lock succeeded")
	} else if !strings.Contains(err.Error(), strconv.Itoa(os.Getpid())) {
		t.Fatalf("lock error %q does not name the holding pid", err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.SegmentName() == primaryName {
		t.Fatal("writer claimed a segment whose lock is held")
	}
}

// TestForeignSegmentCorruptionIsolated: corruption inside another
// writer's segment costs only that segment's suffix — the file is never
// truncated (it isn't ours), and our own segment keeps working.
func TestForeignSegmentCorruptionIsolated(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	second := b.SegmentName()
	keysB := storeBests(t, b, 4, 505)
	a.Close()
	b.Close()

	path := filepath.Join(dir, second)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(path, buf, 0o666); err != nil {
		t.Fatal(err)
	}

	st, err := Open(dir) // claims the primary; the corrupted file is foreign
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.SegmentName() != primaryName {
		t.Fatalf("writer claimed %s, want primary", st.SegmentName())
	}
	if st.Recovered() != 0 {
		t.Fatal("foreign corruption charged to own-segment recovery")
	}
	if _, ok := st.Load(keysB[0]); !ok {
		t.Fatal("record before the foreign corruption lost")
	}
	if _, ok := st.Load(keysB[3]); ok {
		t.Fatal("record past the foreign corruption served")
	}
	if info, err := os.Stat(path); err != nil || info.Size() != int64(len(buf)) {
		t.Fatalf("foreign segment truncated: %v bytes, want %d", info.Size(), len(buf))
	}
	// The dropped keys recompute into our own segment and serve again.
	fresh := randomBest(rand.New(rand.NewSource(6)))
	if err := st.Store(keysB[3], fresh); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Load(keysB[3]); !ok || !reflect.DeepEqual(got, fresh) {
		t.Fatal("recomputed record not served")
	}
}
