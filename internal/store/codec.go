package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"photoloop/internal/mapper"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/workload"
)

// codecVersion is the payload format version. Decoders reject unknown
// versions instead of guessing: a store written by a future format is a
// miss (recompute), never a wrong answer.
const codecVersion = 1

// Decoder sanity caps. A valid record is a single layer's best mapping
// and result — a few kilobytes; anything claiming more is corruption and
// must fail fast instead of allocating attacker-chosen amounts.
const (
	maxStringLen = 1 << 16
	maxSliceLen  = 1 << 20
)

// EncodeBest serializes a search result into the store's versioned binary
// payload. Every float is written as its IEEE-754 bit pattern, so a
// decoded result is bit-identical to the encoded one — the property that
// makes disk hits indistinguishable from fresh computation.
func EncodeBest(b *mapper.Best) []byte {
	e := &encoder{buf: make([]byte, 0, 1024)}
	e.byte(codecVersion)
	e.mapping(b.Mapping)
	e.result(b.Result)
	e.i64(int64(b.Evaluations))
	e.i64(int64(b.Stats.Pruned))
	e.i64(int64(b.Stats.DeltaEvals))
	e.i64(int64(b.Stats.FullEvals))
	e.i64(int64(b.Stats.Duplicates))
	e.i64(int64(b.Stats.Invalid))
	e.i64(int64(b.Stats.WarmStartEvals))
	return e.buf
}

// DecodeBest parses a payload written by EncodeBest. It never panics on
// malformed input (fuzz-tested): any framing violation, length overflow or
// trailing garbage returns an error, which the cache treats as a miss.
func DecodeBest(buf []byte) (*mapper.Best, error) {
	d := &decoder{buf: buf}
	if v := d.byte(); d.err == nil && v != codecVersion {
		return nil, fmt.Errorf("store: unknown codec version %d (want %d)", v, codecVersion)
	}
	b := &mapper.Best{}
	b.Mapping = d.mapping()
	b.Result = d.result()
	b.Evaluations = int(d.i64())
	b.Stats.Pruned = int(d.i64())
	b.Stats.DeltaEvals = int(d.i64())
	b.Stats.FullEvals = int(d.i64())
	b.Stats.Duplicates = int(d.i64())
	b.Stats.Invalid = int(d.i64())
	b.Stats.WarmStartEvals = int(d.i64())
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("store: %d trailing bytes after record", len(d.buf)-d.off)
	}
	return b, nil
}

// encoder appends little-endian primitives to a growing buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) byte(v byte) { e.buf = append(e.buf, v) }

func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

func (e *encoder) i64(v int64) { e.u64(uint64(v)) }

func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) point(p workload.Point) {
	for _, v := range p {
		e.i64(int64(v))
	}
}

// dims encodes a Dim slice with nil-ness preserved (0 = nil, n+1 = length
// n), so decode(encode(m)) is deep-equal to m, not just equivalent.
func (e *encoder) dims(ds []workload.Dim) {
	if ds == nil {
		e.u32(0)
		return
	}
	e.u32(uint32(len(ds)) + 1)
	for _, d := range ds {
		e.byte(byte(d))
	}
}

func (e *encoder) mapping(m *mapping.Mapping) {
	e.u32(uint32(len(m.Levels)))
	for i := range m.Levels {
		lm := &m.Levels[i]
		e.point(lm.Temporal)
		e.dims(lm.Perm)
		e.dims(lm.SpatialChoice)
		e.point(lm.FreeSpatial)
	}
}

func (e *encoder) result(r *model.Result) {
	e.str(r.Layer)
	e.i64(r.MACs)
	e.i64(r.PaddedMACs)
	e.i64(r.ComputeCycles)
	e.f64(r.Cycles)
	e.str(r.BottleneckLevel)
	e.f64(r.Utilization)
	e.f64(r.MACsPerCycle)
	e.u32(uint32(len(r.Usage)))
	for i := range r.Usage {
		u := &r.Usage[i]
		e.str(u.Level)
		e.i64(int64(u.LevelIndex))
		e.byte(byte(u.Tensor))
		e.i64(u.TileElems)
		e.i64(u.Instances)
		e.f64(u.Fills)
		e.f64(u.FillsDistinct)
		e.f64(u.Reads)
		e.f64(u.Writes)
		e.f64(u.Updates)
		e.f64(u.Arrivals)
		e.f64(u.Drains)
		e.f64(u.DrainsMerged)
	}
	e.u32(uint32(len(r.Energy)))
	for i := range r.Energy {
		en := &r.Energy[i]
		e.str(en.Level)
		e.str(en.Component)
		e.str(en.Class)
		e.str(en.Action)
		e.str(en.Tensor)
		e.f64(en.Count)
		e.f64(en.TotalPJ)
	}
	e.f64(r.TotalPJ)
	e.f64(r.AreaUM2)
}

// decoder reads little-endian primitives with sticky error handling:
// after the first framing violation every further read returns zero
// values and the error survives to the caller.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("store: "+format, args...)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("record truncated at offset %d (need %d bytes)", d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := d.u32()
	if n > maxStringLen {
		d.fail("string length %d exceeds cap %d", n, maxStringLen)
		return ""
	}
	return string(d.take(int(n)))
}

// sliceLen validates an element count against both the cap and the bytes
// actually remaining (elemSize is a lower bound per element), so a
// corrupted length can never drive a huge allocation.
func (d *decoder) sliceLen(n uint32, elemSize int) int {
	if d.err != nil {
		return 0
	}
	if n > maxSliceLen || int(n)*elemSize > len(d.buf)-d.off {
		d.fail("slice length %d impossible with %d bytes left", n, len(d.buf)-d.off)
		return 0
	}
	return int(n)
}

func (d *decoder) point() workload.Point {
	var p workload.Point
	for i := range p {
		p[i] = int(d.i64())
	}
	return p
}

func (d *decoder) dims() []workload.Dim {
	n := d.u32()
	if n == 0 {
		return nil
	}
	count := d.sliceLen(n-1, 1)
	out := make([]workload.Dim, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, workload.Dim(d.byte()))
	}
	return out
}

func (d *decoder) mapping() *mapping.Mapping {
	count := d.sliceLen(d.u32(), 2*8*int(workload.NumDims))
	m := &mapping.Mapping{Levels: make([]mapping.LevelMapping, 0, count)}
	for i := 0; i < count; i++ {
		lm := mapping.LevelMapping{}
		lm.Temporal = d.point()
		lm.Perm = d.dims()
		lm.SpatialChoice = d.dims()
		lm.FreeSpatial = d.point()
		m.Levels = append(m.Levels, lm)
	}
	return m
}

func (d *decoder) result() *model.Result {
	r := &model.Result{}
	r.Layer = d.str()
	r.MACs = d.i64()
	r.PaddedMACs = d.i64()
	r.ComputeCycles = d.i64()
	r.Cycles = d.f64()
	r.BottleneckLevel = d.str()
	r.Utilization = d.f64()
	r.MACsPerCycle = d.f64()
	if n := d.sliceLen(d.u32(), 4+1+2*8+8*8); n > 0 {
		r.Usage = make([]model.Usage, 0, n)
		for i := 0; i < n; i++ {
			u := model.Usage{}
			u.Level = d.str()
			u.LevelIndex = int(d.i64())
			u.Tensor = workload.Tensor(d.byte())
			u.TileElems = d.i64()
			u.Instances = d.i64()
			u.Fills = d.f64()
			u.FillsDistinct = d.f64()
			u.Reads = d.f64()
			u.Writes = d.f64()
			u.Updates = d.f64()
			u.Arrivals = d.f64()
			u.Drains = d.f64()
			u.DrainsMerged = d.f64()
			r.Usage = append(r.Usage, u)
		}
	}
	if n := d.sliceLen(d.u32(), 5*4+2*8); n > 0 {
		r.Energy = make([]model.EnergyItem, 0, n)
		for i := 0; i < n; i++ {
			en := model.EnergyItem{}
			en.Level = d.str()
			en.Component = d.str()
			en.Class = d.str()
			en.Action = d.str()
			en.Tensor = d.str()
			en.Count = d.f64()
			en.TotalPJ = d.f64()
			r.Energy = append(r.Energy, en)
		}
	}
	r.TotalPJ = d.f64()
	r.AreaUM2 = d.f64()
	return r
}
