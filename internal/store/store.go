// Package store is the durable tier of the search cache: a
// content-addressed, append-only on-disk result store keyed by the
// mapper's (architecture, layer shape, options) fingerprints. It
// implements mapper.Persister, so a mapper.Cache backed by a Store serves
// every search any prior process completed — restarts, resumed jobs and
// repeated queries warm-start instead of recomputing.
//
// Layout: one log file (photoloop-store.log) of checksummed records. Each
// record frames a key (three fingerprints) and a versioned binary payload
// (EncodeBest) behind a CRC32; writes append under a lock and records are
// never rewritten. On Open the log is scanned into an in-memory offset
// index; the first framing or checksum violation truncates the log at the
// last intact record (a torn tail from a crash costs the torn records
// only — they are recomputed on demand). A log whose header is not ours
// is an error, never overwritten: pointing the store at the wrong
// directory must not destroy foreign data.
//
// Integrity over availability: a record that cannot prove itself (bad
// CRC, bad frame, bad codec version) is a miss and the search recomputes
// — corruption can cost time, never correctness.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"photoloop/internal/mapper"
)

// logName is the store's log file inside the store directory.
const logName = "photoloop-store.log"

// logMagic opens the log file; a file that exists but does not start with
// it is not ours and Open refuses to touch it.
var logMagic = []byte("PHOTOLOOPSTORE1\n")

// recordHeaderLen frames each record: 3 key fingerprints, payload length,
// CRC32 over key+payload.
const recordHeaderLen = 3*8 + 4 + 4

// maxPayloadLen bounds one record's payload — far above any real best
// (a few KB), low enough that a corrupted length cannot drive a huge
// read.
const maxPayloadLen = 64 << 20

// Store is the on-disk result store. It is safe for concurrent use and
// implements mapper.Persister.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	index map[mapper.Key]recordRef
	size  int64 // current log length (next append offset)

	recovered int64 // bytes truncated on Open (0 for a clean log)
	loadFails int64 // records that failed to decode on Load
}

// recordRef locates one record's payload in the log.
type recordRef struct {
	off int64
	len int32
}

// Open opens (creating if needed) the store under dir. The directory is
// created if missing. A pre-existing log is scanned and verified; a
// corrupted tail is truncated away (see Recovered), while a file that is
// not a photoloop store at all is an error.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{f: f, index: make(map[mapper.Key]recordRef)}
	if err := s.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// scan builds the index from the log, verifying every frame and checksum,
// and truncates the log at the first violation.
func (s *Store) scan() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if info.Size() == 0 {
		if _, err := s.f.Write(logMagic); err != nil {
			return fmt.Errorf("store: writing log header: %w", err)
		}
		s.size = int64(len(logMagic))
		return nil
	}
	header := make([]byte, len(logMagic))
	if _, err := io.ReadFull(s.f, header); err != nil || string(header) != string(logMagic) {
		return fmt.Errorf("store: %s is not a photoloop result store (refusing to overwrite)", s.f.Name())
	}
	off := int64(len(logMagic))
	hdr := make([]byte, recordHeaderLen)
	var payload []byte
	good := off
	for {
		if _, err := io.ReadFull(s.f, hdr); err != nil {
			break // clean EOF or torn header: truncate here
		}
		key := mapper.Key{
			Arch:  binary.LittleEndian.Uint64(hdr[0:]),
			Layer: binary.LittleEndian.Uint64(hdr[8:]),
			Opts:  binary.LittleEndian.Uint64(hdr[16:]),
		}
		plen := binary.LittleEndian.Uint32(hdr[24:])
		want := binary.LittleEndian.Uint32(hdr[28:])
		if plen > maxPayloadLen {
			break
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(s.f, payload); err != nil {
			break
		}
		if recordCRC(hdr[:28], payload) != want {
			break
		}
		off += recordHeaderLen + int64(plen)
		// Later records win: an append-only log may carry several writes
		// of one key (two processes racing); all are intact, any serves.
		s.index[key] = recordRef{off: off - int64(plen), len: int32(plen)}
		good = off
	}
	if good < info.Size() {
		s.recovered = info.Size() - good
		if err := s.f.Truncate(good); err != nil {
			return fmt.Errorf("store: truncating corrupted tail: %w", err)
		}
	}
	s.size = good
	return nil
}

// recordCRC checksums a record: the header's key+length bytes plus the
// payload, so a frame whose length or key was torn fails like a torn
// payload.
func recordCRC(keyAndLen, payload []byte) uint32 {
	crc := crc32.ChecksumIEEE(keyAndLen)
	return crc32.Update(crc, crc32.IEEETable, payload)
}

// Close closes the log file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Len returns the number of distinct keys in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Recovered returns how many corrupted bytes Open truncated from the log
// tail (0 for a clean log).
func (s *Store) Recovered() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Load implements mapper.Persister: it returns the stored best for the
// key, or false. A record that fails to decode (impossible after a clean
// scan unless the file was modified underneath us) is a miss.
func (s *Store) Load(k mapper.Key) (*mapper.Best, bool) {
	s.mu.Lock()
	ref, ok := s.index[k]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	payload := make([]byte, ref.len)
	if _, err := s.f.ReadAt(payload, ref.off); err != nil {
		s.noteLoadFail()
		return nil, false
	}
	b, err := DecodeBest(payload)
	if err != nil {
		s.noteLoadFail()
		return nil, false
	}
	return b, true
}

func (s *Store) noteLoadFail() {
	s.mu.Lock()
	s.loadFails++
	s.mu.Unlock()
}

// Store implements mapper.Persister: it appends the best under the key.
// A key already present is left alone (the store is content addressed —
// equal keys mean bit-identical results, so the first write is as good as
// any).
func (s *Store) Store(k mapper.Key, b *mapper.Best) error {
	payload := EncodeBest(b)
	if len(payload) > maxPayloadLen {
		return fmt.Errorf("store: record payload %d bytes exceeds cap", len(payload))
	}
	rec := make([]byte, recordHeaderLen, recordHeaderLen+len(payload))
	binary.LittleEndian.PutUint64(rec[0:], k.Arch)
	binary.LittleEndian.PutUint64(rec[8:], k.Layer)
	binary.LittleEndian.PutUint64(rec[16:], k.Opts)
	binary.LittleEndian.PutUint32(rec[24:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[28:], recordCRC(rec[:28], payload))
	rec = append(rec, payload...)

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[k]; ok {
		return nil
	}
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	s.index[k] = recordRef{off: s.size + recordHeaderLen, len: int32(len(payload))}
	s.size += int64(len(rec))
	return nil
}
