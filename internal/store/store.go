// Package store is the durable tier of the search cache: a
// content-addressed, append-only on-disk result store keyed by the
// mapper's (architecture, layer shape, options) fingerprints. It
// implements mapper.Persister, so a mapper.Cache backed by a Store serves
// every search any prior process completed — restarts, resumed jobs and
// repeated queries warm-start instead of recomputing.
//
// Layout: one store directory holds one or more segment files
// (photoloop-store.log, photoloop-store.001.log, ...), each an append-only
// log of checksummed records. Every writer process owns exactly one
// segment, claimed through a pid-stamped advisory lock file
// (<segment>.lock): Open claims the first segment whose lock is free or
// stale (its owner died), creating a fresh segment when every existing one
// is held by a live process — so N processes sharing one store directory
// append concurrently without ever interleaving writes in one file.
//
// Each record frames a key (three fingerprints) and a versioned binary
// payload (EncodeBest) behind a CRC32; records are never rewritten. On
// Open every segment is scanned into one merged in-memory index; key
// collisions resolve first-write-wins in deterministic segment order
// (the keys are content addresses — equal keys carry bit-identical
// payloads, so any copy serves). A framing or checksum violation in the
// writer's own segment truncates it at the last intact record (a torn
// tail from a crash costs the torn records only); violations in another
// writer's segment stop the scan there without truncating — the bytes may
// be a record mid-append, and Refresh picks the tail up once it is whole.
// A file whose header is not ours is an error, never overwritten: pointing
// the store at the wrong directory must not destroy foreign data.
//
// Integrity over availability: a record that cannot prove itself (bad
// CRC, bad frame, bad codec version) is a miss and the search recomputes
// — corruption can cost time, never correctness.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"photoloop/internal/mapper"
)

// primaryName is the first segment's file name (also the whole store in
// the single-writer layouts of prior versions — those open unchanged).
const primaryName = "photoloop-store.log"

// segmentPrefix/segmentSuffix frame the numbered segments:
// photoloop-store.NNN.log.
const (
	segmentPrefix = "photoloop-store."
	segmentSuffix = ".log"
)

// lockSuffix names a segment's advisory lock file. The file holds the
// owning pid in text; a lock whose pid no longer runs is stale and is
// reclaimed.
const lockSuffix = ".lock"

// logMagic opens every segment file; a file that exists but does not
// start with it is not ours and Open refuses to touch it.
var logMagic = []byte("PHOTOLOOPSTORE1\n")

// recordHeaderLen frames each record: 3 key fingerprints, payload length,
// CRC32 over key+payload.
const recordHeaderLen = 3*8 + 4 + 4

// maxPayloadLen bounds one record's payload — far above any real best
// (a few KB), low enough that a corrupted length cannot drive a huge
// read.
const maxPayloadLen = 64 << 20

// maxSegments bounds the claim loop: a directory that somehow accumulates
// this many live writers (or leaked locks owned by live pids) is an
// error, not an invitation to spin.
const maxSegments = 4096

// Store is the on-disk result store. It is safe for concurrent use and
// implements mapper.Persister.
type Store struct {
	mu    sync.Mutex
	dir   string
	own   *segment   // the segment this process appends to
	segs  []*segment // every scanned segment, own included, in merge order
	index map[mapper.Key]recordRef

	recovered int64 // bytes truncated from the own segment on Open
	loadFails int64 // records that failed to decode on Load
}

// segment is one scanned segment file.
type segment struct {
	name string
	f    *os.File
	good int64 // scan frontier: offset after the last verified record
}

// recordRef locates one record's payload: which segment, where.
type recordRef struct {
	seg int32
	len int32
	off int64
}

// Open opens (creating if needed) the store under dir and claims a
// writable segment for this process. Any number of processes may hold the
// same directory open concurrently — each appends to its own segment and
// reads every segment. A pre-existing segment claimed after a crash is
// verified and its corrupted tail truncated away (see Recovered); a file
// that is not a photoloop store segment at all is an error.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, index: make(map[mapper.Key]recordRef)}
	if err := s.claim(); err != nil {
		return nil, err
	}
	if err := s.scanAll(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// segmentName returns the i-th segment's file name (0 is the primary).
func segmentName(i int) string {
	if i == 0 {
		return primaryName
	}
	return fmt.Sprintf("%s%03d%s", segmentPrefix, i, segmentSuffix)
}

// segmentIndex parses a segment file name, reporting ok=false for
// non-segment files (locks, job records, strangers).
func segmentIndex(name string) (int, bool) {
	if name == primaryName {
		return 0, true
	}
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	n, err := strconv.Atoi(mid)
	if err != nil || n < 1 || mid != fmt.Sprintf("%03d", n) {
		return 0, false
	}
	return n, true
}

// listSegments returns the indices of every segment file present, sorted
// (the deterministic merge order).
func (s *Store) listSegments() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var idx []int
	for _, e := range entries {
		if n, ok := segmentIndex(e.Name()); ok {
			idx = append(idx, n)
		}
	}
	sort.Ints(idx)
	return idx, nil
}

// claim acquires a writable segment: the lowest-numbered segment whose
// advisory lock is free or stale, or a fresh segment past every live one.
// The claimed segment file is created (with header) if missing.
func (s *Store) claim() error {
	present, err := s.listSegments()
	if err != nil {
		return err
	}
	have := map[int]bool{}
	for _, p := range present {
		have[p] = true
	}
	// Candidates: every existing segment in order (reclaiming crashed
	// writers' segments keeps the directory compact), then fresh numbers.
	candidates := append([]int(nil), present...)
	for n := 0; n < maxSegments; n++ {
		if !have[n] {
			candidates = append(candidates, n)
		}
	}
	var lastErr error
	for _, n := range candidates {
		name := segmentName(n)
		if err := acquireLock(filepath.Join(s.dir, name+lockSuffix)); err != nil {
			lastErr = err
			continue
		}
		f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_RDWR|os.O_CREATE, 0o666)
		if err != nil {
			releaseLock(filepath.Join(s.dir, name+lockSuffix))
			return fmt.Errorf("store: %w", err)
		}
		s.own = &segment{name: name, f: f}
		return nil
	}
	return fmt.Errorf("store: no claimable segment in %s (%w)", s.dir, lastErr)
}

// scanAll builds the merged index from every segment present, in
// deterministic segment order. First write wins on key collisions: the
// keys are content addresses, so every copy of a key carries the same
// payload and the choice only fixes which file serves reads.
func (s *Store) scanAll() error {
	present, err := s.listSegments()
	if err != nil {
		return err
	}
	for _, n := range present {
		name := segmentName(n)
		if name == s.own.name {
			if err := s.scanSegment(s.own, true); err != nil {
				return err
			}
			s.segs = append(s.segs, s.own)
			continue
		}
		f, err := os.Open(filepath.Join(s.dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue // raced with nothing: listed but gone is impossible for append-only files, but harmless
			}
			return fmt.Errorf("store: %w", err)
		}
		seg := &segment{name: name, f: f}
		if err := s.scanSegment(seg, false); err != nil {
			f.Close()
			return err
		}
		s.segs = append(s.segs, seg)
	}
	// The own segment may be brand new (not yet listed at listSegments
	// time is impossible since claim created it, but guard anyway).
	for _, seg := range s.segs {
		if seg == s.own {
			return nil
		}
	}
	if err := s.scanSegment(s.own, true); err != nil {
		return err
	}
	s.segs = append(s.segs, s.own)
	return nil
}

// scanSegment verifies records from the segment's current scan frontier,
// adding previously unseen keys to the merged index. For the writer's own
// segment a framing or checksum violation truncates the file at the last
// intact record; foreign segments are never truncated — the violation
// just ends this scan, and a later Refresh resumes at the frontier (a
// torn-looking tail in a live segment is usually a record mid-append).
func (s *Store) scanSegment(seg *segment, own bool) error {
	info, err := seg.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if info.Size() == 0 {
		if !own {
			return nil // a freshly created segment whose header is not yet written
		}
		if _, err := seg.f.WriteAt(logMagic, 0); err != nil {
			return fmt.Errorf("store: writing segment header: %w", err)
		}
		seg.good = int64(len(logMagic))
		return nil
	}
	if seg.good == 0 {
		header := make([]byte, len(logMagic))
		if _, err := seg.f.ReadAt(header, 0); err != nil || string(header) != string(logMagic) {
			if !own && info.Size() < int64(len(logMagic)) {
				return nil // header mid-write by another process; retry on Refresh
			}
			return fmt.Errorf("store: %s is not a photoloop result store segment (refusing to overwrite)", seg.f.Name())
		}
		seg.good = int64(len(logMagic))
	}
	segIdx := int32(-1)
	for i, have := range s.segs {
		if have == seg {
			segIdx = int32(i)
		}
	}
	if segIdx < 0 {
		segIdx = int32(len(s.segs)) // about to be appended by the caller
	}
	off := seg.good
	hdr := make([]byte, recordHeaderLen)
	var payload []byte
	br := bufio.NewReader(io.NewSectionReader(seg.f, off, info.Size()-off))
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			break // clean EOF or torn header
		}
		key := mapper.Key{
			Arch:  binary.LittleEndian.Uint64(hdr[0:]),
			Layer: binary.LittleEndian.Uint64(hdr[8:]),
			Opts:  binary.LittleEndian.Uint64(hdr[16:]),
		}
		plen := binary.LittleEndian.Uint32(hdr[24:])
		want := binary.LittleEndian.Uint32(hdr[28:])
		if plen > maxPayloadLen {
			break
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		if recordCRC(hdr[:28], payload) != want {
			break
		}
		off += recordHeaderLen + int64(plen)
		// First write wins across the whole store: a key seen in an
		// earlier segment (or earlier in this one) keeps its record.
		if _, dup := s.index[key]; !dup {
			s.index[key] = recordRef{seg: segIdx, off: off - int64(plen), len: int32(plen)}
		}
		seg.good = off
	}
	if own && seg.good < info.Size() {
		s.recovered += info.Size() - seg.good
		if err := seg.f.Truncate(seg.good); err != nil {
			return fmt.Errorf("store: truncating corrupted tail: %w", err)
		}
	}
	return nil
}

// recordCRC checksums a record: the header's key+length bytes plus the
// payload, so a frame whose length or key was torn fails like a torn
// payload.
func recordCRC(keyAndLen, payload []byte) uint32 {
	crc := crc32.ChecksumIEEE(keyAndLen)
	return crc32.Update(crc, crc32.IEEETable, payload)
}

// Refresh rescans the store: new records appended to known segments by
// other writers and entirely new segments become visible. The writer's
// own segment never needs refreshing (only this process appends to it).
// Refresh is how a coordinator observes worker progress — workers append
// search results to their segments, the coordinator refreshes and serves
// them. First-write-wins merge semantics are unchanged.
func (s *Store) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	present, err := s.listSegments()
	if err != nil {
		return err
	}
	known := map[string]*segment{}
	for _, seg := range s.segs {
		known[seg.name] = seg
	}
	for _, n := range present {
		name := segmentName(n)
		if seg, ok := known[name]; ok {
			if seg == s.own {
				continue
			}
			if err := s.scanSegment(seg, false); err != nil {
				return err
			}
			continue
		}
		f, err := os.Open(filepath.Join(s.dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("store: %w", err)
		}
		seg := &segment{name: name, f: f}
		if err := s.scanSegment(seg, false); err != nil {
			f.Close()
			return err
		}
		s.segs = append(s.segs, seg)
	}
	return nil
}

// Close closes every segment file and releases the advisory lock on the
// writer's own segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.closeFiles()
	return err
}

func (s *Store) closeFiles() error {
	var first error
	for _, seg := range s.segs {
		if cerr := seg.f.Close(); cerr != nil && first == nil {
			first = cerr
		}
	}
	if s.own != nil {
		found := false
		for _, seg := range s.segs {
			if seg == s.own {
				found = true
			}
		}
		if !found {
			if cerr := s.own.f.Close(); cerr != nil && first == nil {
				first = cerr
			}
		}
		releaseLock(filepath.Join(s.dir, s.own.name+lockSuffix))
	}
	return first
}

// Len returns the number of distinct keys in the store's current view
// (Refresh widens the view while other writers append).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Segments returns how many segment files the store's current view spans.
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs)
}

// SegmentName returns the file name of the segment this process appends
// to — diagnostics and tests; readers span every segment.
func (s *Store) SegmentName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.own.name
}

// Recovered returns how many corrupted bytes Open truncated from the
// writer's own segment tail (0 for a clean log).
func (s *Store) Recovered() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Has reports whether the store's current view holds the key.
func (s *Store) Has(k mapper.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[k]
	return ok
}

// Keys returns a snapshot of every key in the store's current view, in
// unspecified order.
func (s *Store) Keys() []mapper.Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]mapper.Key, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	return keys
}

// Digest builds a bloom KeyDigest over the store's current view — the
// warm-key summary a coordinator serves so remote workers skip searches
// any writer already solved. Digest construction is order-independent,
// so equal key sets encode byte-identically.
func (s *Store) Digest() *KeyDigest {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := NewKeyDigest(len(s.index))
	for k := range s.index {
		d.Add(k)
	}
	return d
}

// Load implements mapper.Persister: it returns the stored best for the
// key, or false. A record that fails to decode (impossible after a clean
// scan unless a file was modified underneath us) is a miss.
func (s *Store) Load(k mapper.Key) (*mapper.Best, bool) {
	s.mu.Lock()
	ref, ok := s.index[k]
	var f *os.File
	if ok {
		f = s.segs[ref.seg].f
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	payload := make([]byte, ref.len)
	if _, err := f.ReadAt(payload, ref.off); err != nil {
		s.noteLoadFail()
		return nil, false
	}
	b, err := DecodeBest(payload)
	if err != nil {
		s.noteLoadFail()
		return nil, false
	}
	return b, true
}

func (s *Store) noteLoadFail() {
	s.mu.Lock()
	s.loadFails++
	s.mu.Unlock()
}

// Store implements mapper.Persister: it appends the best under the key to
// this process's own segment. A key already present in the merged view is
// left alone (the store is content addressed — equal keys mean
// bit-identical results, so the first write is as good as any). Two
// processes racing on a key each append to their own segment; the
// duplicate wastes a few KB and deduplicates on the next scan.
func (s *Store) Store(k mapper.Key, b *mapper.Best) error {
	payload := EncodeBest(b)
	if len(payload) > maxPayloadLen {
		return fmt.Errorf("store: record payload %d bytes exceeds cap", len(payload))
	}
	rec := make([]byte, recordHeaderLen, recordHeaderLen+len(payload))
	binary.LittleEndian.PutUint64(rec[0:], k.Arch)
	binary.LittleEndian.PutUint64(rec[8:], k.Layer)
	binary.LittleEndian.PutUint64(rec[16:], k.Opts)
	binary.LittleEndian.PutUint32(rec[24:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[28:], recordCRC(rec[:28], payload))
	rec = append(rec, payload...)

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[k]; ok {
		return nil
	}
	if _, err := s.own.f.WriteAt(rec, s.own.good); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	var segIdx int32 = -1
	for i, seg := range s.segs {
		if seg == s.own {
			segIdx = int32(i)
		}
	}
	s.index[k] = recordRef{seg: segIdx, off: s.own.good + recordHeaderLen, len: int32(len(payload))}
	s.own.good += int64(len(rec))
	return nil
}
