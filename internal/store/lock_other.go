//go:build !unix

package store

// pidAlive conservatively reports every pid as possibly alive on
// platforms without a cheap liveness probe: a stale lock then needs
// manual removal, which beats breaking a live writer's lock.
func pidAlive(pid int) bool {
	return true
}
