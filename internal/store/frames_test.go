package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"photoloop/internal/mapper"
)

// randomRecords builds n wire records with distinct keys.
func randomRecords(rng *rand.Rand, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: mapperKey(rng), Best: randomBest(rng)}
	}
	return recs
}

func TestFramesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 5} {
		recs := randomRecords(rng, n)
		body := EncodeFrames(recs)
		got, err := DecodeFrames(body)
		if err != nil {
			t.Fatalf("n=%d: DecodeFrames: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d records", n, len(got))
		}
		for i := range got {
			if got[i].Key != recs[i].Key {
				t.Fatalf("record %d key changed in transit", i)
			}
			if !bytes.Equal(EncodeBest(got[i].Best), EncodeBest(recs[i].Best)) {
				t.Fatalf("record %d payload not bit-identical through the frame codec", i)
			}
		}
		if again := EncodeFrames(got); !bytes.Equal(again, body) {
			t.Fatalf("n=%d: re-encode differs from original body", n)
		}
	}
}

// TestDecodeFramesAllOrNothing pins the torn-upload contract: every
// strict prefix of a valid body must be rejected whole — a truncated
// POST can never be half-accepted.
func TestDecodeFramesAllOrNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	body := EncodeFrames(randomRecords(rng, 3))
	for cut := 0; cut < len(body); cut++ {
		if _, err := DecodeFrames(body[:cut]); err == nil {
			t.Fatalf("truncation at byte %d/%d accepted", cut, len(body))
		}
	}
	if _, err := DecodeFrames(append(append([]byte{}, body...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestDecodeFramesRejectsBitFlips: the CRC (and magic/count framing)
// must catch any single corrupted byte.
func TestDecodeFramesRejectsBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	body := EncodeFrames(randomRecords(rng, 2))
	for i := range body {
		mut := append([]byte{}, body...)
		mut[i] ^= 0x41
		if _, err := DecodeFrames(mut); err == nil {
			t.Fatalf("flip at byte %d/%d accepted", i, len(body))
		}
	}
}

func TestKeyDigestMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	keys := make([]mapper.Key, 500)
	d := NewKeyDigest(len(keys))
	for i := range keys {
		keys[i] = mapperKey(rng)
		d.Add(keys[i])
	}
	for i, k := range keys {
		if !d.Has(k) {
			t.Fatalf("added key %d reported absent", i)
		}
	}
	if d.Count() != len(keys) {
		t.Fatalf("Count = %d, want %d", d.Count(), len(keys))
	}
	falsePos := 0
	for i := 0; i < 2000; i++ {
		if d.Has(mapperKey(rng)) {
			falsePos++
		}
	}
	// ≥16 bits/key with 6 probes gives well under 1% false positives;
	// allow 2% slack before calling the hash mixing broken.
	if falsePos > 40 {
		t.Fatalf("%d/2000 false positives — digest sizing or hashing is off", falsePos)
	}
}

func TestKeyDigestOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := make([]mapper.Key, 100)
	for i := range keys {
		keys[i] = mapperKey(rng)
	}
	a := NewKeyDigest(len(keys))
	for _, k := range keys {
		a.Add(k)
	}
	b := NewKeyDigest(len(keys))
	for i := len(keys) - 1; i >= 0; i-- {
		b.Add(keys[i])
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("digests over the same key set differ by insertion order")
	}
}

func TestKeyDigestEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := NewKeyDigest(64)
	var keys []mapper.Key
	for i := 0; i < 64; i++ {
		k := mapperKey(rng)
		keys = append(keys, k)
		d.Add(k)
	}
	enc := d.Encode()
	got, err := DecodeKeyDigest(enc)
	if err != nil {
		t.Fatalf("DecodeKeyDigest: %v", err)
	}
	if got.Count() != 64 {
		t.Fatalf("Count = %d after round trip", got.Count())
	}
	for i, k := range keys {
		if !got.Has(k) {
			t.Fatalf("key %d lost in digest round trip", i)
		}
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("digest re-encode differs")
	}
	for _, bad := range [][]byte{nil, {}, enc[:len(enc)-1], append(append([]byte{}, enc...), 1), []byte("PHLDIGEST1\njunkjunkjunkjunk")} {
		if _, err := DecodeKeyDigest(bad); err == nil {
			t.Fatalf("malformed digest of %d bytes accepted", len(bad))
		}
	}
}

func TestParseKeyHex(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		k := mapperKey(rng)
		got, ok := ParseKeyHex(keyHex(k))
		if !ok || got != k {
			t.Fatalf("round trip failed for %+v: got %+v ok=%v", k, got, ok)
		}
	}
	for _, bad := range []string{"", "00", keyHex(mapper.Key{})[:47], keyHex(mapper.Key{}) + "0", "ZZ" + keyHex(mapper.Key{})[2:]} {
		if _, ok := ParseKeyHex(bad); ok {
			t.Fatalf("malformed key %q accepted", bad)
		}
	}
}

func TestStoreKeysHasDigest(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	keys := make([]mapper.Key, 20)
	for i := range keys {
		keys[i] = mapperKey(rng)
		if err := st.Store(keys[i], randomBest(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(st.Keys()); got != len(keys) {
		t.Fatalf("Keys returned %d, want %d", got, len(keys))
	}
	d := st.Digest()
	for i, k := range keys {
		if !st.Has(k) {
			t.Fatalf("Has(%d) = false for stored key", i)
		}
		if !d.Has(k) {
			t.Fatalf("Digest misses stored key %d", i)
		}
	}
	if st.Has(mapperKey(rng)) {
		t.Fatal("Has reported an absent key present")
	}
}

// FuzzResultUploadFrame drives arbitrary bytes through the upload-frame
// decoder and, when accepted, through a real coordinator-side store
// append. The decoder must never panic; every accepted batch must
// re-encode byte-identical (one canonical wire form); and appending the
// decoded records must leave the store fully consistent — malformed
// input can cost a rejected upload, never a corrupted segment.
//
// Seed corpus: testdata/fuzz/FuzzResultUploadFrame (regenerated by
// TestWriteFrameFuzzCorpus with UPDATE_FUZZ_CORPUS=1) plus the inline
// seeds below.
func FuzzResultUploadFrame(f *testing.F) {
	rng := rand.New(rand.NewSource(21))
	f.Add(EncodeFrames(nil))
	f.Add(EncodeFrames(randomRecords(rng, 1)))
	f.Add(EncodeFrames(randomRecords(rng, 4)))
	f.Add([]byte{})
	f.Add(append([]byte{}, frameMagic...))
	dir := f.TempDir()
	st, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { st.Close() })
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeFrames(data)
		if err != nil {
			return
		}
		if again := EncodeFrames(recs); !bytes.Equal(again, data) {
			t.Fatalf("accepted non-canonical frame batch: %d bytes in, %d re-encoded", len(data), len(again))
		}
		for _, rec := range recs {
			if err := st.Store(rec.Key, rec.Best); err != nil {
				t.Fatalf("appending accepted record: %v", err)
			}
			b, ok := st.Load(rec.Key)
			if !ok {
				t.Fatal("accepted record not served back")
			}
			if !bytes.Equal(EncodeBest(b), EncodeBest(rec.Best)) {
				t.Fatal("record mutated through the store")
			}
		}
	})
}

// TestWriteFrameFuzzCorpus mirrors TestWriteFuzzCorpus for the upload
// framing: regenerates testdata/fuzz/FuzzResultUploadFrame under
// UPDATE_FUZZ_CORPUS=1, otherwise verifies the committed seeds decode.
func TestWriteFrameFuzzCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	seeds := [][]byte{
		EncodeFrames(nil),
		EncodeFrames(randomRecords(rng, 1)),
		EncodeFrames(randomRecords(rng, 4)),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzResultUploadFrame")
	if os.Getenv("UPDATE_FUZZ_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o777); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%d", i)), []byte(body), 0o666); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("seed corpus missing (rerun with UPDATE_FUZZ_CORPUS=1): %v", err)
	}
	for i, s := range seeds {
		if _, err := DecodeFrames(s); err != nil {
			t.Fatalf("seed %d no longer decodes: %v", i, err)
		}
	}
}
