package store

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"photoloop/internal/mapper"
	"photoloop/internal/retry"
)

// RemotePersister is the shared-nothing result channel of a remote shard
// worker: a mapper.Persister that holds no filesystem store. Completed
// searches batch up and POST back to the coordinator as CRC-framed
// records (EncodeFrames); the coordinator decodes and appends them into
// its own segment, so the artifact-assembly path over the merged store is
// byte-for-byte what a shared-directory run produces. Loads consult a
// bloom digest of the coordinator's keys (pulled once per lease) and
// fetch probable hits individually — a digest false positive costs one
// 404 before the worker recomputes, and every network failure on the
// read path is just a miss: integrity over availability, recomputation is
// bit-identical by construction.
//
// It is safe for concurrent use (mapper.Cache calls Load and Store from
// every search worker).
type RemotePersister struct {
	base   string
	client *http.Client
	policy retry.Policy

	// OnFlush, when set, observes each upload about to happen (record
	// count) — worker diagnostics and crash-test synchronization.
	OnFlush func(n int)

	mu           sync.Mutex
	ctx          context.Context
	job          string
	digest       *KeyDigest
	pending      []pendingRec
	pendingBytes int
	local        map[mapper.Key]*mapper.Best
	stats        RemoteStats
}

// pendingRec is one not-yet-uploaded result, pre-encoded so the batch's
// byte size is exact and Flush never re-encodes.
type pendingRec struct {
	key     mapper.Key
	payload []byte
}

// RemoteStats counts a RemotePersister's traffic, by outcome.
type RemoteStats struct {
	// Uploaded is how many result records reached the coordinator.
	Uploaded int
	// Flushes is how many upload POSTs were made.
	Flushes int
	// WarmHits is how many Loads were served by a coordinator fetch.
	WarmHits int
	// LocalHits is how many Loads were served from this process's own
	// prior results.
	LocalHits int
	// Misses is how many Loads found nothing (including digest misses
	// and fetch failures — both recompute).
	Misses int
	// Retries is how many individual HTTP attempts failed and were
	// retried across every leg (digest pull, fetch, upload).
	Retries int
}

// Upload batching thresholds: a batch flushes when it holds this many
// records or this many payload bytes, whichever comes first. Results are
// a few KB each, so the byte cap is the binding one only for unusually
// fat records.
const (
	remoteBatchRecords = 64
	remoteBatchBytes   = 1 << 20
)

// uploadDelayEnv is a test hook mirroring PHOTOLOOP_JOB_POINT_DELAY: a
// sleep between announcing an upload (OnFlush) and POSTing it, widening
// the mid-upload crash window so tests can SIGKILL a worker between the
// two deterministically.
const uploadDelayEnv = "PHOTOLOOP_UPLOAD_DELAY"

// NewRemotePersister returns a persister that exchanges results with the
// coordinator at base (e.g. "http://host:8080"). A nil client uses a
// dedicated client with a 30s request timeout.
func NewRemotePersister(base string, client *http.Client) *RemotePersister {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	r := &RemotePersister{
		base:   strings.TrimRight(base, "/"),
		client: client,
		ctx:    context.Background(),
		local:  map[mapper.Key]*mapper.Best{},
	}
	r.policy = retry.Policy{OnRetry: func(error) {
		r.mu.Lock()
		r.stats.Retries++
		r.mu.Unlock()
	}}
	return r
}

// SetRetryPolicy overrides the HTTP retry policy (tests shorten the
// backoff). The policy's OnRetry is chained into the Retries counter.
func (r *RemotePersister) SetRetryPolicy(p retry.Policy) {
	inner := p.OnRetry
	p.OnRetry = func(err error) {
		r.mu.Lock()
		r.stats.Retries++
		r.mu.Unlock()
		if inner != nil {
			inner(err)
		}
	}
	r.mu.Lock()
	r.policy = p
	r.mu.Unlock()
}

// Begin binds the persister to a job for the duration of a lease: it
// pulls the coordinator's warm-key digest so Loads can skip searches any
// worker already solved. A digest pull failure is not fatal — the worker
// just recomputes (and its uploads still dedupe coordinator-side); the
// context governs this and every later request until the next Begin.
func (r *RemotePersister) Begin(ctx context.Context, job string) error {
	body, status, err := r.do(ctx, http.MethodGet, "/v1/jobs/"+job+"/keys", nil)
	var digest *KeyDigest
	if err == nil && status == http.StatusOK {
		digest, err = DecodeKeyDigest(body)
	}
	r.mu.Lock()
	r.ctx = ctx
	r.job = job
	if err == nil && digest != nil {
		r.digest = digest
	} else {
		r.digest = nil // unknown warmth: probe nothing, recompute everything
	}
	r.mu.Unlock()
	return nil
}

// Load implements mapper.Persister. Own results (uploaded or pending)
// serve locally; otherwise the digest gates a single-key fetch from the
// coordinator. Any failure along the way is a miss — the search
// recomputes the bit-identical result.
func (r *RemotePersister) Load(k mapper.Key) (*mapper.Best, bool) {
	r.mu.Lock()
	if b, ok := r.local[k]; ok {
		r.stats.LocalHits++
		r.mu.Unlock()
		return b, true
	}
	ctx, job, digest := r.ctx, r.job, r.digest
	r.mu.Unlock()
	if job == "" || digest == nil || !digest.Has(k) {
		r.miss()
		return nil, false
	}
	body, status, err := r.do(ctx, http.MethodGet, "/v1/jobs/"+job+"/results/"+keyHex(k), nil)
	if err != nil || status != http.StatusOK {
		r.miss()
		return nil, false
	}
	b, err := DecodeBest(body)
	if err != nil {
		r.miss()
		return nil, false
	}
	r.mu.Lock()
	r.local[k] = b
	r.stats.WarmHits++
	r.mu.Unlock()
	return b, true
}

func (r *RemotePersister) miss() {
	r.mu.Lock()
	r.stats.Misses++
	r.mu.Unlock()
}

// Store implements mapper.Persister: the result joins the pending batch,
// which uploads when it crosses the batching thresholds (a partial batch
// rides until Flush). A mid-batch upload failure is surfaced here so the
// cache records it as a disk fail, and the records stay pending for
// Flush to retry.
func (r *RemotePersister) Store(k mapper.Key, b *mapper.Best) error {
	payload := EncodeBest(b)
	r.mu.Lock()
	if _, ok := r.local[k]; ok {
		r.mu.Unlock()
		return nil
	}
	r.local[k] = b
	r.pending = append(r.pending, pendingRec{key: k, payload: payload})
	r.pendingBytes += len(payload)
	full := len(r.pending) >= remoteBatchRecords || r.pendingBytes >= remoteBatchBytes
	ctx := r.ctx
	r.mu.Unlock()
	if !full {
		return nil
	}
	return r.Flush(ctx)
}

// Flush uploads every pending record and blocks until the coordinator
// acknowledges them (or retries are exhausted). Workers call it before
// Complete: results must be durable coordinator-side before the range is
// marked done, or a lost batch would leave holes the assembly run can
// only fill by recomputing. On failure the records stay pending.
func (r *RemotePersister) Flush(ctx context.Context) error {
	r.mu.Lock()
	if len(r.pending) == 0 {
		r.mu.Unlock()
		return nil
	}
	batch := r.pending
	batchBytes := r.pendingBytes
	r.pending = nil
	r.pendingBytes = 0
	job := r.job
	r.mu.Unlock()

	if r.OnFlush != nil {
		r.OnFlush(len(batch))
	}
	if delay, _ := time.ParseDuration(os.Getenv(uploadDelayEnv)); delay > 0 {
		time.Sleep(delay)
	}
	body := frameHeader(len(batch), batchBytes)
	for i := range batch {
		body = appendFrame(body, batch[i].key, batch[i].payload)
	}
	_, status, err := r.do(ctx, http.MethodPost, "/v1/jobs/"+job+"/results", body)
	if err != nil || status != http.StatusOK {
		r.mu.Lock()
		r.pending = append(batch, r.pending...)
		r.pendingBytes += batchBytes
		r.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("store: result upload rejected with status %d", status)
		}
		return err
	}
	r.mu.Lock()
	r.stats.Flushes++
	r.stats.Uploaded += len(batch)
	r.mu.Unlock()
	return nil
}

// Stats returns a snapshot of the persister's traffic counters.
func (r *RemotePersister) Stats() RemoteStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// do issues one HTTP request under the retry policy: transport errors,
// truncated bodies and 5xx responses retry with exponential backoff; any
// other status returns immediately with its (drained) body. The returned
// error is nil whenever a complete response was read, whatever the
// status — callers branch on status.
func (r *RemotePersister) do(ctx context.Context, method, path string, body []byte) ([]byte, int, error) {
	r.mu.Lock()
	policy := r.policy
	r.mu.Unlock()
	var out []byte
	var status int
	err := policy.Do(ctx, func() error {
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, r.base+path, reader)
		if err != nil {
			return retry.Permanent(err)
		}
		resp, err := r.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err // truncated response: retry
		}
		if resp.StatusCode >= 500 {
			return fmt.Errorf("store: %s %s: status %d", method, path, resp.StatusCode)
		}
		out, status = b, resp.StatusCode
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, status, nil
}

// keyHex renders a key as the 48-hex-digit path segment of the
// single-result fetch endpoint.
func keyHex(k mapper.Key) string {
	return fmt.Sprintf("%016x%016x%016x", k.Arch, k.Layer, k.Opts)
}

// ParseKeyHex parses the 48-hex-digit key form produced by the remote
// persister's fetch path (the coordinator's route handler uses it).
func ParseKeyHex(s string) (mapper.Key, bool) {
	if len(s) != 48 {
		return mapper.Key{}, false
	}
	var parts [3]uint64
	for i := range parts {
		var v uint64
		for _, c := range s[i*16 : (i+1)*16] {
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			default:
				return mapper.Key{}, false
			}
			v = v<<4 | d
		}
		parts[i] = v
	}
	return mapper.Key{Arch: parts[0], Layer: parts[1], Opts: parts[2]}, true
}
