// Package retry is the bounded retry/backoff layer shared by every
// over-the-wire leg of the shard protocol: lease acquisition, heartbeats,
// result uploads and warm-key pulls. It exists so a coordinator blip — a
// dropped connection, a truncated response, a transient 5xx — degrades to
// a short retry instead of cancelling a worker's in-flight range.
//
// The policy is deliberately small: a fixed number of attempts with
// exponential backoff and no jitter, so tests driving a seeded fault
// schedule see deterministic retry behavior. Callers classify errors:
// wrapping one with Permanent stops the loop immediately (a 4xx response,
// a lost lease), anything else is presumed transient and retried until
// the attempts run out.
package retry

import (
	"context"
	"errors"
	"time"
)

// Defaults for a zero Policy: four attempts spanning roughly 700ms
// (100ms + 200ms + 400ms of backoff) — enough to ride out a connection
// reset or a coordinator GC pause, short enough that a worker holding a
// lease never backs off past its heartbeat deadline.
const (
	DefaultTries = 4
	DefaultBase  = 100 * time.Millisecond
	DefaultMax   = 2 * time.Second
)

// Policy bounds one retried operation.
type Policy struct {
	// Tries is the total number of attempts (default DefaultTries).
	Tries int
	// Base is the delay before the second attempt; it doubles per retry
	// (default DefaultBase).
	Base time.Duration
	// Max caps the per-retry backoff (default DefaultMax).
	Max time.Duration
	// OnRetry, when set, observes each failed attempt that will be
	// retried — diagnostics and test counters, never control flow.
	OnRetry func(err error)
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps an error so Do stops retrying and returns it (unwrapped)
// immediately: the failure is a fact, not a blip — a 4xx status, a
// reassigned lease, a refused spec.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Do runs f until it succeeds, returns a Permanent error, exhausts the
// policy's attempts, or the context ends. The returned error is the last
// attempt's, unwrapped from any Permanent marker; a context cancellation
// between attempts returns the context's error.
func (p Policy) Do(ctx context.Context, f func() error) error {
	tries := p.Tries
	if tries <= 0 {
		tries = DefaultTries
	}
	base := p.Base
	if base <= 0 {
		base = DefaultBase
	}
	max := p.Max
	if max <= 0 {
		max = DefaultMax
	}
	backoff := base
	var err error
	for attempt := 0; attempt < tries; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = f()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if attempt == tries-1 {
			break
		}
		if p.OnRetry != nil {
			p.OnRetry(err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > max {
			backoff = max
		}
	}
	return err
}
