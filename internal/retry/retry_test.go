package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDoSucceedsFirstTry(t *testing.T) {
	calls := 0
	err := Policy{}.Do(context.Background(), func() error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestDoRetriesTransient(t *testing.T) {
	calls := 0
	retries := 0
	p := Policy{Tries: 5, Base: time.Millisecond, OnRetry: func(error) { retries++ }}
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("blip")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if retries != 2 {
		t.Fatalf("retries observed = %d, want 2", retries)
	}
}

func TestDoExhaustsTries(t *testing.T) {
	calls := 0
	last := errors.New("still down")
	p := Policy{Tries: 3, Base: time.Millisecond}
	err := p.Do(context.Background(), func() error {
		calls++
		return last
	})
	if !errors.Is(err, last) {
		t.Fatalf("err = %v, want %v", err, last)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	calls := 0
	bad := errors.New("404 not found")
	p := Policy{Tries: 5, Base: time.Millisecond}
	err := p.Do(context.Background(), func() error {
		calls++
		return Permanent(bad)
	})
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want %v", err, bad)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	// The permanent marker is stripped on return: callers compare against
	// their own sentinel errors, not the wrapper.
	if IsPermanent(err) {
		t.Fatalf("returned error still carries the permanent marker")
	}
}

func TestPermanentNilIsNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatalf("Permanent(nil) != nil")
	}
}

func TestIsPermanentSeesWrapped(t *testing.T) {
	err := Permanent(errors.New("no"))
	if !IsPermanent(err) {
		t.Fatalf("IsPermanent(Permanent(err)) = false")
	}
	if IsPermanent(errors.New("transient")) {
		t.Fatalf("IsPermanent(plain error) = true")
	}
}

func TestDoHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{Tries: 10, Base: 50 * time.Millisecond}
	err := p.Do(ctx, func() error {
		calls++
		cancel() // cancel during the first attempt; the backoff sleep must abort
		return errors.New("blip")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestDoHonorsPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Policy{}.Do(ctx, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("calls = %d, want 0", calls)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	// Observe the sleep sequence indirectly: with Base=1ms, Max=4ms and 5
	// tries the total sleep is 1+2+4+4 = 11ms. An exact-timing assertion
	// would flake; assert only that the loop terminated and every retry
	// fired, which pins the attempt accounting.
	retries := 0
	p := Policy{Tries: 5, Base: time.Millisecond, Max: 4 * time.Millisecond, OnRetry: func(error) { retries++ }}
	start := time.Now()
	err := p.Do(context.Background(), func() error { return errors.New("down") })
	if err == nil {
		t.Fatalf("Do succeeded, want failure")
	}
	if retries != 4 {
		t.Fatalf("retries = %d, want 4", retries)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("elapsed %v, want >= ~11ms of backoff", elapsed)
	}
}
