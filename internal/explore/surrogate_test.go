package explore

import (
	"reflect"
	"testing"

	"photoloop/internal/sweep"
)

// surrogateSpec is the surrogate suite's fixture: a 1024-point lever
// space over a one-layer workload, large enough that a budgeted run sees
// a few percent of the lattice yet coarse enough that its true Pareto
// frontier is compact — so full-budget and half-budget runs can both be
// judged against the frontier points they actually find. Seed and
// workers are pinned like every other determinism fixture here.
func surrogateSpec(budget int) Spec {
	return Spec{
		Name: "test-surrogate",
		Base: sweep.Base{Albireo: &sweep.AlbireoBase{}},
		Axes: []Axis{
			{Param: "or_lanes", Min: float(1), Max: float(8)},
			{Param: "output_lanes", Min: float(1), Max: float(16)},
			{Param: "clusters", Min: float(1), Max: float(8)},
		},
		Workload:      sweep.Workload{Inline: tinyLayer()},
		Objectives:    []string{"pj_per_mac", "area"},
		Budget:        budget,
		MapperBudget:  40,
		Seed:          2,
		SearchWorkers: 1,
	}
}

// frontierCovered reports whether every point of ref is dominated or
// equaled by some point of got (objective vectors compared exactly).
func frontierCovered(t *testing.T, got, ref *Frontier) bool {
	t.Helper()
	coveredAll := true
	for i := range ref.Points {
		rp := &ref.Points[i]
		covered := false
		for j := range got.Points {
			gp := &got.Points[j]
			if reflect.DeepEqual(gp.Objectives, rp.Objectives) || dominates(gp.Objectives, rp.Objectives) {
				covered = true
				break
			}
		}
		if !covered {
			coveredAll = false
			t.Logf("reference point %d (lattice %d, objs %v) not covered", i, rp.Lattice, rp.Objectives)
		}
	}
	return coveredAll
}

// TestSurrogateHalfBudgetDominatesReference is the surrogate's
// effectiveness anchor: the ranked search at half the budget must reach a
// frontier that dominates-or-equals every point the plain mutate-and-jump
// search (the pre-surrogate explorer, preserved as the noSurrogate
// reference mode) finds with the full budget. Since a truly
// Pareto-optimal reference point can only be covered by finding it
// exactly, this asserts the surrogate rediscovers the reference's whole
// frontier on half the evaluations.
func TestSurrogateHalfBudgetDominatesReference(t *testing.T) {
	ref := surrogateSpec(96)
	ref.noSurrogate = true
	fr, err := Run(ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fr.SurrogateRanked != 0 || fr.SurrogateKept != 0 {
		t.Fatalf("reference mode reported surrogate activity: %d ranked, %d kept",
			fr.SurrogateRanked, fr.SurrogateKept)
	}
	sur, err := Run(surrogateSpec(48), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sur.Evals != 48 {
		t.Fatalf("surrogate run spent %d evals, want 48", sur.Evals)
	}
	if sur.SurrogateRanked == 0 || sur.SurrogateKept == 0 {
		t.Fatal("surrogate never armed on the fixture")
	}
	if sur.SurrogateKept >= sur.SurrogateRanked {
		t.Fatalf("surrogate kept %d of %d ranked proposals; ranking never rejected anything",
			sur.SurrogateKept, sur.SurrogateRanked)
	}
	if !frontierCovered(t, sur, fr) {
		t.Errorf("surrogate frontier at budget 48 does not cover the reference frontier at budget 96:\nsurrogate: %d points\nreference: %d points",
			len(sur.Points), len(fr.Points))
	}
}

// TestSurrogateDeterministicAcrossWorkers pins the surrogate path's
// concurrency contract separately from the generic adaptive one: with the
// ranker demonstrably active (counters checked), the frontier and all
// accounting must be identical at 1, 2 and 8 evaluation workers.
func TestSurrogateDeterministicAcrossWorkers(t *testing.T) {
	var base *Frontier
	for _, workers := range []int{1, 2, 8} {
		f, err := Run(surrogateSpec(48), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if f.SurrogateRanked == 0 {
			t.Fatalf("workers=%d: surrogate never armed", workers)
		}
		if base == nil {
			base = f
			continue
		}
		if !reflect.DeepEqual(f, base) {
			t.Errorf("workers=%d: frontier differs from workers=1", workers)
		}
	}
}

// TestFrontierAggregatesSearchFunnel checks the mapper's search funnel
// surfaces on the frontier: the evaluated points' pruned/delta/full
// counters must sum to something visible (the whole point of reporting
// them), on both strategies.
func TestFrontierAggregatesSearchFunnel(t *testing.T) {
	grid := smallSpec()
	grid.Strategy = StrategyGrid
	fg, err := Run(grid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fg.FullEvals == 0 {
		t.Errorf("grid frontier reports no full evaluations")
	}
	fa, err := Run(surrogateSpec(48), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fa.FullEvals == 0 {
		t.Errorf("adaptive frontier reports no full evaluations")
	}
	if fa.Pruned == 0 {
		t.Errorf("adaptive frontier reports no pruned candidates; the bound gate never fired")
	}
}
