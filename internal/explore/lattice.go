package explore

import (
	"fmt"

	"photoloop/internal/sweep"
)

// LatticeEvaluator evaluates individual lattice points of an exploration
// Spec on demand: the task-execution hook sharded workers run explore
// generations through. A lattice index is the mixed-radix encoding of a
// choice vector, first axis most significant — exactly the indices the
// adaptive strategy proposes and Options.PreEvaluate exposes — and each
// Eval reproduces the same point a local run would evaluate, through the
// same sweep evaluator and shared mapper.Cache (so every search it
// computes lands in the cache's persister, which is the whole reason a
// worker calls it). Safe for concurrent use.
type LatticeEvaluator struct {
	ev *sweep.Evaluator
	s  *space
}

// NewLatticeEvaluator canonicalizes the spec (the same withDefaults a Run
// applies) and prepares its space and evaluator. Options contributes only
// the Cache; concurrency is the caller's.
func NewLatticeEvaluator(sp Spec, opts Options) (*LatticeEvaluator, error) {
	sp, err := sp.withDefaults()
	if err != nil {
		return nil, err
	}
	s, err := resolveSpace(sp.Axes)
	if err != nil {
		return nil, err
	}
	ev, err := sweep.NewEvaluator(sp.sweepSpec(s, false), sweep.Options{Cache: opts.Cache})
	if err != nil {
		return nil, err
	}
	return &LatticeEvaluator{ev: ev, s: s}, nil
}

// Size is the lattice's point count.
func (e *LatticeEvaluator) Size() int64 { return e.s.size }

// Eval evaluates one lattice point. Infeasible points come back with
// Point.Err set, as in a Run; an error return is spec-level (the lattice
// index out of range, a bad axis application) and poisons the whole
// task range.
func (e *LatticeEvaluator) Eval(lattice int64) (*sweep.Point, error) {
	if lattice < 0 || lattice >= e.s.size {
		return nil, fmt.Errorf("explore: lattice index %d out of range [0, %d)", lattice, e.s.size)
	}
	return e.ev.Eval(int(lattice), e.s.valuesAt(lattice), 0, 0)
}
