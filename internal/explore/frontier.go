package explore

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"photoloop/internal/md"
	"photoloop/internal/sweep"
)

// FrontierPoint is one non-dominated design: the full evaluated sweep
// point (axis assignments in Params/Variant — the provenance of which
// axis values produced it — plus every modeled metric), the objective
// vector in spec order, and how many evaluated designs it dominates.
type FrontierPoint struct {
	sweep.Point
	// Lattice is the point's position in the cross-product lattice
	// (first axis most significant) — stable across strategies, unlike
	// the embedded Index, which counts evaluation order.
	Lattice int64 `json:"lattice_index"`
	// Objectives holds the point's objective values in Spec.Objectives
	// order (all minimized).
	Objectives []float64 `json:"objective_values"`
	// Dominates counts how many evaluated feasible designs this point
	// Pareto-dominates.
	Dominates int `json:"dominates"`
}

// Frontier is a completed exploration: the Pareto-optimal points of the
// searched space, plus the accounting that says how much of the space was
// covered and how much work the shared search cache absorbed.
type Frontier struct {
	// Name echoes the spec's label.
	Name string `json:"name,omitempty"`
	// Strategy is the search that ran ("grid" or "adaptive").
	Strategy string `json:"strategy"`
	// Objectives are the canonical frontier dimensions, in spec order.
	Objectives []string `json:"objectives"`
	// SpaceSize is the full lattice's point count; Evals of them were
	// evaluated (all of them under the grid strategy).
	SpaceSize int64 `json:"space_size"`
	Evals     int   `json:"evals"`
	// Infeasible counts evaluated points that produced no result: the
	// architecture failed to build or evaluate, or — for grid runs that
	// returned an error — the point failed or was canceled. The adaptive
	// strategy skips infeasible points and keeps searching; the grid
	// strategy (matching sweep.Run) returns the partial frontier together
	// with the run error.
	Infeasible int `json:"infeasible,omitempty"`
	// Dominated counts evaluated feasible points that did not make the
	// frontier.
	Dominated int `json:"dominated"`
	// CacheHits and CacheMisses count deduplicated versus computed layer
	// searches (see mapper.Cache).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Pruned, DeltaEvals and FullEvals sum the mapper's search funnel
	// across the evaluated feasible points: candidates discarded by the
	// admissible lower bound without a full evaluation, evaluations that
	// reused shared-prefix state, and evaluations computed from scratch.
	Pruned     int `json:"pruned,omitempty"`
	DeltaEvals int `json:"delta_evals,omitempty"`
	FullEvals  int `json:"full_evals,omitempty"`
	// SurrogateRanked counts adaptive proposals scored by the surrogate
	// predictor; SurrogateKept of them won a real evaluation. Zero for
	// grid runs and for adaptive runs too small to arm the surrogate.
	SurrogateRanked int `json:"surrogate_ranked,omitempty"`
	SurrogateKept   int `json:"surrogate_kept,omitempty"`
	// Points is the Pareto frontier, sorted by objective vector
	// (lexicographically ascending, ties by lattice index) — so equal
	// specs produce byte-equal frontiers regardless of strategy or
	// worker count.
	Points []FrontierPoint `json:"points"`
}

// buildFrontier dominance-filters the evaluated points into a Frontier.
// The incremental archive pass is O(evals × frontier); the per-point
// dominated counts are O(frontier × evals).
func buildFrontier(sp *Spec, strategy string, s *space, evaluated []evalPoint, infeasible int) *Frontier {
	f := &Frontier{
		Name:       sp.Name,
		Strategy:   strategy,
		Objectives: append([]string(nil), sp.Objectives...),
		SpaceSize:  s.size,
		Evals:      len(evaluated) + infeasible,
		Infeasible: infeasible,
	}
	for i := range evaluated {
		f.Pruned += evaluated[i].point.Pruned
		f.DeltaEvals += evaluated[i].point.DeltaEvals
		f.FullEvals += evaluated[i].point.FullEvals
	}
	var archive []int
	for i := range evaluated {
		dominated := false
		keep := archive[:0]
		for _, ai := range archive {
			if dominates(evaluated[ai].objs, evaluated[i].objs) {
				dominated = true
				break
			}
			if !dominates(evaluated[i].objs, evaluated[ai].objs) {
				keep = append(keep, ai)
			}
		}
		if dominated {
			continue
		}
		archive = append(keep, i)
	}
	f.Dominated = len(evaluated) - len(archive)
	for _, ai := range archive {
		ep := &evaluated[ai]
		fp := FrontierPoint{
			Point:      *ep.point,
			Lattice:    ep.lattice,
			Objectives: ep.objs,
		}
		for j := range evaluated {
			if dominates(ep.objs, evaluated[j].objs) {
				fp.Dominates++
			}
		}
		f.Points = append(f.Points, fp)
	}
	sort.Slice(f.Points, func(i, j int) bool {
		a, b := &f.Points[i], &f.Points[j]
		for k := range a.Objectives {
			if a.Objectives[k] != b.Objectives[k] {
				return a.Objectives[k] < b.Objectives[k]
			}
		}
		return a.Lattice < b.Lattice
	})
	return f
}

// WriteJSON writes the frontier as an indented JSON document (the same
// bytes POST /v1/explore answers).
func (f *Frontier) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// paramColumns returns the axis param names appearing in the frontier,
// sorted.
func (f *Frontier) paramColumns() []string {
	seen := map[string]bool{}
	var cols []string
	for i := range f.Points {
		for k := range f.Points[i].Params {
			if !seen[k] {
				seen[k] = true
				cols = append(cols, k)
			}
		}
	}
	sort.Strings(cols)
	return cols
}

// objectiveColumn maps a canonical objective to its display header and
// the formatter used in CSV/markdown output.
func objectiveColumn(name string) (header string, format func(float64) string) {
	switch name {
	case objPJPerMAC:
		return "pJ/MAC", func(v float64) string { return fmt.Sprintf("%.4f", v) }
	case objDelay:
		return "cycles", func(v float64) string { return fmt.Sprintf("%.4g", v) }
	case objArea:
		return "area mm²", func(v float64) string { return fmt.Sprintf("%.2f", v/1e6) }
	case objEDP:
		return "pJ·cycles", func(v float64) string { return fmt.Sprintf("%.4g", v) }
	case objAccuracy:
		return "acc loss %", func(v float64) string { return fmt.Sprintf("%.4f", v) }
	default: // objEnergy
		return "total pJ", func(v float64) string { return fmt.Sprintf("%.4g", v) }
	}
}

// WriteCSV writes the frontier as CSV: identity columns, one column per
// axis param (sorted), the objective values, and the summary metrics.
func (f *Frontier) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	params := f.paramColumns()
	header := []string{"lattice_index", "variant"}
	header = append(header, params...)
	for _, o := range f.Objectives {
		// Prefixed so an objective never collides with the fixed metric
		// columns (pj_per_mac appears in both roles otherwise).
		header = append(header, "objective_"+o)
	}
	header = append(header, "dominates",
		"total_pj", "pj_per_mac", "cycles", "macs_per_cycle", "utilization",
		"area_mm2", "effective_bits", "evaluations")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range f.Points {
		p := &f.Points[i]
		row := []string{strconv.FormatInt(p.Lattice, 10), p.Variant}
		for _, k := range params {
			if v, ok := p.Params[k]; ok {
				row = append(row, fmt.Sprint(v))
			} else {
				row = append(row, "")
			}
		}
		for _, v := range p.Objectives {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		effBits := ""
		if p.EffectiveBits != 0 || p.SNRDB != 0 || p.AccuracyLossPct != 0 {
			effBits = fmt.Sprintf("%.4f", p.EffectiveBits)
		}
		row = append(row, strconv.Itoa(p.Dominates),
			fmt.Sprintf("%.4f", p.TotalPJ), fmt.Sprintf("%.6f", p.PJPerMAC),
			fmt.Sprintf("%.1f", p.Cycles), fmt.Sprintf("%.3f", p.MACsPerCycle),
			fmt.Sprintf("%.4f", p.Utilization), fmt.Sprintf("%.4f", p.AreaUM2/1e6),
			effBits, strconv.Itoa(p.Evaluations))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown writes the frontier as one markdown table (through the
// shared md helper, so axis values and names with pipes cannot break
// rows) plus a coverage trailer — directly pasteable into docs.
func (f *Frontier) WriteMarkdown(w io.Writer) error {
	params := f.paramColumns()
	headers := []string{"#"}
	align := "r"
	headers = append(headers, params...)
	for range params {
		align += "l"
	}
	formats := make([]func(float64) string, len(f.Objectives))
	for i, o := range f.Objectives {
		h, fmtFn := objectiveColumn(o)
		headers = append(headers, h)
		formats[i] = fmtFn
		align += "r"
	}
	headers = append(headers, "util", "dominates")
	align += "rr"

	rows := make([][]string, 0, len(f.Points))
	for i := range f.Points {
		p := &f.Points[i]
		row := []string{strconv.Itoa(i + 1)}
		for _, k := range params {
			if v, ok := p.Params[k]; ok {
				row = append(row, fmt.Sprint(v))
			} else {
				row = append(row, "")
			}
		}
		for j, v := range p.Objectives {
			row = append(row, formats[j](v))
		}
		row = append(row, fmt.Sprintf("%.1f%%", 100*p.Utilization), strconv.Itoa(p.Dominates))
		rows = append(rows, row)
	}
	if err := md.Table(w, headers, align, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\n%d Pareto-optimal of %d evaluated points (%s strategy, space %d); %d dominated.\n",
		len(f.Points), f.Evals, f.Strategy, f.SpaceSize, f.Dominated)
	return err
}
