package explore

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"photoloop/internal/mapper"
	"photoloop/internal/sweep"
	"photoloop/internal/workload"
)

// smallSpec is the deterministic 18-point fixture most tests share:
// pinned seed and search workers, tiny mapper budget, the Fig. 5 reuse
// levers on the stock Albireo preset.
func smallSpec() Spec {
	return Spec{
		Name: "test-explore",
		Base: sweep.Base{Preset: "albireo"},
		Axes: []Axis{
			{Param: "or_lanes", Values: []any{1, 3, 5}},
			{Param: "output_lanes", Values: []any{3, 9, 15}},
			{Param: "weight_reuse", Values: []any{false, true}},
		},
		Workload:      sweep.Workload{Network: "alexnet"},
		Objectives:    []string{"energy", "area"},
		MapperBudget:  60,
		Seed:          1,
		SearchWorkers: 1,
	}
}

// tinyLayer builds a one-layer inline workload for tests that evaluate
// many candidates.
func tinyLayer() *workload.Network {
	l := workload.NewConv("tiny", 1, 16, 16, 8, 8, 3, 3, 1, 1)
	return &workload.Network{Name: "tiny", Layers: []workload.Layer{l}}
}

// testMetric is the test's own objective extraction — deliberately
// independent of the package's metric() so the equivalence below checks
// the real thing.
func testMetric(name string, p *sweep.Point) float64 {
	switch name {
	case "energy":
		return p.TotalPJ
	case "pj_per_mac":
		return p.PJPerMAC
	case "delay":
		return p.Cycles
	case "area":
		return p.AreaUM2
	case "edp":
		return p.TotalPJ * p.Cycles
	}
	panic("unknown objective " + name)
}

// TestGridFrontierMatchesBruteForceSweep is the exhaustive strategy's
// equivalence anchor: the frontier must be bit-identical to running the
// equivalent sweep.Run grid directly and applying a brute-force O(n²)
// all-pairs dominance filter.
func TestGridFrontierMatchesBruteForceSweep(t *testing.T) {
	sp := smallSpec()
	sp.Strategy = StrategyGrid
	f, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Strategy != StrategyGrid {
		t.Fatalf("strategy = %q, want grid", f.Strategy)
	}

	// The equivalent sweep, built by hand.
	res, err := sweep.Run(sweep.Spec{
		Name: sp.Name,
		Base: sp.Base,
		Axes: []sweep.Axis{
			{Param: "or_lanes", Values: []any{1, 3, 5}},
			{Param: "output_lanes", Values: []any{3, 9, 15}},
			{Param: "weight_reuse", Values: []any{false, true}},
		},
		Workloads:     []sweep.Workload{sp.Workload},
		Objectives:    []string{"energy"},
		Budget:        sp.MapperBudget,
		Seed:          sp.Seed,
		SearchWorkers: sp.SearchWorkers,
	}, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Evals != len(res.Points) || int(f.SpaceSize) != len(res.Points) {
		t.Fatalf("evals %d / space %d, want %d", f.Evals, f.SpaceSize, len(res.Points))
	}

	// Brute force: all-pairs dominance over the sweep's points.
	objs := make([][]float64, len(res.Points))
	for i := range res.Points {
		objs[i] = []float64{testMetric("energy", &res.Points[i]), testMetric("area", &res.Points[i])}
	}
	domBy := func(a, b []float64) bool { // a dominates b
		return a[0] <= b[0] && a[1] <= b[1] && (a[0] < b[0] || a[1] < b[1])
	}
	var want []int
	for i := range res.Points {
		dominated := false
		for j := range res.Points {
			if j != i && domBy(objs[j], objs[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			want = append(want, i)
		}
	}
	if len(f.Points) != len(want) {
		t.Fatalf("frontier has %d points, brute force %d", len(f.Points), len(want))
	}
	if f.Dominated != len(res.Points)-len(want) {
		t.Errorf("dominated = %d, want %d", f.Dominated, len(res.Points)-len(want))
	}

	// Every frontier point must be bit-identical to the sweep's point.
	byIndex := map[int64]*FrontierPoint{}
	for i := range f.Points {
		byIndex[f.Points[i].Lattice] = &f.Points[i]
	}
	for _, wi := range want {
		sp := &res.Points[wi]
		fp, ok := byIndex[int64(sp.Index)]
		if !ok {
			t.Fatalf("brute-force frontier point %d (%s) missing from explore frontier", sp.Index, sp.Variant)
		}
		if fp.TotalPJ != sp.TotalPJ || fp.Cycles != sp.Cycles || fp.PJPerMAC != sp.PJPerMAC ||
			fp.AreaUM2 != sp.AreaUM2 || fp.Utilization != sp.Utilization ||
			fp.MACsPerCycle != sp.MACsPerCycle || fp.Evaluations != sp.Evaluations {
			t.Errorf("point %d: metrics differ from sweep: %+v vs %+v", sp.Index, fp.Point, *sp)
		}
		if fp.Variant != sp.Variant || !reflect.DeepEqual(fp.Params, sp.Params) {
			t.Errorf("point %d: provenance differs: %q %v vs %q %v",
				sp.Index, fp.Variant, fp.Params, sp.Variant, sp.Params)
		}
		if fp.Objectives[0] != objs[wi][0] || fp.Objectives[1] != objs[wi][1] {
			t.Errorf("point %d: objective vector %v, want %v", sp.Index, fp.Objectives, objs[wi])
		}
	}
}

// TestAdaptiveMatchesGridOnSmallSpace pins the strategy contract: when
// the space fits the budget, the adaptive strategy enumerates it and must
// find the exact grid frontier, bit for bit.
func TestAdaptiveMatchesGridOnSmallSpace(t *testing.T) {
	grid := smallSpec()
	grid.Strategy = StrategyGrid
	fg, err := Run(grid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	adaptive := smallSpec()
	adaptive.Strategy = StrategyAdaptive
	adaptive.Budget = 18 // == space size
	fa, err := Run(adaptive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fa.Strategy != StrategyAdaptive {
		t.Fatalf("strategy = %q, want adaptive", fa.Strategy)
	}
	if fa.Evals != fg.Evals || fa.Dominated != fg.Dominated {
		t.Errorf("adaptive evals/dominated = %d/%d, grid %d/%d", fa.Evals, fa.Dominated, fg.Evals, fg.Dominated)
	}
	if !reflect.DeepEqual(fa.Points, fg.Points) {
		t.Errorf("adaptive frontier differs from grid:\n%+v\nvs\n%+v", fa.Points, fg.Points)
	}
}

// TestAutoStrategySelection pins the auto rule: grid when the space fits
// the budget, adaptive otherwise.
func TestAutoStrategySelection(t *testing.T) {
	sp := smallSpec()
	sp.Budget = 18
	f, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Strategy != StrategyGrid {
		t.Errorf("auto with budget >= space chose %q, want grid", f.Strategy)
	}
	sp = smallSpec()
	sp.Budget = 7
	f, err = Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Strategy != StrategyAdaptive {
		t.Errorf("auto with budget < space chose %q, want adaptive", f.Strategy)
	}
	if f.Evals != 7 {
		t.Errorf("evals = %d, want the budget (7)", f.Evals)
	}
}

// bigSpec spans >10^6 lattice points on a one-layer workload — the
// adaptive strategy's scale fixture.
func bigSpec() Spec {
	return Spec{
		Name: "test-big",
		Base: sweep.Base{Albireo: &sweep.AlbireoBase{}},
		Axes: []Axis{
			{Param: "or_lanes", Min: float(1), Max: float(32)},
			{Param: "output_lanes", Min: float(1), Max: float(64)},
			{Param: "clusters", Min: float(1), Max: float(32)},
			{Param: "pixel_lanes", Min: float(4), Max: float(64), Step: 4},
		},
		Workload:      sweep.Workload{Inline: tinyLayer()},
		Objectives:    []string{"pj_per_mac", "area"},
		Budget:        24,
		MapperBudget:  40,
		Seed:          7,
		SearchWorkers: 1,
	}
}

// TestAdaptiveCoversHugeSpaceWithinBudget is the scale anchor: a
// million-point lattice explored within a fixed evaluation budget, with
// evals, cache traffic and dominance accounting reported.
func TestAdaptiveCoversHugeSpaceWithinBudget(t *testing.T) {
	sp := bigSpec()
	f, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.SpaceSize <= 1_000_000 {
		t.Fatalf("space = %d, fixture must exceed 10^6", f.SpaceSize)
	}
	if f.Strategy != StrategyAdaptive {
		t.Fatalf("strategy = %q", f.Strategy)
	}
	if f.Evals != sp.Budget {
		t.Errorf("evals = %d, want the budget %d", f.Evals, sp.Budget)
	}
	if len(f.Points) == 0 {
		t.Fatal("empty frontier")
	}
	if len(f.Points)+f.Dominated+f.Infeasible != f.Evals {
		t.Errorf("accounting: %d frontier + %d dominated + %d infeasible != %d evals",
			len(f.Points), f.Dominated, f.Infeasible, f.Evals)
	}
	if f.CacheMisses == 0 {
		t.Error("cache misses = 0; searches did not go through the shared cache")
	}
	for i := range f.Points {
		if len(f.Points[i].Params) != len(sp.Axes) {
			t.Errorf("point %d: provenance has %d params, want %d", i, len(f.Points[i].Params), len(sp.Axes))
		}
	}
}

// TestAdaptiveDeterministicAcrossWorkers pins the concurrency contract:
// for a fixed (Spec, Seed), the frontier — points, order, accounting —
// is identical at 1, 2 and 8 evaluation workers.
func TestAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	var base *Frontier
	for _, workers := range []int{1, 2, 8} {
		f, err := Run(bigSpec(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = f
			continue
		}
		if !reflect.DeepEqual(f, base) {
			t.Errorf("workers=%d: frontier differs from workers=1:\n%+v\nvs\n%+v", workers, f, base)
		}
	}
}

// TestExploreSharedCacheReuse pins the cache contract: re-running a
// search against a warmed shared cache recomputes nothing and returns the
// identical frontier.
func TestExploreSharedCacheReuse(t *testing.T) {
	cache := mapper.NewCache()
	first, err := Run(bigSpec(), Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheMisses == 0 {
		t.Fatal("first run missed nothing; fixture broken")
	}
	second, err := Run(bigSpec(), Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheMisses != 0 {
		t.Errorf("second run recomputed %d searches despite the warmed cache", second.CacheMisses)
	}
	if !reflect.DeepEqual(first.Points, second.Points) {
		t.Error("cached frontier differs from computed frontier")
	}
}

// TestAxisResolve covers the two axis forms and their failure modes.
func TestAxisResolve(t *testing.T) {
	ints, err := (&Axis{Param: "clusters", Min: float(2), Max: float(8), Step: 2}).resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ints, []any{2, 4, 6, 8}) {
		t.Errorf("integral range = %v", ints)
	}
	floats, err := (&Axis{Param: "clock_ghz", Min: float(0.5), Max: float(1.5), Step: 0.5}).resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(floats, []any{0.5, 1.0, 1.5}) {
		t.Errorf("float range = %v", floats)
	}
	values, err := (&Axis{Param: "or_lanes", Values: []any{1, 3}}).resolve()
	if err != nil || !reflect.DeepEqual(values, []any{1, 3}) {
		t.Errorf("values form = %v, %v", values, err)
	}
	for name, ax := range map[string]Axis{
		"both forms":  {Param: "x", Values: []any{1}, Min: float(0), Max: float(1)},
		"missing max": {Param: "x", Min: float(0)},
		"no param":    {},
		"max < min":   {Param: "x", Min: float(2), Max: float(1)},
		"neg step":    {Param: "x", Min: float(0), Max: float(1), Step: -1},
		"over cap":    {Param: "x", Min: float(0), Max: float(1e6)},
		// Must error, not overflow the int conversion and panic in make.
		"huge range": {Param: "x", Min: float(0), Max: float(1e300)},
		"inf bound":  {Param: "x", Min: float(0), Max: float(math.Inf(1))},
		"nan bound":  {Param: "x", Min: float(math.NaN()), Max: float(1)},
		"tiny step":  {Param: "x", Min: float(0), Max: float(1), Step: 5e-324},
	} {
		if _, err := ax.resolve(); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestSpecValidation covers spec-level failure modes, including axis
// params the sweep engine rejects (surfaced before any evaluation).
func TestSpecValidation(t *testing.T) {
	run := func(mutate func(*Spec)) error {
		sp := smallSpec()
		sp.Budget = 4 // adaptive, so bad axis params hit the pre-validation
		mutate(&sp)
		_, err := Run(sp, Options{})
		return err
	}
	for name, mutate := range map[string]func(*Spec){
		"no axes":              func(sp *Spec) { sp.Axes = nil },
		"unknown objective":    func(sp *Spec) { sp.Objectives = []string{"throughput"} },
		"duplicate objective":  func(sp *Spec) { sp.Objectives = []string{"energy", "total_pj"} },
		"bad mapper objective": func(sp *Spec) { sp.MapperObjective = "speed" },
		"bad strategy":         func(sp *Spec) { sp.Strategy = "random" },
		"unknown axis param":   func(sp *Spec) { sp.Axes[0].Param = "warp_cores" },
		"no workload":          func(sp *Spec) { sp.Workload = sweep.Workload{} },
	} {
		if err := run(mutate); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestContextCancellation checks a canceled context stops both
// strategies with an error, and that the documented partial frontier
// (possibly empty, never nil) comes back alongside it.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sp := bigSpec()
	f, err := Run(sp, Options{Context: ctx})
	if err == nil {
		t.Fatal("canceled adaptive run returned no error")
	}
	if f == nil {
		t.Fatal("canceled adaptive run returned a nil frontier")
	}
	grid := smallSpec()
	grid.Strategy = StrategyGrid
	f, err = Run(grid, Options{Context: ctx})
	if err == nil {
		t.Fatal("canceled grid run returned no error")
	}
	if f == nil {
		t.Fatal("canceled grid run returned a nil frontier")
	}
	if f.Infeasible == 0 || len(f.Points) != 0 {
		t.Errorf("canceled grid frontier: %d infeasible, %d points", f.Infeasible, len(f.Points))
	}
}

// TestFrontierMarkdownGolden pins the rendered frontier for the small
// seeded fixture byte-for-byte. Regenerate with
// UPDATE_DOCS=1 go test ./internal/explore -run TestFrontierMarkdownGolden
func TestFrontierMarkdownGolden(t *testing.T) {
	f, err := Run(smallSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "frontier_golden.md")
	if os.Getenv("UPDATE_DOCS") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden updated")
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("frontier markdown drifted from golden (UPDATE_DOCS=1 to regenerate):\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestFrontierCSVAndJSON smoke the remaining writers: parseable output,
// one row per frontier point.
func TestFrontierCSVAndJSON(t *testing.T) {
	f, err := Run(smallSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := f.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(csvBuf.Bytes(), []byte("\n"))
	if lines != len(f.Points)+1 {
		t.Errorf("CSV has %d lines, want %d", lines, len(f.Points)+1)
	}
	var jsonBuf bytes.Buffer
	if err := f.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var round Frontier
	if err := json.Unmarshal(jsonBuf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if len(round.Points) != len(f.Points) || round.Strategy != f.Strategy {
		t.Errorf("JSON round trip lost points: %d vs %d", len(round.Points), len(f.Points))
	}
}
