package explore

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"

	"photoloop/internal/sweep"
)

// DecodeSpec parses an exploration spec document strictly (unknown fields
// are errors), as `photoloop explore -spec` and `POST /v1/explore` do.
func DecodeSpec(r io.Reader) (Spec, error) {
	var sp Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("explore: decoding spec: %w", err)
	}
	return sp, nil
}

// maxRequestBytes bounds POST /v1/explore bodies (specs are small
// documents, like sweep specs).
const maxRequestBytes = 8 << 20

// Attach mounts POST /v1/explore on a sweep server: the request body is a
// Spec, the response a Frontier (JSON, or CSV/markdown with ?format=).
// Explorations share the server's process-wide search cache and its
// heavy-run admission semaphore, so an exploration and a sweep never
// oversubscribe the machine together.
func Attach(s *sweep.Server) {
	s.Mount("POST /v1/explore", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handleExplore(s, w, r)
	}))
}

func handleExplore(s *sweep.Server, w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		sweep.WriteHTTPError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	release, err := s.AdmitHeavy(r.Context())
	if err != nil {
		sweep.WriteHTTPError(w, http.StatusServiceUnavailable, fmt.Errorf("explore queue: %w", err))
		return
	}
	defer release()
	f, err := Run(sp, Options{Workers: s.Workers, Cache: s.SearchCache(), Context: r.Context()})
	if err != nil {
		sweep.WriteHTTPError(w, http.StatusUnprocessableEntity, err)
		return
	}
	switch r.URL.Query().Get("format") {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := f.WriteCSV(w); err != nil {
			log.Printf("explore: writing CSV response: %v", err)
		}
	case "markdown":
		w.Header().Set("Content-Type", "text/markdown")
		if err := f.WriteMarkdown(w); err != nil {
			log.Printf("explore: writing markdown response: %v", err)
		}
	default:
		w.Header().Set("Content-Type", "application/json")
		if err := sweep.EncodeResponseJSON(w, f); err != nil {
			log.Printf("explore: writing JSON response: %v", err)
		}
	}
}
