package explore

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"photoloop/internal/sweep"
)

// generationSize is how many candidates each adaptive generation
// proposes. Proposals are drawn single-threaded between generations and
// the archive is updated only after a whole generation is evaluated, so
// the searched candidate set — and therefore the frontier — depends only
// on (Spec, Seed), never on the evaluation pool size.
const generationSize = 16

// proposalRetries bounds how many collisions with already-visited points
// a proposal tolerates before falling back to a lattice scan for the next
// unvisited index.
const proposalRetries = 32

// candidate is one proposed, not-yet-evaluated lattice point.
type candidate struct {
	lattice int64
	values  []any
}

// adaptive carries the state of one evolutionary run.
type adaptive struct {
	sp      *Spec
	space   *space
	rng     *rand.Rand
	visited map[int64]struct{}

	evaluated  []evalPoint
	archive    []int // indices into evaluated, mutually non-dominated
	infeasible int
	firstErr   string
}

// runAdaptive is the budgeted evolutionary search: seed the lattice
// corners plus uniform draws, then repeatedly mutate non-dominated
// incumbents (with occasional uniform jumps), evaluating each generation
// concurrently through the shared sweep evaluator. When the whole space
// fits the budget it degenerates to exhaustive enumeration in lattice
// order — the same point set, and therefore the same frontier, as the
// grid strategy (test-pinned).
func runAdaptive(sp *Spec, s *space, opts Options) (*Frontier, error) {
	ev, err := sweep.NewEvaluator(sp.sweepSpec(s, false), sweep.Options{Cache: opts.Cache})
	if err != nil {
		return nil, err
	}
	// Surface unknown axis params and unbuildable bases before spending
	// any evaluation: building the first lattice point exercises base
	// resolution and every axis's apply path.
	if err := ev.Validate(s.valuesAt(0)); err != nil {
		return nil, err
	}
	hits0, misses0 := ev.CacheStats()

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	x := &adaptive{sp: sp, space: s, rng: rand.New(rand.NewSource(sp.Seed)), visited: map[int64]struct{}{}}
	total := sp.Budget
	exhaustive := s.size <= int64(sp.Budget)
	if exhaustive {
		total = int(s.size)
	}
	workers := poolSize(sp, &opts)

	var mu sync.Mutex
	done := 0
	progress := func() {
		if opts.Progress == nil {
			return
		}
		mu.Lock()
		done++
		opts.Progress(done, total)
		mu.Unlock()
	}

	canceled := func() error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	finish := func(runErr error) (*Frontier, error) {
		f := buildFrontier(sp, StrategyAdaptive, s, x.evaluated, x.infeasible)
		hits1, misses1 := ev.CacheStats()
		f.CacheHits, f.CacheMisses = hits1-hits0, misses1-misses0
		if runErr != nil {
			return f, fmt.Errorf("explore: %w", runErr)
		}
		if len(x.evaluated) == 0 {
			return f, fmt.Errorf("explore: every evaluated point failed (first: %s)", x.firstErr)
		}
		return f, nil
	}

	evals := 0
	for evals < total {
		if err := canceled(); err != nil {
			return finish(err)
		}
		want := total - evals
		if want > generationSize {
			want = generationSize
		}
		var batch []candidate
		if exhaustive {
			// Lattice order, exactly the grid strategy's point order.
			for k := 0; k < want; k++ {
				lat := int64(evals + k)
				batch = append(batch, candidate{lattice: lat, values: s.valuesAt(lat)})
			}
		} else {
			batch = x.propose(want)
		}
		if len(batch) == 0 {
			break // space exhausted below budget
		}
		points, err := evaluateBatch(ctx, ev, batch, evals, workers, progress)
		if err != nil {
			return finish(err)
		}
		for k := range batch {
			evals++
			p := points[k]
			if p.Err != "" {
				x.infeasible++
				if x.firstErr == "" {
					x.firstErr = p.Err
				}
				continue
			}
			x.insert(evalPoint{point: p, lattice: batch[k].lattice, objs: objsOf(sp.Objectives, p)})
		}
	}
	return finish(nil)
}

// evaluateBatch evaluates one generation on a bounded worker pool.
// Results are slot-ordered, so downstream archive updates are
// deterministic regardless of pool size. Point indices continue the
// run's evaluation sequence.
func evaluateBatch(ctx context.Context, ev *sweep.Evaluator, batch []candidate, base, workers int, progress func()) ([]*sweep.Point, error) {
	points := make([]*sweep.Point, len(batch))
	errs := make([]error, len(batch))
	if workers > len(batch) {
		workers = len(batch)
	}
	var wg sync.WaitGroup
	slots := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range slots {
				points[k], errs[k] = ev.Eval(base+k, batch[k].values, 0, 0)
				progress()
			}
		}()
	}
	for k := range batch {
		slots <- k
	}
	close(slots)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for k, err := range errs {
		if err != nil {
			// Eval errors are spec-level (bad axis value), not
			// point-level; they abort the run.
			return nil, fmt.Errorf("candidate %v: %w", batch[k].values, err)
		}
	}
	return points, nil
}

// insert adds a feasible evaluated point and maintains the non-dominated
// archive incrementally.
func (x *adaptive) insert(p evalPoint) {
	x.evaluated = append(x.evaluated, p)
	idx := len(x.evaluated) - 1
	keep := x.archive[:0]
	for _, ai := range x.archive {
		if dominates(x.evaluated[ai].objs, p.objs) {
			return // dominated; archive unchanged (prefix already intact)
		}
		if !dominates(p.objs, x.evaluated[ai].objs) {
			keep = append(keep, ai)
		}
	}
	x.archive = append(keep, idx)
}

// propose draws up to want unvisited candidates: mutations of archive
// incumbents most of the time, uniform jumps otherwise, with a lattice
// scan as the collision fallback so the budget is always spendable while
// unvisited points remain.
func (x *adaptive) propose(want int) []candidate {
	var out []candidate
	add := func(lat int64) bool {
		if _, ok := x.visited[lat]; ok {
			return false
		}
		x.visited[lat] = struct{}{}
		out = append(out, candidate{lattice: lat, values: x.space.valuesAt(lat)})
		return true
	}
	if len(x.visited) == 0 {
		// Deterministic anchors: the lattice corners bracket every axis.
		add(0)
		if len(out) < want {
			add(x.space.size - 1)
		}
	}
	for len(out) < want && int64(len(x.visited)) < x.space.size {
		var lat int64
		found := false
		for try := 0; try < proposalRetries; try++ {
			if len(x.archive) > 0 && x.rng.Float64() < 0.8 {
				parent := x.evaluated[x.archive[x.rng.Intn(len(x.archive))]]
				lat = x.mutate(parent.lattice)
			} else {
				lat = x.rng.Int63n(x.space.size)
			}
			if _, ok := x.visited[lat]; !ok {
				found = true
				break
			}
		}
		if !found {
			// Scan forward from a random start for the next unvisited
			// index. The visited set is at most Budget entries, so this
			// terminates quickly even in huge lattices.
			lat = x.rng.Int63n(x.space.size)
			for {
				if _, ok := x.visited[lat]; !ok {
					break
				}
				lat++
				if lat == x.space.size {
					lat = 0
				}
			}
		}
		add(lat)
	}
	return out
}

// mutate perturbs a parent's choice vector: one or two axes move, each
// either one lattice step (local refinement, the common case) or to a
// uniform value (exploration).
func (x *adaptive) mutate(parent int64) int64 {
	choice := x.space.choiceAt(parent)
	edits := 1 + x.rng.Intn(2)
	for e := 0; e < edits; e++ {
		i := x.rng.Intn(len(choice))
		n := len(x.space.params[i])
		if n == 1 {
			continue
		}
		if x.rng.Float64() < 0.7 {
			step := 1
			if x.rng.Intn(2) == 0 {
				step = -1
			}
			c := choice[i] + step
			if c < 0 || c >= n {
				c = choice[i] - step
			}
			choice[i] = c
		} else {
			choice[i] = x.rng.Intn(n)
		}
	}
	return x.space.indexOf(choice)
}
