package explore

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"photoloop/internal/sweep"
)

// generationSize is how many candidates each adaptive generation
// proposes. Proposals are drawn single-threaded between generations and
// the archive is updated only after a whole generation is evaluated, so
// the searched candidate set — and therefore the frontier — depends only
// on (Spec, Seed), never on the evaluation pool size.
const generationSize = 16

// proposalRetries bounds how many collisions with already-visited points
// a proposal tolerates before falling back to a lattice scan for the next
// unvisited index.
const proposalRetries = 32

// Surrogate proposal ranking: once surrogateMinEvals points are evaluated,
// each generation draws surrogateOversample times as many proposals as it
// will evaluate, predicts every proposal's objective vector by
// inverse-square-distance-weighted interpolation over the evaluated
// points (in normalized per-axis position space), and keeps only the most
// promising. Prediction is pure arithmetic over already-paid evaluations
// — the rejected proposals cost nothing — so the evaluation budget
// concentrates on the space the archive says is worth measuring.
// Proposals are still drawn and ranked single-threaded between
// generations, so the searched candidate set remains a function of
// (Spec, Seed) alone, independent of the evaluation pool size.
const (
	surrogateOversample = 4
	surrogateMinEvals   = 8
	// surrogateGenerationSize is the ranked search's generation; smaller
	// than the reference generationSize so the archive (and with it the
	// predictor) refreshes more often within the same budget.
	surrogateGenerationSize = 8
	// surrogateNeighbors caps how many nearest evaluated points
	// contribute to one prediction: a handful of close measurements beats
	// a global average over the whole history, whose weights flatten as
	// the lattice dwarfs the sample.
	surrogateNeighbors = 8
	// surrogateEps regularizes the inverse-square-distance weight: close
	// neighbors dominate the prediction without a distance of zero (the
	// proposal is unvisited) ever dividing by it.
	surrogateEps = 1e-6
)

// candidate is one proposed, not-yet-evaluated lattice point.
type candidate struct {
	lattice int64
	values  []any
}

// adaptive carries the state of one evolutionary run.
type adaptive struct {
	sp      *Spec
	space   *space
	rng     *rand.Rand
	visited map[int64]struct{}

	evaluated  []evalPoint
	choices    [][]int // per evaluated point, its decoded choice vector
	archive    []int   // indices into evaluated, mutually non-dominated
	infeasible int
	firstErr   string

	// Surrogate accounting: proposals scored by the predictor, and how
	// many of them were promoted into generations.
	surRanked int
	surKept   int
}

// runAdaptive is the budgeted evolutionary search: seed the lattice
// corners plus uniform draws, then repeatedly mutate non-dominated
// incumbents (with occasional uniform jumps), evaluating each generation
// concurrently through the shared sweep evaluator. When the whole space
// fits the budget it degenerates to exhaustive enumeration in lattice
// order — the same point set, and therefore the same frontier, as the
// grid strategy (test-pinned).
func runAdaptive(sp *Spec, s *space, opts Options) (*Frontier, error) {
	ev, err := sweep.NewEvaluator(sp.sweepSpec(s, false), sweep.Options{Cache: opts.Cache})
	if err != nil {
		return nil, err
	}
	// Surface unknown axis params and unbuildable bases before spending
	// any evaluation: building the first lattice point exercises base
	// resolution and every axis's apply path.
	if err := ev.Validate(s.valuesAt(0)); err != nil {
		return nil, err
	}
	hits0, misses0 := ev.CacheStats()

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	x := &adaptive{sp: sp, space: s, rng: rand.New(rand.NewSource(sp.Seed)), visited: map[int64]struct{}{}}
	total := sp.Budget
	exhaustive := s.size <= int64(sp.Budget)
	if exhaustive {
		total = int(s.size)
	}
	workers := poolSize(sp, &opts)

	var mu sync.Mutex
	done := 0
	report := func(p *sweep.Point) {
		if opts.Progress == nil && opts.OnPoint == nil {
			return
		}
		mu.Lock()
		done++
		if opts.OnPoint != nil {
			opts.OnPoint(p)
		}
		if opts.Progress != nil {
			opts.Progress(done, total)
		}
		mu.Unlock()
	}

	canceled := func() error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	finish := func(runErr error) (*Frontier, error) {
		f := buildFrontier(sp, StrategyAdaptive, s, x.evaluated, x.infeasible)
		hits1, misses1 := ev.CacheStats()
		f.CacheHits, f.CacheMisses = hits1-hits0, misses1-misses0
		f.SurrogateRanked, f.SurrogateKept = x.surRanked, x.surKept
		if runErr != nil {
			return f, fmt.Errorf("explore: %w", runErr)
		}
		if len(x.evaluated) == 0 {
			return f, fmt.Errorf("explore: every evaluated point failed (first: %s)", x.firstErr)
		}
		return f, nil
	}

	evals := 0
	for evals < total {
		if err := canceled(); err != nil {
			return finish(err)
		}
		gen := generationSize
		if !exhaustive && !sp.noSurrogate {
			// The ranked search synchronizes twice as often: fresher
			// archives make better predictions, and the surrogate arms
			// after one generation instead of two. Generation pacing is
			// part of the (Spec, Seed)-deterministic proposal schedule
			// either way.
			gen = surrogateGenerationSize
		}
		want := total - evals
		if want > gen {
			want = gen
		}
		var batch []candidate
		if exhaustive {
			// Lattice order, exactly the grid strategy's point order.
			for k := 0; k < want; k++ {
				lat := int64(evals + k)
				batch = append(batch, candidate{lattice: lat, values: s.valuesAt(lat)})
			}
		} else {
			batch = x.propose(want)
		}
		if len(batch) == 0 {
			break // space exhausted below budget
		}
		if opts.PreEvaluate != nil {
			lattice := make([]int64, len(batch))
			for k := range batch {
				lattice[k] = batch[k].lattice
			}
			if err := opts.PreEvaluate(lattice); err != nil {
				return finish(err)
			}
		}
		points, err := evaluateBatch(ctx, ev, batch, evals, workers, report)
		if err != nil {
			return finish(err)
		}
		for k := range batch {
			evals++
			p := points[k]
			if p.Err != "" {
				x.infeasible++
				if x.firstErr == "" {
					x.firstErr = p.Err
				}
				continue
			}
			x.insert(evalPoint{point: p, lattice: batch[k].lattice, objs: objsOf(sp.Objectives, p)})
		}
	}
	return finish(nil)
}

// evaluateBatch evaluates one generation on a bounded worker pool.
// Results are slot-ordered, so downstream archive updates are
// deterministic regardless of pool size. Point indices continue the
// run's evaluation sequence. report (never nil) receives each completed
// point; the caller serializes it.
func evaluateBatch(ctx context.Context, ev *sweep.Evaluator, batch []candidate, base, workers int, report func(*sweep.Point)) ([]*sweep.Point, error) {
	points := make([]*sweep.Point, len(batch))
	errs := make([]error, len(batch))
	if workers > len(batch) {
		workers = len(batch)
	}
	var wg sync.WaitGroup
	slots := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range slots {
				points[k], errs[k] = ev.Eval(base+k, batch[k].values, 0, 0)
				if errs[k] == nil {
					report(points[k])
				}
			}
		}()
	}
	for k := range batch {
		slots <- k
	}
	close(slots)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for k, err := range errs {
		if err != nil {
			// Eval errors are spec-level (bad axis value), not
			// point-level; they abort the run.
			return nil, fmt.Errorf("candidate %v: %w", batch[k].values, err)
		}
	}
	return points, nil
}

// insert adds a feasible evaluated point and maintains the non-dominated
// archive incrementally.
func (x *adaptive) insert(p evalPoint) {
	x.evaluated = append(x.evaluated, p)
	x.choices = append(x.choices, x.space.choiceAt(p.lattice))
	idx := len(x.evaluated) - 1
	keep := x.archive[:0]
	for _, ai := range x.archive {
		if dominates(x.evaluated[ai].objs, p.objs) {
			return // dominated; archive unchanged (prefix already intact)
		}
		if !dominates(p.objs, x.evaluated[ai].objs) {
			keep = append(keep, ai)
		}
	}
	x.archive = append(keep, idx)
}

// propose draws unvisited candidates for one generation: mutations of
// archive incumbents most of the time, uniform jumps otherwise, with a
// lattice scan as the collision fallback so the budget is always
// spendable while unvisited points remain. Once the surrogate has enough
// evaluated points to interpolate, the draw oversamples and keeps only
// the want proposals the predictor ranks most promising; the rejected
// draws are released back to unvisited so later generations can revisit
// them.
func (x *adaptive) propose(want int) []candidate {
	var out []candidate
	add := func(lat int64) bool {
		if _, ok := x.visited[lat]; ok {
			return false
		}
		x.visited[lat] = struct{}{}
		out = append(out, candidate{lattice: lat, values: x.space.valuesAt(lat)})
		return true
	}
	if len(x.visited) == 0 {
		// Deterministic anchors: the lattice corners bracket every axis.
		add(0)
		if len(out) < want {
			add(x.space.size - 1)
		}
	}
	pool := want
	surrogate := !x.sp.noSurrogate && len(x.evaluated) >= surrogateMinEvals
	if surrogate {
		pool = want * surrogateOversample
	}
	// The plain stream heavily favors mutating incumbents; the ranked
	// stream can afford a wilder pool — half uniform jumps — because the
	// predictor discards the hopeless ones for free, and the extra spread
	// is where new frontier regions come from.
	mutateP := 0.8
	if surrogate {
		mutateP = 0.5
	}
	for len(out) < pool && int64(len(x.visited)) < x.space.size {
		var lat int64
		found := false
		for try := 0; try < proposalRetries; try++ {
			if len(x.archive) > 0 && x.rng.Float64() < mutateP {
				parent := x.evaluated[x.archive[x.rng.Intn(len(x.archive))]]
				lat = x.mutate(parent.lattice)
			} else {
				lat = x.rng.Int63n(x.space.size)
			}
			if _, ok := x.visited[lat]; !ok {
				found = true
				break
			}
		}
		if !found {
			// Scan forward from a random start for the next unvisited
			// index. The visited set is at most Budget entries, so this
			// terminates quickly even in huge lattices.
			lat = x.rng.Int63n(x.space.size)
			for {
				if _, ok := x.visited[lat]; !ok {
					break
				}
				lat++
				if lat == x.space.size {
					lat = 0
				}
			}
		}
		add(lat)
	}
	if !surrogate || len(out) <= want {
		return out
	}
	// The ranked pool always offers every unvisited immediate lattice
	// neighbor of the archive: on smooth objective landscapes the points
	// completing the frontier usually sit one step from the incumbents
	// that bracket them, and waiting for the mutation stream to draw that
	// exact step wastes generations. The predictor decides — a neighbor
	// earns its slot like any other proposal.
	for _, ai := range x.archive {
		choice := x.space.choiceAt(x.evaluated[ai].lattice)
		for ax := range choice {
			orig := choice[ax]
			for _, step := range [2]int{-1, 1} {
				c := orig + step
				if c < 0 || c >= len(x.space.params[ax]) {
					continue
				}
				choice[ax] = c
				add(x.space.indexOf(choice))
			}
			choice[ax] = orig
		}
	}
	return x.surrogateSelect(out, want)
}

// surrogateSelect ranks an oversampled proposal pool by predicted
// objectives and keeps the want most promising, releasing the rest back
// to unvisited. Selection fills one slot at a time: each slot takes the
// unselected proposal with the fewest archive points dominating its
// prediction (a proposal predicted onto the frontier beats one predicted
// behind it), tie-broken by the slot's rotating emphasized objective and
// then draw order. Rotating the emphasis spreads the kept candidates
// along the predicted frontier instead of piling them onto one
// compromise region — a frontier search needs corners as much as knees.
// The whole procedure is deterministic arithmetic over the generation
// boundary's archive.
func (x *adaptive) surrogateSelect(pool []candidate, want int) []candidate {
	x.surRanked += len(pool)
	nobj := len(x.sp.Objectives)
	refs := make([]float64, nobj)
	for j := range refs {
		ref := x.evaluated[0].objs[j]
		for i := range x.evaluated {
			if v := x.evaluated[i].objs[j]; v < ref {
				ref = v
			}
		}
		if ref <= 0 {
			ref = 1
		}
		refs[j] = ref
	}
	dom := make([]int, len(pool))
	norm := make([][]float64, len(pool))
	choices := make([][]int, len(pool))
	for i := range pool {
		choices[i] = x.space.choiceAt(pool[i].lattice)
		pred := x.predict(choices[i])
		for _, ai := range x.archive {
			if dominates(x.evaluated[ai].objs, pred) {
				dom[i]++
			}
		}
		for j := range pred {
			pred[j] /= refs[j]
		}
		norm[i] = pred
	}
	// crowded marks proposals within crowdD2 (normalized squared choice
	// distance) of an already-kept pick: mutations of one parent often
	// land next to each other with near-identical predictions, and a
	// generation spent on clones measures one region several times.
	// Crowded proposals rank behind every uncrowded one but remain
	// eligible — a pool of clones still fills its slots.
	const crowdD2 = 0.01
	crowded := make([]bool, len(pool))
	taken := make([]bool, len(pool))
	kept := make([]candidate, 0, want)
	for s := 0; s < want; s++ {
		obj := s % nobj
		pick := -1
		better := func(i, p int) bool {
			if crowded[i] != crowded[p] {
				return !crowded[i]
			}
			if dom[i] != dom[p] {
				return dom[i] < dom[p]
			}
			return norm[i][obj] < norm[p][obj]
		}
		for i := range pool {
			if taken[i] {
				continue
			}
			if pick < 0 || better(i, pick) {
				pick = i
			}
		}
		taken[pick] = true
		kept = append(kept, pool[pick])
		for i := range pool {
			if taken[i] || crowded[i] {
				continue
			}
			d2 := 0.0
			for ax, c := range choices[i] {
				if n := len(x.space.params[ax]); n > 1 {
					d := float64(c-choices[pick][ax]) / float64(n-1)
					d2 += d * d
				}
			}
			if d2 < crowdD2 {
				crowded[i] = true
			}
		}
	}
	for i := range pool {
		if !taken[i] {
			delete(x.visited, pool[i].lattice)
		}
	}
	x.surKept += len(kept)
	return kept
}

// predict estimates the objective vector of an unvisited choice vector by
// inverse-square-distance-weighted interpolation over its nearest
// evaluated points. Distances are Euclidean in normalized choice space —
// each axis contributes its position difference as a fraction of the
// axis's span — so axes with many values don't drown out binary ones.
// With objectives that vary smoothly along axes (scaling factors, clock
// rates, capacity steps — the common case for architecture levers) nearby
// measurements are the best available estimate; discontinuities just cost
// the surrogate accuracy, never correctness, since ranking only reorders
// which candidates get real evaluations.
func (x *adaptive) predict(choice []int) []float64 {
	// Nearest surrogateNeighbors evaluated points by squared distance,
	// ties by evaluation order (deterministic).
	type near struct {
		d2 float64
		i  int
	}
	nn := make([]near, 0, surrogateNeighbors)
	for i := range x.evaluated {
		pc := x.choices[i]
		d2 := 0.0
		for ax, c := range choice {
			if n := len(x.space.params[ax]); n > 1 {
				d := float64(c-pc[ax]) / float64(n-1)
				d2 += d * d
			}
		}
		if len(nn) < surrogateNeighbors {
			nn = append(nn, near{d2, i})
			continue
		}
		worst := 0
		for k := 1; k < len(nn); k++ {
			if nn[k].d2 > nn[worst].d2 || (nn[k].d2 == nn[worst].d2 && nn[k].i > nn[worst].i) {
				worst = k
			}
		}
		if d2 < nn[worst].d2 {
			nn[worst] = near{d2, i}
		}
	}
	pred := make([]float64, len(x.sp.Objectives))
	den := 0.0
	for _, nb := range nn {
		w := 1 / (nb.d2 + surrogateEps)
		den += w
		for j, v := range x.evaluated[nb.i].objs {
			pred[j] += w * v
		}
	}
	for j := range pred {
		pred[j] /= den
	}
	return pred
}

// mutate perturbs a parent's choice vector: one or two axes move, each
// either one lattice step (local refinement, the common case) or to a
// uniform value (exploration).
func (x *adaptive) mutate(parent int64) int64 {
	choice := x.space.choiceAt(parent)
	edits := 1 + x.rng.Intn(2)
	for e := 0; e < edits; e++ {
		i := x.rng.Intn(len(choice))
		n := len(x.space.params[i])
		if n == 1 {
			continue
		}
		if x.rng.Float64() < 0.7 {
			step := 1
			if x.rng.Intn(2) == 0 {
				step = -1
			}
			c := choice[i] + step
			if c < 0 || c >= n {
				c = choice[i] - step
			}
			choice[i] = c
		} else {
			choice[i] = x.rng.Intn(n)
		}
	}
	return x.space.indexOf(choice)
}
