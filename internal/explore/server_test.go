package explore

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"photoloop/internal/sweep"
)

// exploreServer builds a sweep server with the explore endpoint attached.
func exploreServer() *httptest.Server {
	s := sweep.NewServer()
	Attach(s)
	return httptest.NewServer(s)
}

// specJSON is the small fixture as the wire document POST /v1/explore
// accepts.
const specJSON = `{
  "name": "test-explore",
  "base": {"preset": "albireo"},
  "axes": [
    {"param": "or_lanes", "values": [1, 3, 5]},
    {"param": "output_lanes", "values": [3, 9, 15]},
    {"param": "weight_reuse", "values": [false, true]}
  ],
  "workload": {"network": "alexnet"},
  "objectives": ["energy", "area"],
  "mapper_budget": 60,
  "seed": 1,
  "search_workers": 1
}`

// TestServeExploreMatchesLocalRun pins the HTTP path to the library path:
// POST /v1/explore must answer byte-for-byte what Run + WriteJSON produce
// locally for the same spec.
func TestServeExploreMatchesLocalRun(t *testing.T) {
	ts := exploreServer()
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}

	f, err := Run(smallSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := f.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("served frontier differs from local run:\n--- served ---\n%s--- local ---\n%s", got.String(), want.String())
	}
	// The wire document must carry the search-funnel accounting (the
	// fixture's searches always fully evaluate at least one candidate).
	var round Frontier
	if err := json.Unmarshal(got.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.FullEvals == 0 {
		t.Error("served frontier carries no search-funnel stats (full_evals = 0)")
	}
}

// TestServeExploreFormats checks the csv and markdown renderings and the
// error paths.
func TestServeExploreFormats(t *testing.T) {
	ts := exploreServer()
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/explore?format=markdown", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), "Pareto-optimal") {
		t.Errorf("markdown response: status %d, body %q", resp.StatusCode, buf.String())
	}

	resp, err = http.Post(ts.URL+"/v1/explore?format=csv", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(buf.String(), "lattice_index,") {
		t.Errorf("csv response: status %d, body %q", resp.StatusCode, buf.String())
	}

	resp, err = http.Post(ts.URL+"/v1/explore", "application/json", strings.NewReader(`{"bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/explore", "application/json",
		strings.NewReader(`{"base": {"preset": "albireo"}, "workload": {"network": "alexnet"}, "axes": [{"param": "warp_cores", "min": 1, "max": 1000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var errBody struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&errBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || errBody.Error == "" {
		t.Errorf("bad spec: status %d, error %q (want 422 with message)", resp.StatusCode, errBody.Error)
	}
}
