package explore

// float returns a pointer for range-axis literals.
func float(v float64) *float64 { return &v }

// DefaultAlbireoAxes is the stock search space for Albireo-backed bases —
// the paper's Fig. 5 reuse levers (analog output-lane merging, WDM input
// fan-out, shared ring banks) crossed with the cluster count as a range
// axis: 144 lattice points, enough that a default-budget exploration must
// actually search rather than enumerate. `photoloop explore` uses it when
// no axes are given.
func DefaultAlbireoAxes() []Axis {
	return []Axis{
		{Param: "weight_reuse", Values: []any{false, true}},
		{Param: "or_lanes", Values: []any{1, 3, 5}},
		{Param: "output_lanes", Values: []any{3, 9, 15}},
		{Param: "clusters", Min: float(2), Max: float(16), Step: 2},
	}
}
