// Package explore is the multi-objective design-space explorer: where
// sweep evaluates a grid the caller enumerates, explore *searches* a
// declared parameter space — the same axes sweeps accept, plus ranges —
// for the Pareto frontier over configurable objectives (energy, energy
// per MAC, delay, area, EDP).
//
// Two strategies hide behind one interface. The exhaustive "grid"
// strategy expands the space through sweep.Run — bit-identical to running
// the equivalent sweep and dominance-filtering its points, which tests
// pin. The "adaptive" strategy is a seeded evolutionary archive search
// (mutate non-dominated incumbents, occasionally jump) that evaluates at
// most Budget points of spaces far too large to enumerate — millions of
// lattice points — while remaining exactly reproducible for a fixed
// (Seed, SearchWorkers) pair regardless of the evaluation pool size. Both
// strategies evaluate points through the sweep engine's evaluator and the
// shared mapper.Cache, so repeated (architecture, layer shape, objective)
// searches are never recomputed.
//
// `photoloop explore` runs a Spec from flags or JSON and `POST
// /v1/explore` serves the same engine (see Attach).
package explore

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"

	"photoloop/internal/fidelity"
	"photoloop/internal/mapper"
	"photoloop/internal/sweep"
)

// Spec declares an exploration: a base architecture, the parameter space
// (axes of explicit values or min/max/step ranges), one workload, and the
// frontier objectives.
type Spec struct {
	// Name labels the exploration in outputs.
	Name string `json:"name,omitempty"`
	// Base is the architecture every candidate starts from (the same
	// selector sweeps use: albireo, raw arch spec, or preset).
	Base sweep.Base `json:"base"`
	// Axes span the search space. Each axis is either an explicit value
	// grid (sweep semantics) or a min/max/step range; the space is the
	// cross product, first axis most significant.
	Axes []Axis `json:"axes"`
	// Workload is the network every candidate is evaluated on.
	Workload sweep.Workload `json:"workload"`
	// Objectives are the frontier dimensions, all minimized: "energy"
	// (total pJ), "pj_per_mac", "delay" (cycles), "area" (µm²), "edp"
	// (pJ·cycles), "accuracy" (estimated accuracy loss % from the analog
	// fidelity rollup). Default: energy and area.
	Objectives []string `json:"objectives,omitempty"`
	// Fidelity configures the analog fidelity rollup attached to every
	// candidate (package fidelity); selecting the "accuracy" objective
	// defaults it to `{}` (the physics defaults) when unset. The rollup is
	// a closed-form post-pass: energy/delay/area are bit-identical with or
	// without it.
	Fidelity *fidelity.Spec `json:"fidelity,omitempty"`
	// Strategy selects the search: "grid" (exhaustive, bit-identical to
	// sweep.Run + dominance filter), "adaptive" (budgeted evolutionary
	// search), or "auto"/"" (grid when the space fits the budget,
	// adaptive otherwise).
	Strategy string `json:"strategy,omitempty"`
	// Budget caps how many design points the adaptive strategy evaluates
	// (default 128). The grid strategy ignores it and evaluates the whole
	// space.
	Budget int `json:"budget,omitempty"`
	// MapperObjective is what the mapper minimizes when scheduling each
	// candidate (default "energy"). It is deliberately separate from
	// Objectives: every candidate gets one schedule, and the frontier is
	// read off that schedule's metrics.
	MapperObjective string `json:"mapper_objective,omitempty"`
	// MapperBudget is the mapper evaluation budget per layer (0 = mapper
	// default).
	MapperBudget int `json:"mapper_budget,omitempty"`
	// Seed fixes both the mapper's randomness and the adaptive
	// strategy's proposal stream (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// SearchWorkers caps per-layer search parallelism (0 = mapper
	// default). Pin it (with Seed) for machine-independent frontiers.
	SearchWorkers int `json:"search_workers,omitempty"`

	// noSurrogate disables the adaptive strategy's surrogate proposal
	// ranking, restoring the plain mutate-and-jump proposal stream. It is
	// the reference mode the surrogate's tests compare against and is
	// deliberately unexported: external callers always get the ranked
	// search, which spends the same budget on better candidates.
	noSurrogate bool
}

// Axis is one dimension of the search space: either an explicit Values
// grid (exactly as sweep.Axis) or an inclusive [Min, Max] range walked in
// Step increments (Step defaults to 1; integral ranges produce ints).
// Exactly one of the two forms must be used.
type Axis struct {
	// Param names the parameter (the same names sweep axes accept:
	// Albireo levers, "scaling", "clock_ghz", "component.<name>.<param>").
	Param string `json:"param"`
	// Values is the explicit grid form.
	Values []any `json:"values,omitempty"`
	// Min and Max bound the range form (inclusive).
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// Step is the range increment (default 1).
	Step float64 `json:"step,omitempty"`
}

// maxAxisValues bounds one axis's expansion — the cross product may hold
// millions of points, but each individual axis must stay enumerable (the
// adaptive mutator walks per-axis value lists).
const maxAxisValues = 4096

// resolve expands the axis into its ordered value list.
func (ax *Axis) resolve() ([]any, error) {
	if ax.Param == "" {
		return nil, fmt.Errorf("explore: axis has no param")
	}
	ranged := ax.Min != nil || ax.Max != nil || ax.Step != 0
	switch {
	case len(ax.Values) > 0 && ranged:
		return nil, fmt.Errorf("explore: axis %q sets both values and a range", ax.Param)
	case len(ax.Values) > 0:
		return ax.Values, nil
	case ax.Min == nil || ax.Max == nil:
		return nil, fmt.Errorf("explore: axis %q needs values, or both min and max", ax.Param)
	}
	step := ax.Step
	if step == 0 {
		step = 1
	}
	if step < 0 || math.IsInf(step, 0) || math.IsNaN(step) {
		return nil, fmt.Errorf("explore: axis %q has invalid step %v", ax.Param, ax.Step)
	}
	lo, hi := *ax.Min, *ax.Max
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("explore: axis %q has non-finite bounds [%v, %v]", ax.Param, lo, hi)
	}
	if hi < lo {
		return nil, fmt.Errorf("explore: axis %q has max %v < min %v", ax.Param, hi, lo)
	}
	// Cap-check as a float before converting: a huge range (or a denormal
	// step) would overflow the int conversion and slip past the cap.
	count := math.Floor((hi-lo)/step + 1e-9)
	if count+1 > maxAxisValues {
		return nil, fmt.Errorf("explore: axis %q expands to %.0f values (cap %d); raise step", ax.Param, count+1, maxAxisValues)
	}
	n := int(count) + 1
	integral := lo == math.Trunc(lo) && step == math.Trunc(step)
	values := make([]any, n)
	for k := 0; k < n; k++ {
		v := lo + float64(k)*step
		if integral {
			values[k] = int(math.Round(v))
		} else {
			values[k] = v
		}
	}
	return values, nil
}

// space is the resolved search lattice: per-axis value lists and the
// cross-product size. Lattice indices are mixed-radix encodings of choice
// vectors, first axis most significant — the same order sweep.Run walks.
type space struct {
	params [][]any // per-axis values
	names  []string
	size   int64
}

// resolveSpace expands every axis and sizes the lattice.
func resolveSpace(axes []Axis) (*space, error) {
	if len(axes) == 0 {
		return nil, fmt.Errorf("explore: spec has no axes")
	}
	s := &space{size: 1}
	for i := range axes {
		values, err := axes[i].resolve()
		if err != nil {
			return nil, err
		}
		if s.size > math.MaxInt64/int64(len(values)) {
			return nil, fmt.Errorf("explore: axis grid exceeds 2^63 points")
		}
		s.size *= int64(len(values))
		s.params = append(s.params, values)
		s.names = append(s.names, axes[i].Param)
	}
	return s, nil
}

// valuesAt decodes a lattice index into one value per axis.
func (s *space) valuesAt(index int64) []any {
	out := make([]any, len(s.params))
	for i := len(s.params) - 1; i >= 0; i-- {
		n := int64(len(s.params[i]))
		out[i] = s.params[i][index%n]
		index /= n
	}
	return out
}

// choiceAt decodes a lattice index into per-axis value positions.
func (s *space) choiceAt(index int64) []int {
	out := make([]int, len(s.params))
	for i := len(s.params) - 1; i >= 0; i-- {
		n := int64(len(s.params[i]))
		out[i] = int(index % n)
		index /= n
	}
	return out
}

// indexOf encodes per-axis value positions into a lattice index.
func (s *space) indexOf(choice []int) int64 {
	var idx int64
	for i, c := range choice {
		idx = idx*int64(len(s.params[i])) + int64(c)
	}
	return idx
}

// Frontier objective names, canonicalized by canonicalObjective.
const (
	objEnergy   = "energy"
	objPJPerMAC = "pj_per_mac"
	objDelay    = "delay"
	objArea     = "area"
	objEDP      = "edp"
	objAccuracy = "accuracy"
)

// Objectives returns the canonical frontier objective names, in
// documentation order — the vocabulary canonicalObjective accepts (plus
// aliases).
func Objectives() []string {
	return []string{objEnergy, objPJPerMAC, objDelay, objArea, objEDP, objAccuracy}
}

// canonicalObjective maps accepted spellings to the canonical objective
// name.
func canonicalObjective(name string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "energy", "total_pj":
		return objEnergy, nil
	case "pj_per_mac", "energy_per_mac", "pj/mac":
		return objPJPerMAC, nil
	case "delay", "latency", "cycles":
		return objDelay, nil
	case "area", "area_um2":
		return objArea, nil
	case "edp":
		return objEDP, nil
	case "accuracy", "accuracy_loss", "fidelity":
		return objAccuracy, nil
	}
	return "", fmt.Errorf("explore: unknown objective %q (want energy, pj_per_mac, delay, area, edp or accuracy)", name)
}

// metric reads one canonical objective off an evaluated point. All
// objectives are minimized.
func metric(name string, p *sweep.Point) float64 {
	switch name {
	case objPJPerMAC:
		return p.PJPerMAC
	case objDelay:
		return p.Cycles
	case objArea:
		return p.AreaUM2
	case objEDP:
		return p.TotalPJ * p.Cycles
	case objAccuracy:
		return p.AccuracyLossPct
	default: // objEnergy
		return p.TotalPJ
	}
}

// dominates reports whether objective vector a Pareto-dominates b: no
// coordinate worse, at least one strictly better (all minimized).
func dominates(a, b []float64) bool {
	better := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			better = true
		}
	}
	return better
}

// Options tunes a Run without changing the frontier it finds (for a fixed
// Spec, results are independent of Workers and Cache).
type Options struct {
	// Workers is the candidate-evaluation pool size (default
	// GOMAXPROCS / per-search workers, as in sweeps).
	Workers int
	// Context cancels the run between evaluation batches; the partial
	// frontier is returned alongside the context's error.
	Context context.Context
	// Cache deduplicates identical (architecture, layer shape) searches
	// across candidates and across runs; nil gets a fresh per-run cache.
	Cache *mapper.Cache
	// Progress, when set, is called after each candidate evaluation with
	// the number done and the planned total. Calls are serialized.
	Progress func(done, total int)
	// OnPoint, when set, streams each evaluated candidate as it completes
	// (completion order). Calls are serialized with Progress. The frontier
	// returned at the end is unaffected.
	OnPoint func(*sweep.Point)
	// PreEvaluate, when set, is called with each candidate batch's lattice
	// indices before the batch is evaluated — the whole lattice once for
	// the grid strategy, one generation at a time for the adaptive one.
	// Sharded jobs hook it to farm the batch's searches out to worker
	// processes and refresh the shared cache, after which the local
	// evaluation finds everything warm; because the hook runs between
	// generations it cannot change which candidates are proposed, so the
	// frontier stays a function of (Spec, Seed) alone. An error aborts
	// the run with the partial-frontier contract.
	PreEvaluate func(lattice []int64) error
}

// defaultBudget caps adaptive evaluations when the spec names none.
const defaultBudget = 128

// withDefaults canonicalizes the spec: objectives, strategy, budget,
// seed, mapper objective.
func (sp Spec) withDefaults() (Spec, error) {
	if len(sp.Objectives) == 0 {
		sp.Objectives = []string{objEnergy, objArea}
	}
	seen := map[string]bool{}
	canon := make([]string, len(sp.Objectives))
	for i, name := range sp.Objectives {
		c, err := canonicalObjective(name)
		if err != nil {
			return sp, err
		}
		if seen[c] {
			return sp, fmt.Errorf("explore: duplicate objective %q", c)
		}
		seen[c] = true
		canon[i] = c
	}
	sp.Objectives = canon
	if sp.Fidelity == nil && seen[objAccuracy] {
		// The accuracy objective needs the rollup; default to the physics
		// defaults rather than failing.
		sp.Fidelity = &fidelity.Spec{}
	}
	if sp.MapperObjective == "" {
		sp.MapperObjective = "energy"
	}
	if _, err := mapper.ParseObjective(sp.MapperObjective); err != nil {
		return sp, fmt.Errorf("explore: mapper objective: %w", err)
	}
	if sp.Budget <= 0 {
		sp.Budget = defaultBudget
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	switch sp.Strategy {
	case "", StrategyAuto, StrategyGrid, StrategyAdaptive:
	default:
		return sp, fmt.Errorf("explore: unknown strategy %q (want auto, grid or adaptive)", sp.Strategy)
	}
	return sp, nil
}

// Search strategies.
const (
	// StrategyAuto picks grid when the space fits the budget, adaptive
	// otherwise.
	StrategyAuto = "auto"
	// StrategyGrid evaluates the whole space through sweep.Run.
	StrategyGrid = "grid"
	// StrategyAdaptive runs the budgeted evolutionary search.
	StrategyAdaptive = "adaptive"
)

// sweepSpec builds the sweep.Spec equivalent of this exploration; with
// values the axes carry their full expanded grids (the grid strategy),
// without them only the param names (the evaluator behind the adaptive
// strategy).
func (sp *Spec) sweepSpec(s *space, withValues bool) sweep.Spec {
	axes := make([]sweep.Axis, len(s.params))
	for i := range s.params {
		axes[i] = sweep.Axis{Param: s.names[i]}
		if withValues {
			axes[i].Values = s.params[i]
		}
	}
	return sweep.Spec{
		Name:          sp.Name,
		Base:          sp.Base,
		Axes:          axes,
		Workloads:     []sweep.Workload{sp.Workload},
		Objectives:    []string{sp.MapperObjective},
		Budget:        sp.MapperBudget,
		Seed:          sp.Seed,
		SearchWorkers: sp.SearchWorkers,
		Fidelity:      sp.Fidelity,
	}
}

// Run searches the spec's parameter space for its Pareto frontier.
func Run(sp Spec, opts Options) (*Frontier, error) {
	sp, err := sp.withDefaults()
	if err != nil {
		return nil, err
	}
	s, err := resolveSpace(sp.Axes)
	if err != nil {
		return nil, err
	}
	strategy := sp.Strategy
	if strategy == "" || strategy == StrategyAuto {
		if s.size <= int64(sp.Budget) {
			strategy = StrategyGrid
		} else {
			strategy = StrategyAdaptive
		}
	}
	if strategy == StrategyGrid {
		return runGrid(&sp, s, opts)
	}
	return runAdaptive(&sp, s, opts)
}

// evalPoint pairs an evaluated sweep point with its lattice position and
// objective vector.
type evalPoint struct {
	point   *sweep.Point
	lattice int64
	objs    []float64
}

// objsOf extracts the spec's objective vector from a point.
func objsOf(objectives []string, p *sweep.Point) []float64 {
	out := make([]float64, len(objectives))
	for i, name := range objectives {
		out[i] = metric(name, p)
	}
	return out
}

// runGrid evaluates the whole lattice through sweep.Run (bit-identical to
// the equivalent sweep, test-pinned) and dominance-filters its points.
// On a run error (a failed point or a canceled context) the frontier of
// the successfully evaluated points is returned alongside the error, with
// the failed points counted as Infeasible — the same partial-result
// contract the adaptive strategy keeps.
func runGrid(sp *Spec, s *space, opts Options) (*Frontier, error) {
	if opts.PreEvaluate != nil {
		lattice := make([]int64, s.size)
		for i := range lattice {
			lattice[i] = int64(i)
		}
		if err := opts.PreEvaluate(lattice); err != nil {
			return nil, err
		}
	}
	res, err := sweep.Run(sp.sweepSpec(s, true), sweep.Options{
		Workers:  opts.Workers,
		Context:  opts.Context,
		Cache:    opts.Cache,
		Progress: opts.Progress,
		OnPoint:  opts.OnPoint,
	})
	if res == nil {
		return nil, err // spec-level error, nothing evaluated
	}
	evaluated := make([]evalPoint, 0, len(res.Points))
	infeasible := 0
	for i := range res.Points {
		p := &res.Points[i]
		if p.Err != "" {
			infeasible++
			continue
		}
		evaluated = append(evaluated, evalPoint{point: p, lattice: int64(p.Index), objs: objsOf(sp.Objectives, p)})
	}
	f := buildFrontier(sp, StrategyGrid, s, evaluated, infeasible)
	f.CacheHits, f.CacheMisses = res.CacheHits, res.CacheMisses
	return f, err
}

// poolSize mirrors sweep.Run's default: divide GOMAXPROCS by the
// per-layer search pool so total parallelism stays near the machine.
func poolSize(sp *Spec, opts *Options) int {
	workers := opts.Workers
	if workers <= 0 {
		perSearch := sp.SearchWorkers
		if perSearch <= 0 {
			perSearch = mapper.DefaultSearchWorkers()
		}
		workers = runtime.GOMAXPROCS(0) / perSearch
		if workers < 1 {
			workers = 1
		}
	}
	return workers
}
