// Package presets is the named architecture preset library: a curated set
// of photonic accelerator organizations (and the electrical rival) that
// the CLI, the HTTP service and the study runner can reference by name.
// Each preset is a parameterization of an existing builder — an
// albireo.Config variant or the baseline digital array — and Build
// produces a fully validated architecture, so every preset flows through
// the same compiled evaluation engine as hand-written specs.
//
// The library exists for architecture-level comparison, the source
// paper's whole point: stock Albireo answers "what does THIS design
// cost", the presets answer "which ORGANIZATION wins on THIS workload" —
// WDM-scaled wide fan-out, ADC-lean analog sharing, and the electrical
// baseline, side by side via `photoloop study`.
package presets

import (
	"fmt"
	"strings"

	"photoloop/internal/albireo"
	"photoloop/internal/arch"
	"photoloop/internal/baseline"
	"photoloop/internal/fidelity"
)

// Preset is one named architecture in the library. Exactly one of the
// backing configurations is set; Build constructs and validates the
// architecture it describes.
type Preset struct {
	// Name is the registry key ("albireo", "electrical-baseline", ...).
	Name string
	// Description is the one-line summary surfaced by `photoloop
	// presets`, GET /v1/presets and the generated README table.
	Description string

	albireoCfg  *albireo.Config
	baselineCfg *baseline.Config
}

// Kind reports the preset's backing family: "albireo" for photonic
// presets built from an albireo.Config, "electrical" for the digital
// baseline.
func (p *Preset) Kind() string {
	if p.albireoCfg != nil {
		return "albireo"
	}
	return "electrical"
}

// Albireo returns the preset's Albireo configuration (a copy) and true
// when the preset is albireo-backed. Albireo-backed presets support the
// sweep engine's Albireo axes and fused workloads; electrical presets do
// not.
func (p *Preset) Albireo() (albireo.Config, bool) {
	if p.albireoCfg == nil {
		return albireo.Config{}, false
	}
	return *p.albireoCfg, true
}

// DefaultFidelity returns the analog fidelity spec a fidelity-enabled
// study applies to this preset: the physics defaults (every parameter
// derived from the built architecture's own components) for presets with
// an analog datapath, nil for the all-digital electrical baseline — its
// rows keep empty fidelity columns rather than reporting a vacuous
// full-precision rollup.
func (p *Preset) DefaultFidelity() *fidelity.Spec {
	if p.albireoCfg == nil {
		return nil
	}
	return &fidelity.Spec{}
}

// Build constructs the preset's architecture, validated.
func (p *Preset) Build() (*arch.Arch, error) {
	switch {
	case p.albireoCfg != nil:
		return p.albireoCfg.Build()
	case p.baselineCfg != nil:
		return p.baselineCfg.Build()
	}
	return nil, fmt.Errorf("presets: preset %q has no backing configuration", p.Name)
}

// All returns the preset library in curated order (stock Albireo first,
// then its photonic variants, then the electrical baseline). Every call
// returns fresh values, so callers cannot corrupt the library.
func All() []*Preset {
	stock := albireo.Default(albireo.Conservative)
	aggressive := albireo.Default(albireo.Aggressive)

	// WDM-scaled wide variant: triple the wavelengths one modulated input
	// feeds through the star coupler (IR 9 -> 27) and merge three analog
	// OR lanes per ADC sample (OR 3 -> 9) — the high-reuse corner of the
	// paper's Fig. 5 grid, where input modulation and readout conversions
	// amortize across a much wider optical fan-out.
	wdmWide := albireo.Default(albireo.Conservative)
	wdmWide.OutputLanes = 9
	wdmWide.ORLanes = 3

	// ADC-lean shared-converter variant: five OR lanes merge 15
	// photocurrents per ADC sample, and the ring banks move below the
	// pixel-lane fan-out so one programmed weight serves every lane
	// (Albireo's "more weight reuse" topology) — trading extra optical
	// distribution loss for far fewer ADC conversions and ring programs.
	adcLean := albireo.Default(albireo.Conservative)
	adcLean.ORLanes = 5
	adcLean.WeightReuse = true

	electrical := baseline.Default()

	return []*Preset{
		{
			Name:        "albireo",
			Description: "stock Albireo (8 clusters x 32 pixel lanes, IR=9, OR=3), conservative calibration",
			albireoCfg:  &stock,
		},
		{
			Name:        "albireo-aggressive",
			Description: "stock Albireo under the aggressive technology projection (optical/converter energies x0.158)",
			albireoCfg:  &aggressive,
		},
		{
			Name:        "albireo-wdm-wide",
			Description: "WDM-scaled wide variant: IR=27 input fan-out, OR=9 analog merge (the Fig. 5 high-reuse corner)",
			albireoCfg:  &wdmWide,
		},
		{
			Name:        "albireo-adc-lean",
			Description: "ADC-lean shared-converter variant: OR=15 photocurrents per ADC sample + shared ring banks (more weight reuse)",
			albireoCfg:  &adcLean,
		},
		{
			Name:        "electrical-baseline",
			Description: "conventional digital weight-stationary 64x108 PE array matched to Albireo's 6912 MACs/cycle peak",
			baselineCfg: &electrical,
		},
	}
}

// Names returns the preset names in library order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, p := range all {
		names[i] = p.Name
	}
	return names
}

// ByName looks a preset up by its registry name.
func ByName(name string) (*Preset, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("presets: unknown preset %q (have %s)", name, strings.Join(Names(), ", "))
}
