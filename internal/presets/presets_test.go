package presets

import (
	"strings"
	"testing"
)

// TestAllPresetsBuild is the library's validity contract: every preset
// must construct a validated architecture with a positive area and peak
// throughput, carry a description, and have a unique name.
func TestAllPresetsBuild(t *testing.T) {
	all := All()
	if len(all) < 4 {
		t.Fatalf("library has %d presets, want >= 4 (stock + 3 variants)", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if p.Name == "" || p.Description == "" {
			t.Errorf("preset %+v: name and description are required", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate preset name %q", p.Name)
		}
		seen[p.Name] = true
		a, err := p.Build()
		if err != nil {
			t.Errorf("%s: Build: %v", p.Name, err)
			continue
		}
		if a.PeakMACsPerCycle() <= 0 {
			t.Errorf("%s: peak %d MACs/cycle", p.Name, a.PeakMACsPerCycle())
		}
		area, err := a.Area()
		if err != nil || area <= 0 {
			t.Errorf("%s: area %.1f, err %v", p.Name, area, err)
		}
		switch p.Kind() {
		case "albireo":
			if _, ok := p.Albireo(); !ok {
				t.Errorf("%s: Kind albireo but no Albireo config", p.Name)
			}
		case "electrical":
			if _, ok := p.Albireo(); ok {
				t.Errorf("%s: Kind electrical but has an Albireo config", p.Name)
			}
		default:
			t.Errorf("%s: unknown kind %q", p.Name, p.Kind())
		}
	}
}

// TestByName covers the lookup path and its error message (the CLI prints
// it verbatim, so it must name the valid presets).
func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	_, err := ByName("tpu-v4")
	if err == nil {
		t.Fatal("ByName(tpu-v4) succeeded, want error")
	}
	if !strings.Contains(err.Error(), "albireo") {
		t.Errorf("error %q should list the valid presets", err)
	}
}

// TestAlbireoReturnsCopy guards the library against mutation through the
// returned configuration.
func TestAlbireoReturnsCopy(t *testing.T) {
	p, err := ByName("albireo")
	if err != nil {
		t.Fatal(err)
	}
	cfg, ok := p.Albireo()
	if !ok {
		t.Fatal("stock albireo preset is not albireo-backed")
	}
	cfg.Clusters = 1
	again, _ := p.Albireo()
	if again.Clusters == 1 {
		t.Error("mutating the returned config changed the preset")
	}
}

// TestPresetPeaksDiffer sanity-checks that the variants actually describe
// different machines: the WDM-wide and ADC-lean presets scale the compute
// width, the electrical baseline matches stock Albireo's peak.
func TestPresetPeaksDiffer(t *testing.T) {
	peak := func(name string) int64 {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		return a.PeakMACsPerCycle()
	}
	stock := peak("albireo")
	if stock != 6912 {
		t.Errorf("stock peak = %d, want 6912", stock)
	}
	if peak("electrical-baseline") != stock {
		t.Errorf("electrical baseline peak %d != stock %d (throughput-matched by design)", peak("electrical-baseline"), stock)
	}
	if peak("albireo-wdm-wide") <= stock || peak("albireo-adc-lean") <= stock {
		t.Errorf("reuse variants should widen the array: wdm %d, adc-lean %d, stock %d",
			peak("albireo-wdm-wide"), peak("albireo-adc-lean"), stock)
	}
}
