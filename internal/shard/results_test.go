package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"photoloop/internal/mapper"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/retry"
	"photoloop/internal/store"
)

// testBest fabricates a search result with enough structure to exercise
// the codec (the store never validates semantics, only framing).
func testBest(rng *rand.Rand) *mapper.Best {
	return &mapper.Best{
		Mapping: &mapping.Mapping{Levels: make([]mapping.LevelMapping, 1+rng.Intn(3))},
		Result: &model.Result{
			Layer:       fmt.Sprintf("layer-%d", rng.Intn(1000)),
			MACs:        rng.Int63(),
			Cycles:      rng.Float64() * 1e6,
			Utilization: rng.Float64(),
			TotalPJ:     rng.Float64() * 1e9,
		},
		Evaluations: rng.Intn(500),
	}
}

func testKey(rng *rand.Rand) mapper.Key {
	return mapper.Key{Arch: rng.Uint64(), Layer: rng.Uint64(), Opts: rng.Uint64()}
}

// resultServer opens a coordinator-side store and serves the result
// exchange over httptest.
func resultServer(t *testing.T) (*store.Store, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	mux := http.NewServeMux()
	AttachResults(mux.Handle, st)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return st, srv
}

func postBody(t *testing.T, url string, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

// TestResultUploadIdempotent pins the retry-after-lost-200 contract:
// duplicate and out-of-order re-POSTs of the same frames are
// first-write-wins no-ops — the store neither grows nor changes.
func TestResultUploadIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	st, srv := resultServer(t)
	url := srv.URL + "/v1/jobs/j1/results"

	recs := make([]store.Record, 6)
	for i := range recs {
		recs[i] = store.Record{Key: testKey(rng), Best: testBest(rng)}
	}
	first := store.EncodeFrames(recs[:4])
	second := store.EncodeFrames(recs[4:])

	if code, body := postBody(t, url, first); code != http.StatusOK {
		t.Fatalf("first upload: %d %s", code, body)
	}
	if st.Len() != 4 {
		t.Fatalf("store holds %d keys after first upload, want 4", st.Len())
	}
	snapshot := func() map[mapper.Key][]byte {
		out := map[mapper.Key][]byte{}
		for _, k := range st.Keys() {
			b, ok := st.Load(k)
			if !ok {
				t.Fatalf("indexed key failed to load")
			}
			out[k] = store.EncodeBest(b)
		}
		return out
	}
	before := snapshot()

	// The retried duplicate (a lost 200 makes the client re-POST the
	// exact frames) must accept and change nothing.
	if code, body := postBody(t, url, first); code != http.StatusOK {
		t.Fatalf("duplicate upload rejected: %d %s", code, body)
	}
	if st.Len() != 4 {
		t.Fatalf("duplicate upload grew the store to %d keys", st.Len())
	}
	// Out of order: the second batch, then the first again, then an
	// overlapping mix of both.
	if code, _ := postBody(t, url, second); code != http.StatusOK {
		t.Fatal("second batch rejected")
	}
	if code, _ := postBody(t, url, first); code != http.StatusOK {
		t.Fatal("re-POST of first batch after second rejected")
	}
	mixed := store.EncodeFrames([]store.Record{recs[5], recs[0], recs[3]})
	if code, _ := postBody(t, url, mixed); code != http.StatusOK {
		t.Fatal("overlapping batch rejected")
	}
	if st.Len() != 6 {
		t.Fatalf("store holds %d keys, want 6", st.Len())
	}
	after := snapshot()
	for k, b := range before {
		if !bytes.Equal(after[k], b) {
			t.Fatalf("key %x changed across duplicate uploads", k)
		}
	}
}

// TestResultUploadTornRejectedWhole pins the torn-body contract: a
// truncated upload (any cut point) is rejected with 400 and appends
// nothing — never a partial batch.
func TestResultUploadTornRejectedWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	st, srv := resultServer(t)
	url := srv.URL + "/v1/jobs/j1/results"

	body := store.EncodeFrames([]store.Record{
		{Key: testKey(rng), Best: testBest(rng)},
		{Key: testKey(rng), Best: testBest(rng)},
		{Key: testKey(rng), Best: testBest(rng)},
	})
	// Sample cut points densely enough to cross magic, count, header and
	// payload boundaries.
	for cut := 0; cut < len(body); cut += 7 {
		code, _ := postBody(t, url, body[:cut])
		if code != http.StatusBadRequest {
			t.Fatalf("truncation at %d/%d returned %d, want 400", cut, len(body), code)
		}
	}
	if st.Len() != 0 {
		t.Fatalf("torn uploads appended %d records", st.Len())
	}
	// Corrupted CRC: same whole-batch rejection.
	mut := append([]byte{}, body...)
	mut[len(mut)-1] ^= 0xff
	if code, _ := postBody(t, url, mut); code != http.StatusBadRequest {
		t.Fatalf("corrupted upload returned %d, want 400", code)
	}
	if st.Len() != 0 {
		t.Fatal("corrupted upload appended records")
	}
	// And the intact body still lands afterwards.
	if code, _ := postBody(t, url, body); code != http.StatusOK {
		t.Fatal("intact upload rejected after torn attempts")
	}
	if st.Len() != 3 {
		t.Fatalf("store holds %d keys, want 3", st.Len())
	}
}

// TestRemotePersisterRoundTrip drives the whole shared-nothing exchange
// in-process: one persister computes and uploads, a second persister
// (fresh process, no shared state) warms from the coordinator and serves
// bit-identical results.
func TestRemotePersisterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	st, srv := resultServer(t)

	up := store.NewRemotePersister(srv.URL, nil)
	if err := up.Begin(context.Background(), "j1"); err != nil {
		t.Fatal(err)
	}
	keys := make([]mapper.Key, 10)
	bests := make([]*mapper.Best, 10)
	for i := range keys {
		keys[i], bests[i] = testKey(rng), testBest(rng)
		if err := up.Store(keys[i], bests[i]); err != nil {
			t.Fatal(err)
		}
		// Before flush, the persister's own results serve locally.
		if b, ok := up.Load(keys[i]); !ok || b != bests[i] {
			t.Fatalf("own result %d not served locally", i)
		}
	}
	if err := up.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 10 {
		t.Fatalf("coordinator store holds %d keys after flush, want 10", st.Len())
	}
	stats := up.Stats()
	if stats.Uploaded != 10 || stats.Flushes == 0 {
		t.Fatalf("uploader stats = %+v", stats)
	}

	down := store.NewRemotePersister(srv.URL, nil)
	if err := down.Begin(context.Background(), "j1"); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		b, ok := down.Load(k)
		if !ok {
			t.Fatalf("warm key %d not served from coordinator", i)
		}
		if !bytes.Equal(store.EncodeBest(b), store.EncodeBest(bests[i])) {
			t.Fatalf("warm key %d not bit-identical", i)
		}
	}
	if s := down.Stats(); s.WarmHits != 10 {
		t.Fatalf("downloader stats = %+v, want 10 warm hits", s)
	}
	// Unknown keys miss without error (and without a fetch, thanks to
	// the digest).
	if _, ok := down.Load(testKey(rng)); ok {
		t.Fatal("absent key served")
	}
	if s := down.Stats(); s.Misses != 1 {
		t.Fatalf("stats after absent load = %+v", s)
	}
}

// TestRemotePersisterFlushFailureKeepsPending: a dead coordinator fails
// the flush but loses nothing — the records stay pending and land on
// the next flush once the coordinator is back.
func TestRemotePersisterFlushFailureKeepsPending(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	st, srv := resultServer(t)

	rp := store.NewRemotePersister(srv.URL, nil)
	rp.SetRetryPolicy(retry.Policy{Tries: 2, Base: time.Millisecond})
	if err := rp.Begin(context.Background(), "j1"); err != nil {
		t.Fatal(err)
	}
	k, b := testKey(rng), testBest(rng)
	if err := rp.Store(k, b); err != nil {
		t.Fatal(err)
	}
	srv.CloseClientConnections()
	srv.Close()
	if err := rp.Flush(context.Background()); err == nil {
		t.Fatal("flush against a dead coordinator succeeded")
	}
	if st.Len() != 0 {
		t.Fatal("records appeared despite failed flush")
	}

	// Coordinator comes back (new listener, same store).
	mux := http.NewServeMux()
	AttachResults(mux.Handle, st)
	srv2 := httptest.NewServer(mux)
	defer srv2.Close()
	rp2 := store.NewRemotePersister(srv2.URL, nil)
	// Simulate the same worker process re-flushing: move is internal, so
	// re-store the record on the fresh persister instead.
	if err := rp2.Begin(context.Background(), "j1"); err != nil {
		t.Fatal(err)
	}
	if err := rp2.Store(k, b); err != nil {
		t.Fatal(err)
	}
	if err := rp2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d keys after recovery flush", st.Len())
	}
}

// TestClientRetriesTransientFailures: a coordinator that 502s a few
// times then recovers must be ridden out by the client, with the
// retries observable on the counter; a 4xx must fail immediately.
func TestClientRetriesTransientFailures(t *testing.T) {
	var calls int
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs/j1/lease/L1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls < 3 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/jobs/j1/lease/L2/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cl := &Client{Base: srv.URL, Retry: retry.Policy{Tries: 4, Base: time.Millisecond}}
	if err := cl.Heartbeat(context.Background(), "j1", "L1"); err != nil {
		t.Fatalf("heartbeat through 502s: %v", err)
	}
	if calls != 3 {
		t.Fatalf("server saw %d attempts, want 3", calls)
	}
	if cl.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", cl.Retries())
	}
	// 409 = lease lost: permanent, no retries spent.
	before := cl.Retries()
	err := cl.Heartbeat(context.Background(), "j1", "L2")
	if err == nil {
		t.Fatal("heartbeat on a lost lease succeeded")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("err = %v, want StatusError 409", err)
	}
	if cl.Retries() != before {
		t.Fatal("client retried a 409")
	}
}

// TestResultFetchEndpoints covers the GET side: digest and single-key
// fetch, including 404 for absent keys and 400 for malformed ones.
func TestResultFetchEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	st, srv := resultServer(t)
	k, b := testKey(rng), testBest(rng)
	if err := st.Store(k, b); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/j1/keys")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keys endpoint: %d", resp.StatusCode)
	}
	d, err := store.DecodeKeyDigest(buf.Bytes())
	if err != nil {
		t.Fatalf("digest body: %v", err)
	}
	if !d.Has(k) {
		t.Fatal("digest misses the stored key")
	}

	hex := fmt.Sprintf("%016x%016x%016x", k.Arch, k.Layer, k.Opts)
	resp, err = http.Get(srv.URL + "/v1/jobs/j1/results/" + hex)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch endpoint: %d", resp.StatusCode)
	}
	if !bytes.Equal(buf.Bytes(), store.EncodeBest(b)) {
		t.Fatal("fetched payload not bit-identical")
	}

	absent := fmt.Sprintf("%016x%016x%016x", rng.Uint64(), rng.Uint64(), rng.Uint64())
	if resp, err = http.Get(srv.URL + "/v1/jobs/j1/results/" + absent); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent key: %d, want 404", resp.StatusCode)
	}
	if resp, err = http.Get(srv.URL + "/v1/jobs/j1/results/nothex"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key: %d, want 400", resp.StatusCode)
	}
}
