package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// AttachHTTP mounts the coordinator's worker-facing endpoints through the
// given mount function (a sweep.Server's Mount, in the serve command):
//
//	POST /v1/jobs/lease                               lease a range of any job (204: none)
//	POST /v1/jobs/{id}/lease                          lease a range of one job
//	POST /v1/jobs/{id}/lease/{lease}/heartbeat        keep a lease alive (409: lease lost)
//	POST /v1/jobs/{id}/lease/{lease}/complete         mark a range done
//	POST /v1/jobs/{id}/lease/{lease}/fail             hand a range back (body: {"error": ...})
//	GET  /v1/jobs/{id}/shards                         sharding progress
//
// Clients keep using POST /v1/jobs unchanged; these endpoints are the
// worker side of the protocol, and Client implements Coord over them.
func AttachHTTP(mount func(pattern string, h http.Handler), c *Coordinator) {
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v)
	}
	fail := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}
	lease := func(w http.ResponseWriter, job string) {
		l, err := c.Lease(job)
		if err != nil {
			fail(w, http.StatusNotFound, err)
			return
		}
		if l == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, l)
	}
	mount("POST /v1/jobs/lease", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lease(w, "")
	}))
	mount("POST /v1/jobs/{id}/lease", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lease(w, r.PathValue("id"))
	}))
	mount("POST /v1/jobs/{id}/lease/{lease}/heartbeat", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := c.Heartbeat(r.PathValue("id"), r.PathValue("lease")); err != nil {
			fail(w, http.StatusConflict, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mount("POST /v1/jobs/{id}/lease/{lease}/complete", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := c.Complete(r.PathValue("id"), r.PathValue("lease")); err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mount("POST /v1/jobs/{id}/lease/{lease}/fail", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Error string `json:"error"`
		}
		json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body)
		if err := c.Fail(r.PathValue("id"), r.PathValue("lease"), body.Error); err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mount("GET /v1/jobs/{id}/shards", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p, ok := c.Progress(r.PathValue("id"))
		if !ok {
			fail(w, http.StatusNotFound, fmt.Errorf("shard: job %s not published", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, p)
	}))
}

// Client is the HTTP side of Coord: what `photoloop worker -coordinator
// URL` talks through. The zero HTTP client is usable; Base is the serve
// address ("http://host:port").
type Client struct {
	Base string
	HTTP *http.Client
}

func (cl *Client) client() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// post issues one coordinator call, decoding a JSON body into out when
// the response carries one.
func (cl *Client) post(path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(http.MethodPost, strings.TrimSuffix(cl.Base, "/")+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cl.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return resp.StatusCode, fmt.Errorf("shard: %s: %s", path, e.Error)
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("shard: decoding %s response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Lease implements Coord: a 204 (no work available) returns (nil, nil),
// and the worker polls.
func (cl *Client) Lease(job string) (*Lease, error) {
	path := "/v1/jobs/lease"
	if job != "" {
		path = "/v1/jobs/" + job + "/lease"
	}
	var l Lease
	code, err := cl.post(path, nil, &l)
	if err != nil {
		return nil, err
	}
	if code == http.StatusNoContent {
		return nil, nil
	}
	return &l, nil
}

// Heartbeat implements Coord. A 409 means the lease was reassigned — the
// error makes the worker abandon the range.
func (cl *Client) Heartbeat(job, lease string) error {
	_, err := cl.post("/v1/jobs/"+job+"/lease/"+lease+"/heartbeat", nil, nil)
	return err
}

// Complete implements Coord.
func (cl *Client) Complete(job, lease string) error {
	_, err := cl.post("/v1/jobs/"+job+"/lease/"+lease+"/complete", nil, nil)
	return err
}

// Fail implements Coord.
func (cl *Client) Fail(job, lease, msg string) error {
	_, err := cl.post("/v1/jobs/"+job+"/lease/"+lease+"/fail", map[string]string{"error": msg}, nil)
	return err
}
