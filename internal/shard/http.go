package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"photoloop/internal/retry"
)

// AttachHTTP mounts the coordinator's worker-facing endpoints through the
// given mount function (a sweep.Server's Mount, in the serve command):
//
//	POST /v1/jobs/lease                               lease a range of any job (204: none)
//	POST /v1/jobs/{id}/lease                          lease a range of one job
//	POST /v1/jobs/{id}/lease/{lease}/heartbeat        keep a lease alive (409: lease lost)
//	POST /v1/jobs/{id}/lease/{lease}/complete         mark a range done
//	POST /v1/jobs/{id}/lease/{lease}/fail             hand a range back (body: {"error": ...})
//	GET  /v1/jobs/{id}/shards                         sharding progress
//
// Clients keep using POST /v1/jobs unchanged; these endpoints are the
// worker side of the protocol, and Client implements Coord over them.
func AttachHTTP(mount func(pattern string, h http.Handler), c *Coordinator) {
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v)
	}
	fail := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}
	lease := func(w http.ResponseWriter, job string) {
		l, err := c.Lease(job)
		if err != nil {
			fail(w, http.StatusNotFound, err)
			return
		}
		if l == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, l)
	}
	mount("POST /v1/jobs/lease", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lease(w, "")
	}))
	mount("POST /v1/jobs/{id}/lease", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lease(w, r.PathValue("id"))
	}))
	mount("POST /v1/jobs/{id}/lease/{lease}/heartbeat", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := c.Heartbeat(r.PathValue("id"), r.PathValue("lease")); err != nil {
			fail(w, http.StatusConflict, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mount("POST /v1/jobs/{id}/lease/{lease}/complete", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := c.Complete(r.PathValue("id"), r.PathValue("lease")); err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mount("POST /v1/jobs/{id}/lease/{lease}/fail", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Error string `json:"error"`
		}
		json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body)
		if err := c.Fail(r.PathValue("id"), r.PathValue("lease"), body.Error); err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	mount("GET /v1/jobs/{id}/shards", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p, ok := c.Progress(r.PathValue("id"))
		if !ok {
			fail(w, http.StatusNotFound, fmt.Errorf("shard: job %s not published", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, p)
	}))
}

// Client is the HTTP side of Coord: what `photoloop worker -coordinator
// URL` talks through. The zero HTTP client is usable; Base is the serve
// address ("http://host:port"). Every call retries under Retry (zero
// value = the retry package defaults): transport errors, truncated
// responses and 5xx retry with exponential backoff, 4xx is a fact and
// fails immediately — notably heartbeat 409, which means the lease was
// reassigned and the range must be abandoned, not re-asked-for.
type Client struct {
	// Base is the coordinator address ("http://host:port").
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Retry bounds per-call retries (zero value = retry defaults).
	Retry retry.Policy

	mu      sync.Mutex
	retries int
}

func (cl *Client) client() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// Retries reports how many individual HTTP attempts failed and were
// retried over the client's lifetime — the observable trace of riding
// out a flaky network.
func (cl *Client) Retries() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.retries
}

// post issues one coordinator call under the retry policy, decoding a
// JSON body into out when the response carries one.
func (cl *Client) post(ctx context.Context, path string, body, out any) (int, error) {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return 0, err
		}
	}
	policy := cl.Retry
	inner := policy.OnRetry
	policy.OnRetry = func(err error) {
		cl.mu.Lock()
		cl.retries++
		cl.mu.Unlock()
		if inner != nil {
			inner(err)
		}
	}
	var code int
	err := policy.Do(ctx, func() error {
		var rd io.Reader
		if buf != nil {
			rd = bytes.NewReader(buf)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimSuffix(cl.Base, "/")+path, rd)
		if err != nil {
			return retry.Permanent(err)
		}
		if buf != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := cl.client().Do(req)
		if err != nil {
			return err // transport blip: retry
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		if err != nil {
			return err // truncated response: retry
		}
		switch {
		case resp.StatusCode >= 500:
			return fmt.Errorf("shard: %s: %s", path, resp.Status)
		case resp.StatusCode >= 400:
			var e struct {
				Error string `json:"error"`
			}
			json.Unmarshal(payload, &e)
			if e.Error == "" {
				e.Error = resp.Status
			}
			return retry.Permanent(&StatusError{Code: resp.StatusCode, Msg: fmt.Sprintf("shard: %s: %s", path, e.Error)})
		}
		if out != nil && resp.StatusCode != http.StatusNoContent {
			if err := json.Unmarshal(payload, out); err != nil {
				return fmt.Errorf("shard: decoding %s response: %w", path, err) // torn body behind a proxy: retry
			}
		}
		code = resp.StatusCode
		return nil
	})
	return code, err
}

// StatusError is a coordinator 4xx refusal, preserved so callers can
// branch on the code (a heartbeat 409 means the lease is lost).
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Msg is the coordinator's error message.
	Msg string
}

// Error implements error.
func (e *StatusError) Error() string { return e.Msg }

// Lease implements Coord: a 204 (no work available) returns (nil, nil),
// and the worker polls.
func (cl *Client) Lease(ctx context.Context, job string) (*Lease, error) {
	path := "/v1/jobs/lease"
	if job != "" {
		path = "/v1/jobs/" + job + "/lease"
	}
	var l Lease
	code, err := cl.post(ctx, path, nil, &l)
	if err != nil {
		return nil, err
	}
	if code == http.StatusNoContent {
		return nil, nil
	}
	return &l, nil
}

// Heartbeat implements Coord. A 409 means the lease was reassigned — the
// error makes the worker abandon the range.
func (cl *Client) Heartbeat(ctx context.Context, job, lease string) error {
	_, err := cl.post(ctx, "/v1/jobs/"+job+"/lease/"+lease+"/heartbeat", nil, nil)
	return err
}

// Complete implements Coord.
func (cl *Client) Complete(ctx context.Context, job, lease string) error {
	_, err := cl.post(ctx, "/v1/jobs/"+job+"/lease/"+lease+"/complete", nil, nil)
	return err
}

// Fail implements Coord.
func (cl *Client) Fail(ctx context.Context, job, lease, msg string) error {
	_, err := cl.post(ctx, "/v1/jobs/"+job+"/lease/"+lease+"/fail", map[string]string{"error": msg}, nil)
	return err
}
