package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"photoloop/internal/explore"
	"photoloop/internal/mapper"
	"photoloop/internal/store"
	"photoloop/internal/sweep"
)

// Coord is what a worker needs from a coordinator. The Coordinator
// implements it directly (in-process workers: the coordinating process
// participating in its own job, tests), and Client implements it over
// the serve API (remote worker processes).
type Coord interface {
	Lease(job string) (*Lease, error)
	Heartbeat(job, lease string) error
	Complete(job, lease string) error
	Fail(job, lease, msg string) error
}

// WorkerOptions tunes a Work loop.
type WorkerOptions struct {
	// Job restricts the worker to one job id ("" = any published job).
	Job string
	// SearchWorkers caps per-search parallelism (0 = mapper default).
	// Leases carry the spec, whose own SearchWorkers — part of the cache
	// key — always wins; this only covers specs that left it unset.
	SearchWorkers int
	// Poll is the idle wait between lease attempts when the coordinator
	// has nothing (default 200ms).
	Poll time.Duration
	// MaxLeases stops the loop after that many completed leases (0 =
	// run until the context ends). Tests use it; production workers run
	// unbounded.
	MaxLeases int
	// OnLease, when set, observes each acquired lease (diagnostics).
	OnLease func(*Lease)
}

// pointDelayEnv mirrors the jobs runner's test hook: a per-task sleep
// that widens crash windows so tests can SIGKILL a worker mid-lease
// deterministically.
const pointDelayEnv = "PHOTOLOOP_JOB_POINT_DELAY"

// Work runs a worker loop: lease a task range, refresh the store, warm it
// with the range's searches, report completion; repeat until the context
// ends (which is the normal way to stop a worker — a clean return, not an
// error). The store handle is the worker's own segment of the shared
// store directory; everything the worker computes write-through lands
// there, which is the entire output channel — evaluated points are
// discarded, only their searches matter.
func Work(ctx context.Context, c Coord, st *store.Store, opts WorkerOptions) error {
	poll := opts.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	completed := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		lease, err := c.Lease(opts.Job)
		if err != nil {
			return err
		}
		if lease == nil {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(poll):
			}
			continue
		}
		if opts.OnLease != nil {
			opts.OnLease(lease)
		}
		if err := workLease(ctx, c, st, lease, opts); err != nil {
			// A spec-level failure: hand the range back with the reason.
			// The lease may already be stale (heartbeat lost) — Fail is a
			// no-op then.
			c.Fail(lease.Job, lease.ID, err.Error())
			if ctx.Err() != nil {
				return nil
			}
			continue
		}
		if err := c.Complete(lease.Job, lease.ID); err != nil {
			return err
		}
		completed++
		if opts.MaxLeases > 0 && completed >= opts.MaxLeases {
			return nil
		}
	}
}

// workLease executes one lease: refresh the store view (another worker
// may have computed half the range already — those become disk hits),
// then evaluate every task with a fresh two-tier cache over the shared
// store. A heartbeat goroutine keeps the lease alive; losing it (the
// coordinator reassigned the range) cancels the work mid-flight, since
// finishing a stolen range only duplicates another worker's effort.
func workLease(ctx context.Context, c Coord, st *store.Store, lease *Lease, opts WorkerOptions) error {
	if err := st.Refresh(); err != nil {
		return err
	}
	cache := mapper.NewCache()
	cache.SetPersister(st)

	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	ttl := time.Duration(lease.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	go func() {
		defer close(hbDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-lctx.Done():
				return
			case <-t.C:
				if err := c.Heartbeat(lease.Job, lease.ID); err != nil {
					cancel()
					return
				}
			}
		}
	}()
	err := evalTasks(lctx, cache, lease, opts)
	cancel()
	<-hbDone
	return err
}

// evalTasks evaluates a lease's task indices. Point-level failures
// (Point.Err) are not errors here: the final assembly run reproduces
// them locally from the same deterministic evaluation, and a point that
// fails has no searches to warm anyway.
func evalTasks(ctx context.Context, cache *mapper.Cache, lease *Lease, opts WorkerOptions) error {
	delay, _ := time.ParseDuration(os.Getenv(pointDelayEnv))
	pause := func() error {
		if delay > 0 {
			time.Sleep(delay)
		}
		return ctx.Err()
	}
	switch lease.Kind {
	case KindSweep:
		var sp sweep.Spec
		if err := json.Unmarshal(lease.Spec, &sp); err != nil {
			return fmt.Errorf("shard: decoding sweep spec: %w", err)
		}
		if sp.SearchWorkers == 0 {
			sp.SearchWorkers = opts.SearchWorkers
		}
		plan, err := PlanSweep(&sp)
		if err != nil {
			return err
		}
		ev, err := sweep.NewEvaluator(sp, sweep.Options{Cache: cache})
		if err != nil {
			return err
		}
		for _, task := range lease.Tasks {
			values, wi, oi, err := plan.Decode(task)
			if err != nil {
				return err
			}
			if _, err := ev.Eval(int(task), values, wi, oi); err != nil {
				return err
			}
			if err := pause(); err != nil {
				return err
			}
		}
		return nil
	case KindExplore:
		var sp explore.Spec
		if err := json.Unmarshal(lease.Spec, &sp); err != nil {
			return fmt.Errorf("shard: decoding explore spec: %w", err)
		}
		if sp.SearchWorkers == 0 {
			sp.SearchWorkers = opts.SearchWorkers
		}
		ev, err := explore.NewLatticeEvaluator(sp, explore.Options{Cache: cache})
		if err != nil {
			return err
		}
		for _, task := range lease.Tasks {
			if _, err := ev.Eval(task); err != nil {
				return err
			}
			if err := pause(); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("shard: unknown lease kind %q", lease.Kind)
}

// SweepPlan is the index arithmetic of a sweep's point grid: point index
// = (variant*W + workload)*O + objective, variants in cross-product
// order with the first axis most significant — exactly sweep.Run's
// enumeration, so a plan's Decode feeds sweep.Evaluator.Eval the same
// (values, wi, oi) the full Run computes for that index.
type SweepPlan struct {
	axes [][]any
	w, o int
}

// PlanSweep indexes a sweep spec's point grid. WarmStart sweeps refuse to
// plan: their points chain searches across the variant axis (each warm
// start is part of the next search's cache key), so they cannot be
// partitioned without changing results — callers run those locally.
func PlanSweep(sp *sweep.Spec) (*SweepPlan, error) {
	if sp.WarmStart {
		return nil, fmt.Errorf("shard: warm-start sweeps chain searches across points and cannot shard")
	}
	p := &SweepPlan{w: len(sp.Workloads), o: len(sp.Objectives)}
	if p.o == 0 {
		p.o = 1 // the implicit default "energy" objective
	}
	if p.w == 0 {
		return nil, fmt.Errorf("shard: sweep spec has no workloads")
	}
	total := int64(p.w * p.o)
	for _, ax := range sp.Axes {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("shard: axis %q has no values", ax.Param)
		}
		p.axes = append(p.axes, ax.Values)
		total *= int64(len(ax.Values))
		if total > 1<<40 {
			return nil, fmt.Errorf("shard: sweep grid implausibly large")
		}
	}
	return p, nil
}

// NumPoints is the grid's total point count.
func (p *SweepPlan) NumPoints() int64 {
	total := int64(p.w * p.o)
	for _, values := range p.axes {
		total *= int64(len(values))
	}
	return total
}

// Decode resolves a point index into its axis values and workload and
// objective indices.
func (p *SweepPlan) Decode(idx int64) (values []any, wi, oi int, err error) {
	if idx < 0 || idx >= p.NumPoints() {
		return nil, 0, 0, fmt.Errorf("shard: point index %d out of range [0, %d)", idx, p.NumPoints())
	}
	oi = int(idx % int64(p.o))
	idx /= int64(p.o)
	wi = int(idx % int64(p.w))
	idx /= int64(p.w)
	values = make([]any, len(p.axes))
	for i := len(p.axes) - 1; i >= 0; i-- {
		n := int64(len(p.axes[i]))
		values[i] = p.axes[i][idx%n]
		idx /= n
	}
	return values, wi, oi, nil
}
