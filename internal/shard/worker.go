package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"photoloop/internal/explore"
	"photoloop/internal/mapper"
	"photoloop/internal/store"
	"photoloop/internal/sweep"
)

// Coord is what a worker needs from a coordinator. Local wraps a
// Coordinator for in-process workers (the coordinating process
// participating in its own job, tests); Client implements it over the
// serve API with retries (remote worker processes). The context bounds
// each call — over HTTP that includes the retry backoff.
type Coord interface {
	Lease(ctx context.Context, job string) (*Lease, error)
	Heartbeat(ctx context.Context, job, lease string) error
	Complete(ctx context.Context, job, lease string) error
	Fail(ctx context.Context, job, lease, msg string) error
}

// Local adapts an in-process Coordinator to the Coord interface. The
// Coordinator's own methods are synchronous map operations that cannot
// block, so the context is accepted and ignored.
type Local struct {
	// C is the wrapped coordinator.
	C *Coordinator
}

// Lease implements Coord.
func (l Local) Lease(ctx context.Context, job string) (*Lease, error) { return l.C.Lease(job) }

// Heartbeat implements Coord.
func (l Local) Heartbeat(ctx context.Context, job, lease string) error {
	return l.C.Heartbeat(job, lease)
}

// Complete implements Coord.
func (l Local) Complete(ctx context.Context, job, lease string) error {
	return l.C.Complete(job, lease)
}

// Fail implements Coord.
func (l Local) Fail(ctx context.Context, job, lease, msg string) error {
	return l.C.Fail(job, lease, msg)
}

// WorkerStore is a worker's result channel: the mapper.Persister its
// per-lease caches write through, plus the lease-lifecycle hooks that
// differ between the shared-directory and shared-nothing topologies.
// Begin runs at lease start (refresh the shared view, or pull the
// coordinator's warm-key digest); Flush runs before Complete and must
// not return until every result of the lease is durable outside this
// process — a range must never be marked done while its results can
// still be lost with the worker.
type WorkerStore interface {
	mapper.Persister
	// Begin prepares the store for one lease of the named job.
	Begin(ctx context.Context, job string) error
	// Flush makes every stored result durable before the lease completes.
	Flush(ctx context.Context) error
}

// SharedDir adapts a shared-directory *store.Store to WorkerStore: the
// worker appends to its own segment of a store directory the coordinator
// also reads. Begin refreshes the merged view (another worker may have
// computed half the range already); Flush is a no-op because WriteAt
// already landed every record in the segment file.
type SharedDir struct {
	// S is the worker's handle on the shared store directory.
	S *store.Store
}

// Load implements mapper.Persister.
func (d SharedDir) Load(k mapper.Key) (*mapper.Best, bool) { return d.S.Load(k) }

// Store implements mapper.Persister.
func (d SharedDir) Store(k mapper.Key, b *mapper.Best) error { return d.S.Store(k, b) }

// Begin implements WorkerStore.
func (d SharedDir) Begin(ctx context.Context, job string) error { return d.S.Refresh() }

// Flush implements WorkerStore.
func (d SharedDir) Flush(ctx context.Context) error { return nil }

// WorkerOptions tunes a Work loop.
type WorkerOptions struct {
	// Job restricts the worker to one job id ("" = any published job).
	Job string
	// SearchWorkers caps per-search parallelism (0 = mapper default).
	// Leases carry the spec, whose own SearchWorkers — part of the cache
	// key — always wins; this only covers specs that left it unset.
	SearchWorkers int
	// Poll is the idle wait between lease attempts when the coordinator
	// has nothing (default 200ms).
	Poll time.Duration
	// MaxLeases stops the loop after that many completed leases (0 =
	// run until the context ends). Tests use it; production workers run
	// unbounded.
	MaxLeases int
	// OnLease, when set, observes each acquired lease (diagnostics).
	OnLease func(*Lease)
}

// pointDelayEnv mirrors the jobs runner's test hook: a per-task sleep
// that widens crash windows so tests can SIGKILL a worker mid-lease
// deterministically.
const pointDelayEnv = "PHOTOLOOP_JOB_POINT_DELAY"

// maxConsecutiveFailures is how many coordinator calls in a row may fail
// (after the Client's own retries) before the worker loop gives up. A
// blip degrades to retry-then-poll; only a coordinator that stays dead
// through this many rounds ends the worker.
const maxConsecutiveFailures = 10

// Work runs a worker loop: lease a task range, prepare the store, warm it
// with the range's searches, flush, report completion; repeat until the
// context ends (which is the normal way to stop a worker — a clean
// return, not an error). The WorkerStore is the worker's entire output
// channel — evaluated points are discarded, only their searches matter:
// a SharedDir store appends to its own segment of a shared directory, a
// store.RemotePersister uploads results to the coordinator over HTTP.
// Coordinator failures degrade to retry: a lease, heartbeat or complete
// call that fails never abandons already-durable results, and only
// maxConsecutiveFailures failed rounds in a row stop the loop.
func Work(ctx context.Context, c Coord, ws WorkerStore, opts WorkerOptions) error {
	poll := opts.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	completed := 0
	failures := 0
	wait := func() {
		select {
		case <-ctx.Done():
		case <-time.After(poll):
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		lease, err := c.Lease(ctx, opts.Job)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if failures++; failures >= maxConsecutiveFailures {
				return fmt.Errorf("shard: coordinator unreachable after %d attempts: %w", failures, err)
			}
			wait()
			continue
		}
		failures = 0
		if lease == nil {
			wait()
			continue
		}
		if opts.OnLease != nil {
			opts.OnLease(lease)
		}
		if err := workLease(ctx, c, ws, lease, opts); err != nil {
			// A spec-level failure: hand the range back with the reason.
			// The lease may already be stale (heartbeat lost) — Fail is a
			// no-op then, and a Fail the coordinator never hears is
			// equivalent (the lease expires on its own).
			c.Fail(ctx, lease.Job, lease.ID, err.Error())
			if ctx.Err() != nil {
				return nil
			}
			continue
		}
		if err := c.Complete(ctx, lease.Job, lease.ID); err != nil {
			// The results are already flushed, so losing the Complete costs
			// a reassignment (the next holder finds every search warm), not
			// correctness. Keep working unless the coordinator stays dead.
			if ctx.Err() != nil {
				return nil
			}
			if failures++; failures >= maxConsecutiveFailures {
				return err
			}
			wait()
			continue
		}
		completed++
		if opts.MaxLeases > 0 && completed >= opts.MaxLeases {
			return nil
		}
	}
}

// workLease executes one lease: Begin the store for the job (refresh the
// shared view, or pull the coordinator's warm-key digest — either way,
// tasks another worker already computed become hits), evaluate every
// task with a fresh two-tier cache over the worker store, then Flush
// before the caller Completes — results must be durable outside this
// process before the range can be marked done. A heartbeat goroutine
// keeps the lease alive; losing it (the coordinator reassigned the
// range) cancels the work mid-flight, since finishing a stolen range
// only duplicates another worker's effort — but what was already
// computed still flushes: uploads dedupe first-write-wins, so the effort
// is banked either way.
func workLease(ctx context.Context, c Coord, ws WorkerStore, lease *Lease, opts WorkerOptions) error {
	if err := ws.Begin(ctx, lease.Job); err != nil {
		return err
	}
	cache := mapper.NewCache()
	cache.SetPersister(ws)

	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	ttl := time.Duration(lease.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	go func() {
		defer close(hbDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-lctx.Done():
				return
			case <-t.C:
				if err := c.Heartbeat(lctx, lease.Job, lease.ID); err != nil {
					cancel()
					return
				}
			}
		}
	}()
	err := evalTasks(lctx, cache, lease, opts)
	cancel()
	<-hbDone
	// Flush under the parent context: even a lease lost mid-range has
	// banked work worth uploading, and only a real shutdown aborts it.
	if ferr := ws.Flush(ctx); err == nil {
		err = ferr
	}
	return err
}

// evalTasks evaluates a lease's task indices. Point-level failures
// (Point.Err) are not errors here: the final assembly run reproduces
// them locally from the same deterministic evaluation, and a point that
// fails has no searches to warm anyway.
func evalTasks(ctx context.Context, cache *mapper.Cache, lease *Lease, opts WorkerOptions) error {
	delay, _ := time.ParseDuration(os.Getenv(pointDelayEnv))
	pause := func() error {
		if delay > 0 {
			time.Sleep(delay)
		}
		return ctx.Err()
	}
	switch lease.Kind {
	case KindSweep:
		var sp sweep.Spec
		if err := json.Unmarshal(lease.Spec, &sp); err != nil {
			return fmt.Errorf("shard: decoding sweep spec: %w", err)
		}
		if sp.SearchWorkers == 0 {
			sp.SearchWorkers = opts.SearchWorkers
		}
		plan, err := PlanSweep(&sp)
		if err != nil {
			return err
		}
		ev, err := sweep.NewEvaluator(sp, sweep.Options{Cache: cache})
		if err != nil {
			return err
		}
		for _, task := range lease.Tasks {
			values, wi, oi, err := plan.Decode(task)
			if err != nil {
				return err
			}
			if _, err := ev.Eval(int(task), values, wi, oi); err != nil {
				return err
			}
			if err := pause(); err != nil {
				return err
			}
		}
		return nil
	case KindExplore:
		var sp explore.Spec
		if err := json.Unmarshal(lease.Spec, &sp); err != nil {
			return fmt.Errorf("shard: decoding explore spec: %w", err)
		}
		if sp.SearchWorkers == 0 {
			sp.SearchWorkers = opts.SearchWorkers
		}
		ev, err := explore.NewLatticeEvaluator(sp, explore.Options{Cache: cache})
		if err != nil {
			return err
		}
		for _, task := range lease.Tasks {
			if _, err := ev.Eval(task); err != nil {
				return err
			}
			if err := pause(); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("shard: unknown lease kind %q", lease.Kind)
}

// SweepPlan is the index arithmetic of a sweep's point grid: point index
// = (variant*W + workload)*O + objective, variants in cross-product
// order with the first axis most significant — exactly sweep.Run's
// enumeration, so a plan's Decode feeds sweep.Evaluator.Eval the same
// (values, wi, oi) the full Run computes for that index.
type SweepPlan struct {
	axes [][]any
	w, o int
}

// PlanSweep indexes a sweep spec's point grid. WarmStart sweeps refuse to
// plan: their points chain searches across the variant axis (each warm
// start is part of the next search's cache key), so they cannot be
// partitioned without changing results — callers run those locally.
func PlanSweep(sp *sweep.Spec) (*SweepPlan, error) {
	if sp.WarmStart {
		return nil, fmt.Errorf("shard: warm-start sweeps chain searches across points and cannot shard")
	}
	p := &SweepPlan{w: len(sp.Workloads), o: len(sp.Objectives)}
	if p.o == 0 {
		p.o = 1 // the implicit default "energy" objective
	}
	if p.w == 0 {
		return nil, fmt.Errorf("shard: sweep spec has no workloads")
	}
	total := int64(p.w * p.o)
	for _, ax := range sp.Axes {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("shard: axis %q has no values", ax.Param)
		}
		p.axes = append(p.axes, ax.Values)
		total *= int64(len(ax.Values))
		if total > 1<<40 {
			return nil, fmt.Errorf("shard: sweep grid implausibly large")
		}
	}
	return p, nil
}

// NumPoints is the grid's total point count.
func (p *SweepPlan) NumPoints() int64 {
	total := int64(p.w * p.o)
	for _, values := range p.axes {
		total *= int64(len(values))
	}
	return total
}

// Decode resolves a point index into its axis values and workload and
// objective indices.
func (p *SweepPlan) Decode(idx int64) (values []any, wi, oi int, err error) {
	if idx < 0 || idx >= p.NumPoints() {
		return nil, 0, 0, fmt.Errorf("shard: point index %d out of range [0, %d)", idx, p.NumPoints())
	}
	oi = int(idx % int64(p.o))
	idx /= int64(p.o)
	wi = int(idx % int64(p.w))
	idx /= int64(p.w)
	values = make([]any, len(p.axes))
	for i := len(p.axes) - 1; i >= 0; i-- {
		n := int64(len(p.axes[i]))
		values[i] = p.axes[i][idx%n]
		idx /= n
	}
	return values, wi, oi, nil
}
