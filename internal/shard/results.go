package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"photoloop/internal/store"
)

// maxUploadBytes bounds one result-upload POST body. The persister's
// batching keeps real uploads far below this; the cap only stops a
// corrupted length from buffering unbounded input.
const maxUploadBytes = 64 << 20

// AttachResults mounts the shared-nothing result exchange next to the
// lease endpoints — the coordinator half of store.RemotePersister:
//
//	POST /v1/jobs/{id}/results            upload a frame batch (store.EncodeFrames body)
//	GET  /v1/jobs/{id}/keys               warm-key bloom digest (store.KeyDigest body)
//	GET  /v1/jobs/{id}/results/{key}      fetch one result (raw store.EncodeBest body; 404: absent)
//
// Records are content-addressed, so the store is job-agnostic: the {id}
// path segment keeps the routes under the job tree, but an upload is
// valid whatever job produced it, and duplicate or out-of-order uploads
// deduplicate first-write-wins exactly like racing segment writers. A
// batch that fails to decode whole — bad magic, torn record, CRC
// mismatch, non-canonical payload, trailing bytes — is rejected with 400
// and nothing is appended: a truncated POST can never land partially.
func AttachResults(mount func(pattern string, h http.Handler), st *store.Store) {
	fail := func(w http.ResponseWriter, code int, err error) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
	}
	mount("POST /v1/jobs/{id}/results", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes+1))
		if err != nil {
			fail(w, http.StatusBadRequest, fmt.Errorf("shard: reading upload: %w", err))
			return
		}
		if len(body) > maxUploadBytes {
			fail(w, http.StatusRequestEntityTooLarge, fmt.Errorf("shard: upload exceeds %d bytes", maxUploadBytes))
			return
		}
		recs, err := store.DecodeFrames(body)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		for _, rec := range recs {
			// First-write-wins: a key already present is a no-op, so the
			// retried upload after a lost 200 appends nothing twice.
			if err := st.Store(rec.Key, rec.Best); err != nil {
				// A disk failure mid-batch leaves a prefix appended; the
				// client retries the whole batch and the prefix dedupes.
				fail(w, http.StatusInternalServerError, err)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]int{"accepted": len(recs)})
	}))
	mount("GET /v1/jobs/{id}/keys", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Refresh first: shared-directory workers may have appended
		// segments this process hasn't scanned yet, and their keys belong
		// in the digest too.
		if err := st.Refresh(); err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(st.Digest().Encode())
	}))
	mount("GET /v1/jobs/{id}/results/{key}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		k, ok := store.ParseKeyHex(r.PathValue("key"))
		if !ok {
			fail(w, http.StatusBadRequest, fmt.Errorf("shard: malformed result key %q", r.PathValue("key")))
			return
		}
		b, ok := st.Load(k)
		if !ok {
			// The digest the worker holds may be newer than our last scan
			// (or a bloom false positive). One refresh resolves the former.
			if err := st.Refresh(); err != nil {
				fail(w, http.StatusInternalServerError, err)
				return
			}
			b, ok = st.Load(k)
		}
		if !ok {
			fail(w, http.StatusNotFound, fmt.Errorf("shard: result %s not in store", r.PathValue("key")))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(store.EncodeBest(b))
	}))
}
