// Package shard fans one durable job out across worker processes that
// share a single result store. The design exploits the repo's central
// invariant — the store is the checkpoint — to make distribution almost
// free of distributed-systems surface: workers never return results over
// the wire. A worker leases a range of task indices (sweep points, or one
// explore generation's candidates), evaluates them with a fresh
// mapper.Cache whose persister is its own segment of the shared store,
// and reports only "done". The coordinator then refreshes its view of the
// store and runs the unchanged single-process code path, which finds every
// leased search already present and assembles the artifact with zero
// searches — byte-identical to an unsharded run by construction, and
// order-independent, because content-addressed cache hits are
// bit-identical no matter which process computed them or in what order.
//
// Failure semantics follow from the same invariant. Leases carry a TTL
// and are kept alive by heartbeats; a worker that dies (SIGKILL, network
// partition, wedged host) simply stops heartbeating, the lease expires,
// and the range is handed to the next worker. Whatever the dead worker
// had already computed is in the store (its segment survives; the next
// scan merges it), so reassignment repeats only the tail of its range.
// Two workers racing on the same range — possible when a lease expires
// while its holder limps along — is harmless for the same reason: both
// write bit-identical records and the store deduplicates first-write-wins.
// Completing an already-reassigned lease is therefore accepted as a
// no-op, not an error.
package shard

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Job kinds.
const (
	KindSweep   = "sweep"
	KindExplore = "explore"
)

// DefaultLeaseTTL is how long a lease survives without a heartbeat.
// Workers heartbeat at TTL/3, so expiry takes three missed beats —
// enough to ride out a GC pause or a slow scheduler tick, short enough
// that a SIGKILLed worker's range is reassigned within seconds.
const DefaultLeaseTTL = 10 * time.Second

// DefaultRanges is how many lease ranges one offered generation is split
// into: enough slices that four workers stay busy with re-leasing slack,
// few enough that per-lease overhead (a store refresh, an evaluator
// build) stays amortized.
const DefaultRanges = 16

// maxAttempts bounds how many times one range is reassigned before the
// generation is declared failed: a range that kills five workers in a row
// is a poison task, not bad luck.
const maxAttempts = 5

// Lease is one unit of handed-out work: a set of task indices of one
// generation of one job, plus everything a worker needs to execute them
// without any other endpoint — the job's inner spec travels in the lease.
// Task indices are sweep point indices (KindSweep) or explore lattice
// indices (KindExplore).
type Lease struct {
	ID        string          `json:"id"`
	Job       string          `json:"job"`
	Kind      string          `json:"kind"`
	Gen       int             `json:"gen"`
	Tasks     []int64         `json:"tasks"`
	Spec      json.RawMessage `json:"spec"`
	TTLMillis int64           `json:"ttl_millis"`
}

// Progress is one job's sharding state, surfaced by `jobs status` and the
// coordinator's HTTP status.
type Progress struct {
	Gen     int `json:"gen"`
	Ranges  int `json:"ranges"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
	// Reassigned counts leases that expired or failed and were handed
	// out again — nonzero after a worker death.
	Reassigned int `json:"reassigned,omitempty"`
}

type rangeState int

const (
	rangePending rangeState = iota
	rangeLeased
	rangeDone
)

// taskRange is one leasable slice of a generation.
type taskRange struct {
	tasks    []int64
	state    rangeState
	leaseID  string
	expires  time.Time
	attempts int
}

// generation is one offered batch of tasks: a whole sweep, or one
// adaptive explore generation.
type generation struct {
	gen    int
	ranges []*taskRange
	done   chan struct{}
	err    error
	closed bool
}

// jobState is one published job.
type jobState struct {
	id   string
	kind string
	spec json.RawMessage
	cur  *generation
	// reassigned accumulates across generations for Progress.
	reassigned int
}

// Coordinator hands out range leases over published jobs. It is an
// in-memory structure owned by the coordinating process (the one running
// the job); durability lives in the store and the jobs directory, so a
// coordinator crash is just a job crash — `jobs resume` republishes and
// the store replays everything already computed.
type Coordinator struct {
	// LeaseTTL is the heartbeat deadline (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Ranges is how many slices one generation is split into (default
	// DefaultRanges; a generation never splits below one task per range).
	Ranges int

	mu   sync.Mutex
	now  func() time.Time // test hook; never nil after NewCoordinator
	jobs map[string]*jobState
	// order preserves publish order for any-job leasing.
	order []string
	seq   int64
}

// NewCoordinator returns an empty coordinator with default tuning.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		LeaseTTL: DefaultLeaseTTL,
		Ranges:   DefaultRanges,
		now:      time.Now,
		jobs:     map[string]*jobState{},
	}
}

func (c *Coordinator) ttl() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return DefaultLeaseTTL
}

// Publish registers a job so workers can lease its generations. spec is
// the job's inner sweep or explore spec (not the jobs.Spec wrapper);
// it rides inside every lease. Publishing an already-published id
// replaces its spec and drops any stale generation (the resume case).
func (c *Coordinator) Publish(id, kind string, spec json.RawMessage) error {
	if kind != KindSweep && kind != KindExplore {
		return fmt.Errorf("shard: unknown job kind %q", kind)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[id]; !ok {
		c.order = append(c.order, id)
	}
	c.jobs[id] = &jobState{id: id, kind: kind, spec: spec}
	return nil
}

// Retire drops a job: outstanding leases die quietly (Complete on them
// becomes the usual no-op) and workers stop being offered its work.
func (c *Coordinator) Retire(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if js, ok := c.jobs[id]; ok {
		if js.cur != nil && !js.cur.closed {
			js.cur.closed = true
			close(js.cur.done)
		}
		delete(c.jobs, id)
		for i, o := range c.order {
			if o == id {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
}

// Offer posts one generation of tasks for leasing and returns a channel
// closed when every range is done (or the generation failed — check Err
// after). Offering a new gen replaces the previous generation (whose
// channel is closed if it wasn't already). An empty task list completes
// immediately.
func (c *Coordinator) Offer(id string, gen int, tasks []int64) (<-chan struct{}, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	js, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("shard: job %s not published", id)
	}
	if js.cur != nil && !js.cur.closed {
		js.cur.closed = true
		close(js.cur.done)
	}
	g := &generation{gen: gen, done: make(chan struct{})}
	nr := c.Ranges
	if nr <= 0 {
		nr = DefaultRanges
	}
	if nr > len(tasks) {
		nr = len(tasks)
	}
	for i := 0; i < nr; i++ {
		// Contiguous slices, remainder spread over the leading ranges:
		// consecutive sweep points share layer shapes and warm caches, so
		// contiguity is worth keeping.
		lo, hi := i*len(tasks)/nr, (i+1)*len(tasks)/nr
		g.ranges = append(g.ranges, &taskRange{tasks: tasks[lo:hi]})
	}
	if len(g.ranges) == 0 {
		g.closed = true
		close(g.done)
	}
	js.cur = g
	return g.done, nil
}

// Err reports the current generation's failure, if any (checked after the
// Offer channel closes).
func (c *Coordinator) Err(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if js, ok := c.jobs[id]; ok && js.cur != nil {
		return js.cur.err
	}
	return nil
}

// Lease hands out one pending (or expired) range of the named job, or of
// any published job when id is empty. It returns nil when no work is
// available — workers poll.
func (c *Coordinator) Lease(id string) (*Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := c.order
	if id != "" {
		if _, ok := c.jobs[id]; !ok {
			return nil, fmt.Errorf("shard: job %s not published", id)
		}
		ids = []string{id}
	}
	now := c.now()
	for _, jid := range ids {
		js := c.jobs[jid]
		if js == nil || js.cur == nil || js.cur.closed {
			continue
		}
		for _, r := range js.cur.ranges {
			if r.state == rangeLeased && now.After(r.expires) {
				// The holder went silent: expire the lease. The range's
				// completed prefix is already in the store; only the tail
				// is recomputed by the next holder.
				r.state = rangePending
				r.leaseID = ""
				js.reassigned++
			}
			if r.state != rangePending {
				continue
			}
			if r.attempts >= maxAttempts {
				c.failGenerationLocked(js, fmt.Errorf("shard: range abandoned after %d attempts", r.attempts))
				break
			}
			r.attempts++
			r.state = rangeLeased
			r.expires = now.Add(c.ttl())
			c.seq++
			r.leaseID = fmt.Sprintf("L%06d", c.seq)
			return &Lease{
				ID:        r.leaseID,
				Job:       jid,
				Kind:      js.kind,
				Gen:       js.cur.gen,
				Tasks:     r.tasks,
				Spec:      js.spec,
				TTLMillis: c.ttl().Milliseconds(),
			}, nil
		}
	}
	return nil, nil
}

// findLease locates a live lease by id. Returns nils for anything stale —
// expired, reassigned, retired, or from an older generation.
func (c *Coordinator) findLease(job, lease string) (*jobState, *taskRange) {
	js, ok := c.jobs[job]
	if !ok || js.cur == nil {
		return nil, nil
	}
	for _, r := range js.cur.ranges {
		if r.state == rangeLeased && r.leaseID == lease {
			return js, r
		}
	}
	return nil, nil
}

// Heartbeat extends a lease. An unknown lease returns an error so the
// worker stops working a range that has been reassigned — its partial
// results are in the store either way.
func (c *Coordinator) Heartbeat(job, lease string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	js, r := c.findLease(job, lease)
	if r == nil {
		return fmt.Errorf("shard: lease %s is not live", lease)
	}
	_ = js
	r.expires = c.now().Add(c.ttl())
	return nil
}

// Complete marks a lease's range done. Completing a lease that is no
// longer live (expired and reassigned, job retired) is a no-op: the work
// itself is in the store, and the range will be — or already was —
// finished by another holder.
func (c *Coordinator) Complete(job, lease string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	js, r := c.findLease(job, lease)
	if r == nil {
		return nil
	}
	r.state = rangeDone
	r.leaseID = ""
	for _, rr := range js.cur.ranges {
		if rr.state != rangeDone {
			return nil
		}
	}
	js.cur.closed = true
	close(js.cur.done)
	return nil
}

// Fail returns a lease's range to the pending pool (a worker hit a
// spec-level error or is shutting down cleanly). The range's attempt
// count already advanced at lease time, so ranges that fail every holder
// eventually abandon the generation.
func (c *Coordinator) Fail(job, lease, msg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	js, r := c.findLease(job, lease)
	if r == nil {
		return nil
	}
	r.state = rangePending
	r.leaseID = ""
	js.reassigned++
	if r.attempts >= maxAttempts {
		c.failGenerationLocked(js, fmt.Errorf("shard: range failed %d times (last: %s)", r.attempts, msg))
	}
	return nil
}

// failGenerationLocked records a terminal generation error and releases
// every waiter. Caller holds c.mu.
func (c *Coordinator) failGenerationLocked(js *jobState, err error) {
	if js.cur == nil || js.cur.closed {
		return
	}
	js.cur.err = err
	js.cur.closed = true
	close(js.cur.done)
}

// Progress reports a job's sharding state; ok is false for unpublished
// jobs.
func (c *Coordinator) Progress(id string) (Progress, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	js, ok := c.jobs[id]
	if !ok {
		return Progress{}, false
	}
	p := Progress{Reassigned: js.reassigned}
	if js.cur == nil {
		return p, true
	}
	p.Gen = js.cur.gen
	p.Ranges = len(js.cur.ranges)
	now := c.now()
	for _, r := range js.cur.ranges {
		switch {
		case r.state == rangeDone:
			p.Done++
		case r.state == rangeLeased && !now.After(r.expires):
			p.Leased++
		default:
			p.Pending++
		}
	}
	return p, true
}
