package shard

import (
	"encoding/json"
	"testing"
	"time"

	"photoloop/internal/sweep"
)

// fakeClock drives lease expiry deterministically.
type fakeClock struct{ t time.Time }

func (fc *fakeClock) now() time.Time          { return fc.t }
func (fc *fakeClock) advance(d time.Duration) { fc.t = fc.t.Add(d) }
func newTestCoordinator() (*Coordinator, *fakeClock) {
	fc := &fakeClock{t: time.Unix(1000, 0)}
	c := NewCoordinator()
	c.now = fc.now
	return c, fc
}

func tasks(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func TestCoordinatorLeaseLifecycle(t *testing.T) {
	c, _ := newTestCoordinator()
	c.Ranges = 4
	if err := c.Publish("j1", KindSweep, json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	done, err := c.Offer("j1", 0, tasks(8))
	if err != nil {
		t.Fatal(err)
	}

	var leases []*Lease
	covered := map[int64]bool{}
	for {
		l, err := c.Lease("")
		if err != nil {
			t.Fatal(err)
		}
		if l == nil {
			break
		}
		if l.Job != "j1" || l.Kind != KindSweep || l.Gen != 0 {
			t.Fatalf("unexpected lease %+v", l)
		}
		for _, task := range l.Tasks {
			if covered[task] {
				t.Fatalf("task %d leased twice", task)
			}
			covered[task] = true
		}
		leases = append(leases, l)
	}
	if len(leases) != 4 || len(covered) != 8 {
		t.Fatalf("%d leases covering %d tasks, want 4 covering 8", len(leases), len(covered))
	}

	for i, l := range leases {
		select {
		case <-done:
			t.Fatal("generation completed early")
		default:
		}
		if err := c.Complete(l.Job, l.ID); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	select {
	case <-done:
	default:
		t.Fatal("generation not completed after all ranges done")
	}
	if err := c.Err("j1"); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorExpiryReassigns(t *testing.T) {
	c, fc := newTestCoordinator()
	c.Ranges = 1
	c.Publish("j1", KindSweep, json.RawMessage(`{}`))
	done, _ := c.Offer("j1", 0, tasks(3))

	l1, err := c.Lease("j1")
	if err != nil || l1 == nil {
		t.Fatalf("lease: %v %v", l1, err)
	}
	// While the lease is live nothing else is handed out, and heartbeats
	// extend it across would-be expiry.
	if l, _ := c.Lease("j1"); l != nil {
		t.Fatal("live range leased twice")
	}
	fc.advance(c.LeaseTTL * 2 / 3)
	if err := c.Heartbeat(l1.Job, l1.ID); err != nil {
		t.Fatal(err)
	}
	fc.advance(c.LeaseTTL * 2 / 3)
	if l, _ := c.Lease("j1"); l != nil {
		t.Fatal("heartbeated lease expired")
	}

	// The worker dies: no heartbeat, TTL passes, the range is re-leased.
	fc.advance(c.LeaseTTL + time.Second)
	l2, err := c.Lease("j1")
	if err != nil || l2 == nil {
		t.Fatalf("expired range not reassigned: %v %v", l2, err)
	}
	if l2.ID == l1.ID {
		t.Fatal("reassigned lease kept the dead lease's id")
	}
	// The dead worker's late messages are harmless: heartbeat errors
	// (it must stop), complete is a no-op.
	if err := c.Heartbeat(l1.Job, l1.ID); err == nil {
		t.Fatal("stale heartbeat accepted")
	}
	if err := c.Complete(l1.Job, l1.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
		t.Fatal("stale complete finished the generation")
	default:
	}
	p, ok := c.Progress("j1")
	if !ok || p.Reassigned == 0 {
		t.Fatalf("progress %+v does not report the reassignment", p)
	}
	if err := c.Complete(l2.Job, l2.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	default:
		t.Fatal("generation not completed")
	}
}

func TestCoordinatorPoisonRangeFailsGeneration(t *testing.T) {
	c, _ := newTestCoordinator()
	c.Ranges = 1
	c.Publish("j1", KindSweep, json.RawMessage(`{}`))
	done, _ := c.Offer("j1", 0, tasks(2))
	for i := 0; i < maxAttempts; i++ {
		l, err := c.Lease("j1")
		if err != nil || l == nil {
			t.Fatalf("attempt %d: %v %v", i, l, err)
		}
		c.Fail(l.Job, l.ID, "boom")
	}
	select {
	case <-done:
	default:
		t.Fatal("poison range did not fail the generation")
	}
	if err := c.Err("j1"); err == nil {
		t.Fatal("failed generation reports no error")
	}
}

func TestCoordinatorOfferReplacesGeneration(t *testing.T) {
	c, _ := newTestCoordinator()
	c.Publish("j1", KindExplore, json.RawMessage(`{}`))
	done0, _ := c.Offer("j1", 0, tasks(4))
	done1, _ := c.Offer("j1", 1, tasks(4))
	select {
	case <-done0:
	default:
		t.Fatal("replaced generation's channel not released")
	}
	l, err := c.Lease("j1")
	if err != nil || l == nil || l.Gen != 1 {
		t.Fatalf("lease after replacement: %+v %v", l, err)
	}
	c.Complete(l.Job, l.ID)
	for {
		l, _ := c.Lease("j1")
		if l == nil {
			break
		}
		c.Complete(l.Job, l.ID)
	}
	select {
	case <-done1:
	default:
		t.Fatal("generation 1 not completed")
	}
}

func TestSweepPlanMatchesRunOrder(t *testing.T) {
	sp := sweep.Spec{
		Base: sweep.Base{Albireo: &sweep.AlbireoBase{}},
		Axes: []sweep.Axis{
			{Param: "output_lanes", Values: []any{3, 5, 7}},
			{Param: "wavelengths", Values: []any{4, 8}},
		},
		Workloads:  []sweep.Workload{{Network: "vgg16"}, {Network: "alexnet"}},
		Objectives: []string{"energy", "delay"},
	}
	plan, err := PlanSweep(&sp)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumPoints() != 3*2*2*2 {
		t.Fatalf("NumPoints = %d, want 24", plan.NumPoints())
	}
	// Mirror sweep.Run's enumeration: variants (first axis most
	// significant) × workloads × objectives, objective fastest.
	idx := int64(0)
	for _, lanes := range []int{3, 5, 7} {
		for _, wl := range []int{4, 8} {
			for wi := 0; wi < 2; wi++ {
				for oi := 0; oi < 2; oi++ {
					values, gotWi, gotOi, err := plan.Decode(idx)
					if err != nil {
						t.Fatal(err)
					}
					if values[0] != lanes || values[1] != wl || gotWi != wi || gotOi != oi {
						t.Fatalf("index %d decoded to (%v, %d, %d), want ([%d %d], %d, %d)",
							idx, values, gotWi, gotOi, lanes, wl, wi, oi)
					}
					idx++
				}
			}
		}
	}
	if _, _, _, err := plan.Decode(plan.NumPoints()); err == nil {
		t.Fatal("out-of-range index decoded")
	}
	// WarmStart sweeps chain searches across points and must refuse.
	ws := sp
	ws.WarmStart = true
	if _, err := PlanSweep(&ws); err == nil {
		t.Fatal("warm-start sweep planned")
	}
}
