// Fault-injection harness for the shared-nothing shard protocol: a full
// sharded job where every worker↔coordinator HTTP call — lease,
// heartbeat, complete, result upload, warm-key pull — crosses a proxy
// that drops, delays, duplicates and truncates on a deterministic
// schedule. The external test package breaks the jobs→shard import cycle.
package shard_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"photoloop/internal/jobs"
	"photoloop/internal/retry"
	"photoloop/internal/shard"
	"photoloop/internal/store"
	"photoloop/internal/sweep"
	"photoloop/internal/testutil/flakyproxy"
	"photoloop/internal/workload"
)

// flakySweepJob is a four-point sweep (enough ranges to spread across
// four workers) with Seed and SearchWorkers pinned for bit-identical
// artifacts.
func flakySweepJob() jobs.Spec {
	return jobs.Spec{Sweep: &sweep.Spec{
		Name: "flaky-sweep",
		Base: sweep.Base{Albireo: &sweep.AlbireoBase{}},
		Axes: []sweep.Axis{{Param: "output_lanes", Values: []any{3, 5, 7, 9}}},
		Workloads: []sweep.Workload{{Inline: &workload.Network{
			Name: "tiny",
			Layers: []workload.Layer{
				workload.NewConv("conv1", 1, 6, 8, 8, 8, 3, 3, 1, 1),
				workload.NewFC("fc", 1, 12, 32),
			},
		}}},
		Budget:        60,
		Seed:          1,
		SearchWorkers: 2,
	}}
}

// runPlainJob produces the unsharded reference artifact.
func runPlainJob(t *testing.T, sp jobs.Spec) []byte {
	t.Helper()
	m, err := jobs.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	buf, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestShardedOverFlakyNetworkByteIdentical is the fault-injection
// acceptance test: at 1, 2 and 4 shared-nothing remote workers, with
// every HTTP call subject to drop/delay/duplicate/truncate faults, the
// job must complete with an artifact byte-identical to the unsharded
// reference, the coordinator must assemble it from pure store hits, and
// the retry counters must show the faults were actually ridden out.
func TestShardedOverFlakyNetworkByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full sharded runs over a fault proxy")
	}
	sp := flakySweepJob()
	want := runPlainJob(t, sp)

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			m, err := jobs.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			m.Shard = shard.NewCoordinator()
			// Short TTL: a lease whose grant was dropped on the wire is
			// re-offered quickly instead of stalling the run.
			m.Shard.LeaseTTL = time.Second
			m.ShardLocal = false

			srv := sweep.NewServer()
			jobs.Attach(srv, m)
			proxy := flakyproxy.New(srv, flakyproxy.Options{
				FaultEvery:     3,
				MaxConsecutive: 2,
				Delay:          10 * time.Millisecond,
			})
			psrv := httptest.NewServer(proxy)
			defer psrv.Close()

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// More tries than MaxConsecutive so a client-level call always
			// outlasts the worst fault burst.
			fast := retry.Policy{Tries: 6, Base: 5 * time.Millisecond}
			done := make(chan error, workers)
			clients := make([]*shard.Client, workers)
			persisters := make([]*store.RemotePersister, workers)
			for i := 0; i < workers; i++ {
				rp := store.NewRemotePersister(psrv.URL, nil)
				rp.SetRetryPolicy(fast)
				cl := &shard.Client{Base: psrv.URL, Retry: fast}
				clients[i], persisters[i] = cl, rp
				go func() {
					done <- shard.Work(ctx, cl, rp, shard.WorkerOptions{Poll: 10 * time.Millisecond})
				}()
			}

			st, err := m.Submit(sp)
			if err != nil {
				t.Fatal(err)
			}
			st, err = m.Run(context.Background(), st.ID)
			if err != nil {
				t.Fatalf("sharded run over flaky network: %v", err)
			}
			got, err := m.Result(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			cancel()
			for i := 0; i < workers; i++ {
				if err := <-done; err != nil {
					t.Errorf("worker: %v", err)
				}
			}

			if !bytes.Equal(got, want) {
				t.Error("flaky-network artifact differs from unsharded reference")
			}
			// Workers held no store: the coordinator's segment was fed
			// entirely over the wire, and assembly was pure hits on it.
			if st.Store == nil || st.Store.Misses != 0 {
				t.Errorf("assembly recomputed searches: %+v", st.Store)
			}
			if st.Shards == nil || st.Shards.Ranges == 0 {
				t.Errorf("shard progress not recorded: %+v", st.Shards)
			}
			stats := proxy.Stats()
			if stats.Drops == 0 || stats.Delays == 0 || stats.Dups == 0 || stats.Truncates == 0 {
				t.Errorf("not every fault class fired: %+v", stats)
			}
			retries := 0
			for i := range clients {
				retries += clients[i].Retries() + persisters[i].Stats().Retries
			}
			if retries == 0 {
				t.Error("no retries recorded despite injected faults")
			}
			uploaded := 0
			for i := range persisters {
				uploaded += persisters[i].Stats().Uploaded
			}
			if uploaded == 0 {
				t.Error("no results travelled over the wire")
			}
		})
	}
}
