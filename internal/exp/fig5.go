package exp

import (
	"fmt"
	"io"

	"photoloop/internal/albireo"
	"photoloop/internal/mapper"
	"photoloop/internal/report"
	"photoloop/internal/workload"
)

// Fig5Row is one architecture variant of the reuse exploration.
type Fig5Row struct {
	// WeightReuse marks the "more weight reuse" topology group.
	WeightReuse bool
	// OR and IR are the paper's reuse factors (output-reusing AE
	// components; input-reusing AO components).
	OR, IR int
	// AccelPJPerMAC is accelerator+laser energy per MAC (no DRAM — the
	// figure explores the accelerator).
	AccelPJPerMAC float64
	// ConverterPJPerMAC sums all cross-domain conversion energy.
	ConverterPJPerMAC float64
	// Bins is the role breakdown (pJ/MAC, accelerator scope).
	Bins map[albireo.RoleBin]float64
	// Baseline marks the original Albireo configuration.
	Baseline bool
}

// Fig5Result reproduces Fig. 5: ResNet18 energy across reuse-scaled
// variants of the aggressively-scaled Albireo. The paper's finding:
// increasing analog/photonic-domain reuse cuts data-converter energy by
// ~42% and accelerator energy by ~31%.
type Fig5Result struct {
	Rows []Fig5Row
	// BestConverterReduction is 1 - min(converter)/baseline(converter).
	BestConverterReduction float64
	// BestAcceleratorReduction is 1 - min(accel)/baseline(accel).
	BestAcceleratorReduction float64
}

// Fig5 runs the architecture exploration on the aggressive scaling.
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	net := workload.ResNet18(1)
	out := &Fig5Result{}
	var baseAccel, baseConv float64
	bestAccel, bestConv := -1.0, -1.0
	for _, wr := range []bool{false, true} {
		for _, orLanes := range []int{1, 3, 5} {
			for _, outLanes := range []int{3, 9, 15} {
				c := albireo.Default(albireo.Aggressive)
				c.OutputLanes = outLanes
				c.ORLanes = orLanes
				c.WeightReuse = wr
				res, err := albireo.EvalNetwork(c, net, albireo.NetOptions{
					Batch:  1,
					Mapper: cfg.mapperOptions(mapper.MinEnergy),
				})
				if err != nil {
					return nil, fmt.Errorf("exp: fig5 wr=%v or=%d ir=%d: %w", wr, c.OR(), c.IR(), err)
				}
				macs := float64(res.Total.MACs)
				bins := map[albireo.RoleBin]float64{}
				for bin, pj := range albireo.RoleBreakdown(&res.Total) {
					if bin == albireo.RoleDRAM {
						continue
					}
					bins[bin] = pj / macs
				}
				row := Fig5Row{
					WeightReuse:       wr,
					OR:                c.OR(),
					IR:                c.IR(),
					AccelPJPerMAC:     albireo.AcceleratorPJ(&res.Total) / macs,
					ConverterPJPerMAC: albireo.ConverterPJ(&res.Total) / macs,
					Bins:              bins,
					Baseline:          !wr && orLanes == 1 && outLanes == 3,
				}
				out.Rows = append(out.Rows, row)
				if row.Baseline {
					baseAccel, baseConv = row.AccelPJPerMAC, row.ConverterPJPerMAC
				}
				if bestAccel < 0 || row.AccelPJPerMAC < bestAccel {
					bestAccel = row.AccelPJPerMAC
				}
				if bestConv < 0 || row.ConverterPJPerMAC < bestConv {
					bestConv = row.ConverterPJPerMAC
				}
			}
		}
	}
	if baseAccel > 0 {
		out.BestAcceleratorReduction = 1 - bestAccel/baseAccel
	}
	if baseConv > 0 {
		out.BestConverterReduction = 1 - bestConv/baseConv
	}
	return out, nil
}

// Table renders the rows.
func (r *Fig5Result) Table() *report.Table {
	cols := []string{"Group", "OR", "IR", "Accel pJ/MAC", "Converter pJ/MAC"}
	for _, b := range albireo.RoleBins() {
		if b == albireo.RoleDRAM {
			continue
		}
		cols = append(cols, string(b))
	}
	cols = append(cols, "Note")
	t := report.NewTable(cols...)
	for _, row := range r.Rows {
		group := "Original"
		if row.WeightReuse {
			group = "More Weight Reuse"
		}
		vals := []interface{}{group, row.OR, row.IR,
			fmt.Sprintf("%.4f", row.AccelPJPerMAC),
			fmt.Sprintf("%.4f", row.ConverterPJPerMAC)}
		for _, b := range albireo.RoleBins() {
			if b == albireo.RoleDRAM {
				continue
			}
			vals = append(vals, fmt.Sprintf("%.4f", row.Bins[b]))
		}
		note := ""
		if row.Baseline {
			note = "Albireo paper config"
		}
		vals = append(vals, note)
		t.Row(vals...)
	}
	return t
}

// Render writes the figure as text.
func (r *Fig5Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Fig. 5 — Architecture exploration: ResNet18 accelerator energy vs reuse (aggressive scaling)")
	if err := r.Table().Render(w); err != nil {
		return err
	}
	maxV := 0.0
	for _, row := range r.Rows {
		if row.AccelPJPerMAC > maxV {
			maxV = row.AccelPJPerMAC
		}
	}
	for _, row := range r.Rows {
		group := "orig"
		if row.WeightReuse {
			group = "wr  "
		}
		fmt.Fprintf(w, "%s OR=%-2d IR=%-2d |%s %.4f\n", group, row.OR, row.IR,
			report.Bar(row.AccelPJPerMAC, maxV, 48), row.AccelPJPerMAC)
	}
	fmt.Fprintf(w, "Best converter-energy reduction: %s (paper: 42%%)\n", report.Pct(r.BestConverterReduction))
	fmt.Fprintf(w, "Best accelerator-energy reduction: %s (paper: 31%%)\n", report.Pct(r.BestAcceleratorReduction))
	return nil
}
