package exp

import (
	"fmt"
	"io"

	"photoloop/internal/albireo"
	"photoloop/internal/report"
	"photoloop/internal/sweep"
)

// Fig5Row is one architecture variant of the reuse exploration.
type Fig5Row struct {
	// WeightReuse marks the "more weight reuse" topology group.
	WeightReuse bool
	// OR and IR are the paper's reuse factors (output-reusing AE
	// components; input-reusing AO components).
	OR, IR int
	// AccelPJPerMAC is accelerator+laser energy per MAC (no DRAM — the
	// figure explores the accelerator).
	AccelPJPerMAC float64
	// ConverterPJPerMAC sums all cross-domain conversion energy.
	ConverterPJPerMAC float64
	// Bins is the role breakdown (pJ/MAC, accelerator scope).
	Bins map[albireo.RoleBin]float64
	// Baseline marks the original Albireo configuration.
	Baseline bool
}

// Fig5Result reproduces Fig. 5: ResNet18 energy across reuse-scaled
// variants of the aggressively-scaled Albireo. The paper's finding:
// increasing analog/photonic-domain reuse cuts data-converter energy by
// ~42% and accelerator energy by ~31%.
type Fig5Result struct {
	Rows []Fig5Row
	// BestConverterReduction is 1 - min(converter)/baseline(converter).
	BestConverterReduction float64
	// BestAcceleratorReduction is 1 - min(accel)/baseline(accel).
	BestAcceleratorReduction float64
}

// Fig5SweepSpec is the declarative form of the Fig. 5 exploration: the
// same grid the paper walks, as a sweep document. `photoloop sweep` can run
// it from JSON, and Fig5 runs it through the same engine — one code path
// from figure reproduction to serving.
func Fig5SweepSpec(cfg Config) sweep.Spec {
	cfg = cfg.withDefaults()
	return sweep.Spec{
		Name: "fig5",
		Base: sweep.Base{Albireo: &sweep.AlbireoBase{Scaling: "aggressive"}},
		Axes: []sweep.Axis{
			{Param: "weight_reuse", Values: []any{false, true}},
			{Param: "or_lanes", Values: []any{1, 3, 5}},
			{Param: "output_lanes", Values: []any{3, 9, 15}},
		},
		Workloads:     []sweep.Workload{{Network: "resnet18", Batch: 1}},
		Objectives:    []string{"energy"},
		Budget:        cfg.Budget,
		Seed:          cfg.Seed,
		SearchWorkers: cfg.Workers,
	}
}

// Fig5 runs the architecture exploration on the aggressive scaling. The
// grid is evaluated concurrently by the sweep subsystem; results are
// bit-identical to evaluating each variant serially (guarded by
// TestFig5MatchesDirectExploration).
func Fig5(cfg Config) (*Fig5Result, error) {
	res, err := sweep.Run(Fig5SweepSpec(cfg), sweep.Options{})
	if err != nil {
		return nil, fmt.Errorf("exp: fig5: %w", err)
	}
	out := &Fig5Result{}
	var baseAccel, baseConv float64
	bestAccel, bestConv := -1.0, -1.0
	for i := range res.Points {
		pt := &res.Points[i]
		wr := pt.Params["weight_reuse"].(bool)
		orLanes := pt.Params["or_lanes"].(int)
		outLanes := pt.Params["output_lanes"].(int)
		// Recover the point's reuse factors through Config so the
		// lane-to-factor coupling stays defined in one place.
		c := albireo.Default(albireo.Aggressive)
		c.ORLanes, c.OutputLanes, c.WeightReuse = orLanes, outLanes, wr
		macs := float64(pt.Total.MACs)
		bins := map[albireo.RoleBin]float64{}
		for bin, pj := range albireo.RoleBreakdown(pt.Total) {
			if bin == albireo.RoleDRAM {
				continue
			}
			bins[bin] = pj / macs
		}
		row := Fig5Row{
			WeightReuse:       wr,
			OR:                c.OR(),
			IR:                c.IR(),
			AccelPJPerMAC:     albireo.AcceleratorPJ(pt.Total) / macs,
			ConverterPJPerMAC: albireo.ConverterPJ(pt.Total) / macs,
			Bins:              bins,
			Baseline:          !wr && orLanes == 1 && outLanes == 3,
		}
		out.Rows = append(out.Rows, row)
		if row.Baseline {
			baseAccel, baseConv = row.AccelPJPerMAC, row.ConverterPJPerMAC
		}
		if bestAccel < 0 || row.AccelPJPerMAC < bestAccel {
			bestAccel = row.AccelPJPerMAC
		}
		if bestConv < 0 || row.ConverterPJPerMAC < bestConv {
			bestConv = row.ConverterPJPerMAC
		}
	}
	if baseAccel > 0 {
		out.BestAcceleratorReduction = 1 - bestAccel/baseAccel
	}
	if baseConv > 0 {
		out.BestConverterReduction = 1 - bestConv/baseConv
	}
	return out, nil
}

// Table renders the rows.
func (r *Fig5Result) Table() *report.Table {
	cols := []string{"Group", "OR", "IR", "Accel pJ/MAC", "Converter pJ/MAC"}
	for _, b := range albireo.RoleBins() {
		if b == albireo.RoleDRAM {
			continue
		}
		cols = append(cols, string(b))
	}
	cols = append(cols, "Note")
	t := report.NewTable(cols...)
	for _, row := range r.Rows {
		group := "Original"
		if row.WeightReuse {
			group = "More Weight Reuse"
		}
		vals := []interface{}{group, row.OR, row.IR,
			fmt.Sprintf("%.4f", row.AccelPJPerMAC),
			fmt.Sprintf("%.4f", row.ConverterPJPerMAC)}
		for _, b := range albireo.RoleBins() {
			if b == albireo.RoleDRAM {
				continue
			}
			vals = append(vals, fmt.Sprintf("%.4f", row.Bins[b]))
		}
		note := ""
		if row.Baseline {
			note = "Albireo paper config"
		}
		vals = append(vals, note)
		t.Row(vals...)
	}
	return t
}

// Render writes the figure as text.
func (r *Fig5Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Fig. 5 — Architecture exploration: ResNet18 accelerator energy vs reuse (aggressive scaling)")
	if err := r.Table().Render(w); err != nil {
		return err
	}
	maxV := 0.0
	for _, row := range r.Rows {
		if row.AccelPJPerMAC > maxV {
			maxV = row.AccelPJPerMAC
		}
	}
	for _, row := range r.Rows {
		group := "orig"
		if row.WeightReuse {
			group = "wr  "
		}
		fmt.Fprintf(w, "%s OR=%-2d IR=%-2d |%s %.4f\n", group, row.OR, row.IR,
			report.Bar(row.AccelPJPerMAC, maxV, 48), row.AccelPJPerMAC)
	}
	fmt.Fprintf(w, "Best converter-energy reduction: %s (paper: 42%%)\n", report.Pct(r.BestConverterReduction))
	fmt.Fprintf(w, "Best accelerator-energy reduction: %s (paper: 31%%)\n", report.Pct(r.BestAcceleratorReduction))
	return nil
}
