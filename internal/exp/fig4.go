package exp

import (
	"fmt"
	"io"

	"photoloop/internal/albireo"
	"photoloop/internal/report"
	"photoloop/internal/sweep"
)

// Fig4Batch is the batch size used for the batched configurations.
const Fig4Batch = 8

// Fig4Row is one bar of the memory exploration.
type Fig4Row struct {
	Scaling albireo.Scaling
	Batched bool
	Fused   bool
	// PJPerMAC is absolute system energy per MAC.
	PJPerMAC float64
	// Normalized is relative to the non-batched, not-fused bar of the
	// same scaling (the figure normalizes per scaling).
	Normalized float64
	// Bins is the role breakdown in pJ/MAC.
	Bins map[albireo.RoleBin]float64
	// DRAMShare is the DRAM fraction of total energy.
	DRAMShare float64
	// PaperConfig marks the configuration matching the original Albireo
	// paper's assumptions (non-batched, not fused).
	PaperConfig bool
}

// Fig4Result reproduces Fig. 4: full-system (accelerator + DRAM) ResNet18
// energy under batching and layer fusion, for conservative and aggressive
// scaling. The paper's findings: DRAM is a small fraction of the
// conservative system but ~75% of the aggressive one, and batching+fusion
// recover ~3x on the aggressive system.
type Fig4Result struct {
	Rows []Fig4Row
	// AggressiveBaselineDRAMShare is the DRAM share of the aggressive
	// non-batched, not-fused system (paper: 0.75).
	AggressiveBaselineDRAMShare float64
	// ConservativeBaselineDRAMShare (paper: small).
	ConservativeBaselineDRAMShare float64
	// AggressiveCombinedReduction is 1 - normalized energy of the
	// batched+fused aggressive system (paper: 0.67, i.e. 3x).
	AggressiveCombinedReduction float64
}

// Fig4SweepSpec is the declarative form of the Fig. 4 memory exploration:
// per scaling, the four batching × fusion configurations of ResNet18.
func Fig4SweepSpec(cfg Config) sweep.Spec {
	cfg = cfg.withDefaults()
	scalings := make([]any, 0, len(fig4Scalings()))
	for _, s := range fig4Scalings() {
		scalings = append(scalings, s.String())
	}
	return sweep.Spec{
		Name: "fig4",
		Base: sweep.Base{Albireo: &sweep.AlbireoBase{}},
		Axes: []sweep.Axis{{Param: "scaling", Values: scalings}},
		Workloads: []sweep.Workload{
			{Network: "resnet18", Batch: 1},
			{Network: "resnet18", Batch: Fig4Batch},
			{Network: "resnet18", Batch: 1, Fused: true},
			{Network: "resnet18", Batch: Fig4Batch, Fused: true},
		},
		Objectives:    []string{"energy"},
		Budget:        cfg.Budget,
		Seed:          cfg.Seed,
		SearchWorkers: cfg.Workers,
	}
}

// Fig4 runs the memory exploration through the sweep subsystem.
func Fig4(cfg Config) (*Fig4Result, error) {
	res, err := sweep.Run(Fig4SweepSpec(cfg), sweep.Options{})
	if err != nil {
		return nil, fmt.Errorf("exp: fig4: %w", err)
	}
	out := &Fig4Result{}
	var base float64
	for i := range res.Points {
		pt := &res.Points[i]
		s, err := albireo.ParseScaling(pt.Params["scaling"].(string))
		if err != nil {
			return nil, fmt.Errorf("exp: fig4: %w", err)
		}
		batched := pt.Batch == Fig4Batch
		macs := float64(pt.Total.MACs)
		breakdown := albireo.RoleBreakdown(pt.Total)
		bins := map[albireo.RoleBin]float64{}
		for bin, pj := range breakdown {
			bins[bin] = pj / macs
		}
		dramShare := 0.0
		if pt.Total.TotalPJ > 0 {
			dramShare = breakdown[albireo.RoleDRAM] / pt.Total.TotalPJ
		}
		row := Fig4Row{
			Scaling: s, Batched: batched, Fused: pt.Fused,
			PJPerMAC:    pt.Total.PJPerMAC(),
			Bins:        bins,
			DRAMShare:   dramShare,
			PaperConfig: !batched && !pt.Fused,
		}
		// The sweep walks workloads in order per scaling, so the first
		// point of each scaling is the non-batched, not-fused baseline
		// the figure normalizes against.
		if row.PaperConfig {
			base = row.PJPerMAC
		}
		row.Normalized = row.PJPerMAC / base
		out.Rows = append(out.Rows, row)

		if row.PaperConfig {
			switch s {
			case albireo.Aggressive:
				out.AggressiveBaselineDRAMShare = row.DRAMShare
			case albireo.Conservative:
				out.ConservativeBaselineDRAMShare = row.DRAMShare
			}
		}
		if s == albireo.Aggressive && batched && pt.Fused {
			out.AggressiveCombinedReduction = 1 - row.Normalized
		}
	}
	return out, nil
}

// Table renders the rows.
func (r *Fig4Result) Table() *report.Table {
	cols := []string{"Scaling", "Batched", "Fused", "pJ/MAC", "Normalized", "DRAM share"}
	for _, b := range albireo.RoleBins() {
		cols = append(cols, string(b))
	}
	cols = append(cols, "Note")
	t := report.NewTable(cols...)
	for _, row := range r.Rows {
		vals := []interface{}{row.Scaling.String(), yn(row.Batched), yn(row.Fused),
			fmt.Sprintf("%.3f", row.PJPerMAC),
			fmt.Sprintf("%.3f", row.Normalized),
			report.Pct(row.DRAMShare)}
		for _, b := range albireo.RoleBins() {
			vals = append(vals, fmt.Sprintf("%.3f", row.Bins[b]))
		}
		note := ""
		if row.PaperConfig {
			note = "Albireo paper config"
		}
		vals = append(vals, note)
		t.Row(vals...)
	}
	return t
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Render writes the figure as text.
func (r *Fig4Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Fig. 4 — Memory exploration: ResNet18 system energy, normalized per scaling")
	if err := r.Table().Render(w); err != nil {
		return err
	}
	for _, row := range r.Rows {
		label := fmt.Sprintf("%-12s batch=%v fused=%v", row.Scaling, row.Batched, row.Fused)
		fmt.Fprintf(w, "%s |%s %.3f\n", label, report.Bar(row.Normalized, 1.2, 48), row.Normalized)
	}
	fmt.Fprintf(w, "Aggressive baseline DRAM share: %s (paper: ~75%%)\n", report.Pct(r.AggressiveBaselineDRAMShare))
	fmt.Fprintf(w, "Conservative baseline DRAM share: %s (paper: small)\n", report.Pct(r.ConservativeBaselineDRAMShare))
	fmt.Fprintf(w, "Aggressive batching+fusion reduction: %s (paper: 67%%, i.e. 3x)\n", report.Pct(r.AggressiveCombinedReduction))
	return nil
}
