package exp

import (
	"fmt"
	"io"

	"photoloop/internal/albireo"
	"photoloop/internal/mapper"
	"photoloop/internal/report"
	"photoloop/internal/workload"
)

// Fig4Batch is the batch size used for the batched configurations.
const Fig4Batch = 8

// Fig4Row is one bar of the memory exploration.
type Fig4Row struct {
	Scaling albireo.Scaling
	Batched bool
	Fused   bool
	// PJPerMAC is absolute system energy per MAC.
	PJPerMAC float64
	// Normalized is relative to the non-batched, not-fused bar of the
	// same scaling (the figure normalizes per scaling).
	Normalized float64
	// Bins is the role breakdown in pJ/MAC.
	Bins map[albireo.RoleBin]float64
	// DRAMShare is the DRAM fraction of total energy.
	DRAMShare float64
	// PaperConfig marks the configuration matching the original Albireo
	// paper's assumptions (non-batched, not fused).
	PaperConfig bool
}

// Fig4Result reproduces Fig. 4: full-system (accelerator + DRAM) ResNet18
// energy under batching and layer fusion, for conservative and aggressive
// scaling. The paper's findings: DRAM is a small fraction of the
// conservative system but ~75% of the aggressive one, and batching+fusion
// recover ~3x on the aggressive system.
type Fig4Result struct {
	Rows []Fig4Row
	// AggressiveBaselineDRAMShare is the DRAM share of the aggressive
	// non-batched, not-fused system (paper: 0.75).
	AggressiveBaselineDRAMShare float64
	// ConservativeBaselineDRAMShare (paper: small).
	ConservativeBaselineDRAMShare float64
	// AggressiveCombinedReduction is 1 - normalized energy of the
	// batched+fused aggressive system (paper: 0.67, i.e. 3x).
	AggressiveCombinedReduction float64
}

// Fig4 runs the memory exploration.
func Fig4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	net := workload.ResNet18(1)
	out := &Fig4Result{}
	for _, s := range fig4Scalings() {
		var base float64
		for _, bf := range []struct{ batched, fused bool }{
			{false, false}, {true, false}, {false, true}, {true, true},
		} {
			batch := 1
			if bf.batched {
				batch = Fig4Batch
			}
			res, err := albireo.EvalNetwork(albireo.Default(s), net, albireo.NetOptions{
				Batch:  batch,
				Fused:  bf.fused,
				Mapper: cfg.mapperOptions(mapper.MinEnergy),
			})
			if err != nil {
				return nil, fmt.Errorf("exp: fig4 %s batched=%v fused=%v: %w", s, bf.batched, bf.fused, err)
			}
			macs := float64(res.Total.MACs)
			bins := map[albireo.RoleBin]float64{}
			for bin, pj := range albireo.RoleBreakdown(&res.Total) {
				bins[bin] = pj / macs
			}
			row := Fig4Row{
				Scaling: s, Batched: bf.batched, Fused: bf.fused,
				PJPerMAC:    res.PJPerMAC(),
				Bins:        bins,
				DRAMShare:   res.DRAMShare(),
				PaperConfig: !bf.batched && !bf.fused,
			}
			if base == 0 {
				base = row.PJPerMAC
			}
			row.Normalized = row.PJPerMAC / base
			out.Rows = append(out.Rows, row)

			if row.PaperConfig {
				switch s {
				case albireo.Aggressive:
					out.AggressiveBaselineDRAMShare = row.DRAMShare
				case albireo.Conservative:
					out.ConservativeBaselineDRAMShare = row.DRAMShare
				}
			}
			if s == albireo.Aggressive && bf.batched && bf.fused {
				out.AggressiveCombinedReduction = 1 - row.Normalized
			}
		}
	}
	return out, nil
}

// Table renders the rows.
func (r *Fig4Result) Table() *report.Table {
	cols := []string{"Scaling", "Batched", "Fused", "pJ/MAC", "Normalized", "DRAM share"}
	for _, b := range albireo.RoleBins() {
		cols = append(cols, string(b))
	}
	cols = append(cols, "Note")
	t := report.NewTable(cols...)
	for _, row := range r.Rows {
		vals := []interface{}{row.Scaling.String(), yn(row.Batched), yn(row.Fused),
			fmt.Sprintf("%.3f", row.PJPerMAC),
			fmt.Sprintf("%.3f", row.Normalized),
			report.Pct(row.DRAMShare)}
		for _, b := range albireo.RoleBins() {
			vals = append(vals, fmt.Sprintf("%.3f", row.Bins[b]))
		}
		note := ""
		if row.PaperConfig {
			note = "Albireo paper config"
		}
		vals = append(vals, note)
		t.Row(vals...)
	}
	return t
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Render writes the figure as text.
func (r *Fig4Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Fig. 4 — Memory exploration: ResNet18 system energy, normalized per scaling")
	if err := r.Table().Render(w); err != nil {
		return err
	}
	for _, row := range r.Rows {
		label := fmt.Sprintf("%-12s batch=%v fused=%v", row.Scaling, row.Batched, row.Fused)
		fmt.Fprintf(w, "%s |%s %.3f\n", label, report.Bar(row.Normalized, 1.2, 48), row.Normalized)
	}
	fmt.Fprintf(w, "Aggressive baseline DRAM share: %s (paper: ~75%%)\n", report.Pct(r.AggressiveBaselineDRAMShare))
	fmt.Fprintf(w, "Conservative baseline DRAM share: %s (paper: small)\n", report.Pct(r.ConservativeBaselineDRAMShare))
	fmt.Fprintf(w, "Aggressive batching+fusion reduction: %s (paper: 67%%, i.e. 3x)\n", report.Pct(r.AggressiveCombinedReduction))
	return nil
}
