package exp

import (
	"fmt"
	"io"

	"photoloop/internal/albireo"
	"photoloop/internal/mapper"
	"photoloop/internal/model"
	"photoloop/internal/report"
	"photoloop/internal/workload"
)

// AblationRow quantifies one modeling feature or design choice by an
// energy (or quality) ratio between a variant and the reference.
type AblationRow struct {
	// Name identifies the ablation.
	Name string
	// Reference and Variant are the compared quantities (pJ/MAC unless
	// noted in Metric).
	Reference, Variant float64
	// Ratio is Variant / Reference.
	Ratio float64
	// Metric names what is measured.
	Metric string
	// Note explains the finding.
	Note string
}

// AblationResult collects the design-choice ablations DESIGN.md calls out:
// each row isolates one mechanism of the model (loop permutations,
// window-overlap sharing, zero-retention streaming, canonical seeding) and
// measures how much it matters on the Albireo system.
type AblationResult struct {
	Rows []AblationRow
}

// Ablations runs the ablation suite on the aggressive Albireo and a
// mid-network ResNet18 layer.
func Ablations(cfg Config) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	out := &AblationResult{}
	layer := workload.NewConv("layer2.2.conv1", 1, 128, 128, 28, 28, 3, 3, 1, 1)

	// --- 1. Loop permutation: best vs reduction-outside-output order. ---
	{
		a, err := albireo.Default(albireo.Aggressive).Build()
		if err != nil {
			return nil, err
		}
		m, err := albireo.CanonicalBest(a, &layer)
		if err != nil {
			return nil, err
		}
		ref, err := model.Evaluate(a, &layer, m, model.Options{})
		if err != nil {
			return nil, err
		}
		// Worst case: tile K and C at DRAM with the reduction loop (C)
		// outside the output loop (K) — every K-tile of partial sums is
		// evicted to DRAM before its reduction finishes and re-merged
		// there C times.
		bad := m.Clone()
		_, glbIdx, err := a.LevelByName("GlobalBuffer")
		if err != nil {
			return nil, err
		}
		badPerm := []workload.Dim{
			workload.DimC, workload.DimK, workload.DimN,
			workload.DimP, workload.DimQ, workload.DimR, workload.DimS,
		}
		bad.Levels[0].Perm = badPerm
		bad.Levels[glbIdx].Perm = append([]workload.Dim(nil), badPerm...)
		cGLB := bad.Levels[glbIdx].Temporal[workload.DimC]
		kGLB := bad.Levels[glbIdx].Temporal[workload.DimK]
		if cGLB >= 4 && kGLB >= 4 {
			bad.Levels[glbIdx].Temporal[workload.DimC] = workload.CeilDiv(cGLB, 4)
			bad.Levels[0].Temporal[workload.DimC] = 4
			bad.Levels[glbIdx].Temporal[workload.DimK] = workload.CeilDiv(kGLB, 4)
			bad.Levels[0].Temporal[workload.DimK] = 4
		}
		varRes, err := model.Evaluate(a, &layer, bad, model.Options{})
		if err != nil {
			return nil, err
		}
		out.add("loop permutation (psum thrash)", ref.PJPerMAC(), varRes.PJPerMAC(), "system pJ/MAC",
			"reduction loops outside output loops spill partial sums to DRAM")
	}

	// --- 2. Window-overlap sharing: Albireo's star-coupler delivery. ---
	{
		ref, err := evalAlbireoLayer(albireo.Default(albireo.Aggressive), &layer, cfg, false)
		if err != nil {
			return nil, err
		}
		varRes, err := evalAlbireoLayer(albireo.Default(albireo.Aggressive), &layer, cfg, true)
		if err != nil {
			return nil, err
		}
		refIn := albireo.RoleBreakdown(ref)[albireo.RoleInputConv] / float64(ref.MACs)
		varIn := albireo.RoleBreakdown(varRes)[albireo.RoleInputConv] / float64(varRes.MACs)
		out.add("window-overlap input sharing", refIn, varIn, "input-conversion pJ/MAC",
			"without star-coupler overlap delivery every window tap is modulated separately")
	}

	// --- 3. Streaming (light is not storage). ---
	{
		refRes, err := evalAlbireoLayer(albireo.Default(albireo.Aggressive), &layer, cfg, false)
		if err != nil {
			return nil, err
		}
		// Hypothetical retaining optical buffer: clear the Streaming flag.
		a, err := albireo.Default(albireo.Aggressive).Build()
		if err != nil {
			return nil, err
		}
		lvl, _, err := a.LevelByName("ModulatedInput")
		if err != nil {
			return nil, err
		}
		lvl.Streaming = false
		lvl.CapacityBits = 1 << 20 // pretend light could be buffered
		best, err := mapper.Search(a, &layer, mapper.Options{
			Budget: cfg.Budget, Seed: cfg.Seed, Workers: cfg.Workers,
			Seeds: albireo.CanonicalMappings(a, &layer),
		})
		if err != nil {
			return nil, err
		}
		refIn := albireo.RoleBreakdown(refRes)[albireo.RoleInputConv] / float64(refRes.MACs)
		varIn := albireo.RoleBreakdown(best.Result)[albireo.RoleInputConv] / float64(best.Result.MACs)
		out.add("zero-retention optical streaming", refIn, varIn, "input-conversion pJ/MAC",
			"if modulated light could be stored and reused, input conversions would collapse — it cannot")
	}

	// --- 4. Canonical seeding of the mapper. ---
	{
		a, err := albireo.Default(albireo.Aggressive).Build()
		if err != nil {
			return nil, err
		}
		seeded, err := mapper.Search(a, &layer, mapper.Options{
			Budget: cfg.Budget, Seed: cfg.Seed, Workers: cfg.Workers,
			Seeds: albireo.CanonicalMappings(a, &layer),
		})
		if err != nil {
			return nil, err
		}
		unseeded, err := mapper.Search(a, &layer, mapper.Options{
			Budget: cfg.Budget, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		out.add("canonical mapper seeding", seeded.Result.PJPerMAC(), unseeded.Result.PJPerMAC(), "system pJ/MAC",
			"random search alone, at the same budget, versus starting from the architect-intended schedules")
	}
	return out, nil
}

func (r *AblationResult) add(name string, ref, variant float64, metric, note string) {
	row := AblationRow{Name: name, Reference: ref, Variant: variant, Metric: metric, Note: note}
	if ref > 0 {
		row.Ratio = variant / ref
	}
	r.Rows = append(r.Rows, row)
}

// evalAlbireoLayer maps one layer on a (possibly modified) Albireo.
func evalAlbireoLayer(c albireo.Config, l *workload.Layer, cfg Config, disableSharing bool) (*model.Result, error) {
	a, err := c.Build()
	if err != nil {
		return nil, err
	}
	if disableSharing {
		for i := 0; i < a.NumLevels(); i++ {
			a.Level(i).InputOverlapSharing = false
		}
	}
	best, err := mapper.Search(a, l, mapper.Options{
		Budget: cfg.Budget, Seed: cfg.Seed, Workers: cfg.Workers,
		Seeds: albireo.CanonicalMappings(a, l),
	})
	if err != nil {
		return nil, err
	}
	return best.Result, nil
}

// Table renders the rows.
func (r *AblationResult) Table() *report.Table {
	t := report.NewTable("Ablation", "Reference", "Variant", "Ratio", "Metric")
	for _, row := range r.Rows {
		t.Row(row.Name,
			fmt.Sprintf("%.4f", row.Reference),
			fmt.Sprintf("%.4f", row.Variant),
			fmt.Sprintf("%.2fx", row.Ratio),
			row.Metric)
	}
	return t
}

// Render writes the ablation study as text.
func (r *AblationResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Ablations — how much each modeling mechanism matters (aggressive Albireo, ResNet18 layer2.2.conv1)")
	if err := r.Table().Render(w); err != nil {
		return err
	}
	for _, row := range r.Rows {
		fmt.Fprintf(w, "- %s: %s\n", row.Name, row.Note)
	}
	return nil
}
