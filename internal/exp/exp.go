// Package exp contains one harness per figure of the paper's evaluation
// section. Each harness returns structured rows (for tests and benchmarks)
// and renders the textual equivalent of the figure (for the CLI and
// EXPERIMENTS.md).
package exp

import (
	"photoloop/internal/albireo"
	"photoloop/internal/mapper"
	"photoloop/internal/workload"
)

// Config tunes the experiment harnesses. The zero value gets defaults
// suitable for full-fidelity runs; tests dial Budget down.
type Config struct {
	// Budget is the mapper evaluation budget per layer (default 800).
	Budget int
	// Seed fixes the mapper's randomness (default 1).
	Seed int64
	// Workers caps mapper parallelism (default: automatic).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 800
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) mapperOptions(obj mapper.Objective) mapper.Options {
	return mapper.Options{
		Objective: obj,
		Budget:    c.Budget,
		Seed:      c.Seed,
		Workers:   c.Workers,
	}
}

// BestCaseLayer returns the canonical best-case convolution used for the
// Fig. 2 energy validation: an unstrided 3x3 layer that fully utilizes the
// default Albireo (K=96=3x32 output lanes x temporal, C=64=8 clusters x 8,
// 32x32 output pixels = one full pixel-vector pass per row) and whose
// working set fits the global buffer, so the canonical mapping exercises
// maximum reuse in every domain.
func BestCaseLayer() workload.Layer {
	return workload.NewConv("bestcase", 1, 96, 64, 32, 32, 3, 3, 1, 1)
}

// scalings evaluated by Fig. 2.
func fig2Scalings() []albireo.Scaling { return albireo.AllScalings() }

// fig4Scalings evaluated by Fig. 4.
func fig4Scalings() []albireo.Scaling {
	return []albireo.Scaling{albireo.Conservative, albireo.Aggressive}
}
