package exp

import "testing"

func TestAblations(t *testing.T) {
	r, err := Ablations(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("got %d ablation rows", len(r.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Name] = row
		if row.Reference <= 0 || row.Variant <= 0 {
			t.Errorf("%s: non-positive values %g %g", row.Name, row.Reference, row.Variant)
		}
	}
	// Bad permutations must cost real energy (psum spills).
	if row := byName["loop permutation (psum thrash)"]; row.Ratio < 1.05 {
		t.Errorf("psum thrash ratio %.2f, want > 1.05", row.Ratio)
	}
	// Removing overlap sharing must raise input-conversion energy
	// substantially (the ~3x window-column factor).
	if row := byName["window-overlap input sharing"]; row.Ratio < 1.5 {
		t.Errorf("overlap sharing ablation ratio %.2f, want > 1.5", row.Ratio)
	}
	// A hypothetical retaining optical buffer would cut input
	// conversions hard — streaming is what keeps them expensive.
	if row := byName["zero-retention optical streaming"]; row.Ratio > 0.7 {
		t.Errorf("streaming ablation ratio %.2f, want < 0.7", row.Ratio)
	}
	// Canonical seeds must not hurt (unseeded >= seeded).
	if row := byName["canonical mapper seeding"]; row.Ratio < 0.999 {
		t.Errorf("seeding ablation ratio %.2f, want >= 1", row.Ratio)
	}
}
