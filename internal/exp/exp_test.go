package exp

import (
	"bytes"
	"strings"
	"testing"

	"photoloop/internal/albireo"
	"photoloop/internal/mapper"
	"photoloop/internal/workload"
)

// testCfg keeps mapper budgets small so the full figure suite runs in
// seconds; the claims bands are wide enough to hold at these budgets (the
// canonical seeds do most of the work).
var testCfg = Config{Budget: 300, Seed: 1}

func TestFig2ReproducesReportedBreakdown(t *testing.T) {
	r, err := Fig2(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 { // 3 scalings x (model, reported)
		t.Fatalf("got %d rows", len(r.Rows))
	}
	claims := albireo.Claims()
	if r.AvgAbsErrPct > 100*claims.Fig2MaxAvgError {
		t.Errorf("avg energy error %.2f%% exceeds band %.0f%%", r.AvgAbsErrPct, 100*claims.Fig2MaxAvgError)
	}
	if r.Utilization < 0.999 {
		t.Errorf("best-case layer utilization %.3f, want 1.0", r.Utilization)
	}
	// Each model bar must be within 20% of its reported counterpart per
	// bin (the paper's bars visually coincide).
	for i := 0; i+1 < len(r.Rows); i += 2 {
		model, rep := r.Rows[i], r.Rows[i+1]
		if model.Kind != "Model" || rep.Kind != "Reported" {
			t.Fatalf("row order wrong: %s %s", model.Kind, rep.Kind)
		}
		for bin, repV := range rep.Bins {
			mv := model.Bins[bin]
			if repV > 0 && (mv < 0.8*repV || mv > 1.25*repV) {
				t.Errorf("%s %s: model %.3f vs reported %.3f", model.Scaling, bin, mv, repV)
			}
		}
	}
	// Totals decrease with scaling aggressiveness.
	if !(r.Rows[0].Total > r.Rows[2].Total && r.Rows[2].Total > r.Rows[4].Total) {
		t.Error("model totals not monotone across scalings")
	}
}

func TestFig3CapturesUnderutilization(t *testing.T) {
	r, err := Fig3(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	claims := albireo.Claims()
	byName := map[string]Fig3Row{}
	for _, row := range r.Rows {
		byName[row.Network] = row
		// Modeled must sit below reported (underutilization can only
		// reduce throughput) and above zero.
		if row.Modeled <= 0 || row.Modeled > row.Reported {
			t.Errorf("%s: modeled %.0f vs reported %.0f", row.Network, row.Modeled, row.Reported)
		}
		if row.Ideal != 6912 {
			t.Errorf("%s: ideal = %g, want 6912", row.Network, row.Ideal)
		}
	}
	vgg, alex := byName["vgg16"], byName["alexnet"]
	if vgg.Modeled/vgg.Ideal < claims.Fig3VGGMinUtil {
		t.Errorf("VGG modeled/ideal %.2f below band %.2f", vgg.Modeled/vgg.Ideal, claims.Fig3VGGMinUtil)
	}
	if alex.Modeled/alex.Ideal > claims.Fig3AlexMaxUtil {
		t.Errorf("AlexNet modeled/ideal %.2f above band %.2f", alex.Modeled/alex.Ideal, claims.Fig3AlexMaxUtil)
	}
	// AlexNet must be hit harder than VGG16 (the paper's point).
	if alex.Modeled/alex.Ideal >= vgg.Modeled/vgg.Ideal {
		t.Error("AlexNet should be degraded more than VGG16")
	}
	// The strided first AlexNet layer must show spatial underutilization.
	for _, lt := range alex.Layers {
		if lt.Layer == "conv1" && lt.Utilization > 0.9 {
			t.Errorf("AlexNet conv1 utilization %.2f, expected < 0.9 (11x11 stride-4)", lt.Utilization)
		}
	}
}

func TestFig4FullSystem(t *testing.T) {
	r, err := Fig4(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	claims := albireo.Claims()
	if r.AggressiveBaselineDRAMShare < claims.Fig4AggressiveDRAMShareLo ||
		r.AggressiveBaselineDRAMShare > claims.Fig4AggressiveDRAMShareHi {
		t.Errorf("aggressive DRAM share %.2f outside band", r.AggressiveBaselineDRAMShare)
	}
	if r.ConservativeBaselineDRAMShare > claims.Fig4ConservativeDRAMShareHi {
		t.Errorf("conservative DRAM share %.2f above band", r.ConservativeBaselineDRAMShare)
	}
	if r.ConservativeBaselineDRAMShare >= r.AggressiveBaselineDRAMShare {
		t.Error("DRAM share should grow with scaling aggressiveness")
	}
	if r.AggressiveCombinedReduction < claims.Fig4CombinedReductionLo {
		t.Errorf("combined reduction %.2f below band %.2f", r.AggressiveCombinedReduction, claims.Fig4CombinedReductionLo)
	}
	for _, row := range r.Rows {
		if row.PaperConfig && row.Normalized != 1.0 {
			t.Errorf("baseline row should normalize to 1.0, got %g", row.Normalized)
		}
		if !row.PaperConfig && row.Normalized > 1.05 {
			t.Errorf("%s batched=%v fused=%v worse than baseline: %.3f",
				row.Scaling, row.Batched, row.Fused, row.Normalized)
		}
	}
}

func TestFig5ReuseExploration(t *testing.T) {
	r, err := Fig5(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 18 { // 2 groups x 3 OR x 3 IR
		t.Fatalf("got %d rows", len(r.Rows))
	}
	claims := albireo.Claims()
	if r.BestConverterReduction < claims.Fig5ConverterReductionLo {
		t.Errorf("converter reduction %.2f below band", r.BestConverterReduction)
	}
	if r.BestAcceleratorReduction < claims.Fig5AcceleratorReductionLo {
		t.Errorf("accelerator reduction %.2f below band", r.BestAcceleratorReduction)
	}
	var baseline *Fig5Row
	for i := range r.Rows {
		if r.Rows[i].Baseline {
			baseline = &r.Rows[i]
		}
	}
	if baseline == nil {
		t.Fatal("no baseline row")
	}
	// Increasing IR at fixed OR reduces input-conversion energy.
	find := func(wr bool, or, ir int) *Fig5Row {
		for i := range r.Rows {
			if r.Rows[i].WeightReuse == wr && r.Rows[i].OR == or && r.Rows[i].IR == ir {
				return &r.Rows[i]
			}
		}
		t.Fatalf("missing row wr=%v or=%d ir=%d", wr, or, ir)
		return nil
	}
	ir9 := find(false, 3, 9)
	ir45 := find(false, 3, 45)
	if ir45.Bins[albireo.RoleInputConv] >= ir9.Bins[albireo.RoleInputConv] {
		t.Errorf("IR=45 input conversion %.4f not below IR=9 %.4f",
			ir45.Bins[albireo.RoleInputConv], ir9.Bins[albireo.RoleInputConv])
	}
	// Increasing OR at fixed IR reduces output-conversion energy.
	or3 := find(false, 3, 27)
	or15 := find(false, 15, 27)
	if or15.Bins[albireo.RoleOutputConv] >= or3.Bins[albireo.RoleOutputConv] {
		t.Errorf("OR=15 output conversion %.4f not below OR=3 %.4f",
			or15.Bins[albireo.RoleOutputConv], or3.Bins[albireo.RoleOutputConv])
	}
	// The weight-reuse group (at matched high reuse) cuts total
	// conversion energy versus the original group. The comparison is on
	// the summed converter bins, not the weight-conversion bin alone:
	// each group's row carries its own best-found mapping, and on the
	// reuse topology the mapper may legitimately spend cheap weight
	// refetches to save output conversions — the per-bin split is a
	// property of the chosen schedule, the total is the topology's.
	owr := find(false, 9, 27)
	wwr := find(true, 9, 27)
	if wwr.ConverterPJPerMAC >= owr.ConverterPJPerMAC {
		t.Errorf("weight reuse did not cut conversion energy: %.4f vs %.4f",
			wwr.ConverterPJPerMAC, owr.ConverterPJPerMAC)
	}
}

// TestFig5MatchesDirectExploration is the sweep-equivalence anchor of the
// acceptance criteria: Fig5 now shards its 18-variant grid across the
// concurrent sweep subsystem (with the fingerprint dedupe cache engaged),
// and must reproduce the original serial exploration — one
// albireo.EvalNetwork per variant, no cache — bit-identically.
func TestFig5MatchesDirectExploration(t *testing.T) {
	cfg := Config{Budget: 120, Seed: 1, Workers: 2}
	r, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := workload.ResNet18(1)
	i := 0
	for _, wr := range []bool{false, true} {
		for _, orLanes := range []int{1, 3, 5} {
			for _, outLanes := range []int{3, 9, 15} {
				c := albireo.Default(albireo.Aggressive)
				c.OutputLanes = outLanes
				c.ORLanes = orLanes
				c.WeightReuse = wr
				res, err := albireo.EvalNetwork(c, net, albireo.NetOptions{
					Batch:  1,
					Mapper: mapper.Options{Objective: mapper.MinEnergy, Budget: 120, Seed: 1, Workers: 2},
				})
				if err != nil {
					t.Fatal(err)
				}
				row := r.Rows[i]
				if row.WeightReuse != wr || row.OR != c.OR() || row.IR != c.IR() {
					t.Fatalf("row %d is (%v, %d, %d), want (%v, %d, %d)",
						i, row.WeightReuse, row.OR, row.IR, wr, c.OR(), c.IR())
				}
				macs := float64(res.Total.MACs)
				wantAccel := albireo.AcceleratorPJ(&res.Total) / macs
				wantConv := albireo.ConverterPJ(&res.Total) / macs
				if row.AccelPJPerMAC != wantAccel || row.ConverterPJPerMAC != wantConv {
					t.Errorf("row %d diverged: accel %.12g vs %.12g, conv %.12g vs %.12g",
						i, row.AccelPJPerMAC, wantAccel, row.ConverterPJPerMAC, wantConv)
				}
				for bin, pj := range albireo.RoleBreakdown(&res.Total) {
					if bin == albireo.RoleDRAM {
						continue
					}
					if row.Bins[bin] != pj/macs {
						t.Errorf("row %d bin %s: %.12g vs %.12g", i, bin, row.Bins[bin], pj/macs)
					}
				}
				i++
			}
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	f2, err := Fig2(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f2.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 2", "conservative", "Reported", "Model"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 render missing %q", want)
		}
	}
	var csv bytes.Buffer
	if err := f2.Table().CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 7 { // header + 6 rows
		t.Errorf("fig2 csv has %d lines", lines)
	}
}

// TestAllRenderersEndToEnd drives every figure's Render and CSV paths with
// small budgets, checking the textual output carries the headline facts.
func TestAllRenderersEndToEnd(t *testing.T) {
	f3, err := Fig3(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	var b3 bytes.Buffer
	if err := f3.Render(&b3); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 3", "vgg16", "alexnet", "MACs/cycle"} {
		if !strings.Contains(b3.String(), want) {
			t.Errorf("fig3 render missing %q", want)
		}
	}

	f4, err := Fig4(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	var b4 bytes.Buffer
	if err := f4.Render(&b4); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 4", "DRAM share", "Albireo paper config", "batching+fusion"} {
		if !strings.Contains(b4.String(), want) {
			t.Errorf("fig4 render missing %q", want)
		}
	}
	var c4 bytes.Buffer
	if err := f4.Table().CSV(&c4); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(c4.String(), "\n"); lines != 9 { // header + 8 rows
		t.Errorf("fig4 csv has %d lines", lines)
	}

	f5, err := Fig5(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	var b5 bytes.Buffer
	if err := f5.Render(&b5); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 5", "More Weight Reuse", "converter-energy reduction"} {
		if !strings.Contains(b5.String(), want) {
			t.Errorf("fig5 render missing %q", want)
		}
	}

	abl, err := Ablations(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	var ba bytes.Buffer
	if err := abl.Render(&ba); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ba.String(), "Ablations") || !strings.Contains(ba.String(), "Ratio") {
		t.Error("ablation render incomplete")
	}
}
