package exp

import (
	"fmt"
	"io"
	"math"

	"photoloop/internal/albireo"
	"photoloop/internal/model"
	"photoloop/internal/report"
)

// Fig2Row is one bar of the Fig. 2 energy-breakdown validation.
type Fig2Row struct {
	Scaling albireo.Scaling
	// Kind is "Model" or "Reported".
	Kind string
	// Bins holds pJ/MAC per Fig. 2 bin (accelerator + laser, no DRAM).
	Bins map[albireo.Fig2Bin]float64
	// Total sums the bins.
	Total float64
}

// Fig2Result reproduces Fig. 2: modeled vs reported best-case energy
// breakdown across the three scaling projections.
type Fig2Result struct {
	Rows []Fig2Row
	// AvgAbsErrPct is the mean |model-reported|/reported of the bar
	// totals, in percent (the paper reports 0.4%).
	AvgAbsErrPct float64
	// Utilization of the best-case layer (should be 1.0).
	Utilization float64
}

// Fig2 runs the energy-breakdown validation. It is deterministic: the
// canonical (architect-intended) mapping is evaluated directly.
func Fig2(cfg Config) (*Fig2Result, error) {
	cfg = cfg.withDefaults()
	layer := BestCaseLayer()
	out := &Fig2Result{}
	var errSum float64
	var n int
	for _, s := range fig2Scalings() {
		a, err := albireo.Default(s).Build()
		if err != nil {
			return nil, err
		}
		m, err := albireo.CanonicalBest(a, &layer)
		if err != nil {
			return nil, err
		}
		res, err := model.Evaluate(a, &layer, m, model.Options{})
		if err != nil {
			return nil, err
		}
		out.Utilization = res.Utilization

		macs := float64(res.MACs)
		modelBins := map[albireo.Fig2Bin]float64{}
		for bin, pj := range albireo.Fig2Breakdown(res) {
			if bin == albireo.BinDRAM {
				continue // Fig. 2 scope is accelerator + laser
			}
			modelBins[bin] = pj / macs
		}
		modelRow := Fig2Row{Scaling: s, Kind: "Model", Bins: modelBins}
		for _, v := range modelBins {
			modelRow.Total += v
		}
		repBins := albireo.ReportedFig2(s)
		repRow := Fig2Row{Scaling: s, Kind: "Reported", Bins: repBins, Total: albireo.ReportedFig2Total(s)}
		out.Rows = append(out.Rows, modelRow, repRow)

		errSum += math.Abs(modelRow.Total-repRow.Total) / repRow.Total
		n++
	}
	out.AvgAbsErrPct = 100 * errSum / float64(n)
	return out, nil
}

// Table renders the result rows.
func (r *Fig2Result) Table() *report.Table {
	cols := []string{"Scaling", "Kind"}
	for _, b := range albireo.Fig2Bins() {
		cols = append(cols, string(b))
	}
	cols = append(cols, "Total pJ/MAC")
	t := report.NewTable(cols...)
	for _, row := range r.Rows {
		vals := []interface{}{row.Scaling.String(), row.Kind}
		for _, b := range albireo.Fig2Bins() {
			vals = append(vals, fmt.Sprintf("%.3f", row.Bins[b]))
		}
		vals = append(vals, fmt.Sprintf("%.3f", row.Total))
		t.Row(vals...)
	}
	return t
}

// Render writes the figure as text.
func (r *Fig2Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Fig. 2 — Energy breakdown validation (best-case pJ/MAC, accelerator + laser)")
	if err := r.Table().Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "Average overall energy error: %.2f%% (paper: 0.4%%)\n", r.AvgAbsErrPct)
	maxTotal := 0.0
	for _, row := range r.Rows {
		if row.Total > maxTotal {
			maxTotal = row.Total
		}
	}
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %-8s |%s %.3f\n", row.Scaling, row.Kind,
			report.Bar(row.Total, maxTotal, 48), row.Total)
	}
	return nil
}
