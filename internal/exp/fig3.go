package exp

import (
	"fmt"
	"io"

	"photoloop/internal/albireo"
	"photoloop/internal/mapper"
	"photoloop/internal/report"
	"photoloop/internal/workload"
)

// LayerThroughput records one layer's achieved throughput.
type LayerThroughput struct {
	Layer string
	// Utilization is real MACs / padded compute slots.
	Utilization float64
	// MACsPerCycle is the achieved throughput including memory
	// bandwidth limits.
	MACsPerCycle float64
	// ComputeMACsPerCycle ignores bandwidth limits (pure spatial
	// utilization, the CiMLoop-style number).
	ComputeMACsPerCycle float64
	// Bottleneck names the bandwidth-limiting level, if any.
	Bottleneck string
}

// Fig3Row is one workload of the throughput comparison.
type Fig3Row struct {
	Network string
	// Ideal and Reported come from the digitized references.
	Ideal    float64
	Reported float64
	// Modeled is the per-layer arithmetic mean of achieved MACs/cycle
	// (including memory-bandwidth stalls), the aggregate plotted in the
	// reproduction.
	Modeled float64
	// ModeledComputeOnly averages the compute-bound throughput.
	ModeledComputeOnly float64
	// TotalOverCycles is total MACs / total cycles (the harmonic-style
	// aggregate, dominated by the slowest layers).
	TotalOverCycles float64
	Layers          []LayerThroughput
}

// Fig3Result reproduces Fig. 3: ideal vs reported vs modeled throughput
// for VGG16 and AlexNet. The modeled numbers capture spatial
// underutilization (strided convolutions, fully-connected layers, shapes
// that do not fill the rigid photonic array) the reported numbers omit.
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 runs the throughput comparison on the conservative configuration
// (throughput is scaling independent; energy scaling does not change the
// schedule search objective here, which is delay).
func Fig3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	a, err := albireo.Default(albireo.Conservative).Build()
	if err != nil {
		return nil, err
	}
	// One mapper session serves every layer of both networks: the
	// architecture invariants (compiled energy tables, spatial
	// assignments) are hoisted out of the per-layer searches.
	sess, err := mapper.NewSession(a)
	if err != nil {
		return nil, err
	}
	refs := albireo.ReportedFig3()
	out := &Fig3Result{}
	for _, name := range []string{"vgg16", "alexnet"} {
		net, err := workload.ByName(name, 1)
		if err != nil {
			return nil, err
		}
		row := Fig3Row{Network: name, Ideal: refs[name].Ideal, Reported: refs[name].Reported}
		var macs int64
		var cycles float64
		for i := range net.Layers {
			l := &net.Layers[i]
			opts := cfg.mapperOptions(mapper.MinDelay)
			opts.Seeds = albireo.CanonicalMappings(a, l)
			best, err := sess.Search(l, opts)
			if err != nil {
				return nil, fmt.Errorf("exp: fig3 %s/%s: %w", name, l.Name, err)
			}
			r := best.Result
			lt := LayerThroughput{
				Layer:               l.Name,
				Utilization:         r.Utilization,
				MACsPerCycle:        r.MACsPerCycle,
				ComputeMACsPerCycle: float64(r.MACs) / float64(r.ComputeCycles),
				Bottleneck:          r.BottleneckLevel,
			}
			row.Layers = append(row.Layers, lt)
			row.Modeled += lt.MACsPerCycle
			row.ModeledComputeOnly += lt.ComputeMACsPerCycle
			macs += r.MACs
			cycles += r.Cycles
		}
		n := float64(len(row.Layers))
		row.Modeled /= n
		row.ModeledComputeOnly /= n
		if cycles > 0 {
			row.TotalOverCycles = float64(macs) / cycles
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders the summary rows.
func (r *Fig3Result) Table() *report.Table {
	t := report.NewTable("Network", "Ideal", "Reported", "Modeled", "Modeled (compute-only)", "Total/cycles")
	for _, row := range r.Rows {
		t.Row(row.Network,
			fmt.Sprintf("%.0f", row.Ideal),
			fmt.Sprintf("%.0f", row.Reported),
			fmt.Sprintf("%.0f", row.Modeled),
			fmt.Sprintf("%.0f", row.ModeledComputeOnly),
			fmt.Sprintf("%.0f", row.TotalOverCycles))
	}
	return t
}

// Render writes the figure as text, including the per-layer detail.
func (r *Fig3Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Fig. 3 — Throughput (MACs/cycle); modeled captures underutilization")
	if err := r.Table().Render(w); err != nil {
		return err
	}
	for _, row := range r.Rows {
		fmt.Fprintf(w, "\n%s per-layer achieved throughput:\n", row.Network)
		for _, lt := range row.Layers {
			note := ""
			if lt.Bottleneck != "" {
				note = " [" + lt.Bottleneck + "-bound]"
			}
			fmt.Fprintf(w, "  %-22s util %5.1f%%  %7.1f MACs/cycle |%s%s\n",
				lt.Layer, 100*lt.Utilization, lt.MACsPerCycle,
				report.Bar(lt.MACsPerCycle, row.Ideal, 40), note)
		}
	}
	return nil
}
