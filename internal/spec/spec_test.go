package spec

import (
	"strings"
	"testing"

	"photoloop/internal/model"
	"photoloop/internal/workload"
)

func TestTemplateBuilds(t *testing.T) {
	a, err := DecodeArch(strings.NewReader(Template))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "mini-photonic" {
		t.Errorf("name = %s", a.Name)
	}
	if a.NumLevels() != 5 {
		t.Errorf("levels = %d", a.NumLevels())
	}
	if got := a.PeakMACsPerCycle(); got != 4*8*3*9 {
		t.Errorf("peak = %d, want %d", got, 4*8*3*9)
	}
	if gaps := a.DomainGaps(); len(gaps) != 0 {
		t.Errorf("template has domain gaps: %v", gaps)
	}
}

func TestTemplateEvaluates(t *testing.T) {
	a, err := DecodeArch(strings.NewReader(Template))
	if err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("conv", 1, 6, 8, 8, 8, 3, 3, 1, 1)
	mspec := MappingSpec{Levels: []MappingLevelSpec{
		{Temporal: map[string]int{}},
		{Temporal: map[string]int{"K": 2, "C": 2, "P": 8}, Perm: []string{"K", "C", "N", "P", "Q", "R", "S"}},
		{},
		{},
		{},
	}}
	m, err := mspec.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Evaluate(a, &l, m, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PJPerMAC() <= 0 {
		t.Error("bad energy")
	}
}

func TestDecodeArchRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"garbage", `{"bogus": 1}`},
		{"unknown component class", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8,
			"components": [{"class": "flux", "name": "F"}],
			"levels": [{"name": "D", "keeps": ["Weights","Inputs","Outputs"]}],
			"compute": {"name": "c"}
		}`},
		{"unknown domain", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8,
			"components": [],
			"levels": [{"name": "D", "domain": "XY", "keeps": ["Weights","Inputs","Outputs"]}],
			"compute": {"name": "c"}
		}`},
		{"unknown tensor", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8,
			"components": [],
			"levels": [{"name": "D", "keeps": ["Psums"]}],
			"compute": {"name": "c"}
		}`},
		{"unknown dim", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8,
			"components": [],
			"levels": [{"name": "D", "keeps": ["Weights","Inputs","Outputs"],
				"spatial": [{"count": 2, "dims": ["Z"]}]}],
			"compute": {"name": "c"}
		}`},
		{"bad converter ref", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8,
			"components": [],
			"levels": [{"name": "D", "keeps": ["Weights","Inputs","Outputs"],
				"fill_via": {"Weights": [{"component": "", "action": ""}]}}],
			"compute": {"name": "c"}
		}`},
	}
	for _, c := range cases {
		if _, err := DecodeArch(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDecodeMappingErrors(t *testing.T) {
	a, err := DecodeArch(strings.NewReader(Template))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMapping(strings.NewReader(`{"levels":[{}]}`), a); err == nil {
		t.Error("wrong level count accepted")
	}
	if _, err := DecodeMapping(strings.NewReader(`{"levels":[{"temporal":{"Z":2}},{},{},{},{}]}`), a); err == nil {
		t.Error("unknown dim accepted")
	}
	if _, err := DecodeMapping(strings.NewReader(`not json`), a); err == nil {
		t.Error("garbage accepted")
	}
}
