package spec

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"photoloop/internal/model"
	"photoloop/internal/workload"
)

func TestTemplateBuilds(t *testing.T) {
	a, err := DecodeArch(strings.NewReader(Template))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "mini-photonic" {
		t.Errorf("name = %s", a.Name)
	}
	if a.NumLevels() != 5 {
		t.Errorf("levels = %d", a.NumLevels())
	}
	if got := a.PeakMACsPerCycle(); got != 4*8*3*9 {
		t.Errorf("peak = %d, want %d", got, 4*8*3*9)
	}
	if gaps := a.DomainGaps(); len(gaps) != 0 {
		t.Errorf("template has domain gaps: %v", gaps)
	}
}

func TestTemplateEvaluates(t *testing.T) {
	a, err := DecodeArch(strings.NewReader(Template))
	if err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("conv", 1, 6, 8, 8, 8, 3, 3, 1, 1)
	mspec := MappingSpec{Levels: []MappingLevelSpec{
		{Temporal: map[string]int{}},
		{Temporal: map[string]int{"K": 2, "C": 2, "P": 8}, Perm: []string{"K", "C", "N", "P", "Q", "R", "S"}},
		{},
		{},
		{},
	}}
	m, err := mspec.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Evaluate(a, &l, m, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PJPerMAC() <= 0 {
		t.Error("bad energy")
	}
}

// TestArchSpecRoundTrip: template -> parse -> re-marshal -> parse must be
// stable — the parsed documents deep-equal, the re-marshaled bytes
// reproduce themselves, and both documents build fingerprint-identical
// architectures. This is what lets tools (the sweep's variant expansion,
// config generators) treat ArchSpec as a faithful interchange form.
func TestArchSpecRoundTrip(t *testing.T) {
	first, err := ParseArchSpec(strings.NewReader(Template))
	if err != nil {
		t.Fatal(err)
	}
	remarshaled, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ParseArchSpec(bytes.NewReader(remarshaled))
	if err != nil {
		t.Fatalf("re-marshaled template does not parse: %v", err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("round trip changed the document:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	again, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remarshaled, again) {
		t.Errorf("re-marshaling is not a fixed point:\n%s\nvs\n%s", remarshaled, again)
	}
	a1, err := first.Build()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := second.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a1.Fingerprint() != a2.Fingerprint() {
		t.Error("round-tripped spec builds a different architecture")
	}
}

func TestMappingSpecRoundTrip(t *testing.T) {
	doc := `{"levels":[{"temporal":{"K":2,"P":8},"perm":["K","C","N","P","Q","R","S"]},{},{},{},{}]}`
	first, err := ParseMappingSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	remarshaled, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ParseMappingSpec(bytes.NewReader(remarshaled))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("mapping round trip changed the document")
	}
	a, err := DecodeArch(strings.NewReader(Template))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := first.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := second.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Error("round-tripped mapping differs")
	}
}

// TestErrorsNameJSONPath: build failures must point at the offending JSON
// path so users can fix multi-hundred-line documents.
func TestErrorsNameJSONPath(t *testing.T) {
	cases := []struct {
		name, doc, wantPath string
	}{
		{"bad component class", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8,
			"components": [{"class": "sram", "name": "ok", "params": {"capacity_bits": 8, "access_bits": 8}},
			               {"class": "flux", "name": "F"}],
			"levels": [{"name": "D", "keeps": ["Weights","Inputs","Outputs"]}],
			"compute": {"name": "c"}
		}`, `components[1] (F)`},
		{"bad level domain", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8, "components": [],
			"levels": [{"name": "D", "keeps": ["Weights","Inputs","Outputs"]},
			           {"name": "E", "domain": "XY", "keeps": ["Weights","Inputs","Outputs"]}],
			"compute": {"name": "c"}
		}`, `levels[1] (E).domain`},
		{"bad keeps", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8, "components": [],
			"levels": [{"name": "D", "keeps": ["Psums"]}],
			"compute": {"name": "c"}
		}`, `levels[0] (D).keeps`},
		{"bad spatial dim", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8, "components": [],
			"levels": [{"name": "D", "keeps": ["Weights","Inputs","Outputs"],
				"spatial": [{"count": 2, "dims": ["K"]}, {"count": 2, "dims": ["Z"]}]}],
			"compute": {"name": "c"}
		}`, `levels[0] (D).spatial[1]`},
		{"bad fill_via", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8, "components": [],
			"levels": [{"name": "D", "keeps": ["Weights","Inputs","Outputs"],
				"fill_via": {"Weights": [{"component": "", "action": ""}]}}],
			"compute": {"name": "c"}
		}`, `levels[0] (D).fill_via`},
		{"bad compute domain", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8, "components": [],
			"levels": [{"name": "D", "keeps": ["Weights","Inputs","Outputs"]}],
			"compute": {"name": "c", "domain": "QQ"}
		}`, `compute.domain`},
	}
	for _, c := range cases {
		_, err := DecodeArch(strings.NewReader(c.doc))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantPath) {
			t.Errorf("%s: error %q does not name path %q", c.name, err, c.wantPath)
		}
	}

	a, err := DecodeArch(strings.NewReader(Template))
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeMapping(strings.NewReader(`{"levels":[{},{"temporal":{"Z":2}},{},{},{}]}`), a)
	if err == nil || !strings.Contains(err.Error(), "levels[1].temporal") {
		t.Errorf("mapping error %q does not name levels[1].temporal", err)
	}
}

func TestDecodeArchRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"garbage", `{"bogus": 1}`},
		{"unknown component class", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8,
			"components": [{"class": "flux", "name": "F"}],
			"levels": [{"name": "D", "keeps": ["Weights","Inputs","Outputs"]}],
			"compute": {"name": "c"}
		}`},
		{"unknown domain", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8,
			"components": [],
			"levels": [{"name": "D", "domain": "XY", "keeps": ["Weights","Inputs","Outputs"]}],
			"compute": {"name": "c"}
		}`},
		{"unknown tensor", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8,
			"components": [],
			"levels": [{"name": "D", "keeps": ["Psums"]}],
			"compute": {"name": "c"}
		}`},
		{"unknown dim", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8,
			"components": [],
			"levels": [{"name": "D", "keeps": ["Weights","Inputs","Outputs"],
				"spatial": [{"count": 2, "dims": ["Z"]}]}],
			"compute": {"name": "c"}
		}`},
		{"bad converter ref", `{
			"name": "x", "clock_ghz": 1, "default_word_bits": 8,
			"components": [],
			"levels": [{"name": "D", "keeps": ["Weights","Inputs","Outputs"],
				"fill_via": {"Weights": [{"component": "", "action": ""}]}}],
			"compute": {"name": "c"}
		}`},
	}
	for _, c := range cases {
		if _, err := DecodeArch(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDecodeMappingErrors(t *testing.T) {
	a, err := DecodeArch(strings.NewReader(Template))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMapping(strings.NewReader(`{"levels":[{}]}`), a); err == nil {
		t.Error("wrong level count accepted")
	}
	if _, err := DecodeMapping(strings.NewReader(`{"levels":[{"temporal":{"Z":2}},{},{},{},{}]}`), a); err == nil {
		t.Error("unknown dim accepted")
	}
	if _, err := DecodeMapping(strings.NewReader(`not json`), a); err == nil {
		t.Error("garbage accepted")
	}
}
