package spec

// Template is a complete, buildable example architecture document: a
// miniature photonic accelerator with a DE global buffer, a streaming
// AO modulated-input station, an AE accumulator with photodiode and ADC,
// and a weight ring bank — the same structure as the Albireo model, scaled
// down. `photoloop template` prints it as a starting point for custom
// specs.
const Template = `{
  "name": "mini-photonic",
  "clock_ghz": 5,
  "default_word_bits": 8,
  "components": [
    {"class": "dram", "name": "DRAM", "params": {"pj_per_bit": 25, "access_bits": 8}},
    {"class": "sram", "name": "GLB", "params": {"capacity_bits": 8388608, "access_bits": 8, "banks": 8}},
    {"class": "dac", "name": "InputDAC", "params": {"bits": 8, "pj_per_bit": 0.9}},
    {"class": "dac", "name": "WeightDAC", "params": {"bits": 8, "pj_per_bit": 0.125}},
    {"class": "adc", "name": "ADC", "params": {"bits": 8, "walden_fj_per_step": 21}},
    {"class": "mzm", "name": "MZM", "params": {"modulate_pj": 4.7}},
    {"class": "mrr", "name": "MRR", "params": {"program_pj": 3.2, "transit_pj": 0.2}},
    {"class": "photodiode", "name": "PD", "params": {"detect_pj": 3.6}},
    {"class": "laser", "name": "Laser", "params": {"per_mac_pj": 0.5}}
  ],
  "levels": [
    {
      "name": "DRAM", "domain": "DE",
      "keeps": ["Weights", "Inputs", "Outputs"],
      "access_component": "DRAM",
      "bandwidth_words_per_cycle": 32
    },
    {
      "name": "GLB", "domain": "DE",
      "keeps": ["Weights", "Inputs", "Outputs"],
      "capacity_bits": 8388608,
      "access_component": "GLB",
      "spatial": [{"count": 4, "dims": ["C", "K"]}]
    },
    {
      "name": "ModIn", "domain": "AO",
      "keeps": ["Inputs"],
      "streaming": true,
      "input_overlap_sharing": true,
      "spatial": [
        {"count": 8, "dims": ["Q", "P", "N"]},
        {"count": 3, "dims": ["K", "N"]}
      ],
      "fill_via": {
        "Inputs": [
          {"component": "InputDAC", "action": "convert"},
          {"component": "MZM", "action": "modulate"}
        ]
      }
    },
    {
      "name": "Accum", "domain": "AE",
      "keeps": ["Outputs"],
      "word_bits": 24, "capacity_bits": 24,
      "max_temporal_product": 1,
      "spatial": [
        {"count": 3, "dims": ["S", "C"]},
        {"count": 3, "dims": ["R", "C"]}
      ],
      "update_via": {"Outputs": [{"component": "PD", "action": "detect"}]},
      "drain_via": {"Outputs": [{"component": "ADC", "action": "convert"}]}
    },
    {
      "name": "Rings", "domain": "AO",
      "keeps": ["Weights"],
      "capacity_bits": 8,
      "max_temporal_product": 1,
      "fill_via": {
        "Weights": [
          {"component": "WeightDAC", "action": "convert"},
          {"component": "MRR", "action": "program"}
        ]
      }
    }
  ],
  "compute": {
    "name": "OpticalMAC", "domain": "AO",
    "per_mac": [
      {"component": "Laser", "action": "supply"},
      {"component": "MRR", "action": "transit"}
    ]
  }
}
`
