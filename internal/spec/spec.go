// Package spec defines the JSON interchange format for architectures and
// mappings, giving the tool a CiMLoop-like specification-driven interface:
// users describe components, a level hierarchy with domains and converter
// chains, and (optionally) a mapping, without writing Go.
package spec

import (
	"encoding/json"
	"fmt"
	"io"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

// ComponentSpec instantiates one component from the class registry.
type ComponentSpec struct {
	Class  string             `json:"class"`
	Name   string             `json:"name"`
	Params map[string]float64 `json:"params,omitempty"`
}

// ActionRefSpec names a component action on a converter chain.
type ActionRefSpec struct {
	Component   string  `json:"component"`
	Action      string  `json:"action"`
	PerWord     float64 `json:"per_word,omitempty"`
	PerDistinct bool    `json:"per_distinct,omitempty"`
}

// SpatialFactorSpec is a rigid fan-out factor.
type SpatialFactorSpec struct {
	Count int      `json:"count"`
	Dims  []string `json:"dims"`
}

// LevelSpec is one storage level.
type LevelSpec struct {
	Name                   string                     `json:"name"`
	Domain                 string                     `json:"domain"`
	Keeps                  []string                   `json:"keeps"`
	CapacityBits           int64                      `json:"capacity_bits,omitempty"`
	WordBits               int                        `json:"word_bits,omitempty"`
	BandwidthWordsPerCycle float64                    `json:"bandwidth_words_per_cycle,omitempty"`
	AccessComponent        string                     `json:"access_component,omitempty"`
	Streaming              bool                       `json:"streaming,omitempty"`
	MaxTemporalProduct     int                        `json:"max_temporal_product,omitempty"`
	Spatial                []SpatialFactorSpec        `json:"spatial,omitempty"`
	MaxFanout              int                        `json:"max_fanout,omitempty"`
	FreeSpatialDims        []string                   `json:"free_spatial_dims,omitempty"`
	NoMulticast            bool                       `json:"no_multicast,omitempty"`
	NoSpatialReduce        bool                       `json:"no_spatial_reduce,omitempty"`
	InputOverlapSharing    bool                       `json:"input_overlap_sharing,omitempty"`
	FillVia                map[string][]ActionRefSpec `json:"fill_via,omitempty"`
	UpdateVia              map[string][]ActionRefSpec `json:"update_via,omitempty"`
	DrainVia               map[string][]ActionRefSpec `json:"drain_via,omitempty"`
}

// ComputeSpec is the compute array.
type ComputeSpec struct {
	Name   string          `json:"name"`
	Domain string          `json:"domain"`
	PerMAC []ActionRefSpec `json:"per_mac,omitempty"`
}

// ArchSpec is a complete architecture document.
type ArchSpec struct {
	Name            string          `json:"name"`
	ClockGHz        float64         `json:"clock_ghz"`
	DefaultWordBits int             `json:"default_word_bits"`
	Components      []ComponentSpec `json:"components"`
	Levels          []LevelSpec     `json:"levels"`
	Compute         ComputeSpec     `json:"compute"`
}

// ParseArchSpec decodes an architecture document without building it:
// callers that re-marshal, mutate (sweep variants) or embed the document
// (eval requests) keep the spec form.
func ParseArchSpec(r io.Reader) (*ArchSpec, error) {
	var s ArchSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: decoding architecture: %w", err)
	}
	return &s, nil
}

// DecodeArch reads and builds an architecture from JSON.
func DecodeArch(r io.Reader) (*arch.Arch, error) {
	s, err := ParseArchSpec(r)
	if err != nil {
		return nil, err
	}
	return s.Build()
}

// Build constructs the architecture described by the spec. Errors name
// the offending JSON path (e.g. "levels[2].spatial[0]").
func (s *ArchSpec) Build() (*arch.Arch, error) {
	lib := components.NewLibrary()
	for i, cs := range s.Components {
		c, err := components.Build(cs.Class, cs.Name, cs.Params)
		if err != nil {
			return nil, fmt.Errorf("spec: components[%d] (%s): %w", i, cs.Name, err)
		}
		if err := lib.Add(c); err != nil {
			return nil, fmt.Errorf("spec: components[%d]: %w", i, err)
		}
	}
	a := &arch.Arch{
		Name:            s.Name,
		Lib:             lib,
		ClockGHz:        s.ClockGHz,
		DefaultWordBits: s.DefaultWordBits,
	}
	for i := range s.Levels {
		ls := &s.Levels[i]
		lvl, err := ls.build(fmt.Sprintf("levels[%d] (%s)", i, ls.Name))
		if err != nil {
			return nil, err
		}
		a.Levels = append(a.Levels, *lvl)
	}
	dom, err := arch.ParseDomain(orDefault(s.Compute.Domain, "DE"))
	if err != nil {
		return nil, fmt.Errorf("spec: compute.domain: %w", err)
	}
	refs, err := buildRefs(s.Compute.PerMAC)
	if err != nil {
		return nil, fmt.Errorf("spec: compute.per_mac: %w", err)
	}
	a.Compute = arch.Compute{Name: s.Compute.Name, Domain: dom, PerMAC: refs}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// build constructs one level; path is the level's JSON path for error
// messages.
func (ls *LevelSpec) build(path string) (*arch.Level, error) {
	dom, err := arch.ParseDomain(orDefault(ls.Domain, "DE"))
	if err != nil {
		return nil, fmt.Errorf("spec: %s.domain: %w", path, err)
	}
	keeps, err := parseTensorSet(ls.Keeps)
	if err != nil {
		return nil, fmt.Errorf("spec: %s.keeps: %w", path, err)
	}
	lvl := &arch.Level{
		Name:                   ls.Name,
		Domain:                 dom,
		Keeps:                  keeps,
		CapacityBits:           ls.CapacityBits,
		WordBits:               ls.WordBits,
		BandwidthWordsPerCycle: ls.BandwidthWordsPerCycle,
		AccessComponent:        ls.AccessComponent,
		Streaming:              ls.Streaming,
		MaxTemporalProduct:     ls.MaxTemporalProduct,
		MaxFanout:              ls.MaxFanout,
		NoMulticast:            ls.NoMulticast,
		NoSpatialReduce:        ls.NoSpatialReduce,
		InputOverlapSharing:    ls.InputOverlapSharing,
	}
	for i, fs := range ls.Spatial {
		dims, err := parseDims(fs.Dims)
		if err != nil {
			return nil, fmt.Errorf("spec: %s.spatial[%d]: %w", path, i, err)
		}
		lvl.Spatial = append(lvl.Spatial, arch.SpatialFactor{Count: fs.Count, Dims: dims})
	}
	if len(ls.FreeSpatialDims) > 0 {
		dims, err := parseDims(ls.FreeSpatialDims)
		if err != nil {
			return nil, fmt.Errorf("spec: %s.free_spatial_dims: %w", path, err)
		}
		lvl.FreeSpatialDims = dims
	}
	if lvl.FillVia, err = buildVia(ls.FillVia); err != nil {
		return nil, fmt.Errorf("spec: %s.fill_via: %w", path, err)
	}
	if lvl.UpdateVia, err = buildVia(ls.UpdateVia); err != nil {
		return nil, fmt.Errorf("spec: %s.update_via: %w", path, err)
	}
	if lvl.DrainVia, err = buildVia(ls.DrainVia); err != nil {
		return nil, fmt.Errorf("spec: %s.drain_via: %w", path, err)
	}
	return lvl, nil
}

func buildVia(m map[string][]ActionRefSpec) (map[workload.Tensor][]arch.ActionRef, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(map[workload.Tensor][]arch.ActionRef, len(m))
	for name, refs := range m {
		t, err := workload.ParseTensor(name)
		if err != nil {
			return nil, err
		}
		built, err := buildRefs(refs)
		if err != nil {
			return nil, err
		}
		out[t] = built
	}
	return out, nil
}

func buildRefs(specs []ActionRefSpec) ([]arch.ActionRef, error) {
	var out []arch.ActionRef
	for _, r := range specs {
		if r.Component == "" || r.Action == "" {
			return nil, fmt.Errorf("spec: action ref needs component and action")
		}
		out = append(out, arch.ActionRef{
			Component:   r.Component,
			Action:      r.Action,
			PerWord:     r.PerWord,
			PerDistinct: r.PerDistinct,
		})
	}
	return out, nil
}

func parseDims(names []string) ([]workload.Dim, error) {
	var out []workload.Dim
	for _, n := range names {
		d, err := workload.ParseDim(n)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func parseTensorSet(names []string) (workload.TensorSet, error) {
	var s workload.TensorSet
	for _, n := range names {
		t, err := workload.ParseTensor(n)
		if err != nil {
			return 0, err
		}
		s = s.With(t)
	}
	return s, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// MappingLevelSpec is one level of a mapping document.
type MappingLevelSpec struct {
	Temporal      map[string]int `json:"temporal,omitempty"`
	Perm          []string       `json:"perm,omitempty"`
	SpatialChoice []string       `json:"spatial_choice,omitempty"`
	FreeSpatial   map[string]int `json:"free_spatial,omitempty"`
}

// MappingSpec is a mapping document; levels are outermost first and must
// match the architecture's level count.
type MappingSpec struct {
	Levels []MappingLevelSpec `json:"levels"`
}

// ParseMappingSpec decodes a mapping document without building it.
func ParseMappingSpec(r io.Reader) (*MappingSpec, error) {
	var s MappingSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: decoding mapping: %w", err)
	}
	return &s, nil
}

// DecodeMapping reads a mapping for an architecture from JSON.
func DecodeMapping(r io.Reader, a *arch.Arch) (*mapping.Mapping, error) {
	s, err := ParseMappingSpec(r)
	if err != nil {
		return nil, err
	}
	return s.Build(a)
}

// Build constructs the mapping described by the spec.
func (s *MappingSpec) Build(a *arch.Arch) (*mapping.Mapping, error) {
	if len(s.Levels) != a.NumLevels() {
		return nil, fmt.Errorf("spec: mapping has %d levels, arch has %d", len(s.Levels), a.NumLevels())
	}
	m := mapping.New(a)
	for i, ls := range s.Levels {
		for name, f := range ls.Temporal {
			d, err := workload.ParseDim(name)
			if err != nil {
				return nil, fmt.Errorf("spec: levels[%d].temporal: %w", i, err)
			}
			m.Levels[i].Temporal[d] = f
		}
		if len(ls.Perm) > 0 {
			dims, err := parseDims(ls.Perm)
			if err != nil {
				return nil, fmt.Errorf("spec: levels[%d].perm: %w", i, err)
			}
			m.Levels[i].Perm = dims
		}
		if len(ls.SpatialChoice) > 0 {
			dims, err := parseDims(ls.SpatialChoice)
			if err != nil {
				return nil, fmt.Errorf("spec: levels[%d].spatial_choice: %w", i, err)
			}
			m.Levels[i].SpatialChoice = dims
		}
		for name, f := range ls.FreeSpatial {
			d, err := workload.ParseDim(name)
			if err != nil {
				return nil, fmt.Errorf("spec: levels[%d].free_spatial: %w", i, err)
			}
			m.Levels[i].FreeSpatial[d] = f
		}
	}
	return m, nil
}
