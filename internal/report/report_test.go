package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendersAligned(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("b", 22.25)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator: %q", lines[1])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.5") {
		t.Errorf("row: %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.Row("x", 1)
	tb.Row("y", 2)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx,1\ny,2\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar(5,10,10) = %q", got)
	}
	if got := Bar(100, 10, 10); len(got) != 10 {
		t.Errorf("Bar should clamp: %q", got)
	}
	if got := Bar(0.001, 10, 10); got != "#" {
		t.Errorf("tiny positive values render one mark: %q", got)
	}
	if got := Bar(0, 10, 10); got != "" {
		t.Errorf("zero renders empty: %q", got)
	}
	if got := Bar(5, 0, 10); got != "" {
		t.Errorf("zero scale renders empty: %q", got)
	}
}

func TestStackedBar(t *testing.T) {
	got := StackedBar([]float64{2, 2}, []rune{'a', 'b'}, 8, 8)
	if got != "aabb" {
		t.Errorf("StackedBar = %q", got)
	}
	// Clamping to max width.
	long := StackedBar([]float64{10, 10}, []rune{'a', 'b'}, 8, 8)
	if len([]rune(long)) != 8 {
		t.Errorf("StackedBar did not clamp: %q", long)
	}
	// Zero segments skipped.
	if got := StackedBar([]float64{0, 4}, []rune{'a', 'b'}, 8, 8); got != "bbbb" {
		t.Errorf("StackedBar zero segment: %q", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.756); got != "75.6%" {
		t.Errorf("Pct = %q", got)
	}
}
