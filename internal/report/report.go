// Package report renders experiment results as ASCII tables, horizontal
// bar charts and CSV — the textual equivalents of the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable builds a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v (floats with %.4g).
func (t *Table) Row(values ...interface{}) *Table {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values (no quoting of commas —
// our cells never contain them).
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.header, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar renders a horizontal bar of the value scaled to maxWidth characters
// at full scale.
func Bar(value, fullScale float64, maxWidth int) string {
	if fullScale <= 0 || value <= 0 || maxWidth <= 0 {
		return ""
	}
	n := int(value / fullScale * float64(maxWidth))
	if n > maxWidth {
		n = maxWidth
	}
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// StackedBar renders segments (in order) as a proportional stacked bar
// using one rune per segment class.
func StackedBar(segments []float64, runes []rune, fullScale float64, maxWidth int) string {
	if fullScale <= 0 || maxWidth <= 0 {
		return ""
	}
	var b strings.Builder
	for i, seg := range segments {
		if seg <= 0 {
			continue
		}
		n := int(seg / fullScale * float64(maxWidth))
		if n < 1 {
			n = 1
		}
		r := '#'
		if i < len(runes) {
			r = runes[i]
		}
		for j := 0; j < n; j++ {
			b.WriteRune(r)
		}
	}
	s := b.String()
	if len([]rune(s)) > maxWidth {
		s = string([]rune(s)[:maxWidth])
	}
	return s
}

// Pct formats a ratio as a percentage.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
