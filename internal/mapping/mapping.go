// Package mapping represents schedules of a workload layer onto an
// architecture: per-level temporal loop factorizations with permutations,
// assignments of the architecture's rigid spatial factors to problem
// dimensions, and optional free spatial factors. Imperfect factorization is
// first-class — factors may overshoot the problem bounds, and the resulting
// padding is what produces the under-utilization effects the paper
// evaluates (Fig. 3).
package mapping

import (
	"strconv"

	"photoloop/internal/arch"
	"photoloop/internal/workload"
)

// LevelMapping is the slice of the schedule owned by one storage level.
type LevelMapping struct {
	// Temporal holds the temporal loop trip counts at this level; 1
	// means no loop over that dimension here.
	Temporal workload.Point `json:"temporal"`
	// Perm orders this level's temporal loops, outermost first. It must
	// be a permutation of all seven dimensions; dimensions with a trip
	// count of 1 are inert placeholders.
	Perm []workload.Dim `json:"-"`
	// SpatialChoice assigns each of the level's rigid spatial factors to
	// a dimension; its length must equal len(level.Spatial).
	SpatialChoice []workload.Dim `json:"-"`
	// FreeSpatial holds mapper-chosen spatial factors (all 1 unless the
	// level declares MaxFanout headroom).
	FreeSpatial workload.Point `json:"free_spatial"`
}

// CanonicalPerm returns the canonical loop order (N K C P Q R S).
func CanonicalPerm() []workload.Dim { return workload.AllDims() }

// NewLevelMapping returns an inert level mapping: unit factors, canonical
// permutation, canonical spatial choices for the given arch level.
func NewLevelMapping(l *arch.Level) LevelMapping {
	lm := LevelMapping{
		Temporal:    workload.Ones(),
		Perm:        CanonicalPerm(),
		FreeSpatial: workload.Ones(),
	}
	for i := range l.Spatial {
		lm.SpatialChoice = append(lm.SpatialChoice, l.Spatial[i].Dims[0])
	}
	return lm
}

// SpatialPoint returns this level's total spatial factors per dimension:
// the rigid factors (per the chosen assignment) times the free factors.
func (lm *LevelMapping) SpatialPoint(l *arch.Level) workload.Point {
	p := lm.FreeSpatial
	for i := range p {
		if p[i] < 1 {
			p[i] = 1
		}
	}
	for i := range l.Spatial {
		if i < len(lm.SpatialChoice) {
			p[lm.SpatialChoice[i]] *= l.Spatial[i].Count
		}
	}
	return p
}

// Loop is one temporal loop in a flattened nest.
type Loop struct {
	Dim   workload.Dim
	Trip  int
	Level int // storage level owning the loop
}

// Mapping is a complete schedule: one LevelMapping per storage level,
// ordered outermost first (parallel to arch.Levels).
type Mapping struct {
	Levels []LevelMapping
}

// New returns an inert mapping for the architecture (all unit factors).
func New(a *arch.Arch) *Mapping {
	m := &Mapping{Levels: make([]LevelMapping, a.NumLevels())}
	for i := range m.Levels {
		m.Levels[i] = NewLevelMapping(a.Level(i))
	}
	return m
}

// Clone deep-copies the mapping.
func (m *Mapping) Clone() *Mapping {
	out := &Mapping{Levels: make([]LevelMapping, len(m.Levels))}
	for i := range m.Levels {
		lm := m.Levels[i]
		out.Levels[i] = LevelMapping{
			Temporal:    lm.Temporal,
			Perm:        append([]workload.Dim(nil), lm.Perm...),
			FreeSpatial: lm.FreeSpatial,
		}
		if lm.SpatialChoice != nil {
			out.Levels[i].SpatialChoice = append([]workload.Dim(nil), lm.SpatialChoice...)
		}
	}
	return out
}

// SpatialAt returns level i's spatial point under the architecture.
func (m *Mapping) SpatialAt(a *arch.Arch, i int) workload.Point {
	return m.Levels[i].SpatialPoint(a.Level(i))
}

// FactorsAt returns level i's combined temporal x spatial factors.
func (m *Mapping) FactorsAt(a *arch.Arch, i int) workload.Point {
	return m.Levels[i].Temporal.Mul(m.SpatialAt(a, i))
}

// PaddedBounds returns the full (possibly padded) iteration-space bounds:
// the per-dimension product of all temporal and spatial factors.
func (m *Mapping) PaddedBounds(a *arch.Arch) workload.Point {
	p := workload.Ones()
	for i := range m.Levels {
		p = p.Mul(m.FactorsAt(a, i))
	}
	return p
}

// TileExtents returns the per-dimension data extents of one instance of
// level i's tile: the product of all temporal and spatial factors at levels
// >= i. (Level i's own temporal loops iterate within its tile over child
// tiles; the tile must cover them.) The extents of the (virtual) innermost
// level NumLevels() are all ones: one MAC.
func (m *Mapping) TileExtents(a *arch.Arch, i int) workload.Point {
	ext := workload.Ones()
	for j := len(m.Levels) - 1; j >= i && j >= 0; j-- {
		ext = ext.Mul(m.FactorsAt(a, j))
	}
	return ext
}

// SpatialExtentsBelow returns the per-dimension extents covered purely by
// spatial factors at levels >= i — the single-cycle working set shape of a
// streaming station at level i.
func (m *Mapping) SpatialExtentsBelow(a *arch.Arch, i int) workload.Point {
	ext := workload.Ones()
	for j := len(m.Levels) - 1; j >= i; j-- {
		ext = ext.Mul(m.SpatialAt(a, j))
	}
	return ext
}

// TemporalIterations returns the total number of temporal iterations
// (compute cycles, assuming one MAC per instance per cycle) of the padded
// schedule.
func (m *Mapping) TemporalIterations() int64 {
	n := int64(1)
	for i := range m.Levels {
		n *= m.Levels[i].Temporal.Product()
	}
	return n
}

// Utilization returns actual MACs / padded MACs — the fraction of compute
// slots doing useful work.
func (m *Mapping) Utilization(a *arch.Arch, l *workload.Layer) float64 {
	padded := m.PaddedBounds(a).Product()
	if padded == 0 {
		return 0
	}
	return float64(l.MACs()) / float64(padded)
}

// LoopNestAbove returns the flattened temporal loop nest above level i's
// tiles, outermost first: the temporal loops of levels 0..i-1 in
// permutation order. Trip-1 loops are omitted (they never iterate and are
// irrelevant to stationarity). (The compiled evaluator builds the full
// nest once per evaluation instead — see model/counts.go.)
func (m *Mapping) LoopNestAbove(i int) []Loop {
	var nest []Loop
	for j := 0; j < i && j < len(m.Levels); j++ {
		lm := &m.Levels[j]
		for _, d := range lm.Perm {
			if t := lm.Temporal[d]; t > 1 {
				nest = append(nest, Loop{Dim: d, Trip: t, Level: j})
			}
		}
	}
	return nest
}

// Fingerprint returns a 64-bit FNV-1a hash identifying the schedule: equal
// mappings always hash equal, and mappings differing only in the ordering
// of inert (trip-1) permutation placeholders — which evaluate identically —
// hash equal too. The mapper uses it to skip re-evaluating schedules it has
// already scored.
func (m *Mapping) Fingerprint() uint64 {
	h := workload.NewFnv64a()
	for i := range m.Levels {
		lm := &m.Levels[i]
		h.Mix(uint64(i) | 1<<32)
		for _, d := range workload.AllDims() {
			h.Mix(uint64(lm.Temporal[d]))
			h.Mix(uint64(lm.FreeSpatial[d]))
		}
		for _, d := range lm.SpatialChoice {
			h.Mix(uint64(d))
		}
		for _, d := range lm.Perm {
			if lm.Temporal[d] > 1 {
				h.Mix(uint64(d) | 1<<16)
			}
		}
	}
	return h.Sum()
}

// String renders the mapping compactly for debugging and reports.
func (m *Mapping) String() string {
	return string(m.AppendString(nil))
}

// AppendString appends String()'s rendering to b and returns the extended
// slice — the allocation-free form the mapper's deterministic tie-break
// compares (two mappings render equal bytes iff they evaluate
// identically).
func (m *Mapping) AppendString(b []byte) []byte {
	for i := range m.Levels {
		lm := &m.Levels[i]
		b = append(b, 'L')
		b = strconv.AppendInt(b, int64(i), 10)
		b = append(b, ':')
		for _, d := range lm.Perm {
			if lm.Temporal[d] > 1 {
				b = append(b, ' ')
				b = append(b, d.String()...)
				b = strconv.AppendInt(b, int64(lm.Temporal[d]), 10)
			}
		}
		wrote := false
		for _, d := range workload.AllDims() {
			if lm.FreeSpatial[d] > 1 {
				if !wrote {
					b = append(b, " |"...)
					wrote = true
				}
				b = append(b, " s"...)
				b = append(b, d.String()...)
				b = strconv.AppendInt(b, int64(lm.FreeSpatial[d]), 10)
			}
		}
		if len(lm.SpatialChoice) > 0 {
			b = append(b, " ["...)
			for k, d := range lm.SpatialChoice {
				if k > 0 {
					b = append(b, ' ')
				}
				b = append(b, d.String()...)
			}
			b = append(b, ']')
		}
		b = append(b, '\n')
	}
	return b
}
