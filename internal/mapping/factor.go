package mapping

import (
	"sort"
	"sync"

	"photoloop/internal/workload"
)

// Divisors returns the positive divisors of n in ascending order.
func Divisors(n int) []int {
	if n < 1 {
		return nil
	}
	var small, large []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			small = append(small, d)
			if d != n/d {
				large = append(large, n/d)
			}
		}
	}
	for i := len(large) - 1; i >= 0; i-- {
		small = append(small, large[i])
	}
	return small
}

// FactorSplits enumerates all ordered k-tuples of positive integers whose
// product is exactly n (divisor-constrained perfect factorizations). The
// count grows combinatorially; intended for small n or small k.
func FactorSplits(n, k int) [][]int {
	if n < 1 || k < 1 {
		return nil
	}
	var out [][]int
	cur := make([]int, k)
	var rec func(rem, idx int)
	rec = func(rem, idx int) {
		if idx == k-1 {
			cur[idx] = rem
			out = append(out, append([]int(nil), cur...))
			return
		}
		for _, d := range Divisors(rem) {
			cur[idx] = d
			rec(rem/d, idx+1)
		}
	}
	rec(n, 0)
	return out
}

// paddedCandidatesCache memoizes PaddedCandidates — the mapper asks for
// the same bounds millions of times across random draws.
var paddedCandidatesCache sync.Map // int -> []int

// PaddedCandidates returns candidate tile factors for covering bound n with
// possible padding: every divisor of n, plus ceiling-based factors that
// overshoot (each distinct value of ceil(n/j) for j = 1..n). The result is
// sorted ascending and deduplicated. These are the factor choices a mapper
// should consider at a single level — any other factor is dominated by one
// of these (same coverage, no smaller padding). The result is cached and
// shared — callers must not modify it.
func PaddedCandidates(n int) []int {
	if n < 1 {
		return nil
	}
	if cached, ok := paddedCandidatesCache.Load(n); ok {
		return cached.([]int)
	}
	set := map[int]bool{}
	for _, d := range Divisors(n) {
		set[d] = true
	}
	for j := 1; j <= n; j++ {
		set[workload.CeilDiv(n, j)] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	paddedCandidatesCache.Store(n, out)
	return out
}

// CoverSplit splits bound n across an inner factor (already fixed, e.g. a
// rigid spatial count) and returns the outer trip count needed to cover it:
// ceil(n / inner), minimum 1.
func CoverSplit(n, inner int) int {
	if n < 1 {
		return 1
	}
	if inner < 1 {
		inner = 1
	}
	return workload.CeilDiv(n, inner)
}

// PaddingWaste returns the fractional over-coverage of factors f covering
// bound n: f*... == n means 0; covering 11 with 12 means 1/12.
func PaddingWaste(covered, n int) float64 {
	if covered <= 0 || n <= 0 || covered <= n {
		return 0
	}
	return float64(covered-n) / float64(covered)
}
