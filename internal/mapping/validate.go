package mapping

import (
	"errors"
	"fmt"

	"photoloop/internal/arch"
	"photoloop/internal/workload"
)

// errInvalid is the unformatted sentinel the fast path returns; Validate
// re-runs with explain=true to produce the detailed message.
var errInvalid = errors.New("mapping: invalid")

// Validate checks the mapping against the architecture and layer:
// structural shape, permutation well-formedness, spatial assignment
// legality, coverage of the problem bounds, fan-out limits, and per-level
// buffer capacity.
func (m *Mapping) Validate(a *arch.Arch, l *workload.Layer) error {
	return m.validate(a, l, true)
}

// Valid reports whether the mapping passes exactly the checks Validate
// runs, without constructing an error. The mapper calls it per candidate —
// millions of times per search — and most random candidates fail some rule;
// formatting a rejection message for each dominated the accept/reject
// decision itself.
func (m *Mapping) Valid(a *arch.Arch, l *workload.Layer) bool {
	return m.validate(a, l, false) == nil
}

// validate is the single implementation behind Validate and Valid: with
// explain it formats a diagnostic for the first violated rule, without it
// returns the errInvalid sentinel. The rule set is identical either way.
func (m *Mapping) validate(a *arch.Arch, l *workload.Layer, explain bool) error {
	fail := func(format string, args ...any) error {
		if !explain {
			return errInvalid
		}
		return fmt.Errorf(format, args...)
	}
	if len(m.Levels) != a.NumLevels() {
		return fail("mapping: has %d levels, arch %s has %d", len(m.Levels), a.Name, a.NumLevels())
	}
	for i := range m.Levels {
		lm := &m.Levels[i]
		lv := a.Level(i)
		// Permutation must cover every dimension exactly once.
		if len(lm.Perm) != int(workload.NumDims) {
			return fail("mapping: level %s: permutation has %d entries, want %d", lv.Name, len(lm.Perm), workload.NumDims)
		}
		var seen [workload.NumDims]bool
		for _, d := range lm.Perm {
			if d >= workload.NumDims {
				return fail("mapping: level %s: invalid dimension in permutation", lv.Name)
			}
			if seen[d] {
				return fail("mapping: level %s: dimension %v appears twice in permutation", lv.Name, d)
			}
			seen[d] = true
		}
		for _, d := range workload.AllDims() {
			if lm.Temporal[d] < 1 {
				return fail("mapping: level %s: temporal factor %s = %d, want >= 1", lv.Name, d, lm.Temporal[d])
			}
			if lm.FreeSpatial[d] < 1 {
				return fail("mapping: level %s: free spatial factor %s = %d, want >= 1", lv.Name, d, lm.FreeSpatial[d])
			}
		}
		if lv.MaxTemporalProduct > 0 && lm.Temporal.Product() > int64(lv.MaxTemporalProduct) {
			return fail("mapping: level %s: temporal product %d exceeds cap %d",
				lv.Name, lm.Temporal.Product(), lv.MaxTemporalProduct)
		}
		// Rigid spatial factors must each be assigned a permitted dim.
		if len(lm.SpatialChoice) != len(lv.Spatial) {
			return fail("mapping: level %s: %d spatial choices for %d rigid factors", lv.Name, len(lm.SpatialChoice), len(lv.Spatial))
		}
		for j, d := range lm.SpatialChoice {
			if !lv.Spatial[j].Allows(d) {
				return fail("mapping: level %s: spatial factor %d cannot be assigned to %v", lv.Name, j, d)
			}
		}
		// Free spatial factors need MaxFanout headroom and permitted dims.
		free := int64(1)
		for _, d := range workload.AllDims() {
			if lm.FreeSpatial[d] > 1 {
				if !lv.AllowsFreeDim(d) {
					return fail("mapping: level %s: free spatial over %v not permitted", lv.Name, d)
				}
				free *= int64(lm.FreeSpatial[d])
			}
		}
		if free > 1 && (lv.MaxFanout == 0 || free > int64(lv.MaxFanout)) {
			return fail("mapping: level %s: free fan-out %d exceeds MaxFanout %d", lv.Name, free, lv.MaxFanout)
		}
	}
	// Coverage and capacity share one suffix-product pass over the levels
	// (each used to walk the full hierarchy per level or per check — this
	// runs per candidate in the mapper's hot loop). The running product
	// over levels >= i is level i's tile extents; after the outermost
	// level it spans the padded bounds.
	bounds := l.Bounds()
	ext := workload.Ones()
	for i := len(m.Levels) - 1; i >= 0; i-- {
		ext = ext.Mul(m.FactorsAt(a, i))
		lv := a.Level(i)
		if lv.CapacityBits <= 0 {
			continue
		}
		// Capacity: the level must hold its kept tiles.
		var bits int64
		clamped := clampExt(ext, bounds, l)
		for _, t := range workload.AllTensors() {
			if !lv.Keeps.Has(t) {
				continue // Tensors() would allocate; same canonical order
			}
			wb := int64(lv.EffectiveWordBits(a.DefaultWordBits))
			bits += l.TileElems(t, clamped) * wb
		}
		if bits > lv.CapacityBits {
			return fail("mapping: level %s: tile footprint %d bits exceeds capacity %d", lv.Name, bits, lv.CapacityBits)
		}
	}
	for _, d := range workload.AllDims() {
		if ext[d] < bounds[d] {
			return fail("mapping: dimension %s covered to %d, layer needs %d", d, ext[d], bounds[d])
		}
	}
	// Residency: loops over a tensor's relevant dimensions may not sit
	// above its outermost keeper — the data would have to reappear from a
	// level that does not store it. (This is what pins whole activations
	// to the global buffer in layer-fusion configurations.)
	for _, t := range workload.AllTensors() {
		keeps := a.KeepLevels(t)
		if len(keeps) == 0 {
			return fail("mapping: no level keeps %v", t)
		}
		k0 := keeps[0]
		for j := 0; j < k0; j++ {
			for _, d := range workload.AllDims() {
				if !workload.Relevant(t, d) {
					continue
				}
				if m.Levels[j].Temporal[d] > 1 {
					return fail("mapping: temporal loop %s%d at %s sits above %v's outermost keeper %s",
						d, m.Levels[j].Temporal[d], a.Level(j).Name, t, a.Level(k0).Name)
				}
				if sp := m.SpatialAt(a, j); sp[d] > 1 {
					return fail("mapping: spatial factor %s%d at %s sits above %v's outermost keeper %s",
						d, sp[d], a.Level(j).Name, t, a.Level(k0).Name)
				}
			}
		}
	}
	return nil
}

// clampExt limits padded tile extents to the layer bounds for capacity
// accounting: hardware never stores more than the real data (padding slots
// are dead lanes, not storage).
func clampExt(ext, bounds workload.Point, l *workload.Layer) workload.Point {
	out := ext
	for i := range out {
		if out[i] > bounds[i] {
			out[i] = bounds[i]
		}
	}
	return out
}
