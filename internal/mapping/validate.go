package mapping

import (
	"fmt"

	"photoloop/internal/arch"
	"photoloop/internal/workload"
)

// Validate checks the mapping against the architecture and layer:
// structural shape, permutation well-formedness, spatial assignment
// legality, coverage of the problem bounds, fan-out limits, and per-level
// buffer capacity.
func (m *Mapping) Validate(a *arch.Arch, l *workload.Layer) error {
	if len(m.Levels) != a.NumLevels() {
		return fmt.Errorf("mapping: has %d levels, arch %s has %d", len(m.Levels), a.Name, a.NumLevels())
	}
	for i := range m.Levels {
		lm := &m.Levels[i]
		lv := a.Level(i)
		// Permutation must cover every dimension exactly once.
		if len(lm.Perm) != int(workload.NumDims) {
			return fmt.Errorf("mapping: level %s: permutation has %d entries, want %d", lv.Name, len(lm.Perm), workload.NumDims)
		}
		var seen [workload.NumDims]bool
		for _, d := range lm.Perm {
			if d >= workload.NumDims {
				return fmt.Errorf("mapping: level %s: invalid dimension in permutation", lv.Name)
			}
			if seen[d] {
				return fmt.Errorf("mapping: level %s: dimension %v appears twice in permutation", lv.Name, d)
			}
			seen[d] = true
		}
		for _, d := range workload.AllDims() {
			if lm.Temporal[d] < 1 {
				return fmt.Errorf("mapping: level %s: temporal factor %s = %d, want >= 1", lv.Name, d, lm.Temporal[d])
			}
			if lm.FreeSpatial[d] < 1 {
				return fmt.Errorf("mapping: level %s: free spatial factor %s = %d, want >= 1", lv.Name, d, lm.FreeSpatial[d])
			}
		}
		if lv.MaxTemporalProduct > 0 && lm.Temporal.Product() > int64(lv.MaxTemporalProduct) {
			return fmt.Errorf("mapping: level %s: temporal product %d exceeds cap %d",
				lv.Name, lm.Temporal.Product(), lv.MaxTemporalProduct)
		}
		// Rigid spatial factors must each be assigned a permitted dim.
		if len(lm.SpatialChoice) != len(lv.Spatial) {
			return fmt.Errorf("mapping: level %s: %d spatial choices for %d rigid factors", lv.Name, len(lm.SpatialChoice), len(lv.Spatial))
		}
		for j, d := range lm.SpatialChoice {
			if !lv.Spatial[j].Allows(d) {
				return fmt.Errorf("mapping: level %s: spatial factor %d cannot be assigned to %v", lv.Name, j, d)
			}
		}
		// Free spatial factors need MaxFanout headroom and permitted dims.
		free := int64(1)
		for _, d := range workload.AllDims() {
			if lm.FreeSpatial[d] > 1 {
				if !lv.AllowsFreeDim(d) {
					return fmt.Errorf("mapping: level %s: free spatial over %v not permitted", lv.Name, d)
				}
				free *= int64(lm.FreeSpatial[d])
			}
		}
		if free > 1 && (lv.MaxFanout == 0 || free > int64(lv.MaxFanout)) {
			return fmt.Errorf("mapping: level %s: free fan-out %d exceeds MaxFanout %d", lv.Name, free, lv.MaxFanout)
		}
	}
	// Coverage: padded bounds must reach the problem bounds in every dim.
	padded := m.PaddedBounds(a)
	bounds := l.Bounds()
	for _, d := range workload.AllDims() {
		if padded[d] < bounds[d] {
			return fmt.Errorf("mapping: dimension %s covered to %d, layer needs %d", d, padded[d], bounds[d])
		}
	}
	// Residency: loops over a tensor's relevant dimensions may not sit
	// above its outermost keeper — the data would have to reappear from a
	// level that does not store it. (This is what pins whole activations
	// to the global buffer in layer-fusion configurations.)
	for _, t := range workload.AllTensors() {
		keeps := a.KeepLevels(t)
		if len(keeps) == 0 {
			return fmt.Errorf("mapping: no level keeps %v", t)
		}
		k0 := keeps[0]
		for j := 0; j < k0; j++ {
			for _, d := range workload.AllDims() {
				if !workload.Relevant(t, d) {
					continue
				}
				if m.Levels[j].Temporal[d] > 1 {
					return fmt.Errorf("mapping: temporal loop %s%d at %s sits above %v's outermost keeper %s",
						d, m.Levels[j].Temporal[d], a.Level(j).Name, t, a.Level(k0).Name)
				}
				if sp := m.SpatialAt(a, j); sp[d] > 1 {
					return fmt.Errorf("mapping: spatial factor %s%d at %s sits above %v's outermost keeper %s",
						d, sp[d], a.Level(j).Name, t, a.Level(k0).Name)
				}
			}
		}
	}
	// Capacity: each level must hold its kept tiles.
	for i := range m.Levels {
		lv := a.Level(i)
		if lv.CapacityBits <= 0 {
			continue
		}
		var bits int64
		ext := m.TileExtents(a, i)
		for _, t := range lv.Keeps.Tensors() {
			wb := int64(lv.EffectiveWordBits(a.DefaultWordBits))
			bits += l.TileElems(t, clampExt(ext, bounds, l)) * wb
		}
		if bits > lv.CapacityBits {
			return fmt.Errorf("mapping: level %s: tile footprint %d bits exceeds capacity %d", lv.Name, bits, lv.CapacityBits)
		}
	}
	return nil
}

// clampExt limits padded tile extents to the layer bounds for capacity
// accounting: hardware never stores more than the real data (padding slots
// are dead lanes, not storage).
func clampExt(ext, bounds workload.Point, l *workload.Layer) workload.Point {
	out := ext
	for i := range out {
		if out[i] > bounds[i] {
			out[i] = bounds[i]
		}
	}
	return out
}
