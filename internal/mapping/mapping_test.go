package mapping

import (
	"testing"
	"testing/quick"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/workload"
)

// threeLevel builds DRAM -> Buffer(K4 spatial, cap) -> Regs hierarchy.
func threeLevel(t *testing.T) *arch.Arch {
	t.Helper()
	lib := components.NewLibrary()
	dram, err := components.Build("dram", "DRAM", components.Params{"pj_per_bit": 8})
	if err != nil {
		t.Fatal(err)
	}
	lib.MustAdd(dram)
	sram, err := components.Build("sram", "Buf", components.Params{"capacity_bits": 1 << 20, "access_bits": 8})
	if err != nil {
		t.Fatal(err)
	}
	lib.MustAdd(sram)
	reg, err := components.Build("regfile", "Reg", components.Params{"access_bits": 8})
	if err != nil {
		t.Fatal(err)
	}
	lib.MustAdd(reg)

	a := &arch.Arch{
		Name: "three", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Buffer", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
				CapacityBits: 1 << 20,
				Spatial:      []arch.SpatialFactor{arch.Fixed(workload.DimK, 4)},
				MaxFanout:    8,
			},
			{Name: "Regs", Keeps: workload.AllTensorSet(), AccessComponent: "Reg", CapacityBits: 1 << 12},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

func smallLayer() workload.Layer {
	return workload.NewConv("l", 1, 8, 4, 6, 6, 3, 3, 1, 1)
}

// coverMapping builds a trivially valid mapping: everything temporal at
// DRAM except the rigid K4 at Buffer.
func coverMapping(a *arch.Arch, l *workload.Layer) *Mapping {
	m := New(a)
	b := l.Bounds()
	for _, d := range workload.AllDims() {
		m.Levels[0].Temporal[d] = b[d]
	}
	// Rigid spatial K4 at Buffer: shrink DRAM temporal K accordingly.
	m.Levels[0].Temporal[workload.DimK] = workload.CeilDiv(b[workload.DimK], 4)
	return m
}

func TestNewMappingIsInert(t *testing.T) {
	a := threeLevel(t)
	m := New(a)
	if got := m.PaddedBounds(a); got.Product() != 4 {
		// Only the rigid K4 factor is active.
		t.Errorf("inert padded bounds = %v", got)
	}
	if m.TemporalIterations() != 1 {
		t.Errorf("inert temporal iterations = %d", m.TemporalIterations())
	}
}

func TestValidateAcceptsCoveringMapping(t *testing.T) {
	a := threeLevel(t)
	l := smallLayer()
	m := coverMapping(a, &l)
	if err := m.Validate(a, &l); err != nil {
		t.Fatalf("valid mapping rejected: %v\n%s", err, m.String())
	}
}

func TestValidateRejectsBrokenMappings(t *testing.T) {
	a := threeLevel(t)
	l := smallLayer()
	cases := []struct {
		name string
		mut  func(m *Mapping)
	}{
		{"under-coverage", func(m *Mapping) { m.Levels[0].Temporal[workload.DimC] = 1 }},
		{"zero factor", func(m *Mapping) { m.Levels[0].Temporal[workload.DimP] = 0 }},
		{"short perm", func(m *Mapping) { m.Levels[1].Perm = m.Levels[1].Perm[:5] }},
		{"dup perm", func(m *Mapping) { m.Levels[1].Perm[0] = m.Levels[1].Perm[1] }},
		{"bad spatial choice", func(m *Mapping) { m.Levels[1].SpatialChoice[0] = workload.DimC }},
		{"missing spatial choice", func(m *Mapping) { m.Levels[1].SpatialChoice = nil }},
		{"free fanout exceeded", func(m *Mapping) {
			m.Levels[1].FreeSpatial[workload.DimC] = 16 // MaxFanout is 8
		}},
		{"free fanout where none allowed", func(m *Mapping) {
			m.Levels[2].FreeSpatial[workload.DimC] = 2 // Regs has MaxFanout 0
		}},
		{"zero free spatial", func(m *Mapping) { m.Levels[1].FreeSpatial[workload.DimC] = 0 }},
		{"wrong level count", func(m *Mapping) { m.Levels = m.Levels[:2] }},
	}
	for _, c := range cases {
		m := coverMapping(a, &l)
		c.mut(m)
		if err := m.Validate(a, &l); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestValidateCapacity(t *testing.T) {
	a := threeLevel(t)
	l := smallLayer()
	m := coverMapping(a, &l)
	// Move all of C inward to Regs: tile grows beyond Regs' 4096 bits?
	// Weights tile at Regs with C=4,R=3,S=3 = 36 elems * 8 bits plus
	// inputs/outputs — still small. Grow the layer to force overflow.
	big := workload.NewConv("big", 1, 8, 256, 6, 6, 3, 3, 1, 1)
	m = coverMapping(a, &big)
	m.Levels[0].Temporal[workload.DimC] = 1
	m.Levels[2].Temporal[workload.DimC] = 256 // weights tile = 256*3*3*8bits at Regs
	if err := m.Validate(a, &big); err == nil {
		t.Error("capacity overflow accepted")
	}
}

func TestPaddedBoundsAndUtilization(t *testing.T) {
	a := threeLevel(t)
	// K=6 with rigid K4 spatial: ceil(6/4)=2 outer, padded K=8.
	l := workload.NewConv("l", 1, 6, 4, 6, 6, 3, 3, 1, 1)
	m := coverMapping(a, &l)
	padded := m.PaddedBounds(a)
	if padded[workload.DimK] != 8 {
		t.Errorf("padded K = %d, want 8", padded[workload.DimK])
	}
	util := m.Utilization(a, &l)
	want := 6.0 / 8.0
	if util < want-1e-9 || util > want+1e-9 {
		t.Errorf("utilization = %g, want %g", util, want)
	}
}

func TestTileExtents(t *testing.T) {
	a := threeLevel(t)
	l := smallLayer()
	m := coverMapping(a, &l)
	// Move R,S temporal to Regs level: its tile covers R=3,S=3.
	m.Levels[0].Temporal[workload.DimR] = 1
	m.Levels[0].Temporal[workload.DimS] = 1
	m.Levels[2].Temporal[workload.DimR] = 3
	m.Levels[2].Temporal[workload.DimS] = 3
	if err := m.Validate(a, &l); err != nil {
		t.Fatal(err)
	}
	extRegs := m.TileExtents(a, 2)
	if extRegs[workload.DimR] != 3 || extRegs[workload.DimS] != 3 || extRegs[workload.DimK] != 1 {
		t.Errorf("Regs extents = %v", extRegs)
	}
	// Buffer's tile includes its own spatial K4 and everything below.
	extBuf := m.TileExtents(a, 1)
	if extBuf[workload.DimK] != 4 || extBuf[workload.DimR] != 3 {
		t.Errorf("Buffer extents = %v", extBuf)
	}
	// DRAM's tile is the whole (padded) problem.
	extDRAM := m.TileExtents(a, 0)
	padded := m.PaddedBounds(a)
	if extDRAM != padded {
		t.Errorf("DRAM extents = %v, want padded bounds %v", extDRAM, padded)
	}
}

func TestSpatialExtentsBelow(t *testing.T) {
	a := threeLevel(t)
	l := smallLayer()
	m := coverMapping(a, &l)
	// Below Buffer (inclusive): just the rigid K4.
	ext := m.SpatialExtentsBelow(a, 1)
	if ext[workload.DimK] != 4 || ext.Product() != 4 {
		t.Errorf("spatial extents below Buffer = %v", ext)
	}
	// Below DRAM: same.
	if got := m.SpatialExtentsBelow(a, 0); got.Product() != 4 {
		t.Errorf("spatial extents below DRAM = %v", got)
	}
}

func TestLoopNestAboveSkipsUnitTrips(t *testing.T) {
	a := threeLevel(t)
	l := smallLayer()
	m := coverMapping(a, &l)
	nest := m.LoopNestAbove(1)
	for _, lp := range nest {
		if lp.Trip <= 1 {
			t.Errorf("unit-trip loop %v leaked into nest", lp)
		}
		if lp.Level != 0 {
			t.Errorf("loop from level %d in nest above level 1", lp.Level)
		}
	}
	// Nest above level 0 is empty.
	if got := m.LoopNestAbove(0); len(got) != 0 {
		t.Errorf("nest above outermost = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := threeLevel(t)
	l := smallLayer()
	m := coverMapping(a, &l)
	c := m.Clone()
	c.Levels[0].Temporal[workload.DimK] = 99
	c.Levels[1].Perm[0] = workload.DimS
	c.Levels[1].SpatialChoice[0] = workload.DimN
	if m.Levels[0].Temporal[workload.DimK] == 99 {
		t.Error("Temporal aliased")
	}
	if m.Levels[1].Perm[0] == workload.DimS {
		t.Error("Perm aliased")
	}
	if m.Levels[1].SpatialChoice[0] == workload.DimN {
		t.Error("SpatialChoice aliased")
	}
}

func TestDivisors(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{1, []int{1}},
		{12, []int{1, 2, 3, 4, 6, 12}},
		{13, []int{1, 13}},
		{36, []int{1, 2, 3, 4, 6, 9, 12, 18, 36}},
	}
	for _, c := range cases {
		got := Divisors(c.n)
		if len(got) != len(c.want) {
			t.Errorf("Divisors(%d) = %v", c.n, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Divisors(%d) = %v", c.n, got)
			}
		}
	}
	if Divisors(0) != nil {
		t.Error("Divisors(0) should be nil")
	}
}

func TestFactorSplits(t *testing.T) {
	splits := FactorSplits(12, 2)
	if len(splits) != 6 { // (1,12)(2,6)(3,4)(4,3)(6,2)(12,1)
		t.Errorf("FactorSplits(12,2) has %d entries", len(splits))
	}
	for _, s := range splits {
		if s[0]*s[1] != 12 {
			t.Errorf("split %v does not multiply to 12", s)
		}
	}
	if got := FactorSplits(5, 1); len(got) != 1 || got[0][0] != 5 {
		t.Errorf("FactorSplits(5,1) = %v", got)
	}
}

func TestFactorSplitsProductProperty(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := 1 + int(n8)%30
		k := 1 + int(k8)%3
		for _, s := range FactorSplits(n, k) {
			prod := 1
			for _, v := range s {
				prod *= v
			}
			if prod != n || len(s) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPaddedCandidates(t *testing.T) {
	got := PaddedCandidates(6)
	// Divisors 1,2,3,6 plus ceilings 6,3,2,2,2,1 => {1,2,3,6}.
	want := []int{1, 2, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("PaddedCandidates(6) = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("PaddedCandidates(6) = %v", got)
		}
	}
	// 7 is prime: candidates include ceil-based 4 (covers 7 in 2 steps).
	got7 := PaddedCandidates(7)
	has4 := false
	for _, v := range got7 {
		if v == 4 {
			has4 = true
		}
	}
	if !has4 {
		t.Errorf("PaddedCandidates(7) = %v, want to include 4", got7)
	}
}

func TestCoverSplitAndPaddingWaste(t *testing.T) {
	if CoverSplit(11, 3) != 4 {
		t.Errorf("CoverSplit(11,3) = %d", CoverSplit(11, 3))
	}
	if CoverSplit(12, 3) != 4 {
		t.Errorf("CoverSplit(12,3) = %d", CoverSplit(12, 3))
	}
	if CoverSplit(1, 0) != 1 {
		t.Errorf("CoverSplit(1,0) = %d", CoverSplit(1, 0))
	}
	if PaddingWaste(12, 11) <= 0 {
		t.Error("padding waste for 12 covering 11 should be positive")
	}
	if PaddingWaste(11, 11) != 0 {
		t.Error("no waste for exact coverage")
	}
}

func TestMappingStringMentionsFactors(t *testing.T) {
	a := threeLevel(t)
	l := smallLayer()
	m := coverMapping(a, &l)
	s := m.String()
	if s == "" {
		t.Error("empty String()")
	}
}
