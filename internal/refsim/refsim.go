// Package refsim is a brute-force reference simulator for the analytical
// model: it walks the mapped loop nest of a (small) layer point by point,
// simulating single-tile buffer residency per level instance, multicast
// unions on distribution networks, and partial-sum merging on reduction
// networks, and counts the same quantities the analytical engine derives in
// closed form. Property tests assert analytic == simulated.
//
// The simulator is exact but exponential in problem size; it is a test
// oracle, not a tool. It assumes perfect factorizations (no padding) and
// ideal distribution networks (multicast and overlap sharing available
// wherever the architecture does not disable them).
package refsim

import (
	"fmt"

	"photoloop/internal/arch"
	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

// Key identifies a (level index, tensor) pair.
type Key struct {
	Level  int
	Tensor workload.Tensor
}

// Counts are the simulated traffic totals, aggregated over instances.
type Counts struct {
	// TileElems is the exact per-instance tile footprint in words.
	TileElems map[Key]int64
	// Fills counts destination-side words filled into keepers of read
	// tensors: residency episodes times tile words, or per-cycle working
	// sets for streaming stations.
	Fills map[Key]float64
	// Reads counts words read out of each keeper: post-multicast unions
	// serving the next-inner keeper, plus per-cycle consumption at the
	// innermost keeper.
	Reads map[Key]float64
	// Arrivals counts output words arriving at each output keeper from
	// below, post spatial-reduction.
	Arrivals map[Key]float64
	// Drains counts output words drained from each keeper (source side).
	// Partial sums merge upward (fresh-start accumulation); evicted
	// partials are never refilled.
	Drains map[Key]float64
}

type loopRef struct {
	dim     workload.Dim
	trip    int
	level   int
	spatial bool
}

// station tracks one (level, tensor) keeper during simulation.
type station struct {
	key       Key
	pos       int   // position in the keep chain
	chain     []int // keep chain (level indices, outer to inner)
	streaming bool
	innermost bool
	// Network capabilities.
	multicastEdge bool // distribution from parent keeper may multicast
	multicastDown bool // distribution below this keeper may multicast
	reduceEdge    bool // merge on the way up to the parent keeper
	reduceDown    bool // merge below this keeper

	// Episode tracking (tile keys are instance independent).
	lastKey  int64
	started  bool
	episodes map[int64]int64 // tileKey -> episode count

	// Residency contents: tileKey -> child-instance -> address set, where
	// child-instance is split into (parent-side coords, edge coords).
	contents map[int64]map[[2]int64]map[int64]bool

	// Online per-cycle accounting (innermost keepers). Keyed by the
	// instance split into (parent-side coords, edge-side coords).
	cycleAddrs  map[[2]int64]map[int64]bool
	cycleRaw    map[[2]int64]int64
	consume     float64 // accumulated consumption reads / arrivals
	wsFills     float64 // accumulated streaming fills
	parentServe float64 // words the parent keeper supplies to a streaming keeper
}

type sim struct {
	a *arch.Arch
	l *workload.Layer
	m *mapping.Mapping

	nest  []loopRef
	tIdx  []int
	sIdx  []int
	tVals []int
	sVals []int
}

// Run simulates the mapping and returns the counts. The padded iteration
// space must be modest; Run refuses spaces above one million points.
func Run(a *arch.Arch, l *workload.Layer, m *mapping.Mapping) (*Counts, error) {
	if err := m.Validate(a, l); err != nil {
		return nil, err
	}
	if total := m.PaddedBounds(a).Product(); total > 1_000_000 {
		return nil, fmt.Errorf("refsim: padded space %d too large to enumerate", total)
	}
	s := &sim{a: a, l: l, m: m}
	s.buildNest()
	return s.run()
}

func (s *sim) buildNest() {
	for i := 0; i < s.a.NumLevels(); i++ {
		lm := &s.m.Levels[i]
		for _, d := range lm.Perm {
			if lm.Temporal[d] > 1 {
				s.nest = append(s.nest, loopRef{dim: d, trip: lm.Temporal[d], level: i})
			}
		}
		sp := s.m.SpatialAt(s.a, i)
		for _, d := range workload.AllDims() {
			if sp[d] > 1 {
				s.nest = append(s.nest, loopRef{dim: d, trip: sp[d], level: i, spatial: true})
			}
		}
	}
	for i, lp := range s.nest {
		if lp.spatial {
			s.sIdx = append(s.sIdx, i)
		} else {
			s.tIdx = append(s.tIdx, i)
		}
	}
	s.tVals = make([]int, len(s.tIdx))
	s.sVals = make([]int, len(s.sIdx))
}

func address(t workload.Tensor, l *workload.Layer, idx workload.Point) int64 {
	switch t {
	case workload.Weights:
		return pack4(idx[workload.DimK], idx[workload.DimC], idx[workload.DimR], idx[workload.DimS])
	case workload.Inputs:
		h := idx[workload.DimP]*l.StrideH + idx[workload.DimR]*l.DilationH
		w := idx[workload.DimQ]*l.StrideW + idx[workload.DimS]*l.DilationW
		return pack4(idx[workload.DimN], idx[workload.DimC], h, w)
	case workload.Outputs:
		return pack4(idx[workload.DimN], idx[workload.DimK], idx[workload.DimP], idx[workload.DimQ])
	}
	panic("refsim: unknown tensor")
}

func pack4(a, b, c, d int) int64 {
	return int64(a)<<48 | int64(b)<<32 | int64(c)<<16 | int64(d)
}

func (s *sim) run() (*Counts, error) {
	n := s.a.NumLevels()

	var stations []*station
	for _, t := range workload.AllTensors() {
		chain := s.a.KeepLevels(t)
		for pos, li := range chain {
			st := &station{
				key: Key{li, t}, pos: pos, chain: chain,
				streaming: s.a.Level(li).Streaming,
				innermost: pos == len(chain)-1,
				episodes:  map[int64]int64{},
				contents:  map[int64]map[[2]int64]map[int64]bool{},
			}
			st.multicastEdge, st.reduceEdge = true, true
			if pos > 0 {
				for j := chain[pos-1]; j < li; j++ {
					if s.a.Level(j).NoMulticast {
						st.multicastEdge = false
					}
					if s.a.Level(j).NoSpatialReduce {
						st.reduceEdge = false
					}
				}
			}
			st.multicastDown, st.reduceDown = true, true
			for j := li; j < n; j++ {
				if s.a.Level(j).NoMulticast {
					st.multicastDown = false
				}
				if s.a.Level(j).NoSpatialReduce {
					st.reduceDown = false
				}
			}
			stations = append(stations, st)
		}
	}

	tTrips := make([]int, len(s.tIdx))
	for i, ni := range s.tIdx {
		tTrips[i] = s.nest[ni].trip
	}
	sTrips := make([]int, len(s.sIdx))
	for i, ni := range s.sIdx {
		sTrips[i] = s.nest[ni].trip
	}
	fullIdx := make([]int, len(s.nest))
	bounds := s.l.Bounds()

	globalPoint := func() (workload.Point, bool) {
		for i, ni := range s.tIdx {
			fullIdx[ni] = s.tVals[i]
		}
		for i, ni := range s.sIdx {
			fullIdx[ni] = s.sVals[i]
		}
		var p workload.Point
		for i, lp := range s.nest {
			p[lp.dim] = p[lp.dim]*lp.trip + fullIdx[i]
		}
		for _, d := range workload.AllDims() {
			if p[d] >= bounds[d] {
				return p, false
			}
		}
		return p, true
	}

	// spatialID packs spatial loop values at levels in [lo, hi).
	spatialID := func(lo, hi int) int64 {
		id := int64(1)
		for i, ni := range s.sIdx {
			lv := s.nest[ni].level
			if lv >= lo && lv < hi {
				id = id*int64(sTrips[i]+1) + int64(s.sVals[i])
			}
		}
		return id
	}

	// tileKeyOf packs relevant temporal loop values at levels < li.
	tileKeyOf := func(li int, t workload.Tensor) int64 {
		key := int64(1)
		for i, ni := range s.tIdx {
			lp := s.nest[ni]
			if lp.level < li && workload.Relevant(t, lp.dim) {
				key = key*int64(tTrips[i]+1) + int64(s.tVals[i])
			}
		}
		return key
	}

	// Main enumeration: cycles (temporal odometer), instances within.
	for {
		// Episode bookkeeping at the start of each cycle.
		for _, st := range stations {
			k := tileKeyOf(st.key.Level, st.key.Tensor)
			if !st.started || k != st.lastKey {
				st.episodes[k]++
				st.lastKey = k
				st.started = true
			}
			if st.innermost {
				st.cycleAddrs = map[[2]int64]map[int64]bool{}
				st.cycleRaw = map[[2]int64]int64{}
			}
		}

		// Spatial odometer within the cycle.
		for {
			if p, ok := globalPoint(); ok {
				for _, st := range stations {
					li := st.key.Level
					t := st.key.Tensor
					addr := address(t, s.l, p)
					// Residency contents, split by parent-side and
					// edge-side coordinates.
					parentLevel := 0
					if st.pos > 0 {
						parentLevel = st.chain[st.pos-1]
					}
					split := [2]int64{spatialID(0, parentLevel), spatialID(parentLevel, li)}
					tk := st.lastKey
					byInst := st.contents[tk]
					if byInst == nil {
						byInst = map[[2]int64]map[int64]bool{}
						st.contents[tk] = byInst
					}
					set := byInst[split]
					if set == nil {
						set = map[int64]bool{}
						byInst[split] = set
					}
					set[addr] = true
					// Per-cycle demand at innermost keepers.
					if st.innermost {
						as := st.cycleAddrs[split]
						if as == nil {
							as = map[int64]bool{}
							st.cycleAddrs[split] = as
						}
						as[addr] = true
						st.cycleRaw[split]++
					}
				}
			}
			done := true
			for i := len(s.sVals) - 1; i >= 0; i-- {
				s.sVals[i]++
				if s.sVals[i] < sTrips[i] {
					done = false
					break
				}
				s.sVals[i] = 0
			}
			if done {
				break
			}
		}

		// Close out per-cycle demand.
		for _, st := range stations {
			if !st.innermost {
				continue
			}
			var cycleWords float64
			useUnion := st.multicastDown
			if st.key.Tensor == workload.Outputs {
				useUnion = st.reduceDown
			}
			for inst, as := range st.cycleAddrs {
				if useUnion {
					cycleWords += float64(len(as))
				} else {
					cycleWords += float64(st.cycleRaw[inst])
				}
			}
			st.consume += cycleWords
			if st.streaming {
				st.wsFills += cycleWords
				// The parent keeper serves the per-cycle union across
				// edge-side siblings (with multicast), or the raw sum.
				if st.multicastEdge {
					unions := map[int64]map[int64]bool{}
					for split, as := range st.cycleAddrs {
						u := unions[split[0]]
						if u == nil {
							u = map[int64]bool{}
							unions[split[0]] = u
						}
						for a := range as {
							u[a] = true
						}
					}
					for _, u := range unions {
						st.parentServe += float64(len(u))
					}
				} else {
					st.parentServe += cycleWords
				}
			}
		}

		done := true
		for i := len(s.tVals) - 1; i >= 0; i-- {
			s.tVals[i]++
			if s.tVals[i] < tTrips[i] {
				done = false
				break
			}
			s.tVals[i] = 0
		}
		if done {
			break
		}
	}

	// Derive aggregate counts.
	c := &Counts{
		TileElems: map[Key]int64{}, Fills: map[Key]float64{},
		Reads: map[Key]float64{}, Arrivals: map[Key]float64{},
		Drains: map[Key]float64{},
	}
	for _, st := range stations {
		k := st.key
		t := k.Tensor

		// Tile footprint: largest per-(instance,key) address set.
		var maxTile int64
		for _, byInst := range st.contents {
			for _, set := range byInst {
				if int64(len(set)) > maxTile {
					maxTile = int64(len(set))
				}
			}
		}
		c.TileElems[k] = maxTile

		// Per-key per-instance episode word totals.
		perKeyWords := func(union bool) float64 {
			var total float64
			for tk, byInst := range st.contents {
				eps := float64(st.episodes[tk])
				if union {
					// Union across edge-side siblings per parent-side id.
					unions := map[int64]map[int64]bool{}
					for split, set := range byInst {
						u := unions[split[0]]
						if u == nil {
							u = map[int64]bool{}
							unions[split[0]] = u
						}
						for a := range set {
							u[a] = true
						}
					}
					for _, u := range unions {
						total += eps * float64(len(u))
					}
				} else {
					for _, set := range byInst {
						total += eps * float64(len(set))
					}
				}
			}
			return total
		}

		if t.IsRead() {
			if st.streaming {
				c.Fills[k] = st.wsFills
			} else if st.pos > 0 {
				c.Fills[k] = perKeyWords(false)
			}
			if st.innermost {
				c.Reads[k] += st.consume
			}
			if st.pos > 0 {
				parent := Key{st.chain[st.pos-1], t}
				if st.streaming {
					c.Reads[parent] += st.parentServe
				} else if st.multicastEdge {
					c.Reads[parent] += perKeyWords(true)
				} else {
					c.Reads[parent] += perKeyWords(false)
				}
			}
		} else {
			if st.innermost {
				c.Arrivals[k] += st.consume
			}
			if st.pos > 0 {
				drains := perKeyWords(false)
				c.Drains[k] = drains
				parent := Key{st.chain[st.pos-1], t}
				if st.reduceEdge {
					c.Arrivals[parent] += perKeyWords(true)
				} else {
					c.Arrivals[parent] += drains
				}
			}
		}
	}
	return c, nil
}
