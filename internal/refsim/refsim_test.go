package refsim

import (
	"math"
	"math/rand"
	"testing"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/workload"
)

func lib(t *testing.T) *components.Library {
	t.Helper()
	l := components.NewLibrary()
	d, err := components.Build("dram", "DRAM", components.Params{"pj_per_bit": 1})
	if err != nil {
		t.Fatal(err)
	}
	l.MustAdd(d)
	s, err := components.Build("sram", "Buf", components.Params{"capacity_bits": 1 << 24, "access_bits": 8})
	if err != nil {
		t.Fatal(err)
	}
	l.MustAdd(s)
	r, err := components.Build("regfile", "Reg", components.Params{"access_bits": 8})
	if err != nil {
		t.Fatal(err)
	}
	l.MustAdd(r)
	return l
}

// compare runs both engines and checks every shared quantity.
func compare(t *testing.T, a *arch.Arch, l *workload.Layer, m *mapping.Mapping, inputTol float64) {
	t.Helper()
	res, err := model.Evaluate(a, l, m, model.Options{})
	if err != nil {
		t.Fatalf("analytic: %v\n%s", err, m.String())
	}
	sim, err := Run(a, l, m)
	if err != nil {
		t.Fatalf("sim: %v\n%s", err, m.String())
	}
	eq := func(what string, got, want, tol float64) {
		if want == 0 && got == 0 {
			return
		}
		rel := math.Abs(got-want) / math.Max(math.Abs(want), 1)
		if rel > tol {
			t.Errorf("%s: analytic %g vs sim %g (mapping:\n%s)", what, got, want, m.String())
		}
	}
	for _, tensor := range workload.AllTensors() {
		for _, li := range a.KeepLevels(tensor) {
			k := Key{li, tensor}
			name := a.Level(li).Name
			u := res.UsageOf(name, tensor)
			if u == nil {
				t.Fatalf("no usage for %s/%v", name, tensor)
			}
			tol := 0.0
			if tensor == workload.Inputs {
				tol = inputTol
			}
			eq(name+"/"+tensor.String()+"/tile", float64(u.TileElems), float64(sim.TileElems[k]), tol)
			if tensor.IsRead() {
				eq(name+"/"+tensor.String()+"/fills", u.Fills, sim.Fills[k], tol)
				// Analytic Reads at a keeper = child distinct fills +
				// consumption; sim.Reads mirrors both.
				eq(name+"/"+tensor.String()+"/reads", u.Reads, sim.Reads[k], tol)
			} else {
				eq(name+"/outputs/arrivals", u.Arrivals, sim.Arrivals[k], 0)
				eq(name+"/outputs/drains", u.Drains, sim.Drains[k], 0)
			}
		}
	}
}

// randPerm returns a random permutation of all dims.
func randPerm(rng *rand.Rand) []workload.Dim {
	p := workload.AllDims()
	rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// splitRandomly factors bound across n levels of temporal factors.
func splitRandomly(rng *rand.Rand, bound, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	rem := bound
	for rem > 1 {
		divs := mapping.Divisors(rem)
		d := divs[1+rng.Intn(len(divs)-1)] // skip 1
		out[rng.Intn(n)] *= d
		rem /= d
	}
	return out
}

func TestTwoLevelRandomMappings(t *testing.T) {
	a := &arch.Arch{
		Name: "two", Lib: lib(t), ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	l := workload.NewConv("rand", 1, 4, 3, 4, 4, 2, 2, 1, 0)
	for trial := 0; trial < 40; trial++ {
		m := mapping.New(a)
		for _, d := range workload.AllDims() {
			f := splitRandomly(rng, l.Bound(d), 2)
			m.Levels[0].Temporal[d] = f[0]
			m.Levels[1].Temporal[d] = f[1]
		}
		m.Levels[0].Perm = randPerm(rng)
		m.Levels[1].Perm = randPerm(rng)
		compare(t, a, &l, m, 0)
	}
}

func TestThreeLevelSpatialRandomMappings(t *testing.T) {
	mk := func(spatialDim workload.Dim, count int) *arch.Arch {
		a := &arch.Arch{
			Name: "three", Lib: lib(t), ClockGHz: 1, DefaultWordBits: 8,
			Levels: []arch.Level{
				{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
				{
					Name: "Buf", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
					Spatial: []arch.SpatialFactor{arch.Fixed(spatialDim, count)},
				},
				{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
			},
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		return a
	}
	rng := rand.New(rand.NewSource(11))
	// Spatial over K (input multicast), C (spatial reduction), N.
	for _, sd := range []workload.Dim{workload.DimK, workload.DimC, workload.DimN} {
		a := mk(sd, 2)
		l := workload.NewConv("rand", 2, 4, 2, 3, 3, 2, 2, 1, 0)
		for trial := 0; trial < 25; trial++ {
			m := mapping.New(a)
			for _, d := range workload.AllDims() {
				bound := l.Bound(d)
				if d == sd {
					bound /= 2 // rigid spatial factor covers a factor of 2
				}
				f := splitRandomly(rng, bound, 3)
				m.Levels[0].Temporal[d] = f[0]
				m.Levels[1].Temporal[d] = f[1]
				m.Levels[2].Temporal[d] = f[2]
			}
			m.Levels[0].Perm = randPerm(rng)
			m.Levels[1].Perm = randPerm(rng)
			m.Levels[2].Perm = randPerm(rng)
			compare(t, a, &l, m, 0)
		}
	}
}

func TestWeightStationBypassRandomMappings(t *testing.T) {
	// Inner level keeps only weights; inputs/outputs turn around at Buf.
	a := &arch.Arch{
		Name: "wst", Lib: lib(t), ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Buf", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
				Spatial: []arch.SpatialFactor{arch.Fixed(workload.DimK, 2)},
			},
			{Name: "WReg", Keeps: workload.NewTensorSet(workload.Weights), AccessComponent: "Reg"},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	l := workload.NewConv("rand", 1, 4, 3, 3, 3, 2, 2, 1, 0)
	for trial := 0; trial < 25; trial++ {
		m := mapping.New(a)
		for _, d := range workload.AllDims() {
			bound := l.Bound(d)
			if d == workload.DimK {
				bound /= 2
			}
			f := splitRandomly(rng, bound, 3)
			m.Levels[0].Temporal[d] = f[0]
			m.Levels[1].Temporal[d] = f[1]
			m.Levels[2].Temporal[d] = f[2]
		}
		m.Levels[0].Perm = randPerm(rng)
		m.Levels[1].Perm = randPerm(rng)
		m.Levels[2].Perm = randPerm(rng)
		compare(t, a, &l, m, 0)
	}
}

func TestOverlapSharingMatchesUnionExactly(t *testing.T) {
	// One level of Q-spatial fan-out over a 3-wide filter with sharing:
	// the analytic halo ratio must equal the simulated union.
	a := &arch.Arch{
		Name: "share", Lib: lib(t), ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Buf", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
				Spatial:             []arch.SpatialFactor{arch.Fixed(workload.DimQ, 4)},
				InputOverlapSharing: true,
			},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, stride := range []int{1, 2} {
		l := workload.NewConv("share", 1, 2, 2, 2, 4, 3, 3, stride, 0)
		m := mapping.New(a)
		m.Levels[0].Temporal[workload.DimK] = 2
		m.Levels[0].Temporal[workload.DimC] = 2
		m.Levels[0].Temporal[workload.DimP] = 2
		m.Levels[2].Temporal[workload.DimR] = 3
		m.Levels[2].Temporal[workload.DimS] = 3
		compare(t, a, &l, m, 0)
	}
}

func TestStreamingStationAgainstSim(t *testing.T) {
	// Mini-Albireo input path: Glb -> streaming modulated-input station
	// with K-broadcast below it.
	a := &arch.Arch{
		Name: "mini", Lib: lib(t), ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{Name: "Glb", Keeps: workload.AllTensorSet(), AccessComponent: "Buf"},
			{
				Name: "Mod", Keeps: workload.NewTensorSet(workload.Inputs), Streaming: true,
				Spatial:             []arch.SpatialFactor{arch.Fixed(workload.DimK, 2), arch.Fixed(workload.DimS, 3)},
				InputOverlapSharing: true,
			},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Careful: Glb keeps inputs and outputs innermost for those tensors.
	l := workload.NewConv("mini", 1, 2, 2, 2, 4, 1, 3, 1, 0)
	m := mapping.New(a)
	m.Levels[0].Temporal[workload.DimC] = 2
	m.Levels[1].Temporal[workload.DimK] = 1
	m.Levels[1].Temporal[workload.DimP] = 2
	m.Levels[1].Temporal[workload.DimQ] = 4
	// Inputs tolerance: streaming + sharing interact; analytic uses the
	// halo formula per cycle, the sim counts exact unions.
	compare(t, a, &l, m, 0.02)
}

func TestNoMulticastMatchesSim(t *testing.T) {
	a := &arch.Arch{
		Name: "nomc", Lib: lib(t), ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Buf", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
				Spatial:     []arch.SpatialFactor{arch.Fixed(workload.DimK, 2)},
				NoMulticast: true, NoSpatialReduce: true,
			},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("nomc", 1, 4, 2, 2, 2, 1, 1, 1, 0)
	m := mapping.New(a)
	m.Levels[0].Temporal[workload.DimK] = 2
	m.Levels[0].Temporal[workload.DimC] = 2
	m.Levels[2].Temporal[workload.DimP] = 2
	m.Levels[2].Temporal[workload.DimQ] = 2
	compare(t, a, &l, m, 0)
}

func TestSimRejectsHugeSpaces(t *testing.T) {
	a := &arch.Arch{
		Name: "huge", Lib: lib(t), ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("huge", 1, 512, 512, 64, 64, 3, 3, 1, 1)
	m := mapping.New(a)
	for _, d := range workload.AllDims() {
		m.Levels[0].Temporal[d] = l.Bound(d)
	}
	if _, err := Run(a, &l, m); err == nil {
		t.Error("Run accepted a huge space")
	}
}

func TestAlbireoStyleOutputChainAgainstSim(t *testing.T) {
	// Mirror Albireo's output path: two inner output-only keepers with a
	// reduction-dimension fan-out between compute and the first keeper
	// (the optical wavelength sum) and another between the keepers (the
	// analog OR-lane merge).
	a := &arch.Arch{
		Name: "outchain", Lib: lib(t), ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{Name: "Glb", Keeps: workload.AllTensorSet(), AccessComponent: "Buf"},
			{
				Name: "Accum", Keeps: workload.NewTensorSet(workload.Outputs),
				Spatial: []arch.SpatialFactor{arch.Fixed(workload.DimC, 2)},
			},
			{
				Name: "PDStation", Keeps: workload.NewTensorSet(workload.Outputs),
				Spatial: []arch.SpatialFactor{
					arch.Fixed(workload.DimS, 2),
					arch.Fixed(workload.DimR, 2),
				},
			},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("oc", 1, 2, 4, 3, 3, 2, 2, 1, 0)
	m := mapping.New(a)
	m.Levels[0].Temporal[workload.DimK] = 2
	m.Levels[1].Temporal[workload.DimC] = 2
	m.Levels[1].Temporal[workload.DimP] = 3
	m.Levels[1].Temporal[workload.DimQ] = 3
	compare(t, a, &l, m, 0)

	// The analytic structure on top of the agreement: the PD station
	// receives one merged partial per 4 MACs (the 2x2 wavelength sum),
	// and Accum per 8 (the extra C-lane merge).
	res, err := model.Evaluate(a, &l, m, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	macs := float64(l.MACs())
	pd := res.UsageOf("PDStation", workload.Outputs)
	if pd.Arrivals != macs/4 {
		t.Errorf("PD arrivals = %g, want %g", pd.Arrivals, macs/4)
	}
	acc := res.UsageOf("Accum", workload.Outputs)
	if acc.Arrivals != macs/8 {
		t.Errorf("Accum arrivals = %g, want %g", acc.Arrivals, macs/8)
	}
}

func TestStridedLayersAgainstSim(t *testing.T) {
	// Stride-2 convolutions exercise the halo geometry hardest: window
	// overlap vanishes and input tiles become gapped. The analytic halo
	// formula must still match the simulated address sets.
	a := &arch.Arch{
		Name: "strided", Lib: lib(t), ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Buf", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
				Spatial:             []arch.SpatialFactor{arch.Fixed(workload.DimQ, 2)},
				InputOverlapSharing: true,
			},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, stride := range []int{2, 3} {
		l := workload.NewConv("st", 1, 2, 2, 2, 4, 3, 3, stride, 0)
		m := mapping.New(a)
		m.Levels[0].Temporal[workload.DimK] = 2
		m.Levels[0].Temporal[workload.DimC] = 2
		m.Levels[1].Temporal[workload.DimQ] = 2
		m.Levels[2].Temporal[workload.DimP] = 2
		m.Levels[2].Temporal[workload.DimR] = 3
		m.Levels[2].Temporal[workload.DimS] = 3
		compare(t, a, &l, m, 0)
	}
}
