package mapper

import (
	"reflect"
	"sync"
	"testing"

	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

func TestCacheHitIsBitIdentical(t *testing.T) {
	a := testArch(t, 1<<20)
	s, err := NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("conv", 1, 8, 8, 8, 8, 3, 3, 1, 1)
	opts := Options{Budget: 150, Seed: 1, Workers: 2}

	plain, err := s.Search(&l, opts)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewCache()
	opts.Cache = cache
	first, err := s.Search(&l, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Same shape under another name: served from cache, relabeled.
	renamed := l
	renamed.Name = "conv_again"
	second, err := s.Search(&renamed, opts)
	if err != nil {
		t.Fatal(err)
	}

	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits %d misses, want 1/1", hits, misses)
	}
	for _, got := range []*Best{first, second} {
		if got.Result.TotalPJ != plain.Result.TotalPJ ||
			got.Result.Cycles != plain.Result.Cycles ||
			got.Evaluations != plain.Evaluations {
			t.Errorf("cached search diverged: %+v vs %+v", got.Result, plain.Result)
		}
		if got.Mapping.String() != plain.Mapping.String() {
			t.Errorf("cached mapping differs:\n%s\nvs\n%s", got.Mapping, plain.Mapping)
		}
	}
	if second.Result.Layer != "conv_again" {
		t.Errorf("cached result not relabeled: %q", second.Result.Layer)
	}
	if second.Mapping == first.Mapping || second.Result == first.Result {
		t.Error("cache returned aliased pointers")
	}
}

func TestCacheKeysDiscriminate(t *testing.T) {
	a := testArch(t, 1<<20)
	s, err := NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("conv", 1, 8, 8, 8, 8, 3, 3, 1, 1)
	cache := NewCache()

	run := func(opts Options, layer workload.Layer) {
		opts.Cache = cache
		if _, err := s.Search(&layer, opts); err != nil {
			t.Fatal(err)
		}
	}
	run(Options{Budget: 100, Seed: 1}, l)
	run(Options{Budget: 100, Seed: 2}, l)                         // seed differs
	run(Options{Budget: 120, Seed: 1}, l)                         // budget differs
	run(Options{Budget: 100, Seed: 1, Objective: MinDelay}, l)    // objective differs
	other := workload.NewConv("conv", 1, 16, 8, 8, 8, 3, 3, 1, 1) // shape differs
	run(Options{Budget: 100, Seed: 1}, other)
	if hits, misses := cache.Stats(); hits != 0 || misses != 5 {
		t.Errorf("stats = %d hits %d misses, want 0/5", hits, misses)
	}

	// A different architecture must not collide even for the same layer
	// and options.
	b := testArch(t, 1<<19)
	sb, err := NewSession(b)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Budget: 100, Seed: 1, Cache: cache}
	if _, err := sb.Search(&l, opts); err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != 0 {
		t.Errorf("cross-arch collision: %d hits", hits)
	}
}

func TestCacheSeedMappingsKeyed(t *testing.T) {
	a := testArch(t, 1<<20)
	s, err := NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("conv", 1, 8, 8, 8, 8, 3, 3, 1, 1)
	cache := NewCache()
	base := Options{Budget: 100, Seed: 1, Cache: cache}
	if _, err := s.Search(&l, base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(&l, base); err != nil { // identical: hit
		t.Fatal(err)
	}
	// Different seed mappings must key differently: searches starting
	// from different seeds can end elsewhere.
	seeded := base
	seed := mapping.New(a)
	seed.Levels[0].Temporal[workload.DimK] = 8
	seeded.Seeds = []*mapping.Mapping{seed}
	if _, err := s.Search(&l, seeded); err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 2 {
		t.Fatalf("stats = %d hits %d misses, want 1/2", hits, misses)
	}
}

// TestCacheLimitFlushes: a bounded cache epoch-flushes past its limit
// instead of growing forever (the server's process-wide cache).
func TestCacheLimitFlushes(t *testing.T) {
	a := testArch(t, 1<<20)
	s, err := NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCacheLimit(2)
	l := workload.NewConv("conv", 1, 8, 8, 8, 8, 3, 3, 1, 1)
	for _, seed := range []int64{1, 2, 3} { // three distinct keys
		if _, err := s.Search(&l, Options{Budget: 60, Seed: seed, Cache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	if len(cache.m) > 2 {
		t.Errorf("cache holds %d entries past limit 2", len(cache.m))
	}
	// The first key was flushed: re-searching it misses again but stays
	// bit-identical.
	before, _ := cache.Stats()
	if _, err := s.Search(&l, Options{Budget: 60, Seed: 1, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if after, _ := cache.Stats(); after != before {
		t.Error("flushed entry unexpectedly hit")
	}
}

func TestCacheConcurrentSingleComputation(t *testing.T) {
	a := testArch(t, 1<<20)
	s, err := NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("conv", 1, 8, 8, 8, 8, 3, 3, 1, 1)
	cache := NewCache()
	opts := Options{Budget: 150, Seed: 1, Workers: 2, Cache: cache}

	const callers = 8
	results := make([]*Best, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := s.Search(&l, opts)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = b
		}(i)
	}
	wg.Wait()
	hits, misses := cache.Stats()
	if misses != 1 || hits != callers-1 {
		t.Errorf("stats = %d hits %d misses, want %d/1", hits, misses, callers-1)
	}
	for i := 1; i < callers; i++ {
		if results[i] == nil || results[0] == nil {
			t.Fatal("missing result")
		}
		if !reflect.DeepEqual(results[i].Result, results[0].Result) {
			t.Errorf("caller %d diverged", i)
		}
	}
}
