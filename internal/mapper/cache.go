package mapper

import (
	"sync"

	"photoloop/internal/workload"
)

// Key identifies one deduplicatable search: the architecture's
// fingerprint, the layer's shape fingerprint (name excluded — equal shapes
// search identically), and the fingerprint of every option that can change
// the outcome (objective, budget, seed, workers, eval flags, seed
// mappings). Keys are content addresses: equal keys mean bit-identical
// search outcomes, which is what lets a Persister serve results across
// processes and restarts.
type Key struct {
	// Arch is arch.Fingerprint of the searched architecture.
	Arch uint64
	// Layer is the layer's ShapeFingerprint (name excluded).
	Layer uint64
	// Opts fingerprints every outcome-changing search option.
	Opts uint64
}

// Persister is a durable second tier behind a Cache: Load serves a
// previously persisted search result and Store writes a freshly computed
// one through. Implementations must return results bit-identical to the
// original computation (the store package's codec round-trips every field
// exactly) and must be safe for concurrent use. A Load that cannot prove
// integrity of a record must miss, never guess — the cache recomputes on
// a miss, so corruption costs time, not correctness.
type Persister interface {
	// Load returns the persisted Best for the key, or false. The returned
	// value is owned by the cache (callers receive clones).
	Load(k Key) (*Best, bool)
	// Store persists a computed Best. Errors are reported through the
	// cache's tier stats; persistence is best-effort and never fails the
	// search itself.
	Store(k Key, b *Best) error
}

// Cache deduplicates identical (architecture, layer shape, options)
// searches across callers: design-space sweeps evaluate many variants whose
// networks repeat layer shapes (all of ResNet's basic blocks, VGG's paired
// convolutions), and with a shared Cache each distinct search runs exactly
// once. Because a search is deterministic for a fixed (Seed, Workers) pair,
// serving a cached result is bit-identical to re-running the search.
//
// A Cache is safe for concurrent use; concurrent requests for the same key
// block on a single computation rather than duplicating it. An unbounded
// Cache (NewCache) suits sweep-scoped use, where the grid bounds the key
// space; long-lived services should bound it with NewCacheLimit.
//
// SetPersister adds a durable second tier: lookups missing in memory
// consult the persister before computing, and computed results are written
// through — so a restarted process (or a different one sharing the store)
// warm-starts from every search any prior run completed.
type Cache struct {
	mu    sync.Mutex
	m     map[Key]*cacheEntry
	limit int
	disk  Persister

	hits      int64
	diskHits  int64
	misses    int64
	diskFails int64
}

type cacheEntry struct {
	once     sync.Once
	best     *Best
	err      error
	fromDisk bool
}

// NewCache returns an empty, unbounded search-result cache.
func NewCache() *Cache {
	return &Cache{m: make(map[Key]*cacheEntry)}
}

// NewCacheLimit returns a cache holding at most limit entries: inserting
// past the limit flushes the cache and starts fresh (an epoch flush —
// correctness is unaffected, flushed searches are simply recomputed).
// A limit <= 0 means unbounded.
func NewCacheLimit(limit int) *Cache {
	c := NewCache()
	c.limit = limit
	return c
}

// SetPersister installs (or, with nil, removes) the cache's durable
// second tier. Install it before sharing the cache — the setter is not
// synchronized with in-flight searches.
func (c *Cache) SetPersister(p Persister) { c.disk = p }

// Stats returns how many searches were served from the cache (memory and
// disk tiers together) versus computed. A request that joins an in-flight
// computation counts as a hit.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits + c.diskHits, c.misses
}

// TierStats breaks the cache's traffic down by tier.
type TierStats struct {
	// Hits counts lookups served from memory (including joins of
	// in-flight computations).
	Hits int64 `json:"hits"`
	// DiskHits counts lookups served by the persister.
	DiskHits int64 `json:"disk_hits"`
	// Misses counts searches actually computed.
	Misses int64 `json:"misses"`
	// DiskFails counts write-through attempts the persister rejected
	// (persistence is best-effort; the computed result was still served).
	DiskFails int64 `json:"disk_fails,omitempty"`
}

// TierStats returns the per-tier counters.
func (c *Cache) TierStats() TierStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return TierStats{Hits: c.hits, DiskHits: c.diskHits, Misses: c.misses, DiskFails: c.diskFails}
}

// search runs (or joins, or reuses) the deduplicated search for the layer.
// The options must already have defaults applied, since the defaults feed
// the key.
func (c *Cache) search(s *Session, l *workload.Layer, o Options) (*Best, error) {
	key := Key{Arch: s.fp, Layer: l.ShapeFingerprint(), Opts: o.fingerprint()}
	c.mu.Lock()
	e, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		if c.limit > 0 && len(c.m) >= c.limit {
			c.m = make(map[Key]*cacheEntry)
		}
		e = &cacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		if c.disk != nil {
			if b, ok := c.disk.Load(key); ok {
				e.best, e.fromDisk = b, true
				// The creator was provisionally counted as a miss; the
				// disk tier absorbed the computation, so move the count.
				c.mu.Lock()
				c.misses--
				c.diskHits++
				c.mu.Unlock()
				return
			}
		}
		e.best, e.err = s.search(l, o)
		if e.err == nil && c.disk != nil {
			if err := c.disk.Store(key, e.best); err != nil {
				c.mu.Lock()
				c.diskFails++
				c.mu.Unlock()
			}
		}
	})
	if e.err != nil {
		return nil, e.err
	}
	return e.best.CloneFor(l.Name), nil
}

// CloneFor deep-copies a best for a caller evaluating a same-shaped layer
// under a different name: the mapping and counts are shape properties, only
// the result's layer label differs. Network evaluators use it to search
// one representative per distinct layer shape and reuse the outcome for
// the duplicates — bit-identical to re-running the search.
func (b *Best) CloneFor(layer string) *Best {
	out := &Best{
		Mapping:     b.Mapping.Clone(),
		Result:      b.Result.Clone(),
		Evaluations: b.Evaluations,
		Stats:       b.Stats,
	}
	out.Result.Layer = layer
	return out
}

// fingerprint hashes every option that can alter a search outcome. The
// Cache pointer itself is deliberately excluded.
func (o *Options) fingerprint() uint64 {
	h := workload.NewFnv64a()
	h.Mix(uint64(o.Objective))
	h.Mix(uint64(o.Budget))
	h.Mix(uint64(o.Seed))
	h.Mix(uint64(o.Workers))
	flags := uint64(0)
	if o.Eval.ChargeStatic {
		flags |= 1
	}
	if o.Eval.SkipValidate {
		flags |= 2
	}
	if o.Eval.FullLedger {
		flags |= 4
	}
	h.Mix(flags)
	h.Mix(uint64(len(o.Seeds)))
	for _, seed := range o.Seeds {
		h.Mix(seed.Fingerprint())
	}
	// Warm starts change which candidates join the pool, so they are part
	// of the search identity. (noPrune/noDelta deliberately are not: both
	// are proven behavior preserving.)
	h.Mix(uint64(len(o.WarmStarts)))
	for _, w := range o.WarmStarts {
		if w != nil {
			h.Mix(w.Fingerprint())
		}
	}
	return h.Sum()
}
