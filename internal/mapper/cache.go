package mapper

import (
	"sync"

	"photoloop/internal/workload"
)

// cacheKey identifies one deduplicatable search: the architecture's
// fingerprint, the layer's shape fingerprint (name excluded — equal shapes
// search identically), and the fingerprint of every option that can change
// the outcome (objective, budget, seed, workers, eval flags, seed
// mappings).
type cacheKey struct {
	arch  uint64
	layer uint64
	opts  uint64
}

// Cache deduplicates identical (architecture, layer shape, options)
// searches across callers: design-space sweeps evaluate many variants whose
// networks repeat layer shapes (all of ResNet's basic blocks, VGG's paired
// convolutions), and with a shared Cache each distinct search runs exactly
// once. Because a search is deterministic for a fixed (Seed, Workers) pair,
// serving a cached result is bit-identical to re-running the search.
//
// A Cache is safe for concurrent use; concurrent requests for the same key
// block on a single computation rather than duplicating it. An unbounded
// Cache (NewCache) suits sweep-scoped use, where the grid bounds the key
// space; long-lived services should bound it with NewCacheLimit.
type Cache struct {
	mu    sync.Mutex
	m     map[cacheKey]*cacheEntry
	limit int

	hits   int64
	misses int64
}

type cacheEntry struct {
	once sync.Once
	best *Best
	err  error
}

// NewCache returns an empty, unbounded search-result cache.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]*cacheEntry)}
}

// NewCacheLimit returns a cache holding at most limit entries: inserting
// past the limit flushes the cache and starts fresh (an epoch flush —
// correctness is unaffected, flushed searches are simply recomputed).
// A limit <= 0 means unbounded.
func NewCacheLimit(limit int) *Cache {
	c := NewCache()
	c.limit = limit
	return c
}

// Stats returns how many searches were served from the cache versus
// computed. A request that joins an in-flight computation counts as a hit.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// search runs (or joins, or reuses) the deduplicated search for the layer.
// The options must already have defaults applied, since the defaults feed
// the key.
func (c *Cache) search(s *Session, l *workload.Layer, o Options) (*Best, error) {
	key := cacheKey{arch: s.fp, layer: l.ShapeFingerprint(), opts: o.fingerprint()}
	c.mu.Lock()
	e, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		if c.limit > 0 && len(c.m) >= c.limit {
			c.m = make(map[cacheKey]*cacheEntry)
		}
		e = &cacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.best, e.err = s.search(l, o) })
	if e.err != nil {
		return nil, e.err
	}
	return e.best.CloneFor(l.Name), nil
}

// CloneFor deep-copies a best for a caller evaluating a same-shaped layer
// under a different name: the mapping and counts are shape properties, only
// the result's layer label differs. Network evaluators use it to search
// one representative per distinct layer shape and reuse the outcome for
// the duplicates — bit-identical to re-running the search.
func (b *Best) CloneFor(layer string) *Best {
	out := &Best{
		Mapping:     b.Mapping.Clone(),
		Result:      b.Result.Clone(),
		Evaluations: b.Evaluations,
		Stats:       b.Stats,
	}
	out.Result.Layer = layer
	return out
}

// fingerprint hashes every option that can alter a search outcome. The
// Cache pointer itself is deliberately excluded.
func (o *Options) fingerprint() uint64 {
	h := workload.NewFnv64a()
	h.Mix(uint64(o.Objective))
	h.Mix(uint64(o.Budget))
	h.Mix(uint64(o.Seed))
	h.Mix(uint64(o.Workers))
	flags := uint64(0)
	if o.Eval.ChargeStatic {
		flags |= 1
	}
	if o.Eval.SkipValidate {
		flags |= 2
	}
	if o.Eval.FullLedger {
		flags |= 4
	}
	h.Mix(flags)
	h.Mix(uint64(len(o.Seeds)))
	for _, seed := range o.Seeds {
		h.Mix(seed.Fingerprint())
	}
	// Warm starts change which candidates join the pool, so they are part
	// of the search identity. (noPrune/noDelta deliberately are not: both
	// are proven behavior preserving.)
	h.Mix(uint64(len(o.WarmStarts)))
	for _, w := range o.WarmStarts {
		if w != nil {
			h.Mix(w.Fingerprint())
		}
	}
	return h.Sum()
}
