// Package mapper searches the mapping space of a layer on an architecture
// for schedules minimizing energy, delay, or energy-delay product, in the
// spirit of Timeloop's mapper: the paper relies on the mapper to find
// mappings that exploit available reuse to minimize expensive cross-domain
// conversions and DRAM traffic.
//
// The search combines (1) exhaustive enumeration of the architecture's
// rigid spatial-factor assignments, (2) randomized temporal factorizations
// with padding-aware candidates, (3) a small library of stationarity-driven
// loop permutations, and (4) greedy hill climbing on the best random
// seeds, optionally across parallel workers with a deterministic merge.
package mapper

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"photoloop/internal/arch"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/workload"
)

// Objective selects what the search minimizes.
type Objective uint8

// Objectives.
const (
	MinEnergy Objective = iota // total picojoules
	MinDelay                   // cycles
	MinEDP                     // energy-delay product
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MinEnergy:
		return "energy"
	case MinDelay:
		return "delay"
	case MinEDP:
		return "edp"
	}
	return fmt.Sprintf("Objective(%d)", uint8(o))
}

// Options configures a search.
type Options struct {
	// Objective is what to minimize (default MinEnergy).
	Objective Objective
	// Budget caps the number of model evaluations (default 2000).
	Budget int
	// Seed makes the search deterministic (default 1).
	Seed int64
	// Workers parallelizes the search (default GOMAXPROCS, capped at 8).
	// Results are deterministic for a fixed (Seed, Workers) pair.
	Workers int
	// Eval forwards evaluation options to the model.
	Eval model.Options
	// Seeds are mappings evaluated before random exploration (e.g. an
	// architecture's canonical schedules); the hill climber starts from
	// the best of seeds and random samples.
	Seeds []*mapping.Mapping
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Budget <= 0 {
		out.Budget = 2000
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
		if out.Workers > 8 {
			out.Workers = 8
		}
	}
	out.Eval.SkipValidate = false
	return out
}

// Best is a search outcome.
type Best struct {
	Mapping     *mapping.Mapping
	Result      *model.Result
	Evaluations int
}

// Score returns the objective value of a result.
func Score(obj Objective, r *model.Result) float64 {
	switch obj {
	case MinDelay:
		return r.Cycles
	case MinEDP:
		return r.TotalPJ * r.Cycles
	default:
		return r.TotalPJ
	}
}

// stationarity-driven permutation candidates: placing a tensor's
// irrelevant dimensions innermost keeps that tensor's inner tiles
// stationary across those loops.
var permCandidates = [][]workload.Dim{
	// Output stationary: reduction loops innermost.
	{workload.DimN, workload.DimK, workload.DimP, workload.DimQ, workload.DimC, workload.DimR, workload.DimS},
	// Weight stationary: N, P, Q innermost.
	{workload.DimK, workload.DimC, workload.DimR, workload.DimS, workload.DimN, workload.DimP, workload.DimQ},
	// Input stationary: K innermost.
	{workload.DimC, workload.DimP, workload.DimQ, workload.DimR, workload.DimS, workload.DimN, workload.DimK},
}

// Search finds the best mapping for the layer under the options.
func Search(a *arch.Arch, l *workload.Layer, opts Options) (*Best, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	assignments := enumerateSpatialAssignments(a)
	if len(assignments) == 0 {
		return nil, errors.New("mapper: no spatial assignments")
	}

	type outcome struct {
		best  *Best
		evals int
	}
	results := make([]outcome, o.Workers)
	var wg sync.WaitGroup
	perWorker := o.Budget / o.Workers
	if perWorker < 1 {
		perWorker = 1
	}
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(w)*7919))
			results[w] = searchWorker(a, l, o, assignments, rng, perWorker)
		}(w)
	}
	wg.Wait()

	var best *Best
	evals := 0
	for w := range results {
		evals += results[w].evals
		if results[w].best == nil {
			continue
		}
		if best == nil || better(o.Objective, results[w].best, best) {
			best = results[w].best
		}
	}
	if best == nil {
		return nil, fmt.Errorf("mapper: no valid mapping found for %s on %s", l.Name, a.Name)
	}
	best.Evaluations = evals
	return best, nil
}

// better compares candidates with deterministic tie breaks: the objective,
// then total energy (a bandwidth-bound layer has many equal-delay mappings
// — prefer the cheapest), then utilization, then a stable textual order.
func better(obj Objective, x, y *Best) bool {
	sx, sy := Score(obj, x.Result), Score(obj, y.Result)
	if sx != sy {
		return sx < sy
	}
	if x.Result.TotalPJ != y.Result.TotalPJ {
		return x.Result.TotalPJ < y.Result.TotalPJ
	}
	if x.Result.Utilization != y.Result.Utilization {
		return x.Result.Utilization > y.Result.Utilization
	}
	return x.Mapping.String() < y.Mapping.String()
}

func searchWorker(a *arch.Arch, l *workload.Layer, o Options, assignments [][]workload.Dim, rng *rand.Rand, budget int) (out struct {
	best  *Best
	evals int
}) {
	evalOpts := o.Eval
	evalOpts.SkipValidate = false
	try := func(m *mapping.Mapping) *model.Result {
		if out.evals >= budget {
			return nil
		}
		out.evals++
		if err := m.Validate(a, l); err != nil {
			return nil
		}
		res, err := model.Evaluate(a, l, m, model.Options{SkipValidate: true, ChargeStatic: evalOpts.ChargeStatic})
		if err != nil {
			return nil
		}
		return res
	}
	consider := func(m *mapping.Mapping, res *model.Result) {
		if res == nil {
			return
		}
		cand := &Best{Mapping: m, Result: res}
		if out.best == nil || better(o.Objective, cand, out.best) {
			out.best = cand
		}
	}

	// Phase 0: caller-provided seed mappings.
	for _, seed := range o.Seeds {
		m := seed.Clone()
		consider(m, try(m))
	}

	// Phase 1: random sampling across spatial assignments. The canonical
	// assignment (every factor on its first-listed dimension) is the
	// architect's intended use and gets half the samples; the rest
	// explore alternates (how FC layers find channel-parallel slots).
	explorationBudget := budget * 7 / 10
	for out.evals < explorationBudget {
		assign := assignments[0]
		if rng.Intn(2) == 0 {
			assign = assignments[rng.Intn(len(assignments))]
		}
		m := randomMapping(a, l, assign, rng)
		consider(m, try(m))
	}

	// Phase 2: hill climb from the best mapping found.
	if out.best == nil {
		// Fall back to the trivial all-outer mapping per assignment.
		for _, assign := range assignments {
			m := outerMapping(a, l, assign)
			consider(m, try(m))
		}
	}
	if out.best == nil {
		return out
	}
	cur := out.best
	for out.evals < budget {
		improved := false
		for _, neighbor := range neighbors(a, l, cur.Mapping, rng) {
			res := try(neighbor)
			if res == nil {
				continue
			}
			cand := &Best{Mapping: neighbor, Result: res}
			if better(o.Objective, cand, cur) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	consider(cur.Mapping, cur.Result)
	return out
}

// enumerateSpatialAssignments expands the cross product of every rigid
// spatial factor's allowed dimensions, capped to avoid explosion.
func enumerateSpatialAssignments(a *arch.Arch) [][]workload.Dim {
	var factors []arch.SpatialFactor
	for i := 0; i < a.NumLevels(); i++ {
		factors = append(factors, a.Level(i).Spatial...)
	}
	out := [][]workload.Dim{{}}
	for _, f := range factors {
		var next [][]workload.Dim
		for _, prefix := range out {
			for _, d := range f.Dims {
				assign := append(append([]workload.Dim(nil), prefix...), d)
				next = append(next, assign)
			}
		}
		out = next
		if len(out) > 4096 {
			out = out[:4096]
		}
	}
	return out
}

// applyAssignment distributes a flat assignment vector back to levels.
func applyAssignment(a *arch.Arch, m *mapping.Mapping, assign []workload.Dim) {
	idx := 0
	for i := 0; i < a.NumLevels(); i++ {
		n := len(a.Level(i).Spatial)
		m.Levels[i].SpatialChoice = append([]workload.Dim(nil), assign[idx:idx+n]...)
		idx += n
	}
}

// remaining returns the per-dim temporal bound left after spatial factors.
func remaining(a *arch.Arch, m *mapping.Mapping, l *workload.Layer) workload.Point {
	spatial := workload.Ones()
	for i := 0; i < a.NumLevels(); i++ {
		spatial = spatial.Mul(m.SpatialAt(a, i))
	}
	rem := workload.Ones()
	for _, d := range workload.AllDims() {
		rem[d] = workload.CeilDiv(l.Bound(d), spatial[d])
	}
	return rem
}

// minLevels returns, per dimension, the outermost level at which loops over
// that dimension may legally appear: the innermost of the outermost-keeper
// levels of the tensors the dimension addresses. (Loops above a tensor's
// outermost keeper would demand data from a level that does not store it —
// this is what pins activations on chip in fusion studies.)
func minLevels(a *arch.Arch) workload.Point {
	var min workload.Point
	for _, t := range workload.AllTensors() {
		keeps := a.KeepLevels(t)
		if len(keeps) == 0 {
			continue
		}
		k0 := keeps[0]
		for _, d := range workload.AllDims() {
			if workload.Relevant(t, d) && k0 > min[d] {
				min[d] = k0
			}
		}
	}
	return min
}

// outerMapping covers each dimension's remaining bound at the outermost
// level allowed for it.
func outerMapping(a *arch.Arch, l *workload.Layer, assign []workload.Dim) *mapping.Mapping {
	m := mapping.New(a)
	applyAssignment(a, m, assign)
	rem := remaining(a, m, l)
	min := minLevels(a)
	for _, d := range workload.AllDims() {
		m.Levels[min[d]].Temporal[d] = rem[d]
	}
	return m
}

// randomMapping draws a random temporal split and permutation set.
func randomMapping(a *arch.Arch, l *workload.Layer, assign []workload.Dim, rng *rand.Rand) *mapping.Mapping {
	m := mapping.New(a)
	applyAssignment(a, m, assign)
	rem := remaining(a, m, l)
	min := minLevels(a)
	n := a.NumLevels()
	for _, d := range workload.AllDims() {
		// Pick an inner tile chain: for each level from innermost out,
		// choose a candidate factor of what remains; the residue lands
		// on the outermost level allowed for this dimension.
		left := rem[d]
		for i := n - 1; i > min[d] && left > 1; i-- {
			cands := mapping.PaddedCandidates(left)
			f := cands[rng.Intn(len(cands))]
			m.Levels[i].Temporal[d] = f
			left = workload.CeilDiv(left, f)
		}
		m.Levels[min[d]].Temporal[d] *= left
	}
	for i := 0; i < n; i++ {
		m.Levels[i].Perm = append([]workload.Dim(nil), permCandidates[rng.Intn(len(permCandidates))]...)
	}
	return m
}

// neighbors generates local moves around a mapping.
func neighbors(a *arch.Arch, l *workload.Layer, m *mapping.Mapping, rng *rand.Rand) []*mapping.Mapping {
	var out []*mapping.Mapping
	n := a.NumLevels()
	// Move a factor of 2..3 of one dim between adjacent levels.
	for i := 0; i < n-1; i++ {
		for _, d := range workload.AllDims() {
			if m.Levels[i].Temporal[d] > 1 {
				for _, f := range []int{2, 3} {
					if m.Levels[i].Temporal[d]%f == 0 {
						c := m.Clone()
						c.Levels[i].Temporal[d] /= f
						c.Levels[i+1].Temporal[d] *= f
						out = append(out, c)
					}
				}
			}
			if m.Levels[i+1].Temporal[d] > 1 {
				for _, f := range []int{2, 3} {
					if m.Levels[i+1].Temporal[d]%f == 0 {
						c := m.Clone()
						c.Levels[i+1].Temporal[d] /= f
						c.Levels[i].Temporal[d] *= f
						out = append(out, c)
					}
				}
			}
		}
	}
	// Swap permutations.
	for i := 0; i < n; i++ {
		for _, cand := range permCandidates {
			c := m.Clone()
			c.Levels[i].Perm = append([]workload.Dim(nil), cand...)
			out = append(out, c)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// SearchNetwork maps every layer of a network and returns per-layer bests
// in layer order. Layers are searched concurrently.
func SearchNetwork(a *arch.Arch, net *workload.Network, opts Options) ([]*Best, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	bests := make([]*Best, len(net.Layers))
	errs := make([]error, len(net.Layers))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i := range net.Layers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bests[i], errs[i] = Search(a, &net.Layers[i], opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mapper: layer %s: %w", net.Layers[i].Name, err)
		}
	}
	return bests, nil
}

func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

// Exhaustive enumerates every combination of spatial assignment, divisor
// split and candidate permutation for small problems, guaranteeing the
// optimum within that (restricted-permutation) space. It errors if the
// space exceeds maxEvals.
func Exhaustive(a *arch.Arch, l *workload.Layer, obj Objective, maxEvals int) (*Best, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if maxEvals <= 0 {
		maxEvals = 200000
	}
	assignments := enumerateSpatialAssignments(a)
	n := a.NumLevels()

	// Estimate the space.
	est := float64(len(assignments)) * math.Pow(float64(len(permCandidates)), float64(n))
	for _, d := range workload.AllDims() {
		splits := len(mapping.FactorSplits(l.Bound(d), n))
		if splits > 0 {
			est *= float64(splits)
		}
		if est > float64(maxEvals)*100 {
			return nil, fmt.Errorf("mapper: exhaustive space too large (~%g)", est)
		}
	}

	var best *Best
	evals := 0
	for _, assign := range assignments {
		base := mapping.New(a)
		applyAssignment(a, base, assign)
		rem := remaining(a, base, l)
		dimSplits := make([][][]int, workload.NumDims)
		for _, d := range workload.AllDims() {
			dimSplits[d] = mapping.FactorSplits(rem[d], n)
		}
		var walk func(d int, m *mapping.Mapping)
		walk = func(d int, m *mapping.Mapping) {
			if evals > maxEvals {
				return
			}
			if d == int(workload.NumDims) {
				walkPerms(a, l, m, 0, obj, &best, &evals, maxEvals)
				return
			}
			for _, split := range dimSplits[d] {
				c := m.Clone()
				for i := 0; i < n; i++ {
					c.Levels[i].Temporal[workload.Dim(d)] = split[i]
				}
				walk(d+1, c)
			}
		}
		walk(0, base)
	}
	if best == nil {
		return nil, errors.New("mapper: exhaustive search found no valid mapping")
	}
	best.Evaluations = evals
	return best, nil
}

func walkPerms(a *arch.Arch, l *workload.Layer, m *mapping.Mapping, level int, obj Objective, best **Best, evals *int, maxEvals int) {
	if *evals > maxEvals {
		return
	}
	if level == a.NumLevels() {
		*evals++
		if err := m.Validate(a, l); err != nil {
			return
		}
		res, err := model.Evaluate(a, l, m, model.Options{SkipValidate: true})
		if err != nil {
			return
		}
		cand := &Best{Mapping: m.Clone(), Result: res}
		if *best == nil || better(obj, cand, *best) {
			*best = cand
		}
		return
	}
	// Only permute levels that actually have multiple loops.
	active := 0
	for _, d := range workload.AllDims() {
		if m.Levels[level].Temporal[d] > 1 {
			active++
		}
	}
	if active <= 1 {
		walkPerms(a, l, m, level+1, obj, best, evals, maxEvals)
		return
	}
	for _, cand := range permCandidates {
		m.Levels[level].Perm = append([]workload.Dim(nil), cand...)
		walkPerms(a, l, m, level+1, obj, best, evals, maxEvals)
	}
}

// SortBests orders a slice of bests deterministically by layer name (used
// by reporting code).
func SortBests(bests []*Best) {
	sort.SliceStable(bests, func(i, j int) bool {
		return bests[i].Result.Layer < bests[j].Result.Layer
	})
}
