// Package mapper searches the mapping space of a layer on an architecture
// for schedules minimizing energy, delay, or energy-delay product, in the
// spirit of Timeloop's mapper: the paper relies on the mapper to find
// mappings that exploit available reuse to minimize expensive cross-domain
// conversions and DRAM traffic.
//
// The search combines (1) exhaustive enumeration of the architecture's
// rigid spatial-factor assignments, (2) randomized temporal factorizations
// with padding-aware candidates, (3) a small library of stationarity-driven
// loop permutations, and (4) greedy hill climbing on the best random
// seeds, optionally across parallel workers with a deterministic merge.
//
// The search inner loop runs on the compiled evaluation engine
// (model.Compiled): per-worker scratch buffers, no itemized energy ledger,
// and a fingerprint cache that skips re-evaluating schedules already
// scored. Searching many layers on one architecture should go through a
// shared Session, which hoists the architecture's invariants (resolved
// energy tables, spatial-assignment enumeration, minimum loop levels) out
// of the per-layer calls.
package mapper

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"photoloop/internal/arch"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/workload"
)

// Objective selects what the search minimizes.
type Objective uint8

// Objectives.
const (
	MinEnergy Objective = iota // total picojoules
	MinDelay                   // cycles
	MinEDP                     // energy-delay product
)

// ParseObjective converts an objective name ("energy", "delay", "edp").
func ParseObjective(name string) (Objective, error) {
	switch name {
	case "energy":
		return MinEnergy, nil
	case "delay":
		return MinDelay, nil
	case "edp":
		return MinEDP, nil
	}
	return 0, fmt.Errorf("mapper: unknown objective %q (want energy, delay or edp)", name)
}

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MinEnergy:
		return "energy"
	case MinDelay:
		return "delay"
	case MinEDP:
		return "edp"
	}
	return fmt.Sprintf("Objective(%d)", uint8(o))
}

// Options configures a search.
type Options struct {
	// Objective is what to minimize (default MinEnergy).
	Objective Objective
	// Budget caps the number of model evaluations (default 2000).
	Budget int
	// Seed makes the search deterministic (default 1).
	Seed int64
	// Workers parallelizes the search (default GOMAXPROCS, capped at 8).
	// Results are deterministic for a fixed (Seed, Workers) pair.
	Workers int
	// Eval forwards evaluation options to the model. ChargeStatic changes
	// what candidate schedules are scored on; SkipValidate skips the
	// structural validation of candidate mappings (set it only when every
	// seed and random draw is known valid — the search trusts it).
	Eval model.Options
	// Seeds are mappings evaluated before random exploration (e.g. an
	// architecture's canonical schedules); the hill climber starts from
	// the best of seeds and random samples.
	Seeds []*mapping.Mapping
	// Cache, when non-nil, deduplicates searches across calls: searches
	// with equal (architecture, layer shape, options) fingerprints run
	// once and share the result. Sweeps and long-lived services set it;
	// results are bit-identical with or without a cache.
	Cache *Cache
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Budget <= 0 {
		out.Budget = 2000
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Workers <= 0 {
		out.Workers = DefaultSearchWorkers()
	}
	return out
}

// DefaultSearchWorkers is the per-search worker pool size used when
// Options.Workers is unset: GOMAXPROCS capped at 8. Outer pools (the
// sweep's point pool) divide their own defaults by it to avoid
// oversubscribing the CPU.
func DefaultSearchWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Best is a search outcome.
type Best struct {
	Mapping     *mapping.Mapping
	Result      *model.Result
	Evaluations int
}

// Score returns the objective value of a result.
func Score(obj Objective, r *model.Result) float64 {
	switch obj {
	case MinDelay:
		return r.Cycles
	case MinEDP:
		return r.TotalPJ * r.Cycles
	default:
		return r.TotalPJ
	}
}

// stationarity-driven permutation candidates: placing a tensor's
// irrelevant dimensions innermost keeps that tensor's inner tiles
// stationary across those loops.
var permCandidates = [][]workload.Dim{
	// Output stationary: reduction loops innermost.
	{workload.DimN, workload.DimK, workload.DimP, workload.DimQ, workload.DimC, workload.DimR, workload.DimS},
	// Weight stationary: N, P, Q innermost.
	{workload.DimK, workload.DimC, workload.DimR, workload.DimS, workload.DimN, workload.DimP, workload.DimQ},
	// Input stationary: K innermost.
	{workload.DimC, workload.DimP, workload.DimQ, workload.DimR, workload.DimS, workload.DimN, workload.DimK},
}

// Session caches everything about one architecture that every layer search
// reuses: the compiled evaluation engine, the enumerated rigid
// spatial-factor assignments, and the per-dimension minimum loop levels.
// A Session is immutable after construction and safe for concurrent use.
type Session struct {
	a           *arch.Arch
	eng         *model.Engine
	assignments [][]workload.Dim
	minLv       workload.Point
	fp          uint64
}

// NewSession prepares an architecture for repeated searches.
func NewSession(a *arch.Arch) (*Session, error) {
	eng, err := model.NewEngine(a)
	if err != nil {
		return nil, err
	}
	s := &Session{
		a:           a,
		eng:         eng,
		assignments: enumerateSpatialAssignments(a),
		minLv:       minLevels(a),
		fp:          a.Fingerprint(),
	}
	if len(s.assignments) == 0 {
		return nil, errors.New("mapper: no spatial assignments")
	}
	return s, nil
}

// Engine returns the session's compiled evaluation engine.
func (s *Session) Engine() *model.Engine { return s.eng }

// Search finds the best mapping for the layer under the options. It is a
// convenience wrapper building a one-shot Session; prefer NewSession +
// Session.Search when mapping several layers on the same architecture.
func Search(a *arch.Arch, l *workload.Layer, opts Options) (*Best, error) {
	s, err := NewSession(a)
	if err != nil {
		return nil, err
	}
	return s.Search(l, opts)
}

// Search finds the best mapping for the layer under the options.
func (s *Session) Search(l *workload.Layer, opts Options) (*Best, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	if o.Cache != nil {
		return o.Cache.search(s, l, o)
	}
	return s.search(l, o)
}

// search runs the uncached search; o must have defaults applied.
func (s *Session) search(l *workload.Layer, o Options) (*Best, error) {
	c, err := s.eng.Compile(l)
	if err != nil {
		return nil, err
	}

	type outcome struct {
		best  *Best
		evals int
	}
	results := make([]outcome, o.Workers)
	var wg sync.WaitGroup
	perWorker := o.Budget / o.Workers
	if perWorker < 1 {
		perWorker = 1
	}
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(w)*7919))
			best, evals := s.searchWorker(c, l, o, rng, perWorker)
			results[w] = outcome{best, evals}
		}(w)
	}
	wg.Wait()

	var best *Best
	evals := 0
	for w := range results {
		evals += results[w].evals
		if results[w].best == nil {
			continue
		}
		if best == nil || better(o.Objective, results[w].best, best) {
			best = results[w].best
		}
	}
	if best == nil {
		return nil, fmt.Errorf("mapper: no valid mapping found for %s on %s", l.Name, s.a.Name)
	}
	best.Evaluations = evals

	// The workers score candidates without the itemized energy ledger;
	// re-evaluate the winner once in full so callers can inspect it.
	fullOpts := o.Eval
	fullOpts.SkipValidate = true
	fullOpts.FullLedger = true
	full, err := c.Evaluate(best.Mapping, fullOpts)
	if err != nil {
		return nil, err
	}
	best.Result = full
	return best, nil
}

// better compares candidates with deterministic tie breaks: the objective,
// then total energy (a bandwidth-bound layer has many equal-delay mappings
// — prefer the cheapest), then utilization, then a stable textual order.
func better(obj Objective, x, y *Best) bool {
	return betterEval(obj, x.Result, x.Mapping, y)
}

// betterEval is better() without requiring the candidate to be wrapped in
// a Best (the hot loop compares scratch-owned results before cloning).
func betterEval(obj Objective, r *model.Result, m *mapping.Mapping, y *Best) bool {
	sx, sy := Score(obj, r), Score(obj, y.Result)
	if sx != sy {
		return sx < sy
	}
	if r.TotalPJ != y.Result.TotalPJ {
		return r.TotalPJ < y.Result.TotalPJ
	}
	if r.Utilization != y.Result.Utilization {
		return r.Utilization > y.Result.Utilization
	}
	return m.String() < y.Mapping.String()
}

func (s *Session) searchWorker(c *model.Compiled, l *workload.Layer, o Options, rng *rand.Rand, budget int) (best *Best, evals int) {
	a := s.a
	scratch := s.eng.NewScratch()
	res := &model.Result{}
	seen := make(map[uint64]struct{}, budget)
	evalOpts := model.Options{SkipValidate: true, ChargeStatic: o.Eval.ChargeStatic}
	validate := !o.Eval.SkipValidate

	// try scores a mapping on the compiled fast path. Budget is consumed
	// per attempt; schedules already fingerprinted return nil without
	// re-evaluating (an already-seen schedule was scored — or failed
	// deterministically — with this exact result, and can never beat the
	// incumbent, so skipping it is behavior preserving). Mappings that
	// fail validation are not recorded: a malformed seed must not shadow
	// a later well-formed schedule that happens to hash equal.
	try := func(m *mapping.Mapping) *model.Result {
		if evals >= budget {
			return nil
		}
		evals++
		fp := m.Fingerprint()
		if _, dup := seen[fp]; dup {
			return nil
		}
		if validate {
			if err := m.Validate(a, l); err != nil {
				return nil
			}
		}
		seen[fp] = struct{}{}
		if err := c.EvaluateInto(scratch, m, res, evalOpts); err != nil {
			return nil
		}
		return res
	}
	consider := func(m *mapping.Mapping, r *model.Result) {
		if r == nil {
			return
		}
		if best == nil || betterEval(o.Objective, r, m, best) {
			best = &Best{Mapping: m, Result: r.Clone()}
		}
	}

	// Phase 0: caller-provided seed mappings.
	for _, seed := range o.Seeds {
		m := seed.Clone()
		consider(m, try(m))
	}

	// Phase 1: random sampling across spatial assignments. The canonical
	// assignment (every factor on its first-listed dimension) is the
	// architect's intended use and gets half the samples; the rest
	// explore alternates (how FC layers find channel-parallel slots).
	explorationBudget := budget * 7 / 10
	for evals < explorationBudget {
		assign := s.assignments[0]
		if rng.Intn(2) == 0 {
			assign = s.assignments[rng.Intn(len(s.assignments))]
		}
		m := randomMapping(a, l, assign, s.minLv, rng)
		consider(m, try(m))
	}

	// Phase 2: hill climb from the best mapping found.
	if best == nil {
		// Fall back to the trivial all-outer mapping per assignment.
		for _, assign := range s.assignments {
			m := outerMapping(a, l, assign, s.minLv)
			consider(m, try(m))
		}
	}
	if best == nil {
		return nil, evals
	}
	cur := best
	for evals < budget {
		improved := false
		for _, neighbor := range neighbors(a, l, cur.Mapping, rng) {
			r := try(neighbor)
			if r == nil {
				continue
			}
			if betterEval(o.Objective, r, neighbor, cur) {
				cur = &Best{Mapping: neighbor, Result: r.Clone()}
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	if cur != best && betterEval(o.Objective, cur.Result, cur.Mapping, best) {
		best = cur
	}
	return best, evals
}

// maxSpatialAssignments caps the enumerated cross product of rigid
// spatial-factor assignments.
const maxSpatialAssignments = 4096

// enumerateSpatialAssignments expands the cross product of every rigid
// spatial factor's allowed dimensions. Small products are enumerated in
// full, in lexicographic order with the first factor most significant
// (index 0 is the canonical all-first-dimension assignment). Products
// beyond maxSpatialAssignments are sampled uniformly (and
// deterministically, from a fixed seed) over the full cross product, so
// every factor's alternates stay represented regardless of factor order —
// the straight prefix truncation this replaces silently dropped all
// alternates of the leading factors.
func enumerateSpatialAssignments(a *arch.Arch) [][]workload.Dim {
	var factors []arch.SpatialFactor
	for i := 0; i < a.NumLevels(); i++ {
		factors = append(factors, a.Level(i).Spatial...)
	}
	total := int64(1)
	const saturate = int64(1) << 55
	for _, f := range factors {
		total *= int64(len(f.Dims))
		if total > saturate {
			// Sampling below saturation is still deterministic; exact
			// uniformity over an astronomically large product is moot.
			total = saturate
			break
		}
	}
	if total <= maxSpatialAssignments {
		out := make([][]workload.Dim, 0, total)
		for idx := int64(0); idx < total; idx++ {
			out = append(out, decodeAssignment(factors, idx))
		}
		return out
	}
	// Canonical assignment first, then distinct uniform samples.
	rng := rand.New(rand.NewSource(1))
	seen := map[int64]struct{}{0: {}}
	out := make([][]workload.Dim, 0, maxSpatialAssignments)
	out = append(out, decodeAssignment(factors, 0))
	for len(out) < maxSpatialAssignments {
		idx := rng.Int63n(total)
		if _, dup := seen[idx]; dup {
			continue
		}
		seen[idx] = struct{}{}
		out = append(out, decodeAssignment(factors, idx))
	}
	return out
}

// decodeAssignment expands one lexicographic index of the assignment cross
// product (first factor most significant) into per-factor dimensions.
func decodeAssignment(factors []arch.SpatialFactor, idx int64) []workload.Dim {
	assign := make([]workload.Dim, len(factors))
	for j := len(factors) - 1; j >= 0; j-- {
		n := int64(len(factors[j].Dims))
		assign[j] = factors[j].Dims[idx%n]
		idx /= n
	}
	return assign
}

// applyAssignment distributes a flat assignment vector back to levels,
// reusing the mapping's SpatialChoice backing arrays.
func applyAssignment(a *arch.Arch, m *mapping.Mapping, assign []workload.Dim) {
	idx := 0
	for i := 0; i < a.NumLevels(); i++ {
		n := len(a.Level(i).Spatial)
		m.Levels[i].SpatialChoice = append(m.Levels[i].SpatialChoice[:0], assign[idx:idx+n]...)
		idx += n
	}
}

// remaining returns the per-dim temporal bound left after spatial factors.
func remaining(a *arch.Arch, m *mapping.Mapping, l *workload.Layer) workload.Point {
	spatial := workload.Ones()
	for i := 0; i < a.NumLevels(); i++ {
		spatial = spatial.Mul(m.SpatialAt(a, i))
	}
	rem := workload.Ones()
	for _, d := range workload.AllDims() {
		rem[d] = workload.CeilDiv(l.Bound(d), spatial[d])
	}
	return rem
}

// minLevels returns, per dimension, the outermost level at which loops over
// that dimension may legally appear: the innermost of the outermost-keeper
// levels of the tensors the dimension addresses. (Loops above a tensor's
// outermost keeper would demand data from a level that does not store it —
// this is what pins activations on chip in fusion studies.)
func minLevels(a *arch.Arch) workload.Point {
	var min workload.Point
	for _, t := range workload.AllTensors() {
		keeps := a.KeepLevels(t)
		if len(keeps) == 0 {
			continue
		}
		k0 := keeps[0]
		for _, d := range workload.AllDims() {
			if workload.Relevant(t, d) && k0 > min[d] {
				min[d] = k0
			}
		}
	}
	return min
}

// outerMapping covers each dimension's remaining bound at the outermost
// level allowed for it.
func outerMapping(a *arch.Arch, l *workload.Layer, assign []workload.Dim, min workload.Point) *mapping.Mapping {
	m := mapping.New(a)
	applyAssignment(a, m, assign)
	rem := remaining(a, m, l)
	for _, d := range workload.AllDims() {
		m.Levels[min[d]].Temporal[d] = rem[d]
	}
	return m
}

// randomMapping draws a random temporal split and permutation set.
func randomMapping(a *arch.Arch, l *workload.Layer, assign []workload.Dim, min workload.Point, rng *rand.Rand) *mapping.Mapping {
	m := mapping.New(a)
	applyAssignment(a, m, assign)
	rem := remaining(a, m, l)
	n := a.NumLevels()
	for _, d := range workload.AllDims() {
		// Pick an inner tile chain: for each level from innermost out,
		// choose a candidate factor of what remains; the residue lands
		// on the outermost level allowed for this dimension.
		left := rem[d]
		for i := n - 1; i > min[d] && left > 1; i-- {
			cands := mapping.PaddedCandidates(left)
			f := cands[rng.Intn(len(cands))]
			m.Levels[i].Temporal[d] = f
			left = workload.CeilDiv(left, f)
		}
		m.Levels[min[d]].Temporal[d] *= left
	}
	for i := 0; i < n; i++ {
		m.Levels[i].Perm = append(m.Levels[i].Perm[:0], permCandidates[rng.Intn(len(permCandidates))]...)
	}
	return m
}

// neighbors generates local moves around a mapping.
func neighbors(a *arch.Arch, l *workload.Layer, m *mapping.Mapping, rng *rand.Rand) []*mapping.Mapping {
	var out []*mapping.Mapping
	n := a.NumLevels()
	// Move a factor of 2..3 of one dim between adjacent levels.
	for i := 0; i < n-1; i++ {
		for _, d := range workload.AllDims() {
			if m.Levels[i].Temporal[d] > 1 {
				for _, f := range []int{2, 3} {
					if m.Levels[i].Temporal[d]%f == 0 {
						c := m.Clone()
						c.Levels[i].Temporal[d] /= f
						c.Levels[i+1].Temporal[d] *= f
						out = append(out, c)
					}
				}
			}
			if m.Levels[i+1].Temporal[d] > 1 {
				for _, f := range []int{2, 3} {
					if m.Levels[i+1].Temporal[d]%f == 0 {
						c := m.Clone()
						c.Levels[i+1].Temporal[d] /= f
						c.Levels[i].Temporal[d] *= f
						out = append(out, c)
					}
				}
			}
		}
	}
	// Swap permutations.
	for i := 0; i < n; i++ {
		for _, cand := range permCandidates {
			c := m.Clone()
			c.Levels[i].Perm = append([]workload.Dim(nil), cand...)
			out = append(out, c)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// SearchNetwork maps every layer of a network and returns per-layer bests
// in layer order, sharing one Session across the layers. Layers are
// searched concurrently.
func SearchNetwork(a *arch.Arch, net *workload.Network, opts Options) ([]*Best, error) {
	s, err := NewSession(a)
	if err != nil {
		return nil, err
	}
	return s.SearchNetwork(net, opts)
}

// SearchNetwork maps every layer of a network on the session's
// architecture; layers are searched concurrently.
func (s *Session) SearchNetwork(net *workload.Network, opts Options) ([]*Best, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	bests := make([]*Best, len(net.Layers))
	errs := make([]error, len(net.Layers))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i := range net.Layers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bests[i], errs[i] = s.Search(&net.Layers[i], opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mapper: layer %s: %w", net.Layers[i].Name, err)
		}
	}
	return bests, nil
}

func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

// Exhaustive enumerates every combination of spatial assignment, divisor
// split and candidate permutation for small problems, guaranteeing the
// optimum within that (restricted-permutation) space. It errors if the
// space exceeds maxEvals.
func Exhaustive(a *arch.Arch, l *workload.Layer, obj Objective, maxEvals int) (*Best, error) {
	s, err := NewSession(a)
	if err != nil {
		return nil, err
	}
	return s.Exhaustive(l, obj, maxEvals)
}

// Exhaustive runs the exhaustive search on the session's architecture.
func (s *Session) Exhaustive(l *workload.Layer, obj Objective, maxEvals int) (*Best, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if maxEvals <= 0 {
		maxEvals = 200000
	}
	a := s.a
	n := a.NumLevels()
	c, err := s.eng.Compile(l)
	if err != nil {
		return nil, err
	}

	// Estimate the space.
	est := float64(len(s.assignments)) * math.Pow(float64(len(permCandidates)), float64(n))
	for _, d := range workload.AllDims() {
		splits := len(mapping.FactorSplits(l.Bound(d), n))
		if splits > 0 {
			est *= float64(splits)
		}
		if est > float64(maxEvals)*100 {
			return nil, fmt.Errorf("mapper: exhaustive space too large (~%g)", est)
		}
	}

	w := &exhaustiveWalk{
		a: a, l: l, c: c, obj: obj, maxEvals: maxEvals,
		scratch: s.eng.NewScratch(),
		res:     &model.Result{},
	}
	for _, assign := range s.assignments {
		base := mapping.New(a)
		applyAssignment(a, base, assign)
		rem := remaining(a, base, l)
		dimSplits := make([][][]int, workload.NumDims)
		for _, d := range workload.AllDims() {
			dimSplits[d] = mapping.FactorSplits(rem[d], n)
		}
		var walk func(d int, m *mapping.Mapping)
		walk = func(d int, m *mapping.Mapping) {
			if w.evals > maxEvals {
				return
			}
			if d == int(workload.NumDims) {
				w.walkPerms(m, 0)
				return
			}
			for _, split := range dimSplits[d] {
				cm := m.Clone()
				for i := 0; i < n; i++ {
					cm.Levels[i].Temporal[workload.Dim(d)] = split[i]
				}
				walk(d+1, cm)
			}
		}
		walk(0, base)
	}
	if w.best == nil {
		return nil, errors.New("mapper: exhaustive search found no valid mapping")
	}
	w.best.Evaluations = w.evals

	// Re-evaluate the winner with the full ledger.
	full, err := c.Evaluate(w.best.Mapping, model.Options{SkipValidate: true, FullLedger: true})
	if err != nil {
		return nil, err
	}
	w.best.Result = full
	return w.best, nil
}

// exhaustiveWalk carries the shared state of one exhaustive enumeration.
type exhaustiveWalk struct {
	a        *arch.Arch
	l        *workload.Layer
	c        *model.Compiled
	obj      Objective
	maxEvals int
	scratch  *model.Scratch
	res      *model.Result
	best     *Best
	evals    int
}

func (w *exhaustiveWalk) walkPerms(m *mapping.Mapping, level int) {
	if w.evals > w.maxEvals {
		return
	}
	if level == w.a.NumLevels() {
		w.evals++
		if err := m.Validate(w.a, w.l); err != nil {
			return
		}
		if err := w.c.EvaluateInto(w.scratch, m, w.res, model.Options{SkipValidate: true}); err != nil {
			return
		}
		if w.best == nil || betterEval(w.obj, w.res, m, w.best) {
			w.best = &Best{Mapping: m.Clone(), Result: w.res.Clone()}
		}
		return
	}
	// Only permute levels that actually have multiple loops.
	active := 0
	for _, d := range workload.AllDims() {
		if m.Levels[level].Temporal[d] > 1 {
			active++
		}
	}
	if active <= 1 {
		w.walkPerms(m, level+1)
		return
	}
	for _, cand := range permCandidates {
		m.Levels[level].Perm = append([]workload.Dim(nil), cand...)
		w.walkPerms(m, level+1)
	}
}

// SortBests orders a slice of bests deterministically by layer name (used
// by reporting code).
func SortBests(bests []*Best) {
	sort.SliceStable(bests, func(i, j int) bool {
		return bests[i].Result.Layer < bests[j].Result.Layer
	})
}
