// Package mapper searches the mapping space of a layer on an architecture
// for schedules minimizing energy, delay, or energy-delay product, in the
// spirit of Timeloop's mapper: the paper relies on the mapper to find
// mappings that exploit available reuse to minimize expensive cross-domain
// conversions and DRAM traffic.
//
// The search combines (1) exhaustive enumeration of the architecture's
// rigid spatial-factor assignments, (2) randomized temporal factorizations
// with padding-aware candidates, (3) a small library of stationarity-driven
// loop permutations, and (4) greedy hill climbing on the best random
// seeds, optionally across parallel workers with a deterministic merge.
//
// The search inner loop runs on the compiled evaluation engine
// (model.Compiled): per-worker scratch buffers, no itemized energy ledger,
// and a fingerprint cache that skips re-evaluating schedules already
// scored. Searching many layers on one architecture should go through a
// shared Session, which hoists the architecture's invariants (resolved
// energy tables, spatial-assignment enumeration, minimum loop levels) out
// of the per-layer calls.
package mapper

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"photoloop/internal/arch"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/workload"
)

// Objective selects what the search minimizes.
type Objective uint8

// Objectives.
const (
	MinEnergy Objective = iota // total picojoules
	MinDelay                   // cycles
	MinEDP                     // energy-delay product
)

// ParseObjective converts an objective name ("energy", "delay", "edp").
func ParseObjective(name string) (Objective, error) {
	switch name {
	case "energy":
		return MinEnergy, nil
	case "delay":
		return MinDelay, nil
	case "edp":
		return MinEDP, nil
	}
	return 0, fmt.Errorf("mapper: unknown objective %q (want energy, delay or edp)", name)
}

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MinEnergy:
		return "energy"
	case MinDelay:
		return "delay"
	case MinEDP:
		return "edp"
	}
	return fmt.Sprintf("Objective(%d)", uint8(o))
}

// Options configures a search.
type Options struct {
	// Objective is what to minimize (default MinEnergy).
	Objective Objective
	// Budget caps the number of candidate attempts (default 1000; see
	// docs/PERFORMANCE.md for the calibration — cap-aware drawing made a
	// budget unit buy ~2.4x more scored candidates, so 1000 today scores
	// more real candidates than 2000 did when 2000 was chosen). It is
	// split across Workers with the remainder distributed one-per-worker,
	// so the configured budget is spendable exactly; a converging hill
	// climb may stop early, so Evaluations <= Budget (+ warm starts).
	Budget int
	// Seed makes the search deterministic (default 1).
	Seed int64
	// Workers parallelizes the search (default GOMAXPROCS, capped at 8).
	//
	// Determinism contract: results are exactly reproducible for a fixed
	// (Seed, Workers) pair — pinned by tests. Different Workers values
	// return different (individually deterministic) results, and that is
	// inherent to the design, not an implementation accident: each worker
	// draws from its own seeded rng stream and owns a slice of the
	// budget, so the sampled candidate set itself depends on the split.
	// Callers needing machine-independent results must pin Workers
	// explicitly rather than relying on the GOMAXPROCS default.
	Workers int
	// Eval forwards evaluation options to the model. ChargeStatic changes
	// what candidate schedules are scored on; SkipValidate skips the
	// structural validation of candidate mappings (set it only when every
	// seed and random draw is known valid — the search trusts it).
	Eval model.Options
	// Seeds are mappings evaluated before random exploration (e.g. an
	// architecture's canonical schedules); the hill climber starts from
	// the best of seeds and random samples.
	Seeds []*mapping.Mapping
	// WarmStarts are incumbent mappings threaded in from structurally
	// related, already-solved searches — the same layer shape on a
	// neighboring sweep point, typically. They are validated against this
	// (architecture, layer) pair (inapplicable ones are silently dropped)
	// and evaluated after Seeds without consuming Budget, so they only
	// tighten the pruning cutoff early: with a good warm start the
	// admissible lower bound discards most random candidates from the
	// first draw. A warm-started search is deterministic given identical
	// WarmStarts; its Best usually improves on (and may differ from) the
	// cold search's, because the warm candidates join the pool and the
	// hill climber may start from one of them.
	WarmStarts []*mapping.Mapping
	// Cache, when non-nil, deduplicates searches across calls: searches
	// with equal (architecture, layer shape, options) fingerprints run
	// once and share the result. Sweeps and long-lived services set it;
	// results are bit-identical with or without a cache.
	Cache *Cache

	// noPrune, noDelta and noBatch disable the admissible-lower-bound
	// gate, the shared-prefix delta evaluation, and the fused
	// stage-then-finish scoring path (noBatch falls back to separate
	// LowerBound + EvaluatePartial calls in the legacy order). All are
	// behavior-preserving accelerations, so these exist only for the
	// equivalence tests that prove it; they are deliberately left out of
	// the cache fingerprint.
	noPrune bool
	noDelta bool
	noBatch bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Budget <= 0 {
		out.Budget = 1000
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Workers <= 0 {
		out.Workers = DefaultSearchWorkers()
	}
	return out
}

// DefaultSearchWorkers is the per-search worker pool size used when
// Options.Workers is unset: GOMAXPROCS capped at 8. Outer pools (the
// sweep's point pool) divide their own defaults by it to avoid
// oversubscribing the CPU.
func DefaultSearchWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Best is a search outcome.
type Best struct {
	Mapping *mapping.Mapping
	Result  *model.Result
	// Evaluations counts candidate attempts charged against the budget
	// (duplicates, invalid candidates and pruned candidates included —
	// each consumed one draw) plus any warm-start evaluations.
	Evaluations int
	// Stats breaks down how the search spent its candidate stream.
	Stats SearchStats
}

// SearchStats counts how a search's candidate stream was dispatched. The
// identity Pruned + DeltaEvals + FullEvals + Duplicates + invalid/failed
// candidates = Evaluations holds per search (warm starts excepted).
type SearchStats struct {
	// Pruned counts candidates discarded because the admissible lower
	// bound (model.Compiled.LowerBound) proved they could not beat the
	// incumbent; they were never fully evaluated.
	Pruned int
	// DeltaEvals counts full evaluations that reused shared-prefix state
	// from the previous evaluation (model.Compiled.EvaluatePartial with a
	// non-zero shared level count).
	DeltaEvals int
	// FullEvals counts evaluations computed from scratch.
	FullEvals int
	// Duplicates counts fingerprint-deduplicated candidates.
	Duplicates int
	// Invalid counts candidates rejected by structural validation.
	Invalid int
	// WarmStartEvals counts warm-start candidates evaluated on top of the
	// budget (see Options.WarmStarts).
	WarmStartEvals int
}

// Adaptive lower-bound gating: the bound check runs unconditionally for
// the first lbProbation candidates, then stays enabled only while at least
// one in lbKeepRate checks prunes. Gating never changes results — a
// skipped check just means the candidate is fully evaluated.
const (
	lbProbation = 64
	lbKeepRate  = 20
)

func (s *SearchStats) add(o SearchStats) {
	s.Pruned += o.Pruned
	s.DeltaEvals += o.DeltaEvals
	s.FullEvals += o.FullEvals
	s.Duplicates += o.Duplicates
	s.Invalid += o.Invalid
	s.WarmStartEvals += o.WarmStartEvals
}

// PrunedFraction returns the share of scoreable candidates (valid,
// non-duplicate) the lower bound discarded without a full evaluation.
func (s SearchStats) PrunedFraction() float64 {
	total := s.Pruned + s.DeltaEvals + s.FullEvals
	if total == 0 {
		return 0
	}
	return float64(s.Pruned) / float64(total)
}

// Score returns the objective value of a result.
func Score(obj Objective, r *model.Result) float64 {
	switch obj {
	case MinDelay:
		return r.Cycles
	case MinEDP:
		return r.TotalPJ * r.Cycles
	default:
		return r.TotalPJ
	}
}

// stationarity-driven permutation candidates: placing a tensor's
// irrelevant dimensions innermost keeps that tensor's inner tiles
// stationary across those loops.
var permCandidates = [][]workload.Dim{
	// Output stationary: reduction loops innermost.
	{workload.DimN, workload.DimK, workload.DimP, workload.DimQ, workload.DimC, workload.DimR, workload.DimS},
	// Weight stationary: N, P, Q innermost.
	{workload.DimK, workload.DimC, workload.DimR, workload.DimS, workload.DimN, workload.DimP, workload.DimQ},
	// Input stationary: K innermost.
	{workload.DimC, workload.DimP, workload.DimQ, workload.DimR, workload.DimS, workload.DimN, workload.DimK},
}

// Session caches everything about one architecture that every layer search
// reuses: the compiled evaluation engine, the enumerated rigid
// spatial-factor assignments, and the per-dimension minimum loop levels.
// A Session is immutable after construction and safe for concurrent use.
type Session struct {
	a           *arch.Arch
	eng         *model.Engine
	assignments [][]workload.Dim
	minLv       workload.Point
	fp          uint64
	// tpOne flags levels whose MaxTemporalProduct forbids any temporal
	// loop (analog accumulators, ring banks): the random draw skips them
	// instead of wasting its budget on candidates that can never validate.
	tpOne []bool
	// capped lists the levels carrying any MaxTemporalProduct cap, so the
	// hot-loop structural pre-checks visit only those instead of probing
	// every level's cap through the architecture.
	capped []capLevel
	// workers pools per-worker search state (scratch, buffers, dedup set)
	// across Search calls on this session.
	workers sync.Pool
}

// capLevel is one temporal-product-capped level for the pre-reject checks.
type capLevel struct {
	level int
	tp    int64
}

// splitmix64 is the search's deterministic rand.Source64: SplitMix64
// (Steele et al.), two multiplies and three xor-shifts per draw. The
// standard library's seeded source initializes a 607-word feedback table
// per instance, which showed up in search profiles — every Search call
// creates fresh per-worker sources to keep (seed, budget) reproducible.
type splitmix64 struct{ x uint64 }

func (s *splitmix64) Seed(seed int64) { s.x = uint64(seed) }

func (s *splitmix64) Uint64() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// workerState pools one search worker's reusable allocations across
// Search calls: the evaluation scratch, the shared result buffer, the
// candidate ping-pong buffers and the dedup set dominate the per-call
// allocation profile of short searches.
type workerState struct {
	scratch *model.Scratch
	res     *model.Result
	bufA    *mapping.Mapping
	bufB    *mapping.Mapping
	seen    map[uint64]struct{}
}

// NewSession prepares an architecture for repeated searches.
func NewSession(a *arch.Arch) (*Session, error) {
	eng, err := model.NewEngine(a)
	if err != nil {
		return nil, err
	}
	s := &Session{
		a:           a,
		eng:         eng,
		assignments: enumerateSpatialAssignments(a),
		minLv:       minLevels(a),
		fp:          a.Fingerprint(),
		tpOne:       make([]bool, a.NumLevels()),
	}
	for i := range s.tpOne {
		tp := a.Level(i).MaxTemporalProduct
		s.tpOne[i] = tp == 1
		if tp > 0 {
			s.capped = append(s.capped, capLevel{level: i, tp: int64(tp)})
		}
	}
	if len(s.assignments) == 0 {
		return nil, errors.New("mapper: no spatial assignments")
	}
	return s, nil
}

// maxCachedSessions caps the process-wide session cache below. Sessions are
// small (resolved energy tables plus the assignment enumeration), but
// exploration runs build hundreds of architecture variants; past the cap
// the cache resets rather than growing without bound.
const maxCachedSessions = 256

// sessionCache reuses Sessions across one-shot Search/SearchNetwork calls,
// keyed by the architecture fingerprint (which covers structure and
// component energies — the same key the search Cache dedups on). Building
// a session costs ~100µs of engine resolution and assignment enumeration,
// which used to dominate short searches issued through the package-level
// helpers.
var (
	sessionCacheMu sync.Mutex
	sessionCache   = map[uint64]*Session{}
)

func sessionFor(a *arch.Arch) (*Session, error) {
	fp := a.Fingerprint()
	sessionCacheMu.Lock()
	s := sessionCache[fp]
	sessionCacheMu.Unlock()
	if s != nil {
		return s, nil
	}
	s, err := NewSession(a)
	if err != nil {
		return nil, err
	}
	sessionCacheMu.Lock()
	if len(sessionCache) >= maxCachedSessions {
		sessionCache = make(map[uint64]*Session, maxCachedSessions)
	}
	sessionCache[fp] = s
	sessionCacheMu.Unlock()
	return s, nil
}

// Engine returns the session's compiled evaluation engine.
func (s *Session) Engine() *model.Engine { return s.eng }

// Search finds the best mapping for the layer under the options. It is a
// convenience wrapper reusing a process-wide Session cache keyed by the
// architecture fingerprint; prefer NewSession + Session.Search when mapping
// several layers on the same architecture.
func Search(a *arch.Arch, l *workload.Layer, opts Options) (*Best, error) {
	s, err := sessionFor(a)
	if err != nil {
		return nil, err
	}
	return s.Search(l, opts)
}

// Search finds the best mapping for the layer under the options.
func (s *Session) Search(l *workload.Layer, opts Options) (*Best, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	if o.Cache != nil {
		return o.Cache.search(s, l, o)
	}
	return s.search(l, o)
}

// splitBudget distributes budget over workers without dropping the
// remainder: the first budget%workers workers get one extra evaluation, so
// the sum is exactly budget. (The previous integer division silently spent
// workers*floor(budget/workers); a budget below the worker count now runs
// budget single-evaluation workers instead of overspending.)
func splitBudget(budget, workers int) []int {
	out := make([]int, workers)
	base, rem := budget/workers, budget%workers
	for w := range out {
		out[w] = base
		if w < rem {
			out[w]++
		}
	}
	return out
}

// search runs the uncached search; o must have defaults applied.
func (s *Session) search(l *workload.Layer, o Options) (*Best, error) {
	c, err := s.eng.Compile(l)
	if err != nil {
		return nil, err
	}

	// Keep only warm starts that actually apply to this (arch, layer):
	// they come from neighboring searches and may not transfer.
	var warm []*mapping.Mapping
	for _, w := range o.WarmStarts {
		if w != nil && w.Valid(s.a, l) {
			warm = append(warm, w)
		}
	}

	type outcome struct {
		best  *Best
		evals int
		stats SearchStats
	}
	results := make([]outcome, o.Workers)
	var wg sync.WaitGroup
	budgets := splitBudget(o.Budget, o.Workers)
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(&splitmix64{x: uint64(o.Seed + int64(w)*7919)})
			best, evals, stats := s.searchWorker(c, l, o, rng, budgets[w], warm)
			results[w] = outcome{best, evals, stats}
		}(w)
	}
	wg.Wait()

	var best *Best
	evals := 0
	var stats SearchStats
	for w := range results {
		evals += results[w].evals
		stats.add(results[w].stats)
		if results[w].best == nil {
			continue
		}
		if best == nil || better(o.Objective, results[w].best, best) {
			best = results[w].best
		}
	}
	if best == nil {
		return nil, fmt.Errorf("mapper: no valid mapping found for %s on %s", l.Name, s.a.Name)
	}
	best.Evaluations = evals + stats.WarmStartEvals
	best.Stats = stats

	// The workers score candidates without the itemized energy ledger;
	// re-evaluate the winner once in full so callers can inspect it.
	fullOpts := o.Eval
	fullOpts.SkipValidate = true
	fullOpts.FullLedger = true
	full, err := c.Evaluate(best.Mapping, fullOpts)
	if err != nil {
		return nil, err
	}
	best.Result = full
	return best, nil
}

// assignmentRemaining computes the per-dimension temporal bound left after
// one flat spatial assignment — remaining() without materializing a
// mapping (all free spatial factors are 1 in mapper-drawn candidates).
func assignmentRemaining(a *arch.Arch, assign []workload.Dim, l *workload.Layer) workload.Point {
	spatial := workload.Ones()
	idx := 0
	for i := 0; i < a.NumLevels(); i++ {
		for j := range a.Level(i).Spatial {
			spatial[assign[idx+j]] *= a.Level(i).Spatial[j].Count
		}
		idx += len(a.Level(i).Spatial)
	}
	rem := workload.Ones()
	for _, d := range workload.AllDims() {
		rem[d] = workload.CeilDiv(l.Bound(d), spatial[d])
	}
	return rem
}

// better compares candidates with deterministic tie breaks: the objective,
// then total energy (a bandwidth-bound layer has many equal-delay mappings
// — prefer the cheapest), then utilization, then a stable textual order.
func better(obj Objective, x, y *Best) bool {
	return betterEval(obj, x.Result, x.Mapping, y)
}

// betterEval is better() without requiring the candidate to be wrapped in
// a Best (the hot loop compares scratch-owned results before cloning).
func betterEval(obj Objective, r *model.Result, m *mapping.Mapping, y *Best) bool {
	sx, sy := Score(obj, r), Score(obj, y.Result)
	if sx != sy {
		return sx < sy
	}
	if r.TotalPJ != y.Result.TotalPJ {
		return r.TotalPJ < y.Result.TotalPJ
	}
	if r.Utilization != y.Result.Utilization {
		return r.Utilization > y.Result.Utilization
	}
	return mappingStringLess(m, y.Mapping)
}

// tieBufPool holds render buffers for the final textual tie-break:
// full-tie comparisons are frequent enough (equal-energy spatial
// assignments, delay-tied schedules) that building two strings through fmt
// showed up in whole-figure profiles.
var tieBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// mappingStringLess reports m.String() < y.String() without allocating.
func mappingStringLess(m, y *mapping.Mapping) bool {
	bp := tieBufPool.Get().(*[]byte)
	yp := tieBufPool.Get().(*[]byte)
	mb := m.AppendString((*bp)[:0])
	yb := y.AppendString((*yp)[:0])
	less := bytes.Compare(mb, yb) < 0
	*bp, *yp = mb[:0], yb[:0]
	tieBufPool.Put(bp)
	tieBufPool.Put(yp)
	return less
}

// boundScore projects an admissible bound onto the objective's score
// scale. For EDP the product of two positive lower bounds is a lower bound
// of the product.
func boundScore(obj Objective, b model.Bound) float64 {
	switch obj {
	case MinDelay:
		return b.Cycles
	case MinEDP:
		return b.EnergyPJ * b.Cycles
	default:
		return b.EnergyPJ
	}
}

// candidate is the compact form of one random draw: everything needed to
// materialize the mapping without holding a full Mapping per draw, so the
// exploration stream can be drawn up front (preserving the legacy rng
// sequence exactly) and then scored in an order that maximizes shared
// evaluation state.
type candidate struct {
	assign   int32
	perm     []uint8          // per level, index into permCandidates
	temporal []workload.Point // per level
}

// drawCandidates draws the exploration stream — the same rng calls in the
// same order as one randomMapping per loop iteration — into k compact
// candidates, so the set is identical to what an interleaved draw-and-score
// loop would produce; only the scoring order changes, which cannot change
// the argmin (the incumbent comparison is a strict total order over
// distinct schedules).
//
// The draw is cap-aware: levels whose MaxTemporalProduct forbids any
// temporal loop are skipped in both the factor chains and the permutation
// draws. On photonic hierarchies (Albireo's analog accumulator, partial-sum
// and ring-bank levels) the blind draw landed a temporal factor on a capped
// level in essentially every candidate, so the whole random budget used to
// die in validation; skipping them redirects that budget to schedules that
// can actually win. A capped level's permutation is inert (it has no loops)
// and stays at the first candidate order.
func (s *Session) drawCandidates(l *workload.Layer, rng *rand.Rand, k, n int) []candidate {
	perms := make([]uint8, k*n)
	temps := make([]workload.Point, k*n)
	cands := make([]candidate, k)
	minLv := s.minLv
	// PaddedCandidates consults a process-global sync.Map; an index-addressed
	// worker-local cache is markedly cheaper in this loop. Bounds are small
	// (remaining temporal trip counts); truly huge ones fall through.
	const pcDirect = 1 << 14
	var pc [][]int
	paddedCands := func(bound int) []int {
		if bound >= pcDirect {
			return mapping.PaddedCandidates(bound)
		}
		if bound >= len(pc) {
			grown := make([][]int, bound+1)
			copy(grown, pc)
			pc = grown
		}
		if c := pc[bound]; c != nil {
			return c
		}
		c := mapping.PaddedCandidates(bound)
		pc[bound] = c
		return c
	}
	// Remaining temporal bounds per assignment, computed lazily: a draw
	// stream touches a handful of the enumerated assignments, and the old
	// loop recomputed the bounds for every single candidate.
	remTab := make([]workload.Point, len(s.assignments))
	remFor := func(ai int) workload.Point {
		if remTab[ai] == (workload.Point{}) {
			remTab[ai] = assignmentRemaining(s.a, s.assignments[ai], l)
		}
		return remTab[ai]
	}
	for ci := range cands {
		cand := &cands[ci]
		cand.perm = perms[ci*n : (ci+1)*n : (ci+1)*n]
		cand.temporal = temps[ci*n : (ci+1)*n : (ci+1)*n]
		ai := 0
		if rng.Intn(2) == 0 {
			ai = rng.Intn(len(s.assignments))
		}
		cand.assign = int32(ai)
		rem := remFor(ai)
		for i := range cand.temporal {
			cand.temporal[i] = workload.Ones()
		}
		for _, d := range workload.AllDims() {
			left := rem[d]
			for i := n - 1; i > minLv[d] && left > 1; i-- {
				if s.tpOne[i] {
					continue
				}
				cs := paddedCands(left)
				f := cs[rng.Intn(len(cs))]
				cand.temporal[i][d] = f
				left = workload.CeilDiv(left, f)
			}
			cand.temporal[minLv[d]][d] *= left
		}
		for i := 0; i < n; i++ {
			if s.tpOne[i] {
				continue
			}
			cand.perm[i] = uint8(rng.Intn(len(permCandidates)))
		}
	}
	return cands
}

// candidateKey packs a candidate's grouping fields into one word for the
// scoring-order sort: the spatial assignment in the high half, then the
// per-level permutation picks of the outermost 16 levels (2 bits each —
// permCandidates has 3 entries). Sorting by key groups candidates that
// share an assignment and permutation set; key ties keep draw order, so
// (key, draw index) is a deterministic total order. A single-word compare
// replaced a field-by-field comparator that dominated the sort's cost —
// any deterministic order yields the same search outcome (the incumbent
// comparison is a strict total order over distinct schedules).
func candidateKey(cand *candidate) uint64 {
	k := uint64(uint32(cand.assign)) << 32
	for i, p := range cand.perm {
		if i == 16 {
			break
		}
		k |= uint64(p&3) << (30 - 2*i)
	}
	return k
}

// materialize writes a compact candidate into buf, producing exactly the
// mapping randomMapping would have returned for the same draws. spatialOK
// asserts buf's spatial configuration (FreeSpatial and SpatialChoice) was
// last written for the same assignment and left untouched since — Temporal
// and Perm writes don't disturb it — so the applyAssignment rewrite would
// reproduce the bytes already there and is skipped. The scoring order
// groups candidates by assignment, so the skip hits on nearly every
// candidate after the first two of each run (one per ping-pong buffer).
func (s *Session) materialize(buf *mapping.Mapping, cand *candidate, spatialOK bool) {
	for i := range buf.Levels {
		lm := &buf.Levels[i]
		lm.Temporal = cand.temporal[i]
		if !spatialOK {
			lm.FreeSpatial = workload.Ones()
		}
		lm.Perm = append(lm.Perm[:0], permCandidates[cand.perm[i]]...)
	}
	if !spatialOK {
		applyAssignment(s.a, buf, s.assignments[cand.assign])
	}
}

// levelConfigEqual reports whether two level mappings are configured
// identically — the condition under which every evaluation-internal value
// derived from that level is bit-identical.
func levelConfigEqual(a, b *mapping.LevelMapping) bool {
	if a.Temporal != b.Temporal || a.FreeSpatial != b.FreeSpatial ||
		len(a.SpatialChoice) != len(b.SpatialChoice) || len(a.Perm) != len(b.Perm) {
		return false
	}
	for i := range a.SpatialChoice {
		if a.SpatialChoice[i] != b.SpatialChoice[i] {
			return false
		}
	}
	for i := range a.Perm {
		if a.Perm[i] != b.Perm[i] {
			return false
		}
	}
	return true
}

// levelsShared counts the leading storage levels on which two mappings are
// configured identically — the delta EvaluatePartial may reuse.
func levelsShared(prev, m *mapping.Mapping) int {
	if prev == nil || len(prev.Levels) != len(m.Levels) {
		return 0
	}
	for i := range m.Levels {
		if !levelConfigEqual(&prev.Levels[i], &m.Levels[i]) {
			return i
		}
	}
	return len(m.Levels)
}

// searchWorker runs one worker's slice of the search: seeds, warm starts,
// the (reordered) random exploration stream, and the hill climb. The
// returned Best is bit-identical to the legacy always-evaluate worker for
// the same (seed, budget) — the lower-bound gate only discards candidates
// that provably cannot win, and delta evaluation reproduces full
// evaluations exactly (both properties are pinned by equivalence tests).
func (s *Session) searchWorker(c *model.Compiled, l *workload.Layer, o Options, rng *rand.Rand, budget int, warm []*mapping.Mapping) (best *Best, evals int, st SearchStats) {
	if budget <= 0 {
		return nil, 0, st
	}
	a := s.a
	n := a.NumLevels()
	ws, _ := s.workers.Get().(*workerState)
	if ws == nil {
		ws = &workerState{
			scratch: s.eng.NewScratch(),
			res:     &model.Result{},
			bufA:    mapping.New(a),
			bufB:    mapping.New(a),
			seen:    make(map[uint64]struct{}, 512),
		}
	}
	defer func() {
		clear(ws.seen)
		s.workers.Put(ws)
	}()
	scratch, res, seen := ws.scratch, ws.res, ws.seen
	evalOpts := model.Options{SkipValidate: true, ChargeStatic: o.Eval.ChargeStatic}
	validate := !o.Eval.SkipValidate

	// cutoff is the pruning incumbent's result: phases 0-1 track the
	// worker best, the hill climb its (only improving) cursor. prevEval
	// holds the delta baseline — the last staged mapping on the batched
	// path, the last successfully evaluated one on the noBatch reference
	// path; its content must stay untouched until the next evaluation, so
	// candidate materialization ping-pongs between two buffers.
	var cutoff *model.Result
	var prevEval *mapping.Mapping
	// lastSpatialKey identifies the spatial configuration of the last
	// staged mapping: the spatial-assignment index for candidates built
	// from one (warmup, random draws), -1 for mappings of unknown
	// provenance (seeds, warm starts, hill-climb cursors). Two mappings
	// built from the same assignment have bit-identical spatial
	// configurations (FreeSpatial is Ones, choices copy the assignment),
	// so a key match lets Stage skip the spatial-factor and instance
	// resolution outright — no per-level comparison needed.
	lastSpatialKey := int64(-1)
	lbTried, lbPruned := 0, 0
	bufA, bufB := ws.bufA, ws.bufB
	matBuf := func() *mapping.Mapping {
		if prevEval == bufA {
			return bufB
		}
		return bufA
	}
	// Per-buffer record of which assignment's spatial configuration the
	// buffer holds (-1: unknown), letting materialize skip the rewrite.
	assignA, assignB := int32(-1), int32(-1)
	bufAssign := func(m *mapping.Mapping) *int32 {
		if m == bufA {
			return &assignA
		}
		return &assignB
	}

	// lbGate reports whether the adaptive pruning gate is open: the bound
	// check runs unconditionally through a probation window, then stays on
	// only while it keeps a minimum hit rate. Gating never changes results
	// — a skipped check just means the candidate is fully evaluated. Only
	// the reference path uses it: there the bound is a separate LowerBound
	// call worth skipping when it stops paying off, whereas the batched
	// path gets the bound as a byproduct of staging and always checks it.
	lbGate := func() bool {
		return cutoff != nil && !o.noPrune &&
			(lbTried < lbProbation || lbPruned*lbKeepRate >= lbTried)
	}

	// tryRef is the reference scoring path (noBatch): separate LowerBound
	// and EvaluatePartial calls in the legacy order — validate, record,
	// bound gate, delta evaluation. The batched path below must return a
	// bit-identical Best for the same candidate stream; the equivalence
	// tests pin it against this.
	tryRef := func(m *mapping.Mapping, fp uint64, doValidate bool) *model.Result {
		if doValidate && !m.Valid(a, l) {
			st.Invalid++
			return nil
		}
		seen[fp] = struct{}{}
		if lbGate() {
			lbTried++
			if boundScore(o.Objective, c.LowerBound(scratch, m, evalOpts)) > Score(o.Objective, cutoff) {
				lbPruned++
				st.Pruned++
				return nil
			}
		}
		shared := 0
		if !o.noDelta {
			shared = levelsShared(prevEval, m)
		}
		if err := c.EvaluatePartial(scratch, m, res, evalOpts, shared); err != nil {
			prevEval = nil
			return nil
		}
		if shared > 0 {
			st.DeltaEvals++
		} else {
			st.FullEvals++
		}
		prevEval = m
		return res
	}

	// retainValidate marks the last scored candidate as still owing its
	// full validation: the batched path defers m.Valid to retention time
	// (the accept sites below), because Valid rejects almost nothing
	// (~2 of 360 candidates on the seeded bench) yet walking every
	// candidate through it cost ~11% of search. A candidate that is never
	// retained never pays for validation; retainDelta remembers which
	// stats bucket its evaluation was charged to so a retention-time
	// rejection can recategorize it as Invalid, keeping the accounting
	// identity (Pruned + DeltaEvals + FullEvals + Duplicates + Invalid ==
	// charged attempts) intact.
	var retainValidate, retainDelta bool

	// try scores a mapping on the compiled fast path. Budget is consumed
	// per charged attempt; schedules already fingerprinted return nil
	// without re-evaluating (an already-seen schedule was scored, pruned,
	// or failed deterministically, and can never beat the incumbent, so
	// skipping it is behavior preserving).
	//
	// The default path stages each candidate once (model.Compiled.Stage):
	// one shared-prefix core resolution serves the admissible bound, and —
	// only for candidates the bound cannot discard — the finishing passes
	// (FinishStaged). Pruned candidates therefore cost a core resolution
	// instead of a bound plus a full evaluation's worth of resolution, and
	// they still advance the delta-evaluation chain. Pruning needs no
	// validity and full validation is deferred to retention (see
	// retainValidate), so an invalid candidate lands in Pruned or the
	// eval buckets unless it is retained; neither kind can become the
	// incumbent — Best is unaffected, only the stats split differs from
	// the reference path. Deferral also means an invalid schedule's
	// fingerprint now enters seen (the reference path leaves it out); a
	// later distinct schedule is shadowed only by a 64-bit fingerprint
	// collision, which the dedup already accepts for valid schedules.
	try := func(m *mapping.Mapping, charge, mustValidate bool, spatialKey int64) *model.Result {
		retainValidate = false
		if charge {
			if evals >= budget {
				return nil
			}
			evals++
		}
		doValidate := validate || mustValidate
		if doValidate {
			// Fast subset of Valid: temporal loops on a capped level (an
			// analog accumulator, a ring bank) can never validate, and
			// hill-climb moves produce them constantly. Rejecting before
			// fingerprinting and full validation is behavior preserving —
			// invalid candidates are never recorded either way.
			for _, cl := range s.capped {
				if m.Levels[cl.level].Temporal.Product() > cl.tp {
					st.Invalid++
					return nil
				}
			}
		}
		fp := m.Fingerprint()
		if _, dup := seen[fp]; dup {
			st.Duplicates++
			return nil
		}
		if o.noBatch {
			return tryRef(m, fp, doValidate)
		}
		shared, sfShared := 0, 0
		if !o.noDelta {
			shared = levelsShared(prevEval, m)
			if spatialKey >= 0 && spatialKey == lastSpatialKey {
				sfShared = n
			}
		}
		// The staged bound is a byproduct of the core resolution, so unlike
		// the reference path there is no adaptive gate here: checking it is
		// free, and it always prunes when it can. When the objective is
		// pure energy, the incumbent's score doubles as Stage's early-exit
		// threshold: the bound stops accumulating once the partial sum
		// alone proves the prune. The returned (partial) bound then exceeds
		// the cutoff exactly when the full bound would, so the decision
		// below is unchanged. Other objectives need the full bound (their
		// score mixes in cycles).
		prune := cutoff != nil && !o.noPrune
		limitPJ := math.Inf(1)
		if prune && o.Objective == MinEnergy {
			limitPJ = cutoff.TotalPJ
		}
		bound, err := c.Stage(scratch, m, evalOpts, shared, sfShared, limitPJ)
		if err != nil {
			prevEval = nil
			lastSpatialKey = -1
			return nil
		}
		prevEval = m
		lastSpatialKey = spatialKey
		// Admissible pruning: skip the finishing passes only when the
		// bound proves the candidate cannot strictly beat the incumbent.
		// The check must be a strict inequality — a candidate whose true
		// score ties the incumbent can still win the deterministic
		// tie-break.
		if prune && boundScore(o.Objective, bound) > Score(o.Objective, cutoff) {
			st.Pruned++
			seen[fp] = struct{}{}
			return nil
		}
		seen[fp] = struct{}{}
		if err := c.FinishStaged(scratch, res, evalOpts); err != nil {
			prevEval = nil
			return nil
		}
		if shared > 0 {
			st.DeltaEvals++
			retainDelta = true
		} else {
			st.FullEvals++
			retainDelta = false
		}
		retainValidate = doValidate
		return res
	}
	// retain runs the deferred full validation on a candidate about to be
	// accepted. A rejection recategorizes the candidate's charged
	// evaluation as Invalid — it was scored, but it may not win.
	retain := func(m *mapping.Mapping) bool {
		if retainValidate {
			retainValidate = false
			if !m.Valid(a, l) {
				if retainDelta {
					st.DeltaEvals--
				} else {
					st.FullEvals--
				}
				st.Invalid++
				return false
			}
		}
		return true
	}
	consider := func(m *mapping.Mapping, r *model.Result) {
		if r == nil {
			return
		}
		if (best == nil || betterEval(o.Objective, r, m, best)) && retain(m) {
			best = &Best{Mapping: m.Clone(), Result: r.Clone()}
			cutoff = best.Result
		}
	}

	// Phase 0: caller-provided seed mappings, then warm starts (validated
	// always — they come from other searches — and not budget-charged).
	// Seeds are tried in place: nothing below mutates a candidate, and
	// consider clones on retention.
	for _, seed := range o.Seeds {
		consider(seed, try(seed, true, false, -1))
	}
	for _, w := range warm {
		// Already validated once in search(); try only dedups and scores.
		r := try(w, false, false, -1)
		if r != nil {
			st.WarmStartEvals++
		}
		consider(w, r)
	}

	// Phase 0.5: when nothing has set an incumbent yet, score the trivial
	// all-outer mapping of the first few assignments (canonical first)
	// before random exploration, so the bound gate has a cutoff from the
	// very first draw instead of fully evaluating candidates until one
	// happens to succeed. Capped at a tenth of the budget — these are
	// deliberately mediocre mappings, only there to arm the pruning gate.
	if best == nil {
		wcap := budget / 10
		if wcap > len(s.assignments) {
			wcap = len(s.assignments)
		}
		for ai, assign := range s.assignments[:wcap] {
			if evals >= budget {
				break
			}
			m := matBuf()
			outerInto(a, m, l, assign, s.minLv)
			*bufAssign(m) = int32(ai)
			consider(m, try(m, true, false, int64(ai)))
		}
	}

	// Phase 1: random sampling across spatial assignments. The canonical
	// assignment (every factor on its first-listed dimension) is the
	// architect's intended use and gets half the samples; the rest
	// explore alternates (how FC layers find channel-parallel slots).
	// The stream is drawn up front and scored grouped by (assignment,
	// permutations, outer factors) so consecutive candidates share
	// evaluation state; the candidate set — and hence the outcome — is
	// identical to the legacy interleaved loop.
	if k := budget*7/10 - evals; k > 0 {
		cands := s.drawCandidates(l, rng, k, n)
		// Cheap structural pre-reject on the compact form, mirroring
		// Validate's MaxTemporalProduct rule exactly: a draw that puts
		// temporal loops on a capped level (an analog accumulator, a ring
		// bank) can never validate, so it is charged and dropped before
		// fingerprinting and materialization. The legacy loop paid a full
		// Validate per such draw. Gated on the same validate flag as
		// try(): a SkipValidate search trusts (and fully evaluates) every
		// draw, exactly like the legacy sampler.
		order := make([]int, 0, k)
	prefilter:
		for ci := range cands {
			if validate {
				for _, cl := range s.capped {
					if cands[ci].temporal[cl.level].Product() > cl.tp {
						evals++
						st.Invalid++
						continue prefilter
					}
				}
			}
			order = append(order, ci)
		}
		keys := make([]uint64, len(cands))
		for ci := range cands {
			keys[ci] = candidateKey(&cands[ci])
		}
		sort.Slice(order, func(i, j int) bool {
			if keys[order[i]] != keys[order[j]] {
				return keys[order[i]] < keys[order[j]]
			}
			return order[i] < order[j]
		})
		for _, ci := range order {
			m := matBuf()
			ba := bufAssign(m)
			s.materialize(m, &cands[ci], *ba == cands[ci].assign)
			*ba = cands[ci].assign
			consider(m, try(m, true, false, int64(cands[ci].assign)))
		}
	}

	// Phase 2: hill climb from the best mapping found.
	if best == nil {
		// Fall back to the trivial all-outer mapping per assignment —
		// on architectures whose capped levels reject every random draw
		// (Albireo unseeded) this is where the incumbent comes from.
		// Materialized into the ping-pong buffers; construction stops
		// once the budget cannot admit another attempt.
		for ai, assign := range s.assignments {
			if evals >= budget {
				break
			}
			m := matBuf()
			outerInto(a, m, l, assign, s.minLv)
			*bufAssign(m) = int32(ai)
			consider(m, try(m, true, false, int64(ai)))
		}
	}
	if best == nil {
		return nil, evals, st
	}
	cur := best
	cutoff = cur.Result
	// Every climb neighbor copies cur's spatial configuration verbatim
	// (edits touch only temporal factors and permutations, and cur is only
	// ever replaced by a clone of such a neighbor), so the whole climb
	// shares one spatial config. A sentinel key one past the assignment
	// indices lets consecutive climb evaluations skip re-resolving it.
	climbKey := int64(len(s.assignments))
	for evals < budget {
		improved := false
		for _, e := range neighborEdits(a, cur.Mapping, rng) {
			nb := matBuf()
			copyMapping(nb, cur.Mapping)
			*bufAssign(nb) = -1
			applyEdit(nb, e)
			r := try(nb, true, false, climbKey)
			if r == nil {
				continue
			}
			if betterEval(o.Objective, r, nb, cur) && retain(nb) {
				cur = &Best{Mapping: nb.Clone(), Result: r.Clone()}
				cutoff = cur.Result
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	if cur != best && betterEval(o.Objective, cur.Result, cur.Mapping, best) {
		best = cur
	}
	return best, evals, st
}

// maxSpatialAssignments caps the enumerated cross product of rigid
// spatial-factor assignments.
const maxSpatialAssignments = 4096

// enumerateSpatialAssignments expands the cross product of every rigid
// spatial factor's allowed dimensions. Small products are enumerated in
// full, in lexicographic order with the first factor most significant
// (index 0 is the canonical all-first-dimension assignment). Products
// beyond maxSpatialAssignments are sampled uniformly (and
// deterministically, from a fixed seed) over the full cross product, so
// every factor's alternates stay represented regardless of factor order —
// the straight prefix truncation this replaces silently dropped all
// alternates of the leading factors.
func enumerateSpatialAssignments(a *arch.Arch) [][]workload.Dim {
	var factors []arch.SpatialFactor
	for i := 0; i < a.NumLevels(); i++ {
		factors = append(factors, a.Level(i).Spatial...)
	}
	total := int64(1)
	const saturate = int64(1) << 55
	for _, f := range factors {
		total *= int64(len(f.Dims))
		if total > saturate {
			// Sampling below saturation is still deterministic; exact
			// uniformity over an astronomically large product is moot.
			total = saturate
			break
		}
	}
	if total <= maxSpatialAssignments {
		out := make([][]workload.Dim, 0, total)
		for idx := int64(0); idx < total; idx++ {
			out = append(out, decodeAssignment(factors, idx))
		}
		return out
	}
	// Canonical assignment first, then distinct uniform samples.
	rng := rand.New(rand.NewSource(1))
	seen := map[int64]struct{}{0: {}}
	out := make([][]workload.Dim, 0, maxSpatialAssignments)
	out = append(out, decodeAssignment(factors, 0))
	for len(out) < maxSpatialAssignments {
		idx := rng.Int63n(total)
		if _, dup := seen[idx]; dup {
			continue
		}
		seen[idx] = struct{}{}
		out = append(out, decodeAssignment(factors, idx))
	}
	return out
}

// decodeAssignment expands one lexicographic index of the assignment cross
// product (first factor most significant) into per-factor dimensions.
func decodeAssignment(factors []arch.SpatialFactor, idx int64) []workload.Dim {
	assign := make([]workload.Dim, len(factors))
	for j := len(factors) - 1; j >= 0; j-- {
		n := int64(len(factors[j].Dims))
		assign[j] = factors[j].Dims[idx%n]
		idx /= n
	}
	return assign
}

// applyAssignment distributes a flat assignment vector back to levels,
// reusing the mapping's SpatialChoice backing arrays.
func applyAssignment(a *arch.Arch, m *mapping.Mapping, assign []workload.Dim) {
	idx := 0
	for i := 0; i < a.NumLevels(); i++ {
		n := len(a.Level(i).Spatial)
		m.Levels[i].SpatialChoice = append(m.Levels[i].SpatialChoice[:0], assign[idx:idx+n]...)
		idx += n
	}
}

// remaining returns the per-dim temporal bound left after spatial factors.
func remaining(a *arch.Arch, m *mapping.Mapping, l *workload.Layer) workload.Point {
	spatial := workload.Ones()
	for i := 0; i < a.NumLevels(); i++ {
		spatial = spatial.Mul(m.SpatialAt(a, i))
	}
	rem := workload.Ones()
	for _, d := range workload.AllDims() {
		rem[d] = workload.CeilDiv(l.Bound(d), spatial[d])
	}
	return rem
}

// minLevels returns, per dimension, the outermost level at which loops over
// that dimension may legally appear: the innermost of the outermost-keeper
// levels of the tensors the dimension addresses. (Loops above a tensor's
// outermost keeper would demand data from a level that does not store it —
// this is what pins activations on chip in fusion studies.)
func minLevels(a *arch.Arch) workload.Point {
	var min workload.Point
	for _, t := range workload.AllTensors() {
		keeps := a.KeepLevels(t)
		if len(keeps) == 0 {
			continue
		}
		k0 := keeps[0]
		for _, d := range workload.AllDims() {
			if workload.Relevant(t, d) && k0 > min[d] {
				min[d] = k0
			}
		}
	}
	return min
}

// outerMapping covers each dimension's remaining bound at the outermost
// level allowed for it.
func outerMapping(a *arch.Arch, l *workload.Layer, assign []workload.Dim, min workload.Point) *mapping.Mapping {
	m := mapping.New(a)
	applyAssignment(a, m, assign)
	rem := remaining(a, m, l)
	for _, d := range workload.AllDims() {
		m.Levels[min[d]].Temporal[d] = rem[d]
	}
	return m
}

// outerInto is outerMapping materialized into a reusable buffer: inert
// factors and canonical permutations everywhere, the assignment applied,
// and each dimension's remaining bound at its outermost legal level.
func outerInto(a *arch.Arch, m *mapping.Mapping, l *workload.Layer, assign []workload.Dim, min workload.Point) {
	for i := range m.Levels {
		lm := &m.Levels[i]
		lm.Temporal = workload.Ones()
		lm.FreeSpatial = workload.Ones()
		lm.Perm = append(lm.Perm[:0], mapping.CanonicalPerm()...)
	}
	applyAssignment(a, m, assign)
	rem := assignmentRemaining(a, assign, l)
	for _, d := range workload.AllDims() {
		m.Levels[min[d]].Temporal[d] = rem[d]
	}
}

// randomMapping draws a random temporal split and permutation set — the
// reference generator drawCandidates is pinned against. Levels whose
// MaxTemporalProduct forbids temporal loops are skipped (no factor or
// permutation draws; see drawCandidates).
func randomMapping(a *arch.Arch, l *workload.Layer, assign []workload.Dim, min workload.Point, rng *rand.Rand) *mapping.Mapping {
	m := mapping.New(a)
	applyAssignment(a, m, assign)
	rem := remaining(a, m, l)
	n := a.NumLevels()
	for _, d := range workload.AllDims() {
		// Pick an inner tile chain: for each level from innermost out,
		// choose a candidate factor of what remains; the residue lands
		// on the outermost level allowed for this dimension.
		left := rem[d]
		for i := n - 1; i > min[d] && left > 1; i-- {
			if a.Level(i).MaxTemporalProduct == 1 {
				continue
			}
			cands := mapping.PaddedCandidates(left)
			f := cands[rng.Intn(len(cands))]
			m.Levels[i].Temporal[d] = f
			left = workload.CeilDiv(left, f)
		}
		m.Levels[min[d]].Temporal[d] *= left
	}
	for i := 0; i < n; i++ {
		pi := 0
		if a.Level(i).MaxTemporalProduct != 1 {
			pi = rng.Intn(len(permCandidates))
		}
		m.Levels[i].Perm = append(m.Levels[i].Perm[:0], permCandidates[pi]...)
	}
	return m
}

// neighborEdit is one local move around a mapping: a factor of 2..3 of one
// dimension shifted between adjacent levels, or one level's permutation
// replaced. Edits are generated instead of cloned mappings so the hill
// climb can materialize each neighbor into a pooled buffer on demand —
// the legacy generator cloned every neighbor up front (~150 mappings per
// climb round, most rejected within nanoseconds).
type neighborEdit struct {
	from, to int8 // factor move: from -> to; -1,-1 for a permutation edit
	dim      workload.Dim
	factor   int8
	perm     int8 // permutation edit: index into permCandidates
	level    int8 // permutation edit: level whose Perm is replaced
}

// neighborEdits lists the local moves around m in the legacy generation
// order and applies the same rng shuffle — shuffling an edit list draws
// exactly what shuffling the cloned-mapping list drew, so the climb visits
// neighbors in the identical order.
func neighborEdits(a *arch.Arch, m *mapping.Mapping, rng *rand.Rand) []neighborEdit {
	var out []neighborEdit
	n := a.NumLevels()
	// Move a factor of 2..3 of one dim between adjacent levels.
	for i := 0; i < n-1; i++ {
		for _, d := range workload.AllDims() {
			if m.Levels[i].Temporal[d] > 1 {
				for _, f := range []int8{2, 3} {
					if m.Levels[i].Temporal[d]%int(f) == 0 {
						out = append(out, neighborEdit{from: int8(i), to: int8(i + 1), dim: d, factor: f})
					}
				}
			}
			if m.Levels[i+1].Temporal[d] > 1 {
				for _, f := range []int8{2, 3} {
					if m.Levels[i+1].Temporal[d]%int(f) == 0 {
						out = append(out, neighborEdit{from: int8(i + 1), to: int8(i), dim: d, factor: f})
					}
				}
			}
		}
	}
	// Swap permutations.
	for i := 0; i < n; i++ {
		for p := range permCandidates {
			out = append(out, neighborEdit{from: -1, to: -1, level: int8(i), perm: int8(p)})
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// copyMapping copies src into dst reusing dst's backing arrays (both built
// by mapping.New for the same architecture).
func copyMapping(dst, src *mapping.Mapping) {
	for i := range src.Levels {
		d, s := &dst.Levels[i], &src.Levels[i]
		d.Temporal = s.Temporal
		d.FreeSpatial = s.FreeSpatial
		d.Perm = append(d.Perm[:0], s.Perm...)
		d.SpatialChoice = append(d.SpatialChoice[:0], s.SpatialChoice...)
	}
}

// applyEdit applies a neighbor edit in place.
func applyEdit(m *mapping.Mapping, e neighborEdit) {
	if e.from >= 0 {
		m.Levels[e.from].Temporal[e.dim] /= int(e.factor)
		m.Levels[e.to].Temporal[e.dim] *= int(e.factor)
		return
	}
	m.Levels[e.level].Perm = append(m.Levels[e.level].Perm[:0], permCandidates[e.perm]...)
}

// SearchNetwork maps every layer of a network and returns per-layer bests
// in layer order, sharing one (cached) Session across the layers. Layers
// are searched concurrently.
func SearchNetwork(a *arch.Arch, net *workload.Network, opts Options) ([]*Best, error) {
	s, err := sessionFor(a)
	if err != nil {
		return nil, err
	}
	return s.SearchNetwork(net, opts)
}

// SearchNetwork maps every layer of a network on the session's
// architecture; distinct layer shapes are searched concurrently.
//
// Layers with equal shape fingerprints search identically (a search
// depends only on the layer's shape and the options), so one
// representative per distinct shape is searched and its result cloned for
// the duplicates — bit-identical to searching every layer, and a large
// saving on networks built from repeated blocks (ResNet's basic blocks,
// VGG's paired convolutions). This is the incumbent threading the sweep
// performs across points, applied within a network where it is exact.
func (s *Session) SearchNetwork(net *workload.Network, opts Options) ([]*Best, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	bests := make([]*Best, len(net.Layers))
	errs := make([]error, len(net.Layers))
	rep := make([]int, len(net.Layers)) // representative index per layer
	firstByShape := make(map[uint64]int, len(net.Layers))
	var reps []int
	for i := range net.Layers {
		fp := net.Layers[i].ShapeFingerprint()
		if j, ok := firstByShape[fp]; ok {
			rep[i] = j
		} else {
			firstByShape[fp] = i
			rep[i] = i
			reps = append(reps, i)
		}
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for _, i := range reps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bests[i], errs[i] = s.Search(&net.Layers[i], opts)
		}(i)
	}
	wg.Wait()
	for _, i := range reps {
		if errs[i] != nil {
			return nil, fmt.Errorf("mapper: layer %s: %w", net.Layers[i].Name, errs[i])
		}
	}
	for i := range net.Layers {
		if rep[i] != i {
			bests[i] = bests[rep[i]].CloneFor(net.Layers[i].Name)
		}
	}
	return bests, nil
}

func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

// Exhaustive enumerates every combination of spatial assignment, divisor
// split and candidate permutation for small problems, guaranteeing the
// optimum within that (restricted-permutation) space. It errors if the
// space exceeds maxEvals.
func Exhaustive(a *arch.Arch, l *workload.Layer, obj Objective, maxEvals int) (*Best, error) {
	s, err := NewSession(a)
	if err != nil {
		return nil, err
	}
	return s.Exhaustive(l, obj, maxEvals)
}

// Exhaustive runs the exhaustive search on the session's architecture.
func (s *Session) Exhaustive(l *workload.Layer, obj Objective, maxEvals int) (*Best, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if maxEvals <= 0 {
		maxEvals = 200000
	}
	a := s.a
	n := a.NumLevels()
	c, err := s.eng.Compile(l)
	if err != nil {
		return nil, err
	}

	// Estimate the space.
	est := float64(len(s.assignments)) * math.Pow(float64(len(permCandidates)), float64(n))
	for _, d := range workload.AllDims() {
		splits := len(mapping.FactorSplits(l.Bound(d), n))
		if splits > 0 {
			est *= float64(splits)
		}
		if est > float64(maxEvals)*100 {
			return nil, fmt.Errorf("mapper: exhaustive space too large (~%g)", est)
		}
	}

	w := &exhaustiveWalk{
		a: a, l: l, c: c, obj: obj, maxEvals: maxEvals,
		scratch: s.eng.NewScratch(),
		res:     &model.Result{},
	}
	for _, assign := range s.assignments {
		base := mapping.New(a)
		applyAssignment(a, base, assign)
		rem := remaining(a, base, l)
		dimSplits := make([][][]int, workload.NumDims)
		for _, d := range workload.AllDims() {
			dimSplits[d] = mapping.FactorSplits(rem[d], n)
		}
		var walk func(d int, m *mapping.Mapping)
		walk = func(d int, m *mapping.Mapping) {
			if w.evals > maxEvals {
				return
			}
			if d == int(workload.NumDims) {
				w.walkPerms(m, 0)
				return
			}
			for _, split := range dimSplits[d] {
				cm := m.Clone()
				for i := 0; i < n; i++ {
					cm.Levels[i].Temporal[workload.Dim(d)] = split[i]
				}
				walk(d+1, cm)
			}
		}
		walk(0, base)
	}
	if w.best == nil {
		return nil, errors.New("mapper: exhaustive search found no valid mapping")
	}
	w.best.Evaluations = w.evals

	// Re-evaluate the winner with the full ledger.
	full, err := c.Evaluate(w.best.Mapping, model.Options{SkipValidate: true, FullLedger: true})
	if err != nil {
		return nil, err
	}
	w.best.Result = full
	return w.best, nil
}

// exhaustiveWalk carries the shared state of one exhaustive enumeration.
type exhaustiveWalk struct {
	a        *arch.Arch
	l        *workload.Layer
	c        *model.Compiled
	obj      Objective
	maxEvals int
	scratch  *model.Scratch
	res      *model.Result
	best     *Best
	evals    int
}

func (w *exhaustiveWalk) walkPerms(m *mapping.Mapping, level int) {
	if w.evals > w.maxEvals {
		return
	}
	if level == w.a.NumLevels() {
		w.evals++
		if err := m.Validate(w.a, w.l); err != nil {
			return
		}
		if err := w.c.EvaluateInto(w.scratch, m, w.res, model.Options{SkipValidate: true}); err != nil {
			return
		}
		if w.best == nil || betterEval(w.obj, w.res, m, w.best) {
			w.best = &Best{Mapping: m.Clone(), Result: w.res.Clone()}
		}
		return
	}
	// Only permute levels that actually have multiple loops.
	active := 0
	for _, d := range workload.AllDims() {
		if m.Levels[level].Temporal[d] > 1 {
			active++
		}
	}
	if active <= 1 {
		w.walkPerms(m, level+1)
		return
	}
	for _, cand := range permCandidates {
		m.Levels[level].Perm = append([]workload.Dim(nil), cand...)
		w.walkPerms(m, level+1)
	}
}

// SortBests orders a slice of bests deterministically by layer name (used
// by reporting code).
func SortBests(bests []*Best) {
	sort.SliceStable(bests, func(i, j int) bool {
		return bests[i].Result.Layer < bests[j].Result.Layer
	})
}
