package mapper

import (
	"testing"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/workload"
)

func testArch(t *testing.T, bufCapBits int64) *arch.Arch {
	t.Helper()
	lib := components.NewLibrary()
	mk := func(class, name string, p components.Params) {
		c, err := components.Build(class, name, p)
		if err != nil {
			t.Fatal(err)
		}
		lib.MustAdd(c)
	}
	mk("dram", "DRAM", components.Params{"pj_per_bit": 8})
	mk("sram", "Buf", components.Params{"capacity_bits": float64(bufCapBits), "access_bits": 8})
	mk("regfile", "Reg", components.Params{"access_bits": 8})
	a := &arch.Arch{
		Name: "searchable", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Buf", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
				CapacityBits: bufCapBits,
				Spatial:      []arch.SpatialFactor{arch.Choice(4, workload.DimK, workload.DimC)},
			},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg", CapacityBits: 2048},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSearchFindsValidMapping(t *testing.T) {
	a := testArch(t, 1<<20)
	l := workload.NewConv("l", 1, 16, 8, 8, 8, 3, 3, 1, 1)
	best, err := Search(a, &l, Options{Budget: 400, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := best.Mapping.Validate(a, &l); err != nil {
		t.Fatalf("returned invalid mapping: %v", err)
	}
	if best.Result.TotalPJ <= 0 {
		t.Error("zero energy result")
	}
	if best.Evaluations == 0 {
		t.Error("no evaluations recorded")
	}
}

func TestSearchDeterministicForSeed(t *testing.T) {
	a := testArch(t, 1<<20)
	l := workload.NewConv("l", 1, 16, 8, 8, 8, 3, 3, 1, 1)
	b1, err := Search(a, &l, Options{Budget: 300, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Search(a, &l, Options{Budget: 300, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b1.Result.TotalPJ != b2.Result.TotalPJ {
		t.Errorf("same seed, different results: %g vs %g", b1.Result.TotalPJ, b2.Result.TotalPJ)
	}
	if b1.Mapping.String() != b2.Mapping.String() {
		t.Error("same seed, different mappings")
	}
}

func TestSearchBeatsNaiveOuterMapping(t *testing.T) {
	a := testArch(t, 1<<20)
	l := workload.NewConv("l", 1, 16, 16, 8, 8, 3, 3, 1, 1)
	best, err := Search(a, &l, Options{Budget: 1500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Naive: everything at DRAM level, canonical spatial choice.
	assign := []workload.Dim{workload.DimK}
	naive := outerMapping(a, &l, assign, minLevels(a))
	naiveRes, err := model.Evaluate(a, &l, naive, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if best.Result.TotalPJ >= naiveRes.TotalPJ {
		t.Errorf("search %g pJ did not beat naive %g pJ", best.Result.TotalPJ, naiveRes.TotalPJ)
	}
}

func TestSearchRespectsCapacity(t *testing.T) {
	// Tiny buffer: the only valid mappings keep tiles small.
	a := testArch(t, 4096)
	l := workload.NewConv("l", 1, 8, 8, 8, 8, 3, 3, 1, 1)
	best, err := Search(a, &l, Options{Budget: 800, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := best.Mapping.Validate(a, &l); err != nil {
		t.Fatalf("capacity-violating mapping returned: %v", err)
	}
}

func TestSearchSpatialChoiceMatters(t *testing.T) {
	// With K=2 but C=64, assigning the 4-way spatial factor to C must win
	// on utilization (and it is the only way to reach full throughput).
	a := testArch(t, 1<<20)
	l := workload.NewConv("l", 1, 2, 64, 8, 8, 1, 1, 1, 0)
	best, err := Search(a, &l, Options{Objective: MinDelay, Budget: 1200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	choice := best.Mapping.Levels[1].SpatialChoice[0]
	if choice != workload.DimC {
		t.Errorf("spatial choice = %v, want C (K=2 would waste half the array)", choice)
	}
}

func TestExhaustiveMatchesOrBeatsRandom(t *testing.T) {
	a := testArch(t, 1<<20)
	l := workload.NewConv("l", 1, 4, 4, 2, 2, 1, 1, 1, 0)
	ex, err := Exhaustive(a, &l, MinEnergy, 0)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Search(a, &l, Options{Budget: 2000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Result.TotalPJ > rnd.Result.TotalPJ+1e-9 {
		t.Errorf("exhaustive %g pJ worse than random %g pJ", ex.Result.TotalPJ, rnd.Result.TotalPJ)
	}
}

func TestExhaustiveRejectsHugeSpaces(t *testing.T) {
	a := testArch(t, 1<<20)
	l := workload.NewConv("l", 1, 512, 512, 56, 56, 3, 3, 1, 1)
	if _, err := Exhaustive(a, &l, MinEnergy, 1000); err == nil {
		t.Error("Exhaustive accepted a huge space")
	}
}

func TestSearchNetwork(t *testing.T) {
	a := testArch(t, 1<<20)
	net := workload.Network{Name: "tiny", Layers: []workload.Layer{
		workload.NewConv("c1", 1, 8, 4, 8, 8, 3, 3, 1, 1),
		workload.NewConv("c2", 1, 8, 8, 8, 8, 3, 3, 1, 1),
		workload.NewFC("fc", 1, 10, 64),
	}}
	bests, err := SearchNetwork(a, &net, Options{Budget: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(bests) != 3 {
		t.Fatalf("got %d bests", len(bests))
	}
	for i, b := range bests {
		if b == nil || b.Result == nil {
			t.Fatalf("layer %d missing result", i)
		}
		if err := b.Mapping.Validate(a, &net.Layers[i]); err != nil {
			t.Errorf("layer %d invalid mapping: %v", i, err)
		}
	}
}

func TestObjectives(t *testing.T) {
	a := testArch(t, 1<<20)
	l := workload.NewConv("l", 1, 16, 8, 8, 8, 3, 3, 1, 1)
	for _, obj := range []Objective{MinEnergy, MinDelay, MinEDP} {
		best, err := Search(a, &l, Options{Objective: obj, Budget: 300, Seed: 8})
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		if Score(obj, best.Result) <= 0 {
			t.Errorf("%v: non-positive score", obj)
		}
	}
	if MinEnergy.String() != "energy" || MinDelay.String() != "delay" || MinEDP.String() != "edp" {
		t.Error("objective names wrong")
	}
}

func TestScoreDefinition(t *testing.T) {
	r := &model.Result{TotalPJ: 10, Cycles: 5}
	if Score(MinEnergy, r) != 10 || Score(MinDelay, r) != 5 || Score(MinEDP, r) != 50 {
		t.Error("Score definitions wrong")
	}
}

func TestEnumerateSpatialAssignments(t *testing.T) {
	a := testArch(t, 1<<20)
	assigns := enumerateSpatialAssignments(a)
	// One factor with two choices (K or C).
	if len(assigns) != 2 {
		t.Fatalf("got %d assignments, want 2", len(assigns))
	}
}

// TestOptionsEvalForwarded guards the withDefaults fix: caller-set Eval
// options must survive defaulting (SkipValidate used to be clobbered).
func TestOptionsEvalForwarded(t *testing.T) {
	o := Options{Eval: model.Options{SkipValidate: true, ChargeStatic: true}}
	d := o.withDefaults()
	if !d.Eval.SkipValidate {
		t.Error("withDefaults clobbered Eval.SkipValidate")
	}
	if !d.Eval.ChargeStatic {
		t.Error("withDefaults clobbered Eval.ChargeStatic")
	}
	if d.Budget != 1000 || d.Seed != 1 || d.Workers < 1 {
		t.Errorf("defaults wrong: %+v", d)
	}
}

// TestSearchWithSkipValidate checks that a trusted search (validation
// skipped) still completes and matches the validated search on an
// architecture where every generated candidate is valid anyway — here one
// with no capacity limits, the only constraint the generators can violate.
func TestSearchWithSkipValidate(t *testing.T) {
	lib := components.NewLibrary()
	mk := func(class, name string, p components.Params) {
		c, err := components.Build(class, name, p)
		if err != nil {
			t.Fatal(err)
		}
		lib.MustAdd(c)
	}
	mk("dram", "DRAM", components.Params{"pj_per_bit": 8})
	mk("sram", "Buf", components.Params{"capacity_bits": 1 << 22, "access_bits": 8})
	mk("regfile", "Reg", components.Params{"access_bits": 8})
	a := &arch.Arch{
		Name: "uncapped", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Buf", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
				Spatial: []arch.SpatialFactor{arch.Choice(4, workload.DimK, workload.DimC)},
			},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("l", 1, 16, 8, 8, 8, 3, 3, 1, 1)
	checked, err := Search(a, &l, Options{Budget: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	trusted, err := Search(a, &l, Options{Budget: 300, Seed: 11,
		Eval: model.Options{SkipValidate: true}})
	if err != nil {
		t.Fatal(err)
	}
	if checked.Result.TotalPJ != trusted.Result.TotalPJ {
		t.Errorf("trusted search diverged: %g vs %g pJ", trusted.Result.TotalPJ, checked.Result.TotalPJ)
	}
}

// TestMalformedSeedDoesNotShadow guards the fingerprint-dedup fix: an
// invalid seed (short permutation) must not block later valid schedules
// that hash to the same fingerprint (only trip>1 loops are hashed), so a
// search given a broken seed finds the same optimum as one given none.
func TestMalformedSeedDoesNotShadow(t *testing.T) {
	a := testArch(t, 1<<20)
	l := workload.NewConv("l", 1, 16, 8, 8, 8, 3, 3, 1, 1)
	bad := mapping.New(a)
	applyAssignment(a, bad, []workload.Dim{workload.DimK})
	for _, d := range workload.AllDims() {
		bad.Levels[0].Temporal[d] = l.Bound(d)
	}
	bad.Levels[0].Temporal[workload.DimK] = 4   // spatial covers the rest
	bad.Levels[0].Perm = bad.Levels[0].Perm[:5] // malformed: 5 of 7 dims
	opts := Options{Budget: 300, Seed: 13, Workers: 2}
	clean, err := Search(a, &l, opts)
	if err != nil {
		t.Fatal(err)
	}
	seededOpts := opts
	seededOpts.Seeds = []*mapping.Mapping{bad}
	seeded, err := Search(a, &l, seededOpts)
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Result.TotalPJ > clean.Result.TotalPJ {
		t.Errorf("malformed seed degraded the search: %g > %g pJ",
			seeded.Result.TotalPJ, clean.Result.TotalPJ)
	}
}

// manyFactorArch builds an architecture whose spatial-assignment cross
// product exceeds the enumeration cap: nFactors two-way (K or C) factors.
func manyFactorArch(t *testing.T, nFactors int, reversed bool) *arch.Arch {
	t.Helper()
	lib := components.NewLibrary()
	mk := func(class, name string, p components.Params) {
		c, err := components.Build(class, name, p)
		if err != nil {
			t.Fatal(err)
		}
		lib.MustAdd(c)
	}
	mk("dram", "DRAM", components.Params{"pj_per_bit": 8})
	mk("regfile", "Reg", components.Params{"access_bits": 8})
	var spatial []arch.SpatialFactor
	for i := 0; i < nFactors; i++ {
		f := arch.Choice(2, workload.DimK, workload.DimC)
		if reversed {
			f = arch.Choice(2, workload.DimC, workload.DimK)
		}
		spatial = append(spatial, f)
	}
	a := &arch.Arch{
		Name: "manyfactor", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM", Spatial: spatial},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestEnumerateSpatialAssignmentsCapUnbiased guards the truncation-bias
// fix: when the cross product exceeds the cap, the sample must still
// represent both alternates of every factor — the old prefix truncation
// pinned the leading factors to their canonical dimension.
func TestEnumerateSpatialAssignmentsCapUnbiased(t *testing.T) {
	const nFactors = 13 // 2^13 = 8192 > 4096
	a := manyFactorArch(t, nFactors, false)
	assigns := enumerateSpatialAssignments(a)
	if len(assigns) != maxSpatialAssignments {
		t.Fatalf("got %d assignments, want %d", len(assigns), maxSpatialAssignments)
	}
	// Canonical assignment first.
	for j, d := range assigns[0] {
		if d != workload.DimK {
			t.Fatalf("assignment 0 factor %d = %v, want canonical K", j, d)
		}
	}
	// Every factor position must see both alternates somewhere.
	for j := 0; j < nFactors; j++ {
		seen := map[workload.Dim]bool{}
		for _, assign := range assigns {
			seen[assign[j]] = true
		}
		if !seen[workload.DimK] || !seen[workload.DimC] {
			t.Errorf("factor %d: alternates dropped (saw %v)", j, seen)
		}
	}
	// Deterministic across calls.
	again := enumerateSpatialAssignments(a)
	for i := range assigns {
		for j := range assigns[i] {
			if assigns[i][j] != again[i][j] {
				t.Fatalf("enumeration not deterministic at %d/%d", i, j)
			}
		}
	}
}

// TestEnumerateSpatialAssignmentsFullOrder checks the sub-cap enumeration:
// lexicographic, first factor most significant, canonical first.
func TestEnumerateSpatialAssignmentsFullOrder(t *testing.T) {
	a := manyFactorArch(t, 2, false)
	assigns := enumerateSpatialAssignments(a)
	want := [][]workload.Dim{
		{workload.DimK, workload.DimK},
		{workload.DimK, workload.DimC},
		{workload.DimC, workload.DimK},
		{workload.DimC, workload.DimC},
	}
	if len(assigns) != len(want) {
		t.Fatalf("got %d assignments, want %d", len(assigns), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if assigns[i][j] != want[i][j] {
				t.Errorf("assignment %d = %v, want %v", i, assigns[i], want[i])
			}
		}
	}
}

func TestRemainingAccountsForSpatial(t *testing.T) {
	a := testArch(t, 1<<20)
	l := workload.NewConv("l", 1, 16, 8, 8, 8, 3, 3, 1, 1)
	m := mapping.New(a)
	applyAssignment(a, m, []workload.Dim{workload.DimK})
	rem := remaining(a, m, &l)
	if rem[workload.DimK] != 4 { // 16 / spatial 4
		t.Errorf("remaining K = %d, want 4", rem[workload.DimK])
	}
	if rem[workload.DimC] != 8 {
		t.Errorf("remaining C = %d, want 8", rem[workload.DimC])
	}
}
