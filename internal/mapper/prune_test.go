package mapper

import (
	"fmt"
	"math/rand"
	"testing"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/mapping"
	"photoloop/internal/model"
	"photoloop/internal/workload"
)

// photonicTestArch builds an Albireo-shaped hierarchy (streaming input
// station, capped analog levels, converter chains) without importing the
// albireo package (which would cycle): the population on which pruning and
// the temporal-cap pre-filter actually bite.
func photonicTestArch(t *testing.T) *arch.Arch {
	t.Helper()
	lib := components.NewLibrary()
	mk := func(class, name string, p components.Params) {
		c, err := components.Build(class, name, p)
		if err != nil {
			t.Fatal(err)
		}
		lib.MustAdd(c)
	}
	mk("dram", "DRAM", components.Params{"pj_per_bit": 8})
	mk("sram", "Buf", components.Params{"capacity_bits": 1 << 23, "access_bits": 8})
	mk("dac", "DAC", components.Params{"bits": 8, "pj_per_bit": 0.05})
	mk("adc", "ADC", components.Params{"bits": 8, "walden_fj_per_step": 50})
	mk("mzm", "MZM", components.Params{"modulate_pj": 1})
	mk("mrr", "MRR", components.Params{"program_pj": 2, "transit_pj": 0.01})
	mk("photodiode", "PD", components.Params{"detect_pj": 0.5})
	mk("laser", "Laser", components.Params{"per_mac_pj": 0.25})
	a := &arch.Arch{
		Name: "photonic-test", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM", BandwidthWordsPerCycle: 32},
			{
				Name: "Glb", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
				CapacityBits: 1 << 23,
				Spatial:      []arch.SpatialFactor{arch.Choice(4, workload.DimC, workload.DimK, workload.DimN)},
			},
			{
				Name: "Mod", Keeps: workload.NewTensorSet(workload.Inputs),
				Streaming: true, InputOverlapSharing: true,
				Spatial: []arch.SpatialFactor{
					arch.Choice(8, workload.DimQ, workload.DimP, workload.DimN),
					arch.Choice(3, workload.DimK, workload.DimN),
				},
				FillVia: map[workload.Tensor][]arch.ActionRef{
					workload.Inputs: {
						{Component: "DAC", Action: "convert"},
						{Component: "MZM", Action: "modulate"},
					},
				},
			},
			{
				Name: "Acc", Keeps: workload.NewTensorSet(workload.Outputs),
				WordBits: 24, CapacityBits: 24 * 4, MaxTemporalProduct: 1,
				Spatial: []arch.SpatialFactor{arch.Choice(3, workload.DimS, workload.DimC)},
				UpdateVia: map[workload.Tensor][]arch.ActionRef{
					workload.Outputs: {{Component: "PD", Action: "detect"}},
				},
				DrainVia: map[workload.Tensor][]arch.ActionRef{
					workload.Outputs: {{Component: "ADC", Action: "convert"}},
				},
			},
			{
				Name: "Ring", Keeps: workload.NewTensorSet(workload.Weights),
				MaxTemporalProduct: 1,
				FillVia: map[workload.Tensor][]arch.ActionRef{
					workload.Weights: {
						{Component: "DAC", Action: "convert"},
						{Component: "MRR", Action: "program"},
					},
				},
			},
		},
		Compute: arch.Compute{
			Name: "Optical",
			PerMAC: []arch.ActionRef{
				{Component: "Laser", Action: "supply"},
				{Component: "MRR", Action: "transit"},
			},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

// compareBests asserts two search outcomes are bit-identical in everything
// observable: mapping, score surface, and evaluation count.
func compareBests(t *testing.T, label string, got, want *Best) {
	t.Helper()
	if got.Result.TotalPJ != want.Result.TotalPJ {
		t.Fatalf("%s: TotalPJ %.12g != %.12g", label, got.Result.TotalPJ, want.Result.TotalPJ)
	}
	if got.Result.Cycles != want.Result.Cycles {
		t.Fatalf("%s: Cycles %.12g != %.12g", label, got.Result.Cycles, want.Result.Cycles)
	}
	if got.Result.Utilization != want.Result.Utilization {
		t.Fatalf("%s: Utilization diverged", label)
	}
	if got.Mapping.String() != want.Mapping.String() {
		t.Fatalf("%s: mapping diverged:\n%s\nvs\n%s", label, got.Mapping, want.Mapping)
	}
	if got.Evaluations != want.Evaluations {
		t.Fatalf("%s: Evaluations %d != %d", label, got.Evaluations, want.Evaluations)
	}
}

// TestPrunedSearchMatchesUnprunedSampler is the tentpole equivalence test:
// with pruning and delta evaluation disabled the worker degenerates to the
// legacy always-evaluate sampler, and the optimized search must return a
// bit-identical Best for every configuration — electrical and photonic
// architectures, all objectives, several (budget, workers, seed) splits.
func TestPrunedSearchMatchesUnprunedSampler(t *testing.T) {
	archs := map[string]*arch.Arch{
		"electrical": testArch(t, 1<<20),
		"photonic":   photonicTestArch(t),
	}
	layers := []workload.Layer{
		workload.NewConv("conv", 1, 32, 16, 14, 14, 3, 3, 1, 1),
		workload.NewConv("strided", 2, 16, 8, 8, 8, 3, 3, 2, 1),
		workload.NewFC("fc", 1, 64, 128),
	}
	type cfg struct {
		budget, workers int
		seed            int64
		obj             Objective
		skipValidate    bool
	}
	cfgs := []cfg{
		{300, 1, 1, MinEnergy, false},
		{300, 2, 5, MinEnergy, false},
		{250, 4, 9, MinDelay, false},
		{320, 8, 3, MinEDP, false},
		// SkipValidate trusts (and scores) every draw — the structural
		// pre-filter must stand down exactly like the legacy sampler's
		// skipped validation did.
		{300, 2, 7, MinEnergy, true},
	}
	for name, a := range archs {
		s, err := NewSession(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range layers {
			for _, c := range cfgs {
				opts := Options{Objective: c.obj, Budget: c.budget, Seed: c.seed, Workers: c.workers,
					Eval: model.Options{SkipValidate: c.skipValidate}}
				pruned, err := s.Search(&l, opts)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, l.Name, err)
				}
				ref := opts
				ref.noPrune, ref.noDelta, ref.noBatch = true, true, true
				unpruned, err := s.Search(&l, ref)
				if err != nil {
					t.Fatalf("%s/%s ref: %v", name, l.Name, err)
				}
				compareBests(t, name+"/"+l.Name, pruned, unpruned)
				if unpruned.Stats.Pruned != 0 || unpruned.Stats.DeltaEvals != 0 {
					t.Fatalf("reference sampler pruned or delta-evaluated: %+v", unpruned.Stats)
				}
			}
		}
	}
}

// TestBatchedSearchMatchesReferencePath is the PR 6 tentpole equivalence
// test: the fused stage-then-finish scoring path (one shared-prefix core
// resolution serving both the admissible bound and the finishing passes)
// must return a bit-identical Best to the unfused reference path — separate
// LowerBound + EvaluatePartial calls in the legacy order — at 1, 2 and 8
// workers, with and without pruning/delta in play.
func TestBatchedSearchMatchesReferencePath(t *testing.T) {
	archs := map[string]*arch.Arch{
		"electrical": testArch(t, 1<<20),
		"photonic":   photonicTestArch(t),
	}
	layers := []workload.Layer{
		workload.NewConv("conv", 1, 32, 16, 14, 14, 3, 3, 1, 1),
		workload.NewFC("fc", 1, 64, 128),
	}
	for name, a := range archs {
		s, err := NewSession(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range layers {
			for _, workers := range []int{1, 2, 8} {
				for _, obj := range []Objective{MinEnergy, MinEDP} {
					opts := Options{Objective: obj, Budget: 320, Seed: 3, Workers: workers}
					batched, err := s.Search(&l, opts)
					if err != nil {
						t.Fatalf("%s/%s: %v", name, l.Name, err)
					}
					ref := opts
					ref.noBatch = true
					unbatched, err := s.Search(&l, ref)
					if err != nil {
						t.Fatalf("%s/%s ref: %v", name, l.Name, err)
					}
					label := fmt.Sprintf("%s/%s/w%d/%v", name, l.Name, workers, obj)
					compareBests(t, label, batched, unbatched)
				}
			}
		}
	}
}

// TestDrawCandidatesMatchesRandomMapping pins the compact draw pipeline to
// the reference generator: for the same rng stream, drawCandidates +
// materialize must produce exactly the mappings randomMapping produced —
// including the cap-aware skips on levels that forbid temporal loops.
func TestDrawCandidatesMatchesRandomMapping(t *testing.T) {
	for _, a := range []*arch.Arch{testArch(t, 1<<20), photonicTestArch(t)} {
		s, err := NewSession(a)
		if err != nil {
			t.Fatal(err)
		}
		l := workload.NewConv("draw", 1, 24, 12, 10, 10, 3, 3, 1, 1)
		const k = 200
		legacy := rand.New(rand.NewSource(17))
		var want []*mapping.Mapping
		for i := 0; i < k; i++ {
			assign := s.assignments[0]
			if legacy.Intn(2) == 0 {
				assign = s.assignments[legacy.Intn(len(s.assignments))]
			}
			want = append(want, randomMapping(a, &l, assign, s.minLv, legacy))
		}
		rng := rand.New(rand.NewSource(17))
		cands := s.drawCandidates(&l, rng, k, a.NumLevels())
		buf := mapping.New(a)
		for i := range cands {
			s.materialize(buf, &cands[i], false)
			if buf.Fingerprint() != want[i].Fingerprint() || buf.String() != want[i].String() {
				t.Fatalf("%s: candidate %d diverged from randomMapping:\n%s\nvs\n%s", a.Name, i, buf, want[i])
			}
		}
	}
}

// TestSplitBudgetExact pins the budget-remainder fix: the per-worker
// budgets must sum to exactly the configured budget with a spread of at
// most one evaluation, for divisible and non-divisible splits alike.
func TestSplitBudgetExact(t *testing.T) {
	for _, tc := range []struct{ budget, workers int }{
		{2000, 8}, {500, 8}, {503, 8}, {7, 3}, {3, 8}, {1, 1}, {0, 4}, {97, 13},
	} {
		got := splitBudget(tc.budget, tc.workers)
		if len(got) != tc.workers {
			t.Fatalf("split(%d,%d): %d workers", tc.budget, tc.workers, len(got))
		}
		sum, min, max := 0, got[0], got[0]
		for _, b := range got {
			sum += b
			if b < min {
				min = b
			}
			if b > max {
				max = b
			}
		}
		if sum != tc.budget {
			t.Errorf("split(%d,%d) spends %d", tc.budget, tc.workers, sum)
		}
		if max-min > 1 {
			t.Errorf("split(%d,%d) uneven: min %d max %d", tc.budget, tc.workers, min, max)
		}
	}
}

// TestBudgetSpentExactly checks end to end that a non-divisible budget is
// no longer silently truncated: the exploration phase alone must consume
// at least 7/10 of the full configured budget summed across workers.
func TestBudgetSpentExactly(t *testing.T) {
	a := testArch(t, 1<<20)
	l := workload.NewConv("l", 1, 16, 8, 8, 8, 3, 3, 1, 1)
	// 503 over 8 workers: the old perWorker=62 split spent 496.
	best, err := Search(a, &l, Options{Budget: 503, Seed: 2, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if best.Evaluations > 503 {
		t.Fatalf("spent %d, budget 503", best.Evaluations)
	}
	// Per worker the exploration phase consumes floor(b*7/10) exactly;
	// with the remainder distributed that is at least 348 here. The old
	// truncated split could not exceed 496 total even when the climb ran
	// to exhaustion; equality with the budget means no worker lost its
	// remainder share.
	minExploration := 0
	for _, b := range splitBudget(503, 8) {
		minExploration += b * 7 / 10
	}
	if best.Evaluations < minExploration {
		t.Fatalf("spent %d, exploration alone should consume >= %d", best.Evaluations, minExploration)
	}
}

// TestSearchReproducibleAcrossWorkerCounts documents the determinism
// contract: for each fixed Workers value the search is exactly
// reproducible, while different Workers values legitimately return
// different (but individually deterministic) results — each worker owns an
// independent rng stream and budget slice, so the candidate set itself
// depends on the split. See the Options.Workers doc.
func TestSearchReproducibleAcrossWorkerCounts(t *testing.T) {
	a := photonicTestArch(t)
	s, err := NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("rep", 1, 32, 16, 14, 14, 3, 3, 1, 1)
	for _, workers := range []int{1, 2, 8} {
		opts := Options{Budget: 400, Seed: 11, Workers: workers}
		first, err := s.Search(&l, opts)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ {
			again, err := s.Search(&l, opts)
			if err != nil {
				t.Fatal(err)
			}
			compareBests(t, "workers", again, first)
		}
	}
}

// TestWarmStartDeterministicAndApplicable covers Options.WarmStarts: warm
// starts never worsen the pre-climb incumbent (they join the pool without
// consuming budget), inapplicable ones are dropped silently, and the
// warm-started search is itself deterministic.
func TestWarmStartDeterministicAndApplicable(t *testing.T) {
	a := photonicTestArch(t)
	s, err := NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("warm", 1, 32, 16, 14, 14, 3, 3, 1, 1)
	cold, err := s.Search(&l, Options{Budget: 400, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	// Warm-start a low-budget search with the high-budget best: the cheap
	// search must do at least as well as the warm start itself.
	warmOpts := Options{Budget: 60, Seed: 11, WarmStarts: []*mapping.Mapping{cold.Mapping}}
	warm, err := s.Search(&l, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if Score(MinEnergy, warm.Result) > Score(MinEnergy, cold.Result) {
		t.Errorf("warm-started search (%g pJ) worse than its warm start (%g pJ)",
			warm.Result.TotalPJ, cold.Result.TotalPJ)
	}
	if warm.Stats.WarmStartEvals == 0 {
		t.Error("warm start was not evaluated")
	}
	again, err := s.Search(&l, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	compareBests(t, "warm repeat", again, warm)

	// A warm start from an incompatible architecture is dropped, leaving
	// the cold result untouched.
	other := testArch(t, 1<<20)
	foreign := mapping.New(other)
	baseline, err := s.Search(&l, Options{Budget: 120, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := s.Search(&l, Options{Budget: 120, Seed: 11, WarmStarts: []*mapping.Mapping{foreign, nil}})
	if err != nil {
		t.Fatal(err)
	}
	compareBests(t, "foreign warm start", dropped, baseline)
	if dropped.Stats.WarmStartEvals != 0 {
		t.Error("inapplicable warm start was evaluated")
	}
}

// TestSearchNetworkShapeDedup pins SearchNetwork's shape deduplication:
// repeated layer shapes must get results bit-identical to independent
// searches, under the duplicate layer's own name.
func TestSearchNetworkShapeDedup(t *testing.T) {
	a := photonicTestArch(t)
	s, err := NewSession(a)
	if err != nil {
		t.Fatal(err)
	}
	shape := func(name string) workload.Layer {
		return workload.NewConv(name, 1, 16, 8, 8, 8, 3, 3, 1, 1)
	}
	net := workload.Network{Name: "dup", Layers: []workload.Layer{
		shape("a"), workload.NewFC("fc", 1, 32, 64), shape("b"), shape("c"),
	}}
	opts := Options{Budget: 200, Seed: 4}
	bests, err := s.SearchNetwork(&net, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"a", "fc", "b", "c"} {
		if bests[i].Result.Layer != name {
			t.Fatalf("layer %d labeled %q, want %q", i, bests[i].Result.Layer, name)
		}
	}
	// Every duplicate must match an independent search of its layer.
	for _, i := range []int{2, 3} {
		solo, err := s.Search(&net.Layers[i], opts)
		if err != nil {
			t.Fatal(err)
		}
		compareBests(t, "dedup "+net.Layers[i].Name, bests[i], solo)
	}
}

// TestSearchStatsAccounting checks the stats identity: every budgeted
// attempt lands in exactly one bucket.
func TestSearchStatsAccounting(t *testing.T) {
	a := photonicTestArch(t)
	l := workload.NewConv("stats", 1, 32, 16, 14, 14, 3, 3, 1, 1)
	best, err := Search(a, &l, Options{Budget: 400, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := best.Stats
	sum := st.Pruned + st.DeltaEvals + st.FullEvals + st.Duplicates + st.Invalid
	if sum != best.Evaluations-st.WarmStartEvals {
		t.Fatalf("stats %+v sum to %d, evaluations %d", st, sum, best.Evaluations)
	}
	if st.FullEvals == 0 {
		t.Error("no full evaluations recorded")
	}
	if f := st.PrunedFraction(); f < 0 || f > 1 {
		t.Errorf("pruned fraction %g out of range", f)
	}
}
