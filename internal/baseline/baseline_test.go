package baseline

import (
	"testing"

	"photoloop/internal/albireo"
	"photoloop/internal/mapper"
	"photoloop/internal/workload"
)

func TestDefaultMatchesAlbireoPeak(t *testing.T) {
	c := Default()
	if c.PeakMACsPerCycle() != 6912 {
		t.Errorf("peak = %d, want 6912", c.PeakMACsPerCycle())
	}
	a, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.PeakMACsPerCycle() != 6912 {
		t.Errorf("arch peak = %d", a.PeakMACsPerCycle())
	}
	if gaps := a.DomainGaps(); len(gaps) != 0 {
		t.Errorf("all-DE arch has domain gaps: %v", gaps)
	}
}

func TestBuildRejectsBadConfigs(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.Rows = 0 },
		func(c *Config) { c.MACBits = 0 },
		func(c *Config) { c.GLBMiB = 0 },
		func(c *Config) { c.ClockGHz = 0 },
	} {
		c := Default()
		mut(&c)
		if _, err := c.Build(); err == nil {
			t.Errorf("accepted broken config %+v", c)
		}
	}
}

func TestBaselineMapsWorkloads(t *testing.T) {
	a, err := Default().Build()
	if err != nil {
		t.Fatal(err)
	}
	layers := []workload.Layer{
		workload.NewConv("conv", 1, 128, 128, 28, 28, 3, 3, 1, 1),
		workload.NewFC("fc", 1, 1000, 512),
	}
	for _, l := range layers {
		best, err := mapper.Search(a, &l, mapper.Options{Budget: 800, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if best.Result.PJPerMAC() <= 0 {
			t.Errorf("%s: bad energy", l.Name)
		}
		// A digital systolic array maps FC layers well (K and C both
		// available spatially).
		if l.Type == workload.FC && best.Result.Utilization < 0.5 {
			t.Errorf("fc utilization %.2f, want >= 0.5 on a flexible array", best.Result.Utilization)
		}
	}
}

// The comparison the paper's framing motivates, in three parts: (1) the
// photonic marginal MAC (laser supply + ring transit) is cheaper than a
// digital MAC; (2) at conservative scaling the conversion wall erases that
// advantage at the accelerator level; (3) with DRAM attached, both systems
// are dominated by the same memory — which is exactly why the paper
// insists on full-system (accelerator + DRAM) modeling.
func TestPhotonicVsElectricalNarrative(t *testing.T) {
	l := workload.NewConv("conv", 1, 96, 64, 32, 32, 3, 3, 1, 1)

	elec, err := Default().Build()
	if err != nil {
		t.Fatal(err)
	}
	eBest, err := mapper.Search(elec, &l, mapper.Options{Budget: 1500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ePJ := eBest.Result.PJPerMAC()
	eAccelPJ := albireo.AcceleratorPJ(eBest.Result) / float64(eBest.Result.MACs)
	eMACPJ := eBest.Result.EnergyOf("digital_mac", "") / float64(eBest.Result.MACs)

	type photonics struct{ total, accel, macOnly float64 }
	byScaling := map[albireo.Scaling]photonics{}
	for _, s := range []albireo.Scaling{albireo.Conservative, albireo.Aggressive} {
		a, err := albireo.Default(s).Build()
		if err != nil {
			t.Fatal(err)
		}
		pBest, err := mapper.Search(a, &l, mapper.Options{
			Budget: 1500, Seed: 1,
			Seeds: albireo.CanonicalMappings(a, &l),
		})
		if err != nil {
			t.Fatal(err)
		}
		r := pBest.Result
		byScaling[s] = photonics{
			total:   r.PJPerMAC(),
			accel:   albireo.AcceleratorPJ(r) / float64(r.MACs),
			macOnly: (r.EnergyOf("laser", "") + r.EnergyOf("mrr", "")) / float64(r.MACs),
		}
	}
	cons, aggr := byScaling[albireo.Conservative], byScaling[albireo.Aggressive]

	// (1) Under the aggressive projection the marginal optical MAC
	// (laser + ring) undercuts the digital MAC; conservatively it does
	// not — optical wins are a scaling bet, not a present-day free lunch.
	if aggr.macOnly >= eMACPJ {
		t.Errorf("aggressive optical MAC %.3f pJ should undercut digital MAC %.3f", aggr.macOnly, eMACPJ)
	}
	if cons.macOnly <= eMACPJ {
		t.Errorf("conservative optical MAC %.3f pJ is expected to exceed digital MAC %.3f", cons.macOnly, eMACPJ)
	}
	// (2) The conversion wall: the conservative photonic accelerator
	// costs more per MAC than the whole electrical accelerator.
	if cons.accel <= eAccelPJ {
		t.Errorf("conservative photonic accel %.3f pJ/MAC should exceed electrical accel %.3f (conversion wall)",
			cons.accel, eAccelPJ)
	}
	// Aggressive scaling shrinks the gap dramatically.
	if aggr.accel >= cons.accel/3 {
		t.Errorf("aggressive accel %.3f should be well under a third of conservative %.3f", aggr.accel, cons.accel)
	}
	// (3) Full systems converge on the same DRAM bill: the difference
	// between aggressive-photonic and electrical totals is smaller than
	// the DRAM energy itself.
	dram := aggr.total - aggr.accel
	if diff := abs(aggr.total - ePJ); diff >= dram {
		t.Errorf("system totals differ by %.3f pJ/MAC, more than the shared DRAM bill %.3f — full-system modeling verdict broken",
			diff, dram)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
