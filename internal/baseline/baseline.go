// Package baseline builds a conventional digital-electrical DNN
// accelerator — a weight-stationary systolic-style array with a register
// file per PE, a shared global buffer, and DRAM — from the same component
// library as the photonic model. It exists for the comparison the paper's
// introduction motivates: photonic systems win on MAC and data-movement
// energy only when cross-domain conversion and DRAM costs do not eat the
// advantage, and a common modeling framework is what makes that comparison
// meaningful.
package baseline

import (
	"fmt"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/workload"
)

// Config parameterizes the electrical baseline.
type Config struct {
	// Rows x Cols is the PE array (default 64 x 108 = 6912 MACs/cycle to
	// match Albireo's peak).
	Rows, Cols int
	// MACBits is the operand precision (default 8).
	MACBits int
	// MACPJ is the per-MAC energy at 8 bits (default 0.25 pJ — a
	// 28nm-class digital MAC).
	MACPJ float64
	// GLBMiB sizes the global buffer (default 1, matching Albireo).
	GLBMiB int
	// DRAMPJPerBit matches the photonic system's DRAM (default 35).
	DRAMPJPerBit float64
	// DRAMBWWordsPerCycle bounds DRAM bandwidth (default 32).
	DRAMBWWordsPerCycle float64
	// ClockGHz is the array clock (default 1 — electrical arrays do not
	// run at photonic symbol rates).
	ClockGHz float64
}

// Default returns the baseline matched to Albireo's peak throughput.
func Default() Config {
	return Config{
		Rows: 64, Cols: 108,
		MACBits:             8,
		MACPJ:               0.25,
		GLBMiB:              1,
		DRAMPJPerBit:        35,
		DRAMBWWordsPerCycle: 32,
		ClockGHz:            1,
	}
}

// PeakMACsPerCycle returns the array width.
func (c Config) PeakMACsPerCycle() int64 { return int64(c.Rows) * int64(c.Cols) }

// Build constructs the architecture: DRAM -> GLB (DE) -> PE register files
// (DE, weights+psums stationary) over a digital MAC array. Rows map input
// channels (spatial reduction via the column adder chains), columns map
// output channels (input multicast along rows) — the classic
// weight-stationary dataflow.
func (c Config) Build() (*arch.Arch, error) {
	if c.Rows < 1 || c.Cols < 1 {
		return nil, fmt.Errorf("baseline: array %dx%d invalid", c.Rows, c.Cols)
	}
	if c.MACBits < 1 {
		return nil, fmt.Errorf("baseline: MACBits = %d", c.MACBits)
	}
	if c.GLBMiB < 1 {
		return nil, fmt.Errorf("baseline: GLBMiB = %d", c.GLBMiB)
	}
	if c.ClockGHz <= 0 {
		return nil, fmt.Errorf("baseline: ClockGHz = %g", c.ClockGHz)
	}
	lib := components.NewLibrary()
	add := func(comp components.Component, err error) error {
		if err != nil {
			return err
		}
		return lib.Add(comp)
	}
	glbBits := int64(c.GLBMiB) << 23
	if err := firstErr(
		add(components.NewDRAM(components.DRAMSpec{
			Name: "DRAM", PJPerBit: c.DRAMPJPerBit, AccessBits: c.MACBits,
		})),
		add(components.NewSRAM(components.SRAMSpec{
			Name: "GlobalBuffer", CapacityBits: glbBits, AccessBits: c.MACBits, Banks: 16,
		})),
		func() error {
			lib.MustAdd(components.NewRegisterFile("PERegs", c.MACBits, 0))
			return nil
		}(),
		add(components.NewDigitalMAC(components.DigitalMACSpec{
			Name: "PEMAC", Bits: c.MACBits, PJAt8Bit: c.MACPJ,
		})),
		add(components.NewWire(components.WireSpec{
			Name: "ArrayNoC", WordBits: c.MACBits, LengthMM: 2, PJPerBitMM: 0.08,
		})),
	); err != nil {
		return nil, err
	}

	a := &arch.Arch{
		Name:            fmt.Sprintf("systolic-%dx%d", c.Rows, c.Cols),
		Lib:             lib,
		ClockGHz:        c.ClockGHz,
		DefaultWordBits: c.MACBits,
		Levels: []arch.Level{
			{
				Name: "DRAM", Domain: arch.DE,
				Keeps:                  workload.AllTensorSet(),
				AccessComponent:        "DRAM",
				BandwidthWordsPerCycle: c.DRAMBWWordsPerCycle,
			},
			{
				Name: "GlobalBuffer", Domain: arch.DE,
				Keeps:           workload.AllTensorSet(),
				AccessComponent: "GlobalBuffer",
				CapacityBits:    glbBits,
				Spatial: []arch.SpatialFactor{
					arch.Choice(c.Rows, workload.DimC, workload.DimR, workload.DimK),
					arch.Choice(c.Cols, workload.DimK, workload.DimQ, workload.DimP, workload.DimN),
				},
			},
			{
				Name: "PERegs", Domain: arch.DE,
				Keeps:           workload.AllTensorSet(),
				AccessComponent: "PERegs",
				// A few words per operand per PE.
				CapacityBits: int64(c.MACBits) * 48,
				FillVia: map[workload.Tensor][]arch.ActionRef{
					workload.Inputs:  {{Component: "ArrayNoC", Action: components.ActionTransfer, PerDistinct: true}},
					workload.Weights: {{Component: "ArrayNoC", Action: components.ActionTransfer, PerDistinct: true}},
				},
			},
		},
		Compute: arch.Compute{
			Name: "PEArray", Domain: arch.DE,
			PerMAC: []arch.ActionRef{{Component: "PEMAC", Action: components.ActionMAC}},
		},
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: built invalid architecture: %w", err)
	}
	return a, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
