// Package model is the analytical dataflow engine at the heart of the
// reproduction: given an architecture, a layer and a mapping it derives —
// without simulation — per-level access counts (fills, reads, updates,
// drains), cross-domain conversion counts, compute cycles, utilization,
// energy by component/action/tensor, and area. The accounting rules follow
// Timeloop/CiMLoop: permutation-aware tile stationarity, spatial multicast
// and reduction discounts, window-overlap input sharing, and streaming
// (zero-retention) stations for optical signals. Correctness of the
// counting rules is anchored by the brute-force interpreter in
// internal/refsim.
package model

import (
	"fmt"
	"sort"

	"photoloop/internal/workload"
)

// Usage records the traffic of one tensor at one storage level,
// aggregated over all level instances, in words.
type Usage struct {
	// Level is the storage level name.
	Level string
	// LevelIndex is the level's index (0 = outermost).
	LevelIndex int
	// Tensor is the operand.
	Tensor workload.Tensor
	// TileElems is the per-instance resident tile footprint in elements
	// (clamped to real data).
	TileElems int64
	// Instances is the number of level instances.
	Instances int64
	// Fills counts words written into this level from its parent keeper
	// (read operands) — destination-side basis.
	Fills float64
	// FillsDistinct counts distinct words read from the parent keeper to
	// serve those fills (post-multicast / post-overlap-sharing).
	FillsDistinct float64
	// Reads counts words read out of this level (serving child fills,
	// compute consumption, and upward drains).
	Reads float64
	// Writes counts plain writes into this level (fills for read
	// operands; first-arrival output words).
	Writes float64
	// Updates counts read-modify-write accumulations into this level
	// (outputs only, post spatial-reduction).
	Updates float64
	// Arrivals counts output words arriving from below (post
	// spatial-reduction); Writes+Updates minus refills.
	Arrivals float64
	// Drains counts output words sent up from this level toward its
	// parent keeper — source-side basis (pre spatial-reduction).
	Drains float64
	// DrainsMerged counts the post-reduction words arriving at the
	// parent keeper.
	DrainsMerged float64
}

// EnergyItem is one line of the energy ledger: a component action charged
// some number of times on behalf of a tensor at a level.
type EnergyItem struct {
	// Level is the storage level (or "compute") where the charge arose.
	Level string
	// Component is the component instance name.
	Component string
	// Class is the component class ("sram", "adc", "mzm", ...).
	Class string
	// Action is the charged action.
	Action string
	// Tensor names the operand on whose behalf the charge arose ("" for
	// per-MAC compute charges).
	Tensor string
	// Count is the number of actions.
	Count float64
	// TotalPJ is Count times the per-action energy.
	TotalPJ float64
}

// Result is a complete evaluation of one layer on one mapping.
type Result struct {
	// Layer is the evaluated layer's name.
	Layer string
	// MACs is the real work (excludes padding).
	MACs int64
	// PaddedMACs includes mapping padding (idle compute slots).
	PaddedMACs int64
	// ComputeCycles is the padded temporal iteration count.
	ComputeCycles int64
	// Cycles is the schedule length including bandwidth stalls.
	Cycles float64
	// BottleneckLevel names the bandwidth-limiting level ("" if compute
	// bound).
	BottleneckLevel string
	// Utilization is MACs / PaddedMACs.
	Utilization float64
	// MACsPerCycle is achieved throughput: MACs / Cycles.
	MACsPerCycle float64
	// Usage lists per-level per-tensor traffic.
	Usage []Usage
	// Energy is the full energy ledger.
	Energy []EnergyItem
	// TotalPJ sums the ledger.
	TotalPJ float64
	// AreaUM2 is the architecture area (mapping independent).
	AreaUM2 float64
	// EffectiveBits, SNRDB and AccuracyLossPct carry the analog fidelity
	// rollup (package fidelity) when the caller requested it — a
	// closed-form post-pass over the finished mapping, never computed by
	// the evaluator itself. All zero when fidelity modeling is off.
	EffectiveBits   float64
	SNRDB           float64
	AccuracyLossPct float64
}

// reset zeroes the result for reuse, keeping the Usage and Energy backing
// arrays so the compiled fast path stays allocation free.
func (r *Result) reset() {
	usage, energy := r.Usage[:0], r.Energy[:0]
	*r = Result{Usage: usage, Energy: energy}
}

// Clone deep-copies the result (the mapper retains clones of scratch-owned
// results when they become the incumbent best).
func (r *Result) Clone() *Result {
	out := *r
	out.Usage = append([]Usage(nil), r.Usage...)
	out.Energy = append([]EnergyItem(nil), r.Energy...)
	return &out
}

// PJPerMAC returns energy per real MAC.
func (r *Result) PJPerMAC() float64 {
	if r.MACs == 0 {
		return 0
	}
	return r.TotalPJ / float64(r.MACs)
}

// UsageOf returns the usage record for (level name, tensor), or nil.
func (r *Result) UsageOf(level string, t workload.Tensor) *Usage {
	for i := range r.Usage {
		if r.Usage[i].Level == level && r.Usage[i].Tensor == t {
			return &r.Usage[i]
		}
	}
	return nil
}

// EnergyBy groups the ledger by an arbitrary key function and returns
// summed picojoules per key.
func (r *Result) EnergyBy(key func(*EnergyItem) string) map[string]float64 {
	out := map[string]float64{}
	for i := range r.Energy {
		out[key(&r.Energy[i])] += r.Energy[i].TotalPJ
	}
	return out
}

// EnergyByComponent sums pJ per component name.
func (r *Result) EnergyByComponent() map[string]float64 {
	return r.EnergyBy(func(e *EnergyItem) string { return e.Component })
}

// EnergyByClass sums pJ per component class.
func (r *Result) EnergyByClass() map[string]float64 {
	return r.EnergyBy(func(e *EnergyItem) string { return e.Class })
}

// EnergyOf sums pJ for a specific (class, tensor) pair; tensor "" matches
// any.
func (r *Result) EnergyOf(class, tensor string) float64 {
	var sum float64
	for i := range r.Energy {
		e := &r.Energy[i]
		if e.Class == class && (tensor == "" || e.Tensor == tensor) {
			sum += e.TotalPJ
		}
	}
	return sum
}

// SortedKeys returns the keys of an energy grouping, sorted.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Accumulate merges another result's ledger and counters into r (used for
// whole-network rollups). Cycles add; utilization becomes the MAC-weighted
// aggregate, as do the fidelity metrics when either side carries them.
func (r *Result) Accumulate(o *Result) {
	if r.EffectiveBits != 0 || o.EffectiveBits != 0 {
		// MAC-weighted merge, using the pre-merge counts. A side without
		// fidelity annotation contributes zeros at its weight — annotate
		// every accumulated layer or none.
		rw, ow := float64(r.MACs), float64(o.MACs)
		if rw+ow > 0 {
			r.EffectiveBits = (r.EffectiveBits*rw + o.EffectiveBits*ow) / (rw + ow)
			r.SNRDB = (r.SNRDB*rw + o.SNRDB*ow) / (rw + ow)
			r.AccuracyLossPct = (r.AccuracyLossPct*rw + o.AccuracyLossPct*ow) / (rw + ow)
		}
	}
	r.MACs += o.MACs
	r.PaddedMACs += o.PaddedMACs
	r.ComputeCycles += o.ComputeCycles
	r.Cycles += o.Cycles
	r.TotalPJ += o.TotalPJ
	r.Energy = append(r.Energy, o.Energy...)
	r.Usage = append(r.Usage, o.Usage...)
	if r.PaddedMACs > 0 {
		r.Utilization = float64(r.MACs) / float64(r.PaddedMACs)
	}
	if r.Cycles > 0 {
		r.MACsPerCycle = float64(r.MACs) / r.Cycles
	}
}

// String summarizes the result in one line.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %.3f pJ/MAC, %.1f MACs/cycle, util %.1f%%",
		r.Layer, r.PJPerMAC(), r.MACsPerCycle, 100*r.Utilization)
}
