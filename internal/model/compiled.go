package model

import (
	"fmt"
	"sort"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

// resolvedRef is one component action with its energy resolved ahead of
// time, replacing the string-keyed library lookups of the interpreted path.
// Resolution failures (unknown component, unsupported action) are deferred:
// the error surfaces only if the action is ever charged with a non-zero
// count, matching the lazy semantics of the interpreted evaluator.
type resolvedRef struct {
	pj          float64 // energy per action, pJ
	cnt         float64 // actions per word (ActionRef.Count())
	perDistinct bool
	err         error

	// Ledger metadata (used only when Options.FullLedger is set).
	level     string
	component string
	class     string
	action    string
	tensor    string
}

// levelEnergy is the resolved per-level energy table: storage access
// actions and converter chains indexed by tensor instead of map lookups.
type levelEnergy struct {
	hasAccess bool
	access    [3]resolvedRef // read, write, update
	fill      [workload.NumTensors][]resolvedRef
	update    [workload.NumTensors][]resolvedRef
	drain     [workload.NumTensors][]resolvedRef
}

// staticComp is one distinct component referenced anywhere in the
// architecture, for static-power charging.
type staticComp struct {
	name  string
	class string
	mw    float64
	err   error
}

// staticSite counts reference sites of one static component at one level
// (or in the compute array).
type staticSite struct {
	idx int   // index into Engine.statics
	n   int64 // number of reference sites
}

// Engine caches everything about an architecture that no mapping can
// change: the component areas, per-tensor keep chains, and per-action
// energies resolved out of the string-keyed component library. Build one
// per architecture and share it across layers, mappings and goroutines —
// it is immutable after construction.
type Engine struct {
	a     *arch.Arch
	area  float64
	keeps [workload.NumTensors][]int

	levels  []levelEnergy
	perMAC  []resolvedRef
	statics []staticComp // sorted by component name

	levelStaticSites [][]staticSite
	perMACStatic     []staticSite

	// Lower-bound tables (see bound.go): per-level admissible energy
	// floors per word moved, and the per-MAC compute energy.
	lbLevels  []lbLevel
	macUnitPJ float64
}

// NewEngine resolves the architecture's mapping-independent invariants.
// It fails only where every evaluation would fail: an unresolvable
// component in the area sum.
func NewEngine(a *arch.Arch) (*Engine, error) {
	area, err := a.Area()
	if err != nil {
		return nil, err
	}
	e := &Engine{a: a, area: area}
	for _, t := range workload.AllTensors() {
		e.keeps[t] = a.KeepLevels(t)
	}

	resolve := func(level, component, action, tensor string) resolvedRef {
		rr := resolvedRef{
			cnt:   1,
			level: level, component: component, action: action, tensor: tensor,
		}
		c, err := a.Lib.Get(component)
		if err != nil {
			rr.err = err
			return rr
		}
		rr.class = c.Class()
		pj, err := c.Energy(action)
		if err != nil {
			rr.err = err
			return rr
		}
		rr.pj = pj
		return rr
	}
	resolveChain := func(level string, refs []arch.ActionRef, tensor string) []resolvedRef {
		if len(refs) == 0 {
			return nil
		}
		out := make([]resolvedRef, len(refs))
		for i, r := range refs {
			out[i] = resolve(level, r.Component, r.Action, tensor)
			out[i].cnt = r.Count()
			out[i].perDistinct = r.PerDistinct
		}
		return out
	}

	e.levels = make([]levelEnergy, a.NumLevels())
	for i := range e.levels {
		lv := a.Level(i)
		le := &e.levels[i]
		if lv.AccessComponent != "" {
			le.hasAccess = true
			for j, action := range [3]string{components.ActionRead, components.ActionWrite, components.ActionUpdate} {
				le.access[j] = resolve(lv.Name, lv.AccessComponent, action, "")
			}
		}
		for _, t := range workload.AllTensors() {
			ts := t.String()
			le.fill[t] = resolveChain(lv.Name, lv.FillVia[t], ts)
			le.update[t] = resolveChain(lv.Name, lv.UpdateVia[t], ts)
			le.drain[t] = resolveChain(lv.Name, lv.DrainVia[t], ts)
		}
	}
	e.perMAC = make([]resolvedRef, len(a.Compute.PerMAC))
	for i, r := range a.Compute.PerMAC {
		e.perMAC[i] = resolve("compute", r.Component, r.Action, "")
		e.perMAC[i].cnt = r.Count()
	}
	e.resolveStatics()
	e.buildBoundTables()
	return e, nil
}

// resolveStatics builds the deterministic (name-sorted) static-power
// tables: which components are referenced where, and how many reference
// sites each level contributes.
func (e *Engine) resolveStatics() {
	a := e.a
	names := map[string]bool{}
	siteNames := func(lv *arch.Level) map[string]int64 {
		sites := map[string]int64{}
		if lv.AccessComponent != "" {
			sites[lv.AccessComponent]++
		}
		for _, refs := range lv.FillVia {
			for _, r := range refs {
				sites[r.Component]++
			}
		}
		for _, refs := range lv.UpdateVia {
			for _, r := range refs {
				sites[r.Component]++
			}
		}
		for _, refs := range lv.DrainVia {
			for _, r := range refs {
				sites[r.Component]++
			}
		}
		return sites
	}
	perLevel := make([]map[string]int64, a.NumLevels())
	for i := range a.Levels {
		perLevel[i] = siteNames(&a.Levels[i])
		for n := range perLevel[i] {
			names[n] = true
		}
	}
	computeSites := map[string]int64{}
	for _, r := range a.Compute.PerMAC {
		computeSites[r.Component]++
		names[r.Component] = true
	}

	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	index := make(map[string]int, len(sorted))
	e.statics = make([]staticComp, len(sorted))
	for i, n := range sorted {
		index[n] = i
		sc := staticComp{name: n}
		if c, err := a.Lib.Get(n); err != nil {
			sc.err = err
		} else {
			sc.class = c.Class()
			sc.mw = c.StaticPower()
		}
		e.statics[i] = sc
	}
	toSites := func(m map[string]int64) []staticSite {
		if len(m) == 0 {
			return nil
		}
		out := make([]staticSite, 0, len(m))
		for n, cnt := range m {
			out = append(out, staticSite{idx: index[n], n: cnt})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].idx < out[j].idx })
		return out
	}
	e.levelStaticSites = make([][]staticSite, a.NumLevels())
	for i := range perLevel {
		e.levelStaticSites[i] = toSites(perLevel[i])
	}
	e.perMACStatic = toSites(computeSites)
}

// Arch returns the architecture the engine was built for.
func (e *Engine) Arch() *arch.Arch { return e.a }

// Area returns the cached architecture area in µm².
func (e *Engine) Area() float64 { return e.area }

// KeepLevels returns the cached keep chain of tensor t (outermost first).
// The returned slice is shared — callers must not modify it.
func (e *Engine) KeepLevels(t workload.Tensor) []int { return e.keeps[t] }

// Compiled is an evaluation engine specialized to one (architecture,
// layer) pair: the engine's resolved tables plus the layer's bounds and
// MAC count. It is immutable and safe for concurrent use; per-goroutine
// mutable state lives in Scratch.
type Compiled struct {
	eng        *Engine
	l          *workload.Layer
	bounds     workload.Point
	actualMACs int64

	// macFloorPJ is the mapping-independent energy floor: every evaluation
	// charges at least the per-MAC compute actions for every real MAC.
	macFloorPJ float64
}

// Compile builds a compiled engine for one architecture and layer.
func Compile(a *arch.Arch, l *workload.Layer) (*Compiled, error) {
	e, err := NewEngine(a)
	if err != nil {
		return nil, err
	}
	return e.Compile(l)
}

// Compile specializes the engine to a layer. It is cheap — per-layer
// searches over thousands of mappings share one Compiled.
func (e *Engine) Compile(l *workload.Layer) (*Compiled, error) {
	c := &Compiled{eng: e, l: l, bounds: l.Bounds(), actualMACs: l.MACs()}
	c.macFloorPJ = float64(c.actualMACs) * e.macUnitPJ
	return c, nil
}

// Engine returns the underlying per-architecture engine.
func (c *Compiled) Engine() *Engine { return c.eng }

// Layer returns the compiled layer.
func (c *Compiled) Layer() *workload.Layer { return c.l }

// Scratch holds the reusable working memory of one evaluation: the
// per-level analysis arrays, the flattened loop-nest buffer, and the
// static-power counters. One Scratch serves one goroutine; reusing it
// across EvaluateInto calls makes the fast path allocation free.
//
// A Scratch also carries state between consecutive evaluations: the
// analysis of the last staged or evaluated mapping (which Stage and
// EvaluatePartial reuse for shared-prefix delta resolution) and the
// LowerBound working set.
type Scratch struct {
	an      analysis
	lb      analysis // LowerBound's core-only working set (no nest walk)
	statics []int64
	anValid bool // s.an holds a fully resolved core+nest state
}

// NewScratch allocates working memory sized for the engine's architecture.
func (e *Engine) NewScratch() *Scratch {
	n := e.a.NumLevels()
	s := &Scratch{statics: make([]int64, len(e.statics))}
	s.an.init(n)
	s.lb.init(n)
	return s
}

var readTensors = [...]workload.Tensor{workload.Weights, workload.Inputs}

// EvaluateInto is the allocation-free fast path of the analytical model:
// it evaluates mapping m into res, reusing the scratch buffers and res's
// own backing arrays. Unless opts.FullLedger is set, the itemized Energy
// ledger is skipped and only the aggregate TotalPJ is produced — every
// other Result field is identical to Evaluate's.
func (c *Compiled) EvaluateInto(s *Scratch, m *mapping.Mapping, res *Result, opts Options) error {
	return c.EvaluatePartial(s, m, res, opts, 0)
}

// EvaluatePartial is EvaluateInto with delta evaluation. shared declares
// that the outermost shared storage levels of m — temporal factors,
// permutation, rigid spatial choices and free spatial factors — are
// configured identically to the mapping most recently staged or evaluated
// through this scratch on this compiled engine. Those levels' spatial
// factors, loop-nest segments and stationarity factors are reused instead
// of recomputed; every reused value was produced by the same code on
// identical inputs, so the result is bit-identical to EvaluateInto for any
// truthful shared value. Pass 0 when unsure (or after an evaluation
// error): that is exactly EvaluateInto. A stale or mismatched scratch
// (different engine, never staged) silently degrades to a full evaluation
// rather than misbehaving.
func (c *Compiled) EvaluatePartial(s *Scratch, m *mapping.Mapping, res *Result, opts Options, shared int) error {
	if _, err := c.stageCore(s, m, opts, shared, shared); err != nil {
		return err
	}
	return c.finishStaged(s, res, opts)
}

// Stage is the first half of an evaluation fused with the pruning bound:
// it resolves mapping m's core state (spatial factors and tile extents —
// the loop-nest build is deferred to FinishStaged, which pruned candidates
// never pay for) into the scratch, reusing the outermost shared levels
// exactly like EvaluatePartial, and returns the admissible lower bound
// derived from that state, bit-identical to LowerBound's. A staged scratch
// serves a later FinishStaged; together the pair is EvaluatePartial split
// in two, so the mapper's bound gate and the surviving candidates' full
// evaluations share one core resolution instead of paying for two.
//
// sfShared extends the reuse to levels whose spatial configuration alone
// matches the previous mapping (rigid choices and free factors, temporal
// loops free to differ) — candidates drawn under one spatial assignment
// share all of it, and their spatial factors and instance counts are
// bit-identical by construction. Pass shared when unsure.
//
// limitPJ lets the bound stop accumulating energy terms once the partial
// sum alone exceeds it: the returned EnergyPJ is then some admissible
// value above limitPJ rather than the full bound, so any comparison
// "bound > limit" is unaffected. Pass math.Inf(1) for the exact bound.
//
// The staged state also becomes the delta baseline for the next Stage or
// EvaluatePartial on this scratch whether or not FinishStaged runs: a
// pruned candidate still advances the shared-prefix chain.
func (c *Compiled) Stage(s *Scratch, m *mapping.Mapping, opts Options, shared, sfShared int, limitPJ float64) (Bound, error) {
	if _, err := c.stageCore(s, m, opts, shared, sfShared); err != nil {
		return Bound{}, err
	}
	return c.boundFromCoreLimited(&s.an, opts, s.statics, limitPJ), nil
}

// FinishStaged completes the evaluation a Stage call prepared, writing the
// result into res. It must follow a successful Stage of the same compiled
// engine on the same scratch, with no other evaluation in between.
func (c *Compiled) FinishStaged(s *Scratch, res *Result, opts Options) error {
	if !s.anValid || s.an.c != c {
		return fmt.Errorf("model: FinishStaged without a staged scratch for %s", c.l.Name)
	}
	return c.finishStaged(s, res, opts)
}

// stageCore validates m and resolves its core analysis state into s.an,
// honoring (and returning) the shared-prefix reuse count it could actually
// apply. The flattened loop nest is NOT rebuilt here: the bound never
// walks it, so its rebuild is deferred to the finishing passes via
// an.nestOK, which tracks how much of the nest from the last finish is
// still valid across the staged chain (each stage's shared prefix
// guarantees the levels below it are unchanged, so the minimum over the
// chain is a truthful shared value for the eventual resetNest). After
// stageCore returns, s.an is a valid delta baseline even if the finishing
// passes never run or fail.
func (c *Compiled) stageCore(s *Scratch, m *mapping.Mapping, opts Options, shared, sfShared int) (int, error) {
	a := c.eng.a
	if !opts.SkipValidate {
		if err := c.l.Validate(); err != nil {
			return 0, err
		}
		if err := m.Validate(a, c.l); err != nil {
			return 0, err
		}
	}
	an := &s.an
	if shared < 0 || !s.anValid || an.c != c {
		shared = 0
	}
	if sfShared < 0 || !s.anValid || an.c != c {
		sfShared = 0
	}
	if shared > a.NumLevels() {
		shared = a.NumLevels()
	}
	if sfShared > a.NumLevels() {
		sfShared = a.NumLevels()
	}
	s.anValid = false
	shared = an.resetCore(c, m, shared, sfShared)
	if shared < an.nestOK {
		an.nestOK = shared
	}
	if len(s.statics) < len(c.eng.statics) {
		// The analysis buffers resize to any architecture; keep the
		// static-power counters in step so a zero-value Scratch (or one
		// built for another engine) works too.
		s.statics = make([]int64, len(c.eng.statics))
	}
	s.anValid = true
	return shared, nil
}

// finishStaged runs the finishing passes — usage, energy, throughput — of
// a staged analysis into res.
func (c *Compiled) finishStaged(s *Scratch, res *Result, opts Options) error {
	a := c.eng.a
	an := &s.an
	an.resetNest(an.nestOK) // deferred from stageCore; see there
	an.nestOK = len(an.sf)
	res.reset()
	res.Layer = c.l.Name
	res.MACs = an.actualMACs
	res.PaddedMACs = an.paddedMACs
	res.ComputeCycles = an.cycles
	if an.paddedMACs > 0 {
		res.Utilization = float64(an.actualMACs) / float64(an.paddedMACs)
	}

	// Traffic analysis per tensor, written directly into res.Usage.
	for _, t := range readTensors {
		chain := c.eng.keeps[t]
		start := len(res.Usage)
		res.Usage = extendUsage(res.Usage, len(chain))
		if err := an.readTensorUsage(t, res.Usage[start:]); err != nil {
			return err
		}
	}
	outStart := len(res.Usage)
	res.Usage = extendUsage(res.Usage, len(c.eng.keeps[workload.Outputs]))
	if err := an.outputUsage(res.Usage[outStart:]); err != nil {
		return err
	}

	// Energy: aggregate always; itemized ledger only on request.
	if err := an.chargeEnergy(res, opts, s.statics); err != nil {
		return err
	}

	// Throughput: compute-bound cycles vs per-level bandwidth limits.
	res.Cycles = float64(res.ComputeCycles)
	for i := 0; i < a.NumLevels(); i++ {
		lv := a.Level(i)
		if lv.BandwidthWordsPerCycle <= 0 {
			continue
		}
		var words float64
		for j := range res.Usage {
			if res.Usage[j].LevelIndex == i {
				u := &res.Usage[j]
				words += u.Reads + u.Writes + 2*u.Updates
			}
		}
		if need := words / lv.BandwidthWordsPerCycle; need > res.Cycles {
			res.Cycles = need
			res.BottleneckLevel = lv.Name
		}
	}
	if res.Cycles > 0 {
		res.MACsPerCycle = float64(res.MACs) / res.Cycles
	}
	res.AreaUM2 = c.eng.area
	return nil
}

// Evaluate runs the compiled model with fresh scratch and result
// allocations — the convenient one-shot entry point.
func (c *Compiled) Evaluate(m *mapping.Mapping, opts Options) (*Result, error) {
	res := &Result{}
	if err := c.EvaluateInto(c.eng.NewScratch(), m, res, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// extendUsage appends n zeroed usage records, reusing capacity.
func extendUsage(u []Usage, n int) []Usage {
	for i := 0; i < n; i++ {
		u = append(u, Usage{})
	}
	return u
}
