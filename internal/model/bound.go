package model

import (
	"math"

	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

// Bound is an admissible lower bound on a mapping's evaluation: no
// successful full evaluation of the same mapping under the same options can
// produce a smaller energy or fewer cycles. The mapper uses it to discard
// candidates that provably cannot beat its incumbent without paying for a
// full evaluation.
type Bound struct {
	// EnergyPJ is a lower bound on Result.TotalPJ.
	EnergyPJ float64
	// Cycles is a lower bound on Result.Cycles: the exact compute-bound
	// schedule length (bandwidth stalls can only lengthen it).
	Cycles float64
}

// lbSafety shrinks the energy bound by one part in 10^12 to absorb
// floating-point non-associativity: several of the bound's terms equal the
// evaluator's charges exactly in real arithmetic, but are accumulated in a
// different order, and the bound must never round above a true score (a
// candidate tied with the incumbent can still win its tie-break). The
// cycle bound needs no slack — both sides are the same int64 converted.
const lbSafety = 1 - 1e-12

// lbLevel holds one storage level's precomputed admissible energy floors,
// in picojoules per word moved. Unresolvable component references
// contribute zero (evaluations charging them fail outright, so the bound
// never overshoots a successful evaluation).
type lbLevel struct {
	readPJ       float64 // access read energy (0 when absent)
	arrivalMinPJ float64 // cheapest access charge per arriving output word
	// Per destination-side fill word: access write plus the non-PerDistinct
	// converter chain. Per distinct (post-multicast) fill word: the
	// PerDistinct chain. Per arriving output word: the UpdateVia chain
	// (charged on the same basis either way). Per source-side drained word:
	// access read plus the non-PerDistinct chain; per merged drained word:
	// the PerDistinct chain.
	fillUnit   [workload.NumTensors]float64
	fillDist   [workload.NumTensors]float64
	updateUnit [workload.NumTensors]float64
	drainUnit  [workload.NumTensors]float64
	drainDist  [workload.NumTensors]float64
}

// buildBoundTables precomputes the per-level energy floors and the per-MAC
// compute energy backing Compiled.LowerBound. Called once from NewEngine.
func (e *Engine) buildBoundTables() {
	refPJ := func(r *resolvedRef) float64 {
		if r.err != nil {
			return 0
		}
		return r.pj * r.cnt
	}
	e.lbLevels = make([]lbLevel, len(e.levels))
	for i := range e.levels {
		le := &e.levels[i]
		lb := &e.lbLevels[i]
		var writePJ, updatePJ float64
		if le.hasAccess {
			lb.readPJ = refPJ(&le.access[0])
			writePJ = refPJ(&le.access[1])
			updatePJ = refPJ(&le.access[2])
			lb.arrivalMinPJ = min(writePJ, updatePJ)
		}
		for _, t := range workload.AllTensors() {
			lb.fillUnit[t] = writePJ    // writes into the level are its fills
			lb.drainUnit[t] = lb.readPJ // draining reads the tile out
			for j := range le.fill[t] {
				if le.fill[t][j].perDistinct {
					lb.fillDist[t] += refPJ(&le.fill[t][j])
				} else {
					lb.fillUnit[t] += refPJ(&le.fill[t][j])
				}
			}
			for j := range le.update[t] {
				lb.updateUnit[t] += refPJ(&le.update[t][j])
			}
			for j := range le.drain[t] {
				if le.drain[t][j].perDistinct {
					lb.drainDist[t] += refPJ(&le.drain[t][j])
				} else {
					lb.drainUnit[t] += refPJ(&le.drain[t][j])
				}
			}
		}
	}
	e.macUnitPJ = 0
	for i := range e.perMAC {
		e.macUnitPJ += refPJ(&e.perMAC[i])
	}
}

// LowerBound computes a cheap admissible lower bound on the evaluation of
// mapping m: Bound.EnergyPJ <= Result.TotalPJ and Bound.Cycles <=
// Result.Cycles of any successful EvaluateInto of the same mapping and
// options. It needs only the mapping's spatial configuration, tile extents
// and padded iteration count — no loop-nest walk, no per-usage charging —
// which makes it several times cheaper than a full evaluation. Compiled.Stage
// produces the identical bound fused with the evaluation's own core
// resolution, which is how the mapper hot loop obtains it.
//
// The bound combines terms that are exact (the compute-bound cycle count,
// per-MAC compute energy, streaming-station refill traffic, compute
// consumption reads, and output arrivals at the innermost keeper, all of
// which depend only on core quantities) with distinct-tile floors for the
// rest of the data movement: every non-streaming keeper must fill each
// distinct tile the temporal loops above it walk at least once (the
// permutation-aware refetch factor is at least the permutation-independent
// distinct-tile count), and every output keeper drains each such tile at
// least once. Schedules lose energy to refetch above those floors, never
// below them.
//
// For mappings whose full evaluation would fail, the returned bound is
// meaningless — the mapper rejects those candidates either way.
// Admissibility is guarded by the randomized property test
// TestLowerBoundAdmissible.
func (c *Compiled) LowerBound(s *Scratch, m *mapping.Mapping, opts Options) Bound {
	an := &s.lb
	an.resetCore(c, m, 0, 0)
	return c.boundFromCoreLimited(an, opts, s.statics, math.Inf(1))
}

// boundFromCoreLimited derives the admissible bound from an analysis whose
// core state (spatial factors, extents, instances) is already resolved for
// the mapping — either LowerBound's nest-free working set or a staged full
// evaluation. It must not touch the analysis' nest or memo state: the
// LowerBound path never builds them, and Stage defers theirs.
//
// limitPJ is an early-exit threshold: as soon as the partial sum alone
// proves the bound exceeds it, accumulation stops and the partial bound is
// returned. Every term is non-negative, so the partial sum is itself
// admissible and any "bound > limitPJ" comparison decides identically to
// the full bound. math.Inf(1) disables the exit and yields the exact bound.
func (c *Compiled) boundFromCoreLimited(an *analysis, opts Options, statics []int64, limitPJ float64) Bound {
	eng := c.eng
	a := eng.a
	n := a.NumLevels()
	pj := c.macFloorPJ

	// First the exact cycle-scaled terms — streaming-station refills and
	// compute consumption reads. They need no distinct-tile floors, and on
	// conversion-heavy architectures they dominate: a candidate with an
	// oversized schedule usually exceeds the early-exit threshold right
	// here, before any floor work.
	for _, t := range readTensors {
		chain := eng.keeps[t]
		if len(chain) == 0 {
			continue
		}
		last := chain[len(chain)-1]
		if r := eng.lbLevels[last].readPJ; r > 0 {
			// Compute consumption out of the innermost keeper (exact).
			pj += r * float64(an.actualMACs) / an.multicastRange(last, n, t)
		}
		if lv := a.Level(last); lv.Streaming && len(chain) > 1 {
			// Zero retention refills every cycle (exact; mirrors
			// readTensorUsage).
			lb := &eng.lbLevels[last]
			wsExt := clamp(an.spatialExtentsBelow(last), an.bounds)
			var ws int64
			if t == workload.Inputs && !lv.InputOverlapSharing {
				ws = naiveInputElems(wsExt)
			} else {
				ws = an.l.TileElems(t, wsExt)
			}
			fills := float64(ws) * float64(an.cycles) * float64(an.instances[last])
			if u := lb.fillUnit[t]; u > 0 {
				pj += fills * u
			}
			parent := chain[len(chain)-2]
			if du := lb.fillDist[t] + eng.lbLevels[parent].readPJ; du > 0 {
				pj += fills / an.multicastRange(parent, last, t) * du
			}
		}
		if pj*lbSafety > limitPJ {
			return Bound{EnergyPJ: pj * lbSafety, Cycles: float64(an.cycles)}
		}
	}

	// Distinct-tile floors: the temporal loops above level li walk at least
	// product(relevant trips of levels < li) distinct tiles of tensor t, and
	// the permutation-aware refetch factor the evaluator charges is at least
	// that (every distinct tile is fetched at least once, whatever the loop
	// order does on top). The products depend only on the per-level temporal
	// factors, so the floors need no nest walk. Accumulated in float64: the
	// relative rounding error (~2^-53 per multiply) is absorbed by lbSafety.
	var cum [workload.NumTensors]float64
	for _, t := range workload.AllTensors() {
		cum[t] = 1
	}
	for j := 0; j < n; j++ {
		an.distFloor[j] = cum
		tl := &an.m.Levels[j].Temporal
		for _, t := range workload.AllTensors() {
			for _, d := range relevantDims[t] {
				if tr := tl[d]; tr > 1 {
					cum[t] *= float64(tr)
				}
			}
		}
	}

	for _, t := range readTensors {
		chain := eng.keeps[t]
		for pos := 1; pos < len(chain); pos++ {
			if pj*lbSafety > limitPJ {
				return Bound{EnergyPJ: pj * lbSafety, Cycles: float64(an.cycles)}
			}
			li, parent := chain[pos], chain[pos-1]
			if a.Level(li).Streaming && pos == len(chain)-1 {
				continue // charged exactly in the first pass
			}
			lb := &eng.lbLevels[li]
			// Distinct-tile floor: each of the distinct tiles the loops
			// above walk fills at least once per instance.
			fills := float64(an.l.TileElems(t, an.extClamp[li])) * an.distFloor[li][t] *
				float64(an.instances[li])
			if u := lb.fillUnit[t]; u > 0 {
				pj += fills * u
			}
			if du := lb.fillDist[t] + eng.lbLevels[parent].readPJ; du > 0 {
				// Distinct words on the shared side of the distribution:
				// the PerDistinct converters plus the parent's read per
				// distinct word served.
				pj += fills / an.multicastRange(parent, li, t) * du
			}
		}
	}

	// Outputs: exact arrivals at the innermost keeper, refetch-free drain
	// floors on the way up, and the cheaper of write/update per arriving
	// word at every keeper.
	if chain := eng.keeps[workload.Outputs]; len(chain) > 0 {
		t := workload.Outputs
		arrivals := float64(an.actualMACs) / an.spatialReduceRange(chain[len(chain)-1], n)
		for pos := len(chain) - 1; ; pos-- {
			if pj*lbSafety > limitPJ {
				return Bound{EnergyPJ: pj * lbSafety, Cycles: float64(an.cycles)}
			}
			li := chain[pos]
			lb := &eng.lbLevels[li]
			pj += arrivals * (lb.updateUnit[t] + lb.arrivalMinPJ)
			if pos == 0 {
				break
			}
			drains := float64(an.l.TileElems(t, an.extClamp[li])) * an.distFloor[li][t] *
				float64(an.instances[li])
			if u := lb.drainUnit[t]; u > 0 {
				pj += drains * u
			}
			merged := drains / an.spatialReduceRange(chain[pos-1], li)
			if du := lb.drainDist[t]; du > 0 {
				pj += merged * du
			}
			arrivals = merged // floor on what arrives at the parent keeper
		}
	}

	if opts.ChargeStatic && !(pj*lbSafety > limitPJ) {
		pj += an.staticFloorPJ(statics)
	}
	return Bound{EnergyPJ: pj * lbSafety, Cycles: float64(an.cycles)}
}

// staticFloorPJ computes the schedule's static energy — exact, since it
// depends only on core quantities — skipping unresolvable components
// (evaluations charging those fail, so skipping keeps the bound
// admissible). statics is the scratch counter array; an undersized array
// (zero-value Scratch) yields the trivial floor 0.
func (an *analysis) staticFloorPJ(statics []int64) float64 {
	eng := an.c.eng
	if len(statics) < len(eng.statics) {
		return 0
	}
	ns := float64(an.cycles) / an.a.ClockGHz
	an.accumulateStaticSites(statics)
	total := 0.0
	for idx := range eng.statics {
		st := &eng.statics[idx]
		if statics[idx] == 0 || st.err != nil || st.mw <= 0 {
			continue
		}
		total += st.mw * ns * float64(statics[idx])
	}
	return total
}
