package model

import (
	"math"
	"testing"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

func freeLib(t *testing.T) *components.Library {
	t.Helper()
	lib := components.NewLibrary()
	mk := func(class, name string, p components.Params) {
		c, err := components.Build(class, name, p)
		if err != nil {
			t.Fatal(err)
		}
		lib.MustAdd(c)
	}
	mk("dram", "DRAM", components.Params{"pj_per_bit": 1})
	mk("sram", "Buf", components.Params{"capacity_bits": 1 << 24, "access_bits": 8})
	mk("regfile", "Reg", components.Params{"access_bits": 8})
	mk("dac", "DAC", components.Params{"bits": 8, "pj_per_bit": 0.05})
	mk("adc", "ADC", components.Params{"bits": 8, "walden_fj_per_step": 50})
	mk("mrr", "MRR", components.Params{"program_pj": 2})
	mk("mzm", "MZM", components.Params{"modulate_pj": 1})
	mk("photodiode", "PD", components.Params{"detect_pj": 0.5})
	mk("laser", "Laser", components.Params{"per_mac_pj": 0.25})
	return lib
}

// twoLevel: DRAM -> Reg, everything kept everywhere, no fanout.
func twoLevel(t *testing.T) *arch.Arch {
	t.Helper()
	a := &arch.Arch{
		Name: "two", Lib: freeLib(t), ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

func setTemporal(m *mapping.Mapping, level int, factors map[workload.Dim]int, perm []workload.Dim) {
	for d, f := range factors {
		m.Levels[level].Temporal[d] = f
	}
	if perm != nil {
		m.Levels[level].Perm = perm
	}
}

// handLayer is the worked example: K2 C2 P2 Q2 R1 S1, 16 MACs.
func handLayer() workload.Layer {
	return workload.NewConv("hand", 1, 2, 2, 2, 2, 1, 1, 1, 0)
}

func TestHandComputedCountsGoodPermutation(t *testing.T) {
	a := twoLevel(t)
	l := handLayer()
	m := mapping.New(a)
	// DRAM loops: K2 outer, C2 inner. Reg loops: P2 Q2.
	setTemporal(m, 0, map[workload.Dim]int{workload.DimK: 2, workload.DimC: 2},
		[]workload.Dim{workload.DimK, workload.DimC, workload.DimN, workload.DimP, workload.DimQ, workload.DimR, workload.DimS})
	setTemporal(m, 1, map[workload.Dim]int{workload.DimP: 2, workload.DimQ: 2}, nil)

	res, err := Evaluate(a, &l, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	check := func(tensor workload.Tensor, level string, field string, got, want float64) {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%v at %s: %s = %g, want %g", tensor, level, field, got, want)
		}
	}
	// Weights: tile 1 at Reg, refetch over K2*C2 (both relevant) = 4 fills.
	w := res.UsageOf("Reg", workload.Weights)
	check(workload.Weights, "Reg", "fills", w.Fills, 4)
	check(workload.Weights, "Reg", "reads", w.Reads, 16) // per-MAC consumption
	wd := res.UsageOf("DRAM", workload.Weights)
	check(workload.Weights, "DRAM", "reads", wd.Reads, 4)

	// Inputs: tile 4 at Reg (2x2 window block); K irrelevant but C inside
	// is relevant => refetch 4; fills 16.
	in := res.UsageOf("Reg", workload.Inputs)
	if in.TileElems != 4 {
		t.Errorf("input tile = %d, want 4", in.TileElems)
	}
	check(workload.Inputs, "Reg", "fills", in.Fills, 16)
	check(workload.Inputs, "DRAM", "reads", res.UsageOf("DRAM", workload.Inputs).Reads, 16)

	// Outputs: tile 4; stack [K2, C2]: K relevant x2, C innermost
	// irrelevant -> stationary => changes 2, distinct 2, no refills.
	o := res.UsageOf("Reg", workload.Outputs)
	check(workload.Outputs, "Reg", "arrivals", o.Arrivals, 16)
	check(workload.Outputs, "Reg", "writes", o.Writes, 8)   // first writes: 2 residencies x 4
	check(workload.Outputs, "Reg", "updates", o.Updates, 8) // remaining accumulations
	check(workload.Outputs, "Reg", "drains", o.Drains, 8)
	check(workload.Outputs, "Reg", "fills", o.Fills, 0)
	od := res.UsageOf("DRAM", workload.Outputs)
	check(workload.Outputs, "DRAM", "arrivals", od.Arrivals, 8)

	if res.Utilization != 1.0 {
		t.Errorf("utilization = %g, want 1 (perfect factorization)", res.Utilization)
	}
	if res.ComputeCycles != 16 {
		t.Errorf("cycles = %d, want 16", res.ComputeCycles)
	}
}

func TestHandComputedCountsBadPermutationThrashesPsums(t *testing.T) {
	a := twoLevel(t)
	l := handLayer()
	m := mapping.New(a)
	// DRAM loops: C2 outer, K2 inner — reduction outside relevant: psum
	// tiles at Reg are evicted half-done and must refill.
	setTemporal(m, 0, map[workload.Dim]int{workload.DimK: 2, workload.DimC: 2},
		[]workload.Dim{workload.DimC, workload.DimK, workload.DimN, workload.DimP, workload.DimQ, workload.DimR, workload.DimS})
	setTemporal(m, 1, map[workload.Dim]int{workload.DimP: 2, workload.DimQ: 2}, nil)

	res, err := Evaluate(a, &l, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := res.UsageOf("Reg", workload.Outputs)
	// changes = 4 (K relevant x2, C outside-relevant x2): partial tiles
	// drain twice as often as with the good permutation, and the parent
	// must absorb the extra partials with read-modify-write updates.
	if got, want := o.Drains, 16.0; got != want {
		t.Errorf("drains = %g, want %g", got, want)
	}
	od := res.UsageOf("DRAM", workload.Outputs)
	if got, want := od.Arrivals, 16.0; got != want {
		t.Errorf("DRAM psum arrivals = %g, want %g", got, want)
	}
	if od.Updates != 8 {
		t.Errorf("DRAM psum updates = %g, want 8 (each element merged twice)", od.Updates)
	}
}

func TestMulticastDiscount(t *testing.T) {
	// Buf fans out over K=2: inputs (K-irrelevant) are multicast, so DRAM
	// reads of inputs are halved relative to input fills.
	lib := freeLib(t)
	a := &arch.Arch{
		Name: "mc", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Buf", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
				Spatial: []arch.SpatialFactor{arch.Fixed(workload.DimK, 2)},
			},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("mc", 1, 4, 2, 2, 2, 1, 1, 1, 0)
	m := mapping.New(a)
	setTemporal(m, 0, map[workload.Dim]int{workload.DimK: 2, workload.DimC: 2}, nil)
	setTemporal(m, 2, map[workload.Dim]int{workload.DimP: 2, workload.DimQ: 2}, nil)

	res, err := Evaluate(a, &l, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := res.UsageOf("Reg", workload.Inputs)
	// Two Reg instances fill identical input tiles: multicast halves the
	// distinct reads served by Buf.
	if in.Fills != 2*in.FillsDistinct {
		t.Errorf("input fills %g, distinct %g: want 2x multicast", in.Fills, in.FillsDistinct)
	}
	w := res.UsageOf("Reg", workload.Weights)
	// Weights are K-relevant: no multicast.
	if w.Fills != w.FillsDistinct {
		t.Errorf("weight fills %g != distinct %g: weights must not multicast", w.Fills, w.FillsDistinct)
	}
	// Disabling multicast removes the discount.
	a.Levels[1].NoMulticast = true
	res2, err := Evaluate(a, &l, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in2 := res2.UsageOf("Reg", workload.Inputs)
	if in2.Fills != in2.FillsDistinct {
		t.Errorf("NoMulticast: fills %g distinct %g should be equal", in2.Fills, in2.FillsDistinct)
	}
}

func TestSpatialReduction(t *testing.T) {
	// Buf fans out over C=2 (a reduction dim): partial sums from sibling
	// Regs merge on the way up.
	lib := freeLib(t)
	a := &arch.Arch{
		Name: "sr", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Buf", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
				Spatial: []arch.SpatialFactor{arch.Fixed(workload.DimC, 2)},
			},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("sr", 1, 2, 2, 2, 2, 1, 1, 1, 0)
	m := mapping.New(a)
	setTemporal(m, 0, map[workload.Dim]int{workload.DimK: 2}, nil)
	setTemporal(m, 2, map[workload.Dim]int{workload.DimP: 2, workload.DimQ: 2}, nil)

	res, err := Evaluate(a, &l, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := res.UsageOf("Reg", workload.Outputs)
	if o.DrainsMerged*2 != o.Drains {
		t.Errorf("drains %g merged %g: want 2x reduction", o.Drains, o.DrainsMerged)
	}
	// Arrivals at compute-side keeper are per-MAC (no reduction below Reg).
	if o.Arrivals != float64(l.MACs()) {
		t.Errorf("arrivals at Reg = %g, want %d", o.Arrivals, l.MACs())
	}
}

func TestStreamingStationRefillsEveryCycle(t *testing.T) {
	lib := freeLib(t)
	a := &arch.Arch{
		Name: "stream", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{Name: "Glb", Keeps: workload.AllTensorSet(), AccessComponent: "Buf"},
			{
				Name: "Mod", Keeps: workload.NewTensorSet(workload.Inputs), Streaming: true,
				FillVia: map[workload.Tensor][]arch.ActionRef{
					workload.Inputs: {{Component: "MZM", Action: "modulate"}},
				},
			},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("st", 1, 4, 1, 1, 1, 1, 1, 1, 0) // K4: 4 MACs, same input
	m := mapping.New(a)
	setTemporal(m, 1, map[workload.Dim]int{workload.DimK: 4}, nil)
	res, err := Evaluate(a, &l, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := res.UsageOf("Mod", workload.Inputs)
	// The single input value is re-modulated on every one of 4 cycles
	// even though it never changes — light is not storage.
	if in.Fills != 4 {
		t.Errorf("streaming fills = %g, want 4", in.Fills)
	}
	// A retaining station would fill once; check the ledger charged MZM.
	mzm := res.EnergyOf("mzm", "Inputs")
	if mzm != 4*1.0 {
		t.Errorf("MZM energy = %g, want 4", mzm)
	}
}

func TestEnergyLedgerArithmetic(t *testing.T) {
	a := twoLevel(t)
	l := handLayer()
	m := mapping.New(a)
	setTemporal(m, 0, map[workload.Dim]int{workload.DimK: 2, workload.DimC: 2}, nil)
	setTemporal(m, 1, map[workload.Dim]int{workload.DimP: 2, workload.DimQ: 2}, nil)
	res, err := Evaluate(a, &l, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, e := range res.Energy {
		sum += e.TotalPJ
		if e.TotalPJ < 0 || e.Count < 0 {
			t.Errorf("negative ledger entry: %+v", e)
		}
	}
	if math.Abs(sum-res.TotalPJ) > 1e-9 {
		t.Errorf("ledger sum %g != TotalPJ %g", sum, res.TotalPJ)
	}
	if res.PJPerMAC() <= 0 {
		t.Error("PJPerMAC should be positive")
	}
	// Grouping helpers agree with the total.
	var byClass float64
	for _, v := range res.EnergyByClass() {
		byClass += v
	}
	if math.Abs(byClass-res.TotalPJ) > 1e-9 {
		t.Errorf("EnergyByClass sum %g != %g", byClass, res.TotalPJ)
	}
}

func TestComputePerMACCharges(t *testing.T) {
	a := twoLevel(t)
	a.Compute = arch.Compute{Name: "mac", PerMAC: []arch.ActionRef{{Component: "Laser", Action: "supply"}}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	l := handLayer()
	m := mapping.New(a)
	setTemporal(m, 0, map[workload.Dim]int{workload.DimK: 2, workload.DimC: 2}, nil)
	setTemporal(m, 1, map[workload.Dim]int{workload.DimP: 2, workload.DimQ: 2}, nil)
	res, err := Evaluate(a, &l, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	laser := res.EnergyOf("laser", "")
	if math.Abs(laser-16*0.25) > 1e-9 {
		t.Errorf("laser energy = %g, want 4", laser)
	}
}

func TestBandwidthBound(t *testing.T) {
	a := twoLevel(t)
	a.Levels[0].BandwidthWordsPerCycle = 0.5
	l := handLayer()
	m := mapping.New(a)
	setTemporal(m, 0, map[workload.Dim]int{workload.DimK: 2, workload.DimC: 2}, nil)
	setTemporal(m, 1, map[workload.Dim]int{workload.DimP: 2, workload.DimQ: 2}, nil)
	res, err := Evaluate(a, &l, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BottleneckLevel != "DRAM" {
		t.Errorf("bottleneck = %q, want DRAM", res.BottleneckLevel)
	}
	if res.Cycles <= float64(res.ComputeCycles) {
		t.Errorf("bandwidth-bound cycles %g should exceed compute cycles %d", res.Cycles, res.ComputeCycles)
	}
	if res.MACsPerCycle >= float64(res.MACs)/float64(res.ComputeCycles) {
		t.Error("throughput should degrade under a bandwidth bound")
	}
}

func TestPaddedUtilization(t *testing.T) {
	a := twoLevel(t)
	l := workload.NewConv("pad", 1, 3, 1, 1, 1, 1, 1, 1, 0) // K=3
	m := mapping.New(a)
	setTemporal(m, 0, map[workload.Dim]int{workload.DimK: 4}, nil) // padded to 4
	res, err := Evaluate(a, &l, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Utilization-0.75) > 1e-9 {
		t.Errorf("utilization = %g, want 0.75", res.Utilization)
	}
	if res.MACsPerCycle >= 1 {
		t.Errorf("padded throughput = %g, want < 1 MAC/cycle", res.MACsPerCycle)
	}
}

func TestEvaluateCheckedRejectsDomainGaps(t *testing.T) {
	lib := freeLib(t)
	a := &arch.Arch{
		Name: "gap", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Domain: arch.DE, Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{Name: "Ring", Domain: arch.AO, Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	l := handLayer()
	m := mapping.New(a)
	setTemporal(m, 0, map[workload.Dim]int{workload.DimK: 2, workload.DimC: 2, workload.DimP: 2, workload.DimQ: 2}, nil)
	if _, err := EvaluateChecked(a, &l, m, Options{}); err == nil {
		t.Error("EvaluateChecked accepted a DE->AO edge with no converters")
	}
	if _, err := Evaluate(a, &l, m, Options{}); err != nil {
		t.Errorf("plain Evaluate should tolerate gaps: %v", err)
	}
}

func TestStaticPowerCharging(t *testing.T) {
	lib := freeLib(t)
	heater, err := components.Build("mrr", "Heater", components.Params{"program_pj": 1, "heater_mw": 2})
	if err != nil {
		t.Fatal(err)
	}
	lib.MustAdd(heater)
	a := &arch.Arch{
		Name: "static", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Ring", Keeps: workload.NewTensorSet(workload.Weights),
				FillVia: map[workload.Tensor][]arch.ActionRef{
					workload.Weights: {{Component: "Heater", Action: "program"}},
				},
			},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	l := handLayer()
	m := mapping.New(a)
	setTemporal(m, 0, map[workload.Dim]int{workload.DimK: 2, workload.DimC: 2, workload.DimP: 2, workload.DimQ: 2}, nil)
	res, err := Evaluate(a, &l, m, Options{ChargeStatic: true})
	if err != nil {
		t.Fatal(err)
	}
	var static float64
	for _, e := range res.Energy {
		if e.Action == "static" {
			static += e.TotalPJ
		}
	}
	// 2 mW for 16 cycles at 1 GHz = 2 mW * 16 ns = 32 pJ.
	if math.Abs(static-32) > 1e-9 {
		t.Errorf("static energy = %g, want 32", static)
	}
	// Without the option, nothing static.
	res2, _ := Evaluate(a, &l, m, Options{})
	for _, e := range res2.Energy {
		if e.Action == "static" {
			t.Error("static charged without ChargeStatic")
		}
	}
}

func TestResultAccumulate(t *testing.T) {
	a := twoLevel(t)
	l := handLayer()
	m := mapping.New(a)
	setTemporal(m, 0, map[workload.Dim]int{workload.DimK: 2, workload.DimC: 2, workload.DimP: 2, workload.DimQ: 2}, nil)
	r1, err := Evaluate(a, &l, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := Evaluate(a, &l, m, Options{})
	var total Result
	total.Accumulate(r1)
	total.Accumulate(r2)
	if total.MACs != 2*r1.MACs || math.Abs(total.TotalPJ-2*r1.TotalPJ) > 1e-9 {
		t.Error("Accumulate totals wrong")
	}
	if math.Abs(total.Utilization-r1.Utilization) > 1e-9 {
		t.Error("Accumulate utilization wrong")
	}
}
