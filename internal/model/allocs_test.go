package model

import (
	"math"
	"math/rand"
	"testing"

	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

// TestStagedFastPathZeroAlloc guards the batch fast path's allocation
// contract: once the scratch and result backings are warm, a full
// Stage → FinishStaged round trip (the mapper's per-candidate hot loop)
// must not allocate, and neither must the prune-only path where Stage's
// bound kills the candidate and FinishStaged never runs.
func TestStagedFastPathZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := photonicArch(t, rng)
	l := workload.NewConv("alloc", 1, 16, 16, 8, 8, 3, 3, 1, 1)
	c, err := Compile(a, &l)
	if err != nil {
		t.Fatal(err)
	}
	var ms []*mapping.Mapping
	for len(ms) < 8 {
		m := randSearchStyleMapping(rng, a, &l)
		if m.Validate(a, &l) == nil {
			ms = append(ms, m)
		}
	}
	s := c.Engine().NewScratch()
	res := &Result{}
	opts := Options{SkipValidate: true}
	stageFinish := func(m *mapping.Mapping, limitPJ float64, finish bool) {
		if _, err := c.Stage(s, m, opts, 0, 0, limitPJ); err != nil {
			t.Fatal(err)
		}
		if finish {
			if err := c.FinishStaged(s, res, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, m := range ms { // size every backing array before measuring
		stageFinish(m, math.Inf(1), true)
	}

	i := 0
	if n := testing.AllocsPerRun(100, func() {
		stageFinish(ms[i%len(ms)], math.Inf(1), true)
		i++
	}); n != 0 {
		t.Errorf("Stage+FinishStaged allocates %.1f times per candidate, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		// A tiny limit makes the bound's early exit fire, matching what a
		// pruned candidate pays.
		stageFinish(ms[i%len(ms)], 1e-9, false)
		i++
	}); n != 0 {
		t.Errorf("prune-only Stage allocates %.1f times per candidate, want 0", n)
	}
}
