package model

import (
	"math/rand"
	"testing"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

// randArch builds a 3-level hierarchy with randomized spatial dimension,
// flags and capacities — the population over which the invariants below
// must hold.
func randArch(t *testing.T, rng *rand.Rand) *arch.Arch {
	t.Helper()
	lib := components.NewLibrary()
	mk := func(class, name string, p components.Params) {
		c, err := components.Build(class, name, p)
		if err != nil {
			t.Fatal(err)
		}
		lib.MustAdd(c)
	}
	mk("dram", "DRAM", components.Params{"pj_per_bit": 8, "access_bits": 8})
	mk("sram", "Buf", components.Params{"capacity_bits": 1 << 22, "access_bits": 8})
	mk("regfile", "Reg", components.Params{"access_bits": 8})

	spatialDims := []workload.Dim{workload.DimK, workload.DimC, workload.DimQ, workload.DimN}
	sd := spatialDims[rng.Intn(len(spatialDims))]
	a := &arch.Arch{
		Name: "rand", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Buf", Keeps: workload.AllTensorSet(), AccessComponent: "Buf",
				Spatial:             []arch.SpatialFactor{arch.Fixed(sd, 1+rng.Intn(3))},
				NoMulticast:         rng.Intn(3) == 0,
				NoSpatialReduce:     rng.Intn(3) == 0,
				InputOverlapSharing: rng.Intn(2) == 0,
			},
			{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

func randLayerAndMapping(t *testing.T, rng *rand.Rand, a *arch.Arch) (workload.Layer, *mapping.Mapping) {
	t.Helper()
	l := workload.NewConv("rand",
		1+rng.Intn(2), 1+rng.Intn(6), 1+rng.Intn(6),
		1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(3), 1+rng.Intn(3),
		1+rng.Intn(2), 0)
	m := mapping.New(a)
	// Random temporal splits with occasional padding.
	for _, d := range workload.AllDims() {
		bound := l.Bound(d)
		sp := m.SpatialAt(a, 1)[d]
		rem := workload.CeilDiv(bound, sp)
		for i := a.NumLevels() - 1; i > 0 && rem > 1; i-- {
			cands := mapping.PaddedCandidates(rem)
			f := cands[rng.Intn(len(cands))]
			m.Levels[i].Temporal[d] = f
			rem = workload.CeilDiv(rem, f)
		}
		m.Levels[0].Temporal[d] *= rem
	}
	perms := [][]workload.Dim{
		{workload.DimN, workload.DimK, workload.DimC, workload.DimP, workload.DimQ, workload.DimR, workload.DimS},
		{workload.DimC, workload.DimR, workload.DimS, workload.DimN, workload.DimK, workload.DimP, workload.DimQ},
		{workload.DimK, workload.DimC, workload.DimR, workload.DimS, workload.DimN, workload.DimP, workload.DimQ},
	}
	for i := range m.Levels {
		m.Levels[i].Perm = append([]workload.Dim(nil), perms[rng.Intn(len(perms))]...)
	}
	return l, m
}

// TestModelInvariants checks conservation laws over randomized
// architectures, layers and (possibly padded) mappings.
func TestModelInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		a := randArch(t, rng)
		l, m := randLayerAndMapping(t, rng, a)
		if err := m.Validate(a, &l); err != nil {
			continue // random draw violated a structural rule; skip
		}
		res, err := Evaluate(a, &l, m, Options{SkipValidate: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checked++

		if res.Utilization <= 0 || res.Utilization > 1+1e-9 {
			t.Fatalf("trial %d: utilization %g out of (0,1]", trial, res.Utilization)
		}
		if res.TotalPJ < 0 || res.Cycles <= 0 {
			t.Fatalf("trial %d: negative energy or cycles", trial)
		}
		for _, u := range res.Usage {
			// Multicast can only reduce: distinct fills never exceed fills.
			if u.FillsDistinct > u.Fills+1e-6 {
				t.Fatalf("trial %d: %s/%v distinct %g > fills %g", trial, u.Level, u.Tensor, u.FillsDistinct, u.Fills)
			}
			// Reduction can only reduce: merged drains never exceed drains.
			if u.DrainsMerged > u.Drains+1e-6 {
				t.Fatalf("trial %d: %s/%v merged %g > drains %g", trial, u.Level, u.Tensor, u.DrainsMerged, u.Drains)
			}
			// Nothing negative, ever.
			for name, v := range map[string]float64{
				"fills": u.Fills, "reads": u.Reads, "writes": u.Writes,
				"updates": u.Updates, "drains": u.Drains, "arrivals": u.Arrivals,
			} {
				if v < 0 {
					t.Fatalf("trial %d: %s/%v negative %s %g", trial, u.Level, u.Tensor, name, v)
				}
			}
			// A non-streaming inner keeper of a read tensor fills at
			// least one whole tile per instance.
			lv := a.Level(u.LevelIndex)
			if u.Tensor.IsRead() && u.LevelIndex > 0 && !lv.Streaming {
				minFill := float64(u.TileElems) * float64(u.Instances)
				if u.Fills < minFill-1e-6 {
					t.Fatalf("trial %d: %s/%v fills %g below one tile per instance %g",
						trial, u.Level, u.Tensor, u.Fills, minFill)
				}
			}
		}
		// Every distinct element of a read tensor crosses the DRAM
		// boundary at least once.
		for _, tensor := range []workload.Tensor{workload.Weights, workload.Inputs} {
			dram := res.UsageOf("DRAM", tensor)
			if dram != nil && dram.Reads < float64(l.TensorElems(tensor))-1e-6 {
				t.Fatalf("trial %d: DRAM reads %g below %v footprint %d",
					trial, dram.Reads, tensor, l.TensorElems(tensor))
			}
		}
		// Every output element lands in DRAM at least once.
		if od := res.UsageOf("DRAM", workload.Outputs); od != nil {
			if od.Arrivals < float64(l.TensorElems(workload.Outputs))-1e-6 {
				t.Fatalf("trial %d: DRAM output arrivals %g below footprint %d",
					trial, od.Arrivals, l.TensorElems(workload.Outputs))
			}
		}
	}
	if checked < 150 {
		t.Fatalf("only %d/300 random draws validated; generator too weak", checked)
	}
}

// TestEnergyMonotoneInComponentCost doubles the DRAM energy and expects the
// total to strictly increase (same counts, pricier actions).
func TestEnergyMonotoneInComponentCost(t *testing.T) {
	build := func(pjPerBit float64) (*arch.Arch, workload.Layer, *mapping.Mapping) {
		lib := components.NewLibrary()
		d, err := components.Build("dram", "DRAM", components.Params{"pj_per_bit": pjPerBit, "access_bits": 8})
		if err != nil {
			t.Fatal(err)
		}
		lib.MustAdd(d)
		r, err := components.Build("regfile", "Reg", components.Params{"access_bits": 8})
		if err != nil {
			t.Fatal(err)
		}
		lib.MustAdd(r)
		a := &arch.Arch{
			Name: "m", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
			Levels: []arch.Level{
				{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
				{Name: "Reg", Keeps: workload.AllTensorSet(), AccessComponent: "Reg"},
			},
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		l := workload.NewConv("l", 1, 4, 4, 4, 4, 3, 3, 1, 1)
		m := mapping.New(a)
		for _, d := range workload.AllDims() {
			m.Levels[0].Temporal[d] = l.Bound(d)
		}
		return a, l, m
	}
	a1, l1, m1 := build(8)
	r1, err := Evaluate(a1, &l1, m1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, l2, m2 := build(16)
	r2, err := Evaluate(a2, &l2, m2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.TotalPJ <= r1.TotalPJ {
		t.Errorf("doubling DRAM cost did not increase energy: %g vs %g", r2.TotalPJ, r1.TotalPJ)
	}
	// And exactly the DRAM delta: counts identical.
	d1 := r1.EnergyOf("dram", "")
	d2 := r2.EnergyOf("dram", "")
	if d2 != 2*d1 {
		t.Errorf("DRAM energy should exactly double: %g vs %g", d2, d1)
	}
}

// TestDeeperBufferingReducesDRAMTraffic moves reuse loops inward and
// expects backing-store traffic to fall — the whole point of a buffer.
func TestDeeperBufferingReducesDRAMTraffic(t *testing.T) {
	lib := components.NewLibrary()
	d, err := components.Build("dram", "DRAM", components.Params{"pj_per_bit": 8, "access_bits": 8})
	if err != nil {
		t.Fatal(err)
	}
	lib.MustAdd(d)
	s, err := components.Build("sram", "Buf", components.Params{"capacity_bits": 1 << 22, "access_bits": 8})
	if err != nil {
		t.Fatal(err)
	}
	lib.MustAdd(s)
	a := &arch.Arch{
		Name: "buf", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{Name: "Buf", Keeps: workload.AllTensorSet(), AccessComponent: "Buf", CapacityBits: 1 << 22},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	l := workload.NewConv("l", 1, 8, 8, 8, 8, 3, 3, 1, 1)

	// Shallow: everything iterates at DRAM (weights refetched per pixel).
	shallow := mapping.New(a)
	for _, d := range workload.AllDims() {
		shallow.Levels[0].Temporal[d] = l.Bound(d)
	}
	// Deep: everything iterates inside the buffer.
	deep := mapping.New(a)
	for _, d := range workload.AllDims() {
		deep.Levels[1].Temporal[d] = l.Bound(d)
	}
	rs, err := Evaluate(a, &l, shallow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Evaluate(a, &l, deep, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sD := rs.UsageOf("DRAM", workload.Weights).Reads
	dD := rd.UsageOf("DRAM", workload.Weights).Reads
	if dD >= sD {
		t.Errorf("deep buffering DRAM weight reads %g should be below shallow %g", dD, sD)
	}
	if dD != float64(l.TensorElems(workload.Weights)) {
		t.Errorf("deep buffering should fetch each weight once: %g vs %d", dD, l.TensorElems(workload.Weights))
	}
}
