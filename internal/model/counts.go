package model

import (
	"fmt"

	"photoloop/internal/arch"
	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

// analysis carries the shared state of one evaluation. Its slices live in
// a Scratch and are reused across evaluations.
type analysis struct {
	c *Compiled
	a *arch.Arch
	l *workload.Layer
	m *mapping.Mapping

	bounds     workload.Point
	padded     workload.Point
	actualMACs int64
	paddedMACs int64
	cycles     int64 // padded temporal iterations

	sf        []workload.Point // per-level spatial factors
	ext       []workload.Point // per-level tile extents (padded)
	extClamp  []workload.Point // per-level tile extents clamped to bounds
	instances []int64          // per-level instance counts

	nestBuf []mapping.Loop // full flattened temporal nest, outermost first
	nestCut []int          // nestBuf[:nestCut[i]] is the nest above level i

	// Delta-evaluation state: stationarity factors (refetch, distinct
	// tiles) of a level depend only on the nest above it, so when
	// consecutive evaluations share a prefix of identical outer levels the
	// memoized factors of those levels stay valid. memoMax is the highest
	// level whose memo entries may be reused this evaluation; memoSet
	// tracks which (level, tensor) entries hold a value (bit t = refetch,
	// bit 3+t = distinct tiles).
	memoMax      int
	refetchMemo  [][workload.NumTensors]int64
	distinctMemo [][workload.NumTensors]int64
	memoSet      []uint8

	// distFloor is the lower bound's working array: per level, the number
	// of distinct tiles of each tensor the temporal loops of the levels
	// above walk (see boundFromCore). Unlike the memos it is rebuilt from
	// the mapping's temporal factors alone, so the bound needs no nest.
	distFloor [][workload.NumTensors]float64

	// nestOK counts the leading levels whose nestBuf segments (and memos)
	// still describe the current mapping. Staging defers the nest rebuild
	// to the finishing passes — the bound never walks the nest, so pruned
	// candidates skip it entirely — and tracks here how much of the buffer
	// survives the staged chain since the last finish.
	nestOK int

	// instTotal is the product of all spatial factors (the divisor turning
	// padded MACs into temporal iterations), cached alongside instances so
	// spatially-shared evaluations skip the instance pass too.
	instTotal int64
}

// relevantDims lists, per tensor, the dimensions addressing it — the static
// inner loop of the bound's distinct-tile floors (a dynamic Relevant call
// per (level, dim, tensor) showed up in search profiles).
var relevantDims = func() (rel [workload.NumTensors][]workload.Dim) {
	for _, t := range workload.AllTensors() {
		for _, d := range workload.AllDims() {
			if workload.Relevant(t, d) {
				rel[t] = append(rel[t], d)
			}
		}
	}
	return rel
}()

// init sizes every buffer for an architecture with n storage levels.
func (an *analysis) init(n int) {
	an.sf = make([]workload.Point, n)
	an.ext = make([]workload.Point, n)
	an.extClamp = make([]workload.Point, n)
	an.instances = make([]int64, n)
	an.nestCut = make([]int, n+1)
	an.refetchMemo = make([][workload.NumTensors]int64, n)
	an.distinctMemo = make([][workload.NumTensors]int64, n)
	an.memoSet = make([]uint8, n)
	an.distFloor = make([][workload.NumTensors]float64, n)
}

// resetCore re-derives the spatial and extent state of a mapping, reusing
// the analysis' buffers: per-level spatial factors, tile extents (suffix
// products of the per-level factors — integer multiplication, so identical
// to multiplying level by level), instance counts and the padded iteration
// count. Levels below shared keep their spatial factors from the previous
// mapping — the caller guarantees those levels are configured identically.
// sfShared extends that reuse to levels whose spatial configuration alone
// (rigid choices and free factors) matches the previous mapping even
// though their temporal loops differ — the case for every candidate drawn
// under one spatial assignment — skipping the spatial-factor resolution
// and, when it covers all levels, the instance pass too. Extents are
// always recomputed: they are suffix products, so any inner change moves
// every outer extent.
//
// It returns the shared count it actually honored: freshly (re)sized
// buffers hold nothing reusable, and the caller must feed the effective
// value to resetNest so the nest prefix is not skipped over zeroed state.
func (an *analysis) resetCore(c *Compiled, m *mapping.Mapping, shared, sfShared int) int {
	a := c.eng.a
	n := a.NumLevels()
	an.c, an.a, an.l, an.m = c, a, c.l, m
	an.bounds = c.bounds
	an.actualMACs = c.actualMACs
	if cap(an.sf) < n {
		an.init(n)
		shared, sfShared = 0, 0
	}
	if sfShared < shared {
		sfShared = shared
	}
	an.sf = an.sf[:n]
	an.ext = an.ext[:n]
	an.extClamp = an.extClamp[:n]
	an.instances = an.instances[:n]
	run := workload.Ones()
	for i := n - 1; i >= 0; i-- {
		if i >= sfShared {
			an.sf[i] = m.SpatialAt(a, i)
		}
		run = run.Mul(m.Levels[i].Temporal.Mul(an.sf[i]))
		an.ext[i] = run
		an.extClamp[i] = clamp(run, an.bounds)
	}
	an.padded = run // the outermost tile extent spans the padded bounds
	an.paddedMACs = an.padded.Product()
	if sfShared < n {
		inst := int64(1)
		for i := 0; i < n; i++ {
			an.instances[i] = inst
			inst *= an.sf[i].Product()
		}
		an.instTotal = inst
	}
	// padded MACs factor exactly into temporal iterations times total
	// spatial instances, so one integer division replaces the per-level
	// trip-count products of m.TemporalIterations().
	an.cycles = an.paddedMACs / an.instTotal
	return shared
}

// resetNest rebuilds the flattened temporal nest from level shared down —
// the nest above level i is a prefix of the full nest, so the segments of
// unchanged outer levels are kept in place — and resets the stationarity
// memos accordingly.
func (an *analysis) resetNest(shared int) {
	n := len(an.sf)
	an.nestCut = an.nestCut[:n+1]
	if shared == 0 {
		an.nestBuf = an.nestBuf[:0]
		for i := range an.memoSet {
			an.memoSet[i] = 0
		}
	} else {
		an.nestBuf = an.nestBuf[:an.nestCut[shared]]
	}
	an.memoMax = shared
	for j := shared; j < n; j++ {
		an.nestCut[j] = len(an.nestBuf)
		lm := &an.m.Levels[j]
		for _, d := range lm.Perm {
			if t := lm.Temporal[d]; t > 1 {
				an.nestBuf = append(an.nestBuf, mapping.Loop{Dim: d, Trip: t, Level: j})
			}
		}
	}
	an.nestCut[n] = len(an.nestBuf)
}

// refetchAt returns refetchFactor(nest above li, t), reusing the memoized
// value when the nest above li is unchanged from the previous evaluation.
func (an *analysis) refetchAt(li int, t workload.Tensor) int64 {
	if li <= an.memoMax && an.memoSet[li]&(1<<t) != 0 {
		return an.refetchMemo[li][t]
	}
	v := refetchFactor(an.nest(li), t)
	an.refetchMemo[li][t] = v
	an.memoSet[li] |= 1 << t
	return v
}

// distinctAt returns distinctTiles(nest above li, t) with the same
// memoization as refetchAt.
func (an *analysis) distinctAt(li int, t workload.Tensor) int64 {
	if li <= an.memoMax && an.memoSet[li]&(8<<t) != 0 {
		return an.distinctMemo[li][t]
	}
	v := distinctTiles(an.nest(li), t)
	an.distinctMemo[li][t] = v
	an.memoSet[li] |= 8 << t
	return v
}

// nest returns the flattened temporal loop nest above level li.
func (an *analysis) nest(li int) []mapping.Loop {
	return an.nestBuf[:an.nestCut[li]]
}

// spatialExtentsBelow is Mapping.SpatialExtentsBelow over the cached
// per-level spatial factors.
func (an *analysis) spatialExtentsBelow(i int) workload.Point {
	ext := workload.Ones()
	for j := len(an.sf) - 1; j >= i; j-- {
		ext = ext.Mul(an.sf[j])
	}
	return ext
}

func clamp(p, bounds workload.Point) workload.Point {
	out := p
	for i := range out {
		if out[i] > bounds[i] {
			out[i] = bounds[i]
		}
	}
	return out
}

// naiveInputElems counts input words without window-overlap
// deduplication: every (output-pixel, filter-tap) consumer demands its own
// copy.
func naiveInputElems(ext workload.Point) int64 {
	return int64(ext[workload.DimN]) * int64(ext[workload.DimC]) *
		int64(ext[workload.DimP]) * int64(ext[workload.DimR]) *
		int64(ext[workload.DimQ]) * int64(ext[workload.DimS])
}

// refetchFactor implements permutation-aware stationarity: given the
// flattened temporal nest above a tile (outermost first), the tile changes
// once per iteration of (a) every loop over a dimension relevant to the
// tensor and (b) every irrelevant loop that has a relevant loop strictly
// inside it (revisiting evicted tiles). Innermost irrelevant loops keep the
// tile stationary and contribute nothing.
func refetchFactor(nest []mapping.Loop, t workload.Tensor) int64 {
	f := int64(1)
	relevantInside := false
	for i := len(nest) - 1; i >= 0; i-- {
		lp := nest[i]
		if workload.Relevant(t, lp.Dim) {
			f *= int64(lp.Trip)
			relevantInside = true
		} else if relevantInside {
			f *= int64(lp.Trip)
		}
	}
	return f
}

// distinctTiles returns how many distinct tiles of tensor t the nest above
// a level walks: the product of relevant loop trips.
func distinctTiles(nest []mapping.Loop, t workload.Tensor) int64 {
	f := int64(1)
	for _, lp := range nest {
		if workload.Relevant(t, lp.Dim) {
			f *= int64(lp.Trip)
		}
	}
	return f
}

// multicastAt returns the one-to-many distribution factor of tensor t
// provided by the spatial fan-out directly below level j: the product of
// spatial factors over dimensions irrelevant to t, times the window-overlap
// sharing factor for inputs when the level supports it. Levels with
// NoMulticast provide no discount.
func (an *analysis) multicastAt(j int, t workload.Tensor) float64 {
	lv := an.a.Level(j)
	if lv.NoMulticast {
		return 1
	}
	mc := 1.0
	for _, d := range workload.AllDims() {
		if !workload.Relevant(t, d) && an.sf[j][d] > 1 {
			mc *= float64(an.sf[j][d])
		}
	}
	if t == workload.Inputs && lv.InputOverlapSharing {
		mc *= an.overlapSharingAt(j)
	}
	return mc
}

// overlapSharingAt returns the input-sharing factor of the spatial fan-out
// below level j: the ratio of naively duplicated window inputs to the
// distinct inputs in the combined (haloed) footprint, per spatial axis.
// Unstrided 3x3 windows across a 32-wide pixel vector share ~2.8x; strided
// layers share less; stride >= filter (and 1x1 filters) share nothing.
func (an *analysis) overlapSharingAt(j int) float64 {
	childExt := workload.Ones()
	if j+1 < an.a.NumLevels() {
		childExt = an.ext[j+1]
	}
	sharing := 1.0
	// Vertical axis: spatial P with filter extent R.
	if sp := an.sf[j][workload.DimP]; sp > 1 {
		hChild := workload.InputRange(childExt[workload.DimP], childExt[workload.DimR], an.l.StrideH, an.l.DilationH)
		hComb := workload.InputRange(sp*childExt[workload.DimP], childExt[workload.DimR], an.l.StrideH, an.l.DilationH)
		if hComb > 0 {
			sharing *= float64(sp*hChild) / float64(hComb)
		}
	}
	// Horizontal axis: spatial Q with filter extent S.
	if sq := an.sf[j][workload.DimQ]; sq > 1 {
		wChild := workload.InputRange(childExt[workload.DimQ], childExt[workload.DimS], an.l.StrideW, an.l.DilationW)
		wComb := workload.InputRange(sq*childExt[workload.DimQ], childExt[workload.DimS], an.l.StrideW, an.l.DilationW)
		if wComb > 0 {
			sharing *= float64(sq*wChild) / float64(wComb)
		}
	}
	if sharing < 1 {
		sharing = 1
	}
	return sharing
}

// multicastRange multiplies the multicast factors of levels [from, to).
func (an *analysis) multicastRange(from, to int, t workload.Tensor) float64 {
	mc := 1.0
	for j := from; j < to; j++ {
		mc *= an.multicastAt(j, t)
	}
	return mc
}

// spatialReduceAt returns the partial-sum merge factor of the fan-out below
// level j: the product of spatial factors over reduction dimensions.
func (an *analysis) spatialReduceAt(j int) float64 {
	lv := an.a.Level(j)
	if lv.NoSpatialReduce {
		return 1
	}
	sr := 1.0
	for _, d := range workload.ReductionDims() {
		if an.sf[j][d] > 1 {
			sr *= float64(an.sf[j][d])
		}
	}
	return sr
}

// spatialReduceRange multiplies the reduction factors of levels [from, to).
func (an *analysis) spatialReduceRange(from, to int) float64 {
	sr := 1.0
	for j := from; j < to; j++ {
		sr *= an.spatialReduceAt(j)
	}
	return sr
}

// readTensorUsage computes the traffic of a read operand (weights or
// inputs) along its keep chain, writing into usages (one zeroed record per
// keep level, provided by the caller).
func (an *analysis) readTensorUsage(t workload.Tensor, usages []Usage) error {
	chain := an.c.eng.keeps[t]
	for pos, li := range chain {
		lv := an.a.Level(li)
		u := &usages[pos]
		u.Level = lv.Name
		u.LevelIndex = li
		u.Tensor = t
		u.Instances = an.instances[li]
		u.TileElems = an.l.TileElems(t, an.extClamp[li])
		if lv.Streaming {
			if pos != len(chain)-1 {
				return fmt.Errorf("model: streaming level %s must be the innermost keeper of %v", lv.Name, t)
			}
			// Zero retention: the working set is refilled every cycle.
			// With window-overlap sharing, one converted input serves
			// every window position that touches it (the halo formula
			// deduplicates); without it, each (pixel, tap) consumer
			// needs its own conversion.
			wsExt := clamp(an.spatialExtentsBelow(li), an.bounds)
			var ws int64
			if t == workload.Inputs && !lv.InputOverlapSharing {
				ws = naiveInputElems(wsExt)
			} else {
				ws = an.l.TileElems(t, wsExt)
			}
			u.Fills = float64(ws) * float64(an.cycles) * float64(u.Instances)
		} else if pos > 0 {
			u.Fills = float64(u.TileElems) * float64(an.refetchAt(li, t)) * float64(u.Instances)
		}
		// Writes into the level are its fills.
		u.Writes = u.Fills
		if pos > 0 {
			parent := chain[pos-1]
			u.FillsDistinct = u.Fills / an.multicastRange(parent, li, t)
		}
	}
	// Reads out of each keeper: distinct fills of the next-inner keeper,
	// plus compute consumption at the innermost keeper.
	for pos := range usages {
		if pos+1 < len(usages) {
			usages[pos].Reads += usages[pos+1].FillsDistinct
		}
	}
	last := len(usages) - 1
	li := chain[last]
	consumption := float64(an.actualMACs) / an.multicastRange(li, an.a.NumLevels(), t)
	usages[last].Reads += consumption
	return nil
}

// outputUsage computes the traffic of the output tensor along its keep
// chain: per-MAC updates arrive at the innermost keeper (discounted by
// spatial reduction below it), tiles drain upward on completion, and
// partial tiles evicted by reduction loops above refill downward. It
// writes into usages (one zeroed record per keep level).
func (an *analysis) outputUsage(usages []Usage) error {
	t := workload.Outputs
	chain := an.c.eng.keeps[t]
	for pos, li := range chain {
		lv := an.a.Level(li)
		u := &usages[pos]
		u.Level = lv.Name
		u.LevelIndex = li
		u.Tensor = t
		u.Instances = an.instances[li]
		u.TileElems = an.l.TileElems(t, an.extClamp[li])
		if lv.Streaming {
			return fmt.Errorf("model: output keeper %s cannot be a streaming level", lv.Name)
		}
	}

	// Arrivals at the innermost keeper: one partial per MAC, merged by
	// spatial reduction below it.
	last := len(usages) - 1
	liLast := chain[last]
	arrivals := float64(an.actualMACs) / an.spatialReduceRange(liLast, an.a.NumLevels())
	an.chargeArrivals(&usages[last], arrivals, chain[last])

	// Drains from inner keepers to outer ones. Partial sums always merge
	// upward (fresh-start accumulation): an evicted partial tile is never
	// refilled — the parent keeper absorbs each partial with a
	// read-modify-write update, which chargeArrivals accounts for.
	for pos := last; pos > 0; pos-- {
		li := chain[pos]
		u := &usages[pos]
		changes := an.refetchAt(li, t)
		u.Drains = float64(u.TileElems) * float64(changes) * float64(u.Instances)
		// Reading the tile out to drain it.
		u.Reads += u.Drains
		parent := chain[pos-1]
		u.DrainsMerged = u.Drains / an.spatialReduceRange(parent, li)
		an.chargeArrivals(&usages[pos-1], u.DrainsMerged, parent)
	}
	return nil
}

// chargeArrivals splits words arriving at an output keeper into first
// writes (one per element per tile residency) and read-modify-write
// updates.
func (an *analysis) chargeArrivals(u *Usage, words float64, li int) {
	residencies := float64(an.distinctAt(li, workload.Outputs)) * float64(u.Instances)
	firstWrites := float64(u.TileElems) * residencies
	if firstWrites > words {
		firstWrites = words
	}
	u.Arrivals += words
	u.Writes += firstWrites
	u.Updates += words - firstWrites
}
