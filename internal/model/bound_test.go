package model

import (
	"math/rand"
	"testing"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

// photonicArch builds a 5-level Albireo-shaped hierarchy — streaming
// modulated-input station, analog output accumulator, weight ring bank —
// with randomized converter bases and reuse flags, so the bound's streaming,
// PerDistinct, multicast and spatial-reduction terms are all exercised.
func photonicArch(t *testing.T, rng *rand.Rand) *arch.Arch {
	t.Helper()
	lib := components.NewLibrary()
	mk := func(class, name string, p components.Params) {
		c, err := components.Build(class, name, p)
		if err != nil {
			t.Fatal(err)
		}
		lib.MustAdd(c)
	}
	mk("dram", "DRAM", components.Params{"pj_per_bit": 8})
	mk("sram", "Glb", components.Params{"capacity_bits": 1 << 24, "access_bits": 8})
	mk("dac", "InDAC", components.Params{"bits": 8, "pj_per_bit": 0.05})
	mk("dac", "WDAC", components.Params{"bits": 8, "pj_per_bit": 0.03})
	mk("adc", "ADC", components.Params{"bits": 8, "walden_fj_per_step": 50})
	mk("mzm", "MZM", components.Params{"modulate_pj": 1})
	mk("mrr", "MRR", components.Params{"program_pj": 2, "transit_pj": 0.01})
	mk("photodiode", "PD", components.Params{"detect_pj": 0.5})
	mk("laser", "Laser", components.Params{"per_mac_pj": 0.25})

	a := &arch.Arch{
		Name: "photonic-rand", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
		Levels: []arch.Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "Glb", Keeps: workload.AllTensorSet(), AccessComponent: "Glb",
				Spatial:     []arch.SpatialFactor{arch.Choice(1+rng.Intn(3), workload.DimC, workload.DimK, workload.DimN)},
				NoMulticast: rng.Intn(3) == 0,
			},
			{
				Name: "Mod", Keeps: workload.NewTensorSet(workload.Inputs),
				Streaming:           true,
				InputOverlapSharing: rng.Intn(2) == 0,
				Spatial: []arch.SpatialFactor{
					arch.Choice(1+rng.Intn(4), workload.DimQ, workload.DimP, workload.DimN),
					arch.Choice(1+rng.Intn(3), workload.DimK, workload.DimN),
				},
				FillVia: map[workload.Tensor][]arch.ActionRef{
					workload.Inputs: {
						{Component: "InDAC", Action: components.ActionConvert, PerDistinct: rng.Intn(2) == 0},
						{Component: "MZM", Action: components.ActionModulate},
					},
				},
			},
			{
				Name: "Acc", Keeps: workload.NewTensorSet(workload.Outputs),
				WordBits: 24,
				Spatial:  []arch.SpatialFactor{arch.Choice(1+rng.Intn(3), workload.DimS, workload.DimC)},
				UpdateVia: map[workload.Tensor][]arch.ActionRef{
					workload.Outputs: {{Component: "PD", Action: components.ActionDetect}},
				},
				DrainVia: map[workload.Tensor][]arch.ActionRef{
					workload.Outputs: {{Component: "ADC", Action: components.ActionConvert, PerDistinct: rng.Intn(2) == 0}},
				},
				NoSpatialReduce: rng.Intn(4) == 0,
			},
			{
				Name: "Ring", Keeps: workload.NewTensorSet(workload.Weights),
				FillVia: map[workload.Tensor][]arch.ActionRef{
					workload.Weights: {
						{Component: "WDAC", Action: components.ActionConvert},
						{Component: "MRR", Action: components.ActionProgram},
					},
				},
			},
		},
		Compute: arch.Compute{
			Name: "Optical",
			PerMAC: []arch.ActionRef{
				{Component: "Laser", Action: components.ActionSupply},
				{Component: "MRR", Action: components.ActionTransit},
			},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

// randSearchStyleMapping draws a padded random mapping the way the mapper
// does: candidate factors innermost-out per dimension, residue at the
// outermost level, random permutations per level.
func randSearchStyleMapping(rng *rand.Rand, a *arch.Arch, l *workload.Layer) *mapping.Mapping {
	m := mapping.New(a)
	n := a.NumLevels()
	spatial := workload.Ones()
	for i := 0; i < n; i++ {
		spatial = spatial.Mul(m.SpatialAt(a, i))
	}
	for _, d := range workload.AllDims() {
		rem := workload.CeilDiv(l.Bound(d), spatial[d])
		for i := n - 1; i > 0 && rem > 1; i-- {
			cands := mapping.PaddedCandidates(rem)
			f := cands[rng.Intn(len(cands))]
			m.Levels[i].Temporal[d] = f
			rem = workload.CeilDiv(rem, f)
		}
		m.Levels[0].Temporal[d] *= rem
	}
	perms := [][]workload.Dim{
		{workload.DimN, workload.DimK, workload.DimP, workload.DimQ, workload.DimC, workload.DimR, workload.DimS},
		{workload.DimK, workload.DimC, workload.DimR, workload.DimS, workload.DimN, workload.DimP, workload.DimQ},
		{workload.DimC, workload.DimP, workload.DimQ, workload.DimR, workload.DimS, workload.DimN, workload.DimK},
	}
	for i := 0; i < n; i++ {
		m.Levels[i].Perm = append([]workload.Dim(nil), perms[rng.Intn(len(perms))]...)
	}
	// Occasionally randomize the spatial assignment like the mapper does.
	for i := 0; i < n; i++ {
		lv := a.Level(i)
		for j := range lv.Spatial {
			m.Levels[i].SpatialChoice[j] = lv.Spatial[j].Dims[rng.Intn(len(lv.Spatial[j].Dims))]
		}
	}
	return m
}

// TestLowerBoundAdmissible is the admissibility property: over randomized
// architectures, layers, mappings and eval options, the bound never
// exceeds the full evaluation's energy or cycles.
func TestLowerBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	checked := 0
	for trial := 0; trial < 400; trial++ {
		var a *arch.Arch
		if trial%2 == 0 {
			a = photonicArch(t, rng)
		} else {
			a = randArch(t, rng)
		}
		l := workload.NewConv("rand",
			1+rng.Intn(2), 1+rng.Intn(8), 1+rng.Intn(8),
			1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(3), 1+rng.Intn(3),
			1+rng.Intn(2), 0)
		m := randSearchStyleMapping(rng, a, &l)
		if err := m.Validate(a, &l); err != nil {
			continue
		}
		c, err := Compile(a, &l)
		if err != nil {
			t.Fatal(err)
		}
		s := c.Engine().NewScratch()
		opts := Options{SkipValidate: true, ChargeStatic: trial%3 == 0}
		res := &Result{}
		if err := c.EvaluateInto(s, m, res, opts); err != nil {
			continue // architecture/mapping combination the model rejects
		}
		b := c.LowerBound(s, m, opts)
		if b.EnergyPJ > res.TotalPJ {
			t.Fatalf("trial %d: energy bound %.9g exceeds evaluation %.9g\narch %s layer %s\n%s",
				trial, b.EnergyPJ, res.TotalPJ, a.Name, l.String(), m.String())
		}
		if b.Cycles > res.Cycles {
			t.Fatalf("trial %d: cycle bound %g exceeds evaluation %g", trial, b.Cycles, res.Cycles)
		}
		if b.EnergyPJ <= 0 || b.Cycles <= 0 {
			t.Fatalf("trial %d: degenerate bound %+v", trial, b)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d trials produced valid mappings", checked)
	}
}

// TestLowerBoundTight sanity-checks that the bound is useful, not merely
// admissible: on the streaming architecture it must recover a substantial
// fraction of the true energy (the streaming refill and per-MAC terms are
// exact), otherwise pruning would never fire.
func TestLowerBoundTight(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := photonicArch(t, rng)
	l := workload.NewConv("tight", 1, 8, 8, 6, 6, 3, 3, 1, 1)
	c, err := Compile(a, &l)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Engine().NewScratch()
	res := &Result{}
	sum, bound := 0.0, 0.0
	for trial := 0; trial < 200; trial++ {
		m := randSearchStyleMapping(rng, a, &l)
		if m.Validate(a, &l) != nil {
			continue
		}
		if err := c.EvaluateInto(s, m, res, Options{SkipValidate: true}); err != nil {
			continue
		}
		sum += res.TotalPJ
		bound += c.LowerBound(s, m, Options{SkipValidate: true}).EnergyPJ
	}
	if sum == 0 {
		t.Fatal("no valid mappings")
	}
	if frac := bound / sum; frac < 0.2 {
		t.Errorf("bound recovers only %.1f%% of true energy — too loose to prune", 100*frac)
	}
}

// TestEvaluatePartialMatchesEvaluateInto is the delta-evaluation
// equivalence property: for randomized mapping sequences with shared
// outer-level prefixes, EvaluatePartial through one long-lived scratch is
// bit-identical (every field, full ledger included) to a fresh
// EvaluateInto.
func TestEvaluatePartialMatchesEvaluateInto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for archTrial := 0; archTrial < 8; archTrial++ {
		var a *arch.Arch
		if archTrial%2 == 0 {
			a = photonicArch(t, rng)
		} else {
			a = randArch(t, rng)
		}
		l := workload.NewConv("seq", 1, 8, 6, 5, 5, 3, 3, 1, 1)
		c, err := Compile(a, &l)
		if err != nil {
			t.Fatal(err)
		}
		n := a.NumLevels()
		delta := c.Engine().NewScratch()
		var prev *mapping.Mapping
		got, want := &Result{}, &Result{}
		opts := Options{SkipValidate: true, FullLedger: true, ChargeStatic: archTrial%3 == 0}
		for step := 0; step < 60; step++ {
			var m *mapping.Mapping
			shared := 0
			if prev != nil && step%4 != 0 {
				// Redraw only the levels from `shared` inward, keeping the
				// outer prefix identical to the previous mapping.
				shared = 1 + rng.Intn(n)
				m = prev.Clone()
				fresh := randSearchStyleMapping(rng, a, &l)
				for i := shared; i < n; i++ {
					m.Levels[i] = fresh.Levels[i]
				}
			} else {
				m = randSearchStyleMapping(rng, a, &l)
			}
			if m.Validate(a, &l) != nil {
				continue
			}
			errDelta := c.EvaluatePartial(delta, m, got, opts, shared)
			errFresh := c.EvaluateInto(c.Engine().NewScratch(), m, want, opts)
			if (errDelta == nil) != (errFresh == nil) {
				t.Fatalf("arch %d step %d: delta err %v, fresh err %v", archTrial, step, errDelta, errFresh)
			}
			if errFresh != nil {
				prev = nil // scratch state is stale after a failure
				continue
			}
			if got.TotalPJ != want.TotalPJ || got.Cycles != want.Cycles ||
				got.ComputeCycles != want.ComputeCycles || got.Utilization != want.Utilization ||
				got.PaddedMACs != want.PaddedMACs || got.BottleneckLevel != want.BottleneckLevel {
				t.Fatalf("arch %d step %d (shared %d): delta diverged: %+v vs %+v",
					archTrial, step, shared, got, want)
			}
			if len(got.Usage) != len(want.Usage) || len(got.Energy) != len(want.Energy) {
				t.Fatalf("arch %d step %d: ledger shape diverged", archTrial, step)
			}
			for i := range got.Usage {
				if got.Usage[i] != want.Usage[i] {
					t.Fatalf("arch %d step %d (shared %d): usage %d diverged:\n%+v\n%+v",
						archTrial, step, shared, i, got.Usage[i], want.Usage[i])
				}
			}
			for i := range got.Energy {
				if got.Energy[i] != want.Energy[i] {
					t.Fatalf("arch %d step %d: energy item %d diverged", archTrial, step, i)
				}
			}
			prev = m
		}
	}
}

// TestEvaluatePartialStaleScratch checks the guard rails: a shared prefix
// claimed against a scratch that never evaluated (or evaluated on another
// engine) degrades to a full evaluation instead of reading garbage.
func TestEvaluatePartialStaleScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := photonicArch(t, rng)
	l := workload.NewConv("stale", 1, 4, 4, 4, 4, 1, 1, 1, 0)
	c, err := Compile(a, &l)
	if err != nil {
		t.Fatal(err)
	}
	m := randSearchStyleMapping(rng, a, &l)
	for m.Validate(a, &l) != nil {
		m = randSearchStyleMapping(rng, a, &l)
	}
	got, want := &Result{}, &Result{}
	if err := c.EvaluateInto(c.Engine().NewScratch(), m, want, Options{SkipValidate: true}); err != nil {
		t.Fatal(err)
	}
	// Fresh scratch with a bogus shared count.
	if err := c.EvaluatePartial(c.Engine().NewScratch(), m, got, Options{SkipValidate: true}, 3); err != nil {
		t.Fatal(err)
	}
	if got.TotalPJ != want.TotalPJ {
		t.Fatalf("stale-scratch evaluation diverged: %g vs %g", got.TotalPJ, want.TotalPJ)
	}
	// Scratch warmed on a different engine.
	other := randArch(t, rng)
	oc, err := Compile(other, &l)
	if err != nil {
		t.Fatal(err)
	}
	s := oc.Engine().NewScratch()
	om := mapping.New(other)
	for _, d := range workload.AllDims() {
		om.Levels[0].Temporal[d] = workload.CeilDiv(l.Bound(d), om.SpatialAt(other, 0)[d]*om.SpatialAt(other, 1)[d]*om.SpatialAt(other, 2)[d])
	}
	if err := oc.EvaluateInto(s, om, got, Options{SkipValidate: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.EvaluatePartial(s, m, got, Options{SkipValidate: true}, 2); err != nil {
		t.Fatal(err)
	}
	if got.TotalPJ != want.TotalPJ {
		t.Fatalf("cross-engine scratch diverged: %g vs %g", got.TotalPJ, want.TotalPJ)
	}
}
