package model

import (
	"fmt"

	"photoloop/internal/arch"
	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

// Options tunes an evaluation.
type Options struct {
	// ChargeStatic adds per-cycle static power (laser wall plug, ring
	// heaters, DRAM refresh) to the ledger over the schedule length.
	ChargeStatic bool
	// SkipValidate trusts the mapping (mapper-internal hot path).
	SkipValidate bool
	// FullLedger builds the itemized Energy ledger. The package-level
	// Evaluate always produces the full ledger; the compiled fast path
	// (Compiled.EvaluateInto) skips it unless this is set, producing only
	// the aggregate TotalPJ — the ~10x cheaper mode mapper search runs in.
	FullLedger bool
}

// Evaluate runs the analytical model for one layer and mapping, producing
// the full itemized result. It compiles the (architecture, layer) pair on
// every call — callers evaluating many mappings should Compile once and
// use the Compiled fast path instead.
func Evaluate(a *arch.Arch, l *workload.Layer, m *mapping.Mapping, opts Options) (*Result, error) {
	c, err := Compile(a, l)
	if err != nil {
		return nil, err
	}
	opts.FullLedger = true
	return c.Evaluate(m, opts)
}

// chargeEnergy converts the usage table into energy: always the aggregate
// TotalPJ, and the itemized ledger too when opts.FullLedger is set. Both
// modes accumulate the identical sequence of terms, so the aggregate is
// bit-identical either way. statics is the scratch counter array for
// static-power charging (one slot per Engine.statics entry).
func (an *analysis) chargeEnergy(res *Result, opts Options, statics []int64) error {
	eng := an.c.eng
	total := 0.0
	ledger := opts.FullLedger
	// add charges one resolved action; tensor names the operand the charge
	// arose for (storage-access refs are shared across tensors, so the
	// per-usage tensor is stamped here rather than baked into the ref).
	add := func(r *resolvedRef, count float64, tensor string) error {
		if count == 0 {
			return nil
		}
		if r.err != nil {
			return r.err
		}
		pj := r.pj * count
		total += pj
		if ledger {
			res.Energy = append(res.Energy, EnergyItem{
				Level:     r.level,
				Component: r.component,
				Class:     r.class,
				Action:    r.action,
				Tensor:    tensor,
				Count:     count,
				TotalPJ:   pj,
			})
		}
		return nil
	}
	chargeChain := func(refs []resolvedRef, defaultBasis, distinctBasis float64) error {
		for i := range refs {
			r := &refs[i]
			basis := defaultBasis
			if r.perDistinct {
				basis = distinctBasis
			}
			if err := add(r, basis*r.cnt, r.tensor); err != nil {
				return err
			}
		}
		return nil
	}

	for ui := range res.Usage {
		u := &res.Usage[ui]
		le := &eng.levels[u.LevelIndex]
		// Storage access energy.
		if le.hasAccess {
			ts := u.Tensor.String()
			if err := add(&le.access[0], u.Reads, ts); err != nil {
				return err
			}
			if err := add(&le.access[1], u.Writes, ts); err != nil {
				return err
			}
			if err := add(&le.access[2], u.Updates, ts); err != nil {
				return err
			}
		}
		// Converter chains.
		if err := chargeChain(le.fill[u.Tensor], u.Fills, u.FillsDistinct); err != nil {
			return err
		}
		if err := chargeChain(le.update[u.Tensor], u.Arrivals, u.Arrivals); err != nil {
			return err
		}
		if err := chargeChain(le.drain[u.Tensor], u.Drains, u.DrainsMerged); err != nil {
			return err
		}
	}

	// Per-MAC compute actions (laser supply, ring transit, digital MAC).
	for i := range eng.perMAC {
		r := &eng.perMAC[i]
		if err := add(r, float64(an.actualMACs)*r.cnt, ""); err != nil {
			return err
		}
	}

	// Optional static power over the schedule, charged per distinct
	// component in deterministic (name-sorted) order.
	if opts.ChargeStatic {
		ns := float64(an.cycles) / an.a.ClockGHz
		an.accumulateStaticSites(statics)
		for idx := range eng.statics {
			st := &eng.statics[idx]
			copies := statics[idx]
			if copies == 0 {
				continue
			}
			if st.err != nil {
				return st.err
			}
			if st.mw > 0 {
				pj := st.mw * ns * float64(copies)
				total += pj
				if ledger {
					res.Energy = append(res.Energy, EnergyItem{
						Level: "static", Component: st.name, Class: st.class,
						Action: "static", Count: float64(copies),
						TotalPJ: pj,
					})
				}
			}
		}
	}

	res.TotalPJ = total
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// accumulateStaticSites fills statics with the number of powered instances
// of each distinct component: per-level reference sites times level
// instances, plus per-MAC sites times the (padded) array width. Shared by
// the exact static charging above and the lower bound's static floor —
// the two must count identically or pruning under ChargeStatic breaks.
func (an *analysis) accumulateStaticSites(statics []int64) {
	eng := an.c.eng
	for i := range statics {
		statics[i] = 0
	}
	for i := range eng.levelStaticSites {
		copies := an.instances[i]
		for _, site := range eng.levelStaticSites[i] {
			statics[site.idx] += site.n * copies
		}
	}
	perMACCopies := an.paddedMACs / max64(an.cycles, 1)
	for _, site := range eng.perMACStatic {
		statics[site.idx] += site.n * perMACCopies
	}
}

// EvaluateChecked is Evaluate plus domain-gap diagnostics: it fails if the
// architecture moves tensors across domains without converters, which
// almost always indicates a specification bug.
func EvaluateChecked(a *arch.Arch, l *workload.Layer, m *mapping.Mapping, opts Options) (*Result, error) {
	if gaps := a.DomainGaps(); len(gaps) > 0 {
		return nil, fmt.Errorf("model: architecture %s has unconverted domain crossings: %v", a.Name, gaps)
	}
	return Evaluate(a, l, m, opts)
}
