package model

import (
	"fmt"

	"photoloop/internal/arch"
	"photoloop/internal/components"
	"photoloop/internal/mapping"
	"photoloop/internal/workload"
)

// Options tunes an evaluation.
type Options struct {
	// ChargeStatic adds per-cycle static power (laser wall plug, ring
	// heaters, DRAM refresh) to the ledger over the schedule length.
	ChargeStatic bool
	// SkipValidate trusts the mapping (mapper-internal hot path).
	SkipValidate bool
}

// Evaluate runs the analytical model for one layer and mapping.
func Evaluate(a *arch.Arch, l *workload.Layer, m *mapping.Mapping, opts Options) (*Result, error) {
	if !opts.SkipValidate {
		if err := l.Validate(); err != nil {
			return nil, err
		}
		if err := m.Validate(a, l); err != nil {
			return nil, err
		}
	}
	an := newAnalysis(a, l, m)
	res := &Result{
		Layer:         l.Name,
		MACs:          an.actualMACs,
		PaddedMACs:    an.paddedMACs,
		ComputeCycles: an.cycles,
	}
	if an.paddedMACs > 0 {
		res.Utilization = float64(an.actualMACs) / float64(an.paddedMACs)
	}

	// Traffic analysis per tensor.
	var all []Usage
	for _, t := range []workload.Tensor{workload.Weights, workload.Inputs} {
		us, err := an.readTensorUsage(t)
		if err != nil {
			return nil, err
		}
		all = append(all, us...)
	}
	outUs, err := an.outputUsage()
	if err != nil {
		return nil, err
	}
	all = append(all, outUs...)
	res.Usage = all

	// Energy ledger.
	if err := an.chargeEnergy(res, opts); err != nil {
		return nil, err
	}

	// Throughput: compute-bound cycles vs per-level bandwidth limits.
	res.Cycles = float64(res.ComputeCycles)
	for i := 0; i < a.NumLevels(); i++ {
		lv := a.Level(i)
		if lv.BandwidthWordsPerCycle <= 0 {
			continue
		}
		var words float64
		for j := range all {
			if all[j].LevelIndex == i {
				words += all[j].Reads + all[j].Writes + 2*all[j].Updates
			}
		}
		if need := words / lv.BandwidthWordsPerCycle; need > res.Cycles {
			res.Cycles = need
			res.BottleneckLevel = lv.Name
		}
	}
	if res.Cycles > 0 {
		res.MACsPerCycle = float64(res.MACs) / res.Cycles
	}

	area, err := a.Area()
	if err != nil {
		return nil, err
	}
	res.AreaUM2 = area
	return res, nil
}

// chargeEnergy converts the usage table into the energy ledger.
func (an *analysis) chargeEnergy(res *Result, opts Options) error {
	a := an.a
	add := func(level, componentName, action, tensor string, count float64) error {
		if count == 0 {
			return nil
		}
		c, err := a.Lib.Get(componentName)
		if err != nil {
			return err
		}
		pj, err := c.Energy(action)
		if err != nil {
			return err
		}
		res.Energy = append(res.Energy, EnergyItem{
			Level:     level,
			Component: componentName,
			Class:     c.Class(),
			Action:    action,
			Tensor:    tensor,
			Count:     count,
			TotalPJ:   pj * count,
		})
		return nil
	}
	chargeChain := func(level string, refs []arch.ActionRef, tensor string, defaultBasis, distinctBasis float64) error {
		for _, r := range refs {
			basis := defaultBasis
			if r.PerDistinct {
				basis = distinctBasis
			}
			if err := add(level, r.Component, r.Action, tensor, basis*r.Count()); err != nil {
				return err
			}
		}
		return nil
	}

	for ui := range res.Usage {
		u := &res.Usage[ui]
		lv := a.Level(u.LevelIndex)
		ts := u.Tensor.String()
		// Storage access energy.
		if lv.AccessComponent != "" {
			if err := add(u.Level, lv.AccessComponent, components.ActionRead, ts, u.Reads); err != nil {
				return err
			}
			if err := add(u.Level, lv.AccessComponent, components.ActionWrite, ts, u.Writes); err != nil {
				return err
			}
			if err := add(u.Level, lv.AccessComponent, components.ActionUpdate, ts, u.Updates); err != nil {
				return err
			}
		}
		// Converter chains.
		if refs := lv.FillVia[u.Tensor]; len(refs) > 0 {
			if err := chargeChain(u.Level, refs, ts, u.Fills, u.FillsDistinct); err != nil {
				return err
			}
		}
		if refs := lv.UpdateVia[u.Tensor]; len(refs) > 0 {
			if err := chargeChain(u.Level, refs, ts, u.Arrivals, u.Arrivals); err != nil {
				return err
			}
		}
		if refs := lv.DrainVia[u.Tensor]; len(refs) > 0 {
			if err := chargeChain(u.Level, refs, ts, u.Drains, u.DrainsMerged); err != nil {
				return err
			}
		}
	}

	// Per-MAC compute actions (laser supply, ring transit, digital MAC).
	for _, r := range an.a.Compute.PerMAC {
		if err := add("compute", r.Component, r.Action, "", float64(an.actualMACs)*r.Count()); err != nil {
			return err
		}
	}

	// Optional static power over the schedule.
	if opts.ChargeStatic {
		ns := float64(an.cycles) / an.a.ClockGHz
		seen := map[string]int64{}
		for i := range a.Levels {
			lv := &a.Levels[i]
			copies := an.instances[i]
			if lv.AccessComponent != "" {
				seen[lv.AccessComponent] += copies
			}
			for _, refs := range lv.FillVia {
				for _, r := range refs {
					seen[r.Component] += copies
				}
			}
			for _, refs := range lv.UpdateVia {
				for _, r := range refs {
					seen[r.Component] += copies
				}
			}
			for _, refs := range lv.DrainVia {
				for _, r := range refs {
					seen[r.Component] += copies
				}
			}
		}
		for _, r := range a.Compute.PerMAC {
			seen[r.Component] += an.paddedMACs / max64(an.cycles, 1)
		}
		for name, copies := range seen {
			c, err := a.Lib.Get(name)
			if err != nil {
				return err
			}
			if mw := c.StaticPower(); mw > 0 {
				res.Energy = append(res.Energy, EnergyItem{
					Level: "static", Component: name, Class: c.Class(),
					Action: "static", Count: float64(copies),
					TotalPJ: mw * ns * float64(copies),
				})
			}
		}
	}

	for i := range res.Energy {
		res.TotalPJ += res.Energy[i].TotalPJ
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// EvaluateChecked is Evaluate plus domain-gap diagnostics: it fails if the
// architecture moves tensors across domains without converters, which
// almost always indicates a specification bug.
func EvaluateChecked(a *arch.Arch, l *workload.Layer, m *mapping.Mapping, opts Options) (*Result, error) {
	if gaps := a.DomainGaps(); len(gaps) > 0 {
		return nil, fmt.Errorf("model: architecture %s has unconverted domain crossings: %v", a.Name, gaps)
	}
	return Evaluate(a, l, m, opts)
}
