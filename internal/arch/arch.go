package arch

import (
	"fmt"
	"sync"

	"photoloop/internal/components"
	"photoloop/internal/workload"
)

// Arch is a complete accelerator description: an ordered storage hierarchy
// (outermost first), a compute array, and the component library the levels
// reference.
//
// Mapping-independent invariants (total area, per-tensor keep chains) are
// cached lazily on first use: an Arch must not be structurally modified —
// levels added or removed, Keeps changed, components swapped — after the
// first call to Area or KeepLevels. Tuning per-level flags (Streaming,
// InputOverlapSharing, capacities, bandwidths) stays safe at any time; those
// do not feed the caches.
type Arch struct {
	Name string
	// Levels is ordered outermost (backing store) to innermost (operand
	// stations feeding compute).
	Levels  []Level
	Compute Compute
	// Lib holds the component instances referenced by levels and compute.
	Lib *components.Library
	// ClockGHz is the compute symbol/cycle rate.
	ClockGHz float64
	// DefaultWordBits is the operand word size unless a level overrides.
	DefaultWordBits int

	areaOnce sync.Once
	areaVal  float64
	areaErr  error

	keepOnce sync.Once
	keepTab  [workload.NumTensors][]int
}

// NumLevels returns the number of storage levels.
func (a *Arch) NumLevels() int { return len(a.Levels) }

// Level returns the i-th storage level (0 = outermost).
func (a *Arch) Level(i int) *Level { return &a.Levels[i] }

// LevelByName finds a storage level by name.
func (a *Arch) LevelByName(name string) (*Level, int, error) {
	for i := range a.Levels {
		if a.Levels[i].Name == name {
			return &a.Levels[i], i, nil
		}
	}
	return nil, -1, fmt.Errorf("arch: %s has no level %q", a.Name, name)
}

// Innermost returns the innermost storage level.
func (a *Arch) Innermost() *Level { return &a.Levels[len(a.Levels)-1] }

// KeepLevels returns the indices (outermost first) of the levels that keep
// tensor t. The result is computed once and cached; the returned slice is
// shared — callers must not modify it.
func (a *Arch) KeepLevels(t workload.Tensor) []int {
	a.keepOnce.Do(func() {
		for _, tt := range workload.AllTensors() {
			a.keepTab[tt] = a.scanKeepLevels(tt)
		}
	})
	return a.keepTab[t]
}

// scanKeepLevels recomputes the keep chain without touching the cache —
// validation and diagnostics use it so they stay correct on architectures
// still under construction or modification.
func (a *Arch) scanKeepLevels(t workload.Tensor) []int {
	var out []int
	for i := range a.Levels {
		if a.Levels[i].Keeps.Has(t) {
			out = append(out, i)
		}
	}
	return out
}

// PeakMACsPerCycle returns the compute array width: the product of all
// level fan-outs at their maximum. One compute instance performs one MAC
// per cycle.
func (a *Arch) PeakMACsPerCycle() int64 {
	peak := int64(1)
	for i := range a.Levels {
		peak *= a.Levels[i].MaxTotalFanout()
	}
	return peak
}

// InstancesAtLevel returns how many instances of level i exist at maximum
// fan-out (the product of fan-outs of all levels above it).
func (a *Arch) InstancesAtLevel(i int) int64 {
	n := int64(1)
	for j := 0; j < i; j++ {
		n *= a.Levels[j].MaxTotalFanout()
	}
	return n
}

// CanonicalSpatial returns the coordinate-wise product of every level's
// canonical spatial assignment: the default spatial shape of the machine.
func (a *Arch) CanonicalSpatial() workload.Point {
	p := workload.Ones()
	for i := range a.Levels {
		p = p.Mul(a.Levels[i].CanonicalSpatial())
	}
	return p
}

// Area sums the area of every component instance, multiplied by its
// replication across level instances. Components referenced by multiple
// levels are counted per reference site. The sum is mapping independent and
// computed once; subsequent calls return the cached value.
func (a *Arch) Area() (float64, error) {
	a.areaOnce.Do(func() {
		a.areaVal, a.areaErr = a.computeArea()
	})
	return a.areaVal, a.areaErr
}

func (a *Arch) computeArea() (float64, error) {
	var total float64
	addRef := func(ref ActionRef, copies int64) error {
		c, err := a.Lib.Get(ref.Component)
		if err != nil {
			return err
		}
		total += c.Area() * float64(copies)
		return nil
	}
	for i := range a.Levels {
		l := &a.Levels[i]
		copies := a.InstancesAtLevel(i)
		if l.AccessComponent != "" {
			c, err := a.Lib.Get(l.AccessComponent)
			if err != nil {
				return 0, err
			}
			total += c.Area() * float64(copies)
		}
		for _, refs := range l.FillVia {
			for _, r := range refs {
				if err := addRef(r, copies); err != nil {
					return 0, err
				}
			}
		}
		for _, refs := range l.UpdateVia {
			for _, r := range refs {
				if err := addRef(r, copies); err != nil {
					return 0, err
				}
			}
		}
		for _, refs := range l.DrainVia {
			for _, r := range refs {
				if err := addRef(r, copies); err != nil {
					return 0, err
				}
			}
		}
	}
	computeCopies := a.PeakMACsPerCycle()
	for _, r := range a.Compute.PerMAC {
		if err := addRef(r, computeCopies); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// libChecker adapts the component library to the validation interface.
type libChecker struct{ lib *components.Library }

// CheckAction verifies that the named component exists and supports action.
func (c libChecker) CheckAction(component, action string) error {
	comp, err := c.lib.Get(component)
	if err != nil {
		return err
	}
	if _, err := comp.Energy(action); err != nil {
		return err
	}
	return nil
}

// Validate checks structural consistency: non-empty unique level names, a
// backing store that keeps all tensors, resolvable component references,
// and sane numeric attributes. It does not check mapping-dependent
// properties (capacity fits) — the model does that per mapping.
func (a *Arch) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("arch: architecture has no name")
	}
	if len(a.Levels) == 0 {
		return fmt.Errorf("arch: %s has no storage levels", a.Name)
	}
	if a.Lib == nil {
		return fmt.Errorf("arch: %s has no component library", a.Name)
	}
	if a.ClockGHz <= 0 {
		return fmt.Errorf("arch: %s: ClockGHz = %g, want > 0", a.Name, a.ClockGHz)
	}
	if a.DefaultWordBits <= 0 {
		return fmt.Errorf("arch: %s: DefaultWordBits = %d, want > 0", a.Name, a.DefaultWordBits)
	}
	checker := libChecker{a.Lib}
	seen := map[string]bool{}
	for i := range a.Levels {
		l := &a.Levels[i]
		if l.Name == "" {
			return fmt.Errorf("arch: %s: level %d has no name", a.Name, i)
		}
		if seen[l.Name] {
			return fmt.Errorf("arch: %s: duplicate level name %q", a.Name, l.Name)
		}
		seen[l.Name] = true
		if l.CapacityBits < 0 {
			return fmt.Errorf("arch: level %s: negative capacity", l.Name)
		}
		if l.Keeps.Empty() {
			return fmt.Errorf("arch: level %s keeps no tensors; remove it instead", l.Name)
		}
		for j := range l.Spatial {
			if err := l.Spatial[j].Validate(); err != nil {
				return fmt.Errorf("arch: level %s spatial factor %d: %w", l.Name, j, err)
			}
		}
		if l.MaxFanout < 0 {
			return fmt.Errorf("arch: level %s: negative MaxFanout", l.Name)
		}
		if err := l.validateRefs(checker, true); err != nil {
			return err
		}
	}
	// Every tensor must have a backing store somewhere. (The outermost
	// level usually keeps everything, but layer-fusion studies pin
	// activations to an inner buffer and bypass DRAM for them.)
	for _, t := range workload.AllTensors() {
		if len(a.scanKeepLevels(t)) == 0 {
			return fmt.Errorf("arch: %s: no level keeps %v", a.Name, t)
		}
	}
	for _, r := range a.Compute.PerMAC {
		if err := checker.CheckAction(r.Component, r.Action); err != nil {
			return fmt.Errorf("arch: compute %s: %w", a.Compute.Name, err)
		}
	}
	return nil
}

// DomainGaps reports edges on each tensor's keep-chain that cross domains
// without any converter chain — usually a modeling omission. Returned
// strings are human-readable diagnostics.
func (a *Arch) DomainGaps() []string {
	var gaps []string
	for _, t := range workload.AllTensors() {
		keeps := a.scanKeepLevels(t)
		for i := 1; i < len(keeps); i++ {
			outer, inner := &a.Levels[keeps[i-1]], &a.Levels[keeps[i]]
			if outer.Domain == inner.Domain {
				continue
			}
			cross := Crossing{outer.Domain, inner.Domain}
			if t == workload.Outputs {
				if len(inner.DrainVia[t]) == 0 {
					gaps = append(gaps, fmt.Sprintf("%v drain %s->%s crosses %s with no converters",
						t, inner.Name, outer.Name, Crossing{inner.Domain, outer.Domain}))
				}
			} else if len(inner.FillVia[t]) == 0 {
				gaps = append(gaps, fmt.Sprintf("%v fill %s->%s crosses %s with no converters",
					t, outer.Name, inner.Name, cross))
			}
		}
	}
	return gaps
}
