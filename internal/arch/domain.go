// Package arch describes accelerator architectures as hierarchies of
// storage levels over a compute array, in the Timeloop/CiMLoop style, with
// the paper's key extension: every level lives in a signaling domain
// (digital-electrical, analog-electrical, analog-optical, digital-optical),
// and data crossing between domains is charged to explicit converter
// components (DACs, ADCs, modulators, photodiodes, ring programming).
package arch

import "fmt"

// Domain is a signaling domain from the paper's taxonomy.
type Domain uint8

// The four domains. DO (digital-optical) appears in systems like TPU v4's
// optical switch; Albireo uses DE, AE and AO.
const (
	DE Domain = iota // digital electrical
	AE               // analog electrical
	AO               // analog optical
	DO               // digital optical
)

var domainNames = [...]string{"DE", "AE", "AO", "DO"}

// String returns the domain's name.
func (d Domain) String() string {
	if int(d) < len(domainNames) {
		return domainNames[d]
	}
	return fmt.Sprintf("Domain(%d)", uint8(d))
}

// ParseDomain converts a domain name to a Domain.
func ParseDomain(s string) (Domain, error) {
	for i, n := range domainNames {
		if n == s {
			return Domain(i), nil
		}
	}
	return 0, fmt.Errorf("arch: unknown domain %q", s)
}

// IsAnalog reports whether values in this domain are analog quantities.
func (d Domain) IsAnalog() bool { return d == AE || d == AO }

// IsOptical reports whether values in this domain ride optical carriers.
func (d Domain) IsOptical() bool { return d == AO || d == DO }

// Crossing describes a domain boundary X/Y in the paper's notation.
type Crossing struct {
	From, To Domain
}

// String formats the crossing as "DE/AE".
func (c Crossing) String() string { return c.From.String() + "/" + c.To.String() }
