package arch

import (
	"strings"
	"testing"

	"photoloop/internal/components"
	"photoloop/internal/workload"
)

func testLib(t *testing.T) *components.Library {
	t.Helper()
	lib := components.NewLibrary()
	mk := func(class, name string, p components.Params) {
		c, err := components.Build(class, name, p)
		if err != nil {
			t.Fatal(err)
		}
		lib.MustAdd(c)
	}
	mk("dram", "DRAM", components.Params{"pj_per_bit": 8})
	mk("sram", "GLB", components.Params{"capacity_bits": 1 << 23, "access_bits": 64})
	mk("dac", "WeightDAC", components.Params{"bits": 8, "pj_per_bit": 0.05})
	mk("adc", "OutADC", components.Params{"bits": 8, "walden_fj_per_step": 50})
	mk("mrr", "RingBankMRR", components.Params{"program_pj": 2})
	mk("photodiode", "PD", components.Params{"detect_pj": 0.5})
	mk("laser", "Laser", components.Params{"per_mac_pj": 0.3})
	return lib
}

// testArch builds a minimal three-level photonic-flavored hierarchy.
func testArch(t *testing.T) *Arch {
	t.Helper()
	lib := testLib(t)
	a := &Arch{
		Name:            "mini",
		Lib:             lib,
		ClockGHz:        5,
		DefaultWordBits: 8,
		Levels: []Level{
			{
				Name: "DRAM", Domain: DE,
				Keeps:           workload.AllTensorSet(),
				AccessComponent: "DRAM",
			},
			{
				Name: "GlobalBuffer", Domain: DE,
				CapacityBits:    1 << 23,
				Keeps:           workload.AllTensorSet(),
				AccessComponent: "GLB",
				Spatial:         []SpatialFactor{Fixed(workload.DimK, 4)},
			},
			{
				Name: "RingBank", Domain: AO,
				CapacityBits: 9 * 8 * 64,
				Keeps:        workload.NewTensorSet(workload.Weights),
				FillVia: map[workload.Tensor][]ActionRef{
					workload.Weights: {
						{Component: "WeightDAC", Action: "convert"},
						{Component: "RingBankMRR", Action: "program"},
					},
				},
			},
		},
		Compute: Compute{
			Name: "OpticalMAC", Domain: AO,
			PerMAC: []ActionRef{{Component: "Laser", Action: "supply"}},
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDomainParsing(t *testing.T) {
	for _, d := range []Domain{DE, AE, AO, DO} {
		got, err := ParseDomain(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDomain(%s) = %v, %v", d, got, err)
		}
	}
	if _, err := ParseDomain("XY"); err == nil {
		t.Error("ParseDomain(XY) succeeded")
	}
	if !AE.IsAnalog() || !AO.IsAnalog() || DE.IsAnalog() || DO.IsAnalog() {
		t.Error("IsAnalog wrong")
	}
	if !AO.IsOptical() || !DO.IsOptical() || DE.IsOptical() || AE.IsOptical() {
		t.Error("IsOptical wrong")
	}
	if (Crossing{DE, AE}).String() != "DE/AE" {
		t.Error("Crossing.String wrong")
	}
}

func TestTensorSet(t *testing.T) {
	s := workload.NewTensorSet(workload.Weights, workload.Outputs)
	if !s.Has(workload.Weights) || s.Has(workload.Inputs) || !s.Has(workload.Outputs) {
		t.Error("membership wrong")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Without(workload.Weights).Has(workload.Weights) {
		t.Error("Without failed")
	}
	if workload.AllTensorSet().Len() != 3 {
		t.Error("AllTensorSet wrong")
	}
	if got := s.String(); got != "{Weights,Outputs}" {
		t.Errorf("String = %s", got)
	}
	var empty workload.TensorSet
	if !empty.Empty() || empty.Len() != 0 {
		t.Error("empty set wrong")
	}
}

func TestArchAccessors(t *testing.T) {
	a := testArch(t)
	if a.NumLevels() != 3 {
		t.Fatalf("NumLevels = %d", a.NumLevels())
	}
	if a.Innermost().Name != "RingBank" {
		t.Error("Innermost wrong")
	}
	l, i, err := a.LevelByName("GlobalBuffer")
	if err != nil || i != 1 || l.Name != "GlobalBuffer" {
		t.Errorf("LevelByName = %v %d %v", l, i, err)
	}
	if _, _, err := a.LevelByName("L2"); err == nil {
		t.Error("LevelByName(L2) succeeded")
	}
	if got := a.KeepLevels(workload.Weights); len(got) != 3 {
		t.Errorf("weights keep levels = %v", got)
	}
	if got := a.KeepLevels(workload.Inputs); len(got) != 2 {
		t.Errorf("inputs keep levels = %v", got)
	}
	if a.PeakMACsPerCycle() != 4 {
		t.Errorf("peak = %d", a.PeakMACsPerCycle())
	}
	if a.InstancesAtLevel(0) != 1 || a.InstancesAtLevel(2) != 4 {
		t.Errorf("instances = %d %d", a.InstancesAtLevel(0), a.InstancesAtLevel(2))
	}
	if a.CanonicalSpatial()[workload.DimK] != 4 {
		t.Error("CanonicalSpatial wrong")
	}
}

func TestSpatialFactor(t *testing.T) {
	f := Choice(9, workload.DimS, workload.DimC)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if !f.Allows(workload.DimS) || !f.Allows(workload.DimC) || f.Allows(workload.DimK) {
		t.Error("Allows wrong")
	}
	bad := SpatialFactor{Count: 0, Dims: []workload.Dim{workload.DimK}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero count")
	}
	bad = SpatialFactor{Count: 2}
	if err := bad.Validate(); err == nil {
		t.Error("accepted empty dims")
	}
	bad = Choice(2, workload.DimK, workload.DimK)
	if err := bad.Validate(); err == nil {
		t.Error("accepted duplicate dims")
	}
	bad = Choice(2, workload.NumDims)
	if err := bad.Validate(); err == nil {
		t.Error("accepted invalid dim")
	}
}

func TestLevelFanoutAndFreeDims(t *testing.T) {
	l := Level{
		Spatial:   []SpatialFactor{Fixed(workload.DimK, 3), Fixed(workload.DimQ, 32)},
		MaxFanout: 4,
	}
	if l.RigidFanout() != 96 {
		t.Errorf("RigidFanout = %d", l.RigidFanout())
	}
	if l.MaxTotalFanout() != 384 {
		t.Errorf("MaxTotalFanout = %d", l.MaxTotalFanout())
	}
	p := l.CanonicalSpatial()
	if p[workload.DimK] != 3 || p[workload.DimQ] != 32 {
		t.Errorf("CanonicalSpatial = %v", p)
	}
	if !l.AllowsFreeDim(workload.DimC) {
		t.Error("empty FreeSpatialDims should allow everything")
	}
	l.FreeSpatialDims = []workload.Dim{workload.DimK}
	if l.AllowsFreeDim(workload.DimC) || !l.AllowsFreeDim(workload.DimK) {
		t.Error("FreeSpatialDims filter wrong")
	}
}

func TestArchValidateCatchesErrors(t *testing.T) {
	breakArch := func(f func(*Arch)) error {
		a := testArch(t)
		f(a)
		return a.Validate()
	}
	cases := []struct {
		name  string
		mutar func(*Arch)
	}{
		{"no name", func(a *Arch) { a.Name = "" }},
		{"no levels", func(a *Arch) { a.Levels = nil }},
		{"no lib", func(a *Arch) { a.Lib = nil }},
		{"zero clock", func(a *Arch) { a.ClockGHz = 0 }},
		{"zero word bits", func(a *Arch) { a.DefaultWordBits = 0 }},
		{"dup level names", func(a *Arch) { a.Levels[1].Name = "DRAM" }},
		{"empty level name", func(a *Arch) { a.Levels[1].Name = "" }},
		{"negative capacity", func(a *Arch) { a.Levels[1].CapacityBits = -1 }},
		{"keeps nothing", func(a *Arch) { a.Levels[1].Keeps = 0 }},
		{"no keeper anywhere", func(a *Arch) {
			// Outputs kept nowhere: DRAM and GLB drop them, RingBank
			// only keeps weights.
			a.Levels[0].Keeps = workload.NewTensorSet(workload.Weights, workload.Inputs)
			a.Levels[1].Keeps = workload.NewTensorSet(workload.Weights, workload.Inputs)
		}},
		{"bad access component", func(a *Arch) { a.Levels[1].AccessComponent = "nope" }},
		{"bad converter component", func(a *Arch) {
			a.Levels[2].FillVia[workload.Weights] = []ActionRef{{Component: "nope", Action: "convert"}}
		}},
		{"bad converter action", func(a *Arch) {
			a.Levels[2].FillVia[workload.Weights] = []ActionRef{{Component: "PD", Action: "convert"}}
		}},
		{"converter for bypassed tensor", func(a *Arch) {
			a.Levels[2].FillVia[workload.Inputs] = []ActionRef{{Component: "WeightDAC", Action: "convert"}}
		}},
		{"bad compute ref", func(a *Arch) { a.Compute.PerMAC[0].Component = "nope" }},
		{"bad spatial factor", func(a *Arch) { a.Levels[1].Spatial[0].Count = -2 }},
		{"negative max fanout", func(a *Arch) { a.Levels[1].MaxFanout = -1 }},
	}
	for _, c := range cases {
		if err := breakArch(c.mutar); err == nil {
			t.Errorf("%s: Validate accepted broken arch", c.name)
		}
	}
}

func TestDomainGaps(t *testing.T) {
	a := testArch(t)
	// RingBank (AO) fills weights from GlobalBuffer (DE) via converters —
	// no gap. Inputs and outputs never leave DE. So no gaps.
	if gaps := a.DomainGaps(); len(gaps) != 0 {
		t.Errorf("unexpected gaps: %v", gaps)
	}
	// Remove the converter chain: now the weights edge is a gap.
	delete(a.Levels[2].FillVia, workload.Weights)
	gaps := a.DomainGaps()
	if len(gaps) != 1 || !strings.Contains(gaps[0], "DE/AO") {
		t.Errorf("gaps = %v, want one DE/AO gap", gaps)
	}
}

func TestAreaRollup(t *testing.T) {
	a := testArch(t)
	area, err := a.Area()
	if err != nil {
		t.Fatal(err)
	}
	if area <= 0 {
		t.Errorf("area = %g", area)
	}
	// GLB area should dominate this tiny arch (8Mbit SRAM).
	glb, _ := a.Lib.Get("GLB")
	if area < glb.Area() {
		t.Errorf("area %g < GLB alone %g", area, glb.Area())
	}
	// RingBank converters are replicated across 4 instances (K=4 fanout
	// at GLB): removing the fanout should shrink area.
	a2 := testArch(t)
	a2.Levels[1].Spatial = nil
	area2, err := a2.Area()
	if err != nil {
		t.Fatal(err)
	}
	if area2 >= area {
		t.Errorf("area without fanout %g >= with fanout %g", area2, area)
	}
}

func TestActionRefCount(t *testing.T) {
	if (ActionRef{}).Count() != 1 {
		t.Error("default PerWord should be 1")
	}
	if (ActionRef{PerWord: 2.5}).Count() != 2.5 {
		t.Error("explicit PerWord ignored")
	}
	if (ActionRef{PerWord: -1}).Count() != 1 {
		t.Error("negative PerWord should default to 1")
	}
}

func TestEffectiveWordBits(t *testing.T) {
	l := Level{}
	if l.EffectiveWordBits(8) != 8 {
		t.Error("default word bits")
	}
	l.WordBits = 16
	if l.EffectiveWordBits(8) != 16 {
		t.Error("override word bits")
	}
}
