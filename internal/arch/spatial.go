package arch

import (
	"fmt"

	"photoloop/internal/workload"
)

// SpatialFactor is one rigid fan-out factor of the hierarchy below a level:
// Count parallel instances that the mapping must assign to exactly one of
// the allowed Dims. Photonic arrays are structurally rigid (a 3x3 window
// bank is 9 wavelength slots whether or not the layer has a 3x3 filter),
// but a slot group can often serve alternative dimensions — e.g. Albireo's
// wavelength slots carry filter taps (R/S) for convolutions and input
// channels (C) for fully-connected layers.
type SpatialFactor struct {
	// Count is the number of parallel instances (>= 1).
	Count int `json:"count"`
	// Dims are the problem dimensions this factor may be assigned to, in
	// preference order. The first entry is the canonical assignment.
	Dims []workload.Dim `json:"-"`
}

// Validate checks the factor.
func (f *SpatialFactor) Validate() error {
	if f.Count < 1 {
		return fmt.Errorf("arch: spatial factor count %d, want >= 1", f.Count)
	}
	if len(f.Dims) == 0 {
		return fmt.Errorf("arch: spatial factor has no assignable dimensions")
	}
	seen := map[workload.Dim]bool{}
	for _, d := range f.Dims {
		if d >= workload.NumDims {
			return fmt.Errorf("arch: spatial factor references invalid dimension %v", d)
		}
		if seen[d] {
			return fmt.Errorf("arch: spatial factor lists dimension %v twice", d)
		}
		seen[d] = true
	}
	return nil
}

// Allows reports whether the factor may be assigned to dimension d.
func (f *SpatialFactor) Allows(d workload.Dim) bool {
	for _, x := range f.Dims {
		if x == d {
			return true
		}
	}
	return false
}

// Fixed builds a single-assignment spatial factor.
func Fixed(d workload.Dim, count int) SpatialFactor {
	return SpatialFactor{Count: count, Dims: []workload.Dim{d}}
}

// Choice builds a spatial factor assignable to any of the listed dims.
func Choice(count int, dims ...workload.Dim) SpatialFactor {
	return SpatialFactor{Count: count, Dims: dims}
}
