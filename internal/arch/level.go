package arch

import (
	"fmt"

	"photoloop/internal/workload"
)

// ActionRef names one component action charged some number of times per
// word (or per MAC, for compute actions). Converter chains are slices of
// ActionRefs: e.g. a weight fill into Albireo's ring bank costs one DAC
// "convert" plus one MRR "program" per word.
type ActionRef struct {
	// Component is the name of a component in the architecture's library.
	Component string `json:"component"`
	// Action is the component action to charge.
	Action string `json:"action"`
	// PerWord is the number of actions per word; 0 means 1. Values >1
	// model bit-serial or multi-phase conversion, <1 models shared
	// converters.
	PerWord float64 `json:"per_word,omitempty"`
	// PerDistinct changes the counting basis: instead of one action per
	// destination-side word (each receiving instance converts its own
	// copy), charge one action per distinct word on the shared side of
	// the distribution network — post-multicast for fills (one modulator
	// feeding a star coupler), post-reduction for drains (one ADC after
	// the merge).
	PerDistinct bool `json:"per_distinct,omitempty"`
}

// Count returns the action count multiplier (PerWord defaulted to 1).
func (a ActionRef) Count() float64 {
	if a.PerWord <= 0 {
		return 1
	}
	return a.PerWord
}

// Level is one storage level of the hierarchy. Levels are ordered from the
// outermost backing store (DRAM) down to the innermost operand stations
// next to the compute array. Each level declares the spatial fan-out of the
// hierarchy *below* it and the converter chains on its fill (parent→this)
// and drain (this→parent) paths.
type Level struct {
	// Name identifies the level, e.g. "DRAM", "GlobalBuffer", "RingBank".
	Name string `json:"name"`
	// Domain is the signaling domain the stored data lives in.
	Domain Domain `json:"-"`
	// CapacityBits bounds the total kept-tile footprint; 0 = unbounded.
	CapacityBits int64 `json:"capacity_bits,omitempty"`
	// WordBits overrides the architecture default word size at this level.
	WordBits int `json:"word_bits,omitempty"`
	// BandwidthWordsPerCycle bounds total words moved per cycle between
	// this level and its children; 0 = unbounded.
	BandwidthWordsPerCycle float64 `json:"bandwidth_words_per_cycle,omitempty"`
	// Keeps lists the tensors stored at this level; others bypass it.
	Keeps workload.TensorSet `json:"-"`
	// AccessComponent names the component charged per read/write/update
	// of this level ("" = free, e.g. a pseudo-station whose cost is
	// entirely in its converters).
	AccessComponent string `json:"access_component,omitempty"`

	// Streaming marks a zero-retention station: values pass through (an
	// optical carrier, a sample-and-hold) and must be refilled every
	// cycle they are consumed, regardless of loop stationarity. Albireo's
	// modulated-input station is streaming — light is not storage.
	Streaming bool `json:"streaming,omitempty"`
	// MaxTemporalProduct caps the product of temporal loop factors the
	// mapping may place at this level; 0 = unbounded. A value of 1
	// forbids temporal loops entirely — e.g. an analog accumulator whose
	// ADC samples every symbol cannot integrate across cycles.
	MaxTemporalProduct int `json:"max_temporal_product,omitempty"`

	// Spatial lists the rigid fan-out factors of the hierarchy below
	// this level; the mapping assigns each factor to one of its allowed
	// dimensions. Empty means no rigid fan-out.
	Spatial []SpatialFactor `json:"-"`
	// MaxFanout additionally permits mapper-chosen ("free") spatial
	// factors below this level with product up to MaxFanout; 0 = only
	// the rigid factors.
	MaxFanout int `json:"max_fanout,omitempty"`
	// FreeSpatialDims restricts which dimensions free spatial factors
	// may use; empty = any.
	FreeSpatialDims []workload.Dim `json:"-"`

	// NoMulticast disables one-to-many distribution of read tensors
	// below this level (each child fill then charges its own read).
	NoMulticast bool `json:"no_multicast,omitempty"`
	// NoSpatialReduce disables merging of partial sums below this level
	// (each child drain then charges its own write).
	NoSpatialReduce bool `json:"no_spatial_reduce,omitempty"`
	// InputOverlapSharing models Albireo's star-coupler broadcast of
	// overlapped convolution windows: spatially adjacent windows below
	// this level receive shared input values without refetch or
	// re-conversion. Only meaningful for unstrided (stride < filter)
	// layers; the model computes the exact sharing from the halo
	// geometry.
	InputOverlapSharing bool `json:"input_overlap_sharing,omitempty"`

	// FillVia charges converter chains per word filled into this level
	// from its parent keeper, per tensor (e.g. inputs: DAC + MZM). The
	// default basis is destination-side words (each receiving instance
	// converts its own copy); PerDistinct switches to post-multicast
	// distinct words.
	FillVia map[workload.Tensor][]ActionRef `json:"-"`
	// UpdateVia charges converter chains per output word arriving at
	// this level from below, post spatial-reduction (e.g. a photodiode
	// detecting an optically summed partial).
	UpdateVia map[workload.Tensor][]ActionRef `json:"-"`
	// DrainVia charges converter chains per word drained from this level
	// toward its parent keeper (e.g. outputs: ADC). The default basis is
	// source-side words (one conversion per draining instance);
	// PerDistinct switches to post-reduction merged words.
	DrainVia map[workload.Tensor][]ActionRef `json:"-"`
}

// EffectiveWordBits returns the level word size given the arch default.
func (l *Level) EffectiveWordBits(def int) int {
	if l.WordBits > 0 {
		return l.WordBits
	}
	return def
}

// RigidFanout returns the product of the rigid spatial factor counts below
// this level.
func (l *Level) RigidFanout() int64 {
	f := int64(1)
	for i := range l.Spatial {
		f *= int64(l.Spatial[i].Count)
	}
	return f
}

// MaxTotalFanout returns the maximum fan-out below this level: rigid
// factors times any mapper-chosen headroom.
func (l *Level) MaxTotalFanout() int64 {
	f := l.RigidFanout()
	if l.MaxFanout > 1 {
		f *= int64(l.MaxFanout)
	}
	return f
}

// CanonicalSpatial returns the spatial point with every rigid factor
// assigned to its canonical (first-listed) dimension.
func (l *Level) CanonicalSpatial() workload.Point {
	p := workload.Ones()
	for i := range l.Spatial {
		d := l.Spatial[i].Dims[0]
		p[d] *= l.Spatial[i].Count
	}
	return p
}

// AllowsFreeDim reports whether free spatial factors below this level may
// use dimension d.
func (l *Level) AllowsFreeDim(d workload.Dim) bool {
	if len(l.FreeSpatialDims) == 0 {
		return true
	}
	for _, x := range l.FreeSpatialDims {
		if x == d {
			return true
		}
	}
	return false
}

// Compute describes the innermost compute array: one instance performs one
// MAC per cycle; PerMAC actions (laser supply, ring transit, or a digital
// MAC) are charged per actual MAC performed.
type Compute struct {
	Name   string      `json:"name"`
	Domain Domain      `json:"-"`
	PerMAC []ActionRef `json:"per_mac,omitempty"`
}

func (l *Level) validateRefs(lib componentChecker, strict bool) error {
	check := func(kind string, refs []ActionRef) error {
		for _, r := range refs {
			if err := lib.CheckAction(r.Component, r.Action); err != nil {
				return fmt.Errorf("arch: level %s %s: %w", l.Name, kind, err)
			}
		}
		return nil
	}
	if l.AccessComponent != "" {
		if err := lib.CheckAction(l.AccessComponent, "read"); err != nil {
			return fmt.Errorf("arch: level %s access component: %w", l.Name, err)
		}
	}
	for t, refs := range l.FillVia {
		if strict && !l.Keeps.Has(t) {
			return fmt.Errorf("arch: level %s has FillVia for bypassed tensor %v", l.Name, t)
		}
		if err := check(fmt.Sprintf("FillVia[%v]", t), refs); err != nil {
			return err
		}
	}
	for t, refs := range l.UpdateVia {
		if strict && !l.Keeps.Has(t) {
			return fmt.Errorf("arch: level %s has UpdateVia for bypassed tensor %v", l.Name, t)
		}
		if err := check(fmt.Sprintf("UpdateVia[%v]", t), refs); err != nil {
			return err
		}
	}
	for t, refs := range l.DrainVia {
		if strict && !l.Keeps.Has(t) {
			return fmt.Errorf("arch: level %s has DrainVia for bypassed tensor %v", l.Name, t)
		}
		if err := check(fmt.Sprintf("DrainVia[%v]", t), refs); err != nil {
			return err
		}
	}
	return nil
}

// componentChecker abstracts the library for validation.
type componentChecker interface {
	CheckAction(component, action string) error
}
