package arch

import (
	"testing"

	"photoloop/internal/components"
	"photoloop/internal/workload"
)

func fpArch(t *testing.T, mutate func(*Arch)) uint64 {
	t.Helper()
	a := &Arch{
		Name: "fp", Lib: testLib(t), ClockGHz: 1, DefaultWordBits: 8,
		Levels: []Level{
			{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM"},
			{
				Name: "GLB", Keeps: workload.AllTensorSet(), AccessComponent: "GLB",
				CapacityBits: 1 << 23,
				Spatial:      []SpatialFactor{Choice(4, workload.DimK, workload.DimC)},
				FillVia: map[workload.Tensor][]ActionRef{
					workload.Weights: {{Component: "WeightDAC", Action: "convert"}},
				},
			},
		},
		Compute: Compute{Name: "mac", Domain: DE},
	}
	if mutate != nil {
		mutate(a)
	}
	return a.Fingerprint()
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	base := fpArch(t, nil)
	if base != fpArch(t, nil) {
		t.Fatal("fingerprint not deterministic")
	}
	mutations := map[string]func(*Arch){
		"name":           func(a *Arch) { a.Name = "other" },
		"clock":          func(a *Arch) { a.ClockGHz = 2 },
		"word bits":      func(a *Arch) { a.DefaultWordBits = 16 },
		"level capacity": func(a *Arch) { a.Levels[1].CapacityBits = 1 << 22 },
		"level keeps":    func(a *Arch) { a.Levels[1].Keeps = workload.NewTensorSet(workload.Weights) },
		"level domain":   func(a *Arch) { a.Levels[1].Domain = AO },
		"streaming":      func(a *Arch) { a.Levels[1].Streaming = true },
		"bandwidth":      func(a *Arch) { a.Levels[0].BandwidthWordsPerCycle = 32 },
		"spatial count":  func(a *Arch) { a.Levels[1].Spatial[0].Count = 8 },
		"spatial dims":   func(a *Arch) { a.Levels[1].Spatial[0].Dims = []workload.Dim{workload.DimC} },
		"converter":      func(a *Arch) { a.Levels[1].FillVia[workload.Weights][0].PerWord = 2 },
		"drop converter": func(a *Arch) { delete(a.Levels[1].FillVia, workload.Weights) },
		"compute ref": func(a *Arch) {
			a.Compute.PerMAC = []ActionRef{{Component: "Laser", Action: "supply"}}
		},
		"overlap": func(a *Arch) { a.Levels[1].InputOverlapSharing = true },
		// DimN encodes as 0: a delimiter bug would make [DimN] collide
		// with the empty slice followed by zero-valued fields.
		"free spatial dims": func(a *Arch) { a.Levels[1].FreeSpatialDims = []workload.Dim{workload.DimN} },
		"max fanout":        func(a *Arch) { a.Levels[1].MaxFanout = 4 },
	}
	for name, m := range mutations {
		if fpArch(t, m) == base {
			t.Errorf("mutation %q did not change the fingerprint", name)
		}
	}
}

// TestFingerprintSeesComponentEnergies is what makes cross-variant dedupe
// safe: two structurally identical architectures whose components differ
// only in a parameter (a sweep's component override) must not collide.
func TestFingerprintSeesComponentEnergies(t *testing.T) {
	build := func(adcFJ float64) uint64 {
		lib := components.NewLibrary()
		for _, c := range []struct {
			class, name string
			p           components.Params
		}{
			{"dram", "DRAM", components.Params{"pj_per_bit": 8}},
			{"adc", "ADC", components.Params{"bits": 8, "walden_fj_per_step": adcFJ}},
		} {
			comp, err := components.Build(c.class, c.name, c.p)
			if err != nil {
				t.Fatal(err)
			}
			lib.MustAdd(comp)
		}
		a := &Arch{
			Name: "same", Lib: lib, ClockGHz: 1, DefaultWordBits: 8,
			Levels: []Level{
				{Name: "DRAM", Keeps: workload.AllTensorSet(), AccessComponent: "DRAM",
					DrainVia: map[workload.Tensor][]ActionRef{
						workload.Outputs: {{Component: "ADC", Action: "convert"}},
					}},
			},
		}
		return a.Fingerprint()
	}
	if build(50) == build(51) {
		t.Error("component energy change invisible to fingerprint")
	}
	if build(50) != build(50) {
		t.Error("equal architectures hash differently")
	}
}
